// Connected-components driver (mirrors the upstream PASGAL per-algorithm
// executables). The input graph is symmetrized automatically so all three
// variants agree: label propagation only pushes labels along out-edges, so
// on a directed input it would not match union-find connectivity.
//
//   cc <graph> [-a uf|lp|ldd] [--updates <log.plog>] [-r repeats] [--serve N]
//      [--validate] [--json-metrics <path>]
//
// `--updates` switches to incremental mode (-a uf only): baseline labels
// from the pristine graph, then each batch in the update log is applied as
// a delta overlay and the labels are repaired in place
// (algorithms/incremental.h — union-find over labels for insert-only
// batches, full recompute once a delete splits is possible). The metrics
// document gains a "delta" section.
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>
#include <map>
#include <optional>

#include "algorithms/cc/cc.h"
#include "algorithms/cc/ldd.h"
#include "algorithms/incremental.h"
#include "common.h"
#include "graphs/delta.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "uf";
  bool algo_given = false;
  std::string updates_path;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.choice("-a", &algo, {"uf", "lp", "ldd"}, &algo_given)
      .text("--updates", &updates_path, "updates.plog");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    if (!updates_path.empty()) {
      if (common.serve != 0) {
        throw Error(ErrorCategory::kUsage,
                    "--updates is stateful (each batch applies once); it "
                    "conflicts with --serve");
      }
      if (algo_given && algo != "uf") {
        throw Error(ErrorCategory::kUsage,
                    "--updates repairs union-find labels; only -a uf applies");
      }
      algo = "uf";
    }

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    while (serve.next()) {
      loaded = serve.open(common);
      Graph g = loaded.graph.symmetrize();
      std::printf(
          "graph (symmetrized): n=%zu m=%zu, algorithm=%s, workers=%d\n",
          g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("cc", algo, argv[1], g.num_vertices(), g.num_edges());
      }

      if (!updates_path.empty()) {
        // Baseline labels from the pristine symmetrized view, then
        // batch-by-batch apply + in-place label repair on the directed base
        // (incremental_cc symmetrizes through the overlay itself).
        RunReport<ConnectivityResult> base = connected_components(g, aopt);
        apps::print_stats("uf", base.seconds, tracer);
        doc->add_trial(base.seconds, base.telemetry);
        std::vector<VertexId> label = std::move(base.output.label);
        std::vector<std::vector<EdgeUpdate>> log =
            read_update_log(updates_path);
        std::uint64_t resettled = 0, full_settled = 0;
        bool fallback = false;
        for (std::size_t b = 0; b < log.size(); ++b) {
          apply_updates(loaded.graph, log[b]);
          Tracer repair_tracer;
          auto t0 = std::chrono::steady_clock::now();
          IncrementalStats st = incremental_cc(loaded.graph, log[b], label);
          double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
          resettled += st.resettled;
          full_settled += st.full_settled;
          fallback = fallback || st.fallback;
          std::printf("update batch %zu: %zu ops, resettled %llu of %llu "
                      "vertices in %.4f s%s\n",
                      b + 1, log[b].size(), (unsigned long long)st.resettled,
                      (unsigned long long)st.full_settled, secs,
                      st.fallback ? " (delete fallback: full recompute)" : "");
          doc->add_trial(secs, repair_tracer.aggregate());
        }
        if (std::shared_ptr<const DeltaSnapshot> d =
                loaded.graph.storage() != nullptr
                    ? loaded.graph.storage()->delta_snapshot()
                    : nullptr) {
          doc->set_delta(d->insert_count(), d->delete_count(), d->batches(),
                         resettled, full_settled, fallback);
        }
        std::map<VertexId, std::size_t> sizes;
        for (VertexId l : label) ++sizes[l];
        std::size_t giant = 0;
        for (auto& [l, s] : sizes) giant = std::max(giant, s);
        std::printf("after updates: %zu components, largest has %zu "
                    "vertices\n",
                    sizes.size(), giant);
        continue;
      }

      for (long long r = 0; r < common.repeats; ++r) {
        double seconds;
        RunTelemetry telemetry;
        std::vector<VertexId> label;
        if (algo == "uf") {
          RunReport<ConnectivityResult> report = connected_components(g, aopt);
          seconds = report.seconds;
          telemetry = std::move(report.telemetry);
          label = std::move(report.output.label);
        } else {
          RunReport<std::vector<VertexId>> report =
              algo == "lp" ? label_prop_cc(g, aopt) : ldd_cc(g, aopt);
          seconds = report.seconds;
          telemetry = std::move(report.telemetry);
          label = std::move(report.output);
        }
        apps::print_stats(algo.c_str(), seconds, tracer);
        doc->add_trial(seconds, telemetry);
        if (r == 0) {
          std::map<VertexId, std::size_t> sizes;
          for (VertexId l : label) ++sizes[l];
          std::size_t giant = 0;
          for (auto& [l, s] : sizes) giant = std::max(giant, s);
          std::printf("%zu components, largest has %zu vertices\n",
                      sizes.size(), giant);
        }
      }
    }
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
