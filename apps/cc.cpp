// Connected-components driver (mirrors the upstream PASGAL per-algorithm
// executables). The input graph is symmetrized automatically so all three
// variants agree: label propagation only pushes labels along out-edges, so
// on a directed input it would not match union-find connectivity.
//
//   cc <graph> [-a uf|lp|ldd] [-r repeats] [--serve N]
//      [--validate] [--json-metrics <path>]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <map>
#include <optional>

#include "algorithms/cc/cc.h"
#include "algorithms/cc/ldd.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "uf";
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.choice("-a", &algo, {"uf", "lp", "ldd"});
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    while (serve.next()) {
      loaded = serve.open(common);
      Graph g = loaded.graph.symmetrize();
      std::printf(
          "graph (symmetrized): n=%zu m=%zu, algorithm=%s, workers=%d\n",
          g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("cc", algo, argv[1], g.num_vertices(), g.num_edges());
      }

      for (long long r = 0; r < common.repeats; ++r) {
        double seconds;
        RunTelemetry telemetry;
        std::vector<VertexId> label;
        if (algo == "uf") {
          RunReport<ConnectivityResult> report = connected_components(g, aopt);
          seconds = report.seconds;
          telemetry = std::move(report.telemetry);
          label = std::move(report.output.label);
        } else {
          RunReport<std::vector<VertexId>> report =
              algo == "lp" ? label_prop_cc(g, aopt) : ldd_cc(g, aopt);
          seconds = report.seconds;
          telemetry = std::move(report.telemetry);
          label = std::move(report.output);
        }
        apps::print_stats(algo.c_str(), seconds, tracer);
        doc->add_trial(seconds, telemetry);
        if (r == 0) {
          std::map<VertexId, std::size_t> sizes;
          for (VertexId l : label) ++sizes[l];
          std::size_t giant = 0;
          for (auto& [l, s] : sizes) giant = std::max(giant, s);
          std::printf("%zu components, largest has %zu vertices\n",
                      sizes.size(), giant);
        }
      }
    }
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
