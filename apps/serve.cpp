// pasgal_serve: the serving daemon (pasgal/server.h) and a line-oriented
// client in one binary, so scripts need no netcat.
//
// Daemon:
//   serve --socket <path> [--budget-mb N] [--deadline-ms N] [--tick-ms N]
//         [--shard-mb <mb|auto>]
//     Binds the unix socket, prints "serve: listening on <path>", serves
//     until SIGTERM/SIGINT (or a `shutdown` request), drains in-flight
//     requests, and exits 0. Request errors are per-connection responses,
//     never daemon exits.
//
// Client:
//   serve --socket <path> --client "<request>" ["<request>" ...]
//     Sends each request as one line, prints each one-line response. Exit
//     code mirrors the last response: 0 for ok/metrics, else the error
//     category's app exit code (2 usage / 3 bad input / 4 resource /
//     5 timeout / 1 internal) — the same contract as the one-shot drivers.
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <csignal>
#include <cstring>
#include <vector>

#include "common.h"
#include "pasgal/server.h"

using namespace pasgal;

namespace {

Server* g_server = nullptr;

void on_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

int response_exit_code(const std::string& resp) {
  if (resp.rfind("error [", 0) != 0) return 0;
  std::size_t end = resp.find(']', 7);
  if (end == std::string::npos) return 1;
  std::string cat = resp.substr(7, end - 7);
  if (cat == "usage") return 2;
  if (cat == "io" || cat == "format" || cat == "validation") return 3;
  if (cat == "resource") return 4;
  if (cat == "timeout") return 5;
  return 1;
}

int run_client(const std::string& socket_path,
               const std::vector<std::string>& requests) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    throw Error(ErrorCategory::kUsage, "socket path too long", socket_path);
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    throw Error(ErrorCategory::kIo,
                std::string("socket: ") + std::strerror(errno), socket_path);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    int err = errno;
    ::close(fd);
    throw Error(ErrorCategory::kIo,
                std::string("connect: ") + std::strerror(err), socket_path);
  }

  int code = 0;
  std::string buf;
  for (const std::string& req : requests) {
    std::string line = req + "\n";
    std::size_t sent = 0;
    while (sent < line.size()) {
      ssize_t n = ::send(fd, line.data() + sent, line.size() - sent,
                         MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        throw Error(ErrorCategory::kIo,
                    std::string("send: ") + std::strerror(errno), socket_path);
      }
      sent += static_cast<std::size_t>(n);
    }
    // One response line per request.
    std::size_t nl;
    while ((nl = buf.find('\n')) == std::string::npos) {
      char chunk[4096];
      ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
      if (got < 0 && errno == EINTR) continue;
      if (got <= 0) {
        ::close(fd);
        throw Error(ErrorCategory::kIo,
                    "server closed the connection mid-response", socket_path);
      }
      buf.append(chunk, static_cast<std::size_t>(got));
    }
    std::string resp = buf.substr(0, nl);
    buf.erase(0, nl + 1);
    std::printf("%s\n", resp.c_str());
    code = response_exit_code(resp);
  }
  ::close(fd);
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  return apps::run_app([&]() {
    std::string socket_path;
    long long budget_mb = 0;
    long long deadline_ms = 0;
    long long tick_ms = 100;
    std::string shard_mb;
    bool client = false;
    std::vector<std::string> requests;

    cli::FlagParser fp(argc, argv, 1);
    while (fp.next()) {
      const std::string& f = fp.flag();
      if (f == "--socket") {
        socket_path = fp.value();
      } else if (f == "--budget-mb") {
        budget_mb = cli::parse_flag_int(f, fp.value(), 1, 1LL << 40);
      } else if (f == "--deadline-ms") {
        deadline_ms = cli::parse_flag_int(f, fp.value(), 0, 1LL << 40);
      } else if (f == "--tick-ms") {
        tick_ms = cli::parse_flag_int(f, fp.value(), 1, 60000);
      } else if (f == "--shard-mb") {
        shard_mb = fp.value();
      } else if (f == "--client") {
        client = true;
      } else if (!f.empty() && f[0] != '-') {
        requests.push_back(f);  // a request line (client mode)
      } else {
        fp.unknown();
      }
    }
    if (socket_path.empty()) {
      std::fprintf(stderr,
                   "usage: %s --socket <path> [--budget-mb N] "
                   "[--deadline-ms N] [--tick-ms N] [--shard-mb <mb|auto>]\n"
                   "       %s --socket <path> --client \"<request>\" ...\n",
                   argv[0], argv[0]);
      return 2;
    }
    if (client) {
      if (requests.empty()) {
        throw Error(ErrorCategory::kUsage, "--client: no requests given");
      }
      if (!shard_mb.empty()) {
        throw Error(ErrorCategory::kUsage,
                    "--shard-mb configures the daemon, not --client");
      }
      return run_client(socket_path, requests);
    }
    if (!requests.empty()) {
      throw Error(ErrorCategory::kUsage,
                  "request arguments need --client: '" + requests.front() +
                      "'");
    }

    ServerOptions sopts;
    sopts.socket_path = socket_path;
    sopts.admission_budget_bytes = static_cast<std::uint64_t>(budget_mb) << 20;
    sopts.default_deadline_ms = static_cast<std::uint64_t>(deadline_ms);
    sopts.poll_tick_ms = static_cast<int>(tick_ms);
    if (!shard_mb.empty()) {
      if (shard_mb == "auto") {
        sopts.shard_auto = true;
      } else {
        long long mb = cli::parse_flag_int(
            "--shard-mb", shard_mb.c_str(), 1,
            static_cast<long long>(internal::kMaxMemLimitMb));
        sopts.shard_window_bytes = static_cast<std::uint64_t>(mb) << 20;
      }
    }
    Server server(sopts);
    server.bind();

    g_server = &server;
    struct sigaction sa {};
    sa.sa_handler = on_stop_signal;
    sigemptyset(&sa.sa_mask);
    ::sigaction(SIGTERM, &sa, nullptr);
    ::sigaction(SIGINT, &sa, nullptr);

    std::printf("serve: listening on %s (budget %llu bytes, workers %d)\n",
                socket_path.c_str(),
                (unsigned long long)server.admission_budget(), num_workers());
    std::fflush(stdout);
    server.run();
    g_server = nullptr;

    std::printf("serve: drained (%llu ok, %llu error, %llu dropped)\n",
                (unsigned long long)server.requests_ok(),
                (unsigned long long)server.requests_error(),
                (unsigned long long)server.connections_dropped());
    return 0;
  });
}
