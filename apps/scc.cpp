// SCC driver (mirrors the upstream PASGAL per-algorithm executables).
//
//   scc <graph> [-a pasgal|gbbs|multistep|seq] [-t tau] [-r repeats]
#include <chrono>
#include <map>

#include "algorithms/scc/scc.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph> [-a pasgal|gbbs|multistep|seq] [-t tau] "
                 "[-r repeats]\n",
                 argv[0]);
    return 2;
  }
  std::string algo = "pasgal";
  std::uint32_t tau = 512;
  int repeats = 3;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag == "-a") algo = argv[i + 1];
    if (flag == "-t") tau = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    if (flag == "-r") repeats = std::atoi(argv[i + 1]);
  }

  Graph g = apps::load_graph(argv[1]);
  Graph gt = g.transpose();
  std::printf("graph: n=%zu m=%zu, algorithm=%s, workers=%d\n",
              g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());

  for (int r = 0; r < repeats; ++r) {
    RunStats stats;
    std::vector<SccLabel> labels;
    auto start = std::chrono::steady_clock::now();
    if (algo == "pasgal") {
      SccParams params;
      params.vgc.tau = tau;
      labels = pasgal_scc(g, gt, params, &stats);
    } else if (algo == "gbbs") {
      labels = gbbs_scc(g, gt, {}, &stats);
    } else if (algo == "multistep") {
      labels = multistep_scc(g, gt, {}, &stats);
    } else {
      labels = tarjan_scc(g, &stats);
    }
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    apps::print_stats(algo.c_str(), seconds, stats);
    if (r == 0) {
      auto norm = normalize_scc_labels(labels);
      std::map<VertexId, std::size_t> sizes;
      for (auto l : norm) ++sizes[l];
      std::size_t giant = 0;
      for (auto& [l, s] : sizes) giant = std::max(giant, s);
      std::printf("%zu SCCs, largest has %zu vertices\n", sizes.size(), giant);
    }
  }
  return 0;
}
