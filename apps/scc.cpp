// SCC driver (mirrors the upstream PASGAL per-algorithm executables).
//
//   scc <graph> [-a pasgal|gbbs|multistep|seq] [-t tau] [-r repeats]
//       [--serve N] [--validate] [--json-metrics <path>]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <map>
#include <optional>

#include "algorithms/scc/scc.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "pasgal";
  long long tau = 512;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.choice("-a", &algo, {"pasgal", "gbbs", "multistep", "seq"})
      .integer("-t", &tau, 1, 0xFFFFFFFFLL, "tau");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    while (serve.next()) {
      loaded = serve.open(common);
      Graph& g = loaded.graph;
      Graph gt = g.transpose();
      std::printf("graph: n=%zu m=%zu, algorithm=%s, workers=%d\n",
                  g.num_vertices(), g.num_edges(), algo.c_str(),
                  num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.vgc.tau = static_cast<std::uint32_t>(tau);
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("scc", algo, argv[1], g.num_vertices(), g.num_edges());
        doc->set_param("tau", static_cast<std::uint64_t>(tau));
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<std::vector<SccLabel>> report =
            algo == "pasgal"      ? pasgal_scc(g, gt, aopt)
            : algo == "gbbs"      ? gbbs_scc(g, gt, aopt)
            : algo == "multistep" ? multistep_scc(g, gt, aopt)
                                  : tarjan_scc(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0) {
          auto norm = normalize_scc_labels(report.output);
          std::map<VertexId, std::size_t> sizes;
          for (auto l : norm) ++sizes[l];
          std::size_t giant = 0;
          for (auto& [l, s] : sizes) giant = std::max(giant, s);
          std::printf("%zu SCCs, largest has %zu vertices\n", sizes.size(),
                      giant);
        }
      }
    }
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
