// SCC driver (mirrors the upstream PASGAL per-algorithm executables).
//
//   scc <graph> [-a pasgal|gbbs|multistep|seq] [-t tau] [-r repeats]
//       [--validate]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>
#include <map>

#include "algorithms/scc/scc.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph> [-a pasgal|gbbs|multistep|seq] [-t tau] "
                 "[-r repeats] [--validate]\n",
                 argv[0]);
    return 2;
  }
  return apps::run_app([&]() {
    std::string algo = "pasgal";
    std::uint32_t tau = 512;
    int repeats = 3;
    bool validate = false;
    apps::FlagParser flags(argc, argv, 2);
    while (flags.next()) {
      if (flags.flag() == "--validate") validate = true;
      else if (flags.flag() == "-a") algo = flags.value();
      else if (flags.flag() == "-t") {
        tau = static_cast<std::uint32_t>(
            apps::parse_flag_int("-t", flags.value(), 1, 0xFFFFFFFFLL));
      } else if (flags.flag() == "-r") {
        repeats = static_cast<int>(
            apps::parse_flag_int("-r", flags.value(), 1, 1000000));
      } else flags.unknown();
    }
    if (algo != "pasgal" && algo != "gbbs" && algo != "multistep" &&
        algo != "seq") {
      throw Error(ErrorCategory::kUsage, "unknown algorithm '" + algo + "'");
    }

    Graph g = apps::load_graph(argv[1], validate);
    Graph gt = g.transpose();
    std::printf("graph: n=%zu m=%zu, algorithm=%s, workers=%d\n",
                g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());

    for (int r = 0; r < repeats; ++r) {
      RunStats stats;
      std::vector<SccLabel> labels;
      auto start = std::chrono::steady_clock::now();
      if (algo == "pasgal") {
        SccParams params;
        params.vgc.tau = tau;
        labels = pasgal_scc(g, gt, params, &stats);
      } else if (algo == "gbbs") {
        labels = gbbs_scc(g, gt, {}, &stats);
      } else if (algo == "multistep") {
        labels = multistep_scc(g, gt, {}, &stats);
      } else {
        labels = tarjan_scc(g, &stats);
      }
      double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      apps::print_stats(algo.c_str(), seconds, stats);
      if (r == 0) {
        auto norm = normalize_scc_labels(labels);
        std::map<VertexId, std::size_t> sizes;
        for (auto l : norm) ++sizes[l];
        std::size_t giant = 0;
        for (auto& [l, s] : sizes) giant = std::max(giant, s);
        std::printf("%zu SCCs, largest has %zu vertices\n", sizes.size(), giant);
      }
    }
    return 0;
  });
}
