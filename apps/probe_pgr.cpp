// Header probe for .pgr files: everything probe_pgr() learns from the
// 192-byte header (plus, for v2, the targets section's chunk header) without
// touching section payloads — so it runs in O(1) on arbitrarily large files
// and never trips the memory ceiling.
//
//   probe_pgr <graph.pgr> [more.pgr ...]
//
// Prints one block per file: dimensions, version, flags, total file bytes,
// the on-disk byte size of each section (offsets, targets, weights,
// t_offsets, t_targets; absent sections print 0), and for compressed (v2)
// files the varint chunk count. Admission scripts parse this to price an
// open before performing it; bench/check.sh and the probe ctest target pin
// the output shape.
//
// Exit codes: 0 ok / 2 usage / 3 bad file.
#include <cstdio>

#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph.pgr> [more.pgr ...]\n", argv[0]);
    return 2;
  }
  return apps::run_app([&]() {
    for (int i = 1; i < argc; ++i) {
      PgrInfo info = probe_pgr(argv[i]);
      std::printf("%s: n=%llu m=%llu version=%u%s%s%s%s\n", argv[i],
                  (unsigned long long)info.n, (unsigned long long)info.m,
                  info.version, info.weighted ? " weighted" : "",
                  info.symmetric ? " symmetric" : "",
                  info.has_transpose ? " transpose" : "",
                  info.compressed ? " compressed" : "");
      std::printf("  file_bytes=%llu\n", (unsigned long long)info.file_bytes);
      for (int s = 0; s < kPgrSectionCount; ++s) {
        std::printf("  section %s: %llu bytes\n", pgr_section_name(s),
                    (unsigned long long)info.section_bytes[s]);
      }
      if (info.compressed) {
        std::printf("  chunks=%llu encoded_target_bytes=%llu\n",
                    (unsigned long long)info.chunk_count,
                    (unsigned long long)info.encoded_target_bytes);
      }
    }
    return 0;
  });
}
