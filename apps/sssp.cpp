// SSSP driver (mirrors the upstream PASGAL per-algorithm executables).
// A weighted `.pgr` input supplies its own weights section (zero-copy with
// the topology); other inputs get deterministic generated weights (uniform
// in [1, max_weight]). -w only applies to generated weights and is rejected
// alongside a weighted file.
//
//   sssp <graph> [-s source | --sources <v0,v1,...|@file>]
//        [-a rho|delta|bf|em|seq] [-w max_weight] [-d delta]
//        [-t tau] [-r repeats] [--serve N] [--validate]
//        [--json-metrics <path>]
//
// `--sources` switches to batched landmark mode: the stepping framework runs
// once per listed source (max 64) under one shared tracer, and the metrics
// document gains a "batch" section. Only the stepping variants batch; -a bf
// and -a seq are per-query baselines.
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <optional>

#include "algorithms/sssp/sssp.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "rho";
  bool algo_given = false;
  long long source = 0;
  bool source_given = false;
  std::string sources_text;
  long long max_weight = 100;
  bool max_weight_given = false;
  long long delta = 32;
  long long tau = 512;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.integer("-s", &source, 0, 0xFFFFFFFFLL, "source", &source_given)
      .choice("-a", &algo, {"rho", "delta", "bf", "em", "seq"}, &algo_given)
      .text("--sources", &sources_text, "v0,v1,...|@file")
      .integer("-w", &max_weight, 1, 0xFFFFFFFFLL, "max_weight",
               &max_weight_given)
      .integer("-d", &delta, 1, 1LL << 40, "delta")
      .integer("-t", &tau, 1, 0xFFFFFFFFLL, "tau");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    std::vector<VertexId> batch_sources;
    if (!sources_text.empty()) {
      if (source_given) {
        throw Error(ErrorCategory::kUsage,
                    "-s conflicts with --sources: give one source or a batch");
      }
      if (algo_given && algo != "rho" && algo != "delta") {
        throw Error(ErrorCategory::kUsage,
                    "--sources batches the stepping framework; -a " + algo +
                        " has no batch mode (use rho or delta)");
      }
      batch_sources = cli::parse_sources(sources_text);
    }

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedWeightedGraph loaded;
    std::optional<MetricsDoc> doc;
    double best_batch_seconds = 0;  // fastest batch trial, for set_batch
    while (serve.next()) {
      loaded = serve.open_weighted(
          common, static_cast<std::uint32_t>(max_weight), max_weight_given);
      WeightedGraph<std::uint32_t>& g = loaded.graph;
      if (batch_sources.empty() &&
          static_cast<std::size_t>(source) >= g.num_vertices()) {
        throw Error(ErrorCategory::kUsage,
                    "source vertex " + std::to_string(source) +
                        " out of range (graph has " +
                        std::to_string(g.num_vertices()) + " vertices)");
      }
      if (batch_sources.empty()) {
        std::printf(
            "graph: n=%zu m=%zu, source=%lld, algorithm=%s, weights=%s, "
            "workers=%d\n",
            g.num_vertices(), g.num_edges(), source, algo.c_str(),
            loaded.weights_origin.c_str(), num_workers());
      } else {
        std::printf(
            "graph: n=%zu m=%zu, batch of %zu sources, algorithm=%s, "
            "weights=%s, workers=%d\n",
            g.num_vertices(), g.num_edges(), batch_sources.size(),
            algo.c_str(), loaded.weights_origin.c_str(), num_workers());
      }
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.source = static_cast<VertexId>(source);
      aopt.vgc.tau = static_cast<std::uint32_t>(tau);
      aopt.sssp_delta_mode = algo == "delta";
      aopt.sssp_delta = static_cast<std::uint64_t>(delta);
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("sssp", algo, argv[1], g.num_vertices(), g.num_edges());
        if (batch_sources.empty()) {
          doc->set_param("source", static_cast<std::uint64_t>(source));
        }
        doc->set_param("max_weight", static_cast<std::uint64_t>(max_weight));
        doc->set_param("delta", static_cast<std::uint64_t>(delta));
        doc->set_param("tau", static_cast<std::uint64_t>(tau));
      }

      if (!batch_sources.empty()) {
        BatchOptions bopt{batch_sources, aopt};
        for (long long r = 0; r < common.repeats; ++r) {
          BatchReport<std::vector<Dist>> report = batch_sssp(g, bopt);
          apps::print_stats(algo.c_str(), report.seconds, tracer);
          std::printf("batch: %zu sources in %.4f s (%.1f queries/s)\n",
                      report.batch_size(), report.seconds, report.qps());
          doc->add_trial(report.seconds, report.telemetry);
          if (r == 0 || report.seconds < best_batch_seconds) {
            best_batch_seconds = report.seconds;
          }
          if (r == 0) {
            for (std::size_t i = 0; i < report.per_source.size(); ++i) {
              std::uint64_t reached = 0;
              Dist far = 0;
              for (auto d : report.per_source[i].output) {
                if (d != kInfWeightDist) {
                  ++reached;
                  far = std::max(far, d);
                }
              }
              std::printf(
                  "batch source %u: reached %llu vertices, weighted "
                  "eccentricity %llu\n",
                  batch_sources[i], (unsigned long long)reached,
                  (unsigned long long)far);
            }
          }
        }
        continue;
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<std::vector<Dist>> report =
            algo == "rho" || algo == "delta" ? stepping_sssp(g, aopt)
            : algo == "bf"                   ? bellman_ford(g, aopt)
            : algo == "em"                   ? em_bellman_ford(g, aopt)
                                             : dijkstra(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0) {
          std::uint64_t reached = 0;
          Dist far = 0;
          for (auto d : report.output) {
            if (d != kInfWeightDist) {
              ++reached;
              far = std::max(far, d);
            }
          }
          std::printf("reached %llu vertices, weighted eccentricity %llu\n",
                      (unsigned long long)reached, (unsigned long long)far);
        }
      }
    }
    if (!batch_sources.empty()) {
      doc->set_batch(batch_sources, best_batch_seconds);
    }
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph.unweighted());
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
