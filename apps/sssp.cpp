// SSSP driver (mirrors the upstream PASGAL per-algorithm executables).
// Weights are attached deterministically (uniform in [1, max_weight]).
//
//   sssp <graph> [-s source] [-a rho|delta|bf|seq] [-w max_weight]
//        [-d delta] [-r repeats] [--validate]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>

#include "algorithms/sssp/sssp.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph> [-s source] [-a rho|delta|bf|seq] "
                 "[-w max_weight] [-d delta] [-r repeats] [--validate]\n",
                 argv[0]);
    return 2;
  }
  return apps::run_app([&]() {
    std::string algo = "rho";
    VertexId source = 0;
    std::uint32_t max_weight = 100;
    Dist delta = 32;
    int repeats = 3;
    bool validate = false;
    apps::FlagParser flags(argc, argv, 2);
    while (flags.next()) {
      if (flags.flag() == "--validate") validate = true;
      else if (flags.flag() == "-s") {
        source = static_cast<VertexId>(
            apps::parse_flag_int("-s", flags.value(), 0, 0xFFFFFFFFLL));
      } else if (flags.flag() == "-a") algo = flags.value();
      else if (flags.flag() == "-w") {
        max_weight = static_cast<std::uint32_t>(
            apps::parse_flag_int("-w", flags.value(), 1, 0xFFFFFFFFLL));
      } else if (flags.flag() == "-d") {
        delta = static_cast<Dist>(
            apps::parse_flag_int("-d", flags.value(), 1, 1LL << 40));
      } else if (flags.flag() == "-r") {
        repeats = static_cast<int>(
            apps::parse_flag_int("-r", flags.value(), 1, 1000000));
      } else flags.unknown();
    }
    if (algo != "rho" && algo != "delta" && algo != "bf" && algo != "seq") {
      throw Error(ErrorCategory::kUsage, "unknown algorithm '" + algo + "'");
    }

    auto g = gen::add_weights(apps::load_graph(argv[1], validate), max_weight);
    if (source >= g.num_vertices()) {
      throw Error(ErrorCategory::kUsage,
                  "source vertex " + std::to_string(source) +
                      " out of range (graph has " +
                      std::to_string(g.num_vertices()) + " vertices)");
    }
    std::printf("graph: n=%zu m=%zu, source=%u, algorithm=%s, workers=%d\n",
                g.num_vertices(), g.num_edges(), source, algo.c_str(),
                num_workers());

    for (int r = 0; r < repeats; ++r) {
      RunStats stats;
      std::vector<Dist> dist;
      auto start = std::chrono::steady_clock::now();
      if (algo == "rho") {
        dist = rho_stepping(g, source, &stats);
      } else if (algo == "delta") {
        dist = delta_stepping(g, source, delta, &stats);
      } else if (algo == "bf") {
        dist = bellman_ford(g, source, &stats);
      } else {
        dist = dijkstra(g, source, &stats);
      }
      double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      apps::print_stats(algo.c_str(), seconds, stats);
      if (r == 0) {
        std::uint64_t reached = 0;
        Dist far = 0;
        for (auto d : dist) {
          if (d != kInfWeightDist) {
            ++reached;
            far = std::max(far, d);
          }
        }
        std::printf("reached %llu vertices, weighted eccentricity %llu\n",
                    (unsigned long long)reached, (unsigned long long)far);
      }
    }
    return 0;
  });
}
