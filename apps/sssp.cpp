// SSSP driver (mirrors the upstream PASGAL per-algorithm executables).
// A weighted `.pgr` input supplies its own weights section (zero-copy with
// the topology); other inputs get deterministic generated weights (uniform
// in [1, max_weight]). -w only applies to generated weights and is rejected
// alongside a weighted file.
//
//   sssp <graph> [-s source] [-a rho|delta|bf|seq] [-w max_weight] [-d delta]
//        [-t tau] [-r repeats] [--serve N] [--validate]
//        [--json-metrics <path>]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <optional>

#include "algorithms/sssp/sssp.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "rho";
  long long source = 0;
  long long max_weight = 100;
  bool max_weight_given = false;
  long long delta = 32;
  long long tau = 512;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.integer("-s", &source, 0, 0xFFFFFFFFLL, "source")
      .choice("-a", &algo, {"rho", "delta", "bf", "seq"})
      .integer("-w", &max_weight, 1, 0xFFFFFFFFLL, "max_weight",
               &max_weight_given)
      .integer("-d", &delta, 1, 1LL << 40, "delta")
      .integer("-t", &tau, 1, 0xFFFFFFFFLL, "tau");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedWeightedGraph loaded;
    std::optional<MetricsDoc> doc;
    while (serve.next()) {
      loaded = serve.open_weighted(
          common, static_cast<std::uint32_t>(max_weight), max_weight_given);
      WeightedGraph<std::uint32_t>& g = loaded.graph;
      if (static_cast<std::size_t>(source) >= g.num_vertices()) {
        throw Error(ErrorCategory::kUsage,
                    "source vertex " + std::to_string(source) +
                        " out of range (graph has " +
                        std::to_string(g.num_vertices()) + " vertices)");
      }
      std::printf(
          "graph: n=%zu m=%zu, source=%lld, algorithm=%s, weights=%s, "
          "workers=%d\n",
          g.num_vertices(), g.num_edges(), source, algo.c_str(),
          loaded.weights_origin.c_str(), num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.source = static_cast<VertexId>(source);
      aopt.vgc.tau = static_cast<std::uint32_t>(tau);
      aopt.sssp_delta_mode = algo == "delta";
      aopt.sssp_delta = static_cast<std::uint64_t>(delta);
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("sssp", algo, argv[1], g.num_vertices(), g.num_edges());
        doc->set_param("source", static_cast<std::uint64_t>(source));
        doc->set_param("max_weight", static_cast<std::uint64_t>(max_weight));
        doc->set_param("delta", static_cast<std::uint64_t>(delta));
        doc->set_param("tau", static_cast<std::uint64_t>(tau));
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<std::vector<Dist>> report =
            algo == "rho" || algo == "delta" ? stepping_sssp(g, aopt)
            : algo == "bf"                   ? bellman_ford(g, aopt)
                                             : dijkstra(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0) {
          std::uint64_t reached = 0;
          Dist far = 0;
          for (auto d : report.output) {
            if (d != kInfWeightDist) {
              ++reached;
              far = std::max(far, d);
            }
          }
          std::printf("reached %llu vertices, weighted eccentricity %llu\n",
                      (unsigned long long)reached, (unsigned long long)far);
        }
      }
    }
    apps::record_load(*doc, loaded);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
