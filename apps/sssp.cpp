// SSSP driver (mirrors the upstream PASGAL per-algorithm executables).
// Weights are attached deterministically (uniform in [1, max_weight]).
//
//   sssp <graph> [-s source] [-a rho|delta|bf|seq] [-w max_weight]
//        [-d delta] [-r repeats]
#include <chrono>

#include "algorithms/sssp/sssp.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph> [-s source] [-a rho|delta|bf|seq] "
                 "[-w max_weight] [-d delta] [-r repeats]\n",
                 argv[0]);
    return 2;
  }
  std::string algo = "rho";
  VertexId source = 0;
  std::uint32_t max_weight = 100;
  Dist delta = 32;
  int repeats = 3;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag == "-s") source = static_cast<VertexId>(std::atoll(argv[i + 1]));
    if (flag == "-a") algo = argv[i + 1];
    if (flag == "-w") max_weight = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    if (flag == "-d") delta = static_cast<Dist>(std::atoll(argv[i + 1]));
    if (flag == "-r") repeats = std::atoi(argv[i + 1]);
  }

  auto g = gen::add_weights(apps::load_graph(argv[1]), max_weight);
  std::printf("graph: n=%zu m=%zu, source=%u, algorithm=%s, workers=%d\n",
              g.num_vertices(), g.num_edges(), source, algo.c_str(),
              num_workers());

  for (int r = 0; r < repeats; ++r) {
    RunStats stats;
    std::vector<Dist> dist;
    auto start = std::chrono::steady_clock::now();
    if (algo == "rho") {
      dist = rho_stepping(g, source, &stats);
    } else if (algo == "delta") {
      dist = delta_stepping(g, source, delta, &stats);
    } else if (algo == "bf") {
      dist = bellman_ford(g, source, &stats);
    } else {
      dist = dijkstra(g, source, &stats);
    }
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    apps::print_stats(algo.c_str(), seconds, stats);
    if (r == 0) {
      std::uint64_t reached = 0;
      Dist far = 0;
      for (auto d : dist) {
        if (d != kInfWeightDist) {
          ++reached;
          far = std::max(far, d);
        }
      }
      std::printf("reached %llu vertices, weighted eccentricity %llu\n",
                  (unsigned long long)reached, (unsigned long long)far);
    }
  }
  return 0;
}
