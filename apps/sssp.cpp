// SSSP driver (mirrors the upstream PASGAL per-algorithm executables).
// Weights are attached deterministically (uniform in [1, max_weight]).
//
//   sssp <graph> [-s source] [-a rho|delta|bf|seq] [-w max_weight] [-d delta]
//        [-t tau] [-r repeats] [--validate] [--json-metrics <path>]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include "algorithms/sssp/sssp.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "rho";
  long long source = 0;
  long long max_weight = 100;
  long long delta = 32;
  long long tau = 512;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.integer("-s", &source, 0, 0xFFFFFFFFLL, "source")
      .choice("-a", &algo, {"rho", "delta", "bf", "seq"})
      .integer("-w", &max_weight, 1, 0xFFFFFFFFLL, "max_weight")
      .integer("-d", &delta, 1, 1LL << 40, "delta")
      .integer("-t", &tau, 1, 0xFFFFFFFFLL, "tau");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::LoadedGraph loaded = apps::load_graph_timed(argv[1], common);
    auto g = gen::add_weights(loaded.graph,
                              static_cast<std::uint32_t>(max_weight));
    if (static_cast<std::size_t>(source) >= g.num_vertices()) {
      throw Error(ErrorCategory::kUsage,
                  "source vertex " + std::to_string(source) +
                      " out of range (graph has " +
                      std::to_string(g.num_vertices()) + " vertices)");
    }
    std::printf("graph: n=%zu m=%zu, source=%lld, algorithm=%s, workers=%d\n",
                g.num_vertices(), g.num_edges(), source, algo.c_str(),
                num_workers());
    std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                loaded.mode.c_str(), loaded.seconds,
                (unsigned long long)loaded.bytes_mapped);

    Tracer tracer;
    AlgoOptions aopt;
    aopt.source = static_cast<VertexId>(source);
    aopt.vgc.tau = static_cast<std::uint32_t>(tau);
    aopt.sssp_delta_mode = algo == "delta";
    aopt.sssp_delta = static_cast<std::uint64_t>(delta);
    aopt.validate = common.validate;
    aopt.tracer = &tracer;

    MetricsDoc doc("sssp", algo, argv[1], g.num_vertices(), g.num_edges());
    doc.set_param("source", static_cast<std::uint64_t>(source));
    doc.set_param("max_weight", static_cast<std::uint64_t>(max_weight));
    doc.set_param("delta", static_cast<std::uint64_t>(delta));
    doc.set_param("tau", static_cast<std::uint64_t>(tau));
    apps::record_load(doc, loaded);

    for (long long r = 0; r < common.repeats; ++r) {
      RunReport<std::vector<Dist>> report =
          algo == "rho" || algo == "delta" ? stepping_sssp(g, aopt)
          : algo == "bf"                   ? bellman_ford(g, aopt)
                                           : dijkstra(g, aopt);
      apps::print_stats(algo.c_str(), report.seconds, tracer);
      doc.add_trial(report.seconds, report.telemetry);
      if (r == 0) {
        std::uint64_t reached = 0;
        Dist far = 0;
        for (auto d : report.output) {
          if (d != kInfWeightDist) {
            ++reached;
            far = std::max(far, d);
          }
        }
        std::printf("reached %llu vertices, weighted eccentricity %llu\n",
                    (unsigned long long)reached, (unsigned long long)far);
      }
    }
    apps::finish_metrics(common, doc);
    return 0;
  });
}
