// Shared command-line plumbing for the per-algorithm driver apps, mirroring
// the upstream PASGAL repository's layout (one executable per algorithm,
// fed by a graph file in .adj or .bin format, or a generator spec).
//
// Every driver wraps its body in run_app(), which maps typed pasgal::Error
// failures onto the uniform exit codes documented in README.md:
//   0 ok / 1 internal error / 2 usage / 3 bad input / 4 resource limit.
#pragma once

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "graphs/generators.h"
#include "graphs/graph_io.h"
#include "pasgal/error.h"
#include "pasgal/resource.h"
#include "pasgal/stats.h"

namespace pasgal::apps {

// --- checked integer parsing -------------------------------------------------

// Full-string strtoll with errno/endptr checks: "abc", "12abc", "" and
// out-of-range values are all errors (the old parser silently mapped them
// to 0, so `grid:abc:10` ran a degenerate grid instead of failing).
inline long long parse_int(const std::string& text, const std::string& what,
                           long long min_value, long long max_value,
                           ErrorCategory category) {
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (text.empty() || end != text.c_str() + text.size()) {
    throw Error(category, what + ": '" + text + "' is not an integer");
  }
  if (errno == ERANGE || value < min_value || value > max_value) {
    throw Error(category, what + ": " + text + " is out of range [" +
                              std::to_string(min_value) + ", " +
                              std::to_string(max_value) + "]");
  }
  return value;
}

// Value of a command-line flag (usage errors, exit code 2).
inline long long parse_flag_int(const std::string& flag, const char* value,
                                long long min_value, long long max_value) {
  return parse_int(value, "flag " + flag, min_value, max_value,
                   ErrorCategory::kUsage);
}

// --- generator spec parsing --------------------------------------------------

namespace internal {

struct Spec {
  std::string text;
  std::string kind;
  std::vector<std::string> fields;  // fields after the kind

  // i is 1-based field position within the spec (kind is field 0).
  long long required(std::size_t i, const char* what, long long min_value,
                     long long max_value) const {
    if (fields.size() < i || fields[i - 1].empty()) {
      throw Error(ErrorCategory::kUsage,
                  "spec '" + text + "': missing field <" + what + ">");
    }
    return parse_int(fields[i - 1], "spec '" + text + "' field <" +
                                        std::string(what) + ">",
                     min_value, max_value, ErrorCategory::kUsage);
  }

  long long optional(std::size_t i, const char* what, long long min_value,
                     long long max_value, long long fallback) const {
    if (fields.size() < i) return fallback;
    return parse_int(fields[i - 1], "spec '" + text + "' field <" +
                                        std::string(what) + ">",
                     min_value, max_value, ErrorCategory::kUsage);
  }

  void expect_at_most(std::size_t count) const {
    if (fields.size() > count) {
      throw Error(ErrorCategory::kUsage,
                  "spec '" + text + "': unexpected extra field '" +
                      fields[count] + "'");
    }
  }
};

inline Spec split_spec(const std::string& spec) {
  Spec out;
  out.text = spec;
  std::size_t start = 0;
  bool first = true;
  while (start <= spec.size()) {
    std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) colon = spec.size();
    std::string part = spec.substr(start, colon - start);
    if (first) {
      out.kind = std::move(part);
      first = false;
    } else {
      out.fields.push_back(std::move(part));
    }
    start = colon + 1;
  }
  return out;
}

// Generators allocate an edge array before building the CSR; reject specs
// whose edge count alone would blow the memory ceiling (same guard the file
// readers apply to header-claimed sizes).
inline void guard_generated(std::uint64_t n, std::uint64_t m,
                            const std::string& spec) {
  unsigned __int128 need = static_cast<unsigned __int128>(m) * sizeof(Edge) +
                           (static_cast<unsigned __int128>(n) + 1) *
                               (sizeof(EdgeId) + sizeof(VertexId));
  constexpr std::uint64_t kMax = static_cast<std::uint64_t>(-1);
  std::uint64_t need64 = need > kMax ? kMax : static_cast<std::uint64_t>(need);
  check_allocation(need64, "generated graph '" + spec + "'").throw_if_error();
}

}  // namespace internal

// Graph sources:
//   path ending in .adj / .bin        -> load from file (validated on read)
//   "rmat:<log2n>:<m>[:seed]"         -> RMAT generator
//   "grid:<rows>:<cols>"              -> undirected rectangle grid
//   "road:<rows>:<cols>[:two_way_pct]"-> directed road grid
//   "knn:<n>:<k>[:seed]"              -> k-NN graph
//   "chain:<n>[:directed]"            -> path graph
// Malformed specs (non-numeric, missing, or out-of-range fields) are
// reported as usage errors; corrupt files surface the reader's typed error.
inline Graph load_graph(const std::string& spec) {
  auto ends_with = [&](const char* suffix) {
    std::size_t len = std::strlen(suffix);
    return spec.size() >= len && spec.compare(spec.size() - len, len, suffix) == 0;
  };
  if (ends_with(".adj")) return read_adj(spec);
  if (ends_with(".bin")) return read_bin(spec);

  internal::Spec s = internal::split_spec(spec);
  if (s.kind == "rmat") {
    s.expect_at_most(3);
    long long log2n = s.required(1, "log2n", 1, 31);
    long long m = s.required(2, "m", 0, 1LL << 40);
    long long seed = s.optional(3, "seed", 0, (1LL << 62), 1);
    internal::guard_generated(std::uint64_t{1} << log2n,
                              static_cast<std::uint64_t>(m), spec);
    return gen::rmat(static_cast<int>(log2n), static_cast<std::size_t>(m),
                     static_cast<std::uint64_t>(seed));
  }
  if (s.kind == "grid") {
    s.expect_at_most(2);
    long long rows = s.required(1, "rows", 1, 1LL << 31);
    long long cols = s.required(2, "cols", 1, 1LL << 31);
    unsigned __int128 n =
        static_cast<unsigned __int128>(rows) * static_cast<unsigned __int128>(cols);
    if (n > (std::uint64_t{1} << 32)) {
      throw Error(ErrorCategory::kUsage,
                  "spec '" + spec + "': rows*cols exceeds the 32-bit "
                  "vertex-id space");
    }
    internal::guard_generated(static_cast<std::uint64_t>(n),
                              4 * static_cast<std::uint64_t>(n), spec);
    return gen::rectangle_grid(static_cast<std::size_t>(rows),
                               static_cast<std::size_t>(cols));
  }
  if (s.kind == "road") {
    s.expect_at_most(3);
    long long rows = s.required(1, "rows", 1, 1LL << 31);
    long long cols = s.required(2, "cols", 1, 1LL << 31);
    long long pct = s.optional(3, "two_way_pct", 0, 100, 85);
    unsigned __int128 n =
        static_cast<unsigned __int128>(rows) * static_cast<unsigned __int128>(cols);
    if (n > (std::uint64_t{1} << 32)) {
      throw Error(ErrorCategory::kUsage,
                  "spec '" + spec + "': rows*cols exceeds the 32-bit "
                  "vertex-id space");
    }
    internal::guard_generated(static_cast<std::uint64_t>(n),
                              4 * static_cast<std::uint64_t>(n), spec);
    return gen::road_grid(static_cast<std::size_t>(rows),
                          static_cast<std::size_t>(cols),
                          static_cast<double>(pct) / 100.0);
  }
  if (s.kind == "knn") {
    s.expect_at_most(3);
    long long n = s.required(1, "n", 1, 1LL << 32);
    long long k = s.required(2, "k", 1, 1024);
    long long seed = s.optional(3, "seed", 0, (1LL << 62), 1);
    internal::guard_generated(static_cast<std::uint64_t>(n),
                              static_cast<std::uint64_t>(n) *
                                  static_cast<std::uint64_t>(k),
                              spec);
    return gen::knn_graph(static_cast<std::size_t>(n), static_cast<int>(k),
                          static_cast<std::uint64_t>(seed));
  }
  if (s.kind == "chain") {
    s.expect_at_most(2);
    long long n = s.required(1, "n", 1, 1LL << 32);
    long long directed = s.optional(2, "directed", 0, 1, 0);
    internal::guard_generated(static_cast<std::uint64_t>(n),
                              2 * static_cast<std::uint64_t>(n), spec);
    return gen::chain(static_cast<std::size_t>(n), directed != 0);
  }
  throw Error(ErrorCategory::kUsage,
              "unknown graph spec '" + spec +
                  "': expected a .adj/.bin path or rmat:<log2n>:<m>[:seed] | "
                  "grid:<r>:<c> | road:<r>:<c>[:pct] | knn:<n>:<k>[:seed] | "
                  "chain:<n>[:1]");
}

// Loads and optionally re-validates (file readers always validate; the
// `--validate` app flag extends the same CSR check to generated graphs and
// prints a confirmation so runs on trusted pipelines can prove integrity).
inline Graph load_graph(const std::string& spec, bool validate) {
  Graph g = load_graph(spec);
  if (validate) {
    g.validate().throw_if_error();
    std::printf("validate: ok (n=%zu m=%zu)\n", g.num_vertices(),
                g.num_edges());
  }
  return g;
}

// --- driver scaffolding ------------------------------------------------------

inline void print_stats(const char* algo, double seconds, const RunStats& stats) {
  std::printf("%s: %.4f s | rounds %llu | edges scanned %llu | "
              "vertices visited %llu | max frontier %llu\n",
              algo, seconds, (unsigned long long)stats.rounds(),
              (unsigned long long)stats.edges_scanned(),
              (unsigned long long)stats.vertices_visited(),
              (unsigned long long)stats.max_frontier());
}

// Uniform error-to-exit-code mapping for the app drivers. The body either
// returns an exit code or throws; every throw is reported on stderr with its
// category so scripts can match on "error [category] ...".
template <typename Body>
int run_app(Body&& body) {
  try {
    return body();
  } catch (const Error& e) {
    std::fprintf(stderr, "error %s\n", e.what());
    return exit_code(e.category());
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr,
                 "error [resource] allocation failed (set PASGAL_MEM_LIMIT_MB "
                 "to reject oversized inputs earlier)\n");
    return exit_code(ErrorCategory::kResource);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error [internal] %s\n", e.what());
    return 1;
  }
}

// Flag iteration: `-x value` pairs plus boolean switches (--validate).
// Unknown flags and missing values are usage errors — previously they were
// silently ignored, so `bfs g.adj -z 5` ran with defaults.
class FlagParser {
 public:
  FlagParser(int argc, char** argv, int first) : argc_(argc), argv_(argv),
                                                 i_(first) {}

  bool next() {
    if (i_ >= argc_) return false;
    flag_ = argv_[i_];
    ++i_;
    return true;
  }

  const std::string& flag() const { return flag_; }

  const char* value() {
    if (i_ >= argc_) {
      throw Error(ErrorCategory::kUsage,
                  "flag " + flag_ + " expects a value");
    }
    return argv_[i_++];
  }

  [[noreturn]] void unknown() const {
    throw Error(ErrorCategory::kUsage, "unknown flag '" + flag_ + "'");
  }

 private:
  int argc_;
  char** argv_;
  int i_;
  std::string flag_;
};

}  // namespace pasgal::apps
