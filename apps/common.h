// Shared command-line plumbing for the per-algorithm driver apps, mirroring
// the upstream PASGAL repository's layout (one executable per algorithm,
// fed by a graph file in .adj or .bin format, or a generator spec).
//
// Flag parsing lives in the library (pasgal/cli.h) so all drivers declare
// options once via cli::OptionSet; this header keeps the driver-only pieces:
// graph loading from specs, stdout stat lines, metrics emission, and the
// run_app() wrapper that maps typed pasgal::Error failures onto the uniform
// exit codes documented in README.md:
//   0 ok / 1 internal error / 2 usage / 3 bad input / 4 resource limit.
#pragma once

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include "graphs/generators.h"
#include "graphs/graph_io.h"
#include "graphs/registry.h"
#include "pasgal/cli.h"
#include "pasgal/error.h"
#include "pasgal/resource.h"
#include "pasgal/stats.h"
#include "pasgal/telemetry.h"

namespace pasgal::apps {

// Re-exported so existing driver/test code keeps compiling against
// pasgal::apps::*; new code should include pasgal/cli.h directly.
using cli::CommonOptions;
using cli::FlagParser;
using cli::OptionSet;
using cli::parse_flag_int;
using cli::parse_int;

namespace internal {

using cli::Spec;
using cli::split_spec;

// Generators allocate an edge array before building the CSR; reject specs
// whose edge count alone would blow the memory ceiling (same guard the file
// readers apply to header-claimed sizes).
inline void guard_generated(std::uint64_t n, std::uint64_t m,
                            const std::string& spec) {
  unsigned __int128 need = static_cast<unsigned __int128>(m) * sizeof(Edge) +
                           (static_cast<unsigned __int128>(n) + 1) *
                               (sizeof(EdgeId) + sizeof(VertexId));
  constexpr std::uint64_t kMax = static_cast<std::uint64_t>(-1);
  std::uint64_t need64 = need > kMax ? kMax : static_cast<std::uint64_t>(need);
  check_allocation(need64, "generated graph '" + spec + "'").throw_if_error();
}

inline bool ends_with(const std::string& s, const char* suffix) {
  std::size_t len = std::strlen(suffix);
  return s.size() >= len && s.compare(s.size() - len, len, suffix) == 0;
}

// Applies the per-run resource knobs before any load: the --mem-limit-mb
// ceiling override (kUsage if PASGAL_MEM_LIMIT_MB is also set — one knob,
// two owners) runs first so the shard spec and every footprint check see
// the effective ceiling.
inline void apply_mem_limit(const CommonOptions& common) {
  if (common.mem_limit_mb > 0) {
    set_memory_limit_mb(static_cast<unsigned long long>(common.mem_limit_mb));
  }
}

// Parses --shard-mb into a PgrShardSpec, rejecting the combinations that
// cannot honor the bounded-residency contract.
inline PgrShardSpec shard_spec(const std::string& spec,
                               const CommonOptions& common) {
  PgrShardSpec out;
  if (common.shard_mb.empty()) return out;
  if (!ends_with(spec, ".pgr")) {
    throw Error(ErrorCategory::kUsage,
                "--shard-mb requires a .pgr input (got '" + spec +
                    "'): sharded execution windows a mapped file");
  }
  if (common.load_mode == "copy") {
    throw Error(ErrorCategory::kUsage,
                "--shard-mb conflicts with --load copy: sharding windows "
                "the mapped file; a heap copy has no window");
  }
  if (common.validate) {
    throw Error(ErrorCategory::kUsage,
                "--shard-mb conflicts with --validate: checksumming every "
                "section byte defeats the bounded residency window (sharded "
                "opens range-check shard-at-a-time instead)");
  }
  if (common.shard_mb == "auto") {
    out.auto_shard = true;
    return out;
  }
  long long mb = cli::parse_int(
      common.shard_mb, "flag --shard-mb", 1,
      static_cast<long long>(::pasgal::internal::kMaxMemLimitMb),
      ErrorCategory::kUsage);
  out.window_bytes = static_cast<std::uint64_t>(mb) << 20;
  return out;
}

}  // namespace internal

// Graph sources:
//   path ending in .adj / .bin        -> load from file (validated on read)
//   path ending in .pgr               -> mmap zero-copy by default
//                                        (see load_graph_timed for --load)
//   "rmat:<log2n>:<m>[:seed]"         -> RMAT generator
//   "grid:<rows>:<cols>"              -> undirected rectangle grid
//   "road:<rows>:<cols>[:two_way_pct]"-> directed road grid
//   "knn:<n>:<k>[:seed]"              -> k-NN graph
//   "chain:<n>[:directed]"            -> path graph
// Malformed specs (non-numeric, missing, or out-of-range fields) are
// reported as usage errors; corrupt files surface the reader's typed error.
inline Graph load_graph(const std::string& spec) {
  auto ends_with = [&](const char* suffix) {
    return internal::ends_with(spec, suffix);
  };
  if (ends_with(".adj")) return read_adj(spec);
  if (ends_with(".bin")) return read_bin(spec);
  if (ends_with(".pgr")) return read_pgr(spec);

  internal::Spec s = internal::split_spec(spec);
  if (s.kind == "rmat") {
    s.expect_at_most(3);
    long long log2n = s.required(1, "log2n", 1, 31);
    long long m = s.required(2, "m", 0, 1LL << 40);
    long long seed = s.optional(3, "seed", 0, (1LL << 62), 1);
    internal::guard_generated(std::uint64_t{1} << log2n,
                              static_cast<std::uint64_t>(m), spec);
    return gen::rmat(static_cast<int>(log2n), static_cast<std::size_t>(m),
                     static_cast<std::uint64_t>(seed));
  }
  if (s.kind == "grid") {
    s.expect_at_most(2);
    long long rows = s.required(1, "rows", 1, 1LL << 31);
    long long cols = s.required(2, "cols", 1, 1LL << 31);
    unsigned __int128 n =
        static_cast<unsigned __int128>(rows) * static_cast<unsigned __int128>(cols);
    if (n > (std::uint64_t{1} << 32)) {
      throw Error(ErrorCategory::kUsage,
                  "spec '" + spec + "': rows*cols exceeds the 32-bit "
                  "vertex-id space");
    }
    internal::guard_generated(static_cast<std::uint64_t>(n),
                              4 * static_cast<std::uint64_t>(n), spec);
    return gen::rectangle_grid(static_cast<std::size_t>(rows),
                               static_cast<std::size_t>(cols));
  }
  if (s.kind == "road") {
    s.expect_at_most(3);
    long long rows = s.required(1, "rows", 1, 1LL << 31);
    long long cols = s.required(2, "cols", 1, 1LL << 31);
    long long pct = s.optional(3, "two_way_pct", 0, 100, 85);
    unsigned __int128 n =
        static_cast<unsigned __int128>(rows) * static_cast<unsigned __int128>(cols);
    if (n > (std::uint64_t{1} << 32)) {
      throw Error(ErrorCategory::kUsage,
                  "spec '" + spec + "': rows*cols exceeds the 32-bit "
                  "vertex-id space");
    }
    internal::guard_generated(static_cast<std::uint64_t>(n),
                              4 * static_cast<std::uint64_t>(n), spec);
    return gen::road_grid(static_cast<std::size_t>(rows),
                          static_cast<std::size_t>(cols),
                          static_cast<double>(pct) / 100.0);
  }
  if (s.kind == "knn") {
    s.expect_at_most(3);
    long long n = s.required(1, "n", 1, 1LL << 32);
    long long k = s.required(2, "k", 1, 1024);
    long long seed = s.optional(3, "seed", 0, (1LL << 62), 1);
    internal::guard_generated(static_cast<std::uint64_t>(n),
                              static_cast<std::uint64_t>(n) *
                                  static_cast<std::uint64_t>(k),
                              spec);
    return gen::knn_graph(static_cast<std::size_t>(n), static_cast<int>(k),
                          static_cast<std::uint64_t>(seed));
  }
  if (s.kind == "chain") {
    s.expect_at_most(2);
    long long n = s.required(1, "n", 1, 1LL << 32);
    long long directed = s.optional(2, "directed", 0, 1, 0);
    internal::guard_generated(static_cast<std::uint64_t>(n),
                              2 * static_cast<std::uint64_t>(n), spec);
    return gen::chain(static_cast<std::size_t>(n), directed != 0);
  }
  throw Error(ErrorCategory::kUsage,
              "unknown graph spec '" + spec +
                  "': expected a .adj/.bin path or rmat:<log2n>:<m>[:seed] | "
                  "grid:<r>:<c> | road:<r>:<c>[:pct] | knn:<n>:<k>[:seed] | "
                  "chain:<n>[:1]");
}

// Loads and optionally re-validates (file readers always validate; the
// `--validate` app flag extends the same CSR check to generated graphs,
// turns on the .pgr checksum + validate_csr pass, and prints a confirmation
// so runs on trusted pipelines can prove integrity).
inline Graph load_graph(const std::string& spec, bool validate) {
  Graph g = internal::ends_with(spec, ".pgr")
                ? read_pgr(spec, PgrOpen::kMmap, validate)
                : load_graph(spec);
  if (validate) {
    g.validate().throw_if_error();
    std::printf("validate: ok (n=%zu m=%zu)\n", g.num_vertices(),
                g.num_edges());
  }
  return g;
}

// A loaded graph plus how it was materialized, for telemetry: drivers record
// the load mode, mapped bytes, and load wall time so the zero-copy claim is
// checkable from the metrics document alone.
struct LoadedGraph {
  Graph graph;
  std::string mode;  // "adj" | "bin" | "pgr-mmap" | "pgr-copy" | "generated"
  // Bytes newly mapped by *this* load: the file size for a cold mmap open,
  // 0 for a registry hit (the mapping already existed) and for heap loads.
  std::uint64_t bytes_mapped = 0;
  double seconds = 0;
  bool registry_hit = false;  // this open shared a pre-existing mapping
  // Compressed .pgr accounting (PgrOpenStats): encoded on-disk size of the
  // targets section and the decode wall time this open paid (0 when the
  // registry handed back an already-decoded storage).
  bool compressed = false;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t decode_wall_ns = 0;
};

namespace internal {

// Drivers load single-threaded, so the registry hit delta across one load
// is exactly this open's outcome.
inline bool finish_load_accounting(const GraphRegistry::Stats& before,
                                   std::uint64_t& bytes_mapped) {
  GraphRegistry::Stats after = GraphRegistry::instance().stats();
  if (after.hits > before.hits) {
    bytes_mapped = 0;
    return true;
  }
  return false;
}

}  // namespace internal

inline LoadedGraph load_graph_timed(const std::string& spec,
                                    const CommonOptions& common) {
  internal::apply_mem_limit(common);
  PgrShardSpec shard = internal::shard_spec(spec, common);
  auto t0 = std::chrono::steady_clock::now();
  GraphRegistry::Stats before = GraphRegistry::instance().stats();
  LoadedGraph out;
  if (internal::ends_with(spec, ".pgr")) {
    PgrOpen mode =
        common.load_mode == "copy" ? PgrOpen::kCopy : PgrOpen::kMmap;
    PgrOpenStats stats;
    out.graph = read_pgr(spec, mode, common.validate, &stats, shard);
    out.compressed = stats.compressed;
    out.encoded_bytes = stats.encoded_target_bytes;
    out.decode_wall_ns = stats.decode_wall_ns;
    out.mode = mode == PgrOpen::kCopy ? "pgr-copy" : "pgr-mmap";
    if (common.validate) {
      std::printf("validate: ok (n=%zu m=%zu)\n", out.graph.num_vertices(),
                  out.graph.num_edges());
    }
  } else {
    out.graph = load_graph(spec, common.validate);
    out.mode = internal::ends_with(spec, ".adj")   ? "adj"
               : internal::ends_with(spec, ".bin") ? "bin"
                                                   : "generated";
  }
  out.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  if (out.graph.storage() != nullptr) {
    out.bytes_mapped = out.graph.storage()->bytes_mapped();
  }
  out.registry_hit = internal::finish_load_accounting(before, out.bytes_mapped);
  return out;
}

// A weighted graph plus provenance: weights either came from the file's
// weights section ("file") or were generated in-process ("generated").
struct LoadedWeightedGraph {
  WeightedGraph<std::uint32_t> graph;
  std::string mode;
  std::string weights_origin;  // "file" | "generated"
  std::uint64_t bytes_mapped = 0;
  double seconds = 0;
  bool registry_hit = false;
  bool compressed = false;  // see LoadedGraph
  std::uint64_t encoded_bytes = 0;
  std::uint64_t decode_wall_ns = 0;
};

// Weighted load for the sssp driver: a weighted `.pgr` supplies its own
// weights section (zero-copy alongside the topology); everything else loads
// the topology and attaches deterministic generated weights. Passing -w
// with a weighted file is a usage error — the flag could not take effect.
inline LoadedWeightedGraph load_weighted_graph_timed(
    const std::string& spec, const CommonOptions& common,
    std::uint32_t max_weight, bool max_weight_given) {
  internal::apply_mem_limit(common);
  if (internal::ends_with(spec, ".pgr") && probe_pgr(spec).weighted) {
    if (max_weight_given) {
      throw Error(ErrorCategory::kUsage,
                  "-w conflicts with '" + spec +
                      "': the file carries a weights section; drop -w to use "
                      "it, or convert the graph without --weights");
    }
    PgrShardSpec shard = internal::shard_spec(spec, common);
    auto t0 = std::chrono::steady_clock::now();
    GraphRegistry::Stats before = GraphRegistry::instance().stats();
    LoadedWeightedGraph out;
    PgrOpen mode =
        common.load_mode == "copy" ? PgrOpen::kCopy : PgrOpen::kMmap;
    PgrOpenStats stats;
    out.graph = read_weighted_pgr(spec, mode, common.validate, &stats, shard);
    out.compressed = stats.compressed;
    out.encoded_bytes = stats.encoded_target_bytes;
    out.decode_wall_ns = stats.decode_wall_ns;
    out.mode = mode == PgrOpen::kCopy ? "pgr-copy" : "pgr-mmap";
    out.weights_origin = "file";
    if (common.validate) {
      std::printf("validate: ok (n=%zu m=%zu)\n", out.graph.num_vertices(),
                  out.graph.num_edges());
    }
    out.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (out.graph.unweighted().storage() != nullptr) {
      out.bytes_mapped = out.graph.unweighted().storage()->bytes_mapped();
    }
    out.registry_hit =
        internal::finish_load_accounting(before, out.bytes_mapped);
    return out;
  }
  LoadedGraph base = load_graph_timed(spec, common);
  if (base.graph.windowed()) {
    // add_weights hashes every (u,v) pair, i.e. reads the whole adjacency —
    // exactly what a windowed open withholds.
    throw Error(ErrorCategory::kUsage,
                "'" + spec +
                    "' has no weights section, and generating weights reads "
                    "every edge target — impossible through a sharded "
                    "compressed open; convert with --weights to embed them");
  }
  LoadedWeightedGraph out;
  out.graph = gen::add_weights(base.graph, max_weight);
  out.mode = base.mode;
  out.weights_origin = "generated";
  out.bytes_mapped = base.bytes_mapped;
  out.seconds = base.seconds;
  out.registry_hit = base.registry_hit;
  out.compressed = base.compressed;
  out.encoded_bytes = base.encoded_bytes;
  out.decode_wall_ns = base.decode_wall_ns;
  return out;
}

inline void record_load_params(MetricsDoc& doc, const std::string& mode,
                               std::uint64_t bytes_mapped, double seconds) {
  doc.set_param("load_mode", mode);
  doc.set_param("load_bytes_mapped", bytes_mapped);
  doc.set_param("load_wall_ns", static_cast<std::uint64_t>(seconds * 1e9));
}

// Compression trio (schema-checked to travel together): emitted only for
// compressed .pgr loads. The ratio compares the raw targets array the file
// would have carried uncompressed against the encoded section actually on
// disk; decode_wall_ns is 0 when this open reused a registry-shared storage
// whose targets were already decoded.
inline void record_compression(MetricsDoc& doc, std::uint64_t num_edges,
                               std::uint64_t encoded_bytes,
                               std::uint64_t decode_wall_ns) {
  std::uint64_t raw_bytes = num_edges * sizeof(VertexId);
  doc.set_param("encoded_bytes", encoded_bytes);
  doc.set_param("compression_ratio",
                encoded_bytes == 0
                    ? 1.0
                    : static_cast<double>(raw_bytes) /
                          static_cast<double>(encoded_bytes));
  doc.set_param("decode_wall_ns", decode_wall_ns);
}

inline void record_load(MetricsDoc& doc, const LoadedGraph& loaded) {
  record_load_params(doc, loaded.mode, loaded.bytes_mapped, loaded.seconds);
  if (loaded.compressed) {
    record_compression(doc, loaded.graph.num_edges(), loaded.encoded_bytes,
                       loaded.decode_wall_ns);
  }
}

inline void record_load(MetricsDoc& doc, const LoadedWeightedGraph& loaded) {
  record_load_params(doc, loaded.mode, loaded.bytes_mapped, loaded.seconds);
  doc.set_param("weights", loaded.weights_origin);
  if (loaded.compressed) {
    record_compression(doc, loaded.graph.num_edges(), loaded.encoded_bytes,
                       loaded.decode_wall_ns);
  }
}

// Shard-at-a-time accounting: when the open was sharded (the storage carries
// a plan + window), emits the top-level "shard" metrics object. Activation
// counters are summed over the forward window and the transpose's own window
// (when the file carried transpose sections), so shard_sweeps reflects every
// window move the run paid for. Call once, after the trials.
inline void record_shard(MetricsDoc& doc, const Graph& g) {
  const StorageRef& storage = g.storage();
  if (storage == nullptr || storage->shard_window() == nullptr) return;
  const MappedWindow& w = *storage->shard_window();
  std::uint64_t sweeps = w.sweeps();
  std::uint64_t faults = w.faults();
  if (StorageRef t = storage->transpose_cache();
      t != nullptr && t->shard_window() != nullptr) {
    sweeps += t->shard_window()->sweeps();
    faults += t->shard_window()->faults();
  }
  doc.set_shard(w.plan().size(), w.plan().window_bytes(), sweeps, faults);
}

// --- serving-mode harness ----------------------------------------------------

namespace internal {

// SIGINT/SIGTERM drain flag for the --serve loops: the handler only sets
// this; ServeHarness::next() reads it at the next iteration boundary, so
// the driver finishes the open in flight, flushes --json-metrics through
// its normal epilogue, and exits 0 instead of dying mid-document.
inline volatile std::sig_atomic_t g_serve_stop = 0;
inline void serve_stop_handler(int) { g_serve_stop = 1; }

inline void install_serve_stop_handlers() {
  struct sigaction sa {};
  sa.sa_handler = serve_stop_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;  // don't tear stdio writes mid-line
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace internal

// `--serve N`: the driver re-opens and re-runs its input N extra times in
// one process, as a cold-vs-warm harness for the GraphRegistry. The cold
// open of a mmap'ed .pgr is pinned, so the mapping survives the Graph being
// dropped between iterations and every warm open is a registry hit mapping
// zero new bytes. Usage pattern (see the drivers):
//
//   ServeHarness serve(argv[1], common);
//   while (serve.next()) {
//     auto loaded = serve.open(common);
//     ... run repeats, add trials ...
//   }
//   apps::record_load(doc, loaded);  // final open: warm when serving
//   serve.record(doc);
class ServeHarness {
 public:
  ServeHarness(std::string spec, const CommonOptions& common)
      : spec_(std::move(spec)),
        total_opens_(1 + common.serve),
        base_(GraphRegistry::instance().stats()) {
    if (total_opens_ > 1) internal::install_serve_stop_handlers();
  }

  // Advances to the next open; snapshots the cold iteration's peak RSS at
  // the cold->warm boundary so record() can expose RSS flatness. A pending
  // SIGINT/SIGTERM ends the loop here — after the cold open at minimum, so
  // the driver's metrics epilogue always has a document to flush.
  bool next() {
    if (iteration_ >= 0 && internal::g_serve_stop != 0) {
      std::printf("serve: stop signal, draining after open %lld/%lld\n",
                  iteration_ + 1, total_opens_);
      return false;
    }
    if (iteration_ + 1 >= total_opens_) return false;
    ++iteration_;
    if (iteration_ == 1) cold_peak_rss_ = peak_rss_bytes();
    return true;
  }

  bool cold() const { return iteration_ == 0; }

  LoadedGraph open(const CommonOptions& common) {
    LoadedGraph out = load_graph_timed(spec_, common);
    note_open(out.mode, out.registry_hit, out.bytes_mapped);
    return out;
  }

  LoadedWeightedGraph open_weighted(const CommonOptions& common,
                                    std::uint32_t max_weight,
                                    bool max_weight_given) {
    LoadedWeightedGraph out = load_weighted_graph_timed(
        spec_, common, max_weight, max_weight_given);
    note_open(out.mode, out.registry_hit, out.bytes_mapped);
    return out;
  }

  // Registry counters as process-lifetime deltas since harness construction
  // (once per document — duplicate set_param keys would corrupt the JSON).
  void record(MetricsDoc& doc) const {
    GraphRegistry::Stats now = GraphRegistry::instance().stats();
    doc.set_param("registry_hits", now.hits - base_.hits);
    doc.set_param("registry_misses", now.misses - base_.misses);
    doc.set_param("registry_bytes_mapped",
                  now.bytes_mapped - base_.bytes_mapped);
    if (total_opens_ > 1) {
      doc.set_param("serve_opens", static_cast<std::uint64_t>(total_opens_));
      doc.set_param("warm_load_bytes_mapped", warm_new_bytes_);
      doc.set_param("peak_rss_cold_bytes", cold_peak_rss_);
    }
  }

 private:
  void note_open(const std::string& mode, bool registry_hit,
                 std::uint64_t new_bytes) {
    if (cold()) {
      if (total_opens_ > 1 && mode == "pgr-mmap") {
        GraphRegistry::instance().pin(spec_);
      }
      return;
    }
    warm_new_bytes_ += new_bytes;
    std::printf("serve: open %lld/%lld %s (%llu new bytes mapped)\n",
                iteration_ + 1, total_opens_,
                registry_hit ? "registry hit" : "registry miss",
                (unsigned long long)new_bytes);
  }

  std::string spec_;
  long long total_opens_;
  long long iteration_ = -1;
  GraphRegistry::Stats base_;
  std::uint64_t cold_peak_rss_ = 0;
  std::uint64_t warm_new_bytes_ = 0;
};

// --- driver scaffolding ------------------------------------------------------

inline void print_stats(const char* algo, double seconds, const RunStats& stats) {
  std::printf("%s: %.4f s | rounds %llu | edges scanned %llu | "
              "vertices visited %llu | max frontier %llu\n",
              algo, seconds, (unsigned long long)stats.rounds(),
              (unsigned long long)stats.edges_scanned(),
              (unsigned long long)stats.vertices_visited(),
              (unsigned long long)stats.max_frontier());
}

// Emits the collected metrics document when --json-metrics was given. The
// process peak RSS is stamped at emission time (the latest point we see), so
// heap-vs-mmap load comparisons are readable straight from the document.
inline void finish_metrics(const CommonOptions& common, MetricsDoc& doc) {
  if (common.json_metrics.empty()) return;
  doc.set_param("peak_rss_bytes", peak_rss_bytes());
  write_metrics_json(common.json_metrics, doc).throw_if_error();
  std::printf("metrics: wrote %s (%zu trials)\n", common.json_metrics.c_str(),
              doc.num_trials());
}

// Uniform error-to-exit-code mapping for the app drivers. The body either
// returns an exit code or throws; every throw is reported on stderr with its
// category so scripts can match on "error [category] ...".
template <typename Body>
int run_app(Body&& body) {
  try {
    return body();
  } catch (const Error& e) {
    std::fprintf(stderr, "error %s\n", e.what());
    return exit_code(e.category());
  } catch (const std::bad_alloc&) {
    std::fprintf(stderr,
                 "error [resource] allocation failed (set PASGAL_MEM_LIMIT_MB "
                 "to reject oversized inputs earlier)\n");
    return exit_code(ErrorCategory::kResource);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error [internal] %s\n", e.what());
    return 1;
  }
}

}  // namespace pasgal::apps
