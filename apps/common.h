// Shared command-line plumbing for the per-algorithm driver apps, mirroring
// the upstream PASGAL repository's layout (one executable per algorithm,
// fed by a graph file in .adj or .bin format, or a generator spec).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "graphs/generators.h"
#include "graphs/graph_io.h"
#include "pasgal/stats.h"

namespace pasgal::apps {

// Graph sources:
//   path ending in .adj / .bin        -> load from file
//   "rmat:<log2n>:<m>[:seed]"         -> RMAT generator
//   "grid:<rows>:<cols>"              -> undirected rectangle grid
//   "road:<rows>:<cols>[:two_way_pct]"-> directed road grid
//   "knn:<n>:<k>[:seed]"              -> k-NN graph
//   "chain:<n>[:directed]"            -> path graph
inline Graph load_graph(const std::string& spec) {
  auto ends_with = [&](const char* suffix) {
    std::size_t len = std::strlen(suffix);
    return spec.size() >= len && spec.compare(spec.size() - len, len, suffix) == 0;
  };
  if (ends_with(".adj")) return read_adj(spec);
  if (ends_with(".bin")) return read_bin(spec);

  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= spec.size()) {
    std::size_t colon = spec.find(':', start);
    if (colon == std::string::npos) colon = spec.size();
    parts.push_back(spec.substr(start, colon - start));
    start = colon + 1;
  }
  auto arg = [&](std::size_t i, long fallback) {
    return parts.size() > i ? std::strtol(parts[i].c_str(), nullptr, 10)
                            : fallback;
  };
  const std::string& kind = parts[0];
  if (kind == "rmat") {
    return gen::rmat(static_cast<int>(arg(1, 16)),
                     static_cast<std::size_t>(arg(2, 1 << 20)),
                     static_cast<std::uint64_t>(arg(3, 1)));
  }
  if (kind == "grid") {
    return gen::rectangle_grid(static_cast<std::size_t>(arg(1, 100)),
                               static_cast<std::size_t>(arg(2, 100)));
  }
  if (kind == "road") {
    return gen::road_grid(static_cast<std::size_t>(arg(1, 100)),
                          static_cast<std::size_t>(arg(2, 100)),
                          static_cast<double>(arg(3, 85)) / 100.0);
  }
  if (kind == "knn") {
    return gen::knn_graph(static_cast<std::size_t>(arg(1, 100000)),
                          static_cast<int>(arg(2, 5)),
                          static_cast<std::uint64_t>(arg(3, 1)));
  }
  if (kind == "chain") {
    return gen::chain(static_cast<std::size_t>(arg(1, 100000)), arg(2, 0) != 0);
  }
  std::fprintf(stderr,
               "unknown graph spec '%s'\n"
               "expected a .adj/.bin path or "
               "rmat:<log2n>:<m> | grid:<r>:<c> | road:<r>:<c>[:pct] | "
               "knn:<n>:<k> | chain:<n>[:1]\n",
               spec.c_str());
  std::exit(2);
}

inline void print_stats(const char* algo, double seconds, const RunStats& stats) {
  std::printf("%s: %.4f s | rounds %llu | edges scanned %llu | "
              "vertices visited %llu | max frontier %llu\n",
              algo, seconds, (unsigned long long)stats.rounds(),
              (unsigned long long)stats.edges_scanned(),
              (unsigned long long)stats.vertices_visited(),
              (unsigned long long)stats.max_frontier());
}

}  // namespace pasgal::apps
