// k-core (coreness) driver (mirrors the upstream PASGAL per-algorithm
// executables). The input graph is symmetrized automatically: coreness is
// defined on undirected graphs.
//
//   kcore <graph> [-a pasgal|seq] [-t tau] [-r repeats] [--serve N]
//         [--validate] [--json-metrics <path>]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <optional>

#include "algorithms/kcore/kcore.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "pasgal";
  long long tau = 512;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.choice("-a", &algo, {"pasgal", "seq"})
      .integer("-t", &tau, 1, 0xFFFFFFFFLL, "tau");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    while (serve.next()) {
      loaded = serve.open(common);
      Graph g = loaded.graph.symmetrize();
      std::printf(
          "graph (symmetrized): n=%zu m=%zu, algorithm=%s, workers=%d\n",
          g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.vgc.tau = static_cast<std::uint32_t>(tau);
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("kcore", algo, argv[1], g.num_vertices(), g.num_edges());
        doc->set_param("tau", static_cast<std::uint64_t>(tau));
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<std::vector<std::uint32_t>> report =
            algo == "pasgal" ? pasgal_kcore(g, aopt) : seq_kcore(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0) {
          std::uint32_t max_core = 0;
          for (std::uint32_t c : report.output) {
            max_core = std::max(max_core, c);
          }
          std::size_t in_max = 0;
          for (std::uint32_t c : report.output) {
            if (c == max_core) ++in_max;
          }
          std::printf("max coreness %u, %zu vertices in the max core\n",
                      max_core, in_max);
        }
      }
    }
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
