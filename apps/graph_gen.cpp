// Generator utility: write a generated graph to .adj, .bin, or .pgr.
//
//   graph_gen <spec> <output.{adj,bin,pgr}> [--transpose] [--compress]
//             [--validate] [--json-metrics <path>]
//
// --transpose embeds the reverse CSR as extra .pgr sections so readers get a
// pre-populated transpose cache; --compress delta-varint encodes the .pgr
// targets section (version-2 file). Both are rejected for other formats.
//
// The metrics document records one trial covering generation + write (no
// rounds — generation has no frontier structure).
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>

#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  bool with_transpose = false;
  bool compress = false;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.flag("--transpose", &with_transpose).flag("--compress", &compress);
  common.declare(opts);
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <spec> <output.{adj,bin,pgr}> %s\n",
                 argv[0], opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 3);
    std::string out = argv[2];
    auto ends_with = [&](const char* suffix) {
      return apps::internal::ends_with(out, suffix);
    };
    if (!ends_with(".adj") && !ends_with(".bin") && !ends_with(".pgr")) {
      throw Error(ErrorCategory::kUsage,
                  "output path '" + out + "' must end in .adj, .bin, or .pgr");
    }
    if (with_transpose && !ends_with(".pgr")) {
      throw Error(ErrorCategory::kUsage,
                  "--transpose requires a .pgr output (other formats have no "
                  "transpose sections)");
    }
    if (compress && !ends_with(".pgr")) {
      throw Error(ErrorCategory::kUsage,
                  "--compress requires a .pgr output");
    }
    Tracer tracer;
    auto start = std::chrono::steady_clock::now();
    Graph g = apps::load_graph(argv[1], common.validate);
    if (ends_with(".bin")) {
      write_bin(g, out);
    } else if (ends_with(".pgr")) {
      PgrWriteOptions wopts;
      wopts.include_transpose = with_transpose;
      wopts.compress_targets = compress;
      write_pgr(g, out, wopts);
    } else {
      write_adj(g, out);
    }
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("wrote %s: n=%zu m=%zu\n", out.c_str(), g.num_vertices(),
                g.num_edges());

    MetricsDoc doc("graph_gen", "gen", argv[1], g.num_vertices(),
                   g.num_edges());
    doc.set_param("output", out);
    doc.add_trial(seconds, tracer.aggregate());
    apps::finish_metrics(common, doc);
    return 0;
  });
}
