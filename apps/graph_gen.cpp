// Generator utility: write a generated graph to .adj or .bin.
//
//   graph_gen <spec> <output.{adj,bin}> [--validate] [--json-metrics <path>]
//
// The metrics document records one trial covering generation + write (no
// rounds — generation has no frontier structure).
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>

#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  cli::OptionSet opts;
  cli::CommonOptions common;
  common.declare(opts);
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <spec> <output.{adj,bin}> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 3);
    std::string out = argv[2];
    auto ends_with = [&](const char* suffix) {
      std::size_t len = std::strlen(suffix);
      return out.size() >= len &&
             out.compare(out.size() - len, len, suffix) == 0;
    };
    if (!ends_with(".adj") && !ends_with(".bin")) {
      throw Error(ErrorCategory::kUsage,
                  "output path '" + out + "' must end in .adj or .bin");
    }
    Tracer tracer;
    auto start = std::chrono::steady_clock::now();
    Graph g = apps::load_graph(argv[1], common.validate);
    if (ends_with(".bin")) {
      write_bin(g, out);
    } else {
      write_adj(g, out);
    }
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("wrote %s: n=%zu m=%zu\n", out.c_str(), g.num_vertices(),
                g.num_edges());

    MetricsDoc doc("graph_gen", "gen", argv[1], g.num_vertices(),
                   g.num_edges());
    doc.set_param("output", out);
    doc.add_trial(seconds, tracer.aggregate());
    apps::finish_metrics(common, doc);
    return 0;
  });
}
