// Generator utility: write a generated graph to .adj or .bin.
//
//   graph_gen <spec> <output.{adj,bin}>
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <spec> <output.{adj,bin}>\n", argv[0]);
    return 2;
  }
  Graph g = apps::load_graph(argv[1]);
  std::string out = argv[2];
  if (out.size() > 4 && out.compare(out.size() - 4, 4, ".bin") == 0) {
    write_bin(g, out);
  } else {
    write_adj(g, out);
  }
  std::printf("wrote %s: n=%zu m=%zu\n", out.c_str(), g.num_vertices(),
              g.num_edges());
  return 0;
}
