// Generator utility: write a generated graph to .adj or .bin.
//
//   graph_gen <spec> <output.{adj,bin}> [--validate]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <spec> <output.{adj,bin}> [--validate]\n",
                 argv[0]);
    return 2;
  }
  return apps::run_app([&]() {
    bool validate = false;
    apps::FlagParser flags(argc, argv, 3);
    while (flags.next()) {
      if (flags.flag() == "--validate") validate = true;
      else flags.unknown();
    }
    std::string out = argv[2];
    auto ends_with = [&](const char* suffix) {
      std::size_t len = std::strlen(suffix);
      return out.size() >= len &&
             out.compare(out.size() - len, len, suffix) == 0;
    };
    if (!ends_with(".adj") && !ends_with(".bin")) {
      throw Error(ErrorCategory::kUsage,
                  "output path '" + out + "' must end in .adj or .bin");
    }
    Graph g = apps::load_graph(argv[1], validate);
    if (ends_with(".bin")) {
      write_bin(g, out);
    } else {
      write_adj(g, out);
    }
    std::printf("wrote %s: n=%zu m=%zu\n", out.c_str(), g.num_vertices(),
                g.num_edges());
    return 0;
  });
}
