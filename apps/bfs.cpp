// BFS driver (mirrors the upstream PASGAL per-algorithm executables).
//
//   bfs <graph> [-s source | --sources <v0,v1,...|@file>]
//       [-a pasgal|gbbs|gapbs|seq|ms] [-t tau] [-r repeats]
//       [--serve N] [--validate] [--json-metrics <path>]
//
// `--sources` switches to batched mode: the bit-parallel ms_bfs kernel
// advances every listed source (max 64) through one shared sweep, prints a
// per-source summary, and the metrics document gains a "batch" section.
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <optional>

#include "algorithms/bfs/bfs.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "pasgal";
  bool algo_given = false;
  long long source = 0;
  bool source_given = false;
  std::string sources_text;
  long long tau = 512;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.integer("-s", &source, 0, 0xFFFFFFFFLL, "source", &source_given)
      .choice("-a", &algo, {"pasgal", "gbbs", "gapbs", "seq", "ms"},
              &algo_given)
      .text("--sources", &sources_text, "v0,v1,...|@file")
      .integer("-t", &tau, 1, 0xFFFFFFFFLL, "tau");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    std::vector<VertexId> batch_sources;
    if (!sources_text.empty()) {
      if (source_given) {
        throw Error(ErrorCategory::kUsage,
                    "-s conflicts with --sources: give one source or a batch");
      }
      if (algo_given && algo != "ms") {
        throw Error(ErrorCategory::kUsage,
                    "--sources runs the bit-parallel ms kernel; -a " + algo +
                        " has no batch mode");
      }
      algo = "ms";
      batch_sources = cli::parse_sources(sources_text);
    } else if (algo == "ms") {
      throw Error(ErrorCategory::kUsage,
                  "-a ms needs a batch: give the sources via --sources");
    }

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    double best_batch_seconds = 0;  // fastest batch trial, for set_batch
    while (serve.next()) {
      loaded = serve.open(common);
      Graph& g = loaded.graph;
      if (batch_sources.empty() &&
          static_cast<std::size_t>(source) >= g.num_vertices()) {
        throw Error(ErrorCategory::kUsage,
                    "source vertex " + std::to_string(source) +
                        " out of range (graph has " +
                        std::to_string(g.num_vertices()) + " vertices)");
      }
      Graph gt = g.transpose();
      if (batch_sources.empty()) {
        std::printf(
            "graph: n=%zu m=%zu, source=%lld, algorithm=%s, workers=%d\n",
            g.num_vertices(), g.num_edges(), source, algo.c_str(),
            num_workers());
      } else {
        std::printf(
            "graph: n=%zu m=%zu, batch of %zu sources, algorithm=%s, "
            "workers=%d\n",
            g.num_vertices(), g.num_edges(), batch_sources.size(),
            algo.c_str(), num_workers());
      }
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.source = static_cast<VertexId>(source);
      aopt.vgc.tau = static_cast<std::uint32_t>(tau);
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("bfs", algo, argv[1], g.num_vertices(), g.num_edges());
        if (batch_sources.empty()) {
          doc->set_param("source", static_cast<std::uint64_t>(source));
        }
        doc->set_param("tau", static_cast<std::uint64_t>(tau));
      }

      if (!batch_sources.empty()) {
        BatchOptions bopt{batch_sources, aopt};
        for (long long r = 0; r < common.repeats; ++r) {
          BatchReport<std::vector<std::uint32_t>> report = ms_bfs(g, gt, bopt);
          apps::print_stats(algo.c_str(), report.seconds, tracer);
          std::printf("batch: %zu sources in %.4f s (%.1f queries/s)\n",
                      report.batch_size(), report.seconds, report.qps());
          doc->add_trial(report.seconds, report.telemetry);
          if (r == 0 || report.seconds < best_batch_seconds) {
            best_batch_seconds = report.seconds;
          }
          if (r == 0) {
            for (std::size_t i = 0; i < report.per_source.size(); ++i) {
              std::uint64_t reached = 0, ecc = 0;
              for (auto d : report.per_source[i].output) {
                if (d != kInfDist) {
                  ++reached;
                  ecc = std::max<std::uint64_t>(ecc, d);
                }
              }
              std::printf(
                  "batch source %u: reached %llu vertices, eccentricity "
                  "%llu\n",
                  batch_sources[i], (unsigned long long)reached,
                  (unsigned long long)ecc);
            }
          }
        }
        continue;
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<std::vector<std::uint32_t>> report =
            algo == "pasgal"  ? pasgal_bfs(g, gt, aopt)
            : algo == "gbbs"  ? gbbs_bfs(g, gt, aopt)
            : algo == "gapbs" ? gapbs_bfs(g, gt, aopt)
                              : seq_bfs(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0) {
          std::uint64_t reached = 0, ecc = 0;
          for (auto d : report.output) {
            if (d != kInfDist) {
              ++reached;
              ecc = std::max<std::uint64_t>(ecc, d);
            }
          }
          std::printf("reached %llu vertices, eccentricity %llu\n",
                      (unsigned long long)reached, (unsigned long long)ecc);
        }
      }
    }
    if (!batch_sources.empty()) {
      doc->set_batch(batch_sources, best_batch_seconds);
    }
    // The recorded load is the final open: warm when serving, so the
    // document shows the steady-state cost (0 new bytes on a registry hit).
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
