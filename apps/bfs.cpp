// BFS driver (mirrors the upstream PASGAL per-algorithm executables).
//
//   bfs <graph> [-s source] [-a pasgal|gbbs|gapbs|seq] [-t tau] [-r rounds]
//       [--validate]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>

#include "algorithms/bfs/bfs.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph> [-s source] [-a pasgal|gbbs|gapbs|seq] "
                 "[-t tau] [-r repeats] [--validate]\n",
                 argv[0]);
    return 2;
  }
  return apps::run_app([&]() {
    std::string algo = "pasgal";
    VertexId source = 0;
    std::uint32_t tau = 512;
    int repeats = 3;
    bool validate = false;
    apps::FlagParser flags(argc, argv, 2);
    while (flags.next()) {
      if (flags.flag() == "--validate") validate = true;
      else if (flags.flag() == "-s") {
        source = static_cast<VertexId>(
            apps::parse_flag_int("-s", flags.value(), 0, 0xFFFFFFFFLL));
      } else if (flags.flag() == "-a") algo = flags.value();
      else if (flags.flag() == "-t") {
        tau = static_cast<std::uint32_t>(
            apps::parse_flag_int("-t", flags.value(), 1, 0xFFFFFFFFLL));
      } else if (flags.flag() == "-r") {
        repeats = static_cast<int>(
            apps::parse_flag_int("-r", flags.value(), 1, 1000000));
      } else flags.unknown();
    }
    if (algo != "pasgal" && algo != "gbbs" && algo != "gapbs" && algo != "seq") {
      throw Error(ErrorCategory::kUsage, "unknown algorithm '" + algo + "'");
    }

    Graph g = apps::load_graph(argv[1], validate);
    if (source >= g.num_vertices()) {
      throw Error(ErrorCategory::kUsage,
                  "source vertex " + std::to_string(source) +
                      " out of range (graph has " +
                      std::to_string(g.num_vertices()) + " vertices)");
    }
    Graph gt = g.transpose();
    std::printf("graph: n=%zu m=%zu, source=%u, algorithm=%s, workers=%d\n",
                g.num_vertices(), g.num_edges(), source, algo.c_str(),
                num_workers());

    for (int r = 0; r < repeats; ++r) {
      RunStats stats;
      std::vector<std::uint32_t> dist;
      auto start = std::chrono::steady_clock::now();
      if (algo == "pasgal") {
        PasgalBfsParams params;
        params.vgc.tau = tau;
        dist = pasgal_bfs(g, gt, source, params, &stats);
      } else if (algo == "gbbs") {
        dist = gbbs_bfs(g, gt, source, &stats);
      } else if (algo == "gapbs") {
        dist = gapbs_bfs(g, gt, source, {}, &stats);
      } else {
        dist = seq_bfs(g, source, &stats);
      }
      double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      std::uint64_t reached = 0, ecc = 0;
      for (auto d : dist) {
        if (d != kInfDist) {
          ++reached;
          ecc = std::max<std::uint64_t>(ecc, d);
        }
      }
      apps::print_stats(algo.c_str(), seconds, stats);
      if (r == 0) {
        std::printf("reached %llu vertices, eccentricity %llu\n",
                    (unsigned long long)reached, (unsigned long long)ecc);
      }
    }
    return 0;
  });
}
