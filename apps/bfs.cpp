// BFS driver (mirrors the upstream PASGAL per-algorithm executables).
//
//   bfs <graph> [-s source | --sources <v0,v1,...|@file>]
//       [-a pasgal|gbbs|gapbs|seq|ms] [-t tau] [-r repeats]
//       [--updates <log.plog>] [--serve N] [--validate]
//       [--json-metrics <path>]
//
// `--sources` switches to batched mode: the bit-parallel ms_bfs kernel
// advances every listed source (max 64) through one shared sweep, prints a
// per-source summary, and the metrics document gains a "batch" section.
//
// `--updates` switches to incremental mode: a baseline gbbs (edge_map) run
// settles the pristine graph, then each batch in the update log is applied
// as a delta overlay and the distances are repaired in place
// (algorithms/incremental.h) — re-settling only the affected vertices. The
// metrics document gains a "delta" section reporting the repair scope.
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>
#include <optional>

#include "algorithms/bfs/bfs.h"
#include "algorithms/incremental.h"
#include "common.h"
#include "graphs/delta.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "pasgal";
  bool algo_given = false;
  long long source = 0;
  bool source_given = false;
  std::string sources_text;
  std::string updates_path;
  long long tau = 512;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.integer("-s", &source, 0, 0xFFFFFFFFLL, "source", &source_given)
      .choice("-a", &algo, {"pasgal", "gbbs", "gapbs", "seq", "ms"},
              &algo_given)
      .text("--sources", &sources_text, "v0,v1,...|@file")
      .text("--updates", &updates_path, "updates.plog")
      .integer("-t", &tau, 1, 0xFFFFFFFFLL, "tau");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    std::vector<VertexId> batch_sources;
    if (!sources_text.empty()) {
      if (source_given) {
        throw Error(ErrorCategory::kUsage,
                    "-s conflicts with --sources: give one source or a batch");
      }
      if (algo_given && algo != "ms") {
        throw Error(ErrorCategory::kUsage,
                    "--sources runs the bit-parallel ms kernel; -a " + algo +
                        " has no batch mode");
      }
      algo = "ms";
      batch_sources = cli::parse_sources(sources_text);
    } else if (algo == "ms") {
      throw Error(ErrorCategory::kUsage,
                  "-a ms needs a batch: give the sources via --sources");
    }

    if (!updates_path.empty()) {
      if (!sources_text.empty()) {
        throw Error(ErrorCategory::kUsage,
                    "--updates conflicts with --sources (incremental repair "
                    "maintains one distance vector)");
      }
      if (common.serve != 0) {
        throw Error(ErrorCategory::kUsage,
                    "--updates is stateful (each batch applies once); it "
                    "conflicts with --serve");
      }
      if (algo_given && algo != "gbbs") {
        throw Error(ErrorCategory::kUsage,
                    "--updates repairs through the overlay-aware edge_map "
                    "kernel; only -a gbbs applies");
      }
      algo = "gbbs";
    }

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    double best_batch_seconds = 0;  // fastest batch trial, for set_batch
    while (serve.next()) {
      loaded = serve.open(common);
      Graph& g = loaded.graph;
      if (batch_sources.empty() &&
          static_cast<std::size_t>(source) >= g.num_vertices()) {
        throw Error(ErrorCategory::kUsage,
                    "source vertex " + std::to_string(source) +
                        " out of range (graph has " +
                        std::to_string(g.num_vertices()) + " vertices)");
      }
      Graph gt = g.transpose();
      if (batch_sources.empty()) {
        std::printf(
            "graph: n=%zu m=%zu, source=%lld, algorithm=%s, workers=%d\n",
            g.num_vertices(), g.num_edges(), source, algo.c_str(),
            num_workers());
      } else {
        std::printf(
            "graph: n=%zu m=%zu, batch of %zu sources, algorithm=%s, "
            "workers=%d\n",
            g.num_vertices(), g.num_edges(), batch_sources.size(),
            algo.c_str(), num_workers());
      }
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.source = static_cast<VertexId>(source);
      aopt.vgc.tau = static_cast<std::uint32_t>(tau);
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("bfs", algo, argv[1], g.num_vertices(), g.num_edges());
        if (batch_sources.empty()) {
          doc->set_param("source", static_cast<std::uint64_t>(source));
        }
        doc->set_param("tau", static_cast<std::uint64_t>(tau));
      }

      if (!batch_sources.empty()) {
        BatchOptions bopt{batch_sources, aopt};
        for (long long r = 0; r < common.repeats; ++r) {
          BatchReport<std::vector<std::uint32_t>> report = ms_bfs(g, gt, bopt);
          apps::print_stats(algo.c_str(), report.seconds, tracer);
          std::printf("batch: %zu sources in %.4f s (%.1f queries/s)\n",
                      report.batch_size(), report.seconds, report.qps());
          doc->add_trial(report.seconds, report.telemetry);
          if (r == 0 || report.seconds < best_batch_seconds) {
            best_batch_seconds = report.seconds;
          }
          if (r == 0) {
            for (std::size_t i = 0; i < report.per_source.size(); ++i) {
              std::uint64_t reached = 0, ecc = 0;
              for (auto d : report.per_source[i].output) {
                if (d != kInfDist) {
                  ++reached;
                  ecc = std::max<std::uint64_t>(ecc, d);
                }
              }
              std::printf(
                  "batch source %u: reached %llu vertices, eccentricity "
                  "%llu\n",
                  batch_sources[i], (unsigned long long)reached,
                  (unsigned long long)ecc);
            }
          }
        }
        continue;
      }

      if (!updates_path.empty()) {
        // Baseline settle on the pristine graph, then batch-by-batch apply
        // + in-place repair. Repeats don't apply: a batch folds into the
        // overlay exactly once.
        RunReport<std::vector<std::uint32_t>> base = gbbs_bfs(g, gt, aopt);
        apps::print_stats("gbbs", base.seconds, tracer);
        doc->add_trial(base.seconds, base.telemetry);
        std::vector<std::uint32_t> dist = std::move(base.output);
        std::vector<std::vector<EdgeUpdate>> log =
            read_update_log(updates_path);
        std::uint64_t resettled = 0, full_settled = 0;
        bool fallback = false;
        for (std::size_t b = 0; b < log.size(); ++b) {
          apply_updates(g, log[b]);
          Tracer repair_tracer;
          auto t0 = std::chrono::steady_clock::now();
          IncrementalStats st = incremental_bfs(
              g, gt, static_cast<VertexId>(source), log[b], dist);
          double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
          resettled += st.resettled;
          full_settled += st.full_settled;
          fallback = fallback || st.fallback;
          std::printf("update batch %zu: %zu ops, resettled %llu of %llu "
                      "vertices in %.4f s%s\n",
                      b + 1, log[b].size(), (unsigned long long)st.resettled,
                      (unsigned long long)st.full_settled, secs,
                      st.fallback ? " (churn fallback: full recompute)" : "");
          doc->add_trial(secs, repair_tracer.aggregate());
        }
        if (std::shared_ptr<const DeltaSnapshot> d =
                g.storage() != nullptr ? g.storage()->delta_snapshot()
                                       : nullptr) {
          doc->set_delta(d->insert_count(), d->delete_count(), d->batches(),
                         resettled, full_settled, fallback);
        }
        std::uint64_t reached = 0, ecc = 0;
        for (auto dd : dist) {
          if (dd != kInfDist) {
            ++reached;
            ecc = std::max<std::uint64_t>(ecc, dd);
          }
        }
        std::printf("after updates: reached %llu vertices, eccentricity "
                    "%llu\n",
                    (unsigned long long)reached, (unsigned long long)ecc);
        continue;
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<std::vector<std::uint32_t>> report =
            algo == "pasgal"  ? pasgal_bfs(g, gt, aopt)
            : algo == "gbbs"  ? gbbs_bfs(g, gt, aopt)
            : algo == "gapbs" ? gapbs_bfs(g, gt, aopt)
                              : seq_bfs(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0) {
          std::uint64_t reached = 0, ecc = 0;
          for (auto d : report.output) {
            if (d != kInfDist) {
              ++reached;
              ecc = std::max<std::uint64_t>(ecc, d);
            }
          }
          std::printf("reached %llu vertices, eccentricity %llu\n",
                      (unsigned long long)reached, (unsigned long long)ecc);
        }
      }
    }
    if (!batch_sources.empty()) {
      doc->set_batch(batch_sources, best_batch_seconds);
    }
    // The recorded load is the final open: warm when serving, so the
    // document shows the steady-state cost (0 new bytes on a registry hit).
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
