// BFS driver (mirrors the upstream PASGAL per-algorithm executables).
//
//   bfs <graph> [-s source] [-a pasgal|gbbs|gapbs|seq] [-t tau] [-r rounds]
#include <chrono>

#include "algorithms/bfs/bfs.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph> [-s source] [-a pasgal|gbbs|gapbs|seq] "
                 "[-t tau] [-r repeats]\n",
                 argv[0]);
    return 2;
  }
  std::string algo = "pasgal";
  VertexId source = 0;
  std::uint32_t tau = 512;
  int repeats = 3;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag == "-s") source = static_cast<VertexId>(std::atoll(argv[i + 1]));
    if (flag == "-a") algo = argv[i + 1];
    if (flag == "-t") tau = static_cast<std::uint32_t>(std::atoi(argv[i + 1]));
    if (flag == "-r") repeats = std::atoi(argv[i + 1]);
  }

  Graph g = apps::load_graph(argv[1]);
  Graph gt = g.transpose();
  std::printf("graph: n=%zu m=%zu, source=%u, algorithm=%s, workers=%d\n",
              g.num_vertices(), g.num_edges(), source, algo.c_str(),
              num_workers());

  for (int r = 0; r < repeats; ++r) {
    RunStats stats;
    std::vector<std::uint32_t> dist;
    auto start = std::chrono::steady_clock::now();
    if (algo == "pasgal") {
      PasgalBfsParams params;
      params.vgc.tau = tau;
      dist = pasgal_bfs(g, gt, source, params, &stats);
    } else if (algo == "gbbs") {
      dist = gbbs_bfs(g, gt, source, &stats);
    } else if (algo == "gapbs") {
      dist = gapbs_bfs(g, gt, source, {}, &stats);
    } else {
      dist = seq_bfs(g, source, &stats);
    }
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::uint64_t reached = 0, ecc = 0;
    for (auto d : dist) {
      if (d != kInfDist) {
        ++reached;
        ecc = std::max<std::uint64_t>(ecc, d);
      }
    }
    apps::print_stats(algo.c_str(), seconds, stats);
    if (r == 0) {
      std::printf("reached %llu vertices, eccentricity %llu\n",
                  (unsigned long long)reached, (unsigned long long)ecc);
    }
  }
  return 0;
}
