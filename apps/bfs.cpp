// BFS driver (mirrors the upstream PASGAL per-algorithm executables).
//
//   bfs <graph> [-s source] [-a pasgal|gbbs|gapbs|seq] [-t tau] [-r repeats]
//       [--serve N] [--validate] [--json-metrics <path>]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <optional>

#include "algorithms/bfs/bfs.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "pasgal";
  long long source = 0;
  long long tau = 512;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.integer("-s", &source, 0, 0xFFFFFFFFLL, "source")
      .choice("-a", &algo, {"pasgal", "gbbs", "gapbs", "seq"})
      .integer("-t", &tau, 1, 0xFFFFFFFFLL, "tau");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    while (serve.next()) {
      loaded = serve.open(common);
      Graph& g = loaded.graph;
      if (static_cast<std::size_t>(source) >= g.num_vertices()) {
        throw Error(ErrorCategory::kUsage,
                    "source vertex " + std::to_string(source) +
                        " out of range (graph has " +
                        std::to_string(g.num_vertices()) + " vertices)");
      }
      Graph gt = g.transpose();
      std::printf(
          "graph: n=%zu m=%zu, source=%lld, algorithm=%s, workers=%d\n",
          g.num_vertices(), g.num_edges(), source, algo.c_str(),
          num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.source = static_cast<VertexId>(source);
      aopt.vgc.tau = static_cast<std::uint32_t>(tau);
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("bfs", algo, argv[1], g.num_vertices(), g.num_edges());
        doc->set_param("source", static_cast<std::uint64_t>(source));
        doc->set_param("tau", static_cast<std::uint64_t>(tau));
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<std::vector<std::uint32_t>> report =
            algo == "pasgal"  ? pasgal_bfs(g, gt, aopt)
            : algo == "gbbs"  ? gbbs_bfs(g, gt, aopt)
            : algo == "gapbs" ? gapbs_bfs(g, gt, aopt)
                              : seq_bfs(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0) {
          std::uint64_t reached = 0, ecc = 0;
          for (auto d : report.output) {
            if (d != kInfDist) {
              ++reached;
              ecc = std::max<std::uint64_t>(ecc, d);
            }
          }
          std::printf("reached %llu vertices, eccentricity %llu\n",
                      (unsigned long long)reached, (unsigned long long)ecc);
        }
      }
    }
    // The recorded load is the final open: warm when serving, so the
    // document shows the steady-state cost (0 new bytes on a registry hit).
    apps::record_load(*doc, loaded);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
