// BCC driver (mirrors the upstream PASGAL per-algorithm executables).
// The input graph is symmetrized automatically, as in the paper.
//
//   bcc <graph> [-a pasgal|gbbs|tv|seq] [-r repeats] [--validate]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>

#include "algorithms/bcc/bcc.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <graph> [-a pasgal|gbbs|tv|seq] [-r repeats] "
                 "[--validate]\n",
                 argv[0]);
    return 2;
  }
  return apps::run_app([&]() {
    std::string algo = "pasgal";
    int repeats = 3;
    bool validate = false;
    apps::FlagParser flags(argc, argv, 2);
    while (flags.next()) {
      if (flags.flag() == "--validate") validate = true;
      else if (flags.flag() == "-a") algo = flags.value();
      else if (flags.flag() == "-r") {
        repeats = static_cast<int>(
            apps::parse_flag_int("-r", flags.value(), 1, 1000000));
      } else flags.unknown();
    }
    if (algo != "pasgal" && algo != "gbbs" && algo != "tv" && algo != "seq") {
      throw Error(ErrorCategory::kUsage, "unknown algorithm '" + algo + "'");
    }

    Graph g = apps::load_graph(argv[1], validate).symmetrize();
    std::printf("graph (symmetrized): n=%zu m=%zu, algorithm=%s, workers=%d\n",
                g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());

    for (int r = 0; r < repeats; ++r) {
      RunStats stats;
      BccResult result;
      auto start = std::chrono::steady_clock::now();
      if (algo == "pasgal") {
        result = fast_bcc(g, &stats);
      } else if (algo == "gbbs") {
        result = gbbs_bcc(g, &stats);
      } else if (algo == "tv") {
        result = tarjan_vishkin_bcc(g, &stats);
      } else {
        result = hopcroft_tarjan_bcc(g, &stats);
      }
      double seconds =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
              .count();
      apps::print_stats(algo.c_str(), seconds, stats);
      if (r == 0) {
        std::printf("%zu biconnected components, %zu articulation points, "
                    "%zu bridges\n",
                    result.num_bccs, articulation_points(g, result).size(),
                    count_bridges(g, result));
      }
    }
    return 0;
  });
}
