// BCC driver (mirrors the upstream PASGAL per-algorithm executables).
// The input graph is symmetrized automatically, as in the paper.
//
//   bcc <graph> [-a pasgal|gbbs|tv|seq] [-r repeats]
#include <chrono>

#include "algorithms/bcc/bcc.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> [-a pasgal|gbbs|tv|seq] [-r repeats]\n",
                 argv[0]);
    return 2;
  }
  std::string algo = "pasgal";
  int repeats = 3;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    if (flag == "-a") algo = argv[i + 1];
    if (flag == "-r") repeats = std::atoi(argv[i + 1]);
  }

  Graph g = apps::load_graph(argv[1]).symmetrize();
  std::printf("graph (symmetrized): n=%zu m=%zu, algorithm=%s, workers=%d\n",
              g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());

  for (int r = 0; r < repeats; ++r) {
    RunStats stats;
    BccResult result;
    auto start = std::chrono::steady_clock::now();
    if (algo == "pasgal") {
      result = fast_bcc(g, &stats);
    } else if (algo == "gbbs") {
      result = gbbs_bcc(g, &stats);
    } else if (algo == "tv") {
      result = tarjan_vishkin_bcc(g, &stats);
    } else {
      result = hopcroft_tarjan_bcc(g, &stats);
    }
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    apps::print_stats(algo.c_str(), seconds, stats);
    if (r == 0) {
      std::printf("%zu biconnected components, %zu articulation points, "
                  "%zu bridges\n",
                  result.num_bccs, articulation_points(g, result).size(),
                  count_bridges(g, result));
    }
  }
  return 0;
}
