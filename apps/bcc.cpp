// BCC driver (mirrors the upstream PASGAL per-algorithm executables).
// The input graph is symmetrized automatically, as in the paper.
//
//   bcc <graph> [-a pasgal|gbbs|tv|seq] [-r repeats] [--serve N]
//       [--validate] [--json-metrics <path>]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <optional>

#include "algorithms/bcc/bcc.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "pasgal";
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.choice("-a", &algo, {"pasgal", "gbbs", "tv", "seq"});
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    while (serve.next()) {
      loaded = serve.open(common);
      Graph g = loaded.graph.symmetrize();
      std::printf(
          "graph (symmetrized): n=%zu m=%zu, algorithm=%s, workers=%d\n",
          g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("bcc", algo, argv[1], g.num_vertices(), g.num_edges());
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<BccResult> report =
            algo == "pasgal" ? fast_bcc(g, aopt)
            : algo == "gbbs" ? gbbs_bcc(g, aopt)
            : algo == "tv"   ? tarjan_vishkin_bcc(g, aopt)
                             : hopcroft_tarjan_bcc(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0) {
          std::printf("%zu biconnected components, %zu articulation points, "
                      "%zu bridges\n",
                      report.output.num_bccs,
                      articulation_points(g, report.output).size(),
                      count_bridges(g, report.output));
        }
      }
    }
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
