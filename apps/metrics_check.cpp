// Schema validator for --json-metrics output.
//
//   metrics_check <metrics.json> [more.json ...]
//
// Parses each file and runs the telemetry schema check (required keys,
// version, per-trial round-count consistency, monotone cumulative counters).
// Accepts both a single "pasgal.metrics" document (driver --json-metrics
// output) and the "pasgal.bench" envelope the table benches write
// (BENCH_*.json: every entry in "runs" is validated individually).
// Used by the `metrics_*` ctest targets and bench/check.sh; also handy for
// validating files produced by external tooling.
//
// Exit codes: 0 ok / 2 usage / 3 parse or schema failure.
#include <cstdio>
#include <string>

#include "common.h"

using namespace pasgal;

namespace {

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw Error(ErrorCategory::kIo, "cannot open metrics file", path);
  }
  std::string text;
  char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw Error(ErrorCategory::kIo, "read error", path);
  return text;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <metrics.json> [more.json ...]\n", argv[0]);
    return 2;
  }
  return apps::run_app([&]() {
    for (int i = 1; i < argc; ++i) {
      std::string text = read_file(argv[i]);
      json::Value doc;
      Status parsed = json::parse(text, doc);
      if (!parsed.ok()) {
        throw Error(ErrorCategory::kFormat,
                    std::string(argv[i]) + ": " + parsed.message());
      }
      const json::Value* schema = doc.find("schema");
      if (schema && schema->is_string() && schema->str == "pasgal.bench") {
        const json::Value* runs = doc.find("runs");
        if (!runs || !runs->is_array() || runs->array.empty()) {
          throw Error(ErrorCategory::kFormat,
                      std::string(argv[i]) +
                          ": bench envelope has no 'runs' array");
        }
        for (std::size_t r = 0; r < runs->array.size(); ++r) {
          Status valid = validate_metrics(runs->array[r]);
          if (!valid.ok()) {
            throw Error(ErrorCategory::kFormat,
                        std::string(argv[i]) + ": runs[" + std::to_string(r) +
                            "]: " + valid.message());
          }
        }
        std::printf("%s: ok (schema pasgal.bench, %zu runs)\n", argv[i],
                    runs->array.size());
        continue;
      }
      Status valid = validate_metrics(doc);
      if (!valid.ok()) {
        throw Error(ErrorCategory::kFormat,
                    std::string(argv[i]) + ": " + valid.message());
      }
      const json::Value* trials = doc.find("trials");
      std::printf("%s: ok (schema %s v%d, %zu trials)\n", argv[i],
                  kMetricsSchema, kMetricsVersion,
                  trials ? trials->array.size() : 0);
    }
    return 0;
  });
}
