// PageRank driver (mirrors the upstream PASGAL per-algorithm executables).
// The pull accumulation runs over the transpose, so a .pgr input needs
// transpose sections (graph_convert --transpose) unless it is a generated
// spec; the pasgal variant works on sharded opens (the dense pull walks the
// transpose's shard plan), seq is in-core only.
//
//   pagerank <graph> [-a pasgal|seq] [-i max_iterations] [--epsilon eps]
//            [--damping d] [--updates <log.plog>] [-r repeats] [--serve N]
//            [--validate] [--json-metrics <path>]
//
// The result line prints with %.17g (round-trip precision) so the identity
// gates in bench/check.sh can diff ranks byte-for-byte across load modes,
// worker counts, and sharded vs in-core runs.
//
// `--updates` replays an update log onto the graph as a delta overlay
// before ranking: both kernels gather through the overlay in the same
// ascending order a rebuilt CSR would use, so the %.17g result line is
// byte-identical to running on the folded graph. The metrics document
// gains a "delta" section.
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <optional>

#include "algorithms/pagerank/pagerank.h"
#include "common.h"
#include "graphs/delta.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "pasgal";
  long long iterations = 100;
  double epsilon = 1e-7;
  double damping = 0.85;
  std::string updates_path;
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.choice("-a", &algo, {"pasgal", "seq"})
      .integer("-i", &iterations, 1, 1000000, "max_iterations")
      .real("--epsilon", &epsilon, 0.0, 1.0, "eps")
      .real("--damping", &damping, 0.0, 1.0, "d")
      .text("--updates", &updates_path, "updates.plog");
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    bool recorded_result = false;
    if (!updates_path.empty() && common.serve != 0) {
      throw Error(ErrorCategory::kUsage,
                  "--updates is stateful (the log replays once); it "
                  "conflicts with --serve");
    }
    while (serve.next()) {
      loaded = serve.open(common);
      Graph& g = loaded.graph;
      Graph gt = g.transpose();
      if (!updates_path.empty()) {
        ApplyStats st = replay_update_log(g, updates_path);
        std::printf("replayed %s: %llu pending inserts, %llu pending "
                    "deletes (%llu batches)\n",
                    updates_path.c_str(), (unsigned long long)st.inserts,
                    (unsigned long long)st.deletes,
                    (unsigned long long)st.batches);
      }
      std::printf("graph: n=%zu m=%zu, algorithm=%s, workers=%d\n",
                  g.num_vertices(), g.num_edges(), algo.c_str(),
                  num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.pagerank_iterations = static_cast<std::uint32_t>(iterations);
      aopt.pagerank_epsilon = epsilon;
      aopt.pagerank_damping = damping;
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("pagerank", algo, argv[1], g.num_vertices(),
                    g.num_edges());
        doc->set_param("max_iterations",
                       static_cast<std::uint64_t>(iterations));
        doc->set_param("epsilon", epsilon);
        doc->set_param("damping", damping);
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<PagerankResult> report = algo == "pasgal"
                                               ? pasgal_pagerank(g, gt, aopt)
                                               : seq_pagerank(g, gt, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0 && !recorded_result) {
          recorded_result = true;
          doc->set_param("iterations",
                         static_cast<std::uint64_t>(report.output.iterations));
        }
        if (r == 0) {
          const std::vector<double>& rank = report.output.rank;
          std::size_t best = 0;
          for (std::size_t v = 1; v < rank.size(); ++v) {
            if (rank[v] > rank[best]) best = v;
          }
          std::printf("converged after %u rounds (delta %.17g), top vertex "
                      "%zu with rank %.17g\n",
                      report.output.iterations, report.output.delta, best,
                      rank.empty() ? 0.0 : rank[best]);
        }
      }
    }
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    if (std::shared_ptr<const DeltaSnapshot> d =
            loaded.graph.storage() != nullptr
                ? loaded.graph.storage()->delta_snapshot()
                : nullptr) {
      doc->set_delta(d->insert_count(), d->delete_count(), d->batches(), 0, 0,
                     false);
    }
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
