// Triangle-counting driver (mirrors the upstream PASGAL per-algorithm
// executables). The input graph is symmetrized automatically (triangles are
// defined on the undirected graph); both variants need whole-graph adjacency
// access, so sharded opens fail with a typed usage error.
//
//   tc <graph> [-a pasgal|seq] [-r repeats] [--serve N]
//      [--validate] [--json-metrics <path>]
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <optional>

#include "algorithms/tc/tc.h"
#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::string algo = "pasgal";
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.choice("-a", &algo, {"pasgal", "seq"});
  common.declare(opts);
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <graph> %s\n", argv[0],
                 opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 2);

    apps::ServeHarness serve(argv[1], common);
    apps::LoadedGraph loaded;
    std::optional<MetricsDoc> doc;
    bool recorded_result = false;
    while (serve.next()) {
      loaded = serve.open(common);
      Graph g = loaded.graph.symmetrize();
      std::printf(
          "graph (symmetrized): n=%zu m=%zu, algorithm=%s, workers=%d\n",
          g.num_vertices(), g.num_edges(), algo.c_str(), num_workers());
      std::printf("load: %s in %.4f s (%llu bytes mapped)\n",
                  loaded.mode.c_str(), loaded.seconds,
                  (unsigned long long)loaded.bytes_mapped);

      Tracer tracer;
      AlgoOptions aopt;
      aopt.validate = common.validate;
      aopt.tracer = &tracer;

      if (!doc) {
        doc.emplace("tc", algo, argv[1], g.num_vertices(), g.num_edges());
      }

      for (long long r = 0; r < common.repeats; ++r) {
        RunReport<std::uint64_t> report =
            algo == "pasgal" ? pasgal_tc(g, aopt) : seq_tc(g, aopt);
        apps::print_stats(algo.c_str(), report.seconds, tracer);
        doc->add_trial(report.seconds, report.telemetry);
        if (r == 0 && !recorded_result) {
          recorded_result = true;
          doc->set_param("triangles", report.output);
        }
        if (r == 0) {
          std::printf("%llu triangles\n",
                      (unsigned long long)report.output);
        }
      }
    }
    apps::record_load(*doc, loaded);
    apps::record_shard(*doc, loaded.graph);
    serve.record(*doc);
    apps::finish_metrics(common, *doc);
    return 0;
  });
}
