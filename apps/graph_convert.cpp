// Format converter: read a graph from any supported source and rewrite it
// in another format. The primary workflow is producing mmap-able `.pgr`
// files once, so every later driver/bench run opens them zero-copy:
//
//   graph_convert <input.{adj,bin,pgr}|spec> <output.{adj,bin,pgr}>
//                 [--transpose] [--symmetric] [--compress]
//                 [--weights <max_weight>]
//                 [--load mmap|copy] [--validate] [--json-metrics <path>]
//
// --transpose embeds the reverse CSR as extra .pgr sections (drivers and
// benches then skip rebuilding gt entirely); --symmetric records the
// caller-asserted symmetry flag in the .pgr header. Both are rejected for
// non-.pgr outputs. --weights attaches deterministic weights (uniform in
// [1, max_weight]) and writes the weighted variant of the output format,
// so sssp runs consume the file's weights section instead of regenerating.
// --validate applies the full checksum + validate_csr pass to .pgr inputs
// and re-validates the graph before writing. --compress writes a version-2
// .pgr whose targets section is delta-varint encoded (offsets, weights, and
// transpose stay raw so they remain zero-copy on open); the measured
// compression ratio is printed after the write.
//
// Dynamic-update tooling (graphs/delta.h):
//   --gen-updates N:SEED[:B] with a .plog output generates N random valid
//     edge updates (inserts of absent edges, deletes of present ones) in B
//     batches (default 4) and writes them as an update log. Deterministic
//     for a fixed input + spec.
//   --apply-updates <log.plog> replays the log onto the loaded graph as a
//     delta overlay, folds it (materialize_effective), and writes the folded
//     graph — the from-scratch rebuild reference the overlay equivalence
//     gate diffs against.
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>
#include <random>
#include <set>

#include "common.h"
#include "graphs/delta.h"

using namespace pasgal;

namespace {

// Random valid update stream: tracks the evolving effective edge set the
// same way apply_updates validates it (sequentially, within and across
// batches), so every generated op is accepted on replay.
std::vector<std::vector<EdgeUpdate>> gen_update_batches(const Graph& g,
                                                        std::uint64_t count,
                                                        std::uint64_t seed,
                                                        std::uint64_t nbatches) {
  std::size_t n = g.num_vertices();
  if (n == 0) {
    throw Error(ErrorCategory::kUsage,
                "--gen-updates: the input graph has no vertices");
  }
  auto key = [](VertexId u, VertexId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  std::set<std::uint64_t> present;
  for (std::size_t u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(static_cast<VertexId>(u))) {
      present.insert(key(static_cast<VertexId>(u), v));
    }
  }
  // Unique keys, not raw adjacency: one delete suppresses every multigraph
  // copy of an edge, so a second delete of the same pair would be invalid.
  std::vector<std::uint64_t> edges(present.begin(), present.end());

  std::mt19937_64 rng(seed);
  std::vector<std::vector<EdgeUpdate>> batches(nbatches);
  for (std::uint64_t i = 0; i < count; ++i) {
    std::vector<EdgeUpdate>& batch = batches[i * nbatches / count];
    bool do_delete = !edges.empty() && (rng() & 1) != 0;
    if (!do_delete) {
      // Rejection-sample an absent edge; a near-complete graph may defeat
      // this, so fall back to a delete rather than spinning.
      bool found = false;
      for (int attempt = 0; attempt < 64 && !found; ++attempt) {
        VertexId u = static_cast<VertexId>(rng() % n);
        VertexId v = static_cast<VertexId>(rng() % n);
        if (present.count(key(u, v)) != 0) continue;
        present.insert(key(u, v));
        edges.push_back(key(u, v));
        batch.push_back({EdgeUpdate::Op::kInsert, u, v});
        found = true;
      }
      if (found) continue;
      if (edges.empty()) {
        throw Error(ErrorCategory::kUsage,
                    "--gen-updates: graph too dense to sample absent edges "
                    "and no edges left to delete");
      }
      do_delete = true;
    }
    std::size_t pick = rng() % edges.size();
    std::uint64_t k = edges[pick];
    edges[pick] = edges.back();
    edges.pop_back();
    present.erase(k);
    batch.push_back({EdgeUpdate::Op::kDelete,
                     static_cast<VertexId>(k >> 32),
                     static_cast<VertexId>(k & 0xFFFFFFFFu)});
  }
  // Drop empty batches (count < nbatches): the log format allows them, but
  // an empty batch is an invalid apply_updates call on replay.
  std::vector<std::vector<EdgeUpdate>> out;
  for (auto& b : batches) {
    if (!b.empty()) out.push_back(std::move(b));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool with_transpose = false;
  bool symmetric = false;
  bool compress = false;
  long long weights_max = 0;  // 0: unweighted output
  std::string gen_updates;          // N:SEED[:B]
  std::string apply_updates_path;   // .plog to replay + fold
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.flag("--transpose", &with_transpose)
      .flag("--symmetric", &symmetric)
      .flag("--compress", &compress)
      .integer("--weights", &weights_max, 1, 0xFFFFFFFFLL, "max_weight")
      .text("--gen-updates", &gen_updates, "N:SEED[:B]")
      .text("--apply-updates", &apply_updates_path, "updates.plog");
  common.declare(opts);
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <input> <output.{adj,bin,pgr}> %s\n",
                 argv[0], opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 3);
    std::string out = argv[2];
    auto out_ends_with = [&](const char* suffix) {
      return apps::internal::ends_with(out, suffix);
    };
    if (!out_ends_with(".adj") && !out_ends_with(".bin") &&
        !out_ends_with(".pgr") && !out_ends_with(".plog")) {
      throw Error(ErrorCategory::kUsage,
                  "output path '" + out +
                      "' must end in .adj, .bin, .pgr, or .plog");
    }
    if (out_ends_with(".plog") != !gen_updates.empty()) {
      throw Error(ErrorCategory::kUsage,
                  "--gen-updates and a .plog output go together (the spec "
                  "generates an update log, nothing else)");
    }
    if (!gen_updates.empty() &&
        (with_transpose || symmetric || compress || weights_max > 0 ||
         !apply_updates_path.empty())) {
      throw Error(ErrorCategory::kUsage,
                  "--gen-updates writes only an update log; it conflicts "
                  "with --transpose/--symmetric/--compress/--weights/"
                  "--apply-updates");
    }
    if (!apply_updates_path.empty() && weights_max > 0) {
      throw Error(ErrorCategory::kUsage,
                  "--apply-updates conflicts with --weights (graph updates "
                  "are unweighted)");
    }
    if ((with_transpose || symmetric) && !out_ends_with(".pgr")) {
      throw Error(ErrorCategory::kUsage,
                  "--transpose/--symmetric only apply to .pgr outputs");
    }
    if (compress && !out_ends_with(".pgr")) {
      throw Error(ErrorCategory::kUsage,
                  "--compress only applies to .pgr outputs");
    }

    apps::LoadedGraph loaded = apps::load_graph_timed(argv[1], common);
    Graph& g = loaded.graph;
    std::printf("load: %s in %.4f s (n=%zu m=%zu, %llu bytes mapped)\n",
                loaded.mode.c_str(), loaded.seconds, g.num_vertices(),
                g.num_edges(), (unsigned long long)loaded.bytes_mapped);

    if (!gen_updates.empty()) {
      // N:SEED[:B] — update count, RNG seed, batch count.
      std::size_t c1 = gen_updates.find(':');
      if (c1 == std::string::npos) {
        throw Error(ErrorCategory::kUsage,
                    "--gen-updates expects N:SEED[:B], got '" + gen_updates +
                        "'");
      }
      std::size_t c2 = gen_updates.find(':', c1 + 1);
      std::uint64_t count = static_cast<std::uint64_t>(cli::parse_int(
          gen_updates.substr(0, c1), "gen-updates count", 1, 1LL << 32,
          ErrorCategory::kUsage));
      std::uint64_t seed = static_cast<std::uint64_t>(cli::parse_int(
          gen_updates.substr(c1 + 1, c2 == std::string::npos
                                         ? std::string::npos
                                         : c2 - c1 - 1),
          "gen-updates seed", 0, (1LL << 62), ErrorCategory::kUsage));
      std::uint64_t nbatches =
          c2 == std::string::npos
              ? 4
              : static_cast<std::uint64_t>(cli::parse_int(
                    gen_updates.substr(c2 + 1), "gen-updates batches", 1,
                    1LL << 20, ErrorCategory::kUsage));
      if (nbatches > count) nbatches = count;
      std::vector<std::vector<EdgeUpdate>> batches =
          gen_update_batches(g, count, seed, nbatches);
      write_update_log(out, batches);
      std::uint64_t ins = 0, del = 0;
      for (const auto& b : batches) {
        for (const EdgeUpdate& u : b) {
          (u.op == EdgeUpdate::Op::kInsert ? ins : del) += 1;
        }
      }
      std::printf("wrote %s: %llu updates (%llu inserts, %llu deletes) in "
                  "%zu batches\n",
                  out.c_str(), (unsigned long long)(ins + del),
                  (unsigned long long)ins, (unsigned long long)del,
                  batches.size());
      MetricsDoc doc("graph_convert", "gen-updates", argv[1],
                     g.num_vertices(), g.num_edges());
      doc.set_param("output", out);
      doc.set_param("updates", ins + del);
      doc.set_param("seed", seed);
      apps::record_load(doc, loaded);
      Tracer tracer;
      doc.add_trial(loaded.seconds, tracer.aggregate());
      apps::finish_metrics(common, doc);
      return 0;
    }

    std::uint64_t replayed_ins = 0, replayed_del = 0, replayed_batches = 0;
    if (!apply_updates_path.empty()) {
      ApplyStats st = replay_update_log(g, apply_updates_path);
      replayed_ins = st.inserts;
      replayed_del = st.deletes;
      replayed_batches = st.batches;
      std::printf("replayed %s: %llu pending inserts, %llu pending deletes "
                  "(%llu batches); folding into the output\n",
                  apply_updates_path.c_str(), (unsigned long long)st.inserts,
                  (unsigned long long)st.deletes,
                  (unsigned long long)st.batches);
      // Fold the overlay now: the writers below stream the base CSR spans.
      g = materialize_effective(g);
    }

    auto start = std::chrono::steady_clock::now();
    if (weights_max > 0) {
      WeightedGraph<std::uint32_t> wg =
          gen::add_weights(g, static_cast<std::uint32_t>(weights_max));
      if (out_ends_with(".pgr")) {
        PgrWriteOptions wopts;
        wopts.include_transpose = with_transpose;
        wopts.symmetric = symmetric;
        wopts.compress_targets = compress;
        write_pgr(wg, out, wopts);
      } else if (out_ends_with(".bin")) {
        write_bin(wg, out);
      } else {
        write_adj(wg, out);
      }
    } else if (out_ends_with(".pgr")) {
      PgrWriteOptions wopts;
      wopts.include_transpose = with_transpose;
      wopts.symmetric = symmetric;
      wopts.compress_targets = compress;
      write_pgr(g, out, wopts);
    } else if (out_ends_with(".bin")) {
      write_bin(g, out);
    } else {
      write_adj(g, out);
    }
    double write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("wrote %s in %.4f s%s\n", out.c_str(), write_seconds,
                with_transpose ? " (with transpose sections)" : "");
    std::uint64_t out_encoded = 0;
    if (compress) {
      PgrInfo info = probe_pgr(out);
      out_encoded = info.encoded_target_bytes;
      std::uint64_t raw = g.num_edges() * sizeof(VertexId);
      std::printf("compressed targets: %llu -> %llu bytes (%.2fx)\n",
                  (unsigned long long)raw, (unsigned long long)out_encoded,
                  out_encoded == 0 ? 1.0
                                   : static_cast<double>(raw) /
                                         static_cast<double>(out_encoded));
    }

    MetricsDoc doc("graph_convert", "convert", argv[1], g.num_vertices(),
                   g.num_edges());
    doc.set_param("output", out);
    doc.set_param("with_transpose", static_cast<std::uint64_t>(with_transpose));
    doc.set_param("compress", static_cast<std::uint64_t>(compress));
    doc.set_param("weights_max", static_cast<std::uint64_t>(weights_max));
    if (replayed_batches != 0) {
      doc.set_delta(replayed_ins, replayed_del, replayed_batches, 0, 0, false);
    }
    apps::record_load(doc, loaded);
    Tracer tracer;
    doc.add_trial(loaded.seconds + write_seconds, tracer.aggregate());
    apps::finish_metrics(common, doc);
    return 0;
  });
}
