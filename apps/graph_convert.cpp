// Format converter: read a graph from any supported source and rewrite it
// in another format. The primary workflow is producing mmap-able `.pgr`
// files once, so every later driver/bench run opens them zero-copy:
//
//   graph_convert <input.{adj,bin,pgr}|spec> <output.{adj,bin,pgr}>
//                 [--transpose] [--symmetric] [--compress]
//                 [--weights <max_weight>]
//                 [--load mmap|copy] [--validate] [--json-metrics <path>]
//
// --transpose embeds the reverse CSR as extra .pgr sections (drivers and
// benches then skip rebuilding gt entirely); --symmetric records the
// caller-asserted symmetry flag in the .pgr header. Both are rejected for
// non-.pgr outputs. --weights attaches deterministic weights (uniform in
// [1, max_weight]) and writes the weighted variant of the output format,
// so sssp runs consume the file's weights section instead of regenerating.
// --validate applies the full checksum + validate_csr pass to .pgr inputs
// and re-validates the graph before writing. --compress writes a version-2
// .pgr whose targets section is delta-varint encoded (offsets, weights, and
// transpose stay raw so they remain zero-copy on open); the measured
// compression ratio is printed after the write.
//
// Exit codes: 0 ok / 1 internal / 2 usage / 3 bad input / 4 resource.
#include <chrono>

#include "common.h"

using namespace pasgal;

int main(int argc, char** argv) {
  bool with_transpose = false;
  bool symmetric = false;
  bool compress = false;
  long long weights_max = 0;  // 0: unweighted output
  cli::OptionSet opts;
  cli::CommonOptions common;
  opts.flag("--transpose", &with_transpose)
      .flag("--symmetric", &symmetric)
      .flag("--compress", &compress)
      .integer("--weights", &weights_max, 1, 0xFFFFFFFFLL, "max_weight");
  common.declare(opts);
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <input> <output.{adj,bin,pgr}> %s\n",
                 argv[0], opts.usage().c_str());
    return 2;
  }
  return apps::run_app([&]() {
    opts.parse(argc, argv, 3);
    std::string out = argv[2];
    auto out_ends_with = [&](const char* suffix) {
      return apps::internal::ends_with(out, suffix);
    };
    if (!out_ends_with(".adj") && !out_ends_with(".bin") &&
        !out_ends_with(".pgr")) {
      throw Error(ErrorCategory::kUsage,
                  "output path '" + out + "' must end in .adj, .bin, or .pgr");
    }
    if ((with_transpose || symmetric) && !out_ends_with(".pgr")) {
      throw Error(ErrorCategory::kUsage,
                  "--transpose/--symmetric only apply to .pgr outputs");
    }
    if (compress && !out_ends_with(".pgr")) {
      throw Error(ErrorCategory::kUsage,
                  "--compress only applies to .pgr outputs");
    }

    apps::LoadedGraph loaded = apps::load_graph_timed(argv[1], common);
    Graph& g = loaded.graph;
    std::printf("load: %s in %.4f s (n=%zu m=%zu, %llu bytes mapped)\n",
                loaded.mode.c_str(), loaded.seconds, g.num_vertices(),
                g.num_edges(), (unsigned long long)loaded.bytes_mapped);

    auto start = std::chrono::steady_clock::now();
    if (weights_max > 0) {
      WeightedGraph<std::uint32_t> wg =
          gen::add_weights(g, static_cast<std::uint32_t>(weights_max));
      if (out_ends_with(".pgr")) {
        PgrWriteOptions wopts;
        wopts.include_transpose = with_transpose;
        wopts.symmetric = symmetric;
        wopts.compress_targets = compress;
        write_pgr(wg, out, wopts);
      } else if (out_ends_with(".bin")) {
        write_bin(wg, out);
      } else {
        write_adj(wg, out);
      }
    } else if (out_ends_with(".pgr")) {
      PgrWriteOptions wopts;
      wopts.include_transpose = with_transpose;
      wopts.symmetric = symmetric;
      wopts.compress_targets = compress;
      write_pgr(g, out, wopts);
    } else if (out_ends_with(".bin")) {
      write_bin(g, out);
    } else {
      write_adj(g, out);
    }
    double write_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    std::printf("wrote %s in %.4f s%s\n", out.c_str(), write_seconds,
                with_transpose ? " (with transpose sections)" : "");
    std::uint64_t out_encoded = 0;
    if (compress) {
      PgrInfo info = probe_pgr(out);
      out_encoded = info.encoded_target_bytes;
      std::uint64_t raw = g.num_edges() * sizeof(VertexId);
      std::printf("compressed targets: %llu -> %llu bytes (%.2fx)\n",
                  (unsigned long long)raw, (unsigned long long)out_encoded,
                  out_encoded == 0 ? 1.0
                                   : static_cast<double>(raw) /
                                         static_cast<double>(out_encoded));
    }

    MetricsDoc doc("graph_convert", "convert", argv[1], g.num_vertices(),
                   g.num_edges());
    doc.set_param("output", out);
    doc.set_param("with_transpose", static_cast<std::uint64_t>(with_transpose));
    doc.set_param("compress", static_cast<std::uint64_t>(compress));
    doc.set_param("weights_max", static_cast<std::uint64_t>(weights_max));
    apps::record_load(doc, loaded);
    Tracer tracer;
    doc.add_trial(loaded.seconds + write_seconds, tracer.aggregate());
    apps::finish_metrics(common, doc);
    return 0;
  });
}
