# Empty dependencies file for dependency_resolver.
# This may be replaced when dependencies are built.
