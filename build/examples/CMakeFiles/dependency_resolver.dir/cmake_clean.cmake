file(REMOVE_RECURSE
  "CMakeFiles/dependency_resolver.dir/dependency_resolver.cpp.o"
  "CMakeFiles/dependency_resolver.dir/dependency_resolver.cpp.o.d"
  "dependency_resolver"
  "dependency_resolver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dependency_resolver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
