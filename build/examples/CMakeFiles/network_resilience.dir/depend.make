# Empty dependencies file for network_resilience.
# This may be replaced when dependencies are built.
