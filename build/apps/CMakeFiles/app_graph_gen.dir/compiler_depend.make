# Empty compiler generated dependencies file for app_graph_gen.
# This may be replaced when dependencies are built.
