# Empty dependencies file for app_bfs.
# This may be replaced when dependencies are built.
