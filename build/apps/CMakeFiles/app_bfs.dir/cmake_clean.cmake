file(REMOVE_RECURSE
  "CMakeFiles/app_bfs.dir/bfs.cpp.o"
  "CMakeFiles/app_bfs.dir/bfs.cpp.o.d"
  "bfs"
  "bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
