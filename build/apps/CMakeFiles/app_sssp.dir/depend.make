# Empty dependencies file for app_sssp.
# This may be replaced when dependencies are built.
