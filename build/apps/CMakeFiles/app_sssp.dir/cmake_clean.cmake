file(REMOVE_RECURSE
  "CMakeFiles/app_sssp.dir/sssp.cpp.o"
  "CMakeFiles/app_sssp.dir/sssp.cpp.o.d"
  "sssp"
  "sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
