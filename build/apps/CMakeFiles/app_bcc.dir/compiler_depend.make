# Empty compiler generated dependencies file for app_bcc.
# This may be replaced when dependencies are built.
