file(REMOVE_RECURSE
  "CMakeFiles/app_bcc.dir/bcc.cpp.o"
  "CMakeFiles/app_bcc.dir/bcc.cpp.o.d"
  "bcc"
  "bcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_bcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
