# Empty dependencies file for app_scc.
# This may be replaced when dependencies are built.
