file(REMOVE_RECURSE
  "CMakeFiles/app_scc.dir/scc.cpp.o"
  "CMakeFiles/app_scc.dir/scc.cpp.o.d"
  "scc"
  "scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
