# CMake generated Testfile for 
# Source directory: /root/repo/apps
# Build directory: /root/repo/build/apps
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(app_exit_bfs_ok "/usr/bin/sh" "-c" "/root/repo/build/apps/bfs chain:1000 --validate -s 0 -r 1 > /dev/null 2>&1; test \$? -eq 0")
set_tests_properties(app_exit_bfs_ok PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;23;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_bfs_no_args "/usr/bin/sh" "-c" "/root/repo/build/apps/bfs > /dev/null 2>&1; test \$? -eq 2")
set_tests_properties(app_exit_bfs_no_args PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;25;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_bfs_bad_spec_field "/usr/bin/sh" "-c" "/root/repo/build/apps/bfs grid:abc:10 > /dev/null 2>&1; test \$? -eq 2")
set_tests_properties(app_exit_bfs_bad_spec_field PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;27;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_bfs_unknown_flag "/usr/bin/sh" "-c" "/root/repo/build/apps/bfs chain:100 -z 5 > /dev/null 2>&1; test \$? -eq 2")
set_tests_properties(app_exit_bfs_unknown_flag PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;29;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_bfs_missing_file "/usr/bin/sh" "-c" "/root/repo/build/apps/bfs no_such_graph.adj > /dev/null 2>&1; test \$? -eq 3")
set_tests_properties(app_exit_bfs_missing_file PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;31;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_bfs_resource_limit "/usr/bin/sh" "-c" "PASGAL_MEM_LIMIT_MB=64 /root/repo/build/apps/bfs rmat:30:1000000000000 > /dev/null 2>&1; test \$? -eq 4")
set_tests_properties(app_exit_bfs_resource_limit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;33;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_sssp_ok "/usr/bin/sh" "-c" "/root/repo/build/apps/sssp chain:1000 -s 0 -r 1 > /dev/null 2>&1; test \$? -eq 0")
set_tests_properties(app_exit_sssp_ok PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;35;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_sssp_bad_algo "/usr/bin/sh" "-c" "/root/repo/build/apps/sssp chain:100 -a nope > /dev/null 2>&1; test \$? -eq 2")
set_tests_properties(app_exit_sssp_bad_algo PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;37;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_scc_bad_spec_kind "/usr/bin/sh" "-c" "/root/repo/build/apps/scc blorp:10 > /dev/null 2>&1; test \$? -eq 2")
set_tests_properties(app_exit_scc_bad_spec_kind PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;39;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
add_test(app_exit_graph_gen_bad_suffix "/usr/bin/sh" "-c" "/root/repo/build/apps/graph_gen chain:10 out.xyz > /dev/null 2>&1; test \$? -eq 2")
set_tests_properties(app_exit_graph_gen_bad_suffix PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/apps/CMakeLists.txt;19;add_test;/root/repo/apps/CMakeLists.txt;41;pasgal_exit_test;/root/repo/apps/CMakeLists.txt;0;")
