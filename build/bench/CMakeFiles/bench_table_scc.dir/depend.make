# Empty dependencies file for bench_table_scc.
# This may be replaced when dependencies are built.
