file(REMOVE_RECURSE
  "CMakeFiles/bench_table_scc.dir/bench_table_scc.cpp.o"
  "CMakeFiles/bench_table_scc.dir/bench_table_scc.cpp.o.d"
  "bench_table_scc"
  "bench_table_scc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_scc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
