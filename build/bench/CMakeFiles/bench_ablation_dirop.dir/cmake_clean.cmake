file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_dirop.dir/bench_ablation_dirop.cpp.o"
  "CMakeFiles/bench_ablation_dirop.dir/bench_ablation_dirop.cpp.o.d"
  "bench_ablation_dirop"
  "bench_ablation_dirop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_dirop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
