# Empty dependencies file for bench_ablation_dirop.
# This may be replaced when dependencies are built.
