file(REMOVE_RECURSE
  "CMakeFiles/bench_table_bcc.dir/bench_table_bcc.cpp.o"
  "CMakeFiles/bench_table_bcc.dir/bench_table_bcc.cpp.o.d"
  "bench_table_bcc"
  "bench_table_bcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_bcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
