# Empty dependencies file for bench_fig2_speedup_bars.
# This may be replaced when dependencies are built.
