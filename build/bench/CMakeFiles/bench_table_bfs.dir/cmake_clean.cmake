file(REMOVE_RECURSE
  "CMakeFiles/bench_table_bfs.dir/bench_table_bfs.cpp.o"
  "CMakeFiles/bench_table_bfs.dir/bench_table_bfs.cpp.o.d"
  "bench_table_bfs"
  "bench_table_bfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_bfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
