# Empty dependencies file for bench_table_bfs.
# This may be replaced when dependencies are built.
