file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hashbag.dir/bench_ablation_hashbag.cpp.o"
  "CMakeFiles/bench_ablation_hashbag.dir/bench_ablation_hashbag.cpp.o.d"
  "bench_ablation_hashbag"
  "bench_ablation_hashbag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hashbag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
