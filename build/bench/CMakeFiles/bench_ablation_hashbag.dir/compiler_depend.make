# Empty compiler generated dependencies file for bench_ablation_hashbag.
# This may be replaced when dependencies are built.
