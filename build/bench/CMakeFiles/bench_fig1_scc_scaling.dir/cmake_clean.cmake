file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_scc_scaling.dir/bench_fig1_scc_scaling.cpp.o"
  "CMakeFiles/bench_fig1_scc_scaling.dir/bench_fig1_scc_scaling.cpp.o.d"
  "bench_fig1_scc_scaling"
  "bench_fig1_scc_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_scc_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
