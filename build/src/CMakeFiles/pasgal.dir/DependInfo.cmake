
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/bcc/fast_bcc.cpp" "src/CMakeFiles/pasgal.dir/algorithms/bcc/fast_bcc.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/bcc/fast_bcc.cpp.o.d"
  "/root/repo/src/algorithms/bcc/gbbs_bcc.cpp" "src/CMakeFiles/pasgal.dir/algorithms/bcc/gbbs_bcc.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/bcc/gbbs_bcc.cpp.o.d"
  "/root/repo/src/algorithms/bcc/hopcroft_tarjan.cpp" "src/CMakeFiles/pasgal.dir/algorithms/bcc/hopcroft_tarjan.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/bcc/hopcroft_tarjan.cpp.o.d"
  "/root/repo/src/algorithms/bcc/tarjan_vishkin.cpp" "src/CMakeFiles/pasgal.dir/algorithms/bcc/tarjan_vishkin.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/bcc/tarjan_vishkin.cpp.o.d"
  "/root/repo/src/algorithms/bfs/gapbs_bfs.cpp" "src/CMakeFiles/pasgal.dir/algorithms/bfs/gapbs_bfs.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/bfs/gapbs_bfs.cpp.o.d"
  "/root/repo/src/algorithms/bfs/gbbs_bfs.cpp" "src/CMakeFiles/pasgal.dir/algorithms/bfs/gbbs_bfs.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/bfs/gbbs_bfs.cpp.o.d"
  "/root/repo/src/algorithms/bfs/pasgal_bfs.cpp" "src/CMakeFiles/pasgal.dir/algorithms/bfs/pasgal_bfs.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/bfs/pasgal_bfs.cpp.o.d"
  "/root/repo/src/algorithms/bfs/seq_bfs.cpp" "src/CMakeFiles/pasgal.dir/algorithms/bfs/seq_bfs.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/bfs/seq_bfs.cpp.o.d"
  "/root/repo/src/algorithms/cc/cc.cpp" "src/CMakeFiles/pasgal.dir/algorithms/cc/cc.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/cc/cc.cpp.o.d"
  "/root/repo/src/algorithms/cc/ldd.cpp" "src/CMakeFiles/pasgal.dir/algorithms/cc/ldd.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/cc/ldd.cpp.o.d"
  "/root/repo/src/algorithms/kcore/pasgal_kcore.cpp" "src/CMakeFiles/pasgal.dir/algorithms/kcore/pasgal_kcore.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/kcore/pasgal_kcore.cpp.o.d"
  "/root/repo/src/algorithms/kcore/seq_kcore.cpp" "src/CMakeFiles/pasgal.dir/algorithms/kcore/seq_kcore.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/kcore/seq_kcore.cpp.o.d"
  "/root/repo/src/algorithms/scc/condensation.cpp" "src/CMakeFiles/pasgal.dir/algorithms/scc/condensation.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/scc/condensation.cpp.o.d"
  "/root/repo/src/algorithms/scc/multistep_scc.cpp" "src/CMakeFiles/pasgal.dir/algorithms/scc/multistep_scc.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/scc/multistep_scc.cpp.o.d"
  "/root/repo/src/algorithms/scc/pasgal_scc.cpp" "src/CMakeFiles/pasgal.dir/algorithms/scc/pasgal_scc.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/scc/pasgal_scc.cpp.o.d"
  "/root/repo/src/algorithms/scc/tarjan_scc.cpp" "src/CMakeFiles/pasgal.dir/algorithms/scc/tarjan_scc.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/scc/tarjan_scc.cpp.o.d"
  "/root/repo/src/algorithms/sssp/bellman_ford.cpp" "src/CMakeFiles/pasgal.dir/algorithms/sssp/bellman_ford.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/sssp/bellman_ford.cpp.o.d"
  "/root/repo/src/algorithms/sssp/dijkstra.cpp" "src/CMakeFiles/pasgal.dir/algorithms/sssp/dijkstra.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/sssp/dijkstra.cpp.o.d"
  "/root/repo/src/algorithms/sssp/ppsp.cpp" "src/CMakeFiles/pasgal.dir/algorithms/sssp/ppsp.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/sssp/ppsp.cpp.o.d"
  "/root/repo/src/algorithms/sssp/preconditions.cpp" "src/CMakeFiles/pasgal.dir/algorithms/sssp/preconditions.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/sssp/preconditions.cpp.o.d"
  "/root/repo/src/algorithms/sssp/stepping.cpp" "src/CMakeFiles/pasgal.dir/algorithms/sssp/stepping.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/sssp/stepping.cpp.o.d"
  "/root/repo/src/algorithms/toposort/toposort.cpp" "src/CMakeFiles/pasgal.dir/algorithms/toposort/toposort.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/toposort/toposort.cpp.o.d"
  "/root/repo/src/algorithms/tree/euler.cpp" "src/CMakeFiles/pasgal.dir/algorithms/tree/euler.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/algorithms/tree/euler.cpp.o.d"
  "/root/repo/src/graphs/graph_io.cpp" "src/CMakeFiles/pasgal.dir/graphs/graph_io.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/graphs/graph_io.cpp.o.d"
  "/root/repo/src/graphs/graph_stats.cpp" "src/CMakeFiles/pasgal.dir/graphs/graph_stats.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/graphs/graph_stats.cpp.o.d"
  "/root/repo/src/graphs/knn.cpp" "src/CMakeFiles/pasgal.dir/graphs/knn.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/graphs/knn.cpp.o.d"
  "/root/repo/src/graphs/validate.cpp" "src/CMakeFiles/pasgal.dir/graphs/validate.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/graphs/validate.cpp.o.d"
  "/root/repo/src/parlay/scheduler.cpp" "src/CMakeFiles/pasgal.dir/parlay/scheduler.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/parlay/scheduler.cpp.o.d"
  "/root/repo/src/pasgal/stats.cpp" "src/CMakeFiles/pasgal.dir/pasgal/stats.cpp.o" "gcc" "src/CMakeFiles/pasgal.dir/pasgal/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
