# Empty dependencies file for pasgal.
# This may be replaced when dependencies are built.
