file(REMOVE_RECURSE
  "libpasgal.a"
)
