file(REMOVE_RECURSE
  "CMakeFiles/test_sssp.dir/test_sssp.cpp.o"
  "CMakeFiles/test_sssp.dir/test_sssp.cpp.o.d"
  "test_sssp"
  "test_sssp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sssp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
