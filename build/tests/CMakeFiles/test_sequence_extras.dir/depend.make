# Empty dependencies file for test_sequence_extras.
# This may be replaced when dependencies are built.
