file(REMOVE_RECURSE
  "CMakeFiles/test_sequence_extras.dir/test_sequence_extras.cpp.o"
  "CMakeFiles/test_sequence_extras.dir/test_sequence_extras.cpp.o.d"
  "test_sequence_extras"
  "test_sequence_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sequence_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
