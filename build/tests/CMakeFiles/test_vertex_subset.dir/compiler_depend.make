# Empty compiler generated dependencies file for test_vertex_subset.
# This may be replaced when dependencies are built.
