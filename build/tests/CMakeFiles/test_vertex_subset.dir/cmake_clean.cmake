file(REMOVE_RECURSE
  "CMakeFiles/test_vertex_subset.dir/test_vertex_subset.cpp.o"
  "CMakeFiles/test_vertex_subset.dir/test_vertex_subset.cpp.o.d"
  "test_vertex_subset"
  "test_vertex_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vertex_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
