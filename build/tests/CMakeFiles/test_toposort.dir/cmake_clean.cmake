file(REMOVE_RECURSE
  "CMakeFiles/test_toposort.dir/test_toposort.cpp.o"
  "CMakeFiles/test_toposort.dir/test_toposort.cpp.o.d"
  "test_toposort"
  "test_toposort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_toposort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
