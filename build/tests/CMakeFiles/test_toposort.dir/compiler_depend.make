# Empty compiler generated dependencies file for test_toposort.
# This may be replaced when dependencies are built.
