# Empty compiler generated dependencies file for test_hashbag.
# This may be replaced when dependencies are built.
