file(REMOVE_RECURSE
  "CMakeFiles/test_hashbag.dir/test_hashbag.cpp.o"
  "CMakeFiles/test_hashbag.dir/test_hashbag.cpp.o.d"
  "test_hashbag"
  "test_hashbag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hashbag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
