file(REMOVE_RECURSE
  "CMakeFiles/test_edge_map.dir/test_edge_map.cpp.o"
  "CMakeFiles/test_edge_map.dir/test_edge_map.cpp.o.d"
  "test_edge_map"
  "test_edge_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edge_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
