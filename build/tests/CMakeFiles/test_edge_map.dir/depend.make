# Empty dependencies file for test_edge_map.
# This may be replaced when dependencies are built.
