# Empty compiler generated dependencies file for test_ppsp.
# This may be replaced when dependencies are built.
