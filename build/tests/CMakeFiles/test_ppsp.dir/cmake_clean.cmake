file(REMOVE_RECURSE
  "CMakeFiles/test_ppsp.dir/test_ppsp.cpp.o"
  "CMakeFiles/test_ppsp.dir/test_ppsp.cpp.o.d"
  "test_ppsp"
  "test_ppsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ppsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
