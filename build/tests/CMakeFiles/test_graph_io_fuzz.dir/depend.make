# Empty dependencies file for test_graph_io_fuzz.
# This may be replaced when dependencies are built.
