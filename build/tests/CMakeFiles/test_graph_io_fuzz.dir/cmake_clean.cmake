file(REMOVE_RECURSE
  "CMakeFiles/test_graph_io_fuzz.dir/test_graph_io_fuzz.cpp.o"
  "CMakeFiles/test_graph_io_fuzz.dir/test_graph_io_fuzz.cpp.o.d"
  "test_graph_io_fuzz"
  "test_graph_io_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_io_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
