file(REMOVE_RECURSE
  "CMakeFiles/test_random_sweeps.dir/test_random_sweeps.cpp.o"
  "CMakeFiles/test_random_sweeps.dir/test_random_sweeps.cpp.o.d"
  "test_random_sweeps"
  "test_random_sweeps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_random_sweeps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
