# Empty compiler generated dependencies file for test_random_sweeps.
# This may be replaced when dependencies are built.
