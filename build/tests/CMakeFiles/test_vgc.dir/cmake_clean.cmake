file(REMOVE_RECURSE
  "CMakeFiles/test_vgc.dir/test_vgc.cpp.o"
  "CMakeFiles/test_vgc.dir/test_vgc.cpp.o.d"
  "test_vgc"
  "test_vgc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vgc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
