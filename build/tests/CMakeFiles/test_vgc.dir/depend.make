# Empty dependencies file for test_vgc.
# This may be replaced when dependencies are built.
