// Dependency resolution: SCC condensation + topological scheduling.
//
//   $ ./examples/dependency_resolver [n]
//
// Models a build system's dependency graph (targets + depends-on edges,
// including mutually recursive groups). PASGAL answers:
//   * which targets form cycles (SCCs of size > 1 — must build as a unit),
//   * a legal build order over the condensation DAG (parallel toposort),
//   * the critical-path depth (how many sequential build waves are needed).
#include <cstdio>
#include <cstdlib>
#include <map>

#include "algorithms/scc/condensation.h"
#include "algorithms/toposort/toposort.h"
#include "graphs/generators.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 50000;

  // A layered random DAG plus a sprinkling of back edges to create
  // mutually-recursive target groups.
  Random rng(31);
  std::vector<Edge> deps;
  for (std::size_t i = 1; i < n; ++i) {
    std::size_t fan = 1 + rng.ith_rand(3 * i) % 3;
    for (std::size_t f = 0; f < fan; ++f) {
      VertexId dep = static_cast<VertexId>(rng.ith_rand(3 * i + f) % i);
      deps.push_back({dep, static_cast<VertexId>(i)});
    }
    if (rng.ith_rand(7 * i) % 20 == 0) {  // 5% of targets join a cycle
      VertexId back = static_cast<VertexId>(i - 1 - rng.ith_rand(9 * i) % std::min<std::size_t>(i, 5));
      deps.push_back({static_cast<VertexId>(i), back});
    }
  }
  Graph g = Graph::from_edges(n, deps, /*dedup=*/true, /*drop_self_loops=*/true);
  Graph gt = g.transpose();
  std::printf("dependency graph: %zu targets, %zu edges\n", g.num_vertices(),
              g.num_edges());

  // Cyclic groups.
  auto labels = normalize_scc_labels(pasgal_scc(g, gt));
  std::map<VertexId, std::size_t> group_size;
  for (auto l : labels) ++group_size[l];
  std::size_t cyclic_groups = 0, largest = 0;
  for (auto& [l, s] : group_size) {
    if (s > 1) {
      ++cyclic_groups;
      largest = std::max(largest, s);
    }
  }
  std::printf("mutually recursive groups: %zu (largest has %zu targets)\n",
              cyclic_groups, largest);

  // Build schedule over the condensation.
  Condensation cond = scc_condensation(g, labels);
  RunStats topo_stats;
  std::vector<std::uint32_t> levels;
  if (Status s = pasgal_toposort(cond.dag, levels, {}, &topo_stats); !s.ok()) {
    std::printf("internal error: %s\n", s.to_string().c_str());
    return 1;
  }
  std::uint32_t depth = 0;
  for (auto l : levels) depth = std::max(depth, l);
  auto order = topological_order(levels);
  std::printf("build plan: %zu units, critical-path depth %u "
              "(toposort in %llu rounds)\n",
              cond.dag.num_vertices(), depth + 1,
              (unsigned long long)topo_stats.rounds());
  std::printf("first units to build:");
  for (std::size_t i = 0; i < order.size() && i < 6; ++i) {
    std::printf(" target%u", cond.representative[order[i]]);
  }
  std::printf(" ...\n");

  // Wave widths (how parallel each build wave is).
  std::vector<std::size_t> wave(depth + 1, 0);
  for (auto l : levels) ++wave[l];
  std::size_t widest = 0;
  for (auto w : wave) widest = std::max(widest, w);
  std::printf("widest wave builds %zu units in parallel\n", widest);
  return 0;
}
