// Social-network analytics: the low-diameter workload class.
//
//   $ ./examples/social_analysis [log2_users]
//
// On a power-law follower graph: degrees of separation from the most
// followed user (BFS with direction optimization), mutual-follow communities
// (SCC of the follow graph), and audience reach of a sample of users.
#include <cstdio>
#include <cstdlib>
#include <map>

#include "algorithms/bfs/bfs.h"
#include "algorithms/scc/scc.h"
#include "graphs/generators.h"

using namespace pasgal;

int main(int argc, char** argv) {
  int log2_users = argc > 1 ? std::atoi(argv[1]) : 17;
  Graph follows = gen::rmat(log2_users, std::size_t{14} << log2_users, 99);
  Graph followers = follows.transpose();
  std::printf("network: %zu users, %zu follow edges\n", follows.num_vertices(),
              follows.num_edges());

  // Most-followed user = max in-degree.
  VertexId celebrity = 0;
  for (VertexId v = 0; v < follows.num_vertices(); ++v) {
    if (followers.out_degree(v) > followers.out_degree(celebrity)) celebrity = v;
  }
  std::printf("most followed user: %u (%llu followers)\n", celebrity,
              (unsigned long long)followers.out_degree(celebrity));

  // Degrees of separation along follower edges (who hears the celebrity).
  RunStats bfs_stats;
  auto hops = pasgal_bfs(follows, followers, celebrity, {}, &bfs_stats);
  std::map<std::uint32_t, std::size_t> histogram;
  std::size_t unreachable = 0;
  for (auto h : hops) {
    if (h == kInfDist) {
      ++unreachable;
    } else {
      ++histogram[h];
    }
  }
  std::printf("degrees of separation from %u (%llu BFS rounds):\n", celebrity,
              (unsigned long long)bfs_stats.rounds());
  for (auto [h, count] : histogram) {
    std::printf("  %2u hops: %9zu users\n", h, count);
  }
  std::printf("  never reached: %zu users\n", unreachable);

  // Mutual-follow communities: SCCs of the follow graph.
  auto scc = normalize_scc_labels(pasgal_scc(follows, followers));
  std::map<VertexId, std::size_t> scc_size;
  for (auto label : scc) ++scc_size[label];
  std::size_t giant = 0, nontrivial = 0;
  for (auto [label, size] : scc_size) {
    giant = std::max(giant, size);
    if (size > 1) ++nontrivial;
  }
  std::printf("mutual-follow communities: %zu of size >1; the giant one has "
              "%zu users (%.1f%% of the network)\n",
              nontrivial, giant,
              100.0 * double(giant) / double(follows.num_vertices()));
  return 0;
}
