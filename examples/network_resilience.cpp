// Network resilience audit via biconnectivity.
//
//   $ ./examples/network_resilience
//
// Models a backbone network (a chain of ring "pods" with tap lines — the
// large-diameter mesh class from the paper) and uses FAST-BCC to find its
// single points of failure: articulation nodes (whose loss disconnects the
// network) and bridge links (whose loss partitions it). Also shows the fix:
// adding redundant links and re-auditing.
#include <cstdio>

#include "algorithms/bcc/bcc.h"
#include "graphs/generators.h"

using namespace pasgal;

namespace {

void audit(const char* label, const Graph& g) {
  RunStats stats;
  BccResult bcc = fast_bcc(g, &stats);
  auto cuts = articulation_points(g, bcc);
  std::size_t bridges = count_bridges(g, bcc);
  std::printf("%s: %zu nodes, %zu links -> %zu biconnected components, "
              "%zu articulation nodes, %zu bridge links (%llu rounds)\n",
              label, g.num_vertices(), g.num_edges() / 2, bcc.num_bccs,
              cuts.size(), bridges, (unsigned long long)stats.rounds());
}

}  // namespace

int main() {
  // 60 pods of 24 routers each, pods chained by single uplinks: every
  // uplink is a bridge and every junction router an articulation point.
  Graph backbone = gen::bubbles(60, 24);
  audit("initial backbone   ", backbone);

  // Remediation: add a redundant express link between every second pod.
  auto edges = backbone.to_edges();
  std::size_t pod = 24;
  for (std::size_t ring = 0; ring + 2 < 60; ring += 2) {
    VertexId a = static_cast<VertexId>(ring * pod + 3);
    VertexId b = static_cast<VertexId>((ring + 2) * pod + 3);
    edges.push_back({a, b});
    edges.push_back({b, a});
  }
  Graph hardened = Graph::from_edges(backbone.num_vertices(), edges,
                                     /*dedup=*/true, /*drop_self_loops=*/true);
  audit("with express links ", hardened);

  // The worst offenders: articulation points ranked by how many distinct
  // components they touch.
  BccResult bcc = fast_bcc(backbone);
  auto cuts = articulation_points(backbone, bcc);
  std::printf("first articulation nodes in the initial design:");
  for (std::size_t i = 0; i < cuts.size() && i < 8; ++i) {
    std::printf(" %u", cuts[i]);
  }
  std::printf("%s\n", cuts.size() > 8 ? " ..." : "");
  return 0;
}
