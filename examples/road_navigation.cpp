// Road navigation: the paper's motivating large-diameter workload.
//
//   $ ./examples/road_navigation [side]
//
// Models a city street network as a directed lattice with one-way streets,
// then answers the questions a routing service asks:
//   * shortest travel times from a depot (rho-stepping SSSP),
//   * which addresses can reach the depot AND be reached from it
//     (strong connectivity — one-way streets make this non-trivial),
//   * how much the one-way layout costs versus two-way travel.
#include <cstdio>
#include <cstdlib>

#include "algorithms/scc/scc.h"
#include "algorithms/sssp/sssp.h"
#include "graphs/generators.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 400;
  // 70% of streets are two-way; weights model travel seconds per block.
  Graph streets = gen::road_grid(side, side, 0.70, 7);
  Graph streets_rev = streets.transpose();
  auto travel = gen::add_weights(streets, /*max_weight=*/90, 8);
  auto travel_rev = travel.transpose();

  VertexId depot = static_cast<VertexId>(side * side / 2 + side / 2);
  std::printf("city: %zu intersections, %zu street segments, depot at %u\n",
              streets.num_vertices(), streets.num_edges(), depot);

  // Travel times from the depot and back to the depot.
  auto out_time = rho_stepping(travel, depot);
  auto back_time = rho_stepping(travel_rev, depot);

  std::size_t deliverable = 0;
  Dist worst_round_trip = 0;
  for (std::size_t v = 0; v < streets.num_vertices(); ++v) {
    if (out_time[v] != kInfWeightDist && back_time[v] != kInfWeightDist) {
      ++deliverable;
      worst_round_trip = std::max(worst_round_trip, out_time[v] + back_time[v]);
    }
  }
  std::printf("deliverable addresses (round trip possible): %zu (%.1f%%)\n",
              deliverable,
              100.0 * double(deliverable) / double(streets.num_vertices()));
  std::printf("worst round-trip time: %llu seconds\n",
              (unsigned long long)worst_round_trip);

  // Strong connectivity tells the same story globally: every address in the
  // depot's SCC has a legal route both ways.
  RunStats scc_stats;
  auto scc = normalize_scc_labels(pasgal_scc(streets, streets_rev, {}, &scc_stats));
  std::size_t same_scc = 0;
  for (auto label : scc) {
    if (label == scc[depot]) ++same_scc;
  }
  std::printf("depot's strongly connected zone: %zu intersections "
              "(SCC computed in %llu rounds despite diameter ~%zu)\n",
              same_scc, (unsigned long long)scc_stats.rounds(), 2 * side);

  // Sample a few concrete routes.
  std::printf("sample travel times from depot (seconds):\n");
  for (std::size_t corner : {std::size_t{0}, side - 1, side * (side - 1),
                             side * side - 1}) {
    Dist t = out_time[corner];
    if (t == kInfWeightDist) {
      std::printf("  -> intersection %8zu: unreachable (one-way maze)\n", corner);
    } else {
      std::printf("  -> intersection %8zu: %llu\n", corner,
                  (unsigned long long)t);
    }
  }
  return 0;
}
