// Quickstart: build a graph, run the core PASGAL algorithms, inspect stats.
//
//   $ ./examples/quickstart [n]
//
// Demonstrates the public API end to end: generators, BFS, connectivity,
// SCC, SSSP, and the per-run instrumentation (rounds / edges scanned) that
// the library exposes for every algorithm.
#include <cstdio>
#include <cstdlib>

#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/scc/scc.h"
#include "algorithms/sssp/sssp.h"
#include "graphs/generators.h"

using namespace pasgal;

int main(int argc, char** argv) {
  std::size_t side = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 300;

  // A road-network-like directed graph: side x side lattice, 85% of streets
  // two-way. This is the graph class PASGAL is designed to be fast on.
  Graph g = gen::road_grid(side, side, 0.85, 1);
  Graph gt = g.transpose();
  std::printf("graph: %zu vertices, %zu directed edges\n", g.num_vertices(),
              g.num_edges());

  // --- BFS with vertical granularity control ------------------------------
  RunStats bfs_stats;
  auto dist = pasgal_bfs(g, gt, /*source=*/0, {}, &bfs_stats);
  std::uint64_t reached = 0, max_d = 0;
  for (auto d : dist) {
    if (d != kInfDist) {
      ++reached;
      max_d = std::max<std::uint64_t>(max_d, d);
    }
  }
  std::printf("BFS:  reached %llu vertices, eccentricity %llu, "
              "%llu rounds (vs ~%llu for level-synchronous BFS)\n",
              (unsigned long long)reached, (unsigned long long)max_d,
              (unsigned long long)bfs_stats.rounds(), (unsigned long long)max_d);

  // --- connectivity (treating edges as undirected) -------------------------
  auto cc = connected_components(g);
  std::printf("CC:   %zu weakly-connected components, spanning forest of %zu edges\n",
              cc.num_components, cc.forest.size());

  // --- strongly connected components ---------------------------------------
  RunStats scc_stats;
  auto scc = pasgal_scc(g, gt, {}, &scc_stats);
  auto norm = normalize_scc_labels(scc);
  std::size_t giant = 0;
  {
    std::vector<std::size_t> count(g.num_vertices(), 0);
    for (auto r : norm) giant = std::max(giant, ++count[r]);
  }
  std::printf("SCC:  largest strongly connected component has %zu of %zu "
              "vertices (%llu rounds)\n",
              giant, g.num_vertices(), (unsigned long long)scc_stats.rounds());

  // --- shortest paths -------------------------------------------------------
  auto wg = gen::add_weights(g, /*max_weight=*/100, 2);
  auto sp = rho_stepping(wg, 0);
  Dist far = 0;
  for (auto d : sp) {
    if (d != kInfWeightDist) far = std::max(far, d);
  }
  std::printf("SSSP: farthest reachable vertex at weighted distance %llu\n",
              (unsigned long long)far);
  return 0;
}
