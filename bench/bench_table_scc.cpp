// Reproduces Table A3 (SCC running times: PASGAL vs GBBS vs Multistep vs
// sequential Tarjan) plus rounds and projected speedups. Directed graphs
// only, as in the paper ("SCC does not apply to undirected graphs").
// Per-run telemetry (round traces, phase breakdowns) lands in BENCH_scc.json.
#include <cstdio>

#include "algorithms/scc/scc.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  Table times({"PASGAL", "GBBS", "Multistep", "Tarjan*"});
  Table rounds({"PASGAL", "GBBS", "Multistep"});
  Table speedup96({"PASGAL", "GBBS", "Multistep"});
  BenchJson metrics("scc");

  for (const auto& spec : directed_suite()) {
    Graph g = spec.build();
    Graph gt = g.transpose();

    AlgoOptions opt;
    auto seq = tarjan_scc(g, opt);
    auto pasgal = pasgal_scc(g, gt, opt);
    auto gbbs = gbbs_scc(g, gt, opt);
    auto multi = multistep_scc(g, gt, opt);

    auto want = normalize_scc_labels(seq.output);
    if (normalize_scc_labels(pasgal.output) != want ||
        normalize_scc_labels(gbbs.output) != want ||
        normalize_scc_labels(multi.output) != want) {
      std::fprintf(stderr, "SCC MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }

    auto record = [&](const char* variant, const auto& report) {
      MetricsDoc doc("scc", variant, spec.name, g.num_vertices(),
                     g.num_edges());
      doc.add_trial(report.seconds, report.telemetry);
      metrics.add(doc);
    };
    record("seq", seq);
    record("pasgal", pasgal);
    record("gbbs", gbbs);
    record("multistep", multi);

    times.add_row(spec.cls, spec.name,
                  {pasgal.seconds, gbbs.seconds, multi.seconds, seq.seconds});
    rounds.add_row(spec.cls, spec.name,
                   {double(pasgal.telemetry.rounds.size()),
                    double(gbbs.telemetry.rounds.size()),
                    double(multi.telemetry.rounds.size())});
    Projection proj = calibrate(seq.seconds, seq.telemetry);
    double seq_ns = seq.seconds * 1e9;
    speedup96.add_row(spec.cls, spec.name,
                      {proj.speedup_at(96, pasgal.telemetry, seq_ns),
                       proj.speedup_at(96, gbbs.telemetry, seq_ns),
                       proj.speedup_at(96, multi.telemetry, seq_ns)});
    std::fflush(stdout);
  }

  times.print("Table A3: SCC running time (this machine, 1 core)", "seconds");
  rounds.print("SCC global synchronizations (rounds)", "count");
  speedup96.print(
      "SCC projected speedup over sequential Tarjan at P=96 (cost model)",
      "speedup; <1 means slower than sequential");
  return metrics.write() ? 0 : 1;
}
