// Reproduces Table A3 (SCC running times: PASGAL vs GBBS vs Multistep vs
// sequential Tarjan) plus rounds and projected speedups. Directed graphs
// only, as in the paper ("SCC does not apply to undirected graphs").
#include <cstdio>

#include "algorithms/scc/scc.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  Table times({"PASGAL", "GBBS", "Multistep", "Tarjan*"});
  Table rounds({"PASGAL", "GBBS", "Multistep"});
  Table speedup96({"PASGAL", "GBBS", "Multistep"});

  for (const auto& spec : directed_suite()) {
    Graph g = spec.build();
    Graph gt = g.transpose();

    RunStats seq_stats, pasgal_stats, gbbs_stats, multi_stats;
    std::vector<SccLabel> ref, l1, l2, l3;
    double t_seq = time_seconds([&] { ref = tarjan_scc(g, &seq_stats); });
    double t_pasgal =
        time_seconds([&] { l1 = pasgal_scc(g, gt, {}, &pasgal_stats); });
    double t_gbbs = time_seconds([&] { l2 = gbbs_scc(g, gt, {}, &gbbs_stats); });
    double t_multi =
        time_seconds([&] { l3 = multistep_scc(g, gt, {}, &multi_stats); });

    auto want = normalize_scc_labels(ref);
    if (normalize_scc_labels(l1) != want || normalize_scc_labels(l2) != want ||
        normalize_scc_labels(l3) != want) {
      std::fprintf(stderr, "SCC MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }

    times.add_row(spec.cls, spec.name, {t_pasgal, t_gbbs, t_multi, t_seq});
    rounds.add_row(spec.cls, spec.name,
                   {double(pasgal_stats.rounds()), double(gbbs_stats.rounds()),
                    double(multi_stats.rounds())});
    Projection proj = calibrate(t_seq, seq_stats);
    double seq_ns = t_seq * 1e9;
    speedup96.add_row(spec.cls, spec.name,
                      {proj.speedup_at(96, pasgal_stats, seq_ns),
                       proj.speedup_at(96, gbbs_stats, seq_ns),
                       proj.speedup_at(96, multi_stats, seq_ns)});
    std::fflush(stdout);
  }

  times.print("Table A3: SCC running time (this machine, 1 core)", "seconds");
  rounds.print("SCC global synchronizations (rounds)", "count");
  speedup96.print(
      "SCC projected speedup over sequential Tarjan at P=96 (cost model)",
      "speedup; <1 means slower than sequential");
  return 0;
}
