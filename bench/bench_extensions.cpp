// The paper's §Conclusion extension targets, built and measured: k-core and
// topological sort (peeling algorithms with VGC) and point-to-point shortest
// paths. Same presentation as the main tables: time, rounds, and the
// VGC-vs-no-VGC round collapse that motivates extending the technique.
#include <cstdio>

#include "algorithms/kcore/kcore.h"
#include "algorithms/scc/condensation.h"
#include "algorithms/sssp/ppsp.h"
#include "algorithms/toposort/toposort.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  // --- k-core ---------------------------------------------------------------
  std::printf("=== k-core decomposition (peeling + VGC) ===\n");
  std::printf("%-10s %12s %12s %10s %12s %10s\n", "graph", "seq(s)",
              "par tau=1(s)", "rounds", "par vgc(s)", "rounds");
  for (const auto& spec : graph_suite()) {
    if (spec.name != "SOC-LJ" && spec.name != "ROAD-NA" && spec.name != "BBL") {
      continue;
    }
    Graph g0 = spec.build();
    Graph g = spec.directed ? g0.symmetrize() : g0;
    RunStats seq_stats, flat_stats, vgc_stats;
    std::vector<std::uint32_t> ref, a, b;
    double t_seq = time_seconds([&] { ref = seq_kcore(g, &seq_stats); });
    KcoreParams flat;
    flat.vgc.tau = 1;
    double t_flat = time_seconds([&] { a = pasgal_kcore(g, flat, &flat_stats); });
    double t_vgc = time_seconds([&] { b = pasgal_kcore(g, {}, &vgc_stats); });
    if (a != ref || b != ref) {
      std::fprintf(stderr, "KCORE MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }
    std::printf("%-10s %12.4f %12.4f %10llu %12.4f %10llu\n", spec.name.c_str(),
                t_seq, t_flat, (unsigned long long)flat_stats.rounds(), t_vgc,
                (unsigned long long)vgc_stats.rounds());
    std::fflush(stdout);
  }

  // --- topological sort -------------------------------------------------------
  std::printf("\n=== topological sort of the SCC condensation ===\n");
  std::printf("%-10s %10s %10s %14s %12s %12s\n", "graph", "dag n", "dag m",
              "seq rounds*", "tau=1 rounds", "vgc rounds");
  for (const auto& spec : directed_suite()) {
    if (spec.name != "ROAD-NA" && spec.name != "SREC") continue;
    Graph g = spec.build();
    Graph gt = g.transpose();
    auto labels = normalize_scc_labels(pasgal_scc(g, gt));
    Condensation cond = scc_condensation(g, labels);
    RunStats flat_stats, vgc_stats;
    ToposortParams flat;
    flat.vgc.tau = 1;
    std::vector<std::uint32_t> a, b, ref;
    bool ok = pasgal_toposort(cond.dag, a, flat, &flat_stats).ok() &&
              pasgal_toposort(cond.dag, b, {}, &vgc_stats).ok() &&
              seq_toposort(cond.dag, ref).ok();
    if (!ok || a != ref || b != ref) {
      std::fprintf(stderr, "TOPOSORT MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }
    std::printf("%-10s %10zu %10zu %14s %12llu %12llu\n", spec.name.c_str(),
                cond.dag.num_vertices(), cond.dag.num_edges(), "1 (serial)",
                (unsigned long long)flat_stats.rounds(),
                (unsigned long long)vgc_stats.rounds());
    std::fflush(stdout);
  }

  // --- point-to-point shortest paths -----------------------------------------
  std::printf("\n=== point-to-point shortest paths (corner to corner) ===\n");
  std::printf("%-10s %16s %16s %16s\n", "graph", "dijkstra settled",
              "bidir settled", "same distance");
  for (const auto& spec : graph_suite()) {
    if (spec.name != "ROAD-NA" && spec.name != "REC") continue;
    Graph base = spec.build();
    auto g = gen::add_weights(base, 100, 21);
    auto gt = g.transpose();
    VertexId s = 0;
    VertexId t = static_cast<VertexId>(g.num_vertices() - 1);
    RunStats uni_stats, bi_stats;
    Dist d1 = ppsp_dijkstra(g, s, t, &uni_stats);
    Dist d2 = ppsp_bidirectional(g, gt, s, t, &bi_stats);
    std::printf("%-10s %16llu %16llu %16s\n", spec.name.c_str(),
                (unsigned long long)uni_stats.vertices_visited(),
                (unsigned long long)bi_stats.vertices_visited(),
                d1 == d2 ? "yes" : "NO (BUG)");
    if (d1 != d2) return 1;
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shapes: in-task (VGC) peeling cuts k-core rounds ~3-9x on\n"
      "these graphs (and >10x on pure chains — see test_kcore/test_toposort);\n"
      "bidirectional search settles fewer vertices than full Dijkstra on\n"
      "corner-to-corner road queries (thin strips like REC overlap anyway).\n");
  return 0;
}
