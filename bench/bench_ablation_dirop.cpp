// Ablation: direction optimization on/off in PASGAL BFS (§2.2 "we also use
// the direction optimization to improve performance"). Expected shape: it
// matters on low-diameter power-law graphs (SOC-LJ) where frontiers explode,
// and is irrelevant on large-diameter graphs (ROAD-NA) whose frontiers never
// reach the density threshold.
#include <cstdio>

#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  for (const auto& spec : graph_suite()) {
    if (spec.name != "SOC-LJ" && spec.name != "ROAD-NA") continue;
    Graph g = spec.build();
    Graph gt = spec.directed ? g.transpose() : g;
    VertexId source = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.out_degree(v) > g.out_degree(source)) source = v;
    }

    std::printf("\n=== direction optimization ablation on %s ===\n",
                spec.name.c_str());
    std::printf("%-12s %12s %10s %14s\n", "dense mode", "time(s)", "rounds",
                "edges scanned");
    for (bool use_dense : {true, false}) {
      PasgalBfsParams params;
      params.use_dense = use_dense;
      RunStats stats;
      double t = time_seconds(
          [&] { pasgal_bfs(g, spec.directed ? gt : g, source, params, &stats); });
      std::printf("%-12s %12.4f %10llu %14llu\n", use_dense ? "on" : "off", t,
                  static_cast<unsigned long long>(stats.rounds()),
                  static_cast<unsigned long long>(stats.edges_scanned()));
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: on SOC-LJ the dense (pull) rounds cut edges scanned\n"
      "sharply (the superlinear-speedup effect in the paper's BFS table); on\n"
      "ROAD-NA the effect is marginal either way — the wavefront only\n"
      "occasionally crosses the density threshold, so direction optimization\n"
      "neither helps nor hurts much on large-diameter graphs.\n");
  return 0;
}
