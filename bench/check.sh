#!/bin/sh
# Robustness gate: build + full test suite, then an ASan+UBSan build that
# re-runs the input-hardening tests (fuzz corpus, readers, hashbag) and
# exercises every app driver on small graphs, including the failure paths.
# Usage: bench/check.sh [build_dir_prefix]   (default: build)
set -eu

cd "$(dirname "$0")/.."
prefix="${1:-build}"

echo "=== plain build + ctest ==="
cmake -B "$prefix" -S . > /dev/null
cmake --build "$prefix" -j > /dev/null
(cd "$prefix" && ctest --output-on-failure -j "$(nproc)")

echo
echo "=== ASan+UBSan build ==="
cmake -B "$prefix-san" -S . -DPASGAL_SANITIZE=address,undefined > /dev/null
cmake --build "$prefix-san" -j > /dev/null

echo "--- sanitized input-hardening tests ---"
(cd "$prefix-san" && ctest --output-on-failure -j "$(nproc)" \
    -R 'test_graph_io|test_graph_io_fuzz|test_hashbag|test_graph$|test_storage|app_exit_|storage_')

echo "--- sanitized app drivers (success paths, with metrics emission) ---"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
"$prefix-san/apps/graph_gen" chain:2000 "$tmp/chain.adj" --validate
"$prefix-san/apps/graph_gen" grid:40:40 "$tmp/grid.bin" --validate
"$prefix-san/apps/bfs"  "$tmp/chain.adj" --validate -r 1 --json-metrics "$tmp/bfs.json" > /dev/null
"$prefix-san/apps/sssp" "$tmp/grid.bin" --validate -a delta -r 1 --json-metrics "$tmp/sssp.json" > /dev/null
"$prefix-san/apps/scc"  road:30:30 -r 1 --json-metrics "$tmp/scc.json" > /dev/null
"$prefix-san/apps/bcc"  grid:30:30 -r 1 --json-metrics "$tmp/bcc.json" > /dev/null

echo "--- metrics schema gate (drivers + bench envelope) ---"
"$prefix-san/apps/metrics_check" "$tmp"/bfs.json "$tmp"/sssp.json \
    "$tmp"/scc.json "$tmp"/bcc.json

echo "--- storage backends (heap vs mmap must be observationally identical) ---"
"$prefix-san/apps/graph_convert" "$tmp/grid.bin" "$tmp/grid.pgr" \
    --transpose --validate > /dev/null
for app in bfs scc bcc sssp; do
  # Normalize per-run wall times and drop backend-specific lines so the diff
  # compares algorithm results (counts, rounds, edges scanned) only.
  normalize() {
    grep -v -e '^load:' -e '^metrics:' | sed -E 's/: [0-9]+\.[0-9]+ s \|/: T s |/'
  }
  "$prefix-san/apps/$app" "$tmp/grid.pgr" --load mmap -r 1 \
      --json-metrics "$tmp/${app}_mmap.json" | normalize > "$tmp/${app}_mmap.txt"
  "$prefix-san/apps/$app" "$tmp/grid.pgr" --load copy -r 1 \
      --json-metrics "$tmp/${app}_copy.json" | normalize > "$tmp/${app}_copy.txt"
  diff "$tmp/${app}_mmap.txt" "$tmp/${app}_copy.txt" || {
    echo "FAIL: $app output differs between mmap and copy backends" >&2; exit 1
  }
  "$prefix-san/apps/metrics_check" "$tmp/${app}_mmap.json" "$tmp/${app}_copy.json"
done
"$prefix-san/apps/graph_convert" "$tmp/grid.pgr" "$tmp/grid_rt.bin" > /dev/null
cmp "$tmp/grid.bin" "$tmp/grid_rt.bin" || {
  echo "FAIL: .bin -> .pgr -> .bin round-trip is not byte-identical" >&2; exit 1
}

echo "--- sanitized app drivers (failure paths must exit cleanly) ---"
expect() { want="$1"; shift
  set +e; "$@" > /dev/null 2>&1; got=$?; set -e
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: '$*' exited $got, expected $want" >&2; exit 1
  fi
}
printf 'AdjacencyGraph\n5\n10\n0\n1\n' > "$tmp/trunc.adj"
expect 3 "$prefix-san/apps/bfs" "$tmp/trunc.adj"
expect 3 "$prefix-san/apps/bfs" "$tmp/missing.adj"
expect 2 "$prefix-san/apps/bfs" grid:abc:10
expect 2 "$prefix-san/apps/sssp" chain:100 -a nope
expect 4 env PASGAL_MEM_LIMIT_MB=64 "$prefix-san/apps/bfs" rmat:30:1000000000000

echo
echo "check.sh: all gates passed"
