#!/bin/sh
# Robustness gate: build + full test suite, then an ASan+UBSan build that
# re-runs the input-hardening tests (fuzz corpus, readers, hashbag) and
# exercises every app driver on small graphs, including the failure paths.
# Usage: bench/check.sh [build_dir_prefix]   (default: build)
set -eu

cd "$(dirname "$0")/.."
prefix="${1:-build}"

echo "=== plain build + ctest ==="
cmake -B "$prefix" -S . > /dev/null
cmake --build "$prefix" -j > /dev/null
(cd "$prefix" && ctest --output-on-failure -j "$(nproc)")

echo
echo "=== ASan+UBSan build ==="
cmake -B "$prefix-san" -S . -DPASGAL_SANITIZE=address,undefined > /dev/null
cmake --build "$prefix-san" -j > /dev/null

echo "--- sanitized input-hardening tests ---"
(cd "$prefix-san" && ctest --output-on-failure -j "$(nproc)" \
    -R 'test_graph_io|test_graph_io_fuzz|test_hashbag|test_graph$|test_storage|test_registry|test_resource|app_exit_|storage_|registry_')

echo "--- sanitized app drivers (success paths, with metrics emission) ---"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
"$prefix-san/apps/graph_gen" chain:2000 "$tmp/chain.adj" --validate
"$prefix-san/apps/graph_gen" grid:40:40 "$tmp/grid.bin" --validate
"$prefix-san/apps/bfs"  "$tmp/chain.adj" --validate -r 1 --json-metrics "$tmp/bfs.json" > /dev/null
"$prefix-san/apps/sssp" "$tmp/grid.bin" --validate -a delta -r 1 --json-metrics "$tmp/sssp.json" > /dev/null
"$prefix-san/apps/scc"  road:30:30 -r 1 --json-metrics "$tmp/scc.json" > /dev/null
"$prefix-san/apps/bcc"  grid:30:30 -r 1 --json-metrics "$tmp/bcc.json" > /dev/null

echo "--- metrics schema gate (drivers + bench envelope) ---"
"$prefix-san/apps/metrics_check" "$tmp"/bfs.json "$tmp"/sssp.json \
    "$tmp"/scc.json "$tmp"/bcc.json

echo "--- storage backends (heap vs mmap must be observationally identical) ---"
"$prefix-san/apps/graph_convert" "$tmp/grid.bin" "$tmp/grid.pgr" \
    --transpose --validate > /dev/null
for app in bfs scc bcc sssp; do
  # Normalize per-run wall times and drop backend-specific lines so the diff
  # compares algorithm results (counts, rounds, edges scanned) only.
  normalize() {
    grep -v -e '^load:' -e '^metrics:' | sed -E 's/: [0-9]+\.[0-9]+ s \|/: T s |/'
  }
  "$prefix-san/apps/$app" "$tmp/grid.pgr" --load mmap -r 1 \
      --json-metrics "$tmp/${app}_mmap.json" | normalize > "$tmp/${app}_mmap.txt"
  "$prefix-san/apps/$app" "$tmp/grid.pgr" --load copy -r 1 \
      --json-metrics "$tmp/${app}_copy.json" | normalize > "$tmp/${app}_copy.txt"
  diff "$tmp/${app}_mmap.txt" "$tmp/${app}_copy.txt" || {
    echo "FAIL: $app output differs between mmap and copy backends" >&2; exit 1
  }
  "$prefix-san/apps/metrics_check" "$tmp/${app}_mmap.json" "$tmp/${app}_copy.json"
done
"$prefix-san/apps/graph_convert" "$tmp/grid.pgr" "$tmp/grid_rt.bin" > /dev/null
cmp "$tmp/grid.bin" "$tmp/grid_rt.bin" || {
  echo "FAIL: .bin -> .pgr -> .bin round-trip is not byte-identical" >&2; exit 1
}

echo "--- compressed .pgr gate (v2 targets section) ---"
# Every driver must produce byte-identical result lines on the compressed
# encoding of the same graph, and its metrics must carry the compression
# trio (encoded_bytes / compression_ratio / decode_wall_ns).
"$prefix-san/apps/graph_convert" "$tmp/grid.pgr" "$tmp/grid_c.pgr" \
    --transpose --compress > /dev/null
for app in bfs scc bcc sssp; do
  "$prefix-san/apps/$app" "$tmp/grid_c.pgr" --load mmap -r 1 \
      --json-metrics "$tmp/${app}_comp.json" | normalize > "$tmp/${app}_comp.txt"
  diff "$tmp/${app}_mmap.txt" "$tmp/${app}_comp.txt" || {
    echo "FAIL: $app results differ between compressed and raw .pgr" >&2; exit 1
  }
  "$prefix-san/apps/metrics_check" "$tmp/${app}_comp.json"
  for want in '"encoded_bytes":' '"compression_ratio":' '"decode_wall_ns":'; do
    grep -q "$want" "$tmp/${app}_comp.json" || {
      echo "FAIL: $app compressed metrics missing $want" >&2; exit 1
    }
  done
done
# Size gate: on a bench-suite graph (no transpose sections diluting the
# ratio) the compressed file must be at least 1.5x smaller.
"$prefix/apps/graph_gen" grid:300:300 "$tmp/ratio_raw.pgr" > /dev/null
"$prefix/apps/graph_gen" grid:300:300 "$tmp/ratio_c.pgr" --compress > /dev/null
raw_bytes=$(wc -c < "$tmp/ratio_raw.pgr")
comp_bytes=$(wc -c < "$tmp/ratio_c.pgr")
if [ $((2 * raw_bytes)) -lt $((3 * comp_bytes)) ]; then
  echo "FAIL: compressed .pgr is $comp_bytes bytes vs $raw_bytes raw" \
       "(< 1.5x smaller)" >&2
  exit 1
fi
# Warm opens of a compressed graph share the already-decoded storage: the
# serving run's final (warm) load must report zero decode work.
"$prefix/apps/bfs" "$tmp/ratio_c.pgr" --serve 1 -r 1 \
    --json-metrics "$tmp/serve_c.json" > "$tmp/serve_c.txt"
grep -q 'serve: open 2/2 registry hit (0 new bytes mapped)' "$tmp/serve_c.txt" || {
  echo "FAIL: compressed warm open was not a zero-byte registry hit" >&2; exit 1
}
grep -q '"decode_wall_ns":0' "$tmp/serve_c.json" || {
  echo "FAIL: compressed warm open paid a decode pass" >&2; exit 1
}
"$prefix/apps/metrics_check" "$tmp/serve_c.json"

echo "--- registry warm-open gate (serving mode, plain build) ---"
# Second open of the same canonical .pgr must be a registry hit that maps
# zero new bytes and leaves peak RSS flat. Runs on the plain build: ASan's
# quarantine inflates VmHWM unpredictably, and the sanitized registry
# coverage already ran via the registry_* ctest targets above.
"$prefix/apps/graph_convert" grid:300:300 "$tmp/serve.pgr" --transpose > /dev/null
"$prefix/apps/bfs" "$tmp/serve.pgr" --serve 1 -r 1 \
    --json-metrics "$tmp/serve.json" > "$tmp/serve.txt"
grep -q 'serve: open 2/2 registry hit (0 new bytes mapped)' "$tmp/serve.txt" || {
  echo "FAIL: warm open was not a zero-byte registry hit" >&2; exit 1
}
for want in '"registry_hits":1' '"registry_misses":1' \
            '"warm_load_bytes_mapped":0' '"load_bytes_mapped":0'; do
  grep -q "$want" "$tmp/serve.json" || {
    echo "FAIL: serving metrics missing $want" >&2; exit 1
  }
done
[ "$(grep -c 'reached' "$tmp/serve.txt")" -eq 2 ] || {
  echo "FAIL: expected one result line per serve iteration" >&2; exit 1
}
[ "$(grep 'reached' "$tmp/serve.txt" | sort -u | wc -l)" -eq 1 ] || {
  echo "FAIL: warm-open result differs from cold-open result" >&2; exit 1
}
rss_cold=$(sed -E 's/.*"peak_rss_cold_bytes":([0-9]+).*/\1/' "$tmp/serve.json")
rss_final=$(sed -E 's/.*"peak_rss_bytes":([0-9]+).*/\1/' "$tmp/serve.json")
file_bytes=$(wc -c < "$tmp/serve.pgr")
# Flat peak RSS: the warm open must not re-materialize the graph. Allow
# growth strictly under half the file size (a second mapping or heap copy
# would add at least the full file).
if [ $((2 * (rss_final - rss_cold))) -ge "$file_bytes" ]; then
  echo "FAIL: peak RSS grew by $((rss_final - rss_cold)) bytes across warm" \
       "opens (file is $file_bytes bytes) — mapping not shared?" >&2
  exit 1
fi
"$prefix/apps/metrics_check" "$tmp/serve.json"

echo "--- sanitized app drivers (failure paths must exit cleanly) ---"
expect() { want="$1"; shift
  set +e; "$@" > /dev/null 2>&1; got=$?; set -e
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: '$*' exited $got, expected $want" >&2; exit 1
  fi
}
printf 'AdjacencyGraph\n5\n10\n0\n1\n' > "$tmp/trunc.adj"
expect 3 "$prefix-san/apps/bfs" "$tmp/trunc.adj"
expect 3 "$prefix-san/apps/bfs" "$tmp/missing.adj"
expect 2 "$prefix-san/apps/bfs" grid:abc:10
expect 2 "$prefix-san/apps/sssp" chain:100 -a nope
expect 4 env PASGAL_MEM_LIMIT_MB=64 "$prefix-san/apps/bfs" rmat:30:1000000000000
expect 2 env PASGAL_MEM_LIMIT_MB=999999999999999999 "$prefix-san/apps/bfs" chain:100
"$prefix-san/apps/graph_convert" chain:50 "$tmp/wconf.pgr" --weights 5 > /dev/null
expect 2 "$prefix-san/apps/sssp" "$tmp/wconf.pgr" -w 7
expect 2 "$prefix-san/apps/graph_gen" chain:50 "$tmp/nope.bin" --compress
# A compressed file whose varint stream decodes to an out-of-range target
# must exit with the input contract code, not crash under ASan. Byte surgery:
# the targets section offset is the u64 at byte 64; its first payload byte
# sits at the section's first chunk offset (u64 at section+16); 0x7E decodes
# to delta +63, far outside a 2-vertex graph.
"$prefix-san/apps/graph_gen" chain:2 "$tmp/oob.pgr" --compress > /dev/null
toff=$(od -A n -t u8 -j 64 -N 8 "$tmp/oob.pgr" | tr -d ' ')
s0=$(od -A n -t u8 -j "$((toff + 16))" -N 8 "$tmp/oob.pgr" | tr -d ' ')
printf '\176' | dd of="$tmp/oob.pgr" bs=1 seek="$((toff + s0))" \
    conv=notrunc 2> /dev/null
expect 3 "$prefix-san/apps/bfs" "$tmp/oob.pgr"

echo
echo "check.sh: all gates passed"
