#!/bin/sh
# Robustness gate: build + full test suite, then an ASan+UBSan build that
# re-runs the input-hardening tests (fuzz corpus, readers, hashbag) and
# exercises every app driver on small graphs, including the failure paths.
# Usage: bench/check.sh [build_dir_prefix]   (default: build)
set -eu

cd "$(dirname "$0")/.."
prefix="${1:-build}"

echo "=== plain build + ctest ==="
cmake -B "$prefix" -S . > /dev/null
cmake --build "$prefix" -j > /dev/null
(cd "$prefix" && ctest --output-on-failure -j "$(nproc)")

echo
echo "=== ASan+UBSan build ==="
cmake -B "$prefix-san" -S . -DPASGAL_SANITIZE=address,undefined > /dev/null
cmake --build "$prefix-san" -j > /dev/null

echo "--- sanitized input-hardening tests ---"
(cd "$prefix-san" && ctest --output-on-failure -j "$(nproc)" \
    -R 'test_graph_io|test_graph_io_fuzz|test_hashbag|test_graph$|test_storage|test_registry|test_resource|test_pagerank|test_tc|test_delta|test_vertex_subset|app_exit_|storage_|registry_')

echo "--- sanitized app drivers (success paths, with metrics emission) ---"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
"$prefix-san/apps/graph_gen" chain:2000 "$tmp/chain.adj" --validate
"$prefix-san/apps/graph_gen" grid:40:40 "$tmp/grid.bin" --validate
"$prefix-san/apps/bfs"  "$tmp/chain.adj" --validate -r 1 --json-metrics "$tmp/bfs.json" > /dev/null
"$prefix-san/apps/sssp" "$tmp/grid.bin" --validate -a delta -r 1 --json-metrics "$tmp/sssp.json" > /dev/null
"$prefix-san/apps/scc"  road:30:30 -r 1 --json-metrics "$tmp/scc.json" > /dev/null
"$prefix-san/apps/bcc"  grid:30:30 -r 1 --json-metrics "$tmp/bcc.json" > /dev/null
"$prefix-san/apps/cc"   grid:30:30 -r 1 --json-metrics "$tmp/cc.json" > /dev/null
"$prefix-san/apps/kcore" grid:30:30 -r 1 --json-metrics "$tmp/kcore.json" > /dev/null
"$prefix-san/apps/pagerank" chain:2000 -r 1 --json-metrics "$tmp/pagerank.json" > /dev/null
"$prefix-san/apps/tc"   grid:30:30 -r 1 --json-metrics "$tmp/tc.json" > /dev/null

echo "--- metrics schema gate (drivers + bench envelope) ---"
"$prefix-san/apps/metrics_check" "$tmp"/bfs.json "$tmp"/sssp.json \
    "$tmp"/scc.json "$tmp"/bcc.json "$tmp"/cc.json "$tmp"/kcore.json \
    "$tmp"/pagerank.json "$tmp"/tc.json

echo "--- storage backends (heap vs mmap must be observationally identical) ---"
"$prefix-san/apps/graph_convert" "$tmp/grid.bin" "$tmp/grid.pgr" \
    --transpose --validate > /dev/null
for app in bfs scc bcc sssp cc kcore pagerank tc; do
  # Normalize per-run wall times and drop backend-specific lines so the diff
  # compares algorithm results (counts, rounds, edges scanned) only.
  normalize() {
    grep -v -e '^load:' -e '^metrics:' | sed -E 's/: [0-9]+\.[0-9]+ s \|/: T s |/'
  }
  "$prefix-san/apps/$app" "$tmp/grid.pgr" --load mmap -r 1 \
      --json-metrics "$tmp/${app}_mmap.json" | normalize > "$tmp/${app}_mmap.txt"
  "$prefix-san/apps/$app" "$tmp/grid.pgr" --load copy -r 1 \
      --json-metrics "$tmp/${app}_copy.json" | normalize > "$tmp/${app}_copy.txt"
  diff "$tmp/${app}_mmap.txt" "$tmp/${app}_copy.txt" || {
    echo "FAIL: $app output differs between mmap and copy backends" >&2; exit 1
  }
  "$prefix-san/apps/metrics_check" "$tmp/${app}_mmap.json" "$tmp/${app}_copy.json"
done
"$prefix-san/apps/graph_convert" "$tmp/grid.pgr" "$tmp/grid_rt.bin" > /dev/null
cmp "$tmp/grid.bin" "$tmp/grid_rt.bin" || {
  echo "FAIL: .bin -> .pgr -> .bin round-trip is not byte-identical" >&2; exit 1
}

echo "--- compressed .pgr gate (v2 targets section) ---"
# Every driver must produce byte-identical result lines on the compressed
# encoding of the same graph, and its metrics must carry the compression
# trio (encoded_bytes / compression_ratio / decode_wall_ns).
"$prefix-san/apps/graph_convert" "$tmp/grid.pgr" "$tmp/grid_c.pgr" \
    --transpose --compress > /dev/null
for app in bfs scc bcc sssp cc kcore pagerank tc; do
  "$prefix-san/apps/$app" "$tmp/grid_c.pgr" --load mmap -r 1 \
      --json-metrics "$tmp/${app}_comp.json" | normalize > "$tmp/${app}_comp.txt"
  diff "$tmp/${app}_mmap.txt" "$tmp/${app}_comp.txt" || {
    echo "FAIL: $app results differ between compressed and raw .pgr" >&2; exit 1
  }
  "$prefix-san/apps/metrics_check" "$tmp/${app}_comp.json"
  for want in '"encoded_bytes":' '"compression_ratio":' '"decode_wall_ns":'; do
    grep -q "$want" "$tmp/${app}_comp.json" || {
      echo "FAIL: $app compressed metrics missing $want" >&2; exit 1
    }
  done
done
# Size gate: on a bench-suite graph (no transpose sections diluting the
# ratio) the compressed file must be at least 1.5x smaller.
"$prefix/apps/graph_gen" grid:300:300 "$tmp/ratio_raw.pgr" > /dev/null
"$prefix/apps/graph_gen" grid:300:300 "$tmp/ratio_c.pgr" --compress > /dev/null
raw_bytes=$(wc -c < "$tmp/ratio_raw.pgr")
comp_bytes=$(wc -c < "$tmp/ratio_c.pgr")
if [ $((2 * raw_bytes)) -lt $((3 * comp_bytes)) ]; then
  echo "FAIL: compressed .pgr is $comp_bytes bytes vs $raw_bytes raw" \
       "(< 1.5x smaller)" >&2
  exit 1
fi
# Warm opens of a compressed graph share the already-decoded storage: the
# serving run's final (warm) load must report zero decode work.
"$prefix/apps/bfs" "$tmp/ratio_c.pgr" --serve 1 -r 1 \
    --json-metrics "$tmp/serve_c.json" > "$tmp/serve_c.txt"
grep -q 'serve: open 2/2 registry hit (0 new bytes mapped)' "$tmp/serve_c.txt" || {
  echo "FAIL: compressed warm open was not a zero-byte registry hit" >&2; exit 1
}
grep -q '"decode_wall_ns":0' "$tmp/serve_c.json" || {
  echo "FAIL: compressed warm open paid a decode pass" >&2; exit 1
}
"$prefix/apps/metrics_check" "$tmp/serve_c.json"

echo "--- registry warm-open gate (serving mode, plain build) ---"
# Second open of the same canonical .pgr must be a registry hit that maps
# zero new bytes and leaves peak RSS flat. Runs on the plain build: ASan's
# quarantine inflates VmHWM unpredictably, and the sanitized registry
# coverage already ran via the registry_* ctest targets above.
"$prefix/apps/graph_convert" grid:300:300 "$tmp/serve.pgr" --transpose > /dev/null
"$prefix/apps/bfs" "$tmp/serve.pgr" --serve 1 -r 1 \
    --json-metrics "$tmp/serve.json" > "$tmp/serve.txt"
grep -q 'serve: open 2/2 registry hit (0 new bytes mapped)' "$tmp/serve.txt" || {
  echo "FAIL: warm open was not a zero-byte registry hit" >&2; exit 1
}
for want in '"registry_hits":1' '"registry_misses":1' \
            '"warm_load_bytes_mapped":0' '"load_bytes_mapped":0'; do
  grep -q "$want" "$tmp/serve.json" || {
    echo "FAIL: serving metrics missing $want" >&2; exit 1
  }
done
[ "$(grep -c 'reached' "$tmp/serve.txt")" -eq 2 ] || {
  echo "FAIL: expected one result line per serve iteration" >&2; exit 1
}
[ "$(grep 'reached' "$tmp/serve.txt" | sort -u | wc -l)" -eq 1 ] || {
  echo "FAIL: warm-open result differs from cold-open result" >&2; exit 1
}
rss_cold=$(sed -E 's/.*"peak_rss_cold_bytes":([0-9]+).*/\1/' "$tmp/serve.json")
rss_final=$(sed -E 's/.*"peak_rss_bytes":([0-9]+).*/\1/' "$tmp/serve.json")
file_bytes=$(wc -c < "$tmp/serve.pgr")
# Flat peak RSS: the warm open must not re-materialize the graph. Allow
# growth strictly under half the file size (a second mapping or heap copy
# would add at least the full file).
if [ $((2 * (rss_final - rss_cold))) -ge "$file_bytes" ]; then
  echo "FAIL: peak RSS grew by $((rss_final - rss_cold)) bytes across warm" \
       "opens (file is $file_bytes bytes) — mapping not shared?" >&2
  exit 1
fi
"$prefix/apps/metrics_check" "$tmp/serve.json"

echo "--- sanitized app drivers (failure paths must exit cleanly) ---"
expect() { want="$1"; shift
  set +e; "$@" > /dev/null 2>&1; got=$?; set -e
  if [ "$got" -ne "$want" ]; then
    echo "FAIL: '$*' exited $got, expected $want" >&2; exit 1
  fi
}
printf 'AdjacencyGraph\n5\n10\n0\n1\n' > "$tmp/trunc.adj"
expect 3 "$prefix-san/apps/bfs" "$tmp/trunc.adj"
expect 3 "$prefix-san/apps/bfs" "$tmp/missing.adj"
expect 2 "$prefix-san/apps/bfs" grid:abc:10
expect 2 "$prefix-san/apps/sssp" chain:100 -a nope
expect 4 env PASGAL_MEM_LIMIT_MB=64 "$prefix-san/apps/bfs" rmat:30:1000000000000
expect 2 env PASGAL_MEM_LIMIT_MB=999999999999999999 "$prefix-san/apps/bfs" chain:100
"$prefix-san/apps/graph_convert" chain:50 "$tmp/wconf.pgr" --weights 5 > /dev/null
expect 2 "$prefix-san/apps/sssp" "$tmp/wconf.pgr" -w 7
expect 2 "$prefix-san/apps/graph_gen" chain:50 "$tmp/nope.bin" --compress
# A compressed file whose varint stream decodes to an out-of-range target
# must exit with the input contract code, not crash under ASan. Byte surgery:
# the targets section offset is the u64 at byte 64; its first payload byte
# sits at the section's first chunk offset (u64 at section+16); 0x7E decodes
# to delta +63, far outside a 2-vertex graph.
"$prefix-san/apps/graph_gen" chain:2 "$tmp/oob.pgr" --compress > /dev/null
toff=$(od -A n -t u8 -j 64 -N 8 "$tmp/oob.pgr" | tr -d ' ')
s0=$(od -A n -t u8 -j "$((toff + 16))" -N 8 "$tmp/oob.pgr" | tr -d ' ')
printf '\176' | dd of="$tmp/oob.pgr" bs=1 seek="$((toff + s0))" \
    conv=notrunc 2> /dev/null
expect 3 "$prefix-san/apps/bfs" "$tmp/oob.pgr"

echo "--- serve daemon gate (TSan build): concurrency, faults, deadlines, drain ---"
# The daemon multiplexes client threads over the shared scheduler, so this
# gate runs it under ThreadSanitizer: any data race aborts the run. Every
# response must be one of the three legal one-line shapes (ok / metrics
# JSON / "error [category] ..."), every injected fault must surface as a
# typed error on exactly one response, and SIGTERM must drain to exit 0.
cmake -B "$prefix-tsan" -S . -DPASGAL_SANITIZE=thread > /dev/null
cmake --build "$prefix-tsan" -j --target app_serve > /dev/null
SERVE="$prefix-tsan/apps/serve"
sock="$tmp/daemon.sock"

wait_sock() {
  i=0
  while [ ! -S "$sock" ]; do
    i=$((i + 1))
    [ "$i" -gt 200 ] && { echo "FAIL: daemon socket never appeared" >&2; exit 1; }
    sleep 0.05
  done
}
drain() {  # $1 = daemon pid, $2 = daemon log
  kill -TERM "$1"
  wait "$1" || { echo "FAIL: daemon exited nonzero after SIGTERM" >&2; exit 1; }
  grep -q 'serve: drained' "$2" || {
    echo "FAIL: daemon log $2 is missing the drain epilogue" >&2; exit 1
  }
}

"$prefix/apps/graph_gen" grid:300:300 "$tmp/d_a.pgr" > /dev/null
"$prefix/apps/graph_gen" grid:299:299 "$tmp/d_b.pgr" > /dev/null
"$prefix/apps/graph_gen" grid:60:60 "$tmp/d_c.pgr" --compress > /dev/null
"$prefix/apps/graph_gen" chain:200000 "$tmp/d_long.pgr" > /dev/null
"$prefix/apps/graph_convert" chain:3000 "$tmp/d_w.pgr" --weights 10 > /dev/null

# 8 concurrent clients hammering one daemon with the full verb mix
# (bfs/sssp plus the four whole-graph families) and open/stats.
rm -f "$sock"
"$SERVE" --socket "$sock" > "$tmp/daemon1.log" 2>&1 &
dpid=$!
wait_sock
i=0
while [ "$i" -lt 8 ]; do
  "$SERVE" --socket "$sock" --client \
      "open graph=$tmp/d_c.pgr" \
      "bfs graph=$tmp/d_c.pgr source=$i" \
      "sssp graph=$tmp/d_w.pgr source=$i" \
      "bfs graph=$tmp/d_c.pgr source=0 algo=gbbs" \
      "cc graph=$tmp/d_c.pgr" \
      "kcore graph=$tmp/d_c.pgr algo=seq" \
      "pagerank graph=$tmp/d_c.pgr" \
      "tc graph=$tmp/d_c.pgr" \
      "stats" > "$tmp/client$i.out" 2>&1 &
  eval "cpid$i=\$!"
  i=$((i + 1))
done
i=0
while [ "$i" -lt 8 ]; do
  eval "wait \$cpid$i" || {
    echo "FAIL: concurrent client $i exited nonzero" >&2; exit 1
  }
  i=$((i + 1))
done
if grep -hv -e '^ok ' -e '^{' -e '^error \[' "$tmp"/client*.out | grep -q .; then
  echo "FAIL: daemon produced an untyped response line:" >&2
  grep -hv -e '^ok ' -e '^{' -e '^error \[' "$tmp"/client*.out >&2
  exit 1
fi

# Deadline expiry is a typed error and the worker pool survives it: the
# same query without a deadline must then succeed against the same daemon.
set +e
to_resp=$("$SERVE" --socket "$sock" --client \
    "bfs graph=$tmp/d_long.pgr source=0 deadline_ms=1")
to_rc=$?
set -e
[ "$to_rc" -eq 5 ] || {
  echo "FAIL: deadline-expired client exited $to_rc, expected 5" >&2; exit 1
}
case "$to_resp" in
  'error [timeout]'*) ;;
  *) echo "FAIL: deadline response was '$to_resp'" >&2; exit 1 ;;
esac
"$SERVE" --socket "$sock" --client "bfs graph=$tmp/d_long.pgr source=0" \
    > /dev/null

# Same contract for a whole-graph family verb: pagerank checks the deadline
# at every iteration boundary, expiry is typed, and the pool survives.
set +e
fam_resp=$("$SERVE" --socket "$sock" --client \
    "pagerank graph=$tmp/d_long.pgr deadline_ms=1")
fam_rc=$?
set -e
[ "$fam_rc" -eq 5 ] || {
  echo "FAIL: pagerank deadline client exited $fam_rc, expected 5" >&2; exit 1
}
case "$fam_resp" in
  'error [timeout]'*) ;;
  *) echo "FAIL: pagerank deadline response was '$fam_resp'" >&2; exit 1 ;;
esac
"$SERVE" --socket "$sock" --client "tc graph=$tmp/d_c.pgr" > /dev/null
drain "$dpid" "$tmp/daemon1.log"

# One injected fault per failure category (PASGAL_FAULT fires once, then the
# daemon keeps serving): mmap -> [io], decode -> [format], alloc -> [resource].
for site in mmap decode alloc; do
  case "$site" in
    mmap)  want_cat=io;       want_rc=3 ;;
    decode) want_cat=format;  want_rc=3 ;;
    alloc) want_cat=resource; want_rc=4 ;;
  esac
  rm -f "$sock"
  env "PASGAL_FAULT=$site" "$SERVE" --socket "$sock" \
      > "$tmp/daemon_$site.log" 2>&1 &
  dpid=$!
  wait_sock
  set +e
  resp=$("$SERVE" --socket "$sock" --client "open graph=$tmp/d_c.pgr")
  rc=$?
  set -e
  [ "$rc" -eq "$want_rc" ] || {
    echo "FAIL: $site fault client exited $rc, expected $want_rc" >&2; exit 1
  }
  case "$resp" in
    "error [$want_cat]"*) ;;
    *) echo "FAIL: $site fault response was '$resp'" >&2; exit 1 ;;
  esac
  "$SERVE" --socket "$sock" --client "open graph=$tmp/d_c.pgr" > /dev/null
  drain "$dpid" "$tmp/daemon_$site.log"
done

# sock_write simulates a client dying mid-response: that connection drops,
# the daemon survives, and the drain epilogue counts exactly one drop.
rm -f "$sock"
env PASGAL_FAULT=sock_write "$SERVE" --socket "$sock" \
    > "$tmp/daemon_sock.log" 2>&1 &
dpid=$!
wait_sock
expect 3 "$SERVE" --socket "$sock" --client "stats"
"$SERVE" --socket "$sock" --client "stats" > /dev/null
drain "$dpid" "$tmp/daemon_sock.log"
grep -q '1 dropped' "$tmp/daemon_sock.log" || {
  echo "FAIL: daemon did not count the injected dead-client drop" >&2; exit 1
}

# Admission control: with room for ~1.5 graphs the second open must evict
# the LRU one, and a pinned graph must force a typed [resource] rejection.
rm -f "$sock"
"$SERVE" --socket "$sock" --budget-mb 3 > "$tmp/daemon_lru.log" 2>&1 &
dpid=$!
wait_sock
"$SERVE" --socket "$sock" --client \
    "open graph=$tmp/d_a.pgr" "open graph=$tmp/d_b.pgr" > "$tmp/lru.out"
if grep -q '^error' "$tmp/lru.out"; then
  echo "FAIL: over-budget open did not evict the LRU graph:" >&2
  cat "$tmp/lru.out" >&2
  exit 1
fi
"$SERVE" --socket "$sock" --client "stats" | grep -q 'evictions=1' || {
  echo "FAIL: daemon stats do not report the LRU eviction" >&2; exit 1
}
drain "$dpid" "$tmp/daemon_lru.log"

rm -f "$sock"
"$SERVE" --socket "$sock" --budget-mb 3 > "$tmp/daemon_pin.log" 2>&1 &
dpid=$!
wait_sock
set +e
pin_out=$("$SERVE" --socket "$sock" --client \
    "open graph=$tmp/d_a.pgr pin" "open graph=$tmp/d_b.pgr")
rc=$?
set -e
resp=$(printf '%s\n' "$pin_out" | tail -1)
[ "$rc" -eq 4 ] || {
  echo "FAIL: pinned-budget client exited $rc, expected 4" >&2; exit 1
}
case "$resp" in
  'error [resource]'*) ;;
  *) echo "FAIL: pinned graph was evicted: '$resp'" >&2; exit 1 ;;
esac
drain "$dpid" "$tmp/daemon_pin.log"

# Daemon update mix: concurrent clients each mutate their own graph through
# the update/compact verbs while querying it. TSan checks the overlay
# publish (apply_updates) against concurrent traversals; every response must
# stay one of the three legal shapes and compaction must leave a clean file
# the default kernel accepts again.
rm -f "$sock"
"$SERVE" --socket "$sock" > "$tmp/daemon_upd.log" 2>&1 &
dpid=$!
wait_sock
i=0
while [ "$i" -lt 4 ]; do
  cp "$tmp/d_c.pgr" "$tmp/d_u$i.pgr"
  "$SERVE" --socket "$sock" --client \
      "open graph=$tmp/d_u$i.pgr" \
      "update graph=$tmp/d_u$i.pgr add=0:3599,1:3598 del=0:1" \
      "bfs graph=$tmp/d_u$i.pgr source=0 algo=gbbs" \
      "pagerank graph=$tmp/d_u$i.pgr" \
      "update graph=$tmp/d_u$i.pgr del=1:3598" \
      "cc graph=$tmp/d_u$i.pgr" \
      "compact graph=$tmp/d_u$i.pgr" \
      "bfs graph=$tmp/d_u$i.pgr source=0" \
      "stats" > "$tmp/upd_client$i.out" 2>&1 &
  eval "upid$i=\$!"
  i=$((i + 1))
done
i=0
while [ "$i" -lt 4 ]; do
  eval "wait \$upid$i" || {
    echo "FAIL: update-mix client $i exited nonzero:" >&2
    cat "$tmp/upd_client$i.out" >&2
    exit 1
  }
  i=$((i + 1))
done
if grep -hv -e '^ok ' -e '^{' -e '^error \[' "$tmp"/upd_client*.out | grep -q .; then
  echo "FAIL: update mix produced an untyped response line:" >&2
  grep -hv -e '^ok ' -e '^{' -e '^error \[' "$tmp"/upd_client*.out >&2
  exit 1
fi
grep -q 'ok compacted' "$tmp/upd_client0.out" || {
  echo "FAIL: update mix never compacted" >&2; exit 1
}
# The queried responses on the overlaid graph carry the delta subsection.
grep -q '"delta":' "$tmp/upd_client0.out" || {
  echo "FAIL: overlaid query metrics lack the delta subsection" >&2; exit 1
}
drain "$dpid" "$tmp/daemon_upd.log"

echo "--- QPS gate (batch-of-64 ms_bfs vs 64 sequential singles) ---"
# Plain build, not sanitized: this is a throughput gate. bench_qps itself
# cross-checks every per-source distance array against a single-source run,
# so passing also re-proves batch/single equivalence on this graph.
"$prefix/apps/graph_gen" rmat:15:500000 "$tmp/qps.pgr" > /dev/null
PASGAL_BENCH_DIR="$tmp" "$prefix/bench/bench_qps" "$tmp/qps.pgr" 64 \
    --min-speedup 4 > "$tmp/qps.txt"
grep -q 'qps gate: ok' "$tmp/qps.txt" || {
  echo "FAIL: bench_qps did not report the gate as passed" >&2; exit 1
}
"$prefix/apps/metrics_check" "$tmp/BENCH_qps.json"

# Driver batch path: --sources through the bfs app, batch metrics validated,
# and the usage contract (duplicate source) enforced with exit code 2.
"$prefix/apps/bfs" "$tmp/qps.pgr" --sources 0,1,2,3 -r 1 \
    --json-metrics "$tmp/qps_drv.json" > /dev/null
"$prefix/apps/metrics_check" "$tmp/qps_drv.json"
expect 2 "$prefix/apps/bfs" "$tmp/qps.pgr" --sources 5,5

echo "--- bounded-RSS shard gate (beyond-ceiling graph through --shard-mb) ---"
# Plain build. rmat:18:9M weighted: a bfs open prices ~35 MB of core CSR
# arrays ((n+1)*8 + m*4) and a weighted sssp open ~67 MB (weights ride
# along), so per-driver ceilings of 28 / 50 MB reject the in-core opens
# with kResource while the sharded opens stream the same file through an
# 8 MB window (~1/4 of the 32 MB targets section). The gate then asserts
# the streamed runs actually honoured their ceiling (VmHWM from the
# metrics envelope) and produced byte-identical results to the in-core
# runs.
"$prefix/apps/graph_convert" rmat:18:9000000 "$tmp/shard.pgr" \
    --transpose --weights 30 > /dev/null
bfs_cap_mb=28
sssp_cap_mb=50
expect 4 "$prefix/apps/bfs"  "$tmp/shard.pgr" -a gbbs -r 1 \
    --mem-limit-mb "$bfs_cap_mb"
expect 4 "$prefix/apps/sssp" "$tmp/shard.pgr" -a em   -r 1 \
    --mem-limit-mb "$sssp_cap_mb"

"$prefix/apps/bfs"  "$tmp/shard.pgr" -a gbbs -r 1 \
    | normalize > "$tmp/shard_bfs_ref.txt"
"$prefix/apps/sssp" "$tmp/shard.pgr" -a em   -r 1 \
    | normalize > "$tmp/shard_sssp_ref.txt"
"$prefix/apps/bfs"  "$tmp/shard.pgr" -a gbbs -r 1 --shard-mb 8 \
    --mem-limit-mb "$bfs_cap_mb" --json-metrics "$tmp/shard_bfs.json" \
    | normalize > "$tmp/shard_bfs.txt"
"$prefix/apps/sssp" "$tmp/shard.pgr" -a em   -r 1 --shard-mb 8 \
    --mem-limit-mb "$sssp_cap_mb" --json-metrics "$tmp/shard_sssp.json" \
    | normalize > "$tmp/shard_sssp.txt"
for algo in bfs sssp; do
  eval "cap_mb=\$${algo}_cap_mb"
  diff "$tmp/shard_${algo}_ref.txt" "$tmp/shard_${algo}.txt" || {
    echo "FAIL: $algo sharded output differs from the in-core run" >&2; exit 1
  }
  grep -q '"shard":{"shards":' "$tmp/shard_${algo}.json" || {
    echo "FAIL: $algo sharded metrics lack the shard subsection" >&2; exit 1
  }
  rss=$(sed -E 's/.*"peak_rss_bytes":([0-9]+).*/\1/' "$tmp/shard_${algo}.json")
  [ "$rss" -lt $((cap_mb << 20)) ] || {
    echo "FAIL: $algo sharded peak RSS $rss >= ${cap_mb} MB ceiling" >&2; exit 1
  }
  "$prefix/apps/metrics_check" "$tmp/shard_${algo}.json"
done

echo "--- dynamic update gate (overlay vs rebuilt reference, 1/4/8 workers) ---"
# Plain build. graph_convert generates a deterministic update log, the
# --apply-updates path folds it into a from-scratch rebuilt .pgr, and every
# overlay-aware driver run on (base + log) must print byte-identical result
# lines to the plain run on the folded file — per worker count and across
# worker counts. 120 ops on rmat:12 (n=4096) keeps churn under 1% so the
# incremental BFS repair must also beat the full recompute on settles.
"$prefix/apps/graph_convert" rmat:12:40000 "$tmp/upd.pgr" --transpose > /dev/null
"$prefix/apps/graph_convert" "$tmp/upd.pgr" "$tmp/upd.plog" \
    --gen-updates 120:7:4 > /dev/null
"$prefix/apps/graph_convert" "$tmp/upd.pgr" "$tmp/upd_folded.pgr" \
    --apply-updates "$tmp/upd.plog" --transpose > /dev/null
for w in 1 4 8; do
  env PASGAL_NUM_THREADS=$w "$prefix/apps/bfs" "$tmp/upd.pgr" -a gbbs -r 1 \
      --updates "$tmp/upd.plog" --json-metrics "$tmp/upd_bfs_$w.json" \
      | grep -o 'reached .*' > "$tmp/upd_bfs_$w.txt"
  env PASGAL_NUM_THREADS=$w "$prefix/apps/bfs" "$tmp/upd_folded.pgr" \
      -a gbbs -r 1 | grep -o 'reached .*' > "$tmp/upd_bfs_ref_$w.txt"
  env PASGAL_NUM_THREADS=$w "$prefix/apps/cc" "$tmp/upd.pgr" -r 1 \
      --updates "$tmp/upd.plog" --json-metrics "$tmp/upd_cc_$w.json" \
      | grep -o '[0-9][0-9]* components.*' > "$tmp/upd_cc_$w.txt"
  env PASGAL_NUM_THREADS=$w "$prefix/apps/cc" "$tmp/upd_folded.pgr" -r 1 \
      | grep -o '[0-9][0-9]* components.*' > "$tmp/upd_cc_ref_$w.txt"
  env PASGAL_NUM_THREADS=$w "$prefix/apps/pagerank" "$tmp/upd.pgr" -r 1 \
      --updates "$tmp/upd.plog" --json-metrics "$tmp/upd_pr_$w.json" \
      | grep '^converged' > "$tmp/upd_pr_$w.txt"
  env PASGAL_NUM_THREADS=$w "$prefix/apps/pagerank" "$tmp/upd_folded.pgr" \
      -r 1 | grep '^converged' > "$tmp/upd_pr_ref_$w.txt"
  for algo in bfs cc pr; do
    diff "$tmp/upd_${algo}_${w}.txt" "$tmp/upd_${algo}_ref_${w}.txt" || {
      echo "FAIL: $algo overlay result differs from the rebuilt reference" \
           "at $w workers" >&2
      exit 1
    }
    "$prefix/apps/metrics_check" "$tmp/upd_${algo}_${w}.json"
    grep -q '"delta":' "$tmp/upd_${algo}_${w}.json" || {
      echo "FAIL: $algo overlay metrics lack the delta subsection" >&2; exit 1
    }
  done
done
for algo in bfs cc pr; do
  [ "$(cat "$tmp/upd_${algo}_"[148].txt | sort -u | wc -l)" -eq 1 ] || {
    echo "FAIL: $algo overlay results differ across worker counts" >&2; exit 1
  }
done
# Incremental BFS must re-settle strictly fewer vertices than a full
# recompute at this churn (reported in the delta metrics subsection).
resettled=$(sed -E 's/.*"resettled":([0-9]+).*/\1/' "$tmp/upd_bfs_1.json")
full_settled=$(sed -E 's/.*"full_settled":([0-9]+).*/\1/' "$tmp/upd_bfs_1.json")
[ -n "$resettled" ] && [ -n "$full_settled" ] &&
    [ "$resettled" -lt "$full_settled" ] || {
  echo "FAIL: incremental BFS resettled $resettled of $full_settled" \
       "vertices (expected strictly fewer than full recompute)" >&2
  exit 1
}

echo "--- driver --serve drain gate (SIGTERM finishes the open, flushes metrics) ---"
"$prefix/apps/bfs" "$tmp/serve.pgr" --serve 100000 -r 1 \
    --json-metrics "$tmp/drain.json" > "$tmp/drain.txt" 2>&1 &
bpid=$!
sleep 0.5
kill -TERM "$bpid"
wait "$bpid" || {
  echo "FAIL: --serve driver exited nonzero on SIGTERM" >&2; exit 1
}
grep -q 'serve: stop signal, draining' "$tmp/drain.txt" || {
  echo "FAIL: --serve driver did not announce the drain" >&2; exit 1
}
"$prefix/apps/metrics_check" "$tmp/drain.json"

echo
echo "check.sh: all gates passed"
