// Shared benchmark harness: the dataset suite standing in for the paper's 22
// graphs (DESIGN.md §2/§4), wall-clock timing, paper-style table printing,
// and the documented cost model for projecting speedup-vs-cores curves.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "algorithms/bfs/bfs.h"
#include "graphs/generators.h"
#include "graphs/graph_io.h"
#include "pasgal/stats.h"

namespace pasgal::bench {

struct GraphSpec {
  std::string name;    // e.g. "ROAD-NA"
  std::string cls;     // Social / Web / Road / kNN / Synthetic
  std::string paper_analogue;
  bool directed;       // false: builder returns a symmetrized graph
  std::function<Graph()> build;
};

// When PASGAL_SUITE_DIR is set and holds a pre-converted <NAME>.pgr for a
// suite graph, the builder mmaps it instead of regenerating — repeated bench
// runs then share one page-cached read-only copy and skip generation
// entirely. Produce the files once with:
//   graph_convert <spec> $PASGAL_SUITE_DIR/<NAME>.pgr --transpose
inline std::function<Graph()> with_pgr_override(const std::string& name,
                                                std::function<Graph()> build) {
  return [name, build = std::move(build)]() {
    if (const char* dir = std::getenv("PASGAL_SUITE_DIR"); dir && *dir) {
      std::string path = std::string(dir) + "/" + name + ".pgr";
      if (std::filesystem::exists(path)) return read_pgr(path);
    }
    return build();
  };
}

// The suite. Scaled-down but class-faithful: same m/n ratios and diameter
// regimes as the paper's datasets (Table 1); see DESIGN.md for the mapping.
inline std::vector<GraphSpec> graph_suite() {
  std::vector<GraphSpec> specs;
  // --- Social: power-law, low diameter.
  specs.push_back({"SOC-LJ", "Social", "soc-LiveJournal1", true,
                   [] { return gen::rmat(17, 2'000'000, 101); }});
  specs.push_back({"SOC-OK", "Social", "com-orkut (undirected)", false,
                   [] { return gen::rmat(16, 1'500'000, 102).symmetrize(); }});
  // --- Web: power-law with more local structure, low-mid diameter.
  specs.push_back({"WEB-SD", "Web", "sd-arc", true,
                   [] { return gen::rmat(17, 1'500'000, 103, 0.65, 0.15, 0.15); }});
  // --- Road: sparse lattices with one-way streets, D ~ sqrt(n).
  specs.push_back({"ROAD-NA", "Road", "OSM North America", true,
                   [] { return gen::road_grid(600, 600, 0.85, 104); }});
  specs.push_back({"ROAD-EU", "Road", "OSM Europe", true,
                   [] { return gen::road_grid(500, 900, 0.80, 105); }});
  // --- k-NN: geometric, large diameter.
  specs.push_back({"KNN-CH5", "kNN", "Chem k=5", true,
                   [] { return gen::knn_graph(200'000, 5, 106, 16); }});
  specs.push_back({"KNN-GL10", "kNN", "GeoLife k=10", true,
                   [] { return gen::knn_graph(200'000, 10, 107); }});
  // --- Synthetic: the paper's REC/SREC rectangles, bubbles, and a chain.
  specs.push_back({"REC", "Synthetic", "10^3 x 10^5 grid", true,
                   [] { return gen::road_grid(100, 8000, 0.9, 108); }});
  specs.push_back({"SREC", "Synthetic", "sampled REC", true,
                   [] {
                     return gen::sampled_edges(gen::road_grid(100, 8000, 0.9, 108),
                                               0.75, 109);
                   }});
  specs.push_back({"BBL", "Synthetic", "huge-bubbles (undirected)", false,
                   [] { return gen::bubbles(1200, 40); }});
  specs.push_back({"CHAIN", "Synthetic", "adversarial path (undirected)", false,
                   [] { return gen::chain(500'000); }});
  for (auto& s : specs) s.build = with_pgr_override(s.name, std::move(s.build));
  return specs;
}

// Subset helpers used by individual benches.
inline std::vector<GraphSpec> directed_suite() {
  std::vector<GraphSpec> out;
  for (auto& s : graph_suite()) {
    if (s.directed) out.push_back(s);
  }
  return out;
}

// --- timing ---------------------------------------------------------------

template <typename F>
double time_seconds(F&& f, int repeats = 1) {
  double best = 1e300;
  for (int r = 0; r < repeats; ++r) {
    auto start = std::chrono::steady_clock::now();
    f();
    auto stop = std::chrono::steady_clock::now();
    best = std::min(best,
                    std::chrono::duration<double>(stop - start).count());
  }
  return best;
}

// --- cost model (DESIGN.md §4) ---------------------------------------------
//
// T_P = W*c_work / min(P, avg_frontier) + R * c_sync * (1 + log2 P)
//
// W = edges scanned + vertices visited, R = rounds, avg_frontier = average
// frontier size (a round with 3 active vertices cannot use 96 cores).
// c_work is calibrated per graph from the measured sequential baseline;
// c_sync defaults to 5 microseconds, a typical fork/join barrier +
// task-distribution cost on a 4-socket box.
struct Projection {
  double c_work_ns = 1.0;
  double c_sync_ns = 5000.0;

  double time_from(int p, double edges, double visits, double rounds) const {
    double work = edges + visits;
    double avg_frontier = rounds > 0 ? visits / rounds : 1.0;
    double usable = std::min<double>(p, std::max(1.0, avg_frontier));
    double compute = work * c_work_ns / usable;
    double sync = p <= 1 ? 0.0
                         : rounds * c_sync_ns * (1.0 + std::log2(double(p)));
    return compute + sync;
  }

  double time_at(int p, const RunStats& stats) const {
    return time_from(p, double(stats.edges_scanned()),
                     double(stats.vertices_visited()), double(stats.rounds()));
  }

  double time_at(int p, const RunTelemetry& t) const {
    return time_from(p, double(t.edges_scanned), double(t.vertices_visited),
                     double(t.rounds.size()));
  }

  double speedup_at(int p, const RunStats& stats, double seq_time_ns) const {
    return seq_time_ns / time_at(p, stats);
  }

  double speedup_at(int p, const RunTelemetry& t, double seq_time_ns) const {
    return seq_time_ns / time_at(p, t);
  }
};

// Calibrate c_work so that the sequential baseline's modeled time matches
// its measured time.
inline Projection calibrate_from(double seq_seconds, double work) {
  Projection proj;
  if (work > 0) proj.c_work_ns = seq_seconds * 1e9 / work;
  return proj;
}

inline Projection calibrate(double seq_seconds, const RunStats& seq_stats) {
  return calibrate_from(seq_seconds,
                        double(seq_stats.edges_scanned() +
                               seq_stats.vertices_visited()));
}

inline Projection calibrate(double seq_seconds, const RunTelemetry& t) {
  return calibrate_from(seq_seconds,
                        double(t.edges_scanned + t.vertices_visited));
}

// --- machine-readable results (BENCH_<name>.json) ----------------------------
//
// Each table bench accumulates one metrics document per (variant, graph) run
// — the same schema the drivers emit via --json-metrics, so the per-round
// traces land in version control alongside the printed tables. The envelope
// is {"schema": "pasgal.bench", "runs": [<pasgal.metrics docs>...]};
// `metrics_check` validates both formats.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void add(const MetricsDoc& doc) { runs_.push_back(doc.to_json()); }

  // Writes BENCH_<bench>.json into $PASGAL_BENCH_DIR (or the cwd) and
  // reports the path; benches treat failure as fatal so CI notices.
  bool write() const {
    const char* dir = std::getenv("PASGAL_BENCH_DIR");
    std::string path =
        (dir && *dir ? std::string(dir) + "/" : std::string()) + "BENCH_" +
        bench_ + ".json";
    std::string out = "{\"schema\": \"pasgal.bench\", \"version\": 1, "
                      "\"bench\": \"" + json::escape(bench_) + "\", "
                      "\"runs\": [\n";
    for (std::size_t i = 0; i < runs_.size(); ++i) {
      std::string run = runs_[i];
      while (!run.empty() && (run.back() == '\n' || run.back() == ' ')) {
        run.pop_back();
      }
      out += run;
      out += i + 1 < runs_.size() ? ",\n" : "\n";
    }
    out += "]}\n";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    ok = std::fclose(f) == 0 && ok;
    std::printf("bench metrics: wrote %s (%zu runs)\n", path.c_str(),
                runs_.size());
    return ok;
  }

 private:
  std::string bench_;
  std::vector<std::string> runs_;
};

// --- table printing ---------------------------------------------------------

class Table {
 public:
  explicit Table(std::vector<std::string> columns) : columns_(std::move(columns)) {}

  void add_row(const std::string& cls, const std::string& graph,
               const std::vector<double>& values) {
    rows_.push_back({cls, graph, values});
  }

  // Prints rows grouped by class, then per-class geometric means — the
  // layout of the paper's appendix tables.
  void print(const std::string& title, const std::string& value_kind) const {
    std::printf("\n=== %s ===\n(%s; lower is better for times, higher for speedups)\n",
                title.c_str(), value_kind.c_str());
    std::printf("%-10s %-10s", "Class", "Graph");
    for (const auto& c : columns_) std::printf(" %12s", c.c_str());
    std::printf("\n");
    for (const auto& r : rows_) {
      std::printf("%-10s %-10s", r.cls.c_str(), r.graph.c_str());
      for (double v : r.values) std::printf(" %12.4g", v);
      std::printf("\n");
    }
    // Geometric means per class.
    std::map<std::string, std::vector<std::vector<double>>> by_class;
    for (const auto& r : rows_) by_class[r.cls].push_back(r.values);
    std::printf("--- geometric means ---\n");
    for (const auto& [cls, rows] : by_class) {
      std::printf("%-10s %-10s", cls.c_str(), "geomean");
      for (std::size_t c = 0; c < columns_.size(); ++c) {
        double log_sum = 0;
        int count = 0;
        for (const auto& vals : rows) {
          if (c < vals.size() && vals[c] > 0) {
            log_sum += std::log(vals[c]);
            ++count;
          }
        }
        std::printf(" %12.4g", count ? std::exp(log_sum / count) : 0.0);
      }
      std::printf("\n");
    }
  }

 private:
  struct Row {
    std::string cls, graph;
    std::vector<double> values;
  };
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

// Paper-style diameter estimate: lower bound via repeated BFS sweeps
// (the paper reports lower bounds from >= 1000 sampled searches; we run a
// smaller, deterministic sample plus double sweeps from the extremes).
inline std::uint64_t estimate_diameter(const Graph& g, const Graph& gt,
                                       int samples = 8) {
  std::size_t n = g.num_vertices();
  if (n == 0) return 0;
  std::uint64_t best = 0;
  Random rng(7);
  VertexId next_source = 0;
  for (int s = 0; s < samples; ++s) {
    auto dist = pasgal_bfs(g, gt, next_source);
    std::uint64_t ecc = 0;
    VertexId far = next_source;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] != kInfDist && dist[v] > ecc) {
        ecc = dist[v];
        far = v;
      }
    }
    best = std::max(best, ecc);
    // Double sweep: next source is the farthest vertex found, alternating
    // with random restarts to cover other components.
    next_source = (s % 2 == 0) ? far
                               : static_cast<VertexId>(rng.ith_rand(s) % n);
  }
  return best;
}

}  // namespace pasgal::bench
