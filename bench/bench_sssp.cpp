// SSSP benchmark (§2.2: the paper describes its stepping+VGC SSSP but the
// brief announcement has no SSSP table; we table it in the same format):
// rho-stepping and delta-stepping (both with VGC) vs parallel Bellman-Ford
// vs sequential Dijkstra, on the weighted suite. Per-run telemetry lands in
// BENCH_sssp.json.
#include <cstdio>

#include "algorithms/sssp/sssp.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  Table times({"rho-step", "delta-step", "BellmanFord", "Dijkstra*"});
  Table rounds({"rho-step", "delta-step", "BellmanFord"});
  Table speedup96({"rho-step", "delta-step", "BellmanFord"});
  BenchJson metrics("sssp");

  for (const auto& spec : graph_suite()) {
    if (spec.name == "CHAIN") continue;  // weighted chain: Bellman-Ford needs
                                         // O(n) rounds and hours of bag churn
    Graph base = spec.build();
    auto g = gen::add_weights(base, 1000, 42);
    VertexId source = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (base.out_degree(v) > base.out_degree(source)) source = v;
    }

    AlgoOptions opt;
    opt.source = source;
    auto seq = dijkstra(g, opt);
    auto rho = stepping_sssp(g, opt);
    AlgoOptions delta_opt = opt;
    delta_opt.sssp_delta_mode = true;
    delta_opt.sssp_delta = 256;
    auto delta = stepping_sssp(g, delta_opt);
    auto bf = bellman_ford(g, opt);
    if (rho.output != seq.output || delta.output != seq.output ||
        bf.output != seq.output) {
      std::fprintf(stderr, "SSSP MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }

    auto record = [&](const char* variant, const auto& report,
                      std::uint64_t delta_param) {
      MetricsDoc doc("sssp", variant, spec.name, g.num_vertices(),
                     g.num_edges());
      doc.set_param("source", std::uint64_t{source});
      if (delta_param) doc.set_param("delta", delta_param);
      doc.add_trial(report.seconds, report.telemetry);
      metrics.add(doc);
    };
    record("seq", seq, 0);
    record("rho", rho, 0);
    record("delta", delta, delta_opt.sssp_delta);
    record("bf", bf, 0);

    times.add_row(spec.cls, spec.name,
                  {rho.seconds, delta.seconds, bf.seconds, seq.seconds});
    rounds.add_row(spec.cls, spec.name,
                   {double(rho.telemetry.rounds.size()),
                    double(delta.telemetry.rounds.size()),
                    double(bf.telemetry.rounds.size())});
    Projection proj = calibrate(seq.seconds, seq.telemetry);
    double ns = seq.seconds * 1e9;
    speedup96.add_row(spec.cls, spec.name,
                      {proj.speedup_at(96, rho.telemetry, ns),
                       proj.speedup_at(96, delta.telemetry, ns),
                       proj.speedup_at(96, bf.telemetry, ns)});
    std::fflush(stdout);
  }

  times.print("SSSP running time (this machine, 1 core)", "seconds");
  rounds.print("SSSP global synchronizations (rounds)", "count");
  speedup96.print("SSSP projected speedup over Dijkstra at P=96", "speedup");
  return metrics.write() ? 0 : 1;
}
