// SSSP benchmark (§2.2: the paper describes its stepping+VGC SSSP but the
// brief announcement has no SSSP table; we table it in the same format):
// rho-stepping and delta-stepping (both with VGC) vs parallel Bellman-Ford
// vs sequential Dijkstra, on the weighted suite.
#include <cstdio>

#include "algorithms/sssp/sssp.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  Table times({"rho-step", "delta-step", "BellmanFord", "Dijkstra*"});
  Table rounds({"rho-step", "delta-step", "BellmanFord"});
  Table speedup96({"rho-step", "delta-step", "BellmanFord"});

  for (const auto& spec : graph_suite()) {
    if (spec.name == "CHAIN") continue;  // weighted chain: Bellman-Ford needs
                                         // O(n) rounds and hours of bag churn
    Graph base = spec.build();
    auto g = gen::add_weights(base, 1000, 42);
    VertexId source = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (base.out_degree(v) > base.out_degree(source)) source = v;
    }

    RunStats seq_stats, rho_stats, delta_stats, bf_stats;
    std::vector<Dist> ref, d1, d2, d3;
    double t_seq = time_seconds([&] { ref = dijkstra(g, source, &seq_stats); });
    double t_rho = time_seconds([&] { d1 = rho_stepping(g, source, &rho_stats); });
    SteppingParams delta_params;
    delta_params.strategy = SteppingParams::Strategy::kDelta;
    delta_params.delta = 256;
    double t_delta = time_seconds(
        [&] { d2 = stepping_sssp(g, source, delta_params, &delta_stats); });
    double t_bf = time_seconds([&] { d3 = bellman_ford(g, source, &bf_stats); });
    if (d1 != ref || d2 != ref || d3 != ref) {
      std::fprintf(stderr, "SSSP MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }

    times.add_row(spec.cls, spec.name, {t_rho, t_delta, t_bf, t_seq});
    rounds.add_row(spec.cls, spec.name,
                   {double(rho_stats.rounds()), double(delta_stats.rounds()),
                    double(bf_stats.rounds())});
    Projection proj = calibrate(t_seq, seq_stats);
    double ns = t_seq * 1e9;
    speedup96.add_row(spec.cls, spec.name,
                      {proj.speedup_at(96, rho_stats, ns),
                       proj.speedup_at(96, delta_stats, ns),
                       proj.speedup_at(96, bf_stats, ns)});
    std::fflush(stdout);
  }

  times.print("SSSP running time (this machine, 1 core)", "seconds");
  rounds.print("SSSP global synchronizations (rounds)", "count");
  speedup96.print("SSSP projected speedup over Dijkstra at P=96", "speedup");
  return 0;
}
