// Reproduces Table 1 / Table A1: statistics of the benchmark graphs
// (n, m' = directed edges, m = symmetrized edges, D' and D = diameter lower
// bounds from sampled searches, as in the paper).
#include <cstdio>

#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  std::printf("Table 1 (graph statistics). D/D' are lower bounds from sampled "
              "BFS double sweeps,\nas in the paper.\n\n");
  std::printf("%-10s %-10s %-22s %10s %10s %10s %8s %8s\n", "Class", "Graph",
              "Analogue", "n", "m'", "m", "D'", "D");
  for (const auto& spec : graph_suite()) {
    Graph g = spec.build();
    std::uint64_t n = g.num_vertices();
    std::uint64_t m_dir = spec.directed ? g.num_edges() : 0;
    Graph sym = spec.directed ? g.symmetrize() : g;
    std::uint64_t m_sym = sym.num_edges();
    std::uint64_t d_dir = 0;
    if (spec.directed) {
      Graph gt = g.transpose();
      d_dir = estimate_diameter(g, gt);
    }
    std::uint64_t d_sym = estimate_diameter(sym, sym);
    if (spec.directed) {
      std::printf("%-10s %-10s %-22s %10llu %10llu %10llu %8llu %8llu\n",
                  spec.cls.c_str(), spec.name.c_str(),
                  spec.paper_analogue.c_str(),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned long long>(m_dir),
                  static_cast<unsigned long long>(m_sym),
                  static_cast<unsigned long long>(d_dir),
                  static_cast<unsigned long long>(d_sym));
    } else {
      std::printf("%-10s %-10s %-22s %10llu %10s %10llu %8s %8llu\n",
                  spec.cls.c_str(), spec.name.c_str(),
                  spec.paper_analogue.c_str(),
                  static_cast<unsigned long long>(n), "N/A",
                  static_cast<unsigned long long>(m_sym), "N/A",
                  static_cast<unsigned long long>(d_sym));
    }
    std::fflush(stdout);
  }
  return 0;
}
