// Reproduces Table A4 (BFS running times: PASGAL vs GBBS vs GAPBS vs the
// sequential queue baseline) plus the round-count and projected-speedup views
// that substantiate the paper's shape claims on this 1-core substrate
// (see DESIGN.md §2 for the substitution rationale). Every run's full
// telemetry (per-round traces, scheduler counters) lands in BENCH_bfs.json.
#include <cstdio>

#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

namespace {

VertexId max_degree_vertex(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

}  // namespace

int main() {
  Table times({"PASGAL", "GBBS", "GAPBS", "Queue*"});
  Table rounds({"PASGAL", "GBBS", "GAPBS"});
  Table speedup96({"PASGAL", "GBBS", "GAPBS"});
  BenchJson metrics("bfs");

  for (const auto& spec : graph_suite()) {
    Graph g = spec.build();
    Graph gt = spec.directed ? g.transpose() : g;
    const Graph& gt_ref = spec.directed ? gt : g;
    VertexId source = max_degree_vertex(g);

    AlgoOptions opt;
    opt.source = source;
    auto seq = seq_bfs(g, opt);
    auto pasgal = pasgal_bfs(g, gt_ref, opt);
    auto gbbs = gbbs_bfs(g, gt_ref, opt);
    auto gapbs = gapbs_bfs(g, gt_ref, opt);
    if (pasgal.output != seq.output || gbbs.output != seq.output ||
        gapbs.output != seq.output) {
      std::fprintf(stderr, "BFS MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }

    auto record = [&](const char* variant, const auto& report) {
      MetricsDoc doc("bfs", variant, spec.name, g.num_vertices(),
                     g.num_edges());
      doc.set_param("source", std::uint64_t{source});
      doc.add_trial(report.seconds, report.telemetry);
      metrics.add(doc);
    };
    record("seq", seq);
    record("pasgal", pasgal);
    record("gbbs", gbbs);
    record("gapbs", gapbs);

    times.add_row(spec.cls, spec.name,
                  {pasgal.seconds, gbbs.seconds, gapbs.seconds, seq.seconds});
    rounds.add_row(spec.cls, spec.name,
                   {double(pasgal.telemetry.rounds.size()),
                    double(gbbs.telemetry.rounds.size()),
                    double(gapbs.telemetry.rounds.size())});
    Projection proj = calibrate(seq.seconds, seq.telemetry);
    double seq_ns = seq.seconds * 1e9;
    speedup96.add_row(spec.cls, spec.name,
                      {proj.speedup_at(96, pasgal.telemetry, seq_ns),
                       proj.speedup_at(96, gbbs.telemetry, seq_ns),
                       proj.speedup_at(96, gapbs.telemetry, seq_ns)});
    std::fflush(stdout);
  }

  times.print("Table A4: BFS running time (this machine, 1 core)", "seconds");
  rounds.print("BFS global synchronizations (rounds)", "count");
  speedup96.print(
      "BFS projected speedup over sequential at P=96 (cost model, DESIGN.md)",
      "speedup; <1 means slower than sequential");
  return metrics.write() ? 0 : 1;
}
