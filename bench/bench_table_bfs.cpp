// Reproduces Table A4 (BFS running times: PASGAL vs GBBS vs GAPBS vs the
// sequential queue baseline) plus the round-count and projected-speedup views
// that substantiate the paper's shape claims on this 1-core substrate
// (see DESIGN.md §2 for the substitution rationale).
#include <cstdio>

#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

namespace {

VertexId max_degree_vertex(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

}  // namespace

int main() {
  Table times({"PASGAL", "GBBS", "GAPBS", "Queue*"});
  Table rounds({"PASGAL", "GBBS", "GAPBS"});
  Table speedup96({"PASGAL", "GBBS", "GAPBS"});

  for (const auto& spec : graph_suite()) {
    Graph g = spec.build();
    Graph gt = spec.directed ? g.transpose() : g;
    const Graph& gt_ref = spec.directed ? gt : g;
    VertexId source = max_degree_vertex(g);

    RunStats seq_stats, pasgal_stats, gbbs_stats, gapbs_stats;
    std::vector<std::uint32_t> ref;
    double t_seq = time_seconds([&] { ref = seq_bfs(g, source, &seq_stats); });
    std::vector<std::uint32_t> d1, d2, d3;
    double t_pasgal =
        time_seconds([&] { d1 = pasgal_bfs(g, gt_ref, source, {}, &pasgal_stats); });
    double t_gbbs =
        time_seconds([&] { d2 = gbbs_bfs(g, gt_ref, source, &gbbs_stats); });
    double t_gapbs =
        time_seconds([&] { d3 = gapbs_bfs(g, gt_ref, source, {}, &gapbs_stats); });
    if (d1 != ref || d2 != ref || d3 != ref) {
      std::fprintf(stderr, "BFS MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }

    times.add_row(spec.cls, spec.name, {t_pasgal, t_gbbs, t_gapbs, t_seq});
    rounds.add_row(spec.cls, spec.name,
                   {double(pasgal_stats.rounds()), double(gbbs_stats.rounds()),
                    double(gapbs_stats.rounds())});
    Projection proj = calibrate(t_seq, seq_stats);
    double seq_ns = t_seq * 1e9;
    speedup96.add_row(spec.cls, spec.name,
                      {proj.speedup_at(96, pasgal_stats, seq_ns),
                       proj.speedup_at(96, gbbs_stats, seq_ns),
                       proj.speedup_at(96, gapbs_stats, seq_ns)});
    std::fflush(stdout);
  }

  times.print("Table A4: BFS running time (this machine, 1 core)", "seconds");
  rounds.print("BFS global synchronizations (rounds)", "count");
  speedup96.print(
      "BFS projected speedup over sequential at P=96 (cost model, DESIGN.md)",
      "speedup; <1 means slower than sequential");
  return 0;
}
