// Dynamic-update throughput: delta-overlay apply rate and incremental BFS
// repair vs from-scratch recompute (graphs/delta.h, algorithms/incremental.h).
//
// Two regimes from the suite: SOC-LJ (power-law, low diameter — deletes
// rarely disconnect anything, repairs stay local) and ROAD-NA (lattice,
// D ~ sqrt(n) — a deleted one-way street invalidates a long corridor). Each
// round applies one mixed insert/delete batch and repairs the maintained
// distance vector; the full-recompute column is the overlay-aware gbbs run
// the repair must match.
#include <cstdio>
#include <random>
#include <set>

#include "algorithms/incremental.h"
#include "graphs/delta.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

namespace {

// Mixed batch of valid updates against the evolving effective edge set
// (tracked the same way apply_updates validates, so every op is accepted).
std::vector<EdgeUpdate> make_batch(const Graph& g,
                                   std::set<std::uint64_t>& present,
                                   std::vector<std::uint64_t>& edges,
                                   std::mt19937_64& rng, std::size_t count) {
  std::size_t n = g.num_vertices();
  auto key = [](VertexId u, VertexId v) {
    return (static_cast<std::uint64_t>(u) << 32) | v;
  };
  std::vector<EdgeUpdate> batch;
  batch.reserve(count);
  while (batch.size() < count) {
    if (!edges.empty() && (rng() & 1) != 0) {
      std::size_t pick = rng() % edges.size();
      std::uint64_t k = edges[pick];
      edges[pick] = edges.back();
      edges.pop_back();
      present.erase(k);
      batch.push_back({EdgeUpdate::Op::kDelete,
                       static_cast<VertexId>(k >> 32),
                       static_cast<VertexId>(k & 0xFFFFFFFFu)});
      continue;
    }
    VertexId u = static_cast<VertexId>(rng() % n);
    VertexId v = static_cast<VertexId>(rng() % n);
    if (present.count(key(u, v)) != 0) continue;
    present.insert(key(u, v));
    edges.push_back(key(u, v));
    batch.push_back({EdgeUpdate::Op::kInsert, u, v});
  }
  return batch;
}

}  // namespace

int main() {
  constexpr std::size_t kBatchOps = 2000;
  constexpr int kBatches = 4;

  for (const auto& spec : graph_suite()) {
    if (spec.name != "SOC-LJ" && spec.name != "ROAD-NA") continue;
    Graph g = spec.build();
    Graph gt = spec.directed ? g.transpose() : g;
    VertexId source = 0;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (g.out_degree(v) > g.out_degree(source)) source = v;
    }

    std::set<std::uint64_t> present;
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.neighbors(u)) {
        present.insert((static_cast<std::uint64_t>(u) << 32) | v);
      }
    }
    std::vector<std::uint64_t> edges(present.begin(), present.end());
    std::mt19937_64 rng(42);

    std::vector<std::uint32_t> dist = gbbs_bfs(g, gt, source);
    double full_seconds =
        time_seconds([&] { gbbs_bfs(g, gt, source); }, 2);

    std::printf("\n=== update throughput on %s (n=%zu m=%zu) ===\n",
                spec.name.c_str(), g.num_vertices(), g.num_edges());
    std::printf("full gbbs recompute: %.4f s\n", full_seconds);
    std::printf("%-8s %12s %14s %12s %12s %10s\n", "batch", "apply(s)",
                "updates/s", "repair(s)", "speedup", "resettled");
    for (int b = 0; b < kBatches; ++b) {
      std::vector<EdgeUpdate> batch =
          make_batch(g, present, edges, rng, kBatchOps);
      double apply_s = time_seconds([&] { apply_updates(g, batch); });
      IncrementalStats st;
      double repair_s = time_seconds(
          [&] { st = incremental_bfs(g, gt, source, batch, dist); });
      std::printf("%-8d %12.4f %14.0f %12.4f %11.1fx %10llu\n", b + 1,
                  apply_s, static_cast<double>(batch.size()) / apply_s,
                  repair_s, repair_s > 0 ? full_seconds / repair_s : 0.0,
                  static_cast<unsigned long long>(st.resettled));
    }
    std::fflush(stdout);
  }
  std::printf(
      "\nExpected shape: apply throughput is batch-size-bound (the snapshot\n"
      "rebuild re-copies the overlay), so larger batches amortize better.\n"
      "Repair wins big on SOC-LJ (a few thousand updates touch a vanishing\n"
      "fraction of a power-law ball) and less on ROAD-NA, where one deleted\n"
      "corridor edge can invalidate a distance cone proportional to the\n"
      "graph's sqrt(n) diameter.\n");
  return 0;
}
