// Batched-query throughput: one bit-parallel ms_bfs sweep over k sources
// versus k independent single-source pasgal_bfs runs — the serving-arc
// question in queries/sec rather than per-traversal latency. Every batch run
// also cross-checks its per-source distances against the singles, so the
// numbers come with the equivalence proof attached. Results land in
// BENCH_qps.json (each batch document carries the "batch" section).
//
//   bench_qps                              — suite subset, batch of 64
//   bench_qps <graph.pgr> [k]              — one graph, batch of k
//   bench_qps <graph.pgr> [k] --min-speedup F
//       gate mode for bench/check.sh: exit 1 unless every measured batch
//       reaches F times the sequential singles' queries/sec.
#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "parlay/hash_rng.h"
#include "pasgal/cli.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

namespace {

std::vector<VertexId> pick_sources(std::size_t n, std::size_t k) {
  std::vector<VertexId> sources;
  std::unordered_set<VertexId> seen;
  Random rng(7);
  for (std::uint64_t i = 0; sources.size() < k; ++i) {
    VertexId v = static_cast<VertexId>(rng.ith_rand(i, n));
    if (seen.insert(v).second) sources.push_back(v);
  }
  return sources;
}

}  // namespace

int main(int argc, char** argv) {
  std::string graph_path;
  std::size_t k = 64;
  double min_speedup = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min-speedup") == 0 && i + 1 < argc) {
      min_speedup = std::atof(argv[++i]);
    } else if (graph_path.empty()) {
      graph_path = argv[i];
    } else {
      k = static_cast<std::size_t>(
          cli::parse_int(argv[i], "batch size", 1,
                         static_cast<long long>(kMaxBatchSources),
                         ErrorCategory::kUsage));
    }
  }

  Table table({"Batch(s)", "Singles(s)", "QPS-batch", "QPS-single", "Speedup"});
  BenchJson metrics("qps");
  bool gate_ok = true;

  auto run_one = [&](const std::string& cls, const std::string& name,
                     Graph g) -> bool {
    if (g.num_vertices() < k) {
      std::fprintf(stderr, "%s: graph too small for a batch of %zu\n",
                   name.c_str(), k);
      return false;
    }
    Graph gt = g.transpose();
    std::vector<VertexId> sources = pick_sources(g.num_vertices(), k);

    BatchOptions bopt;
    bopt.sources = sources;
    BatchReport<std::vector<std::uint32_t>> batch = ms_bfs(g, gt, bopt);

    AlgoOptions sopt;
    double singles_seconds = 0;
    MetricsDoc singles_doc("bfs", "pasgal-singles", name, g.num_vertices(),
                           g.num_edges());
    singles_doc.set_param("batch_size", static_cast<std::uint64_t>(k));
    for (std::size_t i = 0; i < sources.size(); ++i) {
      sopt.source = sources[i];
      RunReport<std::vector<std::uint32_t>> single = pasgal_bfs(g, gt, sopt);
      singles_seconds += single.seconds;
      singles_doc.add_trial(single.seconds, single.telemetry);
      if (single.output != batch.per_source[i].output) {
        std::fprintf(stderr,
                     "QPS MISMATCH on %s: batch distances for source %u "
                     "differ from the single-source run\n",
                     name.c_str(), sources[i]);
        return false;
      }
    }

    MetricsDoc batch_doc("bfs", "ms", name, g.num_vertices(), g.num_edges());
    batch_doc.set_batch(sources, batch.seconds);
    batch_doc.add_trial(batch.seconds, batch.telemetry);
    metrics.add(batch_doc);
    metrics.add(singles_doc);

    double kd = static_cast<double>(k);
    double qps_batch = batch.seconds > 0 ? kd / batch.seconds : 0;
    double qps_single = singles_seconds > 0 ? kd / singles_seconds : 0;
    double speedup = batch.seconds > 0 ? singles_seconds / batch.seconds : 0;
    table.add_row(cls, name,
                  {batch.seconds, singles_seconds, qps_batch, qps_single,
                   speedup});
    if (min_speedup > 0 && speedup < min_speedup) {
      std::fprintf(stderr,
                   "QPS GATE FAIL on %s: batch of %zu reached %.2fx the "
                   "sequential singles (need >= %.2fx)\n",
                   name.c_str(), k, speedup, min_speedup);
      gate_ok = false;
    }
    return true;
  };

  bool ok = true;
  if (!graph_path.empty()) {
    ok = run_one("File", graph_path, read_pgr(graph_path));
  } else {
    // Low-diameter classes are the serving-arc sweet spot (few shared rounds
    // amortize the whole batch); the road lattice keeps the claim honest on
    // a high-diameter regime.
    for (const auto& spec : graph_suite()) {
      if (spec.name != "SOC-LJ" && spec.name != "WEB-SD" &&
          spec.name != "ROAD-NA") {
        continue;
      }
      ok = run_one(spec.cls, spec.name, spec.build()) && ok;
    }
  }

  table.print("Batched MS-BFS throughput vs sequential single-source runs",
              "seconds / queries per second");
  if (!metrics.write() || !ok) return 1;
  if (min_speedup > 0) {
    if (!gate_ok) return 1;
    std::printf("qps gate: ok (>= %.2fx on every graph)\n", min_speedup);
  }
  return 0;
}
