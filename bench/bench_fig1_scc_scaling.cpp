// Reproduces Figure 1: SCC speedup vs #processors over sequential Tarjan on
// four graphs — two low-diameter (SOC-LJ, WEB-SD) and two large-diameter
// (ROAD-NA, REC). Speedups beyond the physical core count come from the
// calibrated cost model (DESIGN.md §2/§4): the measured work, round count,
// and frontier profile of each run are projected to P cores. The shape claim
// under test: PASGAL keeps scaling on large-diameter graphs; GBBS and
// Multistep flatten (or drop below 1x) because their round counts grow with
// the diameter.
#include <cstdio>

#include "algorithms/scc/scc.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  const std::vector<std::string> picks = {"SOC-LJ", "WEB-SD", "ROAD-NA", "REC"};
  const std::vector<int> processors = {1, 2, 4, 8, 16, 32, 48, 96, 192};

  for (const auto& spec : directed_suite()) {
    bool wanted = false;
    for (const auto& p : picks) wanted |= (spec.name == p);
    if (!wanted) continue;

    Graph g = spec.build();
    Graph gt = g.transpose();

    RunStats seq_stats, pasgal_stats, gbbs_stats, multi_stats;
    double t_seq = time_seconds([&] { tarjan_scc(g, &seq_stats); });
    time_seconds([&] { pasgal_scc(g, gt, {}, &pasgal_stats); });
    time_seconds([&] { gbbs_scc(g, gt, {}, &gbbs_stats); });
    time_seconds([&] { multistep_scc(g, gt, {}, &multi_stats); });

    Projection proj = calibrate(t_seq, seq_stats);
    double seq_ns = t_seq * 1e9;

    std::printf("\n=== Figure 1 panel: %s (%s, analogue %s) ===\n",
                spec.name.c_str(), spec.cls.c_str(),
                spec.paper_analogue.c_str());
    std::printf("Tarjan* = 1.0 at every P. Rows: speedup over Tarjan.\n");
    std::printf("%-10s", "P");
    for (int p : processors) std::printf(" %8d", p);
    std::printf("\n");
    auto series = [&](const char* name, const RunStats& stats) {
      std::printf("%-10s", name);
      for (int p : processors) {
        std::printf(" %8.3f", proj.speedup_at(p, stats, seq_ns));
      }
      std::printf("\n");
    };
    series("PASGAL", pasgal_stats);
    series("GBBS", gbbs_stats);
    series("Multistep", multi_stats);
    std::printf("rounds: PASGAL=%llu GBBS=%llu Multistep=%llu\n",
                static_cast<unsigned long long>(pasgal_stats.rounds()),
                static_cast<unsigned long long>(gbbs_stats.rounds()),
                static_cast<unsigned long long>(multi_stats.rounds()));
    std::fflush(stdout);
  }
  return 0;
}
