// The four serving-workload families promoted in the algorithm vertical
// (PageRank, connected components, k-core, triangle counting) over the
// dataset suite: parallel vs sequential/baseline running times, with every
// pair of variants cross-checked before a row is recorded. Per-run
// telemetry lands in BENCH_families.json.
#include <cmath>
#include <cstdio>

#include "algorithms/cc/cc.h"
#include "algorithms/cc/ldd.h"
#include "algorithms/kcore/kcore.h"
#include "algorithms/pagerank/pagerank.h"
#include "algorithms/tc/tc.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

namespace {

// Component labels are representative vertex ids; variants may pick
// different representatives, so compare the partition, not the ids.
std::vector<VertexId> normalize_labels(const std::vector<VertexId>& label) {
  std::vector<VertexId> remap(label.size(), kInvalidVertex);
  std::vector<VertexId> out(label.size());
  VertexId next = 0;
  for (std::size_t v = 0; v < label.size(); ++v) {
    if (remap[label[v]] == kInvalidVertex) remap[label[v]] = next++;
    out[v] = remap[label[v]];
  }
  return out;
}

}  // namespace

int main() {
  Table pagerank_t({"PASGAL", "Seq"});
  Table cc_t({"UnionFind", "LDD"});
  Table kcore_t({"PASGAL", "Seq"});
  Table tc_t({"PASGAL", "Seq"});
  BenchJson metrics("families");

  for (const auto& spec : graph_suite()) {
    Graph g = spec.build();
    Graph gt = g.transpose();
    Graph sg = g.symmetrize();
    AlgoOptions opt;

    auto record = [&](const char* family, const char* variant, std::size_t n,
                      std::size_t m, const auto& report) {
      MetricsDoc doc(family, variant, spec.name, n, m);
      doc.add_trial(report.seconds, report.telemetry);
      metrics.add(doc);
    };
    auto record_pagerank = [&](const char* variant,
                               const RunReport<PagerankResult>& report) {
      MetricsDoc doc("pagerank", variant, spec.name, g.num_vertices(),
                     g.num_edges());
      doc.set_param("iterations",
                    static_cast<std::uint64_t>(report.output.iterations));
      doc.add_trial(report.seconds, report.telemetry);
      metrics.add(doc);
    };
    auto record_tc = [&](const char* variant,
                         const RunReport<std::uint64_t>& report) {
      MetricsDoc doc("tc", variant, spec.name, sg.num_vertices(),
                     sg.num_edges());
      doc.set_param("triangles", report.output);
      doc.add_trial(report.seconds, report.telemetry);
      metrics.add(doc);
    };

    // PageRank on the directed graph as loaded.
    auto pr_par = pasgal_pagerank(g, gt, opt);
    auto pr_seq = seq_pagerank(g, gt, opt);
    double l1 = 0;
    for (std::size_t v = 0; v < pr_par.output.rank.size(); ++v) {
      l1 += std::fabs(pr_par.output.rank[v] - pr_seq.output.rank[v]);
    }
    if (l1 > 1e-9 || pr_par.output.iterations != pr_seq.output.iterations) {
      std::fprintf(stderr, "PAGERANK MISMATCH on %s (L1 %g)\n",
                   spec.name.c_str(), l1);
      return 1;
    }
    record_pagerank("pasgal", pr_par);
    record_pagerank("seq", pr_seq);
    pagerank_t.add_row(spec.cls, spec.name,
                       {pr_par.seconds, pr_seq.seconds});

    // Connectivity families run on the symmetrized graph. Label
    // propagation is O(diameter * m), so it only cross-checks on the
    // low-diameter classes — on the road/grid/chain graphs (D up to 5*10^5)
    // it would dominate the whole bench.
    auto cc_uf = connected_components(sg, opt);
    auto cc_ldd = ldd_cc(sg, opt);
    auto want = normalize_labels(cc_uf.output.label);
    if (normalize_labels(cc_ldd.output) != want) {
      std::fprintf(stderr, "CC MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }
    if (spec.cls == "Social" || spec.cls == "Web") {
      auto cc_lp = label_prop_cc(sg, opt);
      if (normalize_labels(cc_lp.output) != want) {
        std::fprintf(stderr, "CC (label prop) MISMATCH on %s\n",
                     spec.name.c_str());
        return 1;
      }
      record("cc", "lp", sg.num_vertices(), sg.num_edges(), cc_lp);
    } else {
      std::printf("cc: skipping label propagation on %s (high diameter)\n",
                  spec.name.c_str());
    }
    record("cc", "uf", sg.num_vertices(), sg.num_edges(), cc_uf);
    record("cc", "ldd", sg.num_vertices(), sg.num_edges(), cc_ldd);
    cc_t.add_row(spec.cls, spec.name, {cc_uf.seconds, cc_ldd.seconds});

    auto kc_par = pasgal_kcore(sg, opt);
    auto kc_seq = seq_kcore(sg, opt);
    if (kc_par.output != kc_seq.output) {
      std::fprintf(stderr, "KCORE MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }
    record("kcore", "pasgal", sg.num_vertices(), sg.num_edges(), kc_par);
    record("kcore", "seq", sg.num_vertices(), sg.num_edges(), kc_seq);
    kcore_t.add_row(spec.cls, spec.name, {kc_par.seconds, kc_seq.seconds});

    auto tc_par = pasgal_tc(sg, opt);
    auto tc_seq = seq_tc(sg, opt);
    if (tc_par.output != tc_seq.output) {
      std::fprintf(stderr, "TC MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }
    record_tc("pasgal", tc_par);
    record_tc("seq", tc_seq);
    tc_t.add_row(spec.cls, spec.name, {tc_par.seconds, tc_seq.seconds});
    std::fflush(stdout);
  }

  pagerank_t.print("PageRank running time (this machine)", "seconds");
  cc_t.print("Connected components running time (this machine)", "seconds");
  kcore_t.print("k-core decomposition running time (this machine)",
                "seconds");
  tc_t.print("Triangle counting running time (this machine)", "seconds");
  return metrics.write() ? 0 : 1;
}
