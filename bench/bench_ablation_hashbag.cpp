// Ablation: hash bag vs dense-array frontier (google-benchmark micro).
//
// The paper's hash bag exists so a sparse round costs O(|frontier|), not
// O(n): the GBBS-style dense alternative allocates and packs an n-sized
// array every round. These micros measure one round's frontier maintenance
// at various frontier sizes over a 1M-vertex universe.
#include <benchmark/benchmark.h>

#include <atomic>

#include "parlay/primitives.h"
#include "pasgal/hashbag.h"

using namespace pasgal;

namespace {

constexpr std::size_t kUniverse = 1 << 20;

void BM_HashBagRound(benchmark::State& state) {
  std::size_t frontier = static_cast<std::size_t>(state.range(0));
  HashBag<std::uint32_t> bag(10);
  for (auto _ : state) {
    parallel_for(0, frontier, [&](std::size_t i) {
      bag.insert(static_cast<std::uint32_t>(hash64(i) % kUniverse));
    });
    auto out = bag.extract_all();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frontier));
}

void BM_DenseArrayRound(benchmark::State& state) {
  std::size_t frontier = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    // The GBBS-style round: n-sized flag array + pack.
    std::vector<std::atomic<std::uint8_t>> flags(kUniverse);
    parallel_for(0, kUniverse, [&](std::size_t i) {
      flags[i].store(0, std::memory_order_relaxed);
    });
    parallel_for(0, frontier, [&](std::size_t i) {
      flags[hash64(i) % kUniverse].store(1, std::memory_order_relaxed);
    });
    auto out = pack_indexed<std::uint32_t>(
        kUniverse,
        [&](std::size_t i) {
          return flags[i].load(std::memory_order_relaxed) != 0;
        },
        [&](std::size_t i) { return static_cast<std::uint32_t>(i); });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(frontier));
}

}  // namespace

// Frontier sizes from very sparse (the large-diameter regime where hash bags
// win by orders of magnitude) to dense (where the O(n) array amortizes).
BENCHMARK(BM_HashBagRound)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1 << 19);
BENCHMARK(BM_DenseArrayRound)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536)->Arg(1 << 19);

BENCHMARK_MAIN();
