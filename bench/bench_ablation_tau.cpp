// Ablation: sensitivity to the VGC budget tau (§2.1 calls tau "a tunable
// parameter" equivalent to the base-case size of granularity control).
// Sweeps tau for PASGAL BFS and SCC on one road graph and one synthetic
// rectangle; tau=1 is the no-VGC (GBBS-like) configuration.
#include <cstdio>

#include "algorithms/scc/scc.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  const std::vector<std::uint32_t> taus = {1, 4, 16, 64, 256, 512, 1024, 4096};

  for (const auto& spec : directed_suite()) {
    if (spec.name != "ROAD-NA" && spec.name != "REC") continue;
    Graph g = spec.build();
    Graph gt = g.transpose();

    std::printf("\n=== VGC tau ablation on %s ===\n", spec.name.c_str());
    std::printf("%8s %12s %10s %14s %12s %10s\n", "tau", "BFS time(s)",
                "BFS rounds", "BFS edges", "SCC time(s)", "SCC rounds");
    for (std::uint32_t tau : taus) {
      PasgalBfsParams bfs_params;
      bfs_params.vgc.tau = tau;
      RunStats bfs_stats;
      double t_bfs = time_seconds(
          [&] { pasgal_bfs(g, gt, 0, bfs_params, &bfs_stats); });

      SccParams scc_params;
      scc_params.vgc.tau = tau;
      RunStats scc_stats;
      double t_scc =
          time_seconds([&] { pasgal_scc(g, gt, scc_params, &scc_stats); });

      std::printf("%8u %12.4f %10llu %14llu %12.4f %10llu\n", tau, t_bfs,
                  static_cast<unsigned long long>(bfs_stats.rounds()),
                  static_cast<unsigned long long>(bfs_stats.edges_scanned()),
                  t_scc, static_cast<unsigned long long>(scc_stats.rounds()));
      std::fflush(stdout);
    }
  }
  std::printf(
      "\nExpected shape: rounds fall steeply as tau grows (fewer global\n"
      "synchronizations); edges scanned rises mildly (VGC revisits); the\n"
      "sweet spot is a few hundred, as the paper uses.\n");
  return 0;
}
