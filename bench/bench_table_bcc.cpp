// Reproduces Table A2 (BCC running times: PASGAL's FAST-BCC vs GBBS (BFS
// spanning tree) vs Tarjan-Vishkin vs sequential Hopcroft-Tarjan) plus
// rounds, projected speedups, and the auxiliary-space comparison that makes
// Tarjan-Vishkin "o.o.m." in the paper. Graphs are symmetrized, as in the
// paper ("we symmetrize directed graphs for testing BCC"). Per-run telemetry
// (including FAST-BCC's phase breakdown) lands in BENCH_bcc.json.
#include <cstdio>

#include "algorithms/bcc/bcc.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  Table times({"PASGAL", "GBBS", "Tarjan-Vishkin", "Hopcroft-Tarjan*"});
  Table rounds({"PASGAL", "GBBS", "Tarjan-Vishkin"});
  Table speedup96({"PASGAL", "GBBS", "Tarjan-Vishkin"});
  Table aux_nodes({"PASGAL(skeleton n)", "TV(aux nodes m/2)"});
  BenchJson metrics("bcc");

  for (const auto& spec : graph_suite()) {
    Graph g0 = spec.build();
    Graph g = spec.directed ? g0.symmetrize() : g0;

    AlgoOptions opt;
    auto seq = hopcroft_tarjan_bcc(g, opt);
    auto fast = fast_bcc(g, opt);
    auto gbbs = gbbs_bcc(g, opt);
    auto tv = tarjan_vishkin_bcc(g, opt);

    auto want = normalize_bcc_labels(seq.output.edge_label);
    if (normalize_bcc_labels(fast.output.edge_label) != want ||
        normalize_bcc_labels(gbbs.output.edge_label) != want ||
        normalize_bcc_labels(tv.output.edge_label) != want) {
      std::fprintf(stderr, "BCC MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }

    auto record = [&](const char* variant, const auto& report) {
      MetricsDoc doc("bcc", variant, spec.name, g.num_vertices(),
                     g.num_edges());
      doc.add_trial(report.seconds, report.telemetry);
      metrics.add(doc);
    };
    record("seq", seq);
    record("pasgal", fast);
    record("gbbs", gbbs);
    record("tv", tv);

    times.add_row(spec.cls, spec.name,
                  {fast.seconds, gbbs.seconds, tv.seconds, seq.seconds});
    rounds.add_row(spec.cls, spec.name,
                   {double(fast.telemetry.rounds.size()),
                    double(gbbs.telemetry.rounds.size()),
                    double(tv.telemetry.rounds.size())});
    Projection proj = calibrate(seq.seconds, seq.telemetry);
    double seq_ns = seq.seconds * 1e9;
    speedup96.add_row(spec.cls, spec.name,
                      {proj.speedup_at(96, fast.telemetry, seq_ns),
                       proj.speedup_at(96, gbbs.telemetry, seq_ns),
                       proj.speedup_at(96, tv.telemetry, seq_ns)});
    // Auxiliary structure sizes: FAST-BCC's skeleton has at most n vertices;
    // Tarjan-Vishkin materializes one auxiliary node per undirected edge.
    aux_nodes.add_row(spec.cls, spec.name,
                      {double(g.num_vertices()), double(g.num_edges() / 2)});
    std::fflush(stdout);
  }

  times.print("Table A2: BCC running time (this machine, 1 core)", "seconds");
  rounds.print("BCC global synchronizations (rounds)", "count");
  speedup96.print(
      "BCC projected speedup over sequential Hopcroft-Tarjan at P=96",
      "speedup; <1 means slower than sequential");
  aux_nodes.print(
      "BCC auxiliary-graph size (the paper's o.o.m. column for TV)",
      "node count; TV is O(m), FAST-BCC is O(n)");
  return metrics.write() ? 0 : 1;
}
