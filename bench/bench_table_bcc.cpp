// Reproduces Table A2 (BCC running times: PASGAL's FAST-BCC vs GBBS (BFS
// spanning tree) vs Tarjan-Vishkin vs sequential Hopcroft-Tarjan) plus
// rounds, projected speedups, and the auxiliary-space comparison that makes
// Tarjan-Vishkin "o.o.m." in the paper. Graphs are symmetrized, as in the
// paper ("we symmetrize directed graphs for testing BCC").
#include <cstdio>

#include "algorithms/bcc/bcc.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

int main() {
  Table times({"PASGAL", "GBBS", "Tarjan-Vishkin", "Hopcroft-Tarjan*"});
  Table rounds({"PASGAL", "GBBS", "Tarjan-Vishkin"});
  Table speedup96({"PASGAL", "GBBS", "Tarjan-Vishkin"});
  Table aux_nodes({"PASGAL(skeleton n)", "TV(aux nodes m/2)"});

  for (const auto& spec : graph_suite()) {
    Graph g0 = spec.build();
    Graph g = spec.directed ? g0.symmetrize() : g0;

    RunStats seq_stats, fast_stats, gbbs_stats, tv_stats;
    BccResult ref, r1, r2, r3;
    double t_seq = time_seconds([&] { ref = hopcroft_tarjan_bcc(g, &seq_stats); });
    double t_fast = time_seconds([&] { r1 = fast_bcc(g, &fast_stats); });
    double t_gbbs = time_seconds([&] { r2 = gbbs_bcc(g, &gbbs_stats); });
    double t_tv = time_seconds([&] { r3 = tarjan_vishkin_bcc(g, &tv_stats); });

    auto want = normalize_bcc_labels(ref.edge_label);
    if (normalize_bcc_labels(r1.edge_label) != want ||
        normalize_bcc_labels(r2.edge_label) != want ||
        normalize_bcc_labels(r3.edge_label) != want) {
      std::fprintf(stderr, "BCC MISMATCH on %s\n", spec.name.c_str());
      return 1;
    }

    times.add_row(spec.cls, spec.name, {t_fast, t_gbbs, t_tv, t_seq});
    rounds.add_row(spec.cls, spec.name,
                   {double(fast_stats.rounds()), double(gbbs_stats.rounds()),
                    double(tv_stats.rounds())});
    Projection proj = calibrate(t_seq, seq_stats);
    double seq_ns = t_seq * 1e9;
    speedup96.add_row(spec.cls, spec.name,
                      {proj.speedup_at(96, fast_stats, seq_ns),
                       proj.speedup_at(96, gbbs_stats, seq_ns),
                       proj.speedup_at(96, tv_stats, seq_ns)});
    // Auxiliary structure sizes: FAST-BCC's skeleton has at most n vertices;
    // Tarjan-Vishkin materializes one auxiliary node per undirected edge.
    aux_nodes.add_row(spec.cls, spec.name,
                      {double(g.num_vertices()), double(g.num_edges() / 2)});
    std::fflush(stdout);
  }

  times.print("Table A2: BCC running time (this machine, 1 core)", "seconds");
  rounds.print("BCC global synchronizations (rounds)", "count");
  speedup96.print(
      "BCC projected speedup over sequential Hopcroft-Tarjan at P=96",
      "speedup; <1 means slower than sequential");
  aux_nodes.print(
      "BCC auxiliary-graph size (the paper's o.o.m. column for TV)",
      "node count; TV is O(m), FAST-BCC is O(n)");
  return 0;
}
