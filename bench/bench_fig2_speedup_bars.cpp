// Reproduces Figure 2 ("speedup of parallel algorithms over the standard
// sequential algorithm", log-scale bars, one panel per problem): for BFS,
// SCC and BCC on every suite graph, the projected speedup of each parallel
// implementation over its sequential baseline at P=192 (the paper's
// 192-hyperthread configuration), from the calibrated cost model.
// Bars below 1.0 mean the parallel algorithm loses to sequential — the
// paper's headline observation for the baselines on large-diameter graphs.
#include <cstdio>

#include "algorithms/bcc/bcc.h"
#include "algorithms/scc/scc.h"
#include "suite.h"

using namespace pasgal;
using namespace pasgal::bench;

namespace {

VertexId max_degree_vertex(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

constexpr int kP = 192;

}  // namespace

int main() {
  Table bfs_bars({"PASGAL", "GBBS", "GAPBS"});
  Table scc_bars({"PASGAL", "GBBS", "Multistep"});
  Table bcc_bars({"PASGAL", "GBBS", "Tarjan-Vishkin"});

  for (const auto& spec : graph_suite()) {
    Graph g = spec.build();
    Graph gt = spec.directed ? g.transpose() : Graph();
    const Graph& gt_ref = spec.directed ? gt : g;

    // --- BFS panel.
    {
      VertexId source = max_degree_vertex(g);
      RunStats seq_stats, s1, s2, s3;
      double t_seq = time_seconds([&] { seq_bfs(g, source, &seq_stats); });
      time_seconds([&] { pasgal_bfs(g, gt_ref, source, {}, &s1); });
      time_seconds([&] { gbbs_bfs(g, gt_ref, source, &s2); });
      time_seconds([&] { gapbs_bfs(g, gt_ref, source, {}, &s3); });
      Projection proj = calibrate(t_seq, seq_stats);
      double ns = t_seq * 1e9;
      bfs_bars.add_row(spec.cls, spec.name,
                       {proj.speedup_at(kP, s1, ns), proj.speedup_at(kP, s2, ns),
                        proj.speedup_at(kP, s3, ns)});
    }
    // --- SCC panel (directed only, as in the paper).
    if (spec.directed) {
      RunStats seq_stats, s1, s2, s3;
      double t_seq = time_seconds([&] { tarjan_scc(g, &seq_stats); });
      time_seconds([&] { pasgal_scc(g, gt, {}, &s1); });
      time_seconds([&] { gbbs_scc(g, gt, {}, &s2); });
      time_seconds([&] { multistep_scc(g, gt, {}, &s3); });
      Projection proj = calibrate(t_seq, seq_stats);
      double ns = t_seq * 1e9;
      scc_bars.add_row(spec.cls, spec.name,
                       {proj.speedup_at(kP, s1, ns), proj.speedup_at(kP, s2, ns),
                        proj.speedup_at(kP, s3, ns)});
    }
    // --- BCC panel (symmetrized).
    {
      Graph sym = spec.directed ? g.symmetrize() : g;
      RunStats seq_stats, s1, s2, s3;
      double t_seq = time_seconds([&] { hopcroft_tarjan_bcc(sym, &seq_stats); });
      time_seconds([&] { fast_bcc(sym, &s1); });
      time_seconds([&] { gbbs_bcc(sym, &s2); });
      time_seconds([&] { tarjan_vishkin_bcc(sym, &s3); });
      Projection proj = calibrate(t_seq, seq_stats);
      double ns = t_seq * 1e9;
      bcc_bars.add_row(spec.cls, spec.name,
                       {proj.speedup_at(kP, s1, ns), proj.speedup_at(kP, s2, ns),
                        proj.speedup_at(kP, s3, ns)});
    }
    std::fflush(stdout);
  }

  bfs_bars.print("Figure 2 / BFS: projected speedup over queue BFS at P=192",
                 "speedup (log-scale bars in the paper); <1 = slower than seq");
  scc_bars.print("Figure 2 / SCC: projected speedup over Tarjan at P=192",
                 "speedup; <1 = slower than seq");
  bcc_bars.print(
      "Figure 2 / BCC: projected speedup over Hopcroft-Tarjan at P=192",
      "speedup; <1 = slower than seq");
  return 0;
}
