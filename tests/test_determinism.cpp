// Determinism across schedules: building the same graph and running the
// same algorithm under different worker counts must give identical results.
// (Internal orderings may differ — hash bags are unordered — but all public
// outputs are normalized values, which this suite pins down.)
#include <gtest/gtest.h>

#include "algorithms/bcc/bcc.h"
#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/kcore/kcore.h"
#include "algorithms/scc/scc.h"
#include "algorithms/sssp/sssp.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

template <typename F>
auto with_workers(int workers, F&& f) {
  Scheduler::reset(workers);
  auto result = f();
  Scheduler::reset(1);
  return result;
}

TEST(Determinism, GeneratorsScheduleIndependent) {
  for (int workers : {2, 4}) {
    EXPECT_EQ(with_workers(1, [] { return gen::rmat(12, 30000, 7); }),
              with_workers(workers, [] { return gen::rmat(12, 30000, 7); }));
    EXPECT_EQ(with_workers(1, [] { return gen::knn_graph(3000, 4, 9); }),
              with_workers(workers, [] { return gen::knn_graph(3000, 4, 9); }));
    EXPECT_EQ(
        with_workers(1, [] { return gen::random_graph(2000, 9000, 5); }),
        with_workers(workers, [] { return gen::random_graph(2000, 9000, 5); }));
  }
}

TEST(Determinism, TransposeAndSymmetrizeScheduleIndependent) {
  Graph g = gen::rmat(11, 12000, 3);
  // transpose() memoizes per storage handle, so a second call on the same
  // graph would just return the cached result — build a fresh copy of the
  // graph for each worker count to actually exercise both schedules.
  auto t1 = with_workers(1, [] { return gen::rmat(11, 12000, 3).transpose(); });
  auto t4 = with_workers(4, [] { return gen::rmat(11, 12000, 3).transpose(); });
  EXPECT_EQ(t1, t4);
  auto s1 = with_workers(1, [&] { return g.symmetrize(); });
  auto s4 = with_workers(4, [&] { return g.symmetrize(); });
  EXPECT_EQ(s1, s4);
}

TEST(Determinism, BfsDistancesScheduleIndependent) {
  Graph g = gen::road_grid(25, 40, 0.75, 11);
  Graph gt = g.transpose();
  auto d1 = with_workers(1, [&] { return pasgal_bfs(g, gt, 0); });
  auto d4 = with_workers(4, [&] { return pasgal_bfs(g, gt, 0); });
  EXPECT_EQ(d1, d4);  // distances are unique, so full equality holds
}

TEST(Determinism, SccPartitionScheduleIndependent) {
  Graph g = gen::random_graph(1500, 6000, 13);
  Graph gt = g.transpose();
  auto l1 = with_workers(1, [&] {
    return normalize_scc_labels(pasgal_scc(g, gt));
  });
  auto l4 = with_workers(4, [&] {
    return normalize_scc_labels(pasgal_scc(g, gt));
  });
  EXPECT_EQ(l1, l4);
}

TEST(Determinism, BccPartitionScheduleIndependent) {
  Graph g = gen::random_graph(800, 2500, 17).symmetrize();
  auto l1 = with_workers(1, [&] {
    return normalize_bcc_labels(fast_bcc(g).edge_label);
  });
  auto l4 = with_workers(4, [&] {
    return normalize_bcc_labels(fast_bcc(g).edge_label);
  });
  // The spanning forest itself may differ by schedule (union-find races),
  // but the biconnectivity PARTITION may not.
  EXPECT_EQ(l1, l4);
}

TEST(Determinism, SsspAndKcoreScheduleIndependent) {
  auto g = gen::add_weights(gen::rectangle_grid(20, 40), 50, 19);
  auto d1 = with_workers(1, [&] { return rho_stepping(g, 0); });
  auto d4 = with_workers(4, [&] { return rho_stepping(g, 0); });
  EXPECT_EQ(d1, d4);
  Graph u = gen::rmat(10, 8000, 23).symmetrize();
  auto c1 = with_workers(1, [&] { return pasgal_kcore(u); });
  auto c4 = with_workers(4, [&] { return pasgal_kcore(u); });
  EXPECT_EQ(c1, c4);
}

TEST(Determinism, ConnectivityLabelsScheduleIndependent) {
  Graph g = gen::sampled_edges(gen::rectangle_grid(30, 30), 0.5, 29).symmetrize();
  auto l1 = with_workers(1, [&] { return connected_components(g).label; });
  auto l4 = with_workers(4, [&] { return connected_components(g).label; });
  EXPECT_EQ(l1, l4);  // labels are component minima: schedule-free
}

}  // namespace
}  // namespace pasgal
