// Tests for the direction-optimized edge_map (sparse push vs dense pull).
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "graphs/generators.h"
#include "pasgal/edge_map.h"

namespace pasgal {
namespace {

class EdgeMapTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, EdgeMapTest, ::testing::Values(1, 4));

// One BFS level computed through edge_map must equal the brute-force
// neighbourhood, in both forced-sparse and forced-dense modes.
void check_one_hop(const Graph& g, const Graph& gt,
                   const std::vector<VertexId>& frontier_verts) {
  std::set<VertexId> in_frontier(frontier_verts.begin(), frontier_verts.end());
  std::set<VertexId> expected;
  for (VertexId u : frontier_verts) {
    for (VertexId v : g.neighbors(u)) {
      if (!in_frontier.count(v)) expected.insert(v);
    }
  }
  for (bool force_dense : {false, true}) {
    std::vector<std::atomic<std::uint8_t>> visited(g.num_vertices());
    for (auto& x : visited) x.store(0, std::memory_order_relaxed);
    for (VertexId u : frontier_verts) visited[u].store(1, std::memory_order_relaxed);
    auto update = [&](VertexId, VertexId v) {
      std::uint8_t expected_flag = 0;
      return visited[v].compare_exchange_strong(expected_flag, 1,
                                                std::memory_order_relaxed);
    };
    auto cond = [&](VertexId v) {
      return visited[v].load(std::memory_order_relaxed) == 0;
    };
    EdgeMapOptions opt;
    opt.allow_dense = force_dense;
    opt.dense_threshold_den = force_dense ? 1'000'000'000 : 20;
    if (force_dense) {
      // force dense: threshold 0-ish
      opt.dense_threshold_den = 1;
      opt.allow_dense = true;
    } else {
      opt.allow_dense = false;
    }
    VertexSubset frontier = VertexSubset::sparse(g.num_vertices(), frontier_verts);
    VertexSubset next = edge_map(g, gt, frontier, update, update, cond, opt);
    next.to_sparse();
    std::set<VertexId> got(next.sparse_vertices().begin(),
                           next.sparse_vertices().end());
    EXPECT_EQ(got, expected) << "dense=" << force_dense;
  }
}

TEST_P(EdgeMapTest, OneHopOnGrid) {
  Graph g = gen::rectangle_grid(15, 15);
  check_one_hop(g, g, {0});
  check_one_hop(g, g, {112});
  check_one_hop(g, g, {0, 1, 15, 16});
}

TEST_P(EdgeMapTest, OneHopOnDirectedGraph) {
  Graph g = gen::rmat(10, 6000, 9);
  Graph gt = g.transpose();
  check_one_hop(g, gt, {1, 2, 3});
  check_one_hop(g, gt, {100});
}

TEST_P(EdgeMapTest, EmptyFrontierYieldsEmpty) {
  Graph g = gen::rectangle_grid(5, 5);
  VertexSubset frontier = VertexSubset::empty(g.num_vertices());
  auto next = edge_map(
      g, g, frontier, [](VertexId, VertexId) { return true; },
      [](VertexId) { return true; });
  EXPECT_TRUE(next.empty());
}

TEST_P(EdgeMapTest, CondFiltersTargets) {
  Graph g = gen::star(10);
  VertexSubset frontier = VertexSubset::single(10, 0);
  auto next = edge_map(
      g, g, frontier, [](VertexId, VertexId) { return true; },
      [](VertexId v) { return v % 2 == 0; });
  next.to_sparse();
  for (VertexId v : next.sparse_vertices()) EXPECT_EQ(v % 2, 0u);
  EXPECT_EQ(next.size(), 4u);  // 2,4,6,8
}

TEST_P(EdgeMapTest, AutoSwitchesToDenseOnHugeFrontier) {
  Graph g = gen::rmat(11, 30000, 4);
  Graph gt = g.transpose();
  // Frontier = all vertices: must pick the dense path (outdeg sum = m > m/20).
  auto all = iota<VertexId>(g.num_vertices());
  VertexSubset frontier = VertexSubset::sparse(g.num_vertices(), all);
  RunStats stats;
  auto next = edge_map(
      g, gt, frontier, [](VertexId, VertexId) { return false; },
      [](VertexId) { return true; }, EdgeMapOptions{}, &stats);
  EXPECT_TRUE(next.is_dense());
  EXPECT_EQ(next.size(), 0u);
}

TEST_P(EdgeMapTest, DenseRoundSizeAgreesWithSparseList) {
  // The dense path reports the next frontier's cardinality from a trusted
  // running count instead of an O(n) recount; it must agree exactly with
  // the materialized sparse list.
  Graph g = gen::rmat(10, 12000, 6);
  Graph gt = g.transpose();
  std::vector<std::atomic<std::uint8_t>> visited(g.num_vertices());
  for (auto& x : visited) x.store(0, std::memory_order_relaxed);
  auto update = [&](VertexId, VertexId v) {
    std::uint8_t expected_flag = 0;
    return visited[v].compare_exchange_strong(expected_flag, 1,
                                              std::memory_order_relaxed);
  };
  auto cond = [&](VertexId v) {
    return visited[v].load(std::memory_order_relaxed) == 0;
  };
  auto seed = iota<VertexId>(g.num_vertices() / 4);
  for (VertexId u : seed) visited[u].store(1, std::memory_order_relaxed);
  VertexSubset frontier = VertexSubset::sparse(g.num_vertices(), seed);
  EdgeMapOptions opt;
  opt.dense_threshold_den = 1'000'000'000;  // force the dense path
  VertexSubset next = edge_map(g, gt, frontier, update, update, cond, opt);
  ASSERT_TRUE(next.is_dense());
  std::size_t counted = next.size();
  next.to_sparse();
  EXPECT_EQ(counted, next.sparse_vertices().size());
}

TEST_P(EdgeMapTest, StatsCountEdges) {
  Graph g = gen::rectangle_grid(10, 10);
  RunStats stats;
  VertexSubset frontier = VertexSubset::single(g.num_vertices(), 0);
  EdgeMapOptions opt;
  opt.allow_dense = false;
  edge_map(
      g, g, frontier, [](VertexId, VertexId) { return true; },
      [](VertexId) { return true; }, opt, &stats);
  EXPECT_EQ(stats.edges_scanned(), g.out_degree(0));
  EXPECT_EQ(stats.vertices_visited(), 1u);
}

}  // namespace
}  // namespace pasgal
