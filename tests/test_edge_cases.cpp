// Degenerate and adversarial inputs across the whole library: empty graphs,
// single vertices, self-loop-heavy graphs, parallel (duplicate) edges, and
// maximum-degree hubs. Most algorithm contracts assume deduplicated CSR
// (what Graph::from_edges(dedup=true) / symmetrize produce); these tests pin
// down behaviour at the boundaries of those contracts.
#include <gtest/gtest.h>

#include "algorithms/bcc/bcc.h"
#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/kcore/kcore.h"
#include "algorithms/scc/scc.h"
#include "algorithms/sssp/sssp.h"
#include "algorithms/toposort/toposort.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

class EdgeCases : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, EdgeCases, ::testing::Values(1, 4));

TEST_P(EdgeCases, EmptyGraphEverywhere) {
  Graph g = Graph::from_edges(0, {});
  EXPECT_TRUE(pasgal_scc(g, g).empty());
  EXPECT_TRUE(tarjan_scc(g).empty());
  EXPECT_TRUE(multistep_scc(g, g).empty());
  EXPECT_EQ(connected_components(g).num_components, 0u);
  EXPECT_EQ(fast_bcc(g).num_bccs, 0u);
  EXPECT_TRUE(seq_kcore(g).empty());
  EXPECT_TRUE(pasgal_kcore(g).empty());
  std::vector<std::uint32_t> levels;
  EXPECT_TRUE(pasgal_toposort(g, levels).ok());
  EXPECT_TRUE(levels.empty());
}

TEST_P(EdgeCases, SingleVertexEverywhere) {
  Graph g = Graph::from_edges(1, {});
  EXPECT_EQ(seq_bfs(g, 0)[0], 0u);
  EXPECT_EQ(pasgal_bfs(g, g, 0)[0], 0u);
  EXPECT_EQ(normalize_scc_labels(pasgal_scc(g, g))[0], 0u);
  EXPECT_EQ(pasgal_kcore(g)[0], 0u);
  std::vector<std::uint32_t> topo;
  ASSERT_TRUE(pasgal_toposort(g, topo).ok());
  ASSERT_EQ(topo.size(), 1u);
  EXPECT_EQ(topo[0], 0u);
}

TEST_P(EdgeCases, SelfLoopOnlyGraph) {
  // Every vertex has only a self loop: n singleton SCCs, BFS reaches only
  // the source.
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 20; ++v) edges.push_back({v, v});
  Graph g = Graph::from_edges(20, edges);
  Graph gt = g.transpose();
  auto scc = normalize_scc_labels(pasgal_scc(g, gt));
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(scc[v], v);
  auto d = pasgal_bfs(g, gt, 3);
  for (VertexId v = 0; v < 20; ++v) {
    EXPECT_EQ(d[v], v == 3 ? 0u : kInfDist);
  }
}

TEST_P(EdgeCases, ParallelEdgesBfsAndScc) {
  // Duplicate edges kept (dedup=false): traversal algorithms must tolerate
  // scanning the same neighbour repeatedly.
  std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}, {1, 2}, {1, 2}, {2, 0}};
  Graph g = Graph::from_edges(3, edges);
  Graph gt = g.transpose();
  auto d = pasgal_bfs(g, gt, 0);
  EXPECT_EQ(d, seq_bfs(g, 0));
  EXPECT_EQ(normalize_scc_labels(pasgal_scc(g, gt)),
            normalize_scc_labels(tarjan_scc(g)));
}

TEST_P(EdgeCases, HubGraphAllAlgorithms) {
  // One vertex adjacent to everything (max frontier in one hop).
  Graph g = gen::star(5000);
  EXPECT_EQ(pasgal_bfs(g, g, 0), seq_bfs(g, 0));
  EXPECT_EQ(pasgal_kcore(g), seq_kcore(g));
  auto bcc = fast_bcc(g);
  EXPECT_EQ(bcc.num_bccs, 4999u);  // every spoke its own component
  auto arts = articulation_points(g, bcc);
  ASSERT_EQ(arts.size(), 1u);
  EXPECT_EQ(arts[0], 0u);
}

TEST_P(EdgeCases, TwoVertexCycle) {
  std::vector<Edge> edges = {{0, 1}, {1, 0}};
  Graph g = Graph::from_edges(2, edges);
  Graph gt = g.transpose();
  auto scc = normalize_scc_labels(pasgal_scc(g, gt));
  EXPECT_EQ(scc[0], scc[1]);
  auto d = pasgal_bfs(g, gt, 0);
  EXPECT_EQ(d[1], 1u);
}

TEST_P(EdgeCases, SourceWithNoOutEdges) {
  Graph g = gen::chain(10, /*directed=*/true);
  Graph gt = g.transpose();
  auto d = pasgal_bfs(g, gt, 9);  // last vertex: out-degree 0
  EXPECT_EQ(d[9], 0u);
  for (VertexId v = 0; v < 9; ++v) EXPECT_EQ(d[v], kInfDist);
}

TEST_P(EdgeCases, MaxWeightSssp) {
  // Weights at the top of the u32 range still fit the 32-bit tentative
  // distance on short paths.
  std::vector<WeightedEdge<std::uint32_t>> edges = {
      {0, 1, 2000000000u}, {1, 2, 100000000u}};
  auto g = WeightedGraph<std::uint32_t>::from_edges(3, edges);
  auto d = rho_stepping(g, 0);
  EXPECT_EQ(d[2], 2100000000u);
  EXPECT_EQ(d, dijkstra(g, 0));
}

TEST_P(EdgeCases, DisconnectedManyComponents) {
  // 100 disjoint triangles.
  std::vector<Edge> edges;
  for (VertexId t = 0; t < 100; ++t) {
    VertexId base = 3 * t;
    edges.push_back({base, static_cast<VertexId>(base + 1)});
    edges.push_back({static_cast<VertexId>(base + 1), static_cast<VertexId>(base + 2)});
    edges.push_back({static_cast<VertexId>(base + 2), base});
  }
  Graph g = Graph::from_edges(300, edges);
  Graph gt = g.transpose();
  auto cc = connected_components(g);
  EXPECT_EQ(cc.num_components, 100u);
  auto scc = normalize_scc_labels(pasgal_scc(g, gt));
  EXPECT_EQ(scc, normalize_scc_labels(tarjan_scc(g)));
  Graph sym = g.symmetrize();
  EXPECT_EQ(fast_bcc(sym).num_bccs, 100u);
}

TEST_P(EdgeCases, CompleteGraphEverything) {
  Graph g = gen::complete(40);
  Graph gt = g.transpose();
  auto scc = normalize_scc_labels(pasgal_scc(g, gt));
  for (auto l : scc) EXPECT_EQ(l, 0u);
  Graph sym = g.symmetrize();
  EXPECT_EQ(fast_bcc(sym).num_bccs, 1u);
  auto core = pasgal_kcore(sym);
  for (auto c : core) EXPECT_EQ(c, 39u);
  auto d = pasgal_bfs(g, gt, 17);
  for (VertexId v = 0; v < 40; ++v) EXPECT_EQ(d[v], v == 17 ? 0u : 1u);
}

}  // namespace
}  // namespace pasgal
