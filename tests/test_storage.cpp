// Tests for the GraphStorage layer: heap vs mmap backends, the allocation
// ceiling, content checksums, and transpose memoization — the machinery
// behind graph.h rather than the file formats themselves (test_graph_io
// covers those).
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "algorithms/bfs/bfs.h"
#include "graphs/generators.h"
#include "graphs/graph.h"
#include "graphs/graph_io.h"
#include "graphs/storage.h"
#include "pasgal/error.h"

namespace pasgal {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    auto dir = std::filesystem::temp_directory_path() / "pasgal_storage_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  void TearDown() override {
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "pasgal_storage_test");
  }
};

// --- hash_bytes --------------------------------------------------------------

TEST_F(StorageTest, HashBytesIsDeterministic) {
  const char data[] = "the quick brown fox jumps over the lazy dog";
  EXPECT_EQ(hash_bytes(data, sizeof(data)), hash_bytes(data, sizeof(data)));
  EXPECT_NE(hash_bytes(data, sizeof(data)), 0u);
}

TEST_F(StorageTest, HashBytesSeesEveryByte) {
  // Flipping any single byte must change the digest (for a 64-bit mixing
  // hash a collision here would be astronomically unlikely — and more to the
  // point, would mean a lane is being skipped).
  std::vector<char> data(100);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>(i * 7 + 1);
  }
  std::uint64_t base = hash_bytes(data.data(), data.size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    auto corrupt = data;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    EXPECT_NE(hash_bytes(corrupt.data(), corrupt.size()), base)
        << "byte " << i << " does not affect the digest";
  }
}

TEST_F(StorageTest, HashBytesHandlesTailLengths) {
  // Lengths around the 8-byte lane size exercise the tail path.
  std::vector<std::uint64_t> seen;
  const char data[32] = "0123456789abcdef0123456789abcde";
  for (std::size_t len = 0; len <= 17; ++len) {
    std::uint64_t h = hash_bytes(data, len);
    for (std::uint64_t prev : seen) EXPECT_NE(h, prev);
    seen.push_back(h);
  }
  EXPECT_NE(hash_bytes(data, 8, /*seed=*/1), hash_bytes(data, 8, /*seed=*/2));
}

// --- backends & ceiling ------------------------------------------------------

TEST_F(StorageTest, OwnedBackendExposesArrays) {
  auto s = GraphStorage::owned({0, 2, 3}, {1, 0, 0});
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->backend(), GraphStorage::Backend::kHeap);
  EXPECT_EQ(s->bytes_mapped(), 0u);
  ASSERT_EQ(s->offsets().size(), 3u);
  EXPECT_EQ(s->offsets()[1], 2u);
  ASSERT_EQ(s->targets().size(), 3u);
  EXPECT_TRUE(s->weights().empty());
}

TEST_F(StorageTest, AllocateRejectsAbsurdClaims) {
  EXPECT_THROW(
      GraphStorage::allocate(std::uint64_t{1} << 60, 10, false, "test"),
      Error);
  EXPECT_THROW(
      GraphStorage::allocate(10, std::uint64_t{1} << 60, true, "test"),
      Error);
  EXPECT_FALSE(GraphStorage::check_footprint(std::uint64_t{1} << 60, 0, false,
                                             "test")
                   .ok());
  EXPECT_TRUE(GraphStorage::check_footprint(100, 1000, true, "test").ok());
}

TEST_F(StorageTest, MmapBackedGraphEqualsHeapBacked) {
  Graph g = gen::rmat(10, 8000, 31);
  auto path = temp_path("eq.pgr");
  write_pgr(g, path);
  Graph mapped = read_pgr(path, PgrOpen::kMmap);
  ASSERT_NE(mapped.storage(), nullptr);
  EXPECT_EQ(mapped.storage()->backend(), GraphStorage::Backend::kMmap);
  EXPECT_EQ(mapped.storage()->bytes_mapped(),
            std::filesystem::file_size(path));
  EXPECT_EQ(mapped, g);  // content equality across backends

  Graph copied = read_pgr(path, PgrOpen::kCopy);
  EXPECT_EQ(copied.storage()->backend(), GraphStorage::Backend::kHeap);
  EXPECT_EQ(copied, g);
}

TEST_F(StorageTest, MmapAndHeapGiveIdenticalBfsDistances) {
  Graph g = gen::rmat(10, 9000, 33);
  auto path = temp_path("bfs.pgr");
  PgrWriteOptions opts;
  opts.include_transpose = true;
  write_pgr(g, path, opts);
  Graph mapped = read_pgr(path, PgrOpen::kMmap);
  Graph gt = g.transpose();
  Graph mt = mapped.transpose();
  EXPECT_EQ(pasgal_bfs(mapped, mt, 0), pasgal_bfs(g, gt, 0));
}

TEST_F(StorageTest, GraphCopiesShareStorage) {
  Graph g = gen::rmat(8, 1000, 35);
  Graph copy = g;
  EXPECT_EQ(copy.storage().get(), g.storage().get());
  EXPECT_EQ(copy.targets().data(), g.targets().data());
}

// --- hybrid backend (mmap file + decoded heap targets) -----------------------

TEST_F(StorageTest, CompressedOpenUsesHybridBackend) {
  Graph g = gen::rmat(10, 8000, 41);
  auto path = temp_path("hybrid.pgr");
  PgrWriteOptions opts;
  opts.compress_targets = true;
  write_pgr(g, path, opts);
  Graph mapped = read_pgr(path, PgrOpen::kMmap);
  ASSERT_NE(mapped.storage(), nullptr);
  // Offsets stay zero-copy views into the mapping; decoded targets live on
  // the heap, outside the mapped byte range.
  EXPECT_EQ(mapped.storage()->backend(), GraphStorage::Backend::kMmap);
  EXPECT_EQ(mapped.storage()->bytes_mapped(),
            std::filesystem::file_size(path));
  const char* map_begin = static_cast<const char*>(
      static_cast<const void*>(mapped.offsets().data()));
  const char* tgt = static_cast<const char*>(
      static_cast<const void*>(mapped.targets().data()));
  std::uint64_t span = mapped.storage()->bytes_mapped();
  bool inside = tgt >= map_begin - 192 && tgt < map_begin + span;
  EXPECT_FALSE(inside) << "decoded targets should not alias the mapping";
  EXPECT_EQ(mapped, g);
}

TEST_F(StorageTest, CompressedOpenIsPreValidated) {
  // A successful decode proves the full CSR contract, so algorithms must
  // not pay a second validation pass.
  Graph g = gen::rmat(9, 4000, 43);
  auto path = temp_path("preval.pgr");
  PgrWriteOptions opts;
  opts.compress_targets = true;
  write_pgr(g, path, opts);
  Graph mapped = read_pgr(path, PgrOpen::kMmap);
  ASSERT_NE(mapped.storage(), nullptr);
  EXPECT_TRUE(mapped.storage()->validated());
}

TEST_F(StorageTest, ValidatedFlagPerBackend) {
  // In-process builders are trusted; raw mmap opens are not until a deep
  // pass (or ensure_validated) runs.
  Graph built = gen::rmat(8, 1000, 45);
  ASSERT_NE(built.storage(), nullptr);
  EXPECT_TRUE(built.storage()->validated());

  auto path = temp_path("flag.pgr");
  write_pgr(built, path);
  Graph lazy = read_pgr(path, PgrOpen::kMmap);
  EXPECT_FALSE(lazy.storage()->validated());
  Graph deep = read_pgr(path, PgrOpen::kMmap, /*validate=*/true);
  EXPECT_TRUE(deep.storage()->validated());
  Graph copied = read_pgr(path, PgrOpen::kCopy);
  EXPECT_TRUE(copied.storage()->validated());

  lazy.ensure_validated();
  EXPECT_TRUE(lazy.storage()->validated());
}

// --- transpose memoization ---------------------------------------------------

TEST_F(StorageTest, TransposeIsMemoizedPerStorage) {
  Graph g = gen::rmat(9, 4000, 37);
  Graph t1 = g.transpose();
  Graph t2 = g.transpose();
  ASSERT_NE(t1.storage(), nullptr);
  EXPECT_EQ(t1.storage().get(), t2.storage().get());
  EXPECT_EQ(t1.targets().data(), t2.targets().data());
  // Copies share the handle, hence the cache.
  Graph copy = g;
  EXPECT_EQ(copy.transpose().storage().get(), t1.storage().get());
  // And the cache is correct.
  EXPECT_EQ(t1.transpose(), g);
}

TEST_F(StorageTest, EmbeddedTransposePrePopulatesCache) {
  Graph g = gen::rmat(9, 5000, 39);
  auto path = temp_path("cache.pgr");
  PgrWriteOptions opts;
  opts.include_transpose = true;
  write_pgr(g, path, opts);
  Graph mapped = read_pgr(path, PgrOpen::kMmap);
  Graph t = mapped.transpose();
  // The transpose came from the file's sections, not a rebuild: it is
  // mmap-backed and shares the same mapping byte count.
  ASSERT_NE(t.storage(), nullptr);
  EXPECT_EQ(t.storage()->backend(), GraphStorage::Backend::kMmap);
  EXPECT_EQ(t.storage()->bytes_mapped(), mapped.storage()->bytes_mapped());
  EXPECT_EQ(t, g.transpose());
}

TEST_F(StorageTest, SetTransposeCacheIsFirstWins) {
  auto s = GraphStorage::owned({0, 1}, {0});
  auto a = GraphStorage::owned({0, 1}, {0});
  auto b = GraphStorage::owned({0, 1}, {0});
  EXPECT_EQ(s->transpose_cache(), nullptr);
  EXPECT_EQ(s->set_transpose_cache(a).get(), a.get());
  // Second publish loses; everyone converges on the first result.
  EXPECT_EQ(s->set_transpose_cache(b).get(), a.get());
  EXPECT_EQ(s->transpose_cache().get(), a.get());
}

// --- MappedFile --------------------------------------------------------------

TEST_F(StorageTest, MappedFileReadsWholeFile) {
  auto path = temp_path("raw.bin");
  std::string payload = "mapped file payload: 0123456789";
  std::ofstream(path, std::ios::binary) << payload;
  MappedFile map = MappedFile::open(path);
  ASSERT_TRUE(map.valid());
  ASSERT_EQ(map.size(), payload.size());
  EXPECT_EQ(std::memcmp(map.data(), payload.data(), payload.size()), 0);
}

TEST_F(StorageTest, MappedFileMissingFileThrows) {
  EXPECT_THROW(MappedFile::open(temp_path("nope.bin")), Error);
}

}  // namespace
}  // namespace pasgal
