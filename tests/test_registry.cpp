// Tests for the process-level GraphRegistry: canonical-identity keying,
// one-mapping-per-file sharing, weak ownership (mappings die with their
// last Graph unless pinned), pin/evict lifetime, and the counters the
// serving-mode harness reports. Concurrency cases (two threads racing to
// open the same file) run under the sanitizer preset via the registry_*
// ctest pattern in bench/check.sh.
#include <gtest/gtest.h>

#include <filesystem>
#include <thread>
#include <vector>

#include "graphs/generators.h"
#include "graphs/graph.h"
#include "graphs/graph_io.h"
#include "graphs/registry.h"
#include "pasgal/error.h"

namespace pasgal {
namespace {

class RegistryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Each test starts from an empty table and zeroed counters; the
    // registry is process-global, so leftovers from another test would
    // turn expected misses into hits.
    GraphRegistry::instance().clear();
  }
  void TearDown() override {
    GraphRegistry::instance().clear();
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "pasgal_registry_test");
  }
  std::string temp_path(const std::string& name) {
    auto dir = std::filesystem::temp_directory_path() / "pasgal_registry_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  std::string write_graph(const std::string& name, std::size_t n = 64) {
    std::string path = temp_path(name);
    Graph g = gen::rectangle_grid(n, 4);
    write_pgr(g, path);
    return path;
  }
};

TEST_F(RegistryTest, SecondOpenSharesTheMapping) {
  std::string path = write_graph("shared.pgr");
  Graph g1 = read_pgr(path, PgrOpen::kMmap);
  Graph g2 = read_pgr(path, PgrOpen::kMmap);
  // Pointer identity, not just equal contents: both Graphs must hold the
  // very same GraphStorage, hence the same MappedFile.
  EXPECT_EQ(g1.storage().get(), g2.storage().get());

  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  // bytes_mapped counts the mapping once, not once per open.
  EXPECT_EQ(stats.bytes_mapped, g1.storage()->bytes_mapped());
}

TEST_F(RegistryTest, RelativeAndAbsolutePathsDedupe) {
  std::string path = write_graph("alias.pgr");
  auto dir = std::filesystem::path(path).parent_path();
  std::string relative =
      (std::filesystem::relative(dir, std::filesystem::current_path()) /
       "alias.pgr")
          .string();
  Graph g1 = read_pgr(path, PgrOpen::kMmap);
  Graph g2 = read_pgr(relative, PgrOpen::kMmap);
  EXPECT_EQ(g1.storage().get(), g2.storage().get())
      << "identity is st_dev/st_ino, not the spelling of the path";
}

TEST_F(RegistryTest, SymlinkDedupes) {
  std::string path = write_graph("target.pgr");
  std::string link = temp_path("link.pgr");
  std::error_code ec;
  std::filesystem::create_symlink(path, link, ec);
  if (ec) GTEST_SKIP() << "symlinks unavailable: " << ec.message();
  Graph g1 = read_pgr(path, PgrOpen::kMmap);
  Graph g2 = read_pgr(link, PgrOpen::kMmap);
  EXPECT_EQ(g1.storage().get(), g2.storage().get());
}

TEST_F(RegistryTest, ExpiredEntryReopensAsMiss) {
  std::string path = write_graph("expiring.pgr");
  { Graph g = read_pgr(path, PgrOpen::kMmap); }
  // The registry holds only a weak_ptr: once the last Graph dies the
  // mapping is gone and the next open must map afresh.
  Graph g = read_pgr(path, PgrOpen::kMmap);
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.bytes_mapped, 2 * g.storage()->bytes_mapped());
}

TEST_F(RegistryTest, PinKeepsTheMappingAlive) {
  std::string path = write_graph("pinned.pgr");
  const GraphStorage* raw = nullptr;
  {
    Graph g = read_pgr(path, PgrOpen::kMmap);
    raw = g.storage().get();
    ASSERT_TRUE(GraphRegistry::instance().pin(path));
  }
  // All Graphs are gone, but the pin holds a strong reference: the next
  // open is a hit on the same storage object.
  Graph g = read_pgr(path, PgrOpen::kMmap);
  EXPECT_EQ(g.storage().get(), raw);
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.pinned_entries, 1u);

  ASSERT_TRUE(GraphRegistry::instance().unpin(path));
  EXPECT_EQ(GraphRegistry::instance().stats().pinned_entries, 0u);
}

TEST_F(RegistryTest, PinFailsForUnknownOrExpiredEntries) {
  EXPECT_FALSE(GraphRegistry::instance().pin(temp_path("never-opened.pgr")));
  std::string path = write_graph("gone.pgr");
  { Graph g = read_pgr(path, PgrOpen::kMmap); }
  EXPECT_FALSE(GraphRegistry::instance().pin(path))
      << "pin cannot resurrect an expired weak_ptr";
}

TEST_F(RegistryTest, EvictWhilePinnedDropsTheTableEntry) {
  std::string path = write_graph("evicted.pgr");
  Graph g1 = read_pgr(path, PgrOpen::kMmap);
  ASSERT_TRUE(GraphRegistry::instance().pin(path));
  EXPECT_TRUE(GraphRegistry::instance().evict(path));
  EXPECT_EQ(GraphRegistry::instance().stats().entries, 0u);
  // g1 still works: eviction forgets the entry, it does not unmap the
  // storage out from under live holders.
  EXPECT_GT(g1.num_vertices(), 0u);
  // But a reopen no longer finds it — fresh mapping, distinct pointer.
  Graph g2 = read_pgr(path, PgrOpen::kMmap);
  EXPECT_NE(g1.storage().get(), g2.storage().get());
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(RegistryTest, EvictUnknownPathIsFalse) {
  EXPECT_FALSE(GraphRegistry::instance().evict(temp_path("absent.pgr")));
  EXPECT_EQ(GraphRegistry::instance().stats().evictions, 0u);
}

TEST_F(RegistryTest, EvictExpiredPrunesOnlyDeadEntries) {
  std::string live_path = write_graph("live.pgr");
  std::string dead_path = write_graph("dead.pgr", 32);
  Graph live = read_pgr(live_path, PgrOpen::kMmap);
  { Graph dead = read_pgr(dead_path, PgrOpen::kMmap); }
  EXPECT_EQ(GraphRegistry::instance().stats().entries, 2u);
  EXPECT_EQ(GraphRegistry::instance().evict_expired(), 1u);
  EXPECT_EQ(GraphRegistry::instance().stats().entries, 1u);
  // The surviving entry is still a hit.
  Graph again = read_pgr(live_path, PgrOpen::kMmap);
  EXPECT_EQ(again.storage().get(), live.storage().get());
}

TEST_F(RegistryTest, RewrittenFileGetsAFreshMapping) {
  std::string path = write_graph("rewritten.pgr");
  Graph g1 = read_pgr(path, PgrOpen::kMmap);
  std::size_t n1 = g1.num_vertices();
  // Rewrite the same path with a different graph (different size, so the
  // identity key — which includes st_size and mtime — must change even on
  // filesystems with coarse timestamps).
  write_pgr(gen::chain(200), path);
  Graph g2 = read_pgr(path, PgrOpen::kMmap);
  EXPECT_NE(g1.storage().get(), g2.storage().get());
  EXPECT_EQ(g1.num_vertices(), n1) << "old holder keeps its old mapping";
  EXPECT_EQ(g2.num_vertices(), 200u);
  EXPECT_EQ(GraphRegistry::instance().stats().hits, 0u);
}

TEST_F(RegistryTest, CopyModeBypassesTheRegistry) {
  std::string path = write_graph("copied.pgr");
  Graph g1 = read_pgr(path, PgrOpen::kCopy);
  Graph g2 = read_pgr(path, PgrOpen::kCopy);
  EXPECT_NE(g1.storage().get(), g2.storage().get())
      << "kCopy promises a private heap graph decoupled from the file";
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
}

TEST_F(RegistryTest, SharedMappingSharesTheTransposeCache) {
  std::string path = write_graph("transposed.pgr");
  Graph g1 = read_pgr(path, PgrOpen::kMmap);
  Graph g2 = read_pgr(path, PgrOpen::kMmap);
  // Transpose memoization lives on the storage handle, so sharing the
  // storage shares the memo: build it through one Graph, observe it
  // through the other.
  Graph t1 = g1.transpose();
  Graph t2 = g2.transpose();
  EXPECT_EQ(t1.storage().get(), t2.storage().get());
}

TEST_F(RegistryTest, DistinctFilesGetDistinctEntries) {
  std::string a = write_graph("a.pgr", 48);
  std::string b = write_graph("b.pgr", 80);
  Graph ga = read_pgr(a, PgrOpen::kMmap);
  Graph gb = read_pgr(b, PgrOpen::kMmap);
  EXPECT_NE(ga.storage().get(), gb.storage().get());
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes_mapped,
            ga.storage()->bytes_mapped() + gb.storage()->bytes_mapped());
}

TEST_F(RegistryTest, WeightedOpensShareWithUnweightedOpens) {
  // A weighted .pgr opened via read_pgr (topology only) and via
  // read_weighted_pgr must still share one mapping: both routes go through
  // open_pgr and the registry keys on the file, not the reader.
  std::string path = temp_path("weighted.pgr");
  WeightedGraph<std::uint32_t> wg = gen::add_weights(gen::rectangle_grid(32, 4), 10);
  write_pgr(wg, path);
  Graph g = read_pgr(path, PgrOpen::kMmap);
  WeightedGraph<std::uint32_t> w = read_weighted_pgr(path, PgrOpen::kMmap);
  EXPECT_EQ(g.storage().get(), w.unweighted().storage().get());
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
}

TEST_F(RegistryTest, ConcurrentOpensProduceOneMapping) {
  std::string path = write_graph("raced.pgr", 128);
  constexpr int kThreads = 8;
  std::vector<Graph> graphs(kThreads);
  {
    // All threads race read_pgr on the same cold path. Exactly one may
    // run the opener; the rest must block on the entry lock and share.
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int i = 0; i < kThreads; ++i) {
      threads.emplace_back(
          [&, i]() { graphs[i] = read_pgr(path, PgrOpen::kMmap); });
    }
    for (auto& t : threads) t.join();
  }
  for (int i = 1; i < kThreads; ++i) {
    EXPECT_EQ(graphs[i].storage().get(), graphs[0].storage().get());
  }
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads - 1));
  EXPECT_EQ(stats.bytes_mapped, graphs[0].storage()->bytes_mapped())
      << "a racing open must not double-count the mapping";
}

TEST_F(RegistryTest, ValidatedHitStillChecksContents) {
  // validate=true on a hit re-runs checksums + CSR validation against the
  // cached mapping — a hit must not silently skip the deep checks the
  // caller asked for.
  std::string path = write_graph("validated.pgr");
  Graph g1 = read_pgr(path, PgrOpen::kMmap, /*validate=*/true);
  Graph g2 = read_pgr(path, PgrOpen::kMmap, /*validate=*/true);
  EXPECT_EQ(g1.storage().get(), g2.storage().get());
  EXPECT_EQ(GraphRegistry::instance().stats().hits, 1u);
}

TEST_F(RegistryTest, RetainKeepsAliveButEvictable) {
  std::string path = write_graph("retained.pgr");
  const GraphStorage* raw = nullptr;
  std::uint64_t bytes = 0;
  {
    Graph g = read_pgr(path, PgrOpen::kMmap);
    raw = g.storage().get();
    bytes = g.storage()->bytes_mapped();
    ASSERT_TRUE(GraphRegistry::instance().retain(path));
  }
  // Like pin: the mapping survives the last Graph, the next open is a hit.
  {
    Graph g = read_pgr(path, PgrOpen::kMmap);
    EXPECT_EQ(g.storage().get(), raw);
  }
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.retained_entries, 1u);
  EXPECT_EQ(stats.pinned_entries, 0u);
  EXPECT_EQ(stats.resident_bytes, bytes);
  EXPECT_NE(stats.lru_last_use_ns, 0u);

  // Unlike pin: memory pressure may take it.
  EXPECT_EQ(GraphRegistry::instance().evict_lru(1), bytes);
  stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.retained_entries, 0u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.resident_bytes, 0u);
  Graph again = read_pgr(path, PgrOpen::kMmap);
  EXPECT_EQ(GraphRegistry::instance().stats().misses, 2u)
      << "after LRU eviction the reopen maps afresh";
}

TEST_F(RegistryTest, EvictLruNeverTouchesPinnedEntries) {
  std::string pinned = write_graph("lru_pinned.pgr", 96);
  std::string retained = write_graph("lru_retained.pgr", 96);
  std::uint64_t retained_bytes = 0;
  {
    Graph a = read_pgr(pinned, PgrOpen::kMmap);
    Graph b = read_pgr(retained, PgrOpen::kMmap);
    retained_bytes = b.storage()->bytes_mapped();
    ASSERT_TRUE(GraphRegistry::instance().pin(pinned));
    ASSERT_TRUE(GraphRegistry::instance().retain(retained));
  }
  // Ask for far more than exists: only the retained entry may go.
  EXPECT_EQ(GraphRegistry::instance().evict_lru(std::uint64_t(1) << 40),
            retained_bytes);
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.pinned_entries, 1u);
  EXPECT_EQ(stats.retained_entries, 0u);
  // The pinned mapping is still warm.
  Graph g = read_pgr(pinned, PgrOpen::kMmap);
  EXPECT_EQ(GraphRegistry::instance().stats().hits, 1u);
}

TEST_F(RegistryTest, EvictLruDropsOldestFirstAndStopsAtTheTarget) {
  std::string older = write_graph("lru_old.pgr", 96);
  std::string newer = write_graph("lru_new.pgr", 96);
  {
    Graph a = read_pgr(older, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(older));
    Graph b = read_pgr(newer, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(newer));
  }
  // One byte needed: one eviction suffices, and it must be the older entry.
  EXPECT_GT(GraphRegistry::instance().evict_lru(1), 0u);
  std::vector<GraphRegistry::EntryInfo> entries =
      GraphRegistry::instance().entry_stats();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, newer);
  EXPECT_TRUE(entries[0].retained);
  EXPECT_TRUE(entries[0].live);
}

TEST_F(RegistryTest, EvictLruBreaksTimestampTiesByInsertionOrder) {
  // Two graphs registered within one steady_clock tick have equal
  // last_use_ns; the comparator used to sort on the timestamp alone, so
  // which one got evicted depended on std::sort's whim over equal keys.
  // The insertion sequence number makes the victim deterministic: oldest
  // registration first.
  std::string first = write_graph("tie_a.pgr", 96);
  std::string second = write_graph("tie_b.pgr", 96);
  {
    Graph a = read_pgr(first, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(first));
    Graph b = read_pgr(second, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(second));
  }
  // Force the exact tie the wall clock only sometimes produces.
  ASSERT_TRUE(GraphRegistry::instance().set_last_use_for_testing(first, 777));
  ASSERT_TRUE(GraphRegistry::instance().set_last_use_for_testing(second, 777));
  EXPECT_GT(GraphRegistry::instance().evict_lru(1), 0u);
  std::vector<GraphRegistry::EntryInfo> entries =
      GraphRegistry::instance().entry_stats();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, second)
      << "equal timestamps must evict the earlier registration";

  // And the tie-break only applies on equal timestamps: make the later
  // registration older and it becomes the victim.
  GraphRegistry::instance().clear();
  {
    Graph a = read_pgr(first, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(first));
    Graph b = read_pgr(second, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(second));
  }
  ASSERT_TRUE(GraphRegistry::instance().set_last_use_for_testing(first, 900));
  ASSERT_TRUE(GraphRegistry::instance().set_last_use_for_testing(second, 100));
  EXPECT_GT(GraphRegistry::instance().evict_lru(1), 0u);
  entries = GraphRegistry::instance().entry_stats();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, first);
}

TEST_F(RegistryTest, ReopenRefreshesLruOrder) {
  std::string first = write_graph("lru_ref_a.pgr", 96);
  std::string second = write_graph("lru_ref_b.pgr", 96);
  {
    Graph a = read_pgr(first, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(first));
    Graph b = read_pgr(second, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(second));
    // Touch the first again: a registry hit updates last-use, so the
    // SECOND entry is now the LRU victim.
    Graph a2 = read_pgr(first, PgrOpen::kMmap);
  }
  EXPECT_GT(GraphRegistry::instance().evict_lru(1), 0u);
  std::vector<GraphRegistry::EntryInfo> entries =
      GraphRegistry::instance().entry_stats();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].path, first);
}

TEST_F(RegistryTest, UnpinDropsARetainToo) {
  std::string path = write_graph("retain_unpin.pgr");
  {
    Graph g = read_pgr(path, PgrOpen::kMmap);
    ASSERT_TRUE(GraphRegistry::instance().retain(path));
  }
  ASSERT_TRUE(GraphRegistry::instance().unpin(path));
  // Strong reference gone, no Graphs left: the storage expired.
  EXPECT_FALSE(GraphRegistry::instance().retain(path));
  EXPECT_EQ(GraphRegistry::instance().stats().retained_entries, 0u);
}

TEST_F(RegistryTest, MissPathSweepsTombstonesAutomatically) {
  std::string dead = write_graph("sweep_dead.pgr", 48);
  std::string live = write_graph("sweep_live.pgr", 48);
  { Graph g = read_pgr(dead, PgrOpen::kMmap); }
  EXPECT_EQ(GraphRegistry::instance().stats().entries, 1u);
  // No explicit evict_expired(): the next cold open sweeps the tombstone.
  Graph g = read_pgr(live, PgrOpen::kMmap);
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.misses, 2u);
}

TEST_F(RegistryTest, StatsSeparatePinnedAndResidentBytes) {
  std::string a = write_graph("bytes_a.pgr", 64);
  std::string b = write_graph("bytes_b.pgr", 64);
  Graph ga = read_pgr(a, PgrOpen::kMmap);
  Graph gb = read_pgr(b, PgrOpen::kMmap);
  ASSERT_TRUE(GraphRegistry::instance().pin(a));
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.pinned_entries, 1u);
  EXPECT_EQ(stats.pinned_bytes, ga.storage()->bytes_mapped());
  EXPECT_EQ(stats.resident_bytes,
            ga.storage()->bytes_mapped() + gb.storage()->bytes_mapped())
      << "resident counts every live mapping, pinned or not";
  EXPECT_EQ(stats.lru_last_use_ns, 0u)
      << "a weak (unretained) live entry is not an LRU candidate";
}

TEST_F(RegistryTest, ClearResetsCountersAndTable) {
  std::string path = write_graph("cleared.pgr");
  Graph g = read_pgr(path, PgrOpen::kMmap);
  GraphRegistry::instance().clear();
  GraphRegistry::Stats stats = GraphRegistry::instance().stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes_mapped, 0u);
  // The cleared entry is forgotten, not unmapped.
  EXPECT_GT(g.num_edges(), 0u);
}

}  // namespace
}  // namespace pasgal
