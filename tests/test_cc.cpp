// Tests for connected components (union-find and label propagation).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "algorithms/cc/cc.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

// Reference: sequential flood fill.
std::vector<VertexId> reference_cc(const Graph& g) {
  std::size_t n = g.num_vertices();
  std::vector<VertexId> label(n, kInvalidVertex);
  for (VertexId s = 0; s < n; ++s) {
    if (label[s] != kInvalidVertex) continue;
    std::vector<VertexId> stack = {s};
    label[s] = s;
    while (!stack.empty()) {
      VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : g.neighbors(u)) {
        if (label[v] == kInvalidVertex) {
          label[v] = s;
          stack.push_back(v);
        }
      }
    }
  }
  return label;
}

class CcTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, CcTest, ::testing::Values(1, 4));

std::vector<std::pair<std::string, Graph>> cc_graphs() {
  std::vector<std::pair<std::string, Graph>> cases;
  cases.emplace_back("empty", Graph::from_edges(0, {}));
  cases.emplace_back("isolated", Graph::from_edges(7, {}));
  cases.emplace_back("chain", gen::chain(500));
  cases.emplace_back("grid", gen::rectangle_grid(20, 30));
  cases.emplace_back("tree", gen::binary_tree(1000));
  cases.emplace_back("star", gen::star(300));
  cases.emplace_back("bubbles", gen::bubbles(15, 8));
  cases.emplace_back("sampled_grid",
                     gen::sampled_edges(gen::rectangle_grid(30, 30), 0.45, 3)
                         .symmetrize());
  cases.emplace_back("rmat_sym", gen::rmat(11, 15000, 5).symmetrize());
  cases.emplace_back("two_cliques", [] {
    std::vector<Edge> edges;
    for (VertexId i = 0; i < 10; ++i) {
      for (VertexId j = 0; j < 10; ++j) {
        if (i != j) {
          edges.push_back({i, j});
          edges.push_back({i + 10, j + 10});
        }
      }
    }
    return Graph::from_edges(20, edges);
  }());
  return cases;
}

TEST_P(CcTest, UnionFindMatchesReference) {
  for (const auto& [name, g] : cc_graphs()) {
    auto expected = reference_cc(g);
    auto result = connected_components(g);
    EXPECT_EQ(result.label, expected) << name;  // both use min-vertex labels
  }
}

TEST_P(CcTest, LabelPropMatchesReference) {
  for (const auto& [name, g] : cc_graphs()) {
    EXPECT_EQ(label_prop_cc(g), reference_cc(g)) << name;
  }
}

TEST_P(CcTest, ComponentCount) {
  auto r = connected_components(gen::chain(100));
  EXPECT_EQ(r.num_components, 1u);
  auto r2 = connected_components(Graph::from_edges(5, {}));
  EXPECT_EQ(r2.num_components, 5u);
  auto grid = gen::sampled_edges(gen::rectangle_grid(25, 25), 0.4, 9).symmetrize();
  auto r3 = connected_components(grid);
  auto ref = reference_cc(grid);
  std::set<VertexId> roots(ref.begin(), ref.end());
  EXPECT_EQ(r3.num_components, roots.size());
}

TEST_P(CcTest, SpanningForestSizeAndAcyclicity) {
  for (const auto& [name, g] : cc_graphs()) {
    auto r = connected_components(g);
    std::size_t n = g.num_vertices();
    ASSERT_EQ(r.forest.size(), n - r.num_components) << name;
    // A forest with n - c edges and no cycles: union-find over forest edges
    // must never find both endpoints already connected.
    std::vector<VertexId> parent(n);
    for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<VertexId>(i);
    std::function<VertexId(VertexId)> find = [&](VertexId v) {
      while (parent[v] != v) {
        parent[v] = parent[parent[v]];
        v = parent[v];
      }
      return v;
    };
    for (const Edge& e : r.forest) {
      VertexId a = find(e.from), b = find(e.to);
      EXPECT_NE(a, b) << name << ": forest has a cycle";
      parent[a] = b;
    }
    // Forest connects exactly the components of g.
    for (const Edge& e : r.forest) {
      EXPECT_EQ(r.label[e.from], r.label[e.to]) << name;
    }
  }
}

TEST_P(CcTest, ForestSpansComponents) {
  Graph g = gen::rectangle_grid(15, 15);
  auto r = connected_components(g);
  // Flood fill over forest edges alone must reach everything.
  std::vector<std::vector<VertexId>> adj(g.num_vertices());
  for (const Edge& e : r.forest) {
    adj[e.from].push_back(e.to);
    adj[e.to].push_back(e.from);
  }
  std::vector<std::uint8_t> seen(g.num_vertices(), 0);
  std::vector<VertexId> stack = {0};
  seen[0] = 1;
  std::size_t count = 1;
  while (!stack.empty()) {
    VertexId u = stack.back();
    stack.pop_back();
    for (VertexId v : adj[u]) {
      if (!seen[v]) {
        seen[v] = 1;
        ++count;
        stack.push_back(v);
      }
    }
  }
  EXPECT_EQ(count, g.num_vertices());
}

TEST_P(CcTest, DirectedEdgesTreatedAsUndirected) {
  // connected_components must treat one-directional edges as connections.
  Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 1}, {3, 2}});
  auto r = connected_components(g);
  EXPECT_EQ(r.num_components, 1u);
  for (VertexId v = 0; v < 4; ++v) EXPECT_EQ(r.label[v], 0u);
}

TEST(CcRounds, LabelPropNeedsDiameterRounds) {
  Scheduler::reset(1);
  Graph g = gen::chain(2000);
  RunStats uf_stats, lp_stats;
  connected_components(g, &uf_stats);
  label_prop_cc(g, &lp_stats);
  EXPECT_LE(uf_stats.rounds(), 2u);
  EXPECT_GT(lp_stats.rounds(), 5u);  // min labels crawl along the chain
}

}  // namespace
}  // namespace pasgal
