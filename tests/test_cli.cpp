// CLI plumbing: checked integer parsing, spec splitting, and the typed
// OptionSet declarations shared by all drivers.
#include <gtest/gtest.h>

#include <cstdio>

#include "pasgal/cli.h"

namespace pasgal::cli {
namespace {

// Builds a mutable argv from string literals (parse takes char**).
struct Argv {
  explicit Argv(std::vector<std::string> args) : store(std::move(args)) {
    for (auto& s : store) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> store;
  std::vector<char*> ptrs;
};

TEST(ParseInt, AcceptsFullStringsOnly) {
  EXPECT_EQ(parse_int("42", "x", 0, 100, ErrorCategory::kUsage), 42);
  EXPECT_EQ(parse_int("-7", "x", -10, 10, ErrorCategory::kUsage), -7);
  EXPECT_THROW(parse_int("", "x", 0, 100, ErrorCategory::kUsage), Error);
  EXPECT_THROW(parse_int("abc", "x", 0, 100, ErrorCategory::kUsage), Error);
  EXPECT_THROW(parse_int("12abc", "x", 0, 100, ErrorCategory::kUsage), Error);
  EXPECT_THROW(parse_int("101", "x", 0, 100, ErrorCategory::kUsage), Error);
}

TEST(SplitSpec, KindAndFields) {
  Spec s = split_spec("grid:30:40");
  EXPECT_EQ(s.kind, "grid");
  ASSERT_EQ(s.fields.size(), 2u);
  EXPECT_EQ(s.required(1, "rows", 1, 1 << 20), 30);
  EXPECT_EQ(s.optional(3, "seed", 0, 100, 5), 5);
  EXPECT_NO_THROW(s.expect_at_most(2));
  EXPECT_THROW(s.expect_at_most(1), Error);
}

TEST(OptionSet, ParsesTypedFlags) {
  long long source = 0;
  bool validate = false;
  std::string algo = "pasgal";
  std::string path;
  OptionSet opts;
  opts.integer("-s", &source, 0, 1000, "source")
      .flag("--validate", &validate)
      .choice("-a", &algo, {"pasgal", "gbbs", "seq"})
      .text("--json-metrics", &path, "path");

  Argv args({"prog", "graph.adj", "-s", "17", "--validate", "-a", "gbbs",
             "--json-metrics", "/tmp/m.json"});
  opts.parse(args.argc(), args.argv(), 2);
  EXPECT_EQ(source, 17);
  EXPECT_TRUE(validate);
  EXPECT_EQ(algo, "gbbs");
  EXPECT_EQ(path, "/tmp/m.json");
}

TEST(OptionSet, RejectsBadInput) {
  long long v = 0;
  std::string algo = "a";
  OptionSet opts;
  opts.integer("-n", &v, 1, 10, "n").choice("-a", &algo, {"a", "b"});

  Argv unknown({"prog", "-z", "5"});
  EXPECT_THROW(opts.parse(unknown.argc(), unknown.argv(), 1), Error);
  Argv missing({"prog", "-n"});
  EXPECT_THROW(opts.parse(missing.argc(), missing.argv(), 1), Error);
  Argv range({"prog", "-n", "11"});
  EXPECT_THROW(opts.parse(range.argc(), range.argv(), 1), Error);
  Argv choice({"prog", "-a", "nope"});
  EXPECT_THROW(opts.parse(choice.argc(), choice.argv(), 1), Error);
}

TEST(OptionSet, UsageListsEveryFlag) {
  long long v = 0;
  bool b = false;
  std::string algo = "a";
  OptionSet opts;
  opts.integer("-n", &v, 1, 10, "n")
      .flag("--check", &b)
      .choice("-a", &algo, {"a", "b"});
  std::string u = opts.usage();
  EXPECT_NE(u.find("[-n <n>]"), std::string::npos);
  EXPECT_NE(u.find("[--check]"), std::string::npos);
  EXPECT_NE(u.find("a|b"), std::string::npos);
}

ErrorCategory category_of(const std::function<void()>& f) {
  try {
    f();
  } catch (const Error& e) {
    return e.category();
  }
  ADD_FAILURE() << "no Error thrown";
  return ErrorCategory::kIo;  // unreachable on a passing test
}

TEST(ParseSources, AcceptsInlineLists) {
  EXPECT_EQ(parse_sources("7"), (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(parse_sources("0,5,9,100"), (std::vector<std::uint32_t>{0, 5, 9, 100}));
  // Order is the batch's bit order: preserved, not sorted.
  EXPECT_EQ(parse_sources("9,5"), (std::vector<std::uint32_t>{9, 5}));
  // Largest addressable vertex (kInvalidVertex itself is reserved).
  EXPECT_EQ(parse_sources("4294967294"),
            (std::vector<std::uint32_t>{4294967294u}));
}

TEST(ParseSources, InlineUsageErrors) {
  auto usage = [](const std::string& text) {
    return category_of([&] { parse_sources(text); });
  };
  EXPECT_EQ(usage(""), ErrorCategory::kUsage);
  EXPECT_EQ(usage("1,,2"), ErrorCategory::kUsage);      // empty entry
  EXPECT_EQ(usage("1,2,1"), ErrorCategory::kUsage);     // duplicate
  EXPECT_EQ(usage("1,two"), ErrorCategory::kUsage);     // malformed
  EXPECT_EQ(usage("-1"), ErrorCategory::kUsage);        // negative
  EXPECT_EQ(usage("4294967295"), ErrorCategory::kUsage);  // reserved sentinel
  std::string too_many = "0";
  for (int i = 1; i <= 64; ++i) too_many += "," + std::to_string(i);
  EXPECT_EQ(usage(too_many), ErrorCategory::kUsage);  // 65 entries
}

TEST(ParseSources, FileListsAndFileErrors) {
  std::string path = ::testing::TempDir() + "/sources.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  // File input tolerates whitespace separators and blank runs.
  std::fputs("3 1\n\n2,8\n", f);
  std::fclose(f);
  EXPECT_EQ(parse_sources("@" + path), (std::vector<std::uint32_t>{3, 1, 2, 8}));

  EXPECT_EQ(category_of([&] { parse_sources("@/nonexistent/sources.txt"); }),
            ErrorCategory::kIo);
  // The server passes allow_file=false: a remote peer must not name paths.
  EXPECT_EQ(category_of([&] { parse_sources("@" + path, false); }),
            ErrorCategory::kUsage);
}

TEST(CommonOptions, DeclaresSharedFlags) {
  CommonOptions common;
  OptionSet opts;
  common.declare(opts);
  Argv args({"prog", "g.adj", "-r", "5", "--validate", "--json-metrics",
             "out.json"});
  opts.parse(args.argc(), args.argv(), 2);
  EXPECT_EQ(common.repeats, 5);
  EXPECT_TRUE(common.validate);
  EXPECT_EQ(common.json_metrics, "out.json");
}

}  // namespace
}  // namespace pasgal::cli
