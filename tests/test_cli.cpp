// CLI plumbing: checked integer parsing, spec splitting, and the typed
// OptionSet declarations shared by all drivers.
#include <gtest/gtest.h>

#include "pasgal/cli.h"

namespace pasgal::cli {
namespace {

// Builds a mutable argv from string literals (parse takes char**).
struct Argv {
  explicit Argv(std::vector<std::string> args) : store(std::move(args)) {
    for (auto& s : store) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char** argv() { return ptrs.data(); }
  std::vector<std::string> store;
  std::vector<char*> ptrs;
};

TEST(ParseInt, AcceptsFullStringsOnly) {
  EXPECT_EQ(parse_int("42", "x", 0, 100, ErrorCategory::kUsage), 42);
  EXPECT_EQ(parse_int("-7", "x", -10, 10, ErrorCategory::kUsage), -7);
  EXPECT_THROW(parse_int("", "x", 0, 100, ErrorCategory::kUsage), Error);
  EXPECT_THROW(parse_int("abc", "x", 0, 100, ErrorCategory::kUsage), Error);
  EXPECT_THROW(parse_int("12abc", "x", 0, 100, ErrorCategory::kUsage), Error);
  EXPECT_THROW(parse_int("101", "x", 0, 100, ErrorCategory::kUsage), Error);
}

TEST(SplitSpec, KindAndFields) {
  Spec s = split_spec("grid:30:40");
  EXPECT_EQ(s.kind, "grid");
  ASSERT_EQ(s.fields.size(), 2u);
  EXPECT_EQ(s.required(1, "rows", 1, 1 << 20), 30);
  EXPECT_EQ(s.optional(3, "seed", 0, 100, 5), 5);
  EXPECT_NO_THROW(s.expect_at_most(2));
  EXPECT_THROW(s.expect_at_most(1), Error);
}

TEST(OptionSet, ParsesTypedFlags) {
  long long source = 0;
  bool validate = false;
  std::string algo = "pasgal";
  std::string path;
  OptionSet opts;
  opts.integer("-s", &source, 0, 1000, "source")
      .flag("--validate", &validate)
      .choice("-a", &algo, {"pasgal", "gbbs", "seq"})
      .text("--json-metrics", &path, "path");

  Argv args({"prog", "graph.adj", "-s", "17", "--validate", "-a", "gbbs",
             "--json-metrics", "/tmp/m.json"});
  opts.parse(args.argc(), args.argv(), 2);
  EXPECT_EQ(source, 17);
  EXPECT_TRUE(validate);
  EXPECT_EQ(algo, "gbbs");
  EXPECT_EQ(path, "/tmp/m.json");
}

TEST(OptionSet, RejectsBadInput) {
  long long v = 0;
  std::string algo = "a";
  OptionSet opts;
  opts.integer("-n", &v, 1, 10, "n").choice("-a", &algo, {"a", "b"});

  Argv unknown({"prog", "-z", "5"});
  EXPECT_THROW(opts.parse(unknown.argc(), unknown.argv(), 1), Error);
  Argv missing({"prog", "-n"});
  EXPECT_THROW(opts.parse(missing.argc(), missing.argv(), 1), Error);
  Argv range({"prog", "-n", "11"});
  EXPECT_THROW(opts.parse(range.argc(), range.argv(), 1), Error);
  Argv choice({"prog", "-a", "nope"});
  EXPECT_THROW(opts.parse(choice.argc(), choice.argv(), 1), Error);
}

TEST(OptionSet, UsageListsEveryFlag) {
  long long v = 0;
  bool b = false;
  std::string algo = "a";
  OptionSet opts;
  opts.integer("-n", &v, 1, 10, "n")
      .flag("--check", &b)
      .choice("-a", &algo, {"a", "b"});
  std::string u = opts.usage();
  EXPECT_NE(u.find("[-n <n>]"), std::string::npos);
  EXPECT_NE(u.find("[--check]"), std::string::npos);
  EXPECT_NE(u.find("a|b"), std::string::npos);
}

TEST(CommonOptions, DeclaresSharedFlags) {
  CommonOptions common;
  OptionSet opts;
  common.declare(opts);
  Argv args({"prog", "g.adj", "-r", "5", "--validate", "--json-metrics",
             "out.json"});
  opts.parse(args.argc(), args.argv(), 2);
  EXPECT_EQ(common.repeats, 5);
  EXPECT_TRUE(common.validate);
  EXPECT_EQ(common.json_metrics, "out.json");
}

}  // namespace
}  // namespace pasgal::cli
