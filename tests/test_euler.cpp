// Tests for parallel list ranking and the Euler-tour forest rooting.
#include <gtest/gtest.h>

#include "algorithms/cc/cc.h"
#include "algorithms/tree/euler.h"
#include "algorithms/tree/range_query.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

class EulerTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, EulerTest, ::testing::Values(1, 4));

TEST_P(EulerTest, ListRankSingleList) {
  // 0 -> 1 -> 2 -> ... -> 9 -> end
  std::vector<std::uint64_t> succ(10);
  for (std::size_t i = 0; i + 1 < 10; ++i) succ[i] = i + 1;
  succ[9] = kListEnd;
  auto rank = list_rank(succ);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(rank[i], 10 - i);
}

TEST_P(EulerTest, ListRankManyLists) {
  // 100 lists of varying length, interleaved ids.
  const std::size_t k = 5050;
  std::vector<std::uint64_t> succ(k, kListEnd);
  std::size_t pos = 0;
  std::vector<std::pair<std::size_t, std::size_t>> heads;  // (head, length)
  for (std::size_t len = 1; len <= 100; ++len) {
    heads.push_back({pos, len});
    for (std::size_t j = 0; j + 1 < len; ++j) succ[pos + j] = pos + j + 1;
    pos += len;
  }
  auto rank = list_rank(succ);
  for (auto [head, len] : heads) {
    for (std::size_t j = 0; j < len; ++j) {
      EXPECT_EQ(rank[head + j], len - j);
    }
  }
}

TEST_P(EulerTest, ListRankLongChain) {
  const std::size_t k = 100000;
  std::vector<std::uint64_t> succ(k);
  for (std::size_t i = 0; i + 1 < k; ++i) succ[i] = i + 1;
  succ[k - 1] = kListEnd;
  auto rank = list_rank(succ);
  EXPECT_EQ(rank[0], k);
  EXPECT_EQ(rank[k - 1], 1u);
  EXPECT_EQ(rank[k / 2], k - k / 2);
}

// Reference ancestor check by walking parent pointers.
bool ancestor_by_walk(const EulerForest& f, VertexId anc, VertexId v) {
  for (;;) {
    if (v == anc) return true;
    if (f.parent[v] == v) return false;
    v = f.parent[v];
  }
}

void check_forest(const Graph& g) {
  auto cc = connected_components(g);
  EulerForest f = euler_tour_forest(g.num_vertices(), cc.forest, cc.label);
  std::size_t n = g.num_vertices();

  // Roots are the component representatives; parents follow forest edges.
  for (VertexId v = 0; v < n; ++v) {
    if (cc.label[v] == v) {
      EXPECT_EQ(f.parent[v], v);
    } else {
      EXPECT_NE(f.parent[v], v);
      EXPECT_EQ(cc.label[f.parent[v]], cc.label[v]);
    }
    EXPECT_LT(f.first[v], f.last[v]);
  }
  // Every forest edge is a parent-child pair.
  for (const Edge& e : cc.forest) {
    EXPECT_TRUE(f.parent[e.from] == e.to || f.parent[e.to] == e.from);
  }
  // Intervals nest along parent pointers.
  for (VertexId v = 0; v < n; ++v) {
    VertexId p = f.parent[v];
    if (p == v) continue;
    EXPECT_LT(f.first[p], f.first[v]);
    EXPECT_LT(f.last[v], f.last[p]);
  }
  // is_ancestor matches the reference on sampled pairs.
  Random rng(123);
  for (std::size_t t = 0; t < 2000; ++t) {
    VertexId a = static_cast<VertexId>(rng.ith_rand(2 * t) % n);
    VertexId b = static_cast<VertexId>(rng.ith_rand(2 * t + 1) % n);
    if (cc.label[a] != cc.label[b]) {
      EXPECT_FALSE(f.is_ancestor(a, b));
      continue;
    }
    EXPECT_EQ(f.is_ancestor(a, b), ancestor_by_walk(f, a, b))
        << "a=" << a << " b=" << b;
  }
}

TEST_P(EulerTest, ChainForest) { check_forest(gen::chain(500)); }
TEST_P(EulerTest, StarForest) { check_forest(gen::star(300)); }
TEST_P(EulerTest, BinaryTreeForest) { check_forest(gen::binary_tree(1023)); }
TEST_P(EulerTest, GridForest) { check_forest(gen::rectangle_grid(20, 25)); }
TEST_P(EulerTest, DisconnectedForest) {
  check_forest(gen::sampled_edges(gen::rectangle_grid(25, 25), 0.4, 3).symmetrize());
}
TEST_P(EulerTest, RandomGraphForest) {
  check_forest(gen::random_graph(2000, 6000, 17).symmetrize());
}
TEST_P(EulerTest, IsolatedVertices) {
  Graph g = Graph::from_edges(5, std::vector<Edge>{{0, 1}, {1, 0}});
  check_forest(g);
  auto cc = connected_components(g);
  EulerForest f = euler_tour_forest(5, cc.forest, cc.label);
  for (VertexId v = 2; v < 5; ++v) {
    EXPECT_EQ(f.parent[v], v);
  }
}

TEST_P(EulerTest, SubtreeSizesViaIntervals) {
  // In a binary tree, subtree size from intervals: each vertex contributes
  // two tour positions, so last - first == 2 * size(subtree) - 1.
  Graph g = gen::binary_tree(127);
  auto cc = connected_components(g);
  EulerForest f = euler_tour_forest(127, cc.forest, cc.label);
  std::vector<std::size_t> size(127, 1);
  // Compute sizes bottom-up by sorting vertices by depth (walk parents).
  for (VertexId v = 126; v > 0; --v) {
    // binary_tree parents are (v-1)/2 but the Euler forest may root
    // differently; use its own parent pointers, processing leaves upward by
    // repeated passes (127 vertices: trivial cost).
  }
  std::vector<std::size_t> sz(127, 1);
  std::vector<VertexId> order(127);
  for (VertexId v = 0; v < 127; ++v) order[v] = v;
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return f.first[a] > f.first[b];  // deepest first
  });
  for (VertexId v : order) {
    if (f.parent[v] != v) sz[f.parent[v]] += sz[v];
  }
  for (VertexId v = 0; v < 127; ++v) {
    EXPECT_EQ(f.last[v] - f.first[v], 2 * sz[v] - 1) << "v=" << v;
  }
}

TEST(RangeQueryTest, MinMaxMatchBruteForce) {
  Scheduler::reset(1);
  auto data = tabulate(1000, [](std::size_t i) { return hash64(i) % 10000; });
  RangeMin<std::uint64_t> mn(data, static_cast<std::uint64_t>(-1));
  RangeMax<std::uint64_t> mx(data, 0);
  Random rng(5);
  for (std::size_t t = 0; t < 500; ++t) {
    std::size_t a = rng.ith_rand(2 * t) % 1000;
    std::size_t b = rng.ith_rand(2 * t + 1) % 1001;
    if (a > b) std::swap(a, b);
    std::uint64_t expect_min = static_cast<std::uint64_t>(-1), expect_max = 0;
    for (std::size_t i = a; i < b; ++i) {
      expect_min = std::min(expect_min, data[i]);
      expect_max = std::max(expect_max, data[i]);
    }
    EXPECT_EQ(mn.query(a, b), expect_min);
    EXPECT_EQ(mx.query(a, b), expect_max);
  }
}

TEST(RangeQueryTest, EmptyAndSingleton) {
  Scheduler::reset(1);
  std::vector<std::uint64_t> data = {7};
  RangeMin<std::uint64_t> mn(data, static_cast<std::uint64_t>(-1));
  EXPECT_EQ(mn.query(0, 1), 7u);
  EXPECT_EQ(mn.query(0, 0), static_cast<std::uint64_t>(-1));
}

}  // namespace
}  // namespace pasgal
