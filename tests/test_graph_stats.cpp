// Tests for the graph statistics utilities.
#include <gtest/gtest.h>

#include "graphs/generators.h"
#include "graphs/graph_stats.h"

namespace pasgal {
namespace {

TEST(GraphStats, DegreeStatsBasics) {
  Graph g = gen::star(10);  // center degree 9, leaves degree 1
  auto s = degree_stats(g);
  EXPECT_EQ(s.max_degree, 9u);
  EXPECT_DOUBLE_EQ(s.avg_degree, 18.0 / 10.0);
  EXPECT_EQ(s.isolated, 0u);
}

TEST(GraphStats, IsolatedCounted) {
  Graph g = Graph::from_edges(5, std::vector<Edge>{{0, 1}});
  auto s = degree_stats(g);
  EXPECT_EQ(s.isolated, 4u);  // 1,2,3,4 have out-degree 0
}

TEST(GraphStats, EmptyGraph) {
  auto s = degree_stats(Graph::from_edges(0, {}));
  EXPECT_EQ(s.max_degree, 0u);
  EXPECT_EQ(s.isolated, 0u);
}

TEST(GraphStats, DegreeHistogramSumsToN) {
  Graph g = gen::rmat(11, 20000, 3);
  auto h = degree_histogram(g, 32);
  std::size_t total = 0;
  for (auto c : h) total += c;
  EXPECT_EQ(total, g.num_vertices());
  // Power-law: overflow bucket non-empty, degree-0/1 buckets dominate.
  EXPECT_GT(h[32], 0u);
}

TEST(GraphStats, DiameterLowerBoundExactOnChain) {
  Graph g = gen::chain(400);
  // Double sweep finds the true diameter of a path.
  EXPECT_EQ(diameter_lower_bound(g, g), 399u);
}

TEST(GraphStats, DiameterLowerBoundIsLowerBound) {
  Graph g = gen::rectangle_grid(12, 30);  // true diameter 40
  auto lb = diameter_lower_bound(g, g);
  EXPECT_LE(lb, 40u);
  EXPECT_GE(lb, 30u);  // sweeps get close on grids
}

TEST(GraphStats, DegeneracyKnownValues) {
  EXPECT_EQ(degeneracy(gen::chain(50)), 1u);
  EXPECT_EQ(degeneracy(gen::cycle(30).symmetrize()), 2u);
  EXPECT_EQ(degeneracy(gen::complete(10).symmetrize()), 9u);
  EXPECT_EQ(degeneracy(gen::binary_tree(255)), 1u);
}

}  // namespace
}  // namespace pasgal
