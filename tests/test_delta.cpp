// Tests for the delta-overlay update subsystem (graphs/delta.h) and the
// incremental repair algorithms (algorithms/incremental.h).
//
// The load-bearing claim is *byte identity*: a static kernel running through
// the overlay must produce exactly the result it would produce on a CSR
// rebuilt from scratch from the effective edge list. The equivalence grid
// checks that for bfs (gbbs), connected components, and pagerank, on a
// power-law rmat and a lattice grid, across 1/4/8 workers, over randomized
// insert/delete batches. The reference is an independent rebuild maintained
// by the test (tracked edge sets + Graph::from_edges), not
// materialize_effective — so the overlay merge and the materializer are
// checked against a third implementation, not against each other.
//
// The `.plog` crash-safety section mirrors test_graph_io_fuzz.cpp's
// byte-surgery style: truncate the log at every byte boundary and assert
// replay yields a typed kFormat error or a consistent prefix — never UB.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <set>
#include <vector>

#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/incremental.h"
#include "algorithms/pagerank/pagerank.h"
#include "graphs/delta.h"
#include "graphs/generators.h"
#include "graphs/graph.h"
#include "graphs/storage.h"
#include "pasgal/error.h"

namespace pasgal {
namespace {

std::uint64_t edge_key(VertexId u, VertexId v) {
  return (static_cast<std::uint64_t>(u) << 32) | v;
}

// Mirrors the server/bench generators: tracks the effective edge set the way
// apply_updates validates it, so every generated op is accepted. Deletes
// pick existing effective edges; inserts rejection-sample absent ones.
class UpdateModel {
 public:
  explicit UpdateModel(const Graph& g, std::uint64_t seed)
      : n_(g.num_vertices()), base_edges_(g.to_edges()), rng_(seed) {
    for (const Edge& e : base_edges_) base_keys_.insert(edge_key(e.from, e.to));
  }

  bool present(std::uint64_t k) const {
    return inserted_.count(k) != 0 ||
           (base_keys_.count(k) != 0 && deleted_.count(k) == 0);
  }

  std::vector<EdgeUpdate> make_batch(std::size_t count) {
    std::vector<EdgeUpdate> batch;
    while (batch.size() < count) {
      bool want_delete = (rng_() & 1) != 0 && !effective_keys().empty();
      if (want_delete) {
        const std::vector<std::uint64_t>& eff = effective_keys();
        std::uint64_t k = eff[rng_() % eff.size()];
        apply_delete(k);
        batch.push_back({EdgeUpdate::Op::kDelete,
                         static_cast<VertexId>(k >> 32),
                         static_cast<VertexId>(k & 0xFFFFFFFFu)});
        continue;
      }
      VertexId u = static_cast<VertexId>(rng_() % n_);
      VertexId v = static_cast<VertexId>(rng_() % n_);
      if (u == v || present(edge_key(u, v))) continue;
      apply_insert(edge_key(u, v));
      batch.push_back({EdgeUpdate::Op::kInsert, u, v});
    }
    return batch;
  }

  // The effective graph, rebuilt from scratch: base multigraph copies minus
  // every copy of a deleted key, plus the overlay inserts.
  Graph rebuild() const {
    std::vector<Edge> edges;
    edges.reserve(base_edges_.size() + inserted_.size());
    for (const Edge& e : base_edges_) {
      if (deleted_.count(edge_key(e.from, e.to)) == 0) edges.push_back(e);
    }
    for (std::uint64_t k : inserted_) {
      edges.push_back({static_cast<VertexId>(k >> 32),
                       static_cast<VertexId>(k & 0xFFFFFFFFu)});
    }
    return Graph::from_edges(n_, edges);
  }

 private:
  void apply_insert(std::uint64_t k) {
    if (deleted_.count(k) != 0) {
      deleted_.erase(k);  // cancels the delete, restoring all base copies
    } else {
      inserted_.insert(k);
    }
    cache_.clear();
  }
  void apply_delete(std::uint64_t k) {
    if (inserted_.count(k) != 0) {
      inserted_.erase(k);  // nets out of the overlay
    } else {
      deleted_.insert(k);  // suppresses every base copy
    }
    cache_.clear();
  }
  const std::vector<std::uint64_t>& effective_keys() {
    if (cache_.empty()) {
      for (std::uint64_t k : base_keys_) {
        if (deleted_.count(k) == 0) cache_.push_back(k);
      }
      cache_.insert(cache_.end(), inserted_.begin(), inserted_.end());
    }
    return cache_;
  }

  std::size_t n_;
  std::vector<Edge> base_edges_;
  std::set<std::uint64_t> base_keys_;
  std::set<std::uint64_t> inserted_;
  std::set<std::uint64_t> deleted_;
  std::vector<std::uint64_t> cache_;
  std::mt19937_64 rng_;
};

VertexId max_degree_vertex(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  return best;
}

// --- overlay equivalence grid ------------------------------------------------

void run_equivalence_grid(Graph base, std::uint64_t seed) {
  Graph g = base;       // overlay side (shares storage with `base`)
  Graph gt = g.transpose();  // cache before apply so the flipped side lands
  UpdateModel model(g, seed);
  VertexId source = max_degree_vertex(g);

  for (int round = 0; round < 3; ++round) {
    std::vector<EdgeUpdate> batch = model.make_batch(150);
    apply_updates(g, batch);
    Graph ref = model.rebuild();
    Graph ref_t = ref.transpose();

    for (int workers : {1, 4, 8}) {
      Scheduler::reset(workers);
      EXPECT_EQ(gbbs_bfs(g, gt, source), gbbs_bfs(ref, ref_t, source))
          << "bfs diverged: round " << round << ", " << workers << " workers";
      ConnectivityResult cc_overlay = connected_components(g.symmetrize());
      ConnectivityResult cc_ref = connected_components(ref.symmetrize());
      EXPECT_EQ(cc_overlay.label, cc_ref.label)
          << "cc diverged: round " << round << ", " << workers << " workers";
      PagerankResult pr_overlay = pasgal_pagerank(g, gt);
      PagerankResult pr_ref = pasgal_pagerank(ref, ref_t);
      ASSERT_EQ(pr_overlay.rank.size(), pr_ref.rank.size());
      EXPECT_EQ(pr_overlay.iterations, pr_ref.iterations);
      for (std::size_t v = 0; v < pr_ref.rank.size(); ++v) {
        ASSERT_EQ(pr_overlay.rank[v], pr_ref.rank[v])
            << "pagerank not byte-identical at vertex " << v << ": round "
            << round << ", " << workers << " workers";
      }
      Scheduler::reset(1);
    }

    // materialize_effective (the compaction path) must agree with the
    // independent rebuild edge for edge.
    Graph folded = materialize_effective(g);
    EXPECT_EQ(folded.num_edges(), ref.num_edges());
    EXPECT_EQ(folded.to_edges(), ref.to_edges());
  }
}

TEST(Delta, EquivalenceGridRmat) {
  run_equivalence_grid(gen::rmat(10, 6000, 3), /*seed=*/7);
}

TEST(Delta, EquivalenceGridGrid) {
  run_equivalence_grid(gen::rectangle_grid(48, 4), /*seed=*/11);
}

// --- apply semantics ---------------------------------------------------------

TEST(Delta, ApplyValidatesAgainstTheEffectiveGraph) {
  Graph g = gen::rectangle_grid(16, 4);  // n = 64
  Graph pristine = materialize_effective(g);

  // Out-of-range endpoints.
  EXPECT_THROW(
      apply_updates(g, std::vector<EdgeUpdate>{
                           {EdgeUpdate::Op::kInsert, 0, 64}}),
      Error);
  EXPECT_THROW(
      apply_updates(g, std::vector<EdgeUpdate>{
                           {EdgeUpdate::Op::kInsert, kInvalidVertex, 0}}),
      Error);
  // Deleting an absent edge / inserting a present one.
  try {
    apply_updates(g, std::vector<EdgeUpdate>{{EdgeUpdate::Op::kDelete, 0, 63}});
    FAIL() << "deleted an absent edge";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kValidation);
  }
  VertexId nbr = g.neighbors(0)[0];
  try {
    apply_updates(g,
                  std::vector<EdgeUpdate>{{EdgeUpdate::Op::kInsert, 0, nbr}});
    FAIL() << "inserted a present edge";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kValidation);
  }
  // A rejected batch publishes nothing: the overlay is still absent.
  EXPECT_FALSE(g.has_delta());
  EXPECT_EQ(g.to_edges(), pristine.to_edges());

  // A batch that fails mid-way (valid insert, then invalid delete) must not
  // publish the partial prefix either.
  EXPECT_THROW(
      apply_updates(g, std::vector<EdgeUpdate>{
                           {EdgeUpdate::Op::kInsert, 0, 63},
                           {EdgeUpdate::Op::kDelete, 1, 62}}),
      Error);
  EXPECT_FALSE(g.has_delta());
}

TEST(Delta, InsertThenDeleteNetsOut) {
  Graph g = gen::rectangle_grid(16, 4);
  apply_updates(g, std::vector<EdgeUpdate>{{EdgeUpdate::Op::kInsert, 0, 63}});
  ApplyStats st = apply_updates(
      g, std::vector<EdgeUpdate>{{EdgeUpdate::Op::kDelete, 0, 63}});
  EXPECT_EQ(st.inserts, 0u);
  EXPECT_EQ(st.deletes, 0u);
  EXPECT_EQ(st.batches, 2u);

  // Deleting a base edge then re-inserting it cancels the delete and
  // restores every base copy.
  VertexId nbr = g.neighbors(5)[0];
  apply_updates(g, std::vector<EdgeUpdate>{{EdgeUpdate::Op::kDelete, 5, nbr}});
  st = apply_updates(g,
                     std::vector<EdgeUpdate>{{EdgeUpdate::Op::kInsert, 5, nbr}});
  EXPECT_EQ(st.inserts, 0u);
  EXPECT_EQ(st.deletes, 0u);
  Graph ref = gen::rectangle_grid(16, 4);
  EXPECT_EQ(materialize_effective(g).to_edges(), ref.to_edges());
}

TEST(Delta, WeightedGraphsRejectUnweightedPatches) {
  // The guard keys off storage-carried weights (the weighted `.pgr` path),
  // so build a storage-backed weighted chain directly.
  Graph shape = gen::chain(8, /*directed=*/true);
  std::vector<StorageEdgeId> offsets;
  std::vector<StorageVertexId> targets;
  for (VertexId v = 0; v < shape.num_vertices(); ++v) {
    offsets.push_back(shape.edge_begin(v));
    for (VertexId t : shape.neighbors(v)) targets.push_back(t);
  }
  offsets.push_back(shape.num_edges());
  std::vector<StorageWeight> weights(targets.size(), 1);
  Graph g(GraphStorage::owned(std::move(offsets), std::move(targets),
                              std::move(weights)));
  try {
    apply_updates(g,
                  std::vector<EdgeUpdate>{{EdgeUpdate::Op::kInsert, 0, 7}});
    FAIL() << "weighted graph accepted an unweighted patch";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kUsage);
  }
}

TEST(Delta, SnapshotScanMergesInAscendingOrder) {
  // 0 -> {2, 5, 9}; delete 5, insert 1 and 7: scan must yield 1,2,7,9 with
  // kInvalidEdge marking the overlay entries.
  Graph g = Graph::from_edges(
      10, std::vector<Edge>{{0, 2}, {0, 5}, {0, 9}});
  apply_updates(g, std::vector<EdgeUpdate>{{EdgeUpdate::Op::kDelete, 0, 5},
                                           {EdgeUpdate::Op::kInsert, 0, 1},
                                           {EdgeUpdate::Op::kInsert, 0, 7}});
  std::shared_ptr<const DeltaSnapshot> d = g.storage()->delta_snapshot();
  ASSERT_NE(d, nullptr);
  EXPECT_TRUE(d->touches(0));
  EXPECT_FALSE(d->touches(3));
  EXPECT_EQ(d->effective_degree(0, g.out_degree(0)), 4u);
  std::vector<VertexId> seen;
  std::vector<bool> overlay;
  std::span<const VertexId> base = g.neighbors(0);
  d->scan_effective(0, base.data(), 0, base.size(),
                    [&](VertexId t, EdgeId e) {
                      seen.push_back(t);
                      overlay.push_back(e == kInvalidEdge);
                      return true;
                    });
  EXPECT_EQ(seen, (std::vector<VertexId>{1, 2, 7, 9}));
  EXPECT_EQ(overlay, (std::vector<bool>{true, false, true, false}));

  // The flipped side sees the same ops in-edge-wise.
  ASSERT_NE(d->flipped(), nullptr);
  EXPECT_TRUE(d->flipped()->touches(1));
  EXPECT_TRUE(d->flipped()->touches(5));
  EXPECT_TRUE(d->flipped()->touches(7));
  EXPECT_FALSE(d->flipped()->touches(0));
}

// --- update log (`.plog`) ----------------------------------------------------

class DeltaLogTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    auto dir = std::filesystem::temp_directory_path() / "pasgal_delta_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  void TearDown() override {
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "pasgal_delta_test");
  }

  std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }
  void dump(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  static std::vector<std::vector<EdgeUpdate>> sample_batches() {
    return {{{EdgeUpdate::Op::kInsert, 0, 5}, {EdgeUpdate::Op::kInsert, 1, 6}},
            {{EdgeUpdate::Op::kDelete, 0, 5}},
            {{EdgeUpdate::Op::kInsert, 2, 7},
             {EdgeUpdate::Op::kDelete, 1, 6},
             {EdgeUpdate::Op::kInsert, 3, 8}}};
  }
};

TEST_F(DeltaLogTest, WriteReadRoundTrip) {
  std::string path = temp_path("round.plog");
  auto batches = sample_batches();
  write_update_log(path, batches);
  EXPECT_EQ(read_update_log(path), batches);

  // Appends extend the frame sequence; a fresh append target gets a header.
  append_update_batch(path, batches[0]);
  auto got = read_update_log(path);
  ASSERT_EQ(got.size(), 4u);
  EXPECT_EQ(got[3], batches[0]);

  std::string fresh = temp_path("fresh.plog");
  append_update_batch(fresh, batches[1]);
  got = read_update_log(fresh);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], batches[1]);
}

TEST_F(DeltaLogTest, ReplayMatchesManualApplies) {
  Graph logged = gen::rectangle_grid(16, 4);
  Graph manual = gen::rectangle_grid(16, 4);
  std::vector<std::vector<EdgeUpdate>> batches = {
      {{EdgeUpdate::Op::kInsert, 0, 63}, {EdgeUpdate::Op::kInsert, 1, 62}},
      {{EdgeUpdate::Op::kDelete, 0, 63}}};
  std::string path = temp_path("replay.plog");
  write_update_log(path, batches);

  ApplyStats st = replay_update_log(logged, path);
  for (const auto& b : batches) apply_updates(manual, b);
  EXPECT_EQ(st.batches, 2u);
  EXPECT_EQ(st.inserts, 1u);
  EXPECT_EQ(st.deletes, 0u);
  EXPECT_EQ(materialize_effective(logged).to_edges(),
            materialize_effective(manual).to_edges());
}

TEST_F(DeltaLogTest, GraphDeltaAppendsOnlyAcceptedBatches) {
  std::string path = temp_path("accepted.plog");
  GraphDelta delta(gen::rectangle_grid(16, 4), path);
  delta.apply(std::vector<EdgeUpdate>{{EdgeUpdate::Op::kInsert, 0, 63}});
  EXPECT_THROW(
      delta.apply(std::vector<EdgeUpdate>{{EdgeUpdate::Op::kInsert, 0, 63}}),
      Error);
  // The rejected duplicate insert never reached the log: replay succeeds.
  Graph replayed = gen::rectangle_grid(16, 4);
  ApplyStats st = replay_update_log(replayed, path);
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.inserts, 1u);
}

// Satellite: crash-safety. A crashed append tears the trailing frame at an
// arbitrary byte; replay must yield the consistent prefix (or a typed
// kFormat for a torn header) — never UB, never a mangled batch.
TEST_F(DeltaLogTest, TruncationAtEveryByteBoundaryIsPrefixOrTypedError) {
  std::string path = temp_path("torn.plog");
  auto batches = sample_batches();
  write_update_log(path, batches);
  std::vector<char> full = slurp(path);
  ASSERT_GT(full.size(), 16u);

  std::string torn = temp_path("torn_cut.plog");
  for (std::size_t len = 0; len < full.size(); ++len) {
    dump(torn, std::vector<char>(full.begin(), full.begin() + len));
    try {
      std::vector<std::vector<EdgeUpdate>> got = read_update_log(torn);
      ASSERT_LE(got.size(), batches.size()) << "cut at byte " << len;
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i], batches[i])
            << "cut at byte " << len << " mangled batch " << i;
      }
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kFormat)
          << "cut at byte " << len << ": " << e.what();
    }
  }
}

TEST_F(DeltaLogTest, CorruptionInACompleteFrameIsATypedFormatError) {
  std::string path = temp_path("corrupt.plog");
  auto batches = sample_batches();
  write_update_log(path, batches);
  std::vector<char> full = slurp(path);
  std::string mut = temp_path("corrupt_mut.plog");

  // Flip one payload byte of the FIRST frame (offset 16 header + 16 frame
  // header): checksum mismatch, not a silent wrong edge.
  {
    std::vector<char> bytes = full;
    bytes[16 + 16 + 4] ^= 0x01;
    dump(mut, bytes);
    try {
      read_update_log(mut);
      FAIL() << "corrupted payload replayed";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kFormat);
    }
  }
  // Break the frame magic.
  {
    std::vector<char> bytes = full;
    bytes[16] ^= 0xFF;
    dump(mut, bytes);
    EXPECT_THROW(read_update_log(mut), Error);
  }
  // Wrong file magic / version.
  {
    std::vector<char> bytes = full;
    bytes[0] = 'X';
    dump(mut, bytes);
    EXPECT_THROW(read_update_log(mut), Error);
  }
  {
    std::vector<char> bytes = full;
    bytes[8] = 9;  // version
    dump(mut, bytes);
    try {
      read_update_log(mut);
      FAIL() << "future version accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kFormat);
    }
  }
  // An unknown op with a *correct* checksum is still rejected.
  {
    std::vector<char> bytes = full;
    std::uint32_t bad_op = 7;
    std::memcpy(bytes.data() + 16 + 16, &bad_op, 4);
    std::uint32_t count;
    std::memcpy(&count, bytes.data() + 16 + 4, 4);
    std::uint64_t rehash = hash_bytes(bytes.data() + 16 + 16,
                                      static_cast<std::size_t>(count) * 12);
    std::memcpy(bytes.data() + 16 + 8, &rehash, 8);
    dump(mut, bytes);
    try {
      read_update_log(mut);
      FAIL() << "unknown op replayed";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kFormat);
    }
  }
  // Missing file is kIo, not kFormat.
  try {
    read_update_log(temp_path("nope.plog"));
    FAIL() << "missing log opened";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kIo);
  }
}

// --- incremental repair ------------------------------------------------------

TEST(Incremental, BfsRepairIsExactAndResettlesFewerOnSmallChurn) {
  Graph g = gen::rmat(11, 16000, 5);  // n = 2048
  Graph gt = g.transpose();
  VertexId source = max_degree_vertex(g);
  UpdateModel model(g, /*seed=*/23);

  std::vector<std::uint32_t> dist = gbbs_bfs(g, gt, source);
  for (int round = 0; round < 4; ++round) {
    std::vector<EdgeUpdate> batch = model.make_batch(15);  // < 1% churn
    apply_updates(g, batch);
    std::vector<std::uint32_t> expect = gbbs_bfs(g, gt, source);
    IncrementalStats st = incremental_bfs(g, gt, source, batch, dist);
    EXPECT_EQ(dist, expect) << "repair diverged in round " << round;
    EXPECT_EQ(st.full_settled, g.num_vertices());
    if (!st.fallback) {
      EXPECT_LT(st.resettled, st.full_settled)
          << "repair must settle strictly fewer vertices than a full "
             "recompute on small churn";
    }
  }
}

TEST(Incremental, BfsDeleteCascadeRepairsACorridor) {
  // A directed chain is the worst case: deleting one edge unreaches the
  // whole suffix. The repair must invalidate exactly that suffix.
  Graph g = gen::chain(64, /*directed=*/true);
  Graph gt = g.transpose();
  std::vector<std::uint32_t> dist = gbbs_bfs(g, gt, 0);
  std::vector<EdgeUpdate> batch{{EdgeUpdate::Op::kDelete, 31, 32}};
  apply_updates(g, batch);
  IncrementalOptions opt;
  opt.churn_threshold = 1.0;  // never fall back; exercise the cascade
  IncrementalStats st = incremental_bfs(g, gt, 0, batch, dist, opt);
  EXPECT_FALSE(st.fallback);
  EXPECT_EQ(dist, gbbs_bfs(g, gt, 0));
  for (VertexId v = 32; v < 64; ++v) EXPECT_EQ(dist[v], kInfDist);

  // Re-inserting the edge repairs the corridor back via the insert seeds.
  std::vector<EdgeUpdate> fix{{EdgeUpdate::Op::kInsert, 31, 32}};
  apply_updates(g, fix);
  st = incremental_bfs(g, gt, 0, fix, dist, opt);
  EXPECT_EQ(dist, gbbs_bfs(g, gt, 0));
  EXPECT_EQ(dist[63], 63u);
}

TEST(Incremental, BfsChurnFallbackIsStillExact) {
  Graph g = gen::rmat(9, 4000, 13);
  Graph gt = g.transpose();
  VertexId source = max_degree_vertex(g);
  UpdateModel model(g, /*seed=*/31);
  std::vector<std::uint32_t> dist = gbbs_bfs(g, gt, source);
  std::vector<EdgeUpdate> batch = model.make_batch(200);
  apply_updates(g, batch);
  IncrementalOptions opt;
  opt.churn_threshold = 0.0;  // force the fallback path
  IncrementalStats st = incremental_bfs(g, gt, source, batch, dist, opt);
  EXPECT_TRUE(st.fallback);
  EXPECT_EQ(st.resettled, st.full_settled);
  EXPECT_EQ(dist, gbbs_bfs(g, gt, source));
}

TEST(Incremental, CcInsertOnlyUnionsLabels) {
  // Three directed chains and three isolated vertices; inserts merge
  // components without any traversal.
  std::vector<Edge> edges{{0, 1}, {1, 2}, {3, 4}, {4, 5}, {6, 7}, {7, 8}};
  Graph g = Graph::from_edges(12, edges);
  ConnectivityResult base = connected_components(g.symmetrize());
  EXPECT_EQ(base.num_components, 6u);
  std::vector<VertexId> label = base.label;

  std::vector<EdgeUpdate> batch{{EdgeUpdate::Op::kInsert, 2, 3},
                                {EdgeUpdate::Op::kInsert, 9, 10}};
  apply_updates(g, batch);
  IncrementalStats st = incremental_cc(g, batch, label);
  EXPECT_FALSE(st.fallback);
  ConnectivityResult expect = connected_components(g.symmetrize());
  EXPECT_EQ(label, expect.label);
  EXPECT_EQ(count_distinct_labels(label), 4u);
}

TEST(Incremental, CcDeleteFallsBackToFullRecompute) {
  Graph g = gen::rectangle_grid(24, 4);
  ConnectivityResult base = connected_components(g.symmetrize());
  std::vector<VertexId> label = base.label;

  VertexId nbr = g.neighbors(10)[0];
  std::vector<EdgeUpdate> batch{{EdgeUpdate::Op::kDelete, 10, nbr},
                                {EdgeUpdate::Op::kInsert, 0, 95}};
  apply_updates(g, batch);
  IncrementalStats st = incremental_cc(g, batch, label);
  EXPECT_TRUE(st.fallback);
  ConnectivityResult expect = connected_components(g.symmetrize());
  EXPECT_EQ(label, expect.label);
}

TEST(Incremental, RepairIsDeterministicAcrossWorkerCounts) {
  Graph g = gen::rmat(10, 6000, 17);
  Graph gt = g.transpose();
  VertexId source = max_degree_vertex(g);
  UpdateModel model(g, /*seed=*/41);
  std::vector<EdgeUpdate> batch = model.make_batch(40);

  std::vector<std::uint32_t> base_dist = gbbs_bfs(g, gt, source);
  apply_updates(g, batch);
  std::vector<std::vector<std::uint32_t>> repaired;
  for (int workers : {1, 4, 8}) {
    Scheduler::reset(workers);
    std::vector<std::uint32_t> dist = base_dist;
    incremental_bfs(g, gt, source, batch, dist);
    repaired.push_back(std::move(dist));
    Scheduler::reset(1);
  }
  EXPECT_EQ(repaired[0], repaired[1]);
  EXPECT_EQ(repaired[0], repaired[2]);
  EXPECT_EQ(repaired[0], gbbs_bfs(g, gt, source));
}

}  // namespace
}  // namespace pasgal
