// Tests for the concurrent hash bag (the paper's frontier structure).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "parlay/parallel.h"
#include "pasgal/hashbag.h"

namespace pasgal {
namespace {

class HashBagTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, HashBagTest, ::testing::Values(1, 4));

TEST_P(HashBagTest, EmptyBag) {
  HashBag<std::uint32_t> bag;
  EXPECT_TRUE(bag.empty());
  EXPECT_EQ(bag.size(), 0u);
  EXPECT_TRUE(bag.extract_all().empty());
}

TEST_P(HashBagTest, SingleInsert) {
  HashBag<std::uint32_t> bag;
  bag.insert(42);
  EXPECT_EQ(bag.size(), 1u);
  auto out = bag.extract_all();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  EXPECT_TRUE(bag.empty());
}

TEST_P(HashBagTest, SequentialInsertExtract) {
  HashBag<std::uint32_t> bag;
  for (std::uint32_t i = 0; i < 1000; ++i) bag.insert(i);
  auto out = bag.extract_all();
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i);
}

TEST_P(HashBagTest, ParallelInsertNoLoss) {
  HashBag<std::uint32_t> bag;
  const std::size_t n = 200000;
  parallel_for(0, n, [&](std::size_t i) {
    bag.insert(static_cast<std::uint32_t>(i));
  });
  auto out = bag.extract_all();
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i) << i;
}

TEST_P(HashBagTest, MultisetKeepsDuplicates) {
  HashBag<std::uint32_t> bag;
  parallel_for(0, 5000, [&](std::size_t i) {
    bag.insert(static_cast<std::uint32_t>(i % 10));
  });
  auto out = bag.extract_all();
  EXPECT_EQ(out.size(), 5000u);
  std::vector<int> counts(10, 0);
  for (auto v : out) counts[v]++;
  for (int c : counts) EXPECT_EQ(c, 500);
}

TEST_P(HashBagTest, GrowthBeyondFirstBlock) {
  // First block holds 2^6 = 64 slots; inserting far more forces growth
  // through several blocks.
  HashBag<std::uint32_t> bag(/*first_block_log2=*/6);
  const std::size_t n = 50000;
  parallel_for(0, n, [&](std::size_t i) {
    bag.insert(static_cast<std::uint32_t>(i));
  });
  auto out = bag.extract_all();
  EXPECT_EQ(out.size(), n);
}

TEST_P(HashBagTest, ReuseAfterExtract) {
  HashBag<std::uint32_t> bag(6);
  for (int round = 0; round < 10; ++round) {
    std::size_t count = 100 + static_cast<std::size_t>(round) * 500;
    parallel_for(0, count, [&](std::size_t i) {
      bag.insert(static_cast<std::uint32_t>(i));
    });
    auto out = bag.extract_all();
    EXPECT_EQ(out.size(), count) << "round " << round;
    EXPECT_TRUE(bag.empty());
  }
}

TEST_P(HashBagTest, ClearResets) {
  HashBag<std::uint32_t> bag(6);
  parallel_for(0, 10000, [&](std::size_t i) {
    bag.insert(static_cast<std::uint32_t>(i));
  });
  bag.clear();
  EXPECT_TRUE(bag.empty());
  bag.insert(7);
  auto out = bag.extract_all();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
}

TEST_P(HashBagTest, SixtyFourBitElements) {
  HashBag<std::uint64_t> bag;
  const std::size_t n = 50000;
  parallel_for(0, n, [&](std::size_t i) {
    bag.insert((static_cast<std::uint64_t>(i) << 32) | (i & 0xffff));
  });
  auto out = bag.extract_all();
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], (static_cast<std::uint64_t>(i) << 32) | (i & 0xffff));
  }
}

TEST_P(HashBagTest, InterleavedInsertSizeCalls) {
  HashBag<std::uint32_t> bag;
  for (std::uint32_t i = 0; i < 100; ++i) {
    bag.insert(i);
    EXPECT_EQ(bag.size(), i + 1);
  }
}

TEST_P(HashBagTest, PhasedConcurrentInsertExtractStress) {
  // Frontier lifecycle under contention: many rounds of concurrent inserts
  // (with heavy duplication, like several neighbors relaxing the same
  // vertex) followed by extract_all. Every round's extraction must return
  // exactly the inserted multiset — nothing lost, nothing duplicated,
  // nothing leaking across rounds.
  HashBag<std::uint64_t> bag(/*first_block_log2=*/4);
  for (int round = 0; round < 8; ++round) {
    const std::size_t n = 1000 + static_cast<std::size_t>(round) * 4000;
    std::vector<std::uint64_t> inserted(n);
    parallel_for(0, n, [&](std::size_t i) {
      // Mix unique values with duplicates; tag by round so stale elements
      // from a previous phase would be caught immediately.
      std::uint64_t v = (static_cast<std::uint64_t>(round) << 32) | (i % 997);
      inserted[i] = v;
      bag.insert(v);
    });
    auto out = bag.extract_all();
    std::sort(out.begin(), out.end());
    std::sort(inserted.begin(), inserted.end());
    ASSERT_EQ(out, inserted) << "round " << round;
    EXPECT_TRUE(bag.empty());
  }
  // clear() in place of extract_all must also reset the bag completely.
  parallel_for(0, 5000, [&](std::size_t i) {
    bag.insert(static_cast<std::uint64_t>(i));
  });
  bag.clear();
  EXPECT_TRUE(bag.empty());
  bag.insert(123);
  auto out = bag.extract_all();
  EXPECT_EQ(out, (std::vector<std::uint64_t>{123}));
}

TEST_P(HashBagTest, SaturationThrowsInsteadOfSpinning) {
  // Regression: with every block full, insert used to spin forever probing
  // the last block. A tiny bag (one block of 4 slots) must fill completely
  // and then fail loudly with a kResource error.
  HashBag<std::uint32_t> bag(/*first_block_log2=*/2, /*max_blocks=*/1);
  for (std::uint32_t i = 0; i < 4; ++i) bag.insert(i);
  EXPECT_EQ(bag.size(), 4u);
  try {
    bag.insert(99);
    FAIL() << "insert into a saturated bag did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kResource);
    EXPECT_NE(std::string(e.what()).find("saturated"), std::string::npos);
  }
  // The bag stays usable: extraction returns the four stored elements.
  auto out = bag.extract_all();
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0, 1, 2, 3}));
}

TEST_P(HashBagTest, SaturationAcrossMultipleBlocks) {
  // Two blocks (4 + 8 = 12 slots): more inserts than total capacity must
  // terminate with an error, not hang, and everything stored is preserved.
  HashBag<std::uint32_t> bag(/*first_block_log2=*/2, /*max_blocks=*/2);
  std::size_t accepted = 0;
  bool saturated = false;
  for (std::uint32_t i = 0; i < 100 && !saturated; ++i) {
    try {
      bag.insert(i);
      ++accepted;
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kResource);
      saturated = true;
    }
  }
  EXPECT_TRUE(saturated);
  EXPECT_GT(accepted, 0u);
  EXPECT_LE(accepted, 12u);
  EXPECT_EQ(bag.extract_all().size(), accepted);
}

}  // namespace
}  // namespace pasgal
