// Tests for the concurrent hash bag (the paper's frontier structure).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "parlay/parallel.h"
#include "pasgal/hashbag.h"

namespace pasgal {
namespace {

class HashBagTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, HashBagTest, ::testing::Values(1, 4));

TEST_P(HashBagTest, EmptyBag) {
  HashBag<std::uint32_t> bag;
  EXPECT_TRUE(bag.empty());
  EXPECT_EQ(bag.size(), 0u);
  EXPECT_TRUE(bag.extract_all().empty());
}

TEST_P(HashBagTest, SingleInsert) {
  HashBag<std::uint32_t> bag;
  bag.insert(42);
  EXPECT_EQ(bag.size(), 1u);
  auto out = bag.extract_all();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 42u);
  EXPECT_TRUE(bag.empty());
}

TEST_P(HashBagTest, SequentialInsertExtract) {
  HashBag<std::uint32_t> bag;
  for (std::uint32_t i = 0; i < 1000; ++i) bag.insert(i);
  auto out = bag.extract_all();
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), 1000u);
  for (std::uint32_t i = 0; i < 1000; ++i) EXPECT_EQ(out[i], i);
}

TEST_P(HashBagTest, ParallelInsertNoLoss) {
  HashBag<std::uint32_t> bag;
  const std::size_t n = 200000;
  parallel_for(0, n, [&](std::size_t i) {
    bag.insert(static_cast<std::uint32_t>(i));
  });
  auto out = bag.extract_all();
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i) << i;
}

TEST_P(HashBagTest, MultisetKeepsDuplicates) {
  HashBag<std::uint32_t> bag;
  parallel_for(0, 5000, [&](std::size_t i) {
    bag.insert(static_cast<std::uint32_t>(i % 10));
  });
  auto out = bag.extract_all();
  EXPECT_EQ(out.size(), 5000u);
  std::vector<int> counts(10, 0);
  for (auto v : out) counts[v]++;
  for (int c : counts) EXPECT_EQ(c, 500);
}

TEST_P(HashBagTest, GrowthBeyondFirstBlock) {
  // First block holds 2^6 = 64 slots; inserting far more forces growth
  // through several blocks.
  HashBag<std::uint32_t> bag(/*first_block_log2=*/6);
  const std::size_t n = 50000;
  parallel_for(0, n, [&](std::size_t i) {
    bag.insert(static_cast<std::uint32_t>(i));
  });
  auto out = bag.extract_all();
  EXPECT_EQ(out.size(), n);
}

TEST_P(HashBagTest, ReuseAfterExtract) {
  HashBag<std::uint32_t> bag(6);
  for (int round = 0; round < 10; ++round) {
    std::size_t count = 100 + static_cast<std::size_t>(round) * 500;
    parallel_for(0, count, [&](std::size_t i) {
      bag.insert(static_cast<std::uint32_t>(i));
    });
    auto out = bag.extract_all();
    EXPECT_EQ(out.size(), count) << "round " << round;
    EXPECT_TRUE(bag.empty());
  }
}

TEST_P(HashBagTest, ClearResets) {
  HashBag<std::uint32_t> bag(6);
  parallel_for(0, 10000, [&](std::size_t i) {
    bag.insert(static_cast<std::uint32_t>(i));
  });
  bag.clear();
  EXPECT_TRUE(bag.empty());
  bag.insert(7);
  auto out = bag.extract_all();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
}

TEST_P(HashBagTest, SixtyFourBitElements) {
  HashBag<std::uint64_t> bag;
  const std::size_t n = 50000;
  parallel_for(0, n, [&](std::size_t i) {
    bag.insert((static_cast<std::uint64_t>(i) << 32) | (i & 0xffff));
  });
  auto out = bag.extract_all();
  std::sort(out.begin(), out.end());
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i], (static_cast<std::uint64_t>(i) << 32) | (i & 0xffff));
  }
}

TEST_P(HashBagTest, InterleavedInsertSizeCalls) {
  HashBag<std::uint32_t> bag;
  for (std::uint32_t i = 0; i < 100; ++i) {
    bag.insert(i);
    EXPECT_EQ(bag.size(), i + 1);
  }
}

}  // namespace
}  // namespace pasgal
