// Point-to-point shortest path tests: both PPSP algorithms must agree with
// full Dijkstra, and bidirectional search must settle fewer vertices.
#include <gtest/gtest.h>

#include "algorithms/sssp/ppsp.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

using WGraph = WeightedGraph<std::uint32_t>;

class PpspTest : public ::testing::Test {
 protected:
  void SetUp() override { Scheduler::reset(1); }
};

TEST_F(PpspTest, MatchesFullDijkstraOnSuite) {
  std::vector<std::pair<std::string, WGraph>> cases;
  cases.emplace_back("grid", gen::add_weights(gen::rectangle_grid(20, 30), 50, 1));
  cases.emplace_back("road", gen::add_weights(gen::road_grid(15, 40, 0.7, 2), 100, 2));
  cases.emplace_back("rmat", gen::add_weights(gen::rmat(10, 8000, 3), 64, 3));
  cases.emplace_back("chain", gen::add_weights(gen::chain(500), 9, 4));
  for (const auto& [name, g] : cases) {
    WGraph gt = g.transpose();
    Random rng(9);
    for (std::size_t trial = 0; trial < 10; ++trial) {
      VertexId s = static_cast<VertexId>(rng.ith_rand(2 * trial) % g.num_vertices());
      VertexId t =
          static_cast<VertexId>(rng.ith_rand(2 * trial + 1) % g.num_vertices());
      Dist expected = dijkstra(g, s)[t];
      EXPECT_EQ(ppsp_dijkstra(g, s, t), expected)
          << name << " s=" << s << " t=" << t;
      EXPECT_EQ(ppsp_bidirectional(g, gt, s, t), expected)
          << name << " s=" << s << " t=" << t;
    }
  }
}

TEST_F(PpspTest, SameSourceAndTarget) {
  auto g = gen::add_weights(gen::rectangle_grid(5, 5), 10, 5);
  auto gt = g.transpose();
  EXPECT_EQ(ppsp_dijkstra(g, 7, 7), 0u);
  EXPECT_EQ(ppsp_bidirectional(g, gt, 7, 7), 0u);
}

TEST_F(PpspTest, UnreachableTarget) {
  auto g = gen::add_weights(
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}}), 10, 6);
  auto gt = g.transpose();
  EXPECT_EQ(ppsp_dijkstra(g, 0, 3), kInfWeightDist);
  EXPECT_EQ(ppsp_bidirectional(g, gt, 0, 3), kInfWeightDist);
}

TEST_F(PpspTest, DirectedOneWay) {
  // 0 -> 1 -> 2 but no way back.
  std::vector<WeightedEdge<std::uint32_t>> e = {{0, 1, 4}, {1, 2, 5}};
  auto g = WGraph::from_edges(3, e);
  auto gt = g.transpose();
  EXPECT_EQ(ppsp_bidirectional(g, gt, 0, 2), 9u);
  EXPECT_EQ(ppsp_bidirectional(g, gt, 2, 0), kInfWeightDist);
}

TEST_F(PpspTest, BidirectionalSettlesFewerVerticesOnLargeDiameter) {
  auto g = gen::add_weights(gen::rectangle_grid(60, 60), 20, 7);
  auto gt = g.transpose();
  VertexId s = 0, t = 60 * 60 - 1;  // opposite corners
  RunStats uni_stats, bi_stats;
  Dist d1 = ppsp_dijkstra(g, s, t, &uni_stats);
  Dist d2 = ppsp_bidirectional(g, gt, s, t, &bi_stats);
  EXPECT_EQ(d1, d2);
  EXPECT_LT(bi_stats.vertices_visited(), uni_stats.vertices_visited());
}

TEST_F(PpspTest, EarlyExitBeatsFullScanOnNearbyTargets) {
  auto g = gen::add_weights(gen::rectangle_grid(50, 50), 20, 8);
  RunStats near_stats;
  ppsp_dijkstra(g, 0, 1, &near_stats);
  EXPECT_LT(near_stats.vertices_visited(), g.num_vertices() / 4);
}

}  // namespace
}  // namespace pasgal
