// Tests for the work-stealing fork-join scheduler and parallel_for.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parlay/parallel.h"
#include "parlay/scheduler.h"

namespace pasgal {
namespace {

class SchedulerMultiThread : public ::testing::Test {
 protected:
  void SetUp() override { Scheduler::reset(4); }
  void TearDown() override { Scheduler::reset(1); }
};

TEST(Scheduler, SingleWorkerParDoRunsBoth) {
  Scheduler::reset(1);
  int a = 0, b = 0;
  par_do([&] { a = 1; }, [&] { b = 2; });
  EXPECT_EQ(a, 1);
  EXPECT_EQ(b, 2);
}

TEST(Scheduler, SingleWorkerParallelForCoversRange) {
  Scheduler::reset(1);
  std::vector<int> hits(1000, 0);
  parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST_F(SchedulerMultiThread, ParDoRunsBoth) {
  std::atomic<int> sum{0};
  par_do([&] { sum += 1; }, [&] { sum += 2; });
  EXPECT_EQ(sum.load(), 3);
}

TEST_F(SchedulerMultiThread, NestedParDo) {
  std::atomic<int> sum{0};
  par_do(
      [&] {
        par_do([&] { sum += 1; }, [&] { sum += 2; });
      },
      [&] {
        par_do([&] { sum += 4; }, [&] { sum += 8; });
      });
  EXPECT_EQ(sum.load(), 15);
}

TEST_F(SchedulerMultiThread, DeepNesting) {
  // A full binary fork tree of depth 14 — 16384 leaves — exercises stealing
  // and the deque under load.
  std::atomic<std::int64_t> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    par_do([&] { recurse(depth - 1); }, [&] { recurse(depth - 1); });
  };
  recurse(14);
  EXPECT_EQ(leaves.load(), 16384);
}

TEST_F(SchedulerMultiThread, ParallelForEachIndexOnce) {
  std::vector<std::atomic<int>> hits(100000);
  parallel_for(0, hits.size(),
               [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(SchedulerMultiThread, ParallelForEmptyAndSingle) {
  int count = 0;
  parallel_for(5, 5, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(7, 8, [&](std::size_t i) { count += static_cast<int>(i); });
  EXPECT_EQ(count, 7);
}

TEST_F(SchedulerMultiThread, ParallelForSumMatches) {
  const std::size_t n = 1 << 18;
  std::vector<std::int64_t> data(n);
  parallel_for(0, n, [&](std::size_t i) { data[i] = static_cast<std::int64_t>(i); });
  std::int64_t expected = static_cast<std::int64_t>(n) * (n - 1) / 2;
  std::int64_t actual = std::accumulate(data.begin(), data.end(), std::int64_t{0});
  EXPECT_EQ(actual, expected);
}

TEST_F(SchedulerMultiThread, ExplicitGranularity) {
  std::vector<std::atomic<int>> hits(5000);
  parallel_for(
      0, hits.size(),
      [&](std::size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); }, 7);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(SchedulerMultiThread, BlockedForCoversAllBlocks) {
  const std::size_t n = 10000;
  std::vector<std::atomic<int>> hits(n);
  blocked_for(0, n, 997, [&](std::size_t, std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    }
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(SchedulerMultiThread, WorkerIdInRange) {
  std::atomic<bool> ok{true};
  parallel_for(0, 10000, [&](std::size_t) {
    int id = worker_id();
    if (id < 0 || id >= num_workers()) ok = false;
  });
  EXPECT_TRUE(ok.load());
  EXPECT_EQ(num_workers(), 4);
}

TEST(SchedulerDeque, PushPopLifo) {
  WorkStealingDeque deque;
  struct Noop final : Job {
    void execute() override { mark_done(); }
  };
  Noop a, b, c;
  EXPECT_TRUE(deque.push_bottom(&a));
  EXPECT_TRUE(deque.push_bottom(&b));
  EXPECT_TRUE(deque.push_bottom(&c));
  EXPECT_EQ(deque.pop_bottom(), &c);
  EXPECT_EQ(deque.pop_bottom(), &b);
  EXPECT_EQ(deque.pop_bottom(), &a);
  EXPECT_EQ(deque.pop_bottom(), nullptr);
}

TEST(SchedulerDeque, StealFifo) {
  WorkStealingDeque deque;
  struct Noop final : Job {
    void execute() override { mark_done(); }
  };
  Noop a, b;
  EXPECT_TRUE(deque.push_bottom(&a));
  EXPECT_TRUE(deque.push_bottom(&b));
  EXPECT_EQ(deque.steal_top(), &a);
  EXPECT_EQ(deque.pop_bottom(), &b);
  EXPECT_EQ(deque.steal_top(), nullptr);
}

TEST(SchedulerDeque, FullDequeRejectsPush) {
  WorkStealingDeque deque(/*capacity_log2=*/2);  // capacity 4
  struct Noop final : Job {
    void execute() override { mark_done(); }
  };
  Noop jobs[5];
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(deque.push_bottom(&jobs[i]));
  EXPECT_FALSE(deque.push_bottom(&jobs[4]));
}

}  // namespace
}  // namespace pasgal
