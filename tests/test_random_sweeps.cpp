// Randomized differential sweep: for a grid of (generator, seed) inputs,
// every parallel algorithm must agree with its sequential reference. This is
// the library's broadest property net — each case exercises the full
// pipeline (generator -> CSR -> algorithm -> normalization).
#include <gtest/gtest.h>

#include "algorithms/bcc/bcc.h"
#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/kcore/kcore.h"
#include "algorithms/scc/scc.h"
#include "algorithms/sssp/sssp.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

struct SweepCase {
  std::uint64_t seed;
  int workers;
};

class RandomSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam().workers); }
  void TearDown() override { Scheduler::reset(1); }

  // A different random digraph per seed: size, density and shape all vary.
  Graph make_digraph() const {
    std::uint64_t s = GetParam().seed;
    std::size_t n = 200 + hash64(s) % 1800;
    std::size_t m = n + hash64(s + 1) % (6 * n);
    switch (hash64(s + 2) % 3) {
      case 0:
        return gen::random_graph(n, m, s);
      case 1:
        return gen::rmat(11, m, s);
      default:
        return gen::road_grid(10 + hash64(s + 3) % 30, 10 + hash64(s + 4) % 50,
                              0.5 + (hash64(s + 5) % 40) / 100.0, s);
    }
  }
};

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSweep,
                         ::testing::Values(SweepCase{1, 1}, SweepCase{2, 1},
                                           SweepCase{3, 4}, SweepCase{4, 1},
                                           SweepCase{5, 4}, SweepCase{6, 1},
                                           SweepCase{7, 4}, SweepCase{8, 1},
                                           SweepCase{9, 4}, SweepCase{10, 1},
                                           SweepCase{11, 4}, SweepCase{12, 4}));

TEST_P(RandomSweep, BfsAgreement) {
  Graph g = make_digraph();
  Graph gt = g.transpose();
  VertexId src = static_cast<VertexId>(hash64(GetParam().seed + 10) % g.num_vertices());
  auto expected = seq_bfs(g, src);
  EXPECT_EQ(pasgal_bfs(g, gt, src), expected);
  EXPECT_EQ(gbbs_bfs(g, gt, src), expected);
  EXPECT_EQ(gapbs_bfs(g, gt, src), expected);
}

TEST_P(RandomSweep, SccAgreement) {
  Graph g = make_digraph();
  Graph gt = g.transpose();
  auto expected = normalize_scc_labels(tarjan_scc(g));
  EXPECT_EQ(normalize_scc_labels(pasgal_scc(g, gt)), expected);
  EXPECT_EQ(normalize_scc_labels(gbbs_scc(g, gt)), expected);
  EXPECT_EQ(normalize_scc_labels(multistep_scc(g, gt)), expected);
}

TEST_P(RandomSweep, BccAgreement) {
  Graph g = make_digraph().symmetrize();
  auto expected = normalize_bcc_labels(hopcroft_tarjan_bcc(g).edge_label);
  EXPECT_EQ(normalize_bcc_labels(fast_bcc(g).edge_label), expected);
  EXPECT_EQ(normalize_bcc_labels(gbbs_bcc(g).edge_label), expected);
  EXPECT_EQ(normalize_bcc_labels(tarjan_vishkin_bcc(g).edge_label), expected);
}

TEST_P(RandomSweep, SsspAgreement) {
  auto g = gen::add_weights(make_digraph(), 100, GetParam().seed + 20);
  VertexId src = static_cast<VertexId>(hash64(GetParam().seed + 21) % g.num_vertices());
  auto expected = dijkstra(g, src);
  EXPECT_EQ(rho_stepping(g, src), expected);
  EXPECT_EQ(delta_stepping(g, src, 64), expected);
  EXPECT_EQ(bellman_ford(g, src), expected);
}

TEST_P(RandomSweep, KcoreAndCcAgreement) {
  Graph g = make_digraph().symmetrize();
  EXPECT_EQ(pasgal_kcore(g), seq_kcore(g));
  EXPECT_EQ(label_prop_cc(g), connected_components(g).label);
}

}  // namespace
}  // namespace pasgal
