// BFS correctness: every parallel variant must produce exactly the
// sequential hop distances on a matrix of graph families, worker counts, and
// sources — plus VGC-specific behavioural checks.
#include <gtest/gtest.h>

#include "algorithms/bfs/bfs.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

struct BfsCase {
  std::string name;
  Graph g;
  bool symmetric;
};

std::vector<BfsCase> test_graphs() {
  std::vector<BfsCase> cases;
  cases.push_back({"empty1", Graph::from_edges(1, {}), true});
  cases.push_back({"two_isolated", Graph::from_edges(2, {}), true});
  cases.push_back({"self_loop", Graph::from_edges(2, std::vector<Edge>{{0, 0}, {0, 1}}), false});
  cases.push_back({"chain200", gen::chain(200), true});
  cases.push_back({"dchain200", gen::chain(200, true), false});
  cases.push_back({"cycle100", gen::cycle(100), false});
  cases.push_back({"star1000", gen::star(1000), true});
  cases.push_back({"tree4095", gen::binary_tree(4095), true});
  cases.push_back({"grid30x40", gen::rectangle_grid(30, 40), true});
  cases.push_back({"road20x50", gen::road_grid(20, 50, 0.7, 3), false});
  cases.push_back({"rmat11", gen::rmat(11, 20000, 5), false});
  cases.push_back({"random2k", gen::random_graph(2000, 10000, 9), false});
  cases.push_back({"knn2k", gen::knn_graph(2000, 4, 11), false});
  cases.push_back({"bubbles", gen::bubbles(20, 10), true});
  // Note: sampling directed edges independently breaks symmetry.
  cases.push_back({"disconnected", gen::sampled_edges(gen::rectangle_grid(20, 20), 0.5, 7), false});
  cases.push_back({"disconnected_sym",
                   gen::sampled_edges(gen::rectangle_grid(20, 20), 0.5, 7).symmetrize(),
                   true});
  return cases;
}

class BfsVariants : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, BfsVariants, ::testing::Values(1, 4));

TEST_P(BfsVariants, AllVariantsMatchSequential) {
  for (const auto& c : test_graphs()) {
    if (c.g.num_vertices() == 0) continue;
    Graph gt = c.symmetric ? c.g : c.g.transpose();
    for (VertexId source :
         {VertexId{0}, static_cast<VertexId>(c.g.num_vertices() / 2),
          static_cast<VertexId>(c.g.num_vertices() - 1)}) {
      auto expected = seq_bfs(c.g, source);
      EXPECT_EQ(gbbs_bfs(c.g, gt, source), expected)
          << "gbbs_bfs on " << c.name << " src=" << source;
      EXPECT_EQ(gapbs_bfs(c.g, gt, source), expected)
          << "gapbs_bfs on " << c.name << " src=" << source;
      EXPECT_EQ(pasgal_bfs(c.g, gt, source), expected)
          << "pasgal_bfs on " << c.name << " src=" << source;
    }
  }
}

TEST_P(BfsVariants, PasgalBfsTauSweep) {
  Graph g = gen::road_grid(15, 80, 0.75, 5);
  Graph gt = g.transpose();
  auto expected = seq_bfs(g, 0);
  for (std::uint32_t tau : {1u, 2u, 16u, 256u, 4096u}) {
    PasgalBfsParams p;
    p.vgc.tau = tau;
    EXPECT_EQ(pasgal_bfs(g, gt, 0, p), expected) << "tau=" << tau;
  }
}

TEST_P(BfsVariants, PasgalBfsNoDenseMatches)
{
  Graph g = gen::rmat(11, 30000, 3);
  Graph gt = g.transpose();
  auto expected = seq_bfs(g, 1);
  PasgalBfsParams p;
  p.use_dense = false;
  EXPECT_EQ(pasgal_bfs(g, gt, 1, p), expected);
}

TEST(BfsRounds, VgcReducesRoundsOnLargeDiameter) {
  Scheduler::reset(1);
  // A long skinny grid: diameter ~ 500. GBBS needs one round per level;
  // PASGAL's VGC should advance many hops per round.
  Graph g = gen::rectangle_grid(4, 500);
  RunStats gbbs_stats, pasgal_stats;
  auto a = gbbs_bfs(g, g, 0, &gbbs_stats);
  PasgalBfsParams p;
  p.vgc.tau = 512;
  auto b = pasgal_bfs(g, g, 0, p, &pasgal_stats);
  EXPECT_EQ(a, b);
  EXPECT_GT(gbbs_stats.rounds(), 400u);
  EXPECT_LT(pasgal_stats.rounds(), gbbs_stats.rounds() / 5)
      << "VGC should cut rounds by ~tau-driven factor";
}

TEST(BfsRounds, DirectionOptimizationKicksInOnSocialGraphs) {
  Scheduler::reset(1);
  Graph g = gen::rmat(13, 120000, 3);
  Graph gt = g.transpose();
  RunStats stats;
  // Pick a high-degree source so the frontier explodes.
  VertexId best = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_degree(v) > g.out_degree(best)) best = v;
  }
  auto d = pasgal_bfs(g, gt, best, {}, &stats);
  EXPECT_EQ(d, seq_bfs(g, best));
  // Low-diameter graph: few rounds.
  EXPECT_LT(stats.rounds(), 40u);
}

TEST(BfsStats, EdgesScannedAtLeastReachableEdges) {
  Scheduler::reset(1);
  Graph g = gen::rectangle_grid(10, 100);
  RunStats stats;
  pasgal_bfs(g, g, 0, {}, &stats);
  EXPECT_GE(stats.edges_scanned(), g.num_edges());  // every edge looked at
  EXPECT_GE(stats.vertices_visited(), g.num_vertices());
}

TEST(BfsSeq, HandlesUnreachable) {
  Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}});
  auto d = seq_bfs(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kInfDist);
  EXPECT_EQ(d[3], kInfDist);
}

TEST(BfsSeq, DistancesOnChain) {
  Graph g = gen::chain(50);
  auto d = seq_bfs(g, 10);
  for (VertexId v = 0; v < 50; ++v) {
    EXPECT_EQ(d[v], static_cast<std::uint32_t>(std::abs(static_cast<int>(v) - 10)));
  }
}

}  // namespace
}  // namespace pasgal
