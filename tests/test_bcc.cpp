// BCC correctness: fast_bcc and tarjan_vishkin_bcc must induce the same
// edge partition as sequential Hopcroft-Tarjan on a matrix of symmetrized
// graph families, plus structural checks (articulation points, bridges)
// against brute force.
#include <gtest/gtest.h>

#include <set>

#include "algorithms/bcc/bcc.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

std::vector<std::pair<std::string, Graph>> bcc_graphs() {
  std::vector<std::pair<std::string, Graph>> cases;
  cases.emplace_back("single_edge", gen::chain(2));
  cases.emplace_back("triangle", gen::cycle(3).symmetrize());
  cases.emplace_back("square", gen::cycle(4).symmetrize());
  cases.emplace_back("chain", gen::chain(120));
  cases.emplace_back("star", gen::star(60));
  cases.emplace_back("tree", gen::binary_tree(255));
  cases.emplace_back("two_triangles_shared_vertex", [] {
    std::vector<Edge> e = {{0, 1}, {1, 2}, {2, 0}, {0, 3}, {3, 4}, {4, 0}};
    return Graph::from_edges(5, e).symmetrize();
  }());
  cases.emplace_back("barbell", [] {
    // two 5-cliques joined by a path of length 3
    std::vector<Edge> e;
    for (VertexId i = 0; i < 5; ++i) {
      for (VertexId j = 0; j < 5; ++j) {
        if (i != j) {
          e.push_back({i, j});
          e.push_back({static_cast<VertexId>(i + 8), static_cast<VertexId>(j + 8)});
        }
      }
    }
    e.push_back({4, 5});
    e.push_back({5, 6});
    e.push_back({6, 7});
    e.push_back({7, 8});
    return Graph::from_edges(13, e).symmetrize();
  }());
  cases.emplace_back("theta", [] {
    // two vertices joined by three disjoint paths: one BCC
    std::vector<Edge> e = {{0, 2}, {2, 1}, {0, 3}, {3, 1}, {0, 4}, {4, 5}, {5, 1}};
    return Graph::from_edges(6, e).symmetrize();
  }());
  cases.emplace_back("grid", gen::rectangle_grid(12, 15));
  cases.emplace_back("bubbles", gen::bubbles(12, 7));
  cases.emplace_back("sampled_grid",
                     gen::sampled_edges(gen::rectangle_grid(18, 18), 0.55, 7)
                         .symmetrize());
  cases.emplace_back("rmat", gen::rmat(10, 8000, 5).symmetrize());
  cases.emplace_back("random1", gen::random_graph(800, 1600, 11).symmetrize());
  cases.emplace_back("random2", gen::random_graph(400, 3000, 12).symmetrize());
  cases.emplace_back("knn", gen::knn_graph(1200, 3, 19).symmetrize());
  cases.emplace_back("isolated_mix", [] {
    std::vector<Edge> e = {{2, 3}, {3, 4}, {4, 2}};
    return Graph::from_edges(8, e).symmetrize();
  }());
  return cases;
}

class BccTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, BccTest, ::testing::Values(1, 4));

TEST_P(BccTest, FastBccMatchesHopcroftTarjan) {
  for (const auto& [name, g] : bcc_graphs()) {
    auto expected = hopcroft_tarjan_bcc(g);
    auto got = fast_bcc(g);
    EXPECT_EQ(normalize_bcc_labels(got.edge_label),
              normalize_bcc_labels(expected.edge_label))
        << name;
    EXPECT_EQ(got.num_bccs, expected.num_bccs) << name;
  }
}

TEST_P(BccTest, TarjanVishkinMatchesHopcroftTarjan) {
  for (const auto& [name, g] : bcc_graphs()) {
    auto expected = hopcroft_tarjan_bcc(g);
    auto got = tarjan_vishkin_bcc(g);
    EXPECT_EQ(normalize_bcc_labels(got.edge_label),
              normalize_bcc_labels(expected.edge_label))
        << name;
    EXPECT_EQ(got.num_bccs, expected.num_bccs) << name;
  }
}

TEST_P(BccTest, GbbsBccMatchesHopcroftTarjan) {
  for (const auto& [name, g] : bcc_graphs()) {
    auto expected = hopcroft_tarjan_bcc(g);
    auto got = gbbs_bcc(g);
    EXPECT_EQ(normalize_bcc_labels(got.edge_label),
              normalize_bcc_labels(expected.edge_label))
        << name;
    EXPECT_EQ(got.num_bccs, expected.num_bccs) << name;
  }
}

TEST(BccRounds, GbbsBccNeedsDiameterRounds) {
  Scheduler::reset(1);
  Graph g = gen::rectangle_grid(3, 800);  // diameter ~ 800
  RunStats fast_stats, gbbs_stats;
  auto a = fast_bcc(g, &fast_stats);
  auto b = gbbs_bcc(g, &gbbs_stats);
  EXPECT_EQ(normalize_bcc_labels(a.edge_label),
            normalize_bcc_labels(b.edge_label));
  EXPECT_GT(gbbs_stats.rounds(), 700u);
  EXPECT_LT(fast_stats.rounds(), 30u);
}

TEST_P(BccTest, BothCopiesAgree) {
  Graph g = gen::rectangle_grid(10, 12);
  for (auto result : {fast_bcc(g), tarjan_vishkin_bcc(g), hopcroft_tarjan_bcc(g)}) {
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
        VertexId v = g.edge_target(e);
        auto nbrs = g.neighbors(v);
        auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
        EdgeId rev = g.edge_begin(v) + static_cast<EdgeId>(it - nbrs.begin());
        EXPECT_EQ(result.edge_label[e], result.edge_label[rev]);
      }
    }
  }
}

TEST_P(BccTest, TreeHasOneBccPerEdge) {
  Graph g = gen::binary_tree(127);
  auto result = fast_bcc(g);
  EXPECT_EQ(result.num_bccs, 126u);  // every edge is a bridge
  EXPECT_EQ(count_bridges(g, result), 126u);
}

TEST_P(BccTest, CycleIsOneBcc) {
  Graph g = gen::cycle(50).symmetrize();
  auto result = fast_bcc(g);
  EXPECT_EQ(result.num_bccs, 1u);
  EXPECT_EQ(count_bridges(g, result), 0u);
}

TEST_P(BccTest, CliqueIsOneBcc) {
  Graph g = gen::complete(12).symmetrize();
  EXPECT_EQ(fast_bcc(g).num_bccs, 1u);
  EXPECT_EQ(tarjan_vishkin_bcc(g).num_bccs, 1u);
}

// Brute-force articulation points: v is articulation iff removing it
// increases the number of connected components among the remaining vertices
// of its component.
std::vector<VertexId> brute_articulation(const Graph& g) {
  std::size_t n = g.num_vertices();
  auto count_cc_excluding = [&](VertexId excluded) {
    std::vector<std::uint8_t> seen(n, 0);
    std::size_t comps = 0;
    for (VertexId s = 0; s < n; ++s) {
      if (s == excluded || seen[s] || g.out_degree(s) == 0) continue;
      // skip isolated-after-removal vertices consistently: count all
      // non-excluded vertices reachable
      ++comps;
      std::vector<VertexId> stack = {s};
      seen[s] = 1;
      while (!stack.empty()) {
        VertexId u = stack.back();
        stack.pop_back();
        for (VertexId w : g.neighbors(u)) {
          if (w != excluded && !seen[w]) {
            seen[w] = 1;
            stack.push_back(w);
          }
        }
      }
    }
    return comps;
  };
  std::size_t base = count_cc_excluding(static_cast<VertexId>(n));  // no removal
  std::vector<VertexId> out;
  for (VertexId v = 0; v < n; ++v) {
    if (g.out_degree(v) == 0) continue;
    std::size_t without = count_cc_excluding(v);
    // Removing a degree>0 vertex removes its own trivial contribution; v is
    // an articulation iff the remainder splits into more pieces.
    std::size_t isolated_by_removal = 0;
    for (VertexId w : g.neighbors(v)) {
      if (g.out_degree(w) == 1) ++isolated_by_removal;
    }
    (void)isolated_by_removal;
    if (without > base) out.push_back(v);
  }
  return out;
}

TEST_P(BccTest, ArticulationPointsMatchBruteForce) {
  for (const auto& [name, g] : bcc_graphs()) {
    if (g.num_vertices() > 300) continue;  // brute force is quadratic
    auto result = fast_bcc(g);
    auto got = articulation_points(g, result);
    auto expected = brute_articulation(g);
    EXPECT_EQ(got, expected) << name;
  }
}

TEST_P(BccTest, BarbellStructure) {
  // Two cliques + path: cliques are one BCC each, each path edge its own.
  const auto& cases = bcc_graphs();
  for (const auto& [name, g] : cases) {
    if (name != "barbell") continue;
    auto result = fast_bcc(g);
    EXPECT_EQ(result.num_bccs, 2u + 4u);
    EXPECT_EQ(count_bridges(g, result), 4u);
    auto arts = articulation_points(g, result);
    EXPECT_EQ(arts, (std::vector<VertexId>{4, 5, 6, 7, 8}));
  }
}

TEST_P(BccTest, EmptyAndEdgelessGraphs) {
  Graph empty = Graph::from_edges(0, {});
  EXPECT_EQ(fast_bcc(empty).num_bccs, 0u);
  Graph edgeless = Graph::from_edges(10, {});
  auto r = fast_bcc(edgeless);
  EXPECT_EQ(r.num_bccs, 0u);
  EXPECT_EQ(tarjan_vishkin_bcc(edgeless).num_bccs, 0u);
  EXPECT_EQ(hopcroft_tarjan_bcc(edgeless).num_bccs, 0u);
}

}  // namespace
}  // namespace pasgal
