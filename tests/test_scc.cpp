// SCC correctness: all parallel variants must induce the same partition as
// Tarjan's algorithm across directed graph families, plus behavioural checks
// on round counts (the paper's headline claim).
#include <gtest/gtest.h>

#include "algorithms/scc/scc.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

// Reference partition via Kosaraju (independent of Tarjan, catching shared
// bugs): order by finish time on g, then flood on gt.
std::vector<VertexId> kosaraju(const Graph& g, const Graph& gt) {
  std::size_t n = g.num_vertices();
  std::vector<std::uint8_t> seen(n, 0);
  std::vector<VertexId> order;
  order.reserve(n);
  // Iterative DFS computing reverse-finish order.
  struct Frame {
    VertexId v;
    EdgeId next;
  };
  for (VertexId s = 0; s < n; ++s) {
    if (seen[s]) continue;
    std::vector<Frame> stack{{s, g.edge_begin(s)}};
    seen[s] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      if (f.next < g.edge_end(f.v)) {
        VertexId w = g.edge_target(f.next++);
        if (!seen[w]) {
          seen[w] = 1;
          stack.push_back({w, g.edge_begin(w)});
        }
      } else {
        order.push_back(f.v);
        stack.pop_back();
      }
    }
  }
  std::vector<VertexId> label(n, kInvalidVertex);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    if (label[*it] != kInvalidVertex) continue;
    std::vector<VertexId> stack = {*it};
    label[*it] = *it;
    while (!stack.empty()) {
      VertexId u = stack.back();
      stack.pop_back();
      for (VertexId v : gt.neighbors(u)) {
        if (label[v] == kInvalidVertex) {
          label[v] = *it;
          stack.push_back(v);
        }
      }
    }
  }
  // Normalize to min-vertex representative.
  std::vector<VertexId> min_rep(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    VertexId r = label[v];
    if (min_rep[r] == kInvalidVertex || v < min_rep[r]) min_rep[r] = v;
  }
  std::vector<VertexId> out(n);
  for (VertexId v = 0; v < n; ++v) out[v] = min_rep[label[v]];
  return out;
}

std::vector<std::pair<std::string, Graph>> scc_graphs() {
  std::vector<std::pair<std::string, Graph>> cases;
  cases.emplace_back("single", Graph::from_edges(1, {}));
  cases.emplace_back("self_loops",
                     Graph::from_edges(3, std::vector<Edge>{{0, 0}, {1, 1}, {0, 1}}));
  cases.emplace_back("dchain", gen::chain(300, /*directed=*/true));
  cases.emplace_back("cycle", gen::cycle(257));
  cases.emplace_back("two_cycles_bridge", [] {
    std::vector<Edge> edges;
    for (VertexId i = 0; i < 50; ++i) edges.push_back({i, static_cast<VertexId>((i + 1) % 50)});
    for (VertexId i = 50; i < 120; ++i) {
      edges.push_back({i, static_cast<VertexId>(i + 1 == 120 ? 50 : i + 1)});
    }
    edges.push_back({3, 70});  // one-way bridge: two separate SCCs
    return Graph::from_edges(120, edges);
  }());
  cases.emplace_back("rmat", gen::rmat(11, 16000, 7));
  cases.emplace_back("random_sparse", gen::random_graph(3000, 6000, 5));
  cases.emplace_back("random_dense", gen::random_graph(500, 6000, 6));
  cases.emplace_back("road", gen::road_grid(15, 60, 0.75, 9));
  cases.emplace_back("road_oneway_heavy", gen::road_grid(12, 40, 0.35, 4));
  cases.emplace_back("dag_grid", [] {
    // Directed acyclic grid: every vertex its own SCC.
    std::vector<Edge> edges;
    for (VertexId r = 0; r < 12; ++r) {
      for (VertexId c = 0; c < 12; ++c) {
        VertexId v = r * 12 + c;
        if (c + 1 < 12) edges.push_back({v, v + 1});
        if (r + 1 < 12) edges.push_back({v, v + 12});
      }
    }
    return Graph::from_edges(144, edges);
  }());
  return cases;
}

class SccTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, SccTest, ::testing::Values(1, 4));

TEST_P(SccTest, TarjanMatchesKosaraju) {
  for (const auto& [name, g] : scc_graphs()) {
    Graph gt = g.transpose();
    auto t = tarjan_scc(g);
    EXPECT_EQ(normalize_scc_labels(t), kosaraju(g, gt)) << name;
  }
}

TEST_P(SccTest, PasgalMatchesTarjan) {
  for (const auto& [name, g] : scc_graphs()) {
    Graph gt = g.transpose();
    auto expected = kosaraju(g, gt);
    auto got = pasgal_scc(g, gt);
    EXPECT_EQ(normalize_scc_labels(got), expected) << name;
  }
}

TEST_P(SccTest, GbbsMatchesTarjan) {
  for (const auto& [name, g] : scc_graphs()) {
    Graph gt = g.transpose();
    EXPECT_EQ(normalize_scc_labels(gbbs_scc(g, gt)), kosaraju(g, gt)) << name;
  }
}

TEST_P(SccTest, MultistepMatchesTarjan) {
  for (const auto& [name, g] : scc_graphs()) {
    Graph gt = g.transpose();
    MultistepParams p;
    p.sequential_cutoff = 50;  // exercise coloring even on small graphs
    EXPECT_EQ(normalize_scc_labels(multistep_scc(g, gt, p)), kosaraju(g, gt))
        << name;
  }
}

TEST_P(SccTest, PasgalSeedsAgree) {
  Graph g = gen::rmat(11, 16000, 7);
  Graph gt = g.transpose();
  auto a = normalize_scc_labels(pasgal_scc(g, gt, {.seed = 1}));
  auto b = normalize_scc_labels(pasgal_scc(g, gt, {.seed = 99}));
  EXPECT_EQ(a, b);
}

TEST_P(SccTest, PasgalTauSweep) {
  Graph g = gen::road_grid(10, 80, 0.7, 13);
  Graph gt = g.transpose();
  auto expected = kosaraju(g, gt);
  for (std::uint32_t tau : {1u, 4u, 64u, 2048u}) {
    SccParams p;
    p.vgc.tau = tau;
    EXPECT_EQ(normalize_scc_labels(pasgal_scc(g, gt, p)), expected)
        << "tau=" << tau;
  }
}

TEST_P(SccTest, NoDenseStillCorrect) {
  Graph g = gen::rmat(10, 8000, 21);
  Graph gt = g.transpose();
  SccParams p;
  p.use_dense = false;
  EXPECT_EQ(normalize_scc_labels(pasgal_scc(g, gt, p)), kosaraju(g, gt));
}

TEST(SccRounds, VgcReducesRoundsOnRoadGraphs) {
  Scheduler::reset(1);
  Graph g = gen::road_grid(8, 400, 0.9, 3);  // long strip, mostly two-way
  Graph gt = g.transpose();
  RunStats pasgal_stats, gbbs_stats;
  auto a = pasgal_scc(g, gt, {}, &pasgal_stats);
  auto b = gbbs_scc(g, gt, {}, &gbbs_stats);
  EXPECT_EQ(normalize_scc_labels(a), normalize_scc_labels(b));
  EXPECT_LT(pasgal_stats.rounds() * 3, gbbs_stats.rounds())
      << "VGC must collapse reachability rounds on large-diameter graphs";
}

TEST(SccStructure, GiantSccDetected) {
  Scheduler::reset(1);
  Graph g = gen::cycle(1000);
  Graph gt = g.transpose();
  auto labels = normalize_scc_labels(pasgal_scc(g, gt));
  for (VertexId v = 0; v < 1000; ++v) EXPECT_EQ(labels[v], 0u);
}

TEST(SccStructure, DagAllSingletons) {
  Scheduler::reset(1);
  Graph g = gen::chain(500, /*directed=*/true);
  Graph gt = g.transpose();
  auto labels = normalize_scc_labels(pasgal_scc(g, gt));
  for (VertexId v = 0; v < 500; ++v) EXPECT_EQ(labels[v], v);
}

}  // namespace
}  // namespace pasgal
