// SSSP correctness: stepping (rho/delta, with and without VGC) and
// Bellman-Ford must match Dijkstra exactly on weighted graph families.
#include <gtest/gtest.h>

#include <limits>

#include "algorithms/sssp/sssp.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

using WGraph = WeightedGraph<std::uint32_t>;

std::vector<std::pair<std::string, WGraph>> sssp_graphs() {
  std::vector<std::pair<std::string, WGraph>> cases;
  cases.emplace_back("single", gen::add_weights(Graph::from_edges(1, {}), 10, 1));
  cases.emplace_back("chain", gen::add_weights(gen::chain(400), 50, 2));
  cases.emplace_back("dchain", gen::add_weights(gen::chain(300, true), 50, 3));
  cases.emplace_back("grid", gen::add_weights(gen::rectangle_grid(25, 30), 100, 4));
  cases.emplace_back("road", gen::add_weights(gen::road_grid(15, 50, 0.7, 5), 1000, 5));
  cases.emplace_back("rmat", gen::add_weights(gen::rmat(11, 20000, 6), 100, 6));
  cases.emplace_back("random", gen::add_weights(gen::random_graph(2000, 12000, 7), 64, 7));
  cases.emplace_back("knn", gen::add_weights(gen::knn_graph(1500, 4, 8), 100, 8));
  cases.emplace_back("star", gen::add_weights(gen::star(500), 9, 9));
  cases.emplace_back("uniform_weight_1", gen::add_weights(gen::rectangle_grid(20, 20), 1, 10));
  cases.emplace_back("disconnected",
                     gen::add_weights(gen::sampled_edges(gen::rectangle_grid(20, 20), 0.5, 11)
                                          .symmetrize(),
                                      30, 11));
  return cases;
}

class SsspTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, SsspTest, ::testing::Values(1, 4));

TEST_P(SsspTest, BellmanFordMatchesDijkstra) {
  for (const auto& [name, g] : sssp_graphs()) {
    for (VertexId src : {VertexId{0}, static_cast<VertexId>(g.num_vertices() / 2)}) {
      EXPECT_EQ(bellman_ford(g, src), dijkstra(g, src)) << name << " src=" << src;
    }
  }
}

TEST_P(SsspTest, RhoSteppingMatchesDijkstra) {
  for (const auto& [name, g] : sssp_graphs()) {
    for (VertexId src : {VertexId{0}, static_cast<VertexId>(g.num_vertices() - 1)}) {
      EXPECT_EQ(rho_stepping(g, src), dijkstra(g, src)) << name << " src=" << src;
    }
  }
}

TEST_P(SsspTest, DeltaSteppingMatchesDijkstra) {
  for (const auto& [name, g] : sssp_graphs()) {
    auto expected = dijkstra(g, 0);
    for (Dist delta : {Dist{1}, Dist{16}, Dist{256}}) {
      EXPECT_EQ(delta_stepping(g, 0, delta), expected)
          << name << " delta=" << delta;
    }
  }
}

TEST_P(SsspTest, SteppingWithoutVgcMatches) {
  auto g = gen::add_weights(gen::road_grid(12, 40, 0.7, 13), 100, 13);
  auto expected = dijkstra(g, 0);
  SteppingParams p;
  p.vgc.tau = 1;  // VGC off
  EXPECT_EQ(stepping_sssp(g, 0, p), expected);
}

TEST_P(SsspTest, SteppingTauSweep) {
  auto g = gen::add_weights(gen::rectangle_grid(10, 60), 50, 14);
  auto expected = dijkstra(g, 5);
  for (std::uint32_t tau : {1u, 8u, 128u, 4096u}) {
    SteppingParams p;
    p.vgc.tau = tau;
    EXPECT_EQ(stepping_sssp(g, 5, p), expected) << "tau=" << tau;
  }
}

TEST_P(SsspTest, RhoSweep) {
  auto g = gen::add_weights(gen::random_graph(1500, 9000, 15), 100, 15);
  auto expected = dijkstra(g, 1);
  for (std::size_t rho : {std::size_t{1}, std::size_t{64}, std::size_t{100000}}) {
    SteppingParams p;
    p.rho = rho;
    EXPECT_EQ(stepping_sssp(g, 1, p), expected) << "rho=" << rho;
  }
}

TEST_P(SsspTest, DeltaNearSaturationTerminates) {
  // Regression: delta is a 64-bit Dist, so base + delta used to wrap and
  // produce a threshold *below* base — no entry ever settled and the step
  // loop re-inserted the same bucket forever. A saturating threshold must
  // settle everything instead, degenerating into one big step.
  auto g = gen::add_weights(gen::rectangle_grid(20, 25), 100, 18);
  auto expected = dijkstra(g, 0);
  for (Dist delta : {kInfWeightDist, std::numeric_limits<Dist>::max(),
                     std::numeric_limits<Dist>::max() - 1}) {
    EXPECT_EQ(delta_stepping(g, 0, delta), expected) << "delta=" << delta;
  }
}

TEST_P(SsspTest, UnreachableVerticesAreInf) {
  auto g = gen::add_weights(
      Graph::from_edges(4, std::vector<Edge>{{0, 1}, {2, 3}}), 10, 16);
  auto d = rho_stepping(g, 0);
  EXPECT_EQ(d[0], 0u);
  EXPECT_LT(d[1], kInfWeightDist);
  EXPECT_EQ(d[2], kInfWeightDist);
  EXPECT_EQ(d[3], kInfWeightDist);
}

TEST_P(SsspTest, WeightedShorterThanFewerHops) {
  // 0->1->2 with weights 1+1, plus direct 0->2 with weight 5: SSSP must take
  // the two-hop path.
  std::vector<WeightedEdge<std::uint32_t>> edges = {
      {0, 1, 1}, {1, 2, 1}, {0, 2, 5}};
  auto g = WGraph::from_edges(3, edges);
  for (auto d : {dijkstra(g, 0), rho_stepping(g, 0), bellman_ford(g, 0),
                 delta_stepping(g, 0, 4)}) {
    EXPECT_EQ(d[2], 2u);
  }
}

TEST(SsspRounds, SteppingBeatsBellmanFordRoundsOnChain) {
  Scheduler::reset(1);
  auto g = gen::add_weights(gen::chain(3000), 10, 17);
  RunStats bf_stats, step_stats;
  auto a = bellman_ford(g, 0, &bf_stats);
  auto b = rho_stepping(g, 0, &step_stats);
  EXPECT_EQ(a, b);
  EXPECT_GT(bf_stats.rounds(), 2000u);
  EXPECT_LT(step_stats.rounds(), bf_stats.rounds() / 5);
}

}  // namespace
}  // namespace pasgal
