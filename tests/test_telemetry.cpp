// Telemetry subsystem: round traces, scheduler counter deltas, JSON
// round-trip, and the metrics-document schema contract.
#include <gtest/gtest.h>

#include "algorithms/bfs/bfs.h"
#include "graphs/generators.h"
#include "parlay/parallel.h"
#include "pasgal/telemetry.h"

namespace pasgal {
namespace {

class Telemetry : public ::testing::Test {
 protected:
  void SetUp() override { Scheduler::reset(4); }
  void TearDown() override { Scheduler::reset(1); }
};

// --- round traces -----------------------------------------------------------

TEST_F(Telemetry, RoundTraceRecordsDeltasAndCumulatives) {
  Tracer t;
  t.add_edges(10);
  t.add_visits(3);
  t.end_round(5, RoundKind::kSparse);
  t.add_edges(7);
  t.end_round(2, RoundKind::kDense);
  RunTelemetry agg = t.aggregate();
  ASSERT_EQ(agg.rounds.size(), 2u);
  EXPECT_EQ(agg.rounds[0].index, 0u);
  EXPECT_EQ(agg.rounds[0].frontier, 5u);
  EXPECT_EQ(agg.rounds[0].kind, RoundKind::kSparse);
  EXPECT_EQ(agg.rounds[0].edges, 10u);
  EXPECT_EQ(agg.rounds[0].visits, 3u);
  EXPECT_EQ(agg.rounds[0].cum_edges, 10u);
  EXPECT_EQ(agg.rounds[1].kind, RoundKind::kDense);
  EXPECT_EQ(agg.rounds[1].edges, 7u);
  EXPECT_EQ(agg.rounds[1].cum_edges, 17u);
  EXPECT_EQ(agg.rounds[1].cum_visits, 3u);
  EXPECT_EQ(agg.edges_scanned, 17u);
  EXPECT_EQ(agg.max_frontier, 5u);
}

TEST_F(Telemetry, PendingKindConsumedByEndRound) {
  Tracer t;
  t.set_round_kind(RoundKind::kDense);
  t.end_round(1);
  t.end_round(1);  // pending kind was consumed: defaults back to sparse
  RunTelemetry agg = t.aggregate();
  ASSERT_EQ(agg.rounds.size(), 2u);
  EXPECT_EQ(agg.rounds[0].kind, RoundKind::kDense);
  EXPECT_EQ(agg.rounds[1].kind, RoundKind::kSparse);
}

TEST_F(Telemetry, LegacyInterfaceStillWorks) {
  Tracer t;
  t.add_edges(4);
  t.add_visits(2);
  t.end_round(9);
  EXPECT_EQ(t.edges_scanned(), 4u);
  EXPECT_EQ(t.vertices_visited(), 2u);
  EXPECT_EQ(t.rounds(), 1u);
  EXPECT_EQ(t.max_frontier(), 9u);
  t.reset();
  EXPECT_EQ(t.edges_scanned(), 0u);
  EXPECT_EQ(t.rounds(), 0u);
}

TEST_F(Telemetry, ParallelHotCountersAreExact) {
  Tracer t;
  parallel_for(0, 50000, [&](std::size_t) {
    t.add_edges(1);
    t.add_visits(2);
  });
  EXPECT_EQ(t.edges_scanned(), 50000u);
  EXPECT_EQ(t.vertices_visited(), 100000u);
}

TEST_F(Telemetry, DepthHistogramBucketsByLog2) {
  Tracer t;
  t.add_local_depth(0);   // bucket 0
  t.add_local_depth(1);   // bucket 1
  t.add_local_depth(2);   // bucket 2
  t.add_local_depth(3);   // bucket 2
  t.add_local_depth(4);   // bucket 3
  RunTelemetry agg = t.aggregate();
  EXPECT_EQ(agg.vgc_depth_hist[0], 1u);
  EXPECT_EQ(agg.vgc_depth_hist[1], 1u);
  EXPECT_EQ(agg.vgc_depth_hist[2], 2u);
  EXPECT_EQ(agg.vgc_depth_hist[3], 1u);
  std::uint64_t total = 0;
  for (auto c : agg.vgc_depth_hist) total += c;
  EXPECT_EQ(total, 5u);
}

TEST_F(Telemetry, PhasesNestSequentially) {
  Tracer t;
  t.phase_begin("a");
  t.phase_begin("b");  // auto-closes "a"
  t.phase_end();
  RunTelemetry agg = t.aggregate();
  ASSERT_EQ(agg.phases.size(), 2u);
  EXPECT_EQ(agg.phases[0].name, "a");
  EXPECT_EQ(agg.phases[1].name, "b");
}

// --- scheduler counters -----------------------------------------------------

TEST_F(Telemetry, SchedulerCountersNonzeroWhenParallel) {
  Tracer t;  // snapshots the epoch at construction
  // Whether a steal happens is timing-dependent (idle workers sleep), so
  // repeat a chunky workload until one is observed; each task spins long
  // enough for the thieves to wake up.
  WorkerCounters total;
  for (int attempt = 0; attempt < 200 && total.steals == 0; ++attempt) {
    std::atomic<std::uint64_t> sink{0};
    parallel_for(
        0, 256,
        [&](std::size_t i) {
          volatile std::uint64_t x = i;
          for (int k = 0; k < 20000; ++k) x += k;
          sink.fetch_add(x, std::memory_order_relaxed);
        },
        1);
    total = t.aggregate().scheduler.total();
  }
  RunTelemetry agg = t.aggregate();
  EXPECT_EQ(agg.scheduler.per_worker.size(), 4u);
  EXPECT_GT(total.steals, 0u);
  EXPECT_GT(total.tasks, 0u);
  EXPECT_GT(total.busy_ns, 0u);
}

TEST(TelemetrySingleThread, SchedulerCountersZeroWhenSequential) {
  Scheduler::reset(1);
  Tracer t;
  std::uint64_t sink = 0;
  parallel_for(0, 1 << 14, [&](std::size_t i) { sink += i; });
  RunTelemetry agg = t.aggregate();
  WorkerCounters total = agg.scheduler.total();
  EXPECT_EQ(agg.scheduler.per_worker.size(), 1u);
  EXPECT_EQ(total.steals, 0u);
  EXPECT_EQ(total.busy_ns, 0u);
  EXPECT_GT(sink, 0u);
}

// --- end-to-end: traced BFS -------------------------------------------------

TEST_F(Telemetry, TracedBfsMatchesLegacyAndRecordsStructure) {
  Graph g = gen::rmat(11, 20000, 5);
  Graph gt = g.transpose();
  auto legacy = pasgal_bfs(g, gt, 0);

  AlgoOptions opt;
  opt.source = 0;
  RunReport<std::vector<std::uint32_t>> report = pasgal_bfs(g, gt, opt);
  EXPECT_EQ(report.output, legacy);
  EXPECT_GT(report.seconds, 0.0);

  const RunTelemetry& tel = report.telemetry;
  EXPECT_GT(tel.rounds.size(), 0u);
  EXPECT_GT(tel.edges_scanned, 0u);
  EXPECT_GT(tel.hashbag.inserts, 0u);
  EXPECT_GT(tel.hashbag.extracts, 0u);
  EXPECT_GE(tel.hashbag.peak_extract, 1u);

  // Cumulative counters are monotone and end at the totals.
  std::uint64_t prev_ce = 0, prev_cv = 0;
  for (std::size_t i = 0; i < tel.rounds.size(); ++i) {
    const RoundTrace& r = tel.rounds[i];
    EXPECT_EQ(r.index, i);
    EXPECT_GE(r.cum_edges, prev_ce);
    EXPECT_GE(r.cum_visits, prev_cv);
    prev_ce = r.cum_edges;
    prev_cv = r.cum_visits;
  }
  EXPECT_LE(prev_ce, tel.edges_scanned);
  EXPECT_LE(prev_cv, tel.vertices_visited);
}

TEST_F(Telemetry, VgcRunRecordsLocalRoundsAndDepths) {
  // A long chain with small tau forces VGC local searches.
  Graph g = gen::chain(4000, true);
  Graph gt = g.transpose();
  AlgoOptions opt;
  opt.vgc.tau = 64;
  RunReport<std::vector<std::uint32_t>> report = pasgal_bfs(g, gt, opt);
  const RunTelemetry& tel = report.telemetry;
  bool any_local = false;
  for (const RoundTrace& r : tel.rounds) {
    if (r.kind == RoundKind::kLocal) any_local = true;
  }
  EXPECT_TRUE(any_local);
  std::uint64_t searches = 0;
  for (auto c : tel.vgc_depth_hist) searches += c;
  EXPECT_GT(searches, 0u);
}

TEST_F(Telemetry, ExternalTracerSeesTheRun) {
  Graph g = gen::rectangle_grid(30, 30);
  Tracer tracer;
  AlgoOptions opt;
  opt.tracer = &tracer;
  RunReport<std::vector<std::uint32_t>> report = pasgal_bfs(g, g, opt);
  EXPECT_EQ(tracer.rounds(), report.telemetry.rounds.size());
  EXPECT_EQ(tracer.edges_scanned(), report.telemetry.edges_scanned);
}

// --- JSON parser ------------------------------------------------------------

TEST(Json, ParsesScalarsArraysObjects) {
  json::Value v;
  ASSERT_TRUE(json::parse("{\"a\": [1, 2.5, -3], \"b\": {\"c\": true, "
                          "\"d\": null}, \"e\": \"x\\n\\\"y\\u0041\"}",
                          v)
                  .ok());
  ASSERT_TRUE(v.is_object());
  const json::Value* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->array.size(), 3u);
  EXPECT_EQ(a->array[0].number, 1.0);
  EXPECT_EQ(a->array[1].number, 2.5);
  EXPECT_EQ(a->array[2].number, -3.0);
  const json::Value* b = v.find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(b->find("c")->boolean);
  EXPECT_EQ(b->find("d")->kind, json::Value::Kind::kNull);
  EXPECT_EQ(v.find("e")->str, "x\n\"yA");
  EXPECT_EQ(v.find("zzz"), nullptr);
}

TEST(Json, RejectsMalformedInput) {
  json::Value v;
  EXPECT_FALSE(json::parse("", v).ok());
  EXPECT_FALSE(json::parse("{", v).ok());
  EXPECT_FALSE(json::parse("{\"a\": }", v).ok());
  EXPECT_FALSE(json::parse("[1, 2,]", v).ok());
  EXPECT_FALSE(json::parse("\"unterminated", v).ok());
  EXPECT_FALSE(json::parse("{} trailing", v).ok());
  EXPECT_FALSE(json::parse("nul", v).ok());
}

TEST(Json, EscapeRoundTripsThroughParser) {
  std::string nasty = "tab\there \"quotes\" back\\slash\nnewline \x01ctl";
  json::Value v;
  ASSERT_TRUE(json::parse("\"" + json::escape(nasty) + "\"", v).ok());
  EXPECT_EQ(v.str, nasty);
}

// --- metrics document schema ------------------------------------------------

MetricsDoc sample_doc(int trials) {
  Graph g = gen::rectangle_grid(20, 20);
  MetricsDoc doc("bfs", "pasgal", "grid:20:20", g.num_vertices(),
                 g.num_edges());
  doc.set_param("source", std::uint64_t{0});
  doc.set_param("note", std::string("unit-test"));
  AlgoOptions opt;
  for (int i = 0; i < trials; ++i) {
    RunReport<std::vector<std::uint32_t>> report = pasgal_bfs(g, g, opt);
    doc.add_trial(report.seconds, report.telemetry);
  }
  return doc;
}

TEST_F(Telemetry, MetricsDocPassesSchemaValidation) {
  MetricsDoc doc = sample_doc(2);
  EXPECT_EQ(doc.num_trials(), 2u);
  json::Value parsed;
  ASSERT_TRUE(json::parse(doc.to_json(), parsed).ok());
  Status valid = validate_metrics(parsed);
  EXPECT_TRUE(valid.ok()) << valid.message();

  EXPECT_EQ(parsed.find("schema")->str, kMetricsSchema);
  EXPECT_EQ(parsed.find("version")->number, kMetricsVersion);
  EXPECT_EQ(parsed.find("graph")->find("n")->number, 400.0);
  ASSERT_EQ(parsed.find("trials")->array.size(), 2u);

  // Round-count consistency in every trial: totals.rounds covers the
  // serialized trace plus anything the size cap dropped.
  for (const json::Value& trial : parsed.find("trials")->array) {
    const json::Value* tel = trial.find("telemetry");
    ASSERT_NE(tel, nullptr);
    EXPECT_EQ(tel->find("totals")->find("rounds")->number,
              static_cast<double>(tel->find("rounds")->array.size()) +
                  tel->find("rounds_omitted")->number);
  }
}

TEST_F(Telemetry, LongTracesAreCappedWithOmittedCount) {
  Tracer t;
  for (int i = 0; i < 3000; ++i) t.end_round(1);
  RunTelemetry agg = t.aggregate();
  EXPECT_EQ(agg.rounds.size(), 3000u);  // in memory: full trace
  json::Value v;
  ASSERT_TRUE(json::parse(to_json(agg), v).ok());
  EXPECT_EQ(v.find("rounds")->array.size(), kMaxSerializedRounds);
  EXPECT_EQ(v.find("rounds_omitted")->number,
            3000.0 - static_cast<double>(kMaxSerializedRounds));

  MetricsDoc doc("bfs", "seq", "chain:3000", 3000, 2999);
  doc.add_trial(0.1, agg);
  json::Value parsed;
  ASSERT_TRUE(json::parse(doc.to_json(), parsed).ok());
  Status valid = validate_metrics(parsed);
  EXPECT_TRUE(valid.ok()) << valid.message();
}

TEST_F(Telemetry, SchemaValidationCatchesCorruption) {
  MetricsDoc doc = sample_doc(1);
  json::Value parsed;
  ASSERT_TRUE(json::parse(doc.to_json(), parsed).ok());

  json::Value no_version = parsed;
  for (auto& [k, v] : no_version.object) {
    if (k == "version") v.number = 999;
  }
  EXPECT_FALSE(validate_metrics(no_version).ok());

  json::Value wrong_rounds = parsed;
  json::Value* tel = nullptr;
  for (auto& [k, v] : wrong_rounds.object) {
    if (k == "trials") {
      for (auto& [tk, tv] : v.array[0].object) {
        if (tk == "telemetry") tel = &tv;
      }
    }
  }
  ASSERT_NE(tel, nullptr);
  for (auto& [k, v] : tel->object) {
    if (k == "rounds") v.array.push_back(v.array.empty() ? json::Value{}
                                                         : v.array.back());
  }
  EXPECT_FALSE(validate_metrics(wrong_rounds).ok());

  EXPECT_FALSE(validate_metrics(json::Value{}).ok());
}

TEST_F(Telemetry, WriteMetricsJsonRoundTrips) {
  MetricsDoc doc = sample_doc(1);
  std::string path = ::testing::TempDir() + "pasgal_metrics_test.json";
  ASSERT_TRUE(write_metrics_json(path, doc).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  std::remove(path.c_str());
  json::Value parsed;
  ASSERT_TRUE(json::parse(text, parsed).ok());
  EXPECT_TRUE(validate_metrics(parsed).ok());
}

}  // namespace
}  // namespace pasgal
