// Round-trip tests for the .adj (PBBS) and .bin (GBBS) graph formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graphs/graph.h"
#include "graphs/graph_io.h"
#include "parlay/hash_rng.h"
#include "parlay/scheduler.h"

namespace pasgal {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    auto dir = std::filesystem::temp_directory_path() / "pasgal_io_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  void TearDown() override {
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "pasgal_io_test");
  }
};

Graph random_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  std::vector<Edge> edges(m);
  Random rng(seed);
  for (std::size_t i = 0; i < m; ++i) {
    edges[i] = Edge{static_cast<VertexId>(rng.ith_rand(2 * i) % n),
                    static_cast<VertexId>(rng.ith_rand(2 * i + 1) % n)};
  }
  return Graph::from_edges(n, edges);
}

TEST_F(GraphIoTest, AdjRoundTrip) {
  Graph g = random_graph(200, 1500, 1);
  auto path = temp_path("g.adj");
  write_adj(g, path);
  EXPECT_EQ(read_adj(path), g);
}

TEST_F(GraphIoTest, AdjEmptyGraph) {
  Graph g = Graph::from_edges(0, {});
  auto path = temp_path("empty.adj");
  write_adj(g, path);
  Graph back = read_adj(path);
  EXPECT_EQ(back.num_vertices(), 0u);
  EXPECT_EQ(back.num_edges(), 0u);
}

TEST_F(GraphIoTest, AdjIsolatedVertices) {
  Graph g = Graph::from_edges(10, std::vector<Edge>{{3, 7}});
  auto path = temp_path("iso.adj");
  write_adj(g, path);
  EXPECT_EQ(read_adj(path), g);
}

TEST_F(GraphIoTest, BinRoundTrip) {
  Graph g = random_graph(500, 4000, 2);
  auto path = temp_path("g.bin");
  write_bin(g, path);
  EXPECT_EQ(read_bin(path), g);
}

TEST_F(GraphIoTest, BinHeaderContents) {
  Graph g = random_graph(100, 700, 3);
  auto path = temp_path("hdr.bin");
  write_bin(g, path);
  std::ifstream in(path, std::ios::binary);
  std::uint64_t n = 0, m = 0, bytes = 0;
  in.read(reinterpret_cast<char*>(&n), 8);
  in.read(reinterpret_cast<char*>(&m), 8);
  in.read(reinterpret_cast<char*>(&bytes), 8);
  EXPECT_EQ(n, 100u);
  EXPECT_EQ(m, 700u);
  EXPECT_EQ(bytes, 24 + 101 * 8 + 700 * 4);
  EXPECT_EQ(std::filesystem::file_size(path), bytes);
}

TEST_F(GraphIoTest, WeightedAdjRoundTrip) {
  std::vector<WeightedEdge<std::uint32_t>> edges;
  Random rng(4);
  for (std::size_t i = 0; i < 900; ++i) {
    edges.push_back({static_cast<VertexId>(rng.ith_rand(3 * i) % 80),
                     static_cast<VertexId>(rng.ith_rand(3 * i + 1) % 80),
                     static_cast<std::uint32_t>(rng.ith_rand(3 * i + 2) % 100 + 1)});
  }
  auto g = WeightedGraph<std::uint32_t>::from_edges(80, edges);
  auto path = temp_path("g.wadj");
  write_adj(g, path);
  auto back = read_weighted_adj(path);
  EXPECT_EQ(back.unweighted(), g.unweighted());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back.edge_weight(e), g.edge_weight(e));
  }
}

TEST_F(GraphIoTest, WeightedBinRoundTrip) {
  std::vector<WeightedEdge<std::uint32_t>> edges;
  Random rng(8);
  for (std::size_t i = 0; i < 1200; ++i) {
    edges.push_back({static_cast<VertexId>(rng.ith_rand(3 * i) % 90),
                     static_cast<VertexId>(rng.ith_rand(3 * i + 1) % 90),
                     static_cast<std::uint32_t>(rng.ith_rand(3 * i + 2))});
  }
  auto g = WeightedGraph<std::uint32_t>::from_edges(90, edges);
  auto path = temp_path("g.wbin");
  write_bin(g, path);
  auto back = read_weighted_bin(path);
  EXPECT_EQ(back.unweighted(), g.unweighted());
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(back.edge_weight(e), g.edge_weight(e));
  }
}

TEST_F(GraphIoTest, WeightedBinRejectsTruncated) {
  auto path = temp_path("trunc.wbin");
  std::ofstream(path, std::ios::binary) << "short";
  EXPECT_THROW(read_weighted_bin(path), std::runtime_error);
}

TEST_F(GraphIoTest, RejectsWrongHeader) {
  auto path = temp_path("bogus.adj");
  std::ofstream(path) << "NotAGraph\n3\n0\n";
  EXPECT_THROW(read_adj(path), std::runtime_error);
}

TEST_F(GraphIoTest, RejectsMissingFile) {
  EXPECT_THROW(read_adj(temp_path("does_not_exist.adj")), std::runtime_error);
  EXPECT_THROW(read_bin(temp_path("does_not_exist.bin")), std::runtime_error);
}

TEST_F(GraphIoTest, RejectsTruncatedAdj) {
  auto path = temp_path("trunc.adj");
  std::ofstream(path) << "AdjacencyGraph\n5\n10\n0\n1\n";  // missing data
  EXPECT_THROW(read_adj(path), std::runtime_error);
}

// --- .pgr (mmap-able native format) -----------------------------------------

TEST_F(GraphIoTest, PgrRoundTripMmapAndCopy) {
  Graph g = random_graph(300, 2500, 5);
  auto path = temp_path("g.pgr");
  write_pgr(g, path);
  EXPECT_EQ(read_pgr(path, PgrOpen::kMmap), g);
  EXPECT_EQ(read_pgr(path, PgrOpen::kCopy), g);
  EXPECT_EQ(read_pgr(path, PgrOpen::kMmap, /*validate=*/true), g);
}

TEST_F(GraphIoTest, PgrRoundTripWeighted) {
  std::vector<WeightedEdge<std::uint32_t>> edges;
  Random rng(6);
  for (std::size_t i = 0; i < 1100; ++i) {
    edges.push_back({static_cast<VertexId>(rng.ith_rand(3 * i) % 70),
                     static_cast<VertexId>(rng.ith_rand(3 * i + 1) % 70),
                     static_cast<std::uint32_t>(rng.ith_rand(3 * i + 2))});
  }
  auto g = WeightedGraph<std::uint32_t>::from_edges(70, edges);
  auto path = temp_path("g.wpgr.pgr");
  write_pgr(g, path);
  for (auto mode : {PgrOpen::kMmap, PgrOpen::kCopy}) {
    auto back = read_weighted_pgr(path, mode);
    EXPECT_EQ(back.unweighted(), g.unweighted());
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      ASSERT_EQ(back.edge_weight(e), g.edge_weight(e));
    }
  }
}

TEST_F(GraphIoTest, PgrEmptyAndSingleVertexGraphs) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}}) {
    Graph g = Graph::from_edges(n, {});
    auto path = temp_path("tiny" + std::to_string(n) + ".pgr");
    write_pgr(g, path);
    Graph back = read_pgr(path);
    EXPECT_EQ(back.num_vertices(), n);
    EXPECT_EQ(back.num_edges(), 0u);
    EXPECT_EQ(back, g);
  }
}

TEST_F(GraphIoTest, PgrEmbeddedTransposeMatchesRebuilt) {
  Graph g = random_graph(250, 2000, 7);
  auto path = temp_path("t.pgr");
  PgrWriteOptions opts;
  opts.include_transpose = true;
  write_pgr(g, path, opts);
  for (auto mode : {PgrOpen::kMmap, PgrOpen::kCopy}) {
    Graph back = read_pgr(path, mode, /*validate=*/true);
    // The embedded transpose sections pre-populate the cache; it must be
    // exactly what transpose() would have computed.
    EXPECT_EQ(back.transpose(), g.transpose());
  }
}

TEST_F(GraphIoTest, PgrProbeReportsHeader) {
  Graph g = random_graph(120, 900, 9);
  auto path = temp_path("p.pgr");
  PgrWriteOptions opts;
  opts.include_transpose = true;
  opts.symmetric = false;
  write_pgr(g, path, opts);
  PgrInfo info = probe_pgr(path);
  EXPECT_EQ(info.n, 120u);
  EXPECT_EQ(info.m, g.num_edges());
  EXPECT_FALSE(info.weighted);
  EXPECT_FALSE(info.symmetric);
  EXPECT_TRUE(info.has_transpose);
  EXPECT_EQ(info.file_bytes, std::filesystem::file_size(path));
}

TEST_F(GraphIoTest, PgrWeightedFileReadAsUnweighted) {
  // read_pgr on a weighted file ignores the weights section.
  std::vector<WeightedEdge<std::uint32_t>> edges{{0, 1, 5}, {1, 2, 7}};
  auto g = WeightedGraph<std::uint32_t>::from_edges(3, edges);
  auto path = temp_path("w.pgr");
  write_pgr(g, path);
  EXPECT_EQ(read_pgr(path), g.unweighted());
}

TEST_F(GraphIoTest, PgrUnweightedFileRejectedByWeightedReader) {
  Graph g = random_graph(50, 200, 10);
  auto path = temp_path("uw.pgr");
  write_pgr(g, path);
  EXPECT_THROW(read_weighted_pgr(path), Error);
}

TEST_F(GraphIoTest, PgrMissingFile) {
  EXPECT_THROW(read_pgr(temp_path("does_not_exist.pgr")), Error);
  EXPECT_THROW(probe_pgr(temp_path("does_not_exist.pgr")), Error);
}

// --- .pgr version 2 (compressed targets) -------------------------------------

TEST_F(GraphIoTest, PgrCompressedRoundTrip) {
  Graph g = random_graph(300, 2500, 5);
  auto path = temp_path("c.pgr");
  PgrWriteOptions opts;
  opts.compress_targets = true;
  write_pgr(g, path, opts);
  PgrOpenStats stats;
  EXPECT_EQ(read_pgr(path, PgrOpen::kMmap, /*validate=*/false, &stats), g);
  EXPECT_TRUE(stats.compressed);
  EXPECT_GT(stats.encoded_target_bytes, 0u);
  EXPECT_LT(stats.encoded_target_bytes, g.num_edges() * sizeof(VertexId));
  EXPECT_GT(stats.decode_wall_ns, 0u);
  EXPECT_EQ(read_pgr(path, PgrOpen::kCopy), g);
  EXPECT_EQ(read_pgr(path, PgrOpen::kMmap, /*validate=*/true), g);
}

TEST_F(GraphIoTest, PgrCompressedWeightedWithTranspose) {
  std::vector<WeightedEdge<std::uint32_t>> edges;
  Random rng(12);
  for (std::size_t i = 0; i < 1100; ++i) {
    edges.push_back({static_cast<VertexId>(rng.ith_rand(3 * i) % 70),
                     static_cast<VertexId>(rng.ith_rand(3 * i + 1) % 70),
                     static_cast<std::uint32_t>(rng.ith_rand(3 * i + 2))});
  }
  auto g = WeightedGraph<std::uint32_t>::from_edges(70, edges);
  auto path = temp_path("cwt.pgr");
  PgrWriteOptions opts;
  opts.compress_targets = true;
  opts.include_transpose = true;
  write_pgr(g, path, opts);
  for (auto mode : {PgrOpen::kMmap, PgrOpen::kCopy}) {
    auto back = read_weighted_pgr(path, mode);
    EXPECT_EQ(back.unweighted(), g.unweighted());
    // Weights and the embedded transpose stay raw sections alongside the
    // compressed targets.
    for (std::size_t e = 0; e < g.num_edges(); ++e) {
      ASSERT_EQ(back.edge_weight(e), g.edge_weight(e));
    }
    EXPECT_EQ(back.unweighted().transpose(), g.unweighted().transpose());
  }
}

TEST_F(GraphIoTest, PgrCompressedEmptyAndIsolatedVertices) {
  PgrWriteOptions opts;
  opts.compress_targets = true;
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2000}}) {
    Graph g = Graph::from_edges(n, {});
    auto path = temp_path("ctiny" + std::to_string(n) + ".pgr");
    write_pgr(g, path, opts);
    EXPECT_EQ(read_pgr(path), g);
  }
  Graph iso = Graph::from_edges(10, std::vector<Edge>{{3, 7}});
  auto path = temp_path("ciso.pgr");
  write_pgr(iso, path, opts);
  EXPECT_EQ(read_pgr(path), iso);
}

TEST_F(GraphIoTest, PgrCompressedSpansMultipleChunks) {
  // More than 1024 vertices so the encoded section has several chunks, each
  // decoded by a separate task.
  Graph g = random_graph(5000, 40000, 13);
  auto path = temp_path("cchunks.pgr");
  PgrWriteOptions opts;
  opts.compress_targets = true;
  write_pgr(g, path, opts);
  EXPECT_EQ(read_pgr(path), g);
  EXPECT_EQ(read_pgr(path, PgrOpen::kCopy), g);
}

TEST_F(GraphIoTest, PgrCompressedProbeReportsEncoding) {
  Graph g = random_graph(400, 3000, 14);
  auto raw_path = temp_path("raw.pgr");
  auto comp_path = temp_path("comp.pgr");
  write_pgr(g, raw_path);
  PgrWriteOptions opts;
  opts.compress_targets = true;
  write_pgr(g, comp_path, opts);

  PgrInfo raw = probe_pgr(raw_path);
  EXPECT_EQ(raw.version, kPgrVersion);
  EXPECT_FALSE(raw.compressed);
  EXPECT_EQ(raw.encoded_target_bytes, g.num_edges() * sizeof(VertexId));

  PgrInfo comp = probe_pgr(comp_path);
  EXPECT_EQ(comp.version, kPgrVersionCompressed);
  EXPECT_TRUE(comp.compressed);
  EXPECT_EQ(comp.n, raw.n);
  EXPECT_EQ(comp.m, raw.m);
  EXPECT_LT(comp.encoded_target_bytes, raw.encoded_target_bytes);
  EXPECT_LT(comp.file_bytes, raw.file_bytes);
  EXPECT_EQ(comp.file_bytes, std::filesystem::file_size(comp_path));
}

TEST_F(GraphIoTest, PgrUncompressedWriteStaysVersion1) {
  // check.sh byte-compares uncompressed round-trips against pre-existing v1
  // files, so the default write path must keep emitting version 1 exactly.
  Graph g = random_graph(100, 800, 15);
  auto path = temp_path("v1.pgr");
  write_pgr(g, path);
  std::ifstream in(path, std::ios::binary);
  char magic[8];
  std::uint32_t version = 0;
  in.read(magic, 8);
  in.read(reinterpret_cast<char*>(&version), 4);
  EXPECT_EQ(version, kPgrVersion);
  PgrOpenStats stats;
  read_pgr(path, PgrOpen::kMmap, false, &stats);
  EXPECT_FALSE(stats.compressed);
  EXPECT_EQ(stats.decode_wall_ns, 0u);
}

TEST_F(GraphIoTest, PgrCompressedDeterministicAcrossWorkerCounts) {
  // Chunk encoding is per-chunk-deterministic; the assembled file must not
  // depend on how many workers happened to run the encoding tabulate.
  Graph g = random_graph(3000, 20000, 16);
  auto p1 = temp_path("det1.pgr");
  auto p4 = temp_path("det4.pgr");
  PgrWriteOptions opts;
  opts.compress_targets = true;
  Scheduler::reset(1);
  write_pgr(g, p1, opts);
  Scheduler::reset(4);
  write_pgr(g, p4, opts);
  Scheduler::reset(1);
  std::ifstream a(p1, std::ios::binary), b(p4, std::ios::binary);
  std::vector<char> ba{std::istreambuf_iterator<char>(a),
                       std::istreambuf_iterator<char>()};
  std::vector<char> bb{std::istreambuf_iterator<char>(b),
                       std::istreambuf_iterator<char>()};
  EXPECT_EQ(ba, bb);
}

}  // namespace
}  // namespace pasgal
