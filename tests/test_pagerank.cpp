// PageRank: the parallel dense pull must match the sequential power
// iteration, ranks must stay a probability distribution (dangling mass
// redistributed, sum 1), and the pasgal variant must be byte-identical
// across worker counts — the property the bench identity gates rely on.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algorithms/pagerank/pagerank.h"
#include "graphs/generators.h"
#include "pasgal/error.h"

namespace pasgal {
namespace {

class PagerankTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, PagerankTest, ::testing::Values(1, 4));

std::vector<std::pair<std::string, Graph>> pagerank_graphs() {
  std::vector<std::pair<std::string, Graph>> cases;
  cases.emplace_back("edgeless", Graph::from_edges(5, {}));
  cases.emplace_back("chain", gen::chain(500, true));    // dangling tail
  cases.emplace_back("cycle", gen::cycle(100));
  cases.emplace_back("star", gen::star(100));
  cases.emplace_back("tree", gen::binary_tree(511));
  cases.emplace_back("grid", gen::rectangle_grid(20, 25));
  cases.emplace_back("clique", gen::complete(20));
  cases.emplace_back("rmat", gen::rmat(11, 30000, 3));
  cases.emplace_back("random", gen::random_graph(2000, 14000, 5));
  return cases;
}

double l1_distance(const std::vector<double>& a, const std::vector<double>& b) {
  double d = 0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::fabs(a[i] - b[i]);
  return d;
}

TEST_P(PagerankTest, ParallelMatchesSequential) {
  for (const auto& [name, g] : pagerank_graphs()) {
    Graph gt = g.transpose();
    PagerankResult seq = seq_pagerank(g, gt);
    PagerankResult par = pasgal_pagerank(g, gt);
    ASSERT_EQ(seq.rank.size(), par.rank.size()) << name;
    EXPECT_EQ(seq.iterations, par.iterations) << name;
    // Same math, different summation order: agree to well below epsilon.
    EXPECT_LT(l1_distance(seq.rank, par.rank), 1e-9) << name;
  }
}

TEST_P(PagerankTest, RanksSumToOne) {
  for (const auto& [name, g] : pagerank_graphs()) {
    if (g.num_vertices() == 0) continue;
    Graph gt = g.transpose();
    PagerankResult r = pasgal_pagerank(g, gt);
    double sum = std::accumulate(r.rank.begin(), r.rank.end(), 0.0);
    // Dangling mass is redistributed each round, so the distribution stays
    // normalized even on graphs full of zero-out-degree vertices.
    EXPECT_NEAR(sum, 1.0, 1e-9) << name;
  }
}

TEST_P(PagerankTest, CycleConvergesToUniform) {
  Graph g = gen::cycle(64);
  Graph gt = g.transpose();
  PagerankResult r = pasgal_pagerank(g, gt);
  for (double v : r.rank) EXPECT_NEAR(v, 1.0 / 64, 1e-12);
  EXPECT_LT(r.delta, 1e-7);              // converged, not capped
  EXPECT_LT(r.iterations, 100u);
}

TEST_P(PagerankTest, StarCenterDominates) {
  // gen::star is undirected: every leaf feeds the center and the center
  // splits its rank across all leaves.
  Graph g = gen::star(50);
  Graph gt = g.transpose();
  PagerankResult r = pasgal_pagerank(g, gt);
  for (std::size_t v = 1; v < r.rank.size(); ++v) {
    EXPECT_GT(r.rank[0], r.rank[v]) << v;
    EXPECT_NEAR(r.rank[v], r.rank[1], 1e-12) << v;  // leaves symmetric
  }
}

TEST_P(PagerankTest, EdgelessIsUniformAfterOneRound) {
  // Every vertex is dangling: all mass redistributes uniformly, so the
  // very first round reproduces the initial vector and delta hits zero.
  Graph g = Graph::from_edges(8, {});
  Graph gt = g.transpose();
  PagerankResult r = pasgal_pagerank(g, gt);
  EXPECT_EQ(r.iterations, 1u);
  for (double v : r.rank) EXPECT_NEAR(v, 1.0 / 8, 1e-15);
}

TEST_P(PagerankTest, IterationCapAndEpsilonKnobs) {
  Graph g = gen::rmat(10, 12000, 7);
  Graph gt = g.transpose();
  PagerankParams one;
  one.max_iterations = 1;
  EXPECT_EQ(pasgal_pagerank(g, gt, one).iterations, 1u);

  // A loose epsilon must converge in no more rounds than a tight one, and
  // the tight run's final delta must respect its threshold.
  PagerankParams loose, tight;
  loose.epsilon = 1e-3;
  tight.epsilon = 1e-10;
  tight.max_iterations = 1000;
  PagerankResult rl = pasgal_pagerank(g, gt, loose);
  PagerankResult rt = pasgal_pagerank(g, gt, tight);
  EXPECT_LE(rl.iterations, rt.iterations);
  EXPECT_LT(rt.delta, 1e-10);
}

TEST_P(PagerankTest, DampingZeroIsUniform) {
  // d=0: rank'(v) = 1/n regardless of structure.
  Graph g = gen::rmat(9, 5000, 11);
  Graph gt = g.transpose();
  PagerankParams p;
  p.damping = 0.0;
  PagerankResult r = pasgal_pagerank(g, gt, p);
  for (double v : r.rank) EXPECT_NEAR(v, 1.0 / g.num_vertices(), 1e-15);
}

TEST(PagerankDeterminism, ByteIdenticalAcrossWorkers) {
  Graph g = gen::rmat(11, 40000, 13);
  Graph gt = g.transpose();
  Scheduler::reset(1);
  PagerankResult one = pasgal_pagerank(g, gt);
  Scheduler::reset(4);
  PagerankResult four = pasgal_pagerank(g, gt);
  Scheduler::reset(1);
  EXPECT_EQ(one.iterations, four.iterations);
  // The fixed block tree makes the sums byte-identical, not merely close.
  ASSERT_EQ(one.rank.size(), four.rank.size());
  for (std::size_t v = 0; v < one.rank.size(); ++v) {
    EXPECT_EQ(one.rank[v], four.rank[v]) << v;
  }
  EXPECT_EQ(one.delta, four.delta);
}

TEST(PagerankCancel, ExpiredDeadlineUnwinds) {
  Graph g = gen::rmat(10, 12000, 3);
  Graph gt = g.transpose();
  PagerankParams p;
  CancelToken token;
  token.set_deadline_ms(0);
  p.cancel = &token;
  try {
    pasgal_pagerank(g, gt, p);
    FAIL() << "expired deadline did not cancel the run";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTimeout);
  }
}

TEST(PagerankTelemetry, EveryRoundCarriesDelta) {
  Graph g = gen::rmat(9, 6000, 5);
  Graph gt = g.transpose();
  AlgoOptions opt;
  Tracer tracer;
  opt.tracer = &tracer;
  RunReport<PagerankResult> report = pasgal_pagerank(g, gt, opt);
  ASSERT_EQ(report.telemetry.rounds.size(), report.output.iterations);
  for (const RoundTrace& r : report.telemetry.rounds) {
    EXPECT_GE(r.delta, 0.0);
  }
  // The last round's delta is the result's convergence residual.
  EXPECT_EQ(report.telemetry.rounds.back().delta, report.output.delta);
}

}  // namespace
}  // namespace pasgal
