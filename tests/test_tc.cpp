// Triangle counting: both kernels against a brute-force triple loop, known
// closed-form counts, and the merge-vs-binary-search hybrid exercised on a
// skewed star+clique graph where the degree ratio forces both paths.
#include <gtest/gtest.h>

#include <set>

#include "algorithms/tc/tc.h"
#include "graphs/generators.h"
#include "pasgal/error.h"

namespace pasgal {
namespace {

class TcTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, TcTest, ::testing::Values(1, 4));

// O(n^3) reference: count unordered vertex triples that are pairwise
// adjacent in the symmetrized graph.
std::uint64_t brute_force_tc(const Graph& g) {
  std::size_t n = g.num_vertices();
  std::vector<std::set<VertexId>> adj(n);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (u != v) adj[u].insert(v);
    }
  }
  std::uint64_t count = 0;
  for (VertexId a = 0; a < n; ++a) {
    for (VertexId b : adj[a]) {
      if (b <= a) continue;
      for (VertexId c : adj[b]) {
        if (c <= b) continue;
        if (adj[a].count(c)) ++count;
      }
    }
  }
  return count;
}

std::vector<std::pair<std::string, Graph>> tc_graphs() {
  std::vector<std::pair<std::string, Graph>> cases;
  cases.emplace_back("edgeless", Graph::from_edges(5, {}));
  cases.emplace_back("triangle", gen::cycle(3).symmetrize());
  cases.emplace_back("square", gen::cycle(4).symmetrize());
  cases.emplace_back("chain", gen::chain(100));
  cases.emplace_back("star", gen::star(60));
  cases.emplace_back("tree", gen::binary_tree(255));
  cases.emplace_back("grid", gen::rectangle_grid(12, 15));
  cases.emplace_back("k4", gen::complete(4).symmetrize());
  cases.emplace_back("clique", gen::complete(16).symmetrize());
  cases.emplace_back("rmat", gen::rmat(9, 8000, 3).symmetrize());
  cases.emplace_back("random", gen::random_graph(400, 3000, 5).symmetrize());
  cases.emplace_back("knn", gen::knn_graph(500, 4, 7).symmetrize());
  return cases;
}

TEST_P(TcTest, MatchesBruteForce) {
  for (const auto& [name, g] : tc_graphs()) {
    std::uint64_t expected = brute_force_tc(g);
    EXPECT_EQ(seq_tc(g), expected) << name;
    EXPECT_EQ(pasgal_tc(g), expected) << name;
  }
}

TEST_P(TcTest, KnownCounts) {
  // Triangle-free families count zero; K_n counts n-choose-3.
  EXPECT_EQ(pasgal_tc(gen::cycle(3).symmetrize()), 1u);
  EXPECT_EQ(pasgal_tc(gen::complete(4).symmetrize()), 4u);
  EXPECT_EQ(pasgal_tc(gen::complete(10).symmetrize()), 120u);  // C(10,3)
  EXPECT_EQ(pasgal_tc(gen::rectangle_grid(10, 10)), 0u);
  EXPECT_EQ(pasgal_tc(gen::binary_tree(127)), 0u);
  EXPECT_EQ(pasgal_tc(gen::star(30)), 0u);
}

TEST_P(TcTest, HybridIntersectionThreshold) {
  // A clique whose every vertex also touches a huge star center: the
  // center's DAG list dwarfs the clique lists by far more than
  // kTcBinarySearchRatio, forcing the binary-search path, while
  // clique-vs-clique intersections stay on the merge path. Triangles:
  // C(k,3) inside the clique plus C(k,2) through the center.
  constexpr VertexId k = 12;
  constexpr VertexId leaves = 400;
  std::vector<Edge> e;
  for (VertexId i = 0; i < k; ++i) {
    for (VertexId j = i + 1; j < k; ++j) e.push_back({i, j});
  }
  VertexId center = k;
  for (VertexId i = 0; i < k; ++i) e.push_back({i, center});
  for (VertexId l = 0; l < leaves; ++l) {
    e.push_back({center, static_cast<VertexId>(k + 1 + l)});
  }
  Graph g = Graph::from_edges(k + 1 + leaves, e).symmetrize();
  std::uint64_t expected = 220u + 66u;  // C(12,3) + C(12,2)
  EXPECT_EQ(brute_force_tc(g), expected);
  EXPECT_EQ(seq_tc(g), expected);
  EXPECT_EQ(pasgal_tc(g), expected);
}

TEST_P(TcTest, SelfLoopsIgnored) {
  std::vector<Edge> e = {{0, 1}, {1, 2}, {0, 2}, {0, 0}, {2, 2}};
  Graph g = Graph::from_edges(3, e).symmetrize();
  EXPECT_EQ(seq_tc(g), 1u);
  EXPECT_EQ(pasgal_tc(g), 1u);
}

TEST(TcCancel, ExpiredDeadlineUnwinds) {
  // Enough DAG sources for several 1<<16 blocks? Not needed: the token is
  // checked before the first block too, so any graph unwinds immediately.
  Graph g = gen::rmat(10, 20000, 3).symmetrize();
  TcParams p;
  CancelToken token;
  token.set_deadline_ms(0);
  p.cancel = &token;
  try {
    pasgal_tc(g, p);
    FAIL() << "expired deadline did not cancel the run";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTimeout);
  }
}

TEST(TcContract, ModernEntryPointsRecordTriangleRounds) {
  Graph g = gen::rmat(9, 8000, 5).symmetrize();
  AlgoOptions opt;
  Tracer tracer;
  opt.tracer = &tracer;
  RunReport<std::uint64_t> par = pasgal_tc(g, opt);
  RunReport<std::uint64_t> seq = seq_tc(g, opt);
  EXPECT_EQ(par.output, seq.output);
  EXPECT_EQ(par.output, brute_force_tc(g));
}

}  // namespace
}  // namespace pasgal
