// Corrupted-input corpus for the graph readers: every malformed file must be
// rejected with a typed pasgal::Error in the right category — never a crash,
// a hang, or a silently wrong graph. Mirrors the loader hardening GBBS ships
// for the same reason: downstream algorithms do unchecked offsets[]/targets[]
// indexing, so the reader is the trust boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <vector>

#include "graphs/graph.h"
#include "graphs/graph_io.h"
#include "pasgal/error.h"
#include "pasgal/resource.h"

namespace pasgal {
namespace {

class GraphIoFuzzTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    auto dir = std::filesystem::temp_directory_path() / "pasgal_fuzz_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  void TearDown() override {
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "pasgal_fuzz_test");
  }

  void write_text(const std::string& path, const std::string& content) {
    std::ofstream(path) << content;
  }

  std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void dump(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // A small valid .bin to corrupt: 4-cycle, offsets [0,1,2,3,4].
  std::string make_valid_bin(const std::string& name) {
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    Graph g = Graph::from_edges(4, edges);
    auto path = temp_path(name);
    write_bin(g, path);
    return path;
  }

  void expect_rejected(const std::function<void()>& fn, ErrorCategory want) {
    try {
      fn();
      ADD_FAILURE() << "corrupt input was accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), want) << e.what();
      EXPECT_FALSE(std::string(e.what()).empty());
    } catch (const std::exception& e) {
      ADD_FAILURE() << "untyped exception escaped the reader: " << e.what();
    }
  }
};

// --- .adj (text) corpus ------------------------------------------------------

TEST_F(GraphIoFuzzTest, AdjTruncatedOffsets) {
  auto path = temp_path("trunc_off.adj");
  write_text(path, "AdjacencyGraph\n5\n10\n0\n1\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, AdjTruncatedTargets) {
  auto path = temp_path("trunc_tgt.adj");
  write_text(path, "AdjacencyGraph\n2\n3\n0\n1\n0\n1\n");  // 3 targets claimed, 2 present
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, AdjHeaderClaimsHugeN) {
  auto path = temp_path("huge_n.adj");
  // n = 2^60: the offsets array alone would need 2^63 bytes. Must be
  // rejected by the memory ceiling before any allocation is attempted.
  write_text(path, "AdjacencyGraph\n1152921504606846976\n4\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kResource);
}

TEST_F(GraphIoFuzzTest, AdjHeaderClaimsHugeM) {
  auto path = temp_path("huge_m.adj");
  write_text(path, "AdjacencyGraph\n4\n1152921504606846976\n0\n0\n0\n0\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kResource);
}

TEST_F(GraphIoFuzzTest, AdjNonMonotoneOffsets) {
  auto path = temp_path("nonmono.adj");
  // offsets[1] = 3 > offsets[2] = 1.
  write_text(path, "AdjacencyGraph\n3\n4\n0\n3\n1\n0\n1\n2\n0\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, AdjFirstOffsetNonZero) {
  auto path = temp_path("off0.adj");
  write_text(path, "AdjacencyGraph\n2\n2\n1\n2\n0\n1\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, AdjOutOfBoundsTarget) {
  auto path = temp_path("oob.adj");
  // Target 99 in a 3-vertex graph.
  write_text(path, "AdjacencyGraph\n3\n3\n0\n1\n2\n1\n99\n0\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, AdjTrailingGarbage) {
  auto path = temp_path("trailing.adj");
  write_text(path, "AdjacencyGraph\n2\n2\n0\n1\n1\n0\nEXTRA\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, AdjNonNumericField) {
  auto path = temp_path("nonnum.adj");
  write_text(path, "AdjacencyGraph\n2\n2\nzero\n1\n1\n0\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, WeightedAdjTruncatedWeights) {
  auto path = temp_path("trunc_w.adj");
  write_text(path, "WeightedAdjacencyGraph\n2\n2\n0\n1\n1\n0\n5\n");
  expect_rejected([&] { read_weighted_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, MissingFileIsIoError) {
  expect_rejected([&] { read_adj(temp_path("nope.adj")); },
                  ErrorCategory::kIo);
  expect_rejected([&] { read_bin(temp_path("nope.bin")); },
                  ErrorCategory::kIo);
}

// --- .bin (binary) corpus ----------------------------------------------------

TEST_F(GraphIoFuzzTest, BinTruncatedHeader) {
  auto path = temp_path("short.bin");
  std::ofstream(path, std::ios::binary) << "short";
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kFormat);
  expect_rejected([&] { read_weighted_bin(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, BinHeaderClaimsHugeN) {
  auto path = temp_path("huge_n.bin");
  std::uint64_t n = std::uint64_t{1} << 60, m = 4, size = 64;
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(&n), 8);
  out.write(reinterpret_cast<const char*>(&m), 8);
  out.write(reinterpret_cast<const char*>(&size), 8);
  out.close();
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kResource);
  expect_rejected([&] { read_weighted_bin(path); }, ErrorCategory::kResource);
}

TEST_F(GraphIoFuzzTest, BinSizeFieldMismatch) {
  auto path = make_valid_bin("sizefield.bin");
  auto bytes = slurp(path);
  bytes[16] ^= 0x01;  // size_bytes field
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, BinTruncatedBody) {
  auto path = make_valid_bin("truncbody.bin");
  auto bytes = slurp(path);
  bytes.resize(bytes.size() - 10);
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, BinTrailingGarbage) {
  auto path = make_valid_bin("trailing.bin");
  auto bytes = slurp(path);
  bytes.push_back('x');
  bytes.push_back('y');
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, BinNonMonotoneOffsets) {
  auto path = make_valid_bin("nonmono.bin");
  auto bytes = slurp(path);
  // offsets[1] lives at byte 24 + 8; bump it above offsets[2] = 2.
  std::uint64_t bad = 3;
  std::memcpy(bytes.data() + 32, &bad, 8);
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, BinOutOfBoundsTarget) {
  auto path = make_valid_bin("oob.bin");
  auto bytes = slurp(path);
  // targets start at 24 + 5*8 = 64; poison target[0].
  std::uint32_t bad = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 64, &bad, 4);
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, BinOffsetsEndMismatch) {
  auto path = make_valid_bin("endoff.bin");
  auto bytes = slurp(path);
  // offsets[n] (byte 24 + 4*8 = 56) must equal m = 4.
  std::uint64_t bad = 2;
  std::memcpy(bytes.data() + 56, &bad, 8);
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kValidation);
}

// --- in-memory validation ----------------------------------------------------

TEST_F(GraphIoFuzzTest, ValidateCatchesHandBuiltCorruption) {
  // Well-formed.
  Graph ok(std::vector<EdgeId>{0, 1, 2}, std::vector<VertexId>{1, 0});
  EXPECT_TRUE(ok.validate().ok());

  // Non-monotone offsets.
  Graph bad1(std::vector<EdgeId>{0, 2, 1}, std::vector<VertexId>{1, 0});
  Status s1 = bad1.validate();
  ASSERT_FALSE(s1.ok());
  EXPECT_EQ(s1.category(), ErrorCategory::kValidation);

  // offsets[n] != m.
  Graph bad2(std::vector<EdgeId>{0, 1, 3}, std::vector<VertexId>{1, 0});
  ASSERT_FALSE(bad2.validate().ok());

  // Target out of bounds.
  Graph bad3(std::vector<EdgeId>{0, 1, 2}, std::vector<VertexId>{1, 7});
  Status s3 = bad3.validate();
  ASSERT_FALSE(s3.ok());
  EXPECT_NE(s3.message().find("edge 1"), std::string::npos);

  // Weight array shorter than the edge count.
  WeightedGraph<std::uint32_t> wbad(std::vector<EdgeId>{0, 1, 2},
                                    std::vector<VertexId>{1, 0},
                                    std::vector<std::uint32_t>{5});
  Status sw = wbad.validate();
  ASSERT_FALSE(sw.ok());
  EXPECT_EQ(sw.category(), ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, MemoryLimitIsFinite) {
  // The ceiling must resolve to something real on this machine so the
  // huge-header corpus above is actually enforced.
  EXPECT_GT(memory_limit_bytes(), 0u);
  EXPECT_LT(memory_limit_bytes(), std::uint64_t{1} << 50);
}

}  // namespace
}  // namespace pasgal
