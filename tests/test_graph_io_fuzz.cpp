// Corrupted-input corpus for the graph readers: every malformed file must be
// rejected with a typed pasgal::Error in the right category — never a crash,
// a hang, or a silently wrong graph. Mirrors the loader hardening GBBS ships
// for the same reason: downstream algorithms do unchecked offsets[]/targets[]
// indexing, so the reader is the trust boundary.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <vector>

#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/cc/ldd.h"
#include "algorithms/kcore/kcore.h"
#include "graphs/graph.h"
#include "graphs/graph_io.h"
#include "graphs/storage.h"
#include "pasgal/error.h"
#include "pasgal/resource.h"

namespace pasgal {
namespace {

class GraphIoFuzzTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    auto dir = std::filesystem::temp_directory_path() / "pasgal_fuzz_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  void TearDown() override {
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "pasgal_fuzz_test");
  }

  void write_text(const std::string& path, const std::string& content) {
    std::ofstream(path) << content;
  }

  std::vector<char> slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
  }

  void dump(const std::string& path, const std::vector<char>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }

  // A small valid .bin to corrupt: 4-cycle, offsets [0,1,2,3,4].
  std::string make_valid_bin(const std::string& name) {
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    Graph g = Graph::from_edges(4, edges);
    auto path = temp_path(name);
    write_bin(g, path);
    return path;
  }

  // A small valid .pgr to corrupt: the same 4-cycle, with transpose
  // sections so every section kind in the format is present.
  std::string make_valid_pgr(const std::string& name) {
    std::vector<Edge> edges = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
    Graph g = Graph::from_edges(4, edges);
    auto path = temp_path(name);
    PgrWriteOptions opts;
    opts.include_transpose = true;
    write_pgr(g, path, opts);
    return path;
  }

  // A minimal version-2 file: one edge 0->1 in a 4-vertex graph. The encoded
  // targets section is a single chunk whose payload is exactly one varint
  // byte (zigzag(+1) = 0x02), so byte-level tampering is surgical.
  std::string make_tiny_compressed_pgr(const std::string& name) {
    Graph g = Graph::from_edges(4, std::vector<Edge>{{0, 1}});
    auto path = temp_path(name);
    PgrWriteOptions opts;
    opts.compress_targets = true;
    write_pgr(g, path, opts);
    return path;
  }

  // A version-2 file big enough to span two chunks (n = 2000 > 1024), with
  // one extra edge so chunk 0's payload is not a multiple of 64 bytes and
  // real zero padding exists between the chunks.
  std::string make_chunked_compressed_pgr(const std::string& name) {
    std::vector<Edge> edges = {{0, 2}};
    for (VertexId v = 0; v + 1 < 2000; ++v) edges.push_back({v, v + 1});
    Graph g = Graph::from_edges(2000, edges);
    auto path = temp_path(name);
    PgrWriteOptions opts;
    opts.compress_targets = true;
    write_pgr(g, path, opts);
    return path;
  }

  // File offset of the targets section (section table slot 1).
  std::size_t targets_off(const std::vector<char>& bytes) {
    return static_cast<std::size_t>(peek<std::uint64_t>(bytes, 40 + 24));
  }

  template <typename T>
  T peek(const std::vector<char>& bytes, std::size_t at) {
    T v;
    std::memcpy(&v, bytes.data() + at, sizeof(T));
    return v;
  }

  template <typename T>
  void poke(std::vector<char>& bytes, std::size_t at, T v) {
    std::memcpy(bytes.data() + at, &v, sizeof(T));
  }

  // Recomputes the stored checksum for one section table entry, so content
  // tampering can be made checksum-consistent (to prove the later validation
  // layers catch what checksums alone would also have caught).
  void reseal_pgr_section(std::vector<char>& bytes, int section) {
    std::size_t at = 40 + static_cast<std::size_t>(section) * 24;
    auto off = peek<std::uint64_t>(bytes, at);
    auto len = peek<std::uint64_t>(bytes, at + 8);
    poke(bytes, at + 16, hash_bytes(bytes.data() + off, len));
  }

  void expect_rejected(const std::function<void()>& fn, ErrorCategory want) {
    try {
      fn();
      ADD_FAILURE() << "corrupt input was accepted";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), want) << e.what();
      EXPECT_FALSE(std::string(e.what()).empty());
    } catch (const std::exception& e) {
      ADD_FAILURE() << "untyped exception escaped the reader: " << e.what();
    }
  }
};

// --- .adj (text) corpus ------------------------------------------------------

TEST_F(GraphIoFuzzTest, AdjTruncatedOffsets) {
  auto path = temp_path("trunc_off.adj");
  write_text(path, "AdjacencyGraph\n5\n10\n0\n1\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, AdjTruncatedTargets) {
  auto path = temp_path("trunc_tgt.adj");
  write_text(path, "AdjacencyGraph\n2\n3\n0\n1\n0\n1\n");  // 3 targets claimed, 2 present
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, AdjHeaderClaimsHugeN) {
  auto path = temp_path("huge_n.adj");
  // n = 2^60: the offsets array alone would need 2^63 bytes. Must be
  // rejected by the memory ceiling before any allocation is attempted.
  write_text(path, "AdjacencyGraph\n1152921504606846976\n4\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kResource);
}

TEST_F(GraphIoFuzzTest, AdjHeaderClaimsHugeM) {
  auto path = temp_path("huge_m.adj");
  write_text(path, "AdjacencyGraph\n4\n1152921504606846976\n0\n0\n0\n0\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kResource);
}

TEST_F(GraphIoFuzzTest, AdjNonMonotoneOffsets) {
  auto path = temp_path("nonmono.adj");
  // offsets[1] = 3 > offsets[2] = 1.
  write_text(path, "AdjacencyGraph\n3\n4\n0\n3\n1\n0\n1\n2\n0\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, AdjFirstOffsetNonZero) {
  auto path = temp_path("off0.adj");
  write_text(path, "AdjacencyGraph\n2\n2\n1\n2\n0\n1\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, AdjOutOfBoundsTarget) {
  auto path = temp_path("oob.adj");
  // Target 99 in a 3-vertex graph.
  write_text(path, "AdjacencyGraph\n3\n3\n0\n1\n2\n1\n99\n0\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, AdjTrailingGarbage) {
  auto path = temp_path("trailing.adj");
  write_text(path, "AdjacencyGraph\n2\n2\n0\n1\n1\n0\nEXTRA\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, AdjNonNumericField) {
  auto path = temp_path("nonnum.adj");
  write_text(path, "AdjacencyGraph\n2\n2\nzero\n1\n1\n0\n");
  expect_rejected([&] { read_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, WeightedAdjTruncatedWeights) {
  auto path = temp_path("trunc_w.adj");
  write_text(path, "WeightedAdjacencyGraph\n2\n2\n0\n1\n1\n0\n5\n");
  expect_rejected([&] { read_weighted_adj(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, MissingFileIsIoError) {
  expect_rejected([&] { read_adj(temp_path("nope.adj")); },
                  ErrorCategory::kIo);
  expect_rejected([&] { read_bin(temp_path("nope.bin")); },
                  ErrorCategory::kIo);
}

// --- .bin (binary) corpus ----------------------------------------------------

TEST_F(GraphIoFuzzTest, BinTruncatedHeader) {
  auto path = temp_path("short.bin");
  std::ofstream(path, std::ios::binary) << "short";
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kFormat);
  expect_rejected([&] { read_weighted_bin(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, BinHeaderClaimsHugeN) {
  auto path = temp_path("huge_n.bin");
  std::uint64_t n = std::uint64_t{1} << 60, m = 4, size = 64;
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(&n), 8);
  out.write(reinterpret_cast<const char*>(&m), 8);
  out.write(reinterpret_cast<const char*>(&size), 8);
  out.close();
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kResource);
  expect_rejected([&] { read_weighted_bin(path); }, ErrorCategory::kResource);
}

TEST_F(GraphIoFuzzTest, BinSizeFieldMismatch) {
  auto path = make_valid_bin("sizefield.bin");
  auto bytes = slurp(path);
  bytes[16] ^= 0x01;  // size_bytes field
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, BinTruncatedBody) {
  auto path = make_valid_bin("truncbody.bin");
  auto bytes = slurp(path);
  bytes.resize(bytes.size() - 10);
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, BinTrailingGarbage) {
  auto path = make_valid_bin("trailing.bin");
  auto bytes = slurp(path);
  bytes.push_back('x');
  bytes.push_back('y');
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, BinNonMonotoneOffsets) {
  auto path = make_valid_bin("nonmono.bin");
  auto bytes = slurp(path);
  // offsets[1] lives at byte 24 + 8; bump it above offsets[2] = 2.
  std::uint64_t bad = 3;
  std::memcpy(bytes.data() + 32, &bad, 8);
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, BinOutOfBoundsTarget) {
  auto path = make_valid_bin("oob.bin");
  auto bytes = slurp(path);
  // targets start at 24 + 5*8 = 64; poison target[0].
  std::uint32_t bad = 0xFFFFFFFFu;
  std::memcpy(bytes.data() + 64, &bad, 4);
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, BinOffsetsEndMismatch) {
  auto path = make_valid_bin("endoff.bin");
  auto bytes = slurp(path);
  // offsets[n] (byte 24 + 4*8 = 56) must equal m = 4.
  std::uint64_t bad = 2;
  std::memcpy(bytes.data() + 56, &bad, 8);
  dump(path, bytes);
  expect_rejected([&] { read_bin(path); }, ErrorCategory::kValidation);
}

// --- in-memory validation ----------------------------------------------------

TEST_F(GraphIoFuzzTest, ValidateCatchesHandBuiltCorruption) {
  // Well-formed.
  Graph ok(std::vector<EdgeId>{0, 1, 2}, std::vector<VertexId>{1, 0});
  EXPECT_TRUE(ok.validate().ok());

  // Non-monotone offsets.
  Graph bad1(std::vector<EdgeId>{0, 2, 1}, std::vector<VertexId>{1, 0});
  Status s1 = bad1.validate();
  ASSERT_FALSE(s1.ok());
  EXPECT_EQ(s1.category(), ErrorCategory::kValidation);

  // offsets[n] != m.
  Graph bad2(std::vector<EdgeId>{0, 1, 3}, std::vector<VertexId>{1, 0});
  ASSERT_FALSE(bad2.validate().ok());

  // Target out of bounds.
  Graph bad3(std::vector<EdgeId>{0, 1, 2}, std::vector<VertexId>{1, 7});
  Status s3 = bad3.validate();
  ASSERT_FALSE(s3.ok());
  EXPECT_NE(s3.message().find("edge 1"), std::string::npos);

  // Weight array shorter than the edge count.
  WeightedGraph<std::uint32_t> wbad(std::vector<EdgeId>{0, 1, 2},
                                    std::vector<VertexId>{1, 0},
                                    std::vector<std::uint32_t>{5});
  Status sw = wbad.validate();
  ASSERT_FALSE(sw.ok());
  EXPECT_EQ(sw.category(), ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, MemoryLimitIsFinite) {
  // The ceiling must resolve to something real on this machine so the
  // huge-header corpus above is actually enforced.
  EXPECT_GT(memory_limit_bytes(), 0u);
  EXPECT_LT(memory_limit_bytes(), std::uint64_t{1} << 50);
}

// --- .pgr (mmap-able native format) corpus -----------------------------------
//
// Header layout under attack: [0,8) magic, [8,12) version, [12,16) flags,
// [16,24) n, [24,32) m, [32,40) section count, [40,160) section table of
// 5 x {off, bytes, checksum} u64 triples, [160,192) reserved zeros.

TEST_F(GraphIoFuzzTest, PgrTruncatedHeader) {
  auto path = make_valid_pgr("hdr.pgr");
  auto bytes = slurp(path);
  bytes.resize(100);  // below the 192-byte fixed header
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
  expect_rejected([&] { probe_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrBadMagic) {
  auto path = make_valid_pgr("magic.pgr");
  auto bytes = slurp(path);
  bytes[0] = 'X';
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrUnsupportedVersion) {
  auto path = make_valid_pgr("ver.pgr");
  auto bytes = slurp(path);
  poke<std::uint32_t>(bytes, 8, kPgrVersion + 7);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrUnknownFlagBits) {
  auto path = make_valid_pgr("flags.pgr");
  auto bytes = slurp(path);
  poke<std::uint32_t>(bytes, 12, peek<std::uint32_t>(bytes, 12) | (1u << 7));
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrTruncationAtEverySectionBoundary) {
  auto path = make_valid_pgr("trunc.pgr");
  auto whole = slurp(path);
  for (int i = 0; i < 5; ++i) {
    std::size_t at = 40 + static_cast<std::size_t>(i) * 24;
    auto off = peek<std::uint64_t>(whole, at);
    auto len = peek<std::uint64_t>(whole, at + 8);
    if (len == 0) continue;  // weights: absent in an unweighted file
    // Cut exactly at the section start and one byte short of its end.
    for (std::uint64_t cut : {off, off + len - 1}) {
      auto bytes = whole;
      bytes.resize(cut);
      dump(path, bytes);
      expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
      expect_rejected([&] { read_pgr(path, PgrOpen::kCopy); },
                      ErrorCategory::kFormat);
    }
  }
}

TEST_F(GraphIoFuzzTest, PgrTrailingGarbage) {
  auto path = make_valid_pgr("tail.pgr");
  auto bytes = slurp(path);
  bytes.insert(bytes.end(), 17, 'Z');
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrHeaderClaimsVsFileSizeMismatch) {
  // Bumping m makes the canonical layout (and total size) disagree with the
  // actual file: the section table cross-check must reject it.
  auto path = make_valid_pgr("claims.pgr");
  auto bytes = slurp(path);
  poke<std::uint64_t>(bytes, 24, peek<std::uint64_t>(bytes, 24) + 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrSectionTableTampered) {
  auto path = make_valid_pgr("table.pgr");
  auto bytes = slurp(path);
  poke<std::uint64_t>(bytes, 40, peek<std::uint64_t>(bytes, 40) + 64);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrHugeClaimsAreResourceErrors) {
  auto path = make_valid_pgr("huge.pgr");
  auto bytes = slurp(path);
  poke<std::uint64_t>(bytes, 16, std::uint64_t{1} << 60);  // n
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kResource);

  bytes = slurp(path);
  poke<std::uint64_t>(bytes, 24, std::uint64_t{1} << 60);  // m
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kResource);
}

TEST_F(GraphIoFuzzTest, PgrVertexCountOver32Bits) {
  auto path = make_valid_pgr("wide.pgr");
  auto bytes = slurp(path);
  poke<std::uint64_t>(bytes, 16, std::uint64_t{1} << 32);
  dump(path, bytes);
  // kValidation (id space) on large-memory hosts; the footprint ceiling can
  // legitimately fire first (kResource) on smaller ones — either way the
  // reader must refuse before touching section data.
  try {
    read_pgr(path);
    ADD_FAILURE() << "n >= 2^32 was accepted";
  } catch (const Error& e) {
    EXPECT_TRUE(e.category() == ErrorCategory::kValidation ||
                e.category() == ErrorCategory::kResource)
        << e.what();
  }
}

TEST_F(GraphIoFuzzTest, PgrChecksumCorruptionCaughtByDeepModes) {
  auto path = make_valid_pgr("sum.pgr");
  auto whole = slurp(path);
  std::size_t targets_off =
      static_cast<std::size_t>(peek<std::uint64_t>(whole, 40 + 24));
  auto bytes = whole;
  bytes[targets_off] = static_cast<char>(bytes[targets_off] ^ 0x5A);
  dump(path, bytes);
  // Copy mode and mmap --validate both run the checksum pass.
  expect_rejected([&] { read_pgr(path, PgrOpen::kCopy); },
                  ErrorCategory::kFormat);
  expect_rejected([&] { read_pgr(path, PgrOpen::kMmap, /*validate=*/true); },
                  ErrorCategory::kFormat);
  // Plain mmap open is O(1) by design and trusts section contents (the .pgr
  // is a cache produced by our own writers); it must still open.
  Graph g = read_pgr(path, PgrOpen::kMmap);
  EXPECT_EQ(g.num_vertices(), 4u);
}

TEST_F(GraphIoFuzzTest, PgrNonMonotoneOffsetsCaughtBehindValidChecksum) {
  // Corrupt the CSR content *and* reseal the checksum: the structural
  // validator behind the checksum layer must still reject it.
  auto path = make_valid_pgr("mono.pgr");
  auto bytes = slurp(path);
  std::size_t offsets_off =
      static_cast<std::size_t>(peek<std::uint64_t>(bytes, 40));
  poke<std::uint64_t>(bytes, offsets_off + 8, 3);  // offsets[1] = 3
  poke<std::uint64_t>(bytes, offsets_off + 16, 1);  // offsets[2] = 1 (< 3)
  reseal_pgr_section(bytes, 0);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path, PgrOpen::kCopy); },
                  ErrorCategory::kValidation);
  expect_rejected([&] { read_pgr(path, PgrOpen::kMmap, /*validate=*/true); },
                  ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, PgrCorruptTransposeSectionRejected) {
  auto path = make_valid_pgr("tpose.pgr");
  auto bytes = slurp(path);
  std::size_t t_targets_off =
      static_cast<std::size_t>(peek<std::uint64_t>(bytes, 40 + 4 * 24));
  poke<std::uint32_t>(bytes, t_targets_off, 1000u);  // target out of range
  reseal_pgr_section(bytes, 4);
  dump(path, bytes);
  // Transpose sections are validated whenever they are materialized eagerly.
  expect_rejected([&] { read_pgr(path, PgrOpen::kCopy); },
                  ErrorCategory::kValidation);
  expect_rejected([&] { read_pgr(path, PgrOpen::kMmap, /*validate=*/true); },
                  ErrorCategory::kValidation);
}

// --- .pgr version 2 (compressed targets) corpus ------------------------------
//
// Compressed-section layout under attack (relative to the targets section):
// [0,8) chunk count C, [8,16) vertices-per-chunk V, [16,16+(C+1)*8) chunk
// directory of byte offsets, then 64-byte-aligned varint payloads; the last
// directory entry equals the exact section size. Every tampering below
// reseals the section checksum, so the decoder itself — not the checksum
// layer — must catch it (plain mmap opens skip checksums entirely).

TEST_F(GraphIoFuzzTest, PgrCompressedTruncatedVarintStream) {
  auto path = make_tiny_compressed_pgr("ctrunc.pgr");
  auto bytes = slurp(path);
  std::size_t sec = targets_off(bytes);
  std::size_t payload = sec + static_cast<std::size_t>(
                                  peek<std::uint64_t>(bytes, sec + 16));
  // Continuation bit on the only payload byte: the varint never terminates
  // before the chunk limit.
  bytes[payload] = static_cast<char>(bytes[payload] | 0x80);
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
  expect_rejected([&] { read_pgr(path, PgrOpen::kCopy); },
                  ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrCompressedVarintOverflows64Bits) {
  auto path = make_chunked_compressed_pgr("coverflow.pgr");
  auto bytes = slurp(path);
  std::size_t sec = targets_off(bytes);
  std::size_t payload = sec + static_cast<std::size_t>(
                                  peek<std::uint64_t>(bytes, sec + 16));
  // 9 continuation bytes then a wide final byte: 10-byte varint whose last
  // byte carries bits past position 63.
  for (int i = 0; i < 9; ++i) bytes[payload + i] = static_cast<char>(0xFF);
  bytes[payload + 9] = 0x7F;
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrCompressedNonZeroInterChunkPadding) {
  auto path = make_chunked_compressed_pgr("cpad.pgr");
  auto bytes = slurp(path);
  std::size_t sec = targets_off(bytes);
  // Last byte before chunk 1's aligned start is padding by construction
  // (chunk 0's payload size is odd).
  std::size_t chunk1 = sec + static_cast<std::size_t>(
                                 peek<std::uint64_t>(bytes, sec + 16 + 8));
  ASSERT_EQ(bytes[chunk1 - 1], 0) << "expected zero padding to tamper with";
  bytes[chunk1 - 1] = 0x01;
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrCompressedOutOfRangeDecodedTarget) {
  auto path = make_tiny_compressed_pgr("coob.pgr");
  auto bytes = slurp(path);
  std::size_t sec = targets_off(bytes);
  std::size_t payload = sec + static_cast<std::size_t>(
                                  peek<std::uint64_t>(bytes, sec + 16));
  // zigzag(0x7E) decodes to +63: vertex 0's target becomes 63 >= n = 4. The
  // decoder must refuse even on the plain mmap path — decoded targets feed
  // unchecked indexing downstream.
  bytes[payload] = 0x7E;
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kValidation);
  expect_rejected([&] { read_pgr(path, PgrOpen::kCopy); },
                  ErrorCategory::kValidation);
  // And the negative direction: zigzag(0x7F) decodes to -64.
  bytes = slurp(path);
  bytes[payload] = 0x7F;
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, PgrCompressedChunkHeaderTampered) {
  // Chunk count disagreeing with ceil(n / V).
  auto path = make_tiny_compressed_pgr("cchunks.pgr");
  auto bytes = slurp(path);
  std::size_t sec = targets_off(bytes);
  poke<std::uint64_t>(bytes, sec, peek<std::uint64_t>(bytes, sec) + 1);
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);

  // Zero vertices-per-chunk.
  bytes = slurp(path);
  poke<std::uint64_t>(bytes, sec + 8, 0);
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrCompressedDirectoryTampered) {
  auto path = make_chunked_compressed_pgr("cdir.pgr");
  auto whole = slurp(path);
  std::size_t sec = targets_off(whole);
  // Misaligned first chunk.
  auto bytes = whole;
  poke<std::uint64_t>(bytes, sec + 16,
                      peek<std::uint64_t>(bytes, sec + 16) + 1);
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);

  // Non-monotone interior entry (chunk 1 start beyond the section end).
  bytes = whole;
  poke<std::uint64_t>(bytes, sec + 16 + 8, std::uint64_t{1} << 32);
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);

  // Last entry no longer equal to the section size.
  bytes = whole;
  std::size_t last = sec + 16 + 2 * 8;
  poke<std::uint64_t>(bytes, last, peek<std::uint64_t>(bytes, last) - 1);
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrCompressedSectionSizeClaims) {
  // The encoded section's size comes from the table rather than the (n, m)
  // arithmetic, so it is attacker-controlled: oversized claims must be
  // bounded by the file size, and m > 0 with an empty section must fail.
  auto path = make_tiny_compressed_pgr("csize.pgr");
  auto bytes = slurp(path);
  poke<std::uint64_t>(bytes, 40 + 24 + 8, std::uint64_t{1} << 40);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);

  bytes = slurp(path);
  poke<std::uint64_t>(bytes, 40 + 24 + 8, 0);
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

TEST_F(GraphIoFuzzTest, PgrCompressedFlagOnVersion1Rejected) {
  // Bit 3 (compressed) is only defined from version 2 on; a v1 header
  // carrying it must be treated as unknown flags.
  auto path = make_valid_pgr("cflag.pgr");
  auto bytes = slurp(path);
  poke<std::uint32_t>(bytes, 12, peek<std::uint32_t>(bytes, 12) | (1u << 3));
  dump(path, bytes);
  expect_rejected([&] { read_pgr(path); }, ErrorCategory::kFormat);
}

// --- lazy validation of trusted-by-default mmap opens ------------------------

TEST_F(GraphIoFuzzTest, BfsOnUnvalidatedOutOfRangeTargetsThrowsTyped) {
  // Plain mmap opens of a v1 file skip per-element checks by design, so a
  // poisoned target (behind a resealed checksum) gets as far as the
  // algorithm layer. The frontier machinery must then catch it via the
  // lazy ensure_validated() choke point — a typed kValidation error, never
  // out-of-bounds indexing.
  auto path = make_valid_pgr("lazyoob.pgr");
  auto bytes = slurp(path);
  std::size_t off = targets_off(bytes);
  poke<std::uint32_t>(bytes, off, 1000u);  // target 1000 in a 4-vertex graph
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  Graph g = read_pgr(path);  // mmap open itself stays O(1) and succeeds
  ASSERT_NE(g.storage(), nullptr);
  EXPECT_FALSE(g.storage()->validated());
  Graph gt = g.transpose();  // embedded sections: no rebuild, no crash
  expect_rejected([&] { gbbs_bfs(g, gt, 0); }, ErrorCategory::kValidation);
  expect_rejected([&] { gapbs_bfs(g, gt, 0); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, CcAndKcoreOnUnvalidatedOutOfRangeTargetsThrowTyped) {
  // Regression: the cc and kcore kernels walk the CSR with manual loops
  // rather than through the frontier machinery, so they used to index a
  // poisoned target straight out of bounds instead of hitting the lazy
  // ensure_validated() choke point. All of them must reject like BFS does.
  auto path = make_valid_pgr("lazyoob_cc.pgr");
  auto bytes = slurp(path);
  std::size_t off = targets_off(bytes);
  poke<std::uint32_t>(bytes, off, 1000u);  // target 1000 in a 4-vertex graph
  reseal_pgr_section(bytes, 1);
  dump(path, bytes);
  Graph g = read_pgr(path);
  ASSERT_NE(g.storage(), nullptr);
  EXPECT_FALSE(g.storage()->validated());
  expect_rejected([&] { connected_components(g); },
                  ErrorCategory::kValidation);
  expect_rejected([&] { label_prop_cc(g); }, ErrorCategory::kValidation);
  expect_rejected([&] { ldd_cc(g); }, ErrorCategory::kValidation);
  expect_rejected([&] { seq_kcore(g); }, ErrorCategory::kValidation);
  expect_rejected([&] { pasgal_kcore(g); }, ErrorCategory::kValidation);
}

TEST_F(GraphIoFuzzTest, EnsureValidatedAcceptsAndMemoizesCleanGraphs) {
  auto path = make_valid_pgr("lazyok.pgr");
  Graph g = read_pgr(path);
  ASSERT_NE(g.storage(), nullptr);
  EXPECT_FALSE(g.storage()->validated());
  g.ensure_validated();
  EXPECT_TRUE(g.storage()->validated());
  Graph gt = g.transpose();
  EXPECT_EQ(gbbs_bfs(g, gt, 0), seq_bfs(g, 0));
}

}  // namespace
}  // namespace pasgal
