// Topological sort and SCC condensation tests.
#include <gtest/gtest.h>

#include "algorithms/scc/condensation.h"
#include "algorithms/toposort/toposort.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

class ToposortTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, ToposortTest, ::testing::Values(1, 4));

Graph random_dag(std::size_t n, std::size_t m, std::uint64_t seed) {
  // Edges only from lower to higher id: guaranteed acyclic.
  Random rng(seed);
  std::vector<Edge> edges;
  for (std::size_t i = 0; i < m; ++i) {
    VertexId a = static_cast<VertexId>(rng.ith_rand(2 * i) % n);
    VertexId b = static_cast<VertexId>(rng.ith_rand(2 * i + 1) % n);
    if (a == b) continue;
    edges.push_back({std::min(a, b), std::max(a, b)});
  }
  return Graph::from_edges(n, edges, /*dedup=*/true);
}

TEST_P(ToposortTest, ParallelMatchesSequentialOnDags) {
  for (std::uint64_t seed : {1, 2, 3}) {
    Graph g = random_dag(1000, 5000, seed);
    std::vector<std::uint32_t> expected, levels;
    ASSERT_TRUE(seq_toposort(g, expected).ok());
    ASSERT_FALSE(expected.empty());
    ASSERT_TRUE(pasgal_toposort(g, levels).ok());
    EXPECT_EQ(levels, expected) << "seed=" << seed;
  }
}

TEST_P(ToposortTest, LevelsRespectEdges) {
  Graph g = random_dag(2000, 12000, 7);
  std::vector<std::uint32_t> levels;
  ASSERT_TRUE(pasgal_toposort(g, levels).ok());
  ASSERT_FALSE(levels.empty());
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      EXPECT_LT(levels[u], levels[v]);
    }
  }
}

TEST_P(ToposortTest, LevelsAreLongestPaths) {
  // Diamond with a long lower path: 0->1->2->3->9 and 0->9.
  std::vector<Edge> e = {{0, 1}, {1, 2}, {2, 3}, {3, 9}, {0, 9}};
  Graph g = Graph::from_edges(10, e);
  std::vector<std::uint32_t> levels;
  ASSERT_TRUE(pasgal_toposort(g, levels).ok());
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels[9], 4u);  // the long path dominates
  EXPECT_EQ(levels[0], 0u);
}

TEST_P(ToposortTest, CycleDetected) {
  Graph g = gen::cycle(10);
  std::vector<std::uint32_t> levels;
  Status s = seq_toposort(g, levels);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.category(), ErrorCategory::kValidation);
  EXPECT_TRUE(levels.empty());
  s = pasgal_toposort(g, levels);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.category(), ErrorCategory::kValidation);
  EXPECT_NE(s.message().find("cycle"), std::string::npos);
  EXPECT_TRUE(levels.empty());
  // Partial cycle: DAG portion plus a 3-cycle.
  std::vector<Edge> e = {{0, 1}, {1, 2}, {2, 0}, {3, 4}};
  Graph h = Graph::from_edges(5, e);
  EXPECT_FALSE(seq_toposort(h, levels).ok());
  EXPECT_FALSE(pasgal_toposort(h, levels).ok());
}

TEST_P(ToposortTest, TopologicalOrderIsValid) {
  Graph g = random_dag(500, 2500, 11);
  std::vector<std::uint32_t> levels;
  ASSERT_TRUE(pasgal_toposort(g, levels).ok());
  auto order = topological_order(levels);
  std::vector<std::size_t> position(g.num_vertices());
  for (std::size_t i = 0; i < order.size(); ++i) position[order[i]] = i;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      EXPECT_LT(position[u], position[v]);
    }
  }
}

TEST_P(ToposortTest, TauSweep) {
  Graph g = gen::chain(5000, /*directed=*/true);
  std::vector<std::uint32_t> expected;
  ASSERT_TRUE(seq_toposort(g, expected).ok());
  for (std::uint32_t tau : {1u, 32u, 1024u}) {
    ToposortParams p;
    p.vgc.tau = tau;
    std::vector<std::uint32_t> levels;
    ASSERT_TRUE(pasgal_toposort(g, levels, p).ok()) << "tau=" << tau;
    EXPECT_EQ(levels, expected) << "tau=" << tau;
  }
}

TEST(ToposortRounds, VgcCollapsesDeepChains) {
  Scheduler::reset(1);
  Graph g = gen::chain(20000, /*directed=*/true);
  RunStats no_vgc_stats, vgc_stats;
  ToposortParams no_vgc;
  no_vgc.vgc.tau = 1;
  std::vector<std::uint32_t> a, b;
  ASSERT_TRUE(pasgal_toposort(g, a, no_vgc, &no_vgc_stats).ok());
  ASSERT_TRUE(pasgal_toposort(g, b, {}, &vgc_stats).ok());
  EXPECT_EQ(a, b);
  EXPECT_LT(vgc_stats.rounds() * 10, no_vgc_stats.rounds());
}

TEST_P(ToposortTest, CondensationIsAcyclicAndFaithful) {
  for (std::uint64_t seed : {5, 6}) {
    Graph g = gen::random_graph(800, 3000, seed);
    Graph gt = g.transpose();
    auto labels = normalize_scc_labels(pasgal_scc(g, gt));
    Condensation cond = scc_condensation(g, labels);
    // The condensation is a DAG.
    std::vector<std::uint32_t> levels;
    EXPECT_TRUE(pasgal_toposort(cond.dag, levels).ok()) << "seed=" << seed;
    EXPECT_FALSE(levels.empty()) << "seed=" << seed;
    // component_of respects labels.
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_EQ(cond.representative[cond.component_of[v]], labels[v]);
    }
    // Every original cross-component edge appears.
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v : g.neighbors(u)) {
        if (labels[u] == labels[v]) continue;
        auto nbrs = cond.dag.neighbors(cond.component_of[u]);
        EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(),
                                       cond.component_of[v]));
      }
    }
    // No self loops, no duplicates.
    for (VertexId c = 0; c < cond.dag.num_vertices(); ++c) {
      auto nbrs = cond.dag.neighbors(c);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        EXPECT_NE(nbrs[i], c);
        if (i > 0) {
          EXPECT_LT(nbrs[i - 1], nbrs[i]);
        }
      }
    }
  }
}

TEST_P(ToposortTest, CondensationOfDagIsIsomorphic) {
  Graph g = random_dag(300, 900, 13);
  Graph gt = g.transpose();
  auto labels = normalize_scc_labels(pasgal_scc(g, gt));
  Condensation cond = scc_condensation(g, labels);
  EXPECT_EQ(cond.dag.num_vertices(), g.num_vertices());
}

}  // namespace
}  // namespace pasgal
