// Tests for random_permutation / remove_duplicates / group_by_key.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "parlay/sequence_extras.h"

namespace pasgal {
namespace {

class SeqExtrasTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, SeqExtrasTest, ::testing::Values(1, 4));

TEST_P(SeqExtrasTest, RandomPermutationIsPermutation) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{1000},
                        std::size_t{50000}}) {
    auto perm = random_permutation(n, 7);
    ASSERT_EQ(perm.size(), n);
    std::vector<std::uint8_t> seen(n, 0);
    for (auto v : perm) {
      ASSERT_LT(v, n);
      EXPECT_FALSE(seen[v]);
      seen[v] = 1;
    }
  }
}

TEST_P(SeqExtrasTest, RandomPermutationDeterministicAndSeedSensitive) {
  EXPECT_EQ(random_permutation(1000, 5), random_permutation(1000, 5));
  EXPECT_NE(random_permutation(1000, 5), random_permutation(1000, 6));
}

TEST_P(SeqExtrasTest, RandomPermutationActuallyShuffles) {
  auto perm = random_permutation(10000, 3);
  std::size_t fixed_points = 0;
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] == i) ++fixed_points;
  }
  EXPECT_LT(fixed_points, 50u);  // expectation is 1
}

TEST_P(SeqExtrasTest, RemoveDuplicates) {
  auto v = tabulate(10000, [](std::size_t i) {
    return static_cast<int>(hash64(i) % 100);
  });
  auto distinct = remove_duplicates(std::span<const int>(v));
  std::set<int> expected(v.begin(), v.end());
  EXPECT_EQ(distinct, std::vector<int>(expected.begin(), expected.end()));
  EXPECT_EQ(count_distinct(std::span<const int>(v)), expected.size());
}

TEST_P(SeqExtrasTest, RemoveDuplicatesEdgeCases) {
  EXPECT_TRUE(remove_duplicates(std::span<const int>()).empty());
  std::vector<int> one = {42};
  EXPECT_EQ(remove_duplicates(std::span<const int>(one)), one);
  std::vector<int> same = {7, 7, 7, 7};
  EXPECT_EQ(remove_duplicates(std::span<const int>(same)), std::vector<int>{7});
}

TEST_P(SeqExtrasTest, GroupByKeyMatchesMap) {
  std::vector<std::pair<std::uint32_t, int>> in;
  for (std::size_t i = 0; i < 5000; ++i) {
    in.push_back({static_cast<std::uint32_t>(hash64(i) % 37),
                  static_cast<int>(i)});
  }
  auto groups = group_by_key(std::span<const std::pair<std::uint32_t, int>>(in));
  std::map<std::uint32_t, std::vector<int>> expected;
  for (auto& [k, v] : in) expected[k].push_back(v);
  ASSERT_EQ(groups.size(), expected.size());
  std::size_t gi = 0;
  for (auto& [k, vals] : expected) {
    EXPECT_EQ(groups[gi].first, k);
    EXPECT_EQ(groups[gi].second, vals) << "key " << k;  // stable order
    ++gi;
  }
}

TEST_P(SeqExtrasTest, GroupByKeyEmpty) {
  EXPECT_TRUE(
      group_by_key(std::span<const std::pair<std::uint32_t, int>>()).empty());
}

}  // namespace
}  // namespace pasgal
