// Tests for RunStats instrumentation and the cost model.
#include <gtest/gtest.h>

#include "parlay/parallel.h"
#include "pasgal/stats.h"

namespace pasgal {
namespace {

TEST(RunStats, CountersAccumulate) {
  Scheduler::reset(1);
  RunStats stats;
  stats.add_edges(10);
  stats.add_edges(5);
  stats.add_visits(3);
  EXPECT_EQ(stats.edges_scanned(), 15u);
  EXPECT_EQ(stats.vertices_visited(), 3u);
  EXPECT_EQ(stats.rounds(), 0u);
}

TEST(RunStats, RoundsAndFrontiers) {
  Scheduler::reset(1);
  RunStats stats;
  stats.end_round(10);
  stats.end_round(100);
  stats.end_round(7);
  EXPECT_EQ(stats.rounds(), 3u);
  EXPECT_EQ(stats.max_frontier(), 100u);
  EXPECT_EQ(stats.frontier_sizes(), (std::vector<std::uint64_t>{10, 100, 7}));
}

TEST(RunStats, ResetClears) {
  Scheduler::reset(1);
  RunStats stats;
  stats.add_edges(5);
  stats.end_round(1);
  stats.reset();
  EXPECT_EQ(stats.edges_scanned(), 0u);
  EXPECT_EQ(stats.rounds(), 0u);
}

TEST(RunStats, ParallelCountingIsExact) {
  Scheduler::reset(4);
  RunStats stats;
  parallel_for(0, 100000, [&](std::size_t) {
    stats.add_edges(1);
    stats.add_visits(2);
  });
  EXPECT_EQ(stats.edges_scanned(), 100000u);
  EXPECT_EQ(stats.vertices_visited(), 200000u);
  Scheduler::reset(1);
}

TEST(CostModel, MoreProcessorsNeverSlowerWithoutRounds) {
  CostModel model;
  // No synchronization: projected time must be non-increasing in P.
  double prev = model.projected_time_ns(1'000'000, 0, 1e9, 1);
  for (int p : {2, 4, 8, 16, 96}) {
    double t = model.projected_time_ns(1'000'000, 0, 1e9, p);
    EXPECT_LE(t, prev);
    prev = t;
  }
}

TEST(CostModel, SyncCostGrowsWithRoundsAndP) {
  CostModel model;
  double few_rounds = model.projected_time_ns(1'000'000, 10, 1e9, 96);
  double many_rounds = model.projected_time_ns(1'000'000, 10'000, 1e9, 96);
  EXPECT_LT(few_rounds, many_rounds);
}

TEST(CostModel, ParallelismCapLimitsSpeedup) {
  CostModel model;
  // Average frontier of 4 vertices: 96 cores cannot help beyond 4x.
  double t1 = model.projected_time_ns(1'000'000, 0, 4.0, 1);
  double t96 = model.projected_time_ns(1'000'000, 0, 4.0, 96);
  EXPECT_NEAR(t1 / t96, 4.0, 0.01);
}

TEST(CostModel, CalibrationRoundTrips) {
  RunStats stats;
  Scheduler::reset(1);
  stats.add_edges(1'000'000);
  CostModel model = calibrate(2e9 /*ns*/, 1'000'000);
  EXPECT_NEAR(model.c_work, 2000.0, 1e-6);  // 2us per edge op
  EXPECT_NEAR(model.projected_time_ns(1'000'000, 0, 1.0, 1), 2e9, 1e3);
}

TEST(CostModel, SpeedupBelowOneWhenSyncDominates) {
  CostModel model;
  model.c_work = 1.0;
  // Tiny work, huge round count: the paper's "parallel loses to sequential".
  double seq_ns = 1e6;  // 1ms sequential
  double speedup = model.projected_speedup(1'000'000, 100'000, 1e9, 96, seq_ns);
  EXPECT_LT(speedup, 1.0);
}

}  // namespace
}  // namespace pasgal
