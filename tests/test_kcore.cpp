// k-core decomposition: parallel peeling must match Batagelj-Zaversnik, and
// both must satisfy the defining property of coreness.
#include <gtest/gtest.h>

#include "algorithms/kcore/kcore.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

class KcoreTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, KcoreTest, ::testing::Values(1, 4));

std::vector<std::pair<std::string, Graph>> kcore_graphs() {
  std::vector<std::pair<std::string, Graph>> cases;
  cases.emplace_back("edgeless", Graph::from_edges(5, {}));
  cases.emplace_back("chain", gen::chain(300));
  cases.emplace_back("cycle", gen::cycle(100).symmetrize());
  cases.emplace_back("star", gen::star(100));
  cases.emplace_back("tree", gen::binary_tree(511));
  cases.emplace_back("grid", gen::rectangle_grid(20, 25));
  cases.emplace_back("clique", gen::complete(20).symmetrize());
  cases.emplace_back("rmat", gen::rmat(11, 30000, 3).symmetrize());
  cases.emplace_back("random", gen::random_graph(2000, 14000, 5).symmetrize());
  cases.emplace_back("knn", gen::knn_graph(2000, 5, 7).symmetrize());
  cases.emplace_back("bubbles", gen::bubbles(30, 10));
  cases.emplace_back("clique_with_tail", [] {
    std::vector<Edge> e;
    for (VertexId i = 0; i < 10; ++i) {
      for (VertexId j = 0; j < 10; ++j) {
        if (i != j) e.push_back({i, j});
      }
    }
    for (VertexId i = 10; i < 50; ++i) e.push_back({static_cast<VertexId>(i - 1), i});
    return Graph::from_edges(50, e).symmetrize();
  }());
  return cases;
}

TEST_P(KcoreTest, ParallelMatchesSequential) {
  for (const auto& [name, g] : kcore_graphs()) {
    EXPECT_EQ(pasgal_kcore(g), seq_kcore(g)) << name;
  }
}

TEST_P(KcoreTest, TauSweepMatches) {
  Graph g = gen::rmat(10, 12000, 9).symmetrize();
  auto expected = seq_kcore(g);
  for (std::uint32_t tau : {1u, 16u, 512u, 4096u}) {
    KcoreParams p;
    p.vgc.tau = tau;
    EXPECT_EQ(pasgal_kcore(g, p), expected) << "tau=" << tau;
  }
}

TEST_P(KcoreTest, KnownCorenessValues) {
  // Chain: everything coreness 1 (ends peel first but land at level 1).
  auto chain_core = seq_kcore(gen::chain(50));
  for (auto c : chain_core) EXPECT_EQ(c, 1u);
  // Cycle: coreness 2 everywhere.
  auto cyc = seq_kcore(gen::cycle(30).symmetrize());
  for (auto c : cyc) EXPECT_EQ(c, 2u);
  // k-clique: coreness k-1.
  auto clique = seq_kcore(gen::complete(12).symmetrize());
  for (auto c : clique) EXPECT_EQ(c, 11u);
  // Star: leaves and center all coreness 1.
  auto star = seq_kcore(gen::star(20));
  for (auto c : star) EXPECT_EQ(c, 1u);
  // Tree: coreness 1 except... no, all 1.
  auto tree = seq_kcore(gen::binary_tree(127));
  for (auto c : tree) EXPECT_EQ(c, 1u);
}

TEST_P(KcoreTest, CorenessDefiningProperty) {
  // For each vertex v with coreness c: the subgraph induced by
  // {u : core(u) >= c} has min degree >= c (v's c-core exists), and v has
  // degree < c+1 within {u : core(u) >= c+1} union {v}.
  Graph g = gen::random_graph(800, 6000, 11).symmetrize();
  auto core = pasgal_kcore(g);
  std::uint32_t max_core = 0;
  for (auto c : core) max_core = std::max(max_core, c);
  for (std::uint32_t c = 1; c <= max_core; ++c) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (core[v] < c) continue;
      std::size_t deg_in_core = 0;
      for (VertexId u : g.neighbors(v)) {
        if (core[u] >= c) ++deg_in_core;
      }
      EXPECT_GE(deg_in_core, c) << "v=" << v << " c=" << c;
    }
  }
}

TEST(KcoreRounds, VgcCollapsesPeelingChains) {
  Scheduler::reset(1);
  // A long path peels end-inward: one wave per position without VGC.
  Graph g = gen::chain(20000);
  KcoreParams no_vgc;
  no_vgc.vgc.tau = 1;
  RunStats chain_stats, vgc_stats;
  auto a = pasgal_kcore(g, no_vgc, &chain_stats);
  KcoreParams with_vgc;
  with_vgc.vgc.tau = 512;
  auto b = pasgal_kcore(g, with_vgc, &vgc_stats);
  EXPECT_EQ(a, b);
  EXPECT_LT(vgc_stats.rounds() * 10, chain_stats.rounds())
      << "in-task peeling chains must collapse rounds";
}

TEST(KcoreStats, WorkIsLinear) {
  Scheduler::reset(1);
  Graph g = gen::rectangle_grid(40, 40);
  RunStats stats;
  pasgal_kcore(g, {}, &stats);
  // Every edge is scanned O(1) times during peeling.
  EXPECT_LE(stats.edges_scanned(), 3 * g.num_edges());
  EXPECT_GE(stats.edges_scanned(), g.num_edges());
}

}  // namespace
}  // namespace pasgal
