// Tests for low-diameter decomposition and LDD-based connectivity.
#include <gtest/gtest.h>

#include <map>

#include "algorithms/cc/cc.h"
#include "algorithms/cc/ldd.h"
#include "graphs/generators.h"

namespace pasgal {
namespace {

class LddTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, LddTest, ::testing::Values(1, 4));

TEST_P(LddTest, EveryVertexAssigned) {
  Graph g = gen::rectangle_grid(30, 30);
  auto result = ldd(g, 0.2, 1);
  ASSERT_EQ(result.cluster.size(), g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NE(result.cluster[v], kInvalidVertex);
    // Cluster ids are centres, and centres belong to their own cluster.
    EXPECT_EQ(result.cluster[result.cluster[v]], result.cluster[v]);
  }
}

TEST_P(LddTest, ClustersAreConnected) {
  for (auto [name, g] : std::vector<std::pair<std::string, Graph>>{
           {"grid", gen::rectangle_grid(25, 25)},
           {"rmat", gen::rmat(10, 8000, 3).symmetrize()},
           {"bubbles", gen::bubbles(20, 10)}}) {
    auto result = ldd(g, 0.3, 7);
    // Flood inside each cluster from its centre must reach all members.
    std::vector<std::uint8_t> seen(g.num_vertices(), 0);
    for (VertexId c = 0; c < g.num_vertices(); ++c) {
      if (result.cluster[c] != c) continue;
      std::vector<VertexId> stack = {c};
      seen[c] = 1;
      while (!stack.empty()) {
        VertexId u = stack.back();
        stack.pop_back();
        for (VertexId v : g.neighbors(u)) {
          if (!seen[v] && result.cluster[v] == c) {
            seen[v] = 1;
            stack.push_back(v);
          }
        }
      }
    }
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_TRUE(seen[v]) << name << " v=" << v;
    }
  }
}

TEST_P(LddTest, SmallBetaMeansFewClusters) {
  Graph g = gen::rectangle_grid(40, 40);
  auto aggressive = ldd(g, 0.05, 3);  // few, large clusters
  auto shattering = ldd(g, 2.0, 3);   // many, tiny clusters
  EXPECT_LT(aggressive.num_clusters, shattering.num_clusters);
}

TEST_P(LddTest, CutEdgesBounded) {
  // In expectation, at most ~beta fraction of edges are cut; allow slack 4x.
  Graph g = gen::rectangle_grid(50, 50);
  double beta = 0.2;
  auto result = ldd(g, beta, 11);
  std::size_t cut = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v : g.neighbors(u)) {
      if (result.cluster[u] != result.cluster[v]) ++cut;
    }
  }
  EXPECT_LT(static_cast<double>(cut),
            4.0 * beta * static_cast<double>(g.num_edges()));
}

TEST_P(LddTest, RoundsLogarithmicNotDiameter) {
  // A 4x1000 strip has diameter ~1000, but LDD finishes in O(log n / beta)
  // rounds because clusters grow from everywhere.
  Graph g = gen::rectangle_grid(4, 1000);
  auto result = ldd(g, 0.2, 5);
  EXPECT_LT(result.rounds, 200u);
}

TEST_P(LddTest, LddCcMatchesUnionFind) {
  for (auto [name, g] : std::vector<std::pair<std::string, Graph>>{
           {"grid", gen::rectangle_grid(20, 20)},
           {"disconnected",
            gen::sampled_edges(gen::rectangle_grid(25, 25), 0.4, 3).symmetrize()},
           {"rmat", gen::rmat(10, 6000, 9).symmetrize()},
           {"isolated", Graph::from_edges(10, std::vector<Edge>{{1, 2}, {2, 1}})},
           {"edgeless", Graph::from_edges(7, {})}}) {
    auto expected = connected_components(g).label;
    EXPECT_EQ(ldd_cc(g, 0.2, 17), expected) << name;
  }
}

TEST_P(LddTest, LddCcSeedIndependent) {
  Graph g = gen::bubbles(15, 8);
  auto a = ldd_cc(g, 0.2, 1);
  auto b = ldd_cc(g, 0.5, 999);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace pasgal
