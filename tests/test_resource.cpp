// Tests for the memory-ceiling resolution in resource.h, centered on the
// PASGAL_MEM_LIMIT_MB overflow bug: `mb * 1024 * 1024` used to wrap for
// large values, silently turning a huge requested ceiling into a tiny one
// that rejected every allocation. Overflow is now a kUsage error.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "pasgal/error.h"
#include "pasgal/resource.h"

namespace pasgal {
namespace {

// Scoped PASGAL_MEM_LIMIT_MB override; restores the prior value on exit so
// tests cannot leak environment into each other.
class ScopedMemLimitEnv {
 public:
  explicit ScopedMemLimitEnv(const std::string& value) {
    const char* old = std::getenv("PASGAL_MEM_LIMIT_MB");
    if (old != nullptr) {
      had_old_ = true;
      old_ = old;
    }
    ::setenv("PASGAL_MEM_LIMIT_MB", value.c_str(), 1);
  }
  ~ScopedMemLimitEnv() {
    if (had_old_) {
      ::setenv("PASGAL_MEM_LIMIT_MB", old_.c_str(), 1);
    } else {
      ::unsetenv("PASGAL_MEM_LIMIT_MB");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

TEST(ResourceTest, MbToBytesConvertsSmallValues) {
  EXPECT_EQ(internal::mem_limit_mb_to_bytes(1), std::uint64_t{1} << 20);
  EXPECT_EQ(internal::mem_limit_mb_to_bytes(4096), std::uint64_t{4096} << 20);
}

TEST(ResourceTest, MbToBytesAcceptsTheExactCeiling) {
  // The largest representable limit converts without throwing and lands on
  // the top of the 64-bit range (all MB fully shifted in).
  std::uint64_t bytes = internal::mem_limit_mb_to_bytes(internal::kMaxMemLimitMb);
  EXPECT_EQ(bytes, internal::kMaxMemLimitMb << 20);
}

TEST(ResourceTest, MbToBytesRejectsOverflow) {
  // One past the ceiling used to wrap to a near-zero byte count; it must
  // now be a usage error naming the offending value.
  try {
    internal::mem_limit_mb_to_bytes(internal::kMaxMemLimitMb + 1);
    FAIL() << "overflowing MB value did not throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kUsage);
    EXPECT_NE(std::string(e.what()).find("overflow"), std::string::npos);
  }
}

TEST(ResourceTest, DetectHonorsValidEnvValue) {
  ScopedMemLimitEnv env("512");
  EXPECT_EQ(internal::detect_memory_limit_bytes(), std::uint64_t{512} << 20);
}

TEST(ResourceTest, DetectRejectsOverflowingEnvValue) {
  // 2^44 MB = 2^64 bytes: the first value whose conversion no longer fits.
  ScopedMemLimitEnv env(std::to_string(internal::kMaxMemLimitMb + 1));
  EXPECT_THROW(internal::detect_memory_limit_bytes(), Error);
}

TEST(ResourceTest, DetectRejectsAstronomicalEnvValue) {
  // Way past even ULLONG_MAX: strtoull saturates with ERANGE, and the
  // saturated value is rejected like any other overflowing one instead of
  // silently wrapping.
  ScopedMemLimitEnv env("999999999999999999999999");
  EXPECT_THROW(internal::detect_memory_limit_bytes(), Error);
}

TEST(ResourceTest, DetectIgnoresMalformedEnvValues) {
  // Non-numeric / non-positive values fall through to system detection,
  // which on Linux reads /proc/meminfo — either way the result is nonzero.
  for (const char* bad : {"", "abc", "-5", "0", "12abc"}) {
    ScopedMemLimitEnv env(bad);
    EXPECT_GT(internal::detect_memory_limit_bytes(), 0u) << "value: " << bad;
  }
}

TEST(ResourceTest, CheckAllocationUsesTheCachedLimit) {
  EXPECT_TRUE(check_allocation(1, "tiny probe").ok());
  Status s = check_allocation(~std::uint64_t{0}, "absurd probe");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.category(), ErrorCategory::kResource);
}

}  // namespace
}  // namespace pasgal
