// Tests for the graph generators that stand in for the paper's datasets.
#include <gtest/gtest.h>

#include "graphs/generators.h"

namespace pasgal {
namespace {

TEST(Generators, RmatDeterministic) {
  Graph a = gen::rmat(10, 5000, 7);
  Graph b = gen::rmat(10, 5000, 7);
  EXPECT_EQ(a, b);
  Graph c = gen::rmat(10, 5000, 8);
  EXPECT_NE(a, c);
}

TEST(Generators, RmatShape) {
  Graph g = gen::rmat(12, 40000, 1);
  EXPECT_EQ(g.num_vertices(), 4096u);
  EXPECT_LE(g.num_edges(), 40000u);   // dedup may remove some
  EXPECT_GT(g.num_edges(), 30000u);   // but not most
  // Power law: max degree far above average.
  EdgeId max_deg = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_deg = std::max(max_deg, g.out_degree(v));
  }
  EXPECT_GT(max_deg, 10 * g.num_edges() / g.num_vertices());
}

TEST(Generators, RectangleGridStructure) {
  Graph g = gen::rectangle_grid(3, 5);
  EXPECT_EQ(g.num_vertices(), 15u);
  // Interior vertex has degree 4, corner 2.
  EXPECT_EQ(g.out_degree(0), 2u);           // corner
  EXPECT_EQ(g.out_degree(7), 4u);           // interior (row1,col2)
  EXPECT_TRUE(g.is_symmetric());
  // 2*rows*cols - rows - cols undirected edges, stored both ways.
  EXPECT_EQ(g.num_edges(), 2u * (2 * 15 - 3 - 5));
}

TEST(Generators, RoadGridConnectedAsUndirected) {
  Graph g = gen::road_grid(20, 30, 0.8, 3);
  EXPECT_EQ(g.num_vertices(), 600u);
  Graph sym = g.symmetrize();
  // Underlying lattice is connected, so the symmetrized version must be too
  // (checked properly in BFS tests; here just sanity on edge counts).
  EXPECT_GE(sym.num_edges(), 2u * (2 * 600 - 20 - 30) * 9 / 10);
}

TEST(Generators, SampledEdgesRemovesRoughlyRightFraction) {
  Graph g = gen::rectangle_grid(40, 40);
  Graph s = gen::sampled_edges(g, 0.7, 5);
  double kept = static_cast<double>(s.num_edges()) / g.num_edges();
  EXPECT_NEAR(kept, 0.7, 0.05);
  EXPECT_EQ(s.num_vertices(), g.num_vertices());
}

TEST(Generators, ChainAndCycle) {
  Graph c = gen::chain(100);
  EXPECT_EQ(c.num_edges(), 198u);
  EXPECT_TRUE(c.is_symmetric());
  Graph dc = gen::chain(100, /*directed=*/true);
  EXPECT_EQ(dc.num_edges(), 99u);
  Graph cy = gen::cycle(50);
  EXPECT_EQ(cy.num_edges(), 50u);
  for (VertexId v = 0; v < 50; ++v) EXPECT_EQ(cy.out_degree(v), 1u);
}

TEST(Generators, StarAndTreeAndComplete) {
  Graph s = gen::star(10);
  EXPECT_EQ(s.out_degree(0), 9u);
  EXPECT_TRUE(s.is_symmetric());
  Graph t = gen::binary_tree(15);
  EXPECT_EQ(t.num_edges(), 28u);  // 14 undirected edges
  EXPECT_TRUE(t.is_symmetric());
  Graph k = gen::complete(6);
  EXPECT_EQ(k.num_edges(), 30u);
}

TEST(Generators, BubblesShape) {
  Graph b = gen::bubbles(10, 8);
  EXPECT_EQ(b.num_vertices(), 80u);
  EXPECT_TRUE(b.is_symmetric());
  // Each ring: 8 edges; 9 junctions; all doubled.
  EXPECT_EQ(b.num_edges(), 2u * (10 * 8 + 9));
}

TEST(Generators, KnnGraphBasics) {
  Graph g = gen::knn_graph(2000, 5, 11);
  EXPECT_EQ(g.num_vertices(), 2000u);
  // Every vertex has k out-neighbours (dedup can only remove exact repeats).
  for (VertexId v = 0; v < 100; ++v) EXPECT_EQ(g.out_degree(v), 5u);
}

TEST(Generators, KnnGraphNeighboursAreNear) {
  // The 1-NN of each point must be at most the distance to any fixed other
  // point; spot check that edges do not span the whole unit square.
  Graph g = gen::knn_graph(5000, 3, 13);
  EXPECT_EQ(g.num_vertices(), 5000u);
  std::size_t long_edges = 0;
  // Regenerate the points the same way the generator does.
  Random rng(13);
  auto pt = [&](std::size_t i) {
    return std::pair<double, double>(
        static_cast<double>(rng.ith_rand(2 * i) >> 11) / 9007199254740992.0,
        static_cast<double>(rng.ith_rand(2 * i + 1) >> 11) / 9007199254740992.0);
  };
  for (VertexId v = 0; v < 500; ++v) {
    auto [x1, y1] = pt(v);
    for (VertexId u : g.neighbors(v)) {
      auto [x2, y2] = pt(u);
      double d2 = (x1 - x2) * (x1 - x2) + (y1 - y2) * (y1 - y2);
      if (d2 > 0.01) ++long_edges;  // 0.1 apart in a 5000-point square: far
    }
  }
  EXPECT_EQ(long_edges, 0u);
}

TEST(Generators, KnnClusteredProducesComponentsOfClusters) {
  Graph g = gen::knn_graph(3000, 4, 17, /*clusters=*/5);
  EXPECT_EQ(g.num_vertices(), 3000u);
  EXPECT_GE(g.num_edges(), 3000u * 3);
}

TEST(Generators, AddWeightsSymmetricAndInRange) {
  Graph g = gen::rectangle_grid(10, 10);
  auto wg = gen::add_weights(g, 50, 3);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    auto nbrs = wg.neighbors(u);
    auto wts = wg.neighbor_weights(u);
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      EXPECT_GE(wts[i], 1u);
      EXPECT_LE(wts[i], 50u);
      // Symmetric: find reverse edge and compare.
      VertexId v = nbrs[i];
      auto rn = wg.neighbors(v);
      auto rw = wg.neighbor_weights(v);
      for (std::size_t j = 0; j < rn.size(); ++j) {
        if (rn[j] == u) {
          EXPECT_EQ(rw[j], wts[i]);
        }
      }
    }
  }
}

TEST(Generators, RandomGraphSize) {
  Graph g = gen::random_graph(1000, 8000, 21);
  EXPECT_EQ(g.num_vertices(), 1000u);
  EXPECT_GT(g.num_edges(), 7000u);
  EXPECT_LE(g.num_edges(), 8000u);
}

}  // namespace
}  // namespace pasgal
