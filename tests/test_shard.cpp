// Shard-at-a-time execution (DESIGN.md §5i): ShardPlan geometry, the
// MappedWindow residency counters, byte-identical sharded vs in-core
// algorithm output in both window modes (v1 raw, v2 decoding), the typed
// guards around whole-graph access on windowed opens, cancellation at shard
// sweep boundaries, and the windowed footprint pricing.
#include <gtest/gtest.h>

#include <filesystem>
#include <numeric>

#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/cc/ldd.h"
#include "algorithms/kcore/kcore.h"
#include "algorithms/pagerank/pagerank.h"
#include "algorithms/sssp/sssp.h"
#include "algorithms/tc/tc.h"
#include "graphs/generators.h"
#include "graphs/graph.h"
#include "graphs/graph_io.h"
#include "graphs/registry.h"
#include "parlay/hash_rng.h"
#include "pasgal/cancel.h"
#include "pasgal/edge_map.h"
#include "pasgal/telemetry.h"

namespace pasgal {
namespace {

class ShardTest : public ::testing::Test {
 protected:
  std::string temp_path(const std::string& name) {
    auto dir = std::filesystem::temp_directory_path() / "pasgal_shard_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
  void TearDown() override {
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "pasgal_shard_test");
  }
};

Graph random_graph(std::size_t n, std::size_t m, std::uint64_t seed) {
  std::vector<Edge> edges(m);
  Random rng(seed);
  for (std::size_t i = 0; i < m; ++i) {
    edges[i] = Edge{static_cast<VertexId>(rng.ith_rand(2 * i) % n),
                    static_cast<VertexId>(rng.ith_rand(2 * i + 1) % n)};
  }
  return Graph::from_edges(n, edges);
}

// --- ShardPlan geometry -----------------------------------------------------

TEST_F(ShardTest, PlanCoversAllVerticesContiguously) {
  Graph g = random_graph(5000, 60000, 1);
  ShardPlan plan = ShardPlan::build(g.offsets(), sizeof(VertexId),
                                    16 << 10, /*align=*/64);
  ASSERT_GT(plan.size(), 1u);
  EXPECT_EQ(plan[0].v_begin, 0u);
  EXPECT_EQ(plan[0].e_begin, 0u);
  for (std::size_t i = 0; i < plan.size(); ++i) {
    const ShardRange& r = plan[i];
    EXPECT_LT(r.v_begin, r.v_end);
    EXPECT_EQ(r.e_begin, g.offsets()[r.v_begin]);
    EXPECT_EQ(r.e_end, g.offsets()[r.v_end]);
    if (i > 0) {
      EXPECT_EQ(r.v_begin, plan[i - 1].v_end);
      EXPECT_EQ(r.e_begin, plan[i - 1].e_end);
      // Interior boundaries snap to the alignment block.
      EXPECT_EQ(r.v_begin % 64, 0u);
    }
  }
  EXPECT_EQ(plan[plan.size() - 1].v_end, g.num_vertices());
  EXPECT_EQ(plan[plan.size() - 1].e_end, g.num_edges());
}

TEST_F(ShardTest, PlanRespectsWindowBudget) {
  Graph g = random_graph(5000, 60000, 2);
  const std::uint64_t window = 16 << 10;
  ShardPlan plan = ShardPlan::build(g.offsets(), sizeof(VertexId), window, 64);
  StorageEdgeId max_edges = 0;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    StorageEdgeId edges = plan[i].e_end - plan[i].e_begin;
    max_edges = std::max(max_edges, edges);
    // A multi-block shard stays within the budget; only a single block
    // heavier than the whole window may exceed it.
    if (plan[i].v_end - plan[i].v_begin > 64) {
      EXPECT_LE(edges * sizeof(VertexId), window);
    }
  }
  EXPECT_EQ(plan.max_shard_edges(), max_edges);
  EXPECT_EQ(plan.window_bytes(), window);
}

TEST_F(ShardTest, PlanHubBlockGetsItsOwnShard) {
  // One vertex with 1000 edges, window budget of 16 edges: the hub's block
  // must become a (oversized) shard instead of an error.
  std::vector<Edge> edges;
  for (int i = 0; i < 1000; ++i) {
    edges.push_back(Edge{0, static_cast<VertexId>(i % 64)});
  }
  Graph g = Graph::from_edges(64, edges);
  ShardPlan plan = ShardPlan::build(g.offsets(), sizeof(VertexId),
                                    16 * sizeof(VertexId), 4);
  ASSERT_GE(plan.size(), 1u);
  EXPECT_EQ(plan[0].v_begin, 0u);
  EXPECT_EQ(plan[0].e_end - plan[0].e_begin, 1000u);
}

TEST_F(ShardTest, ShardOfFindsEveryVertex) {
  Graph g = random_graph(3000, 40000, 3);
  ShardPlan plan = ShardPlan::build(g.offsets(), sizeof(VertexId), 8 << 10, 32);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::size_t s = plan.shard_of(v);
    ASSERT_LT(s, plan.size());
    EXPECT_GE(v, plan[s].v_begin);
    EXPECT_LT(v, plan[s].v_end);
  }
}

// --- sharded open + window counters ----------------------------------------

TEST_F(ShardTest, ShardedOpenRawKeepsFullSpans) {
  Graph g = random_graph(4000, 50000, 4);
  auto path = temp_path("raw.pgr");
  write_pgr(g, path);
  PgrShardSpec spec;
  spec.window_bytes = 16 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  EXPECT_FALSE(sharded.windowed());  // raw mode: pointers cover everything
  ASSERT_NE(sharded.storage(), nullptr);
  ASSERT_NE(sharded.storage()->shard_window(), nullptr);
  EXPECT_GT(sharded.storage()->shard_plan()->size(), 1u);
  EXPECT_EQ(sharded, g);  // raw sharded open is still the same graph
}

TEST_F(ShardTest, ShardedOpenCompressedIsWindowed) {
  Graph g = random_graph(4000, 50000, 5);
  auto path = temp_path("v2.pgr");
  PgrWriteOptions wopts;
  wopts.compress_targets = true;
  write_pgr(g, path, wopts);
  PgrShardSpec spec;
  spec.window_bytes = 16 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  EXPECT_TRUE(sharded.windowed());
  EXPECT_EQ(sharded.num_vertices(), g.num_vertices());
  EXPECT_EQ(sharded.num_edges(), g.num_edges());
  // Decoding-mode shards snap to the 1024-vertex chunk grid.
  const ShardPlan& plan = *sharded.storage()->shard_plan();
  for (std::size_t i = 1; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].v_begin % 1024, 0u);
  }
}

TEST_F(ShardTest, WindowCountsSweepsAndFaults) {
  Graph g = random_graph(4000, 50000, 6);
  auto path = temp_path("cnt.pgr");
  write_pgr(g, path);
  PgrShardSpec spec;
  spec.window_bytes = 16 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  MappedWindow& w = *sharded.storage()->shard_window();
  ASSERT_GE(w.plan().size(), 3u);
  // Open-time validation swept the shards; metrics start from zero.
  w.reset_counters();
  EXPECT_EQ(w.sweeps(), 0u);
  EXPECT_EQ(w.faults(), 0u);
  w.activate(0);
  w.activate(1);  // fresh shards: sweeps, no faults
  EXPECT_EQ(w.sweeps(), 2u);
  EXPECT_EQ(w.faults(), 0u);
  w.activate(0);  // re-activation of a dropped shard: a refault burst
  EXPECT_EQ(w.sweeps(), 3u);
  EXPECT_EQ(w.faults(), 1u);
  w.activate(0);  // already active: no transition, no counts
  EXPECT_EQ(w.sweeps(), 3u);
  EXPECT_EQ(w.faults(), 1u);
  w.release();
  w.activate(0);  // released then re-activated: sweep + fault
  EXPECT_EQ(w.sweeps(), 4u);
  EXPECT_EQ(w.faults(), 2u);
  w.release();
  w.release();  // idempotent
}

TEST_F(ShardTest, ShardedOpenBypassesRegistry) {
  Graph g = random_graph(2000, 20000, 7);
  auto path = temp_path("reg.pgr");
  write_pgr(g, path);
  GraphRegistry::Stats before = GraphRegistry::instance().stats();
  PgrShardSpec spec;
  spec.window_bytes = 8 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  GraphRegistry::Stats after = GraphRegistry::instance().stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.entries, before.entries);
}

TEST_F(ShardTest, AutoShardStaysInCoreWhenItFits) {
  Graph g = random_graph(1000, 8000, 8);
  auto path = temp_path("auto.pgr");
  write_pgr(g, path);
  PgrShardSpec spec;
  spec.auto_shard = true;
  Graph opened = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  // Small graph, default ceiling: a plain in-core open, no window attached.
  EXPECT_FALSE(opened.windowed());
  EXPECT_EQ(opened.storage()->shard_window(), nullptr);
  EXPECT_EQ(opened, g);
}

// --- byte-identical traversal ----------------------------------------------

TEST_F(ShardTest, GbbsBfsIdenticalShardedRaw) {
  Graph g = random_graph(6000, 80000, 9);
  auto path = temp_path("bfs_raw.pgr");
  PgrWriteOptions wopts;
  wopts.include_transpose = true;
  write_pgr(g, path, wopts);
  Graph in_core = read_pgr(path);
  PgrShardSpec spec;
  spec.window_bytes = 16 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  auto want = gbbs_bfs(in_core, in_core.transpose(), 0);
  auto got = gbbs_bfs(sharded, sharded.transpose(), 0);
  EXPECT_EQ(want, got);
}

TEST_F(ShardTest, GbbsBfsIdenticalShardedCompressed) {
  Graph g = random_graph(6000, 80000, 10);
  auto path = temp_path("bfs_v2.pgr");
  PgrWriteOptions wopts;
  wopts.include_transpose = true;
  wopts.compress_targets = true;
  write_pgr(g, path, wopts);
  Graph in_core = read_pgr(path);
  PgrShardSpec spec;
  spec.window_bytes = 16 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  ASSERT_TRUE(sharded.windowed());
  auto want = gbbs_bfs(in_core, in_core.transpose(), 0);
  auto got = gbbs_bfs(sharded, sharded.transpose(), 0);
  EXPECT_EQ(want, got);
}

TEST_F(ShardTest, MsBfsBatchIdenticalSharded) {
  Graph g = random_graph(6000, 80000, 11);
  auto path = temp_path("ms.pgr");
  PgrWriteOptions wopts;
  wopts.include_transpose = true;
  write_pgr(g, path, wopts);
  Graph in_core = read_pgr(path);
  PgrShardSpec spec;
  spec.window_bytes = 16 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  std::vector<VertexId> sources = {0, 17, 900, 4099};
  auto want = ms_bfs(in_core, in_core.transpose(), sources);
  auto got = ms_bfs(sharded, sharded.transpose(), sources);
  EXPECT_EQ(want, got);
}

TEST_F(ShardTest, EmBellmanFordIdenticalShardedCompressed) {
  Graph g = random_graph(4000, 50000, 12);
  WeightedGraph<std::uint32_t> wg = gen::add_weights(g, 50);
  auto path = temp_path("em.pgr");
  PgrWriteOptions wopts;
  wopts.compress_targets = true;
  write_pgr(wg, path, wopts);
  WeightedGraph<std::uint32_t> in_core = read_weighted_pgr(path);
  PgrShardSpec spec;
  spec.window_bytes = 16 << 10;
  WeightedGraph<std::uint32_t> sharded =
      read_weighted_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  ASSERT_TRUE(sharded.unweighted().windowed());
  // Ground truth from Dijkstra on the in-core open; the edge_map Bellman-
  // Ford must converge to the same distances through the window.
  auto want = dijkstra(in_core, 0);
  auto got = em_bellman_ford(sharded, 0);
  EXPECT_EQ(want, got);
}

// --- typed guards on windowed opens ----------------------------------------

TEST_F(ShardTest, WindowedTransposeIsTypedUsageError) {
  Graph g = random_graph(3000, 30000, 13);
  auto path = temp_path("guard.pgr");
  PgrWriteOptions wopts;
  wopts.compress_targets = true;
  write_pgr(g, path, wopts);  // no transpose sections
  PgrShardSpec spec;
  spec.window_bytes = 8 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  try {
    Graph gt = sharded.transpose();
    FAIL() << "transpose on a windowed open must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kUsage);
    EXPECT_NE(std::string(e.what()).find("windowed"), std::string::npos);
  }
}

TEST_F(ShardTest, ShardSpecConflictsAreTypedUsageErrors) {
  Graph g = random_graph(500, 4000, 14);
  auto path = temp_path("conflict.pgr");
  write_pgr(g, path);
  PgrShardSpec spec;
  spec.window_bytes = 8 << 10;
  try {
    read_pgr(path, PgrOpen::kCopy, false, nullptr, spec);
    FAIL() << "kCopy + shard spec must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kUsage);
  }
  try {
    read_pgr(path, PgrOpen::kMmap, /*validate=*/true, nullptr, spec);
    FAIL() << "validate + shard spec must throw";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kUsage);
  }
}

// --- cancellation at shard sweep boundaries ---------------------------------

TEST_F(ShardTest, CancelMidSweepUnwindsAtShardBoundaryAndWindowIsReusable) {
  Graph g = random_graph(6000, 80000, 15);
  auto path = temp_path("cancel.pgr");
  PgrWriteOptions wopts;
  wopts.include_transpose = true;
  write_pgr(g, path, wopts);
  PgrShardSpec spec;
  spec.window_bytes = 16 << 10;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  ASSERT_GE(sharded.storage()->shard_plan()->size(), 3u);

  // Cancel from inside the first processed shard: the edge_map entry check
  // has already passed, so the unwind happens at the next shard boundary.
  CancelToken token;
  std::vector<VertexId> all(g.num_vertices());
  std::iota(all.begin(), all.end(), 0);
  VertexSubset frontier = VertexSubset::sparse(g.num_vertices(), all);
  EdgeMapOptions opt;
  opt.allow_dense = false;
  opt.cancel = &token;
  auto update = [&](VertexId, VertexId) {
    token.cancel();
    return false;
  };
  auto cond = [](VertexId) { return true; };
  try {
    edge_map_sparse(sharded, frontier, update, cond, opt);
    FAIL() << "cancelled sweep must throw kTimeout";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTimeout);
    EXPECT_NE(std::string(e.what()).find("shard sweep boundary"),
              std::string::npos);
  }

  // The unwind released the window; the same storage must run a full,
  // correct traversal afterwards.
  MappedWindow& w = *sharded.storage()->shard_window();
  w.reset_counters();
  auto got = gbbs_bfs(sharded, sharded.transpose(), 0);
  Graph in_core = read_pgr(path);
  EXPECT_EQ(got, gbbs_bfs(in_core, in_core.transpose(), 0));
  EXPECT_GT(w.sweeps(), 0u);
}

// --- footprint pricing ------------------------------------------------------

TEST_F(ShardTest, WindowedResidentBytesPriceWindowNotFile) {
  Graph g = random_graph(8000, 120000, 16);
  auto path = temp_path("price.pgr");
  PgrWriteOptions wopts;
  wopts.compress_targets = true;
  write_pgr(g, path, wopts);
  const std::uint64_t window = 16 << 10;
  PgrShardSpec spec;
  spec.window_bytes = window;
  Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
  std::uint64_t resident = sharded.storage()->resident_bytes();
  std::uint64_t file_bytes = std::filesystem::file_size(path);
  // Offsets + window + decode buffer — far below the whole file, and no
  // less than the offsets array alone.
  EXPECT_LT(resident, file_bytes);
  EXPECT_GE(resident, (g.num_vertices() + 1) * sizeof(EdgeId));
}

TEST_F(ShardTest, CheckWindowedFootprintScalesWithWindow) {
  // A graph whose offsets alone fit easily: the windowed check must accept
  // a small window for huge m where the in-core check would reject.
  Status ok = GraphStorage::check_windowed_footprint(
      /*n=*/1000, /*window_bytes=*/1 << 20, /*extra_bytes=*/1 << 20, "t.pgr");
  EXPECT_TRUE(ok.ok());
}

// --- metrics schema ---------------------------------------------------------

// --- whole-graph algorithm families on sharded opens ------------------------

TEST_F(ShardTest, WholeGraphFamiliesAreTypedUsageErrorsOnShardedOpens) {
  // cc, kcore and tc walk the whole CSR at random, so both sharded flavors
  // (raw advisory window and compressed decode window) must refuse with the
  // typed kUsage error from ensure_in_core — never fault past the window.
  Graph g = random_graph(3000, 30000, 16);
  for (bool compress : {false, true}) {
    SCOPED_TRACE(compress ? "compressed" : "raw");
    auto path = temp_path(compress ? "fam_v2.pgr" : "fam_raw.pgr");
    PgrWriteOptions wopts;
    wopts.compress_targets = compress;
    write_pgr(g, path, wopts);
    PgrShardSpec spec;
    spec.window_bytes = 8 << 10;
    Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
    AlgoOptions opt;
    auto expect_usage = [&](const char* what, auto&& fn) {
      try {
        fn();
        ADD_FAILURE() << what << " on a sharded open must throw";
      } catch (const Error& e) {
        EXPECT_EQ(e.category(), ErrorCategory::kUsage) << what;
        EXPECT_NE(std::string(e.what()).find("windowed"), std::string::npos)
            << what;
      }
    };
    expect_usage("connected_components",
                 [&] { connected_components(sharded, opt); });
    expect_usage("label_prop_cc", [&] { label_prop_cc(sharded, opt); });
    expect_usage("ldd_cc", [&] { ldd_cc(sharded, opt); });
    expect_usage("seq_kcore", [&] { seq_kcore(sharded, opt); });
    expect_usage("pasgal_kcore", [&] { pasgal_kcore(sharded, opt); });
    expect_usage("seq_tc", [&] { seq_tc(sharded, opt); });
    expect_usage("pasgal_tc", [&] { pasgal_tc(sharded, opt); });
    expect_usage("symmetrize", [&] { sharded.symmetrize(); });
  }
}

TEST_F(ShardTest, PagerankIdenticalShardedRawAndCompressed) {
  // The dense pull walks the transpose's shard plan one contiguous
  // destination range at a time, and every destination's in-edges arrive
  // whole, so the sums — and therefore the ranks — must be byte-identical
  // to the in-core run, not merely close.
  Graph g = random_graph(6000, 80000, 17);
  for (bool compress : {false, true}) {
    SCOPED_TRACE(compress ? "compressed" : "raw");
    auto path = temp_path(compress ? "pr_v2.pgr" : "pr_raw.pgr");
    PgrWriteOptions wopts;
    wopts.include_transpose = true;
    wopts.compress_targets = compress;
    write_pgr(g, path, wopts);
    Graph in_core = read_pgr(path);
    PgrShardSpec spec;
    spec.window_bytes = 16 << 10;
    Graph sharded = read_pgr(path, PgrOpen::kMmap, false, nullptr, spec);
    PagerankResult want = pasgal_pagerank(in_core, in_core.transpose());
    PagerankResult got = pasgal_pagerank(sharded, sharded.transpose());
    EXPECT_EQ(want.iterations, got.iterations);
    EXPECT_EQ(want.delta, got.delta);
    ASSERT_EQ(want.rank.size(), got.rank.size());
    for (std::size_t v = 0; v < want.rank.size(); ++v) {
      ASSERT_EQ(want.rank[v], got.rank[v]) << "vertex " << v;
    }
  }
}

TEST_F(ShardTest, ShardMetricsSectionValidates) {
  MetricsDoc doc("bfs", "gbbs", "g.pgr", 100, 1000);
  doc.set_shard(8, 1 << 20, 25, 9);
  doc.add_trial(0.5, {});
  json::Value parsed;
  ASSERT_TRUE(json::parse(doc.to_json(), parsed).ok());
  EXPECT_TRUE(validate_metrics(parsed).ok());
  const json::Value* shard = parsed.find("shard");
  ASSERT_NE(shard, nullptr);
  EXPECT_EQ(shard->find("shards")->number, 8);
  EXPECT_EQ(shard->find("window_bytes")->number, 1 << 20);
  EXPECT_EQ(shard->find("shard_sweeps")->number, 25);
  EXPECT_EQ(shard->find("window_faults")->number, 9);
}

TEST_F(ShardTest, ShardMetricsRejectsFaultsAboveSweeps) {
  MetricsDoc doc("bfs", "gbbs", "g.pgr", 100, 1000);
  doc.set_shard(8, 1 << 20, /*shard_sweeps=*/3, /*window_faults=*/7);
  doc.add_trial(0.5, {});
  json::Value parsed;
  ASSERT_TRUE(json::parse(doc.to_json(), parsed).ok());
  EXPECT_FALSE(validate_metrics(parsed).ok());
}

}  // namespace
}  // namespace pasgal
