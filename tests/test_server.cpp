// Tests for the pasgal_serve daemon (pasgal/server.h) and the fault
// injection failpoints (pasgal/fault.h): protocol correctness, typed error
// responses for every failure class, admission control + LRU eviction,
// deadline expiry with worker-pool survival, injected faults per site, and
// an 8-thread concurrent stress mix. Everything runs in-process: the server
// runs on a background thread and tests talk to it through real unix-socket
// connections.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "graphs/generators.h"
#include "graphs/graph_io.h"
#include "graphs/registry.h"
#include "pasgal/fault.h"
#include "pasgal/server.h"

namespace pasgal {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    GraphRegistry::instance().clear();
    fault::disarm();
  }

  void TearDown() override {
    if (server_ != nullptr) stop_server();
    fault::disarm();
    GraphRegistry::instance().clear();
    std::filesystem::remove_all(std::filesystem::temp_directory_path() /
                                "pasgal_server_test");
  }

  std::string temp_path(const std::string& name) {
    auto dir = std::filesystem::temp_directory_path() / "pasgal_server_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }

  std::string write_graph(const std::string& name, std::size_t rows = 64,
                          PgrWriteOptions opts = {}) {
    std::string path = temp_path(name);
    write_pgr(gen::rectangle_grid(rows, 4), path, opts);
    return path;
  }

  std::string write_weighted_graph(const std::string& name,
                                   std::size_t n = 256) {
    std::string path = temp_path(name);
    write_pgr(gen::add_weights(gen::chain(n), 10), path);
    return path;
  }

  void start_server(ServerOptions opts = {}) {
    if (opts.socket_path.empty()) opts.socket_path = temp_path("serve.sock");
    opts.poll_tick_ms = 20;  // fast drain in tests
    server_ = std::make_unique<Server>(opts);
    server_->bind();
    server_thread_ = std::thread([this] { server_->run(); });
  }

  void stop_server() {
    server_->request_stop();
    if (server_thread_.joinable()) server_thread_.join();
    server_ = nullptr;
  }

  // A blocking unix-socket client connection.
  struct Client {
    int fd = -1;
    std::string buf;

    ~Client() {
      if (fd >= 0) ::close(fd);
    }

    void send_raw(const std::string& data) {
      std::size_t sent = 0;
      while (sent < data.size()) {
        ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
        ASSERT_GT(n, 0) << "send failed: " << std::strerror(errno);
        sent += static_cast<std::size_t>(n);
      }
    }

    // One newline-terminated response; "" when the server closed first.
    std::string recv_line() {
      std::size_t nl;
      while ((nl = buf.find('\n')) == std::string::npos) {
        char chunk[4096];
        ssize_t got = ::recv(fd, chunk, sizeof(chunk), 0);
        if (got < 0 && errno == EINTR) continue;
        if (got <= 0) return "";
        buf.append(chunk, static_cast<std::size_t>(got));
      }
      std::string line = buf.substr(0, nl);
      buf.erase(0, nl + 1);
      return line;
    }

    std::string request(const std::string& line) {
      send_raw(line + "\n");
      return recv_line();
    }
  };

  Client connect_client() {
    Client c;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::string path = server_socket_path();
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    c.fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(c.fd, 0);
    EXPECT_EQ(
        ::connect(c.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    return c;
  }

  std::string request_once(const std::string& line) {
    Client c = connect_client();
    return c.request(line);
  }

  std::string server_socket_path() { return temp_path("serve.sock"); }

  std::unique_ptr<Server> server_;
  std::thread server_thread_;
};

bool is_metrics_json(const std::string& resp) {
  return !resp.empty() && resp.front() == '{' &&
         resp.find("\"schema\":\"pasgal.metrics\"") != std::string::npos;
}

// --- protocol basics ---------------------------------------------------------

TEST_F(ServerTest, OpenQueryStatsEvictRoundTrip) {
  std::string path = write_graph("basic.pgr");
  start_server();

  std::string opened = request_once("open graph=" + path);
  EXPECT_EQ(opened.rfind("ok opened ", 0), 0u) << opened;
  EXPECT_NE(opened.find("warm=0"), std::string::npos) << opened;

  std::string bfs = request_once("bfs graph=" + path + " source=0");
  EXPECT_TRUE(is_metrics_json(bfs)) << bfs;
  EXPECT_EQ(bfs.find('\n'), std::string::npos) << "responses are one line";

  std::string stats = request_once("stats");
  EXPECT_EQ(stats.rfind("ok ", 0), 0u) << stats;
  EXPECT_NE(stats.find("retained=1"), std::string::npos) << stats;

  std::string evicted = request_once("evict graph=" + path);
  EXPECT_EQ(evicted.rfind("ok evicted ", 0), 0u) << evicted;
}

TEST_F(ServerTest, QueryAutoOpensAndSecondOpenIsWarm) {
  std::string path = write_graph("auto.pgr");
  start_server();
  EXPECT_TRUE(is_metrics_json(request_once("bfs graph=" + path + " source=5")));
  std::string opened = request_once("open graph=" + path);
  EXPECT_NE(opened.find("warm=1"), std::string::npos)
      << "the query's auto-open retained the mapping: " << opened;
}

TEST_F(ServerTest, SsspOnWeightedGraphReturnsMetrics) {
  std::string path = write_weighted_graph("wsssp.pgr");
  start_server();
  std::string resp =
      request_once("sssp graph=" + path + " source=0 algo=delta");
  EXPECT_TRUE(is_metrics_json(resp)) << resp;
}

TEST_F(ServerTest, FamilyVerbsReturnMetrics) {
  std::string path = write_graph("family.pgr");
  start_server();

  Client c = connect_client();
  std::string cc = c.request("cc graph=" + path);
  EXPECT_TRUE(is_metrics_json(cc)) << cc;
  EXPECT_NE(cc.find("\"variant\":\"uf\""), std::string::npos) << cc;

  std::string kcore = c.request("kcore graph=" + path + " algo=seq");
  EXPECT_TRUE(is_metrics_json(kcore)) << kcore;
  EXPECT_NE(kcore.find("\"variant\":\"seq\""), std::string::npos) << kcore;

  std::string pagerank = c.request("pagerank graph=" + path);
  EXPECT_TRUE(is_metrics_json(pagerank)) << pagerank;
  // validate_metrics requires the executed round count for pagerank.
  EXPECT_NE(pagerank.find("\"iterations\":"), std::string::npos) << pagerank;

  std::string tc = c.request("tc graph=" + path);
  EXPECT_TRUE(is_metrics_json(tc)) << tc;
  // A rectangle grid is triangle-free; the count is part of the document.
  EXPECT_NE(tc.find("\"triangles\":0"), std::string::npos) << tc;
}

TEST_F(ServerTest, FamilyVerbContractViolationsGetTypedUsageErrors) {
  std::string path = write_graph("familyerr.pgr");
  start_server();

  std::string bad_cc = request_once("cc graph=" + path + " algo=nope");
  EXPECT_EQ(bad_cc.rfind("error [usage]", 0), 0u) << bad_cc;
  EXPECT_NE(bad_cc.find("uf|lp|ldd"), std::string::npos) << bad_cc;

  std::string bad_pr = request_once("pagerank graph=" + path + " algo=gbbs");
  EXPECT_EQ(bad_pr.rfind("error [usage]", 0), 0u) << bad_pr;
  EXPECT_NE(bad_pr.find("pasgal|seq"), std::string::npos) << bad_pr;

  // Whole-graph verbs take no source vertex.
  std::string stray = request_once("tc graph=" + path + " source=0");
  EXPECT_EQ(stray.rfind("error [usage]", 0), 0u) << stray;
}

TEST_F(ServerTest, FamilyDeadlineExpiryIsTypedAndThePoolSurvives) {
  std::string big = temp_path("family_deadline.pgr");
  write_pgr(gen::chain(400000, /*directed=*/true), big);
  start_server();

  Client c = connect_client();
  // Each pagerank round scans all 400k in-edges and the deadline is
  // checked at every round boundary, so 1 ms expires mid-iteration.
  std::string timed_out =
      c.request("pagerank graph=" + big + " deadline_ms=1");
  EXPECT_EQ(timed_out.rfind("error [timeout]", 0), 0u) << timed_out;

  // Same connection, same worker pool: an undeadlined query completes.
  std::string ok = c.request("pagerank graph=" + big);
  EXPECT_TRUE(is_metrics_json(ok))
      << "worker pool must survive a cancelled run: " << ok;
}

TEST_F(ServerTest, BatchQueriesReturnBatchMetrics) {
  std::string path = write_graph("batch.pgr");
  std::string wpath = write_weighted_graph("wbatch.pgr");
  start_server();

  std::string bfs = request_once("bfs graph=" + path + " sources=0,5,9,63");
  EXPECT_TRUE(is_metrics_json(bfs)) << bfs;
  EXPECT_NE(bfs.find("\"batch\":"), std::string::npos) << bfs;
  EXPECT_NE(bfs.find("\"size\":4"), std::string::npos) << bfs;

  std::string sssp =
      request_once("sssp graph=" + wpath + " sources=1,2,3 algo=delta");
  EXPECT_TRUE(is_metrics_json(sssp)) << sssp;
  EXPECT_NE(sssp.find("\"batch\":"), std::string::npos) << sssp;
}

TEST_F(ServerTest, BatchContractViolationsGetTypedUsageErrors) {
  std::string path = write_graph("batch_bad.pgr");
  start_server();

  // Duplicates are rejected, never silently deduplicated.
  EXPECT_EQ(request_once("bfs graph=" + path + " sources=5,5")
                .rfind("error [usage]", 0),
            0u);
  // More than 64 sources cannot fit the bit mask; never truncated.
  std::string big = "0";
  for (int i = 1; i <= 64; ++i) big += "," + std::to_string(i);
  EXPECT_EQ(request_once("bfs graph=" + path + " sources=" + big)
                .rfind("error [usage]", 0),
            0u);
  // sources= conflicts with source=.
  EXPECT_EQ(request_once("bfs graph=" + path + " source=0 sources=1,2")
                .rfind("error [usage]", 0),
            0u);
  // Only the bit-parallel kernel batches bfs.
  EXPECT_EQ(request_once("bfs graph=" + path + " sources=1,2 algo=pasgal")
                .rfind("error [usage]", 0),
            0u);
  // @file lists are CLI-only: a remote peer must not name host paths.
  EXPECT_EQ(request_once("bfs graph=" + path + " sources=@/etc/hostname")
                .rfind("error [usage]", 0),
            0u);
  // Out-of-range batch entry (the grid has 256 vertices).
  EXPECT_EQ(request_once("bfs graph=" + path + " sources=1,99999")
                .rfind("error [usage]", 0),
            0u);
  // After all that abuse the batch path still answers.
  EXPECT_TRUE(
      is_metrics_json(request_once("bfs graph=" + path + " sources=0,1")));
}

TEST_F(ServerTest, BatchSourceParseErrorsNameTheGraph) {
  // A fleet tails one error stream for many graphs; a bare "sources=: bad
  // integer" line is un-actionable without the graph it was aimed at. The
  // typed [usage] error must carry the resolved graph path as file context.
  std::string path = write_graph("named_err.pgr");
  start_server();
  // (A bare "sources=" dies in the request tokenizer before the graph is
  // resolved, so only value errors carry graph context.)
  for (const std::string bad : {"sources=abc", "sources=1,,2"}) {
    std::string resp = request_once("bfs graph=" + path + " " + bad);
    EXPECT_EQ(resp.rfind("error [usage]", 0), 0u) << resp;
    EXPECT_NE(resp.find(path), std::string::npos)
        << "error must name the graph: " << resp;
    EXPECT_NE(resp.find("bfs"), std::string::npos) << resp;
  }
  // The source=/sources= conflict error names the graph too.
  std::string conflict =
      request_once("bfs graph=" + path + " source=0 sources=1,2");
  EXPECT_EQ(conflict.rfind("error [usage]", 0), 0u) << conflict;
  EXPECT_NE(conflict.find(path), std::string::npos) << conflict;
}

// --- dynamic updates: update / compact verbs ---------------------------------

TEST_F(ServerTest, UpdateCompactRoundTrip) {
  std::string path = write_graph("dyn.pgr");
  start_server();

  // A resident graph with no overlay compacts as a no-op.
  EXPECT_EQ(request_once("open graph=" + path).rfind("ok opened ", 0), 0u);
  std::string noop = request_once("compact graph=" + path);
  EXPECT_EQ(noop.rfind("ok compacted ", 0), 0u) << noop;
  EXPECT_NE(noop.find("noop=1"), std::string::npos) << noop;

  // Apply a batch: two long-range inserts the 4-wide grid cannot contain,
  // plus a delete of one of them in a second batch.
  std::string up1 =
      request_once("update graph=" + path + " add=0:255,1:254");
  EXPECT_EQ(up1.rfind("ok updated ", 0), 0u) << up1;
  EXPECT_NE(up1.find("batch_inserts=2"), std::string::npos) << up1;
  EXPECT_NE(up1.find("batch_deletes=0"), std::string::npos) << up1;
  EXPECT_NE(up1.find("batches=1"), std::string::npos) << up1;
  EXPECT_NE(up1.find("pinned=1"), std::string::npos) << up1;

  // Deleting an edge that lives only in the insert overlay nets it out of
  // the patch list instead of recording a delete (the rebuilt snapshot is
  // always the minimal diff against the base CSR).
  std::string up2 = request_once("update graph=" + path + " del=0:255");
  EXPECT_EQ(up2.rfind("ok updated ", 0), 0u) << up2;
  EXPECT_NE(up2.find("batch_deletes=1"), std::string::npos) << up2;
  EXPECT_NE(up2.find("inserts=1"), std::string::npos) << up2;
  EXPECT_NE(up2.find("deletes=0"), std::string::npos) << up2;
  EXPECT_NE(up2.find("batches=2"), std::string::npos) << up2;

  // Queries on the overlaid graph work and report the delta section. The
  // default bfs kernel (pasgal) is overlay-guarded by design; gbbs routes
  // through the overlay-aware edge_map.
  std::string guarded = request_once("bfs graph=" + path + " source=0");
  EXPECT_EQ(guarded.rfind("error [usage]", 0), 0u) << guarded;
  std::string bfs = request_once("bfs graph=" + path + " source=0 algo=gbbs");
  EXPECT_TRUE(is_metrics_json(bfs)) << bfs;
  EXPECT_NE(bfs.find("\"delta\":"), std::string::npos) << bfs;
  EXPECT_NE(bfs.find("\"inserts\":1"), std::string::npos) << bfs;
  std::string pr = request_once("pagerank graph=" + path);
  EXPECT_TRUE(is_metrics_json(pr)) << pr;
  EXPECT_NE(pr.find("\"delta\":"), std::string::npos) << pr;

  // Compaction folds the overlay into a rewritten .pgr: the surviving
  // insert nets one extra edge over the original file.
  Graph before = read_pgr(path);
  std::size_t base_m = before.num_edges();
  std::string comp = request_once("compact graph=" + path);
  EXPECT_EQ(comp.rfind("ok compacted ", 0), 0u) << comp;
  EXPECT_NE(comp.find("inserts_folded=1"), std::string::npos) << comp;
  EXPECT_NE(comp.find("deletes_folded=0"), std::string::npos) << comp;
  EXPECT_NE(comp.find("m=" + std::to_string(base_m + 1)), std::string::npos)
      << comp;

  // The rewritten file reopens clean (registry rewrite detection): the
  // default kernel works again and there is no delta section.
  std::string fresh = request_once("bfs graph=" + path + " source=0");
  EXPECT_TRUE(is_metrics_json(fresh)) << fresh;
  EXPECT_EQ(fresh.find("\"delta\":"), std::string::npos) << fresh;
}

TEST_F(ServerTest, UpdateContractViolationsAreTyped) {
  std::string path = write_graph("dyn_bad.pgr");
  std::string wpath = write_weighted_graph("dyn_w.pgr");
  start_server();

  // Empty batch, malformed pairs, bad integers: usage errors naming the graph.
  for (const std::string bad :
       {"update graph=" + path, "update graph=" + path + " add=5",
        "update graph=" + path + " add=1:2:3",
        "update graph=" + path + " add=a:b",
        "update graph=" + path + " del=99999999999:0"}) {
    std::string resp = request_once(bad);
    EXPECT_EQ(resp.rfind("error [usage]", 0), 0u) << bad << " -> " << resp;
  }
  // Set-semantics violations are validation errors, and nothing mutates.
  EXPECT_EQ(request_once("update graph=" + path + " del=0:255")
                .rfind("error [validation]", 0),
            0u)
      << "deleting an absent edge";
  ASSERT_EQ(request_once("update graph=" + path + " add=0:255")
                .rfind("ok updated ", 0),
            0u);
  EXPECT_EQ(request_once("update graph=" + path + " add=0:255")
                .rfind("error [validation]", 0),
            0u)
      << "inserting an effectively-present edge";
  // Weighted graphs cannot take unweighted patches.
  EXPECT_EQ(request_once("update graph=" + wpath + " add=0:5")
                .rfind("error [usage]", 0),
            0u);
  // The pool survives and the earlier overlay is intact.
  std::string bfs = request_once("bfs graph=" + path + " source=0 algo=gbbs");
  EXPECT_TRUE(is_metrics_json(bfs)) << bfs;
  EXPECT_NE(bfs.find("\"inserts\":1"), std::string::npos) << bfs;
}

TEST_F(ServerTest, EvictReportsDroppedUpdates) {
  std::string path = write_graph("dyn_evict.pgr");
  start_server();
  ASSERT_EQ(request_once("update graph=" + path + " add=0:255,3:252")
                .rfind("ok updated ", 0),
            0u);
  // Updates pin the entry, so LRU pressure cannot silently drop them — but
  // an explicit evict may, and must say how many ops it discarded.
  std::string evicted = request_once("evict graph=" + path);
  EXPECT_EQ(evicted.rfind("ok ", 0), 0u) << evicted;
  EXPECT_NE(evicted.find("dropped_updates=2"), std::string::npos) << evicted;
  // Compact on the now non-resident graph is a typed usage error.
  EXPECT_EQ(request_once("compact graph=" + path).rfind("error [usage]", 0),
            0u);
  // Reopening reads the unmodified base file: the overlay is gone.
  std::string bfs = request_once("bfs graph=" + path + " source=0");
  EXPECT_TRUE(is_metrics_json(bfs)) << bfs;
  EXPECT_EQ(bfs.find("\"delta\":"), std::string::npos) << bfs;
}

TEST_F(ServerTest, MultipleRequestsOnOneConnection) {
  std::string path = write_graph("multi.pgr");
  start_server();
  Client c = connect_client();
  EXPECT_EQ(c.request("open graph=" + path).rfind("ok ", 0), 0u);
  EXPECT_TRUE(is_metrics_json(c.request("bfs graph=" + path + " source=0")));
  EXPECT_TRUE(is_metrics_json(c.request("bfs graph=" + path + " source=9")));
  EXPECT_EQ(c.request("stats").rfind("ok ", 0), 0u);
}

// --- graceful degradation: every bad input is a typed one-line error --------

TEST_F(ServerTest, MalformedRequestsGetTypedUsageErrors) {
  std::string path = write_graph("mal.pgr");
  start_server();
  EXPECT_EQ(request_once("frobnicate").rfind("error [usage]", 0), 0u);
  EXPECT_EQ(request_once("bfs").rfind("error [usage]", 0), 0u);
  EXPECT_EQ(request_once("bfs graph=not_a_pgr.txt").rfind("error [usage]", 0),
            0u);
  EXPECT_EQ(request_once("bfs graph=" + path + " source=abc")
                .rfind("error [usage]", 0),
            0u);
  EXPECT_EQ(request_once("bfs graph=" + path + " source=999999999")
                .rfind("error [usage]", 0),
            0u)
      << "out-of-range source";
  EXPECT_EQ(request_once("bfs graph=" + path + " source=0 algo=dijkstra")
                .rfind("error [usage]", 0),
            0u);
  EXPECT_EQ(request_once("open graph=" + path + " bogus_flag")
                .rfind("error [usage]", 0),
            0u);
  EXPECT_EQ(request_once("open graph=" + path + " =broken")
                .rfind("error [usage]", 0),
            0u);
  // After all that abuse the server still answers.
  EXPECT_TRUE(is_metrics_json(request_once("bfs graph=" + path + " source=0")));
}

TEST_F(ServerTest, MissingAndCorruptFilesGetTypedErrors) {
  start_server();
  EXPECT_EQ(request_once("open graph=" + temp_path("nope.pgr"))
                .rfind("error [io]", 0),
            0u);

  std::string corrupt = temp_path("corrupt.pgr");
  std::ofstream(corrupt, std::ios::binary) << "not a pgr file at all";
  EXPECT_EQ(request_once("open graph=" + corrupt).rfind("error [format]", 0),
            0u);

  std::string unweighted = write_graph("unweighted.pgr");
  EXPECT_EQ(request_once("sssp graph=" + unweighted + " source=0")
                .rfind("error [", 0),
            0u)
      << "sssp on an unweighted file is a typed error, not a crash";
}

TEST_F(ServerTest, OversizedRequestLineIsRejected) {
  start_server();
  Client c = connect_client();
  c.send_raw(std::string(20 * 1024, 'x'));  // no newline, over the cap
  std::string resp = c.recv_line();
  EXPECT_EQ(resp.rfind("error [usage]", 0), 0u) << resp;
  // Server is still healthy for new connections.
  EXPECT_EQ(request_once("stats").rfind("ok ", 0), 0u);
}

// --- admission control + LRU -------------------------------------------------

TEST_F(ServerTest, AdmissionRejectsOverBudgetOpens) {
  std::string path = write_graph("big.pgr", 512);
  ServerOptions opts;
  opts.socket_path = temp_path("serve.sock");
  opts.admission_budget_bytes = 1024;  // smaller than any .pgr header
  start_server(opts);
  std::string resp = request_once("open graph=" + path);
  EXPECT_EQ(resp.rfind("error [resource]", 0), 0u) << resp;
  EXPECT_NE(resp.find("admission:"), std::string::npos) << resp;
  // A rejected open leaves nothing resident.
  EXPECT_NE(request_once("stats").find("resident_bytes=0"),
            std::string::npos);
}

TEST_F(ServerTest, AdmissionEvictsLruToMakeRoom) {
  std::string a = write_graph("fit_a.pgr", 256);
  std::string b = write_graph("fit_b.pgr", 256);
  std::uintmax_t file_bytes = std::filesystem::file_size(a);
  ServerOptions opts;
  opts.socket_path = temp_path("serve.sock");
  // Room for ~1.5 graphs: the second open must evict the first.
  opts.admission_budget_bytes = file_bytes + file_bytes / 2;
  start_server(opts);

  EXPECT_EQ(request_once("open graph=" + a).rfind("ok ", 0), 0u);
  EXPECT_EQ(request_once("open graph=" + b).rfind("ok ", 0), 0u)
      << "over-budget open must succeed by evicting the LRU graph";
  std::string stats = request_once("stats");
  EXPECT_NE(stats.find("evictions=1"), std::string::npos) << stats;
  EXPECT_NE(stats.find("retained=1"), std::string::npos) << stats;
}

TEST_F(ServerTest, PinnedGraphsBlockEvictionSoAdmissionFails) {
  std::string a = write_graph("pin_a.pgr", 256);
  std::string b = write_graph("pin_b.pgr", 256);
  std::uintmax_t file_bytes = std::filesystem::file_size(a);
  ServerOptions opts;
  opts.socket_path = temp_path("serve.sock");
  opts.admission_budget_bytes = file_bytes + file_bytes / 2;
  start_server(opts);

  EXPECT_EQ(request_once("open graph=" + a + " pin").rfind("ok ", 0), 0u);
  std::string resp = request_once("open graph=" + b);
  EXPECT_EQ(resp.rfind("error [resource]", 0), 0u)
      << "a pinned graph must not be sacrificed: " << resp;
  // Unpinning (evict) frees the budget; now b fits.
  EXPECT_EQ(request_once("evict graph=" + a).rfind("ok ", 0), 0u);
  EXPECT_EQ(request_once("open graph=" + b).rfind("ok ", 0), 0u);
}

// --- deadlines ---------------------------------------------------------------

TEST_F(ServerTest, DeadlineExpiryIsTypedAndThePoolSurvives) {
  // A long chain maximizes rounds (one per vertex for the sparse path), so
  // a 1 ms deadline reliably expires at a round boundary mid-run.
  std::string big = temp_path("deadline.pgr");
  write_pgr(gen::chain(400000, /*directed=*/true), big);
  start_server();

  Client c = connect_client();
  std::string timed_out =
      c.request("bfs graph=" + big + " source=0 deadline_ms=1");
  EXPECT_EQ(timed_out.rfind("error [timeout]", 0), 0u) << timed_out;
  EXPECT_NE(timed_out.find("deadline exceeded"), std::string::npos);

  // Same connection, same worker pool: an undeadlined query completes.
  std::string ok = c.request("bfs graph=" + big + " source=399000");
  EXPECT_TRUE(is_metrics_json(ok))
      << "worker pool must survive a cancelled run: " << ok;
}

TEST_F(ServerTest, DefaultDeadlineAppliesWhenRequestSetsNone) {
  std::string big = temp_path("default_deadline.pgr");
  write_pgr(gen::chain(400000, /*directed=*/true), big);
  ServerOptions opts;
  opts.socket_path = temp_path("serve.sock");
  opts.default_deadline_ms = 1;
  start_server(opts);
  std::string resp = request_once("bfs graph=" + big + " source=0");
  EXPECT_EQ(resp.rfind("error [timeout]", 0), 0u) << resp;
}

// --- fault injection ---------------------------------------------------------

TEST_F(ServerTest, InjectedMmapFaultIsATypedIoError) {
  std::string path = write_graph("fmmap.pgr");
  start_server();
  fault::arm("mmap");
  std::string resp = request_once("open graph=" + path);
  EXPECT_EQ(resp.rfind("error [io]", 0), 0u) << resp;
  EXPECT_NE(resp.find("injected fault: mmap"), std::string::npos);
  // Fire-once: the retry succeeds.
  EXPECT_EQ(request_once("open graph=" + path).rfind("ok ", 0), 0u);
}

TEST_F(ServerTest, InjectedDecodeFaultIsATypedFormatError) {
  PgrWriteOptions wopts;
  wopts.compress_targets = true;
  std::string path = write_graph("fdecode.pgr", 64, wopts);
  start_server();
  fault::arm("decode");
  std::string resp = request_once("open graph=" + path);
  EXPECT_EQ(resp.rfind("error [format]", 0), 0u) << resp;
  EXPECT_NE(resp.find("injected fault: decode"), std::string::npos);
  EXPECT_EQ(request_once("open graph=" + path).rfind("ok ", 0), 0u);
}

TEST_F(ServerTest, InjectedAllocFaultIsATypedResourceError) {
  std::string path = write_graph("falloc.pgr");
  start_server();
  fault::arm("alloc");
  std::string resp = request_once("open graph=" + path);
  EXPECT_EQ(resp.rfind("error [resource]", 0), 0u) << resp;
  EXPECT_NE(resp.find("injected fault: alloc"), std::string::npos);
  EXPECT_EQ(request_once("open graph=" + path).rfind("ok ", 0), 0u);
}

TEST_F(ServerTest, InjectedSocketWriteFaultDropsOnlyThatConnection) {
  std::string path = write_graph("fsock.pgr");
  start_server();
  fault::arm("sock_write");
  {
    Client c = connect_client();
    c.send_raw("stats\n");
    EXPECT_EQ(c.recv_line(), "")
        << "the injected dead-client write closes the connection";
  }
  EXPECT_EQ(server_->connections_dropped(), 1u);
  // The daemon itself is fine.
  EXPECT_EQ(request_once("stats").rfind("ok ", 0), 0u);
}

TEST_F(ServerTest, FaultSpecParsingAndNthHit) {
  fault::arm("mmap:3");
  EXPECT_EQ(fault::armed_spec(), "mmap:3");
  EXPECT_FALSE(fault::should_fail("decode")) << "other sites never fire";
  EXPECT_FALSE(fault::should_fail("mmap"));  // hit 1
  EXPECT_FALSE(fault::should_fail("mmap"));  // hit 2
  EXPECT_TRUE(fault::should_fail("mmap"));   // hit 3 fires...
  EXPECT_FALSE(fault::should_fail("mmap")) << "...then disarms";
  EXPECT_EQ(fault::armed_spec(), "");

  EXPECT_THROW(fault::arm(""), Error);
  EXPECT_THROW(fault::arm("mmap:0"), Error);
  EXPECT_THROW(fault::arm("mmap:abc"), Error);
}

// --- client death & shutdown -------------------------------------------------

TEST_F(ServerTest, ClientDisconnectMidRequestIsHarmless) {
  std::string path = write_graph("dead_client.pgr", 256);
  start_server();
  {
    Client c = connect_client();
    c.send_raw("bfs graph=" + path + " source=0\n");
    // Destructor closes the socket while the query may still be running;
    // the server's write fails with EPIPE/ECONNRESET and moves on.
  }
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        is_metrics_json(request_once("bfs graph=" + path + " source=0")));
  }
}

TEST_F(ServerTest, ShutdownRequestDrainsTheServer) {
  start_server();
  EXPECT_EQ(request_once("shutdown"), "ok draining");
  server_thread_.join();  // run() returns without an explicit request_stop
  EXPECT_FALSE(std::filesystem::exists(server_socket_path()))
      << "a drained server removes its socket";
  server_ = nullptr;
}

// --- concurrency stress ------------------------------------------------------

TEST_F(ServerTest, EightThreadStressMixSurvives) {
  std::string a = write_graph("stress_a.pgr", 128);
  std::string b = write_graph("stress_b.pgr", 128);
  PgrWriteOptions wopts;
  wopts.compress_targets = true;
  std::string c = write_graph("stress_c.pgr", 128, wopts);
  std::string w = write_weighted_graph("stress_w.pgr", 512);
  start_server();

  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 12;
  std::atomic<int> bad{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client cl = connect_client();
      for (int i = 0; i < kRequestsPerThread; ++i) {
        std::string req;
        switch ((t + i) % 8) {
          case 0: req = "bfs graph=" + a + " source=" + std::to_string(i); break;
          case 1: req = "bfs graph=" + b + " source=0 algo=gbbs"; break;
          case 2: req = "sssp graph=" + w + " source=0"; break;
          case 3: req = "open graph=" + c + (i % 2 ? " pin" : ""); break;
          case 4: req = "evict graph=" + ((i % 2) ? a : c); break;
          case 5: req = "stats"; break;
          case 6: req = "open graph=" + a; break;
          default: req = "bfs graph=" + c + " source=1"; break;
        }
        std::string resp = cl.request(req);
        // Every response is one of the three legal shapes; evict may
        // legitimately report [validation] not open under this mix.
        bool ok = resp.rfind("ok ", 0) == 0 || resp == "ok draining" ||
                  is_metrics_json(resp) || resp.rfind("error [", 0) == 0;
        if (!ok || resp.empty()) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(bad.load(), 0);
  // The server survived the whole mix and still answers.
  EXPECT_TRUE(is_metrics_json(request_once("bfs graph=" + b + " source=0")));
}

TEST_F(ServerTest, StressWithInjectedFaultsStaysTyped) {
  std::string a = write_graph("fstress_a.pgr", 128);
  std::string b = write_graph("fstress_b.pgr", 128);
  start_server();

  constexpr int kThreads = 8;
  std::atomic<int> bad{0};
  std::atomic<int> round{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Client cl = connect_client();
      for (int i = 0; i < 10; ++i) {
        // One thread keeps re-arming failpoints while others query and
        // evict: injected failures must always surface as typed errors on
        // exactly one response, never as a dead server.
        if (t == 0) {
          const char* sites[] = {"mmap", "decode", "alloc"};
          fault::arm(sites[static_cast<std::size_t>(round.fetch_add(1)) % 3]);
        }
        std::string req = (i % 3 == 0) ? "evict graph=" + a
                          : (i % 3 == 1)
                              ? "bfs graph=" + a + " source=0"
                              : "bfs graph=" + b + " source=2";
        std::string resp = cl.request(req);
        bool ok = resp.rfind("ok ", 0) == 0 || is_metrics_json(resp) ||
                  resp.rfind("error [", 0) == 0;
        if (!ok) bad.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  fault::disarm();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(request_once("stats").rfind("ok ", 0), 0u);
}

}  // namespace
}  // namespace pasgal
