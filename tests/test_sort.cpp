// Tests for parallel comparison sort and integer (radix) sort.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "parlay/hash_rng.h"
#include "parlay/sort.h"

namespace pasgal {
namespace {

class SortTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, SortTest, ::testing::Values(1, 4));

TEST_P(SortTest, SortRandomInts) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{2},
                        std::size_t{1000}, std::size_t{100000}}) {
    auto v = tabulate(n, [](std::size_t i) {
      return static_cast<std::uint64_t>(hash64(i));
    });
    auto expected = v;
    std::sort(expected.begin(), expected.end());
    sort_inplace(std::span<std::uint64_t>(v));
    EXPECT_EQ(v, expected) << "n=" << n;
  }
}

TEST_P(SortTest, SortWithComparator) {
  auto v = tabulate(50000, [](std::size_t i) {
    return static_cast<int>(hash64(i) % 1000);
  });
  auto expected = v;
  std::sort(expected.begin(), expected.end(), std::greater<int>{});
  sort_inplace(std::span<int>(v), std::greater<int>{});
  EXPECT_EQ(v, expected);
}

TEST_P(SortTest, SortStability) {
  struct Item {
    int key;
    int original_index;
    bool operator==(const Item&) const = default;
  };
  auto v = tabulate(30000, [](std::size_t i) {
    return Item{static_cast<int>(hash64(i) % 16), static_cast<int>(i)};
  });
  auto expected = v;
  auto by_key = [](const Item& a, const Item& b) { return a.key < b.key; };
  std::stable_sort(expected.begin(), expected.end(), by_key);
  sort_inplace(std::span<Item>(v), by_key);
  EXPECT_EQ(v, expected);
}

TEST_P(SortTest, SortedCopyLeavesInputIntact) {
  auto v = tabulate(1000, [](std::size_t i) {
    return static_cast<int>(hash64(i) % 100);
  });
  auto original = v;
  auto out = sorted(std::span<const int>(v));
  EXPECT_EQ(v, original);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

TEST_P(SortTest, IntegerSortFullRange) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{999},
                        std::size_t{100000}}) {
    auto v = tabulate(n, [](std::size_t i) {
      return static_cast<std::uint32_t>(hash64(i));
    });
    auto expected = v;
    std::sort(expected.begin(), expected.end());
    integer_sort_inplace(std::span<std::uint32_t>(v),
                         [](std::uint32_t x) { return x; }, 32);
    EXPECT_EQ(v, expected) << "n=" << n;
  }
}

TEST_P(SortTest, IntegerSortByKeyIsStable) {
  struct Pair {
    std::uint32_t key;
    std::uint32_t payload;
    bool operator==(const Pair&) const = default;
  };
  auto v = tabulate(80000, [](std::size_t i) {
    return Pair{static_cast<std::uint32_t>(hash64(i) % 256),
                static_cast<std::uint32_t>(i)};
  });
  auto expected = v;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const Pair& a, const Pair& b) { return a.key < b.key; });
  integer_sort_inplace(std::span<Pair>(v), [](const Pair& p) { return p.key; }, 8);
  EXPECT_EQ(v, expected);
}

TEST_P(SortTest, IntegerSortNarrowKeyBits) {
  auto v = tabulate(10000, [](std::size_t i) {
    return static_cast<std::uint32_t>(hash64(i) % 4);
  });
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  integer_sort_inplace(std::span<std::uint32_t>(v),
                       [](std::uint32_t x) { return x; }, 2);
  EXPECT_EQ(v, expected);
}

TEST_P(SortTest, IntegerSort64BitKeys) {
  auto v = tabulate(60000, [](std::size_t i) { return hash64(i); });
  auto expected = v;
  std::sort(expected.begin(), expected.end());
  integer_sort_inplace(std::span<std::uint64_t>(v),
                       [](std::uint64_t x) { return x; }, 64);
  EXPECT_EQ(v, expected);
}

TEST_P(SortTest, SortAlreadySortedAndReversed) {
  auto v = iota<std::uint64_t>(50000);
  auto expected = v;
  sort_inplace(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expected);
  std::reverse(v.begin(), v.end());
  sort_inplace(std::span<std::uint64_t>(v));
  EXPECT_EQ(v, expected);
}

}  // namespace
}  // namespace pasgal
