// Tests for parallel sequence primitives.
#include <gtest/gtest.h>

#include <numeric>
#include <random>
#include <vector>

#include "parlay/hash_rng.h"
#include "parlay/primitives.h"

namespace pasgal {
namespace {

class PrimitivesTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, PrimitivesTest, ::testing::Values(1, 4));

TEST_P(PrimitivesTest, TabulateIdentity) {
  auto v = tabulate(1000, [](std::size_t i) { return 3 * i; });
  for (std::size_t i = 0; i < v.size(); ++i) EXPECT_EQ(v[i], 3 * i);
}

TEST_P(PrimitivesTest, IotaAndMap) {
  auto v = iota<int>(5000);
  auto doubled = map(std::span<const int>(v), [](int x) { return 2 * x; });
  for (std::size_t i = 0; i < doubled.size(); ++i) {
    EXPECT_EQ(doubled[i], 2 * static_cast<int>(i));
  }
}

TEST_P(PrimitivesTest, ReduceAddMatchesAccumulate) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{100},
                        std::size_t{2048}, std::size_t{100000}}) {
    auto v = tabulate(n, [](std::size_t i) { return static_cast<std::int64_t>(i * i % 97); });
    std::int64_t expected = std::accumulate(v.begin(), v.end(), std::int64_t{0});
    EXPECT_EQ(reduce_add(std::span<const std::int64_t>(v)), expected) << "n=" << n;
  }
}

TEST_P(PrimitivesTest, ReduceMinMax) {
  auto v = tabulate(50000, [](std::size_t i) {
    return static_cast<int>(hash64(i) % 1000003);
  });
  std::span<const int> s(v);
  EXPECT_EQ(reduce_max(s, -1), *std::max_element(v.begin(), v.end()));
  EXPECT_EQ(reduce_min(s, 1 << 30), *std::min_element(v.begin(), v.end()));
}

TEST_P(PrimitivesTest, CountIf) {
  auto v = iota<int>(100001);
  std::size_t evens =
      count_if_index(v.size(), [&](std::size_t i) { return v[i] % 2 == 0; });
  EXPECT_EQ(evens, 50001u);
}

TEST_P(PrimitivesTest, ScanExclusivePrefix) {
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                        std::size_t{2048}, std::size_t{2049}, std::size_t{65536}}) {
    auto v = tabulate(n, [](std::size_t i) {
      return static_cast<std::uint64_t>(hash64(i) % 10);
    });
    auto [prefix, total] = scan(std::span<const std::uint64_t>(v));
    std::uint64_t running = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(prefix[i], running) << "n=" << n << " i=" << i;
      running += v[i];
    }
    EXPECT_EQ(total, running);
  }
}

TEST_P(PrimitivesTest, ScanInplaceMatchesScan) {
  auto v = tabulate(12345, [](std::size_t i) { return static_cast<long>(i % 7); });
  auto copy = v;
  auto [expected, total_expected] = scan(std::span<const long>(v));
  long total = scan_inplace(std::span<long>(copy));
  EXPECT_EQ(copy, expected);
  EXPECT_EQ(total, total_expected);
}

TEST_P(PrimitivesTest, FilterKeepsOrderAndContent) {
  auto v = tabulate(100000, [](std::size_t i) {
    return static_cast<int>(hash64(i) % 1000);
  });
  auto kept = filter(std::span<const int>(v), [](int x) { return x < 250; });
  std::vector<int> expected;
  for (int x : v) {
    if (x < 250) expected.push_back(x);
  }
  EXPECT_EQ(kept, expected);
}

TEST_P(PrimitivesTest, PackIndex) {
  auto idx = pack_index(1000, [](std::size_t i) { return i % 3 == 0; });
  ASSERT_EQ(idx.size(), 334u);
  for (std::size_t k = 0; k < idx.size(); ++k) EXPECT_EQ(idx[k], 3 * k);
}

TEST_P(PrimitivesTest, FlattenPreservesOrder) {
  std::vector<std::vector<int>> nested(100);
  std::vector<int> expected;
  for (std::size_t i = 0; i < nested.size(); ++i) {
    for (std::size_t j = 0; j < i % 7; ++j) {
      nested[i].push_back(static_cast<int>(i * 100 + j));
      expected.push_back(static_cast<int>(i * 100 + j));
    }
  }
  EXPECT_EQ(flatten(nested), expected);
}

TEST_P(PrimitivesTest, HistogramCounts) {
  auto keys = tabulate(100000, [](std::size_t i) {
    return static_cast<std::uint32_t>(hash64(i) % 64);
  });
  auto counts = histogram(std::span<const std::uint32_t>(keys), 64);
  std::vector<std::size_t> expected(64, 0);
  for (auto k : keys) expected[k]++;
  EXPECT_EQ(counts, expected);
}

TEST_P(PrimitivesTest, WriteMinConcurrent) {
  std::atomic<std::uint64_t> target{~0ULL};
  parallel_for(0, 100000, [&](std::size_t i) {
    write_min(target, hash64(i) % 1000000);
  });
  std::uint64_t expected = ~0ULL;
  for (std::size_t i = 0; i < 100000; ++i) {
    expected = std::min(expected, hash64(i) % 1000000);
  }
  EXPECT_EQ(target.load(), expected);
}

TEST_P(PrimitivesTest, WriteMaxConcurrent) {
  std::atomic<std::int64_t> target{-1};
  parallel_for(0, 50000, [&](std::size_t i) {
    write_max(target, static_cast<std::int64_t>(hash64(i) % 999983));
  });
  std::int64_t expected = -1;
  for (std::size_t i = 0; i < 50000; ++i) {
    expected = std::max(expected, static_cast<std::int64_t>(hash64(i) % 999983));
  }
  EXPECT_EQ(target.load(), expected);
}

TEST(HashRng, DeterministicAndSpread) {
  Random r(42);
  EXPECT_EQ(r.ith_rand(7), Random(42).ith_rand(7));
  EXPECT_NE(r.ith_rand(7), r.ith_rand(8));
  // Rough uniformity: buckets of a thousand draws should all be populated.
  std::vector<int> buckets(16, 0);
  for (std::uint64_t i = 0; i < 1000; ++i) buckets[r.ith_rand(i) % 16]++;
  for (int b : buckets) EXPECT_GT(b, 20);
}

TEST(HashRng, ForkIndependence) {
  Random r(1);
  Random f0 = r.fork(0);
  Random f1 = r.fork(1);
  EXPECT_NE(f0.ith_rand(0), f1.ith_rand(0));
}

}  // namespace
}  // namespace pasgal
