// Tests for the CSR graph type: construction, transpose, symmetrize.
#include <gtest/gtest.h>

#include <vector>

#include "graphs/graph.h"
#include "parlay/hash_rng.h"

namespace pasgal {
namespace {

Graph diamond() {
  // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
  std::vector<Edge> edges = {{0, 1}, {0, 2}, {1, 3}, {2, 3}};
  return Graph::from_edges(4, edges);
}

TEST(Graph, EmptyGraph) {
  Graph g = Graph::from_edges(0, {});
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, VerticesWithoutEdges) {
  Graph g = Graph::from_edges(5, {});
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.num_edges(), 0u);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(g.out_degree(v), 0u);
}

TEST(Graph, FromEdgesBasic) {
  Graph g = diamond();
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(3), 0u);
  auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<VertexId>(n0.begin(), n0.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(Graph, AdjacencyListsSorted) {
  std::vector<Edge> edges = {{0, 3}, {0, 1}, {0, 2}, {1, 0}};
  Graph g = Graph::from_edges(4, edges);
  auto n0 = g.neighbors(0);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
}

TEST(Graph, DedupRemovesParallelEdges) {
  std::vector<Edge> edges = {{0, 1}, {0, 1}, {0, 1}, {1, 2}};
  Graph g = Graph::from_edges(3, edges, /*dedup=*/true);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
}

TEST(Graph, DropSelfLoops) {
  std::vector<Edge> edges = {{0, 0}, {0, 1}, {1, 1}, {1, 2}};
  Graph g = Graph::from_edges(3, edges, /*dedup=*/false, /*drop_self_loops=*/true);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(Graph, TransposeReversesEdges) {
  Graph g = diamond();
  Graph t = g.transpose();
  EXPECT_EQ(t.num_edges(), 4u);
  EXPECT_EQ(t.out_degree(3), 2u);
  EXPECT_EQ(t.out_degree(0), 0u);
  auto n3 = t.neighbors(3);
  EXPECT_EQ(std::vector<VertexId>(n3.begin(), n3.end()),
            (std::vector<VertexId>{1, 2}));
}

TEST(Graph, TransposeIsInvolution) {
  std::vector<Edge> edges;
  for (std::uint64_t i = 0; i < 5000; ++i) {
    edges.push_back(Edge{static_cast<VertexId>(hash64(i) % 500),
                         static_cast<VertexId>(hash64(i + 999999) % 500)});
  }
  Graph g = Graph::from_edges(500, edges);
  EXPECT_EQ(g.transpose().transpose(), g);
}

TEST(Graph, SymmetrizeMakesSymmetric) {
  Graph g = diamond();
  Graph s = g.symmetrize();
  EXPECT_TRUE(s.is_symmetric());
  EXPECT_EQ(s.num_edges(), 8u);  // each edge both ways, no duplicates
}

TEST(Graph, SymmetrizeDropsLoopsAndDups) {
  std::vector<Edge> edges = {{0, 1}, {1, 0}, {0, 0}, {0, 1}};
  Graph s = Graph::from_edges(2, edges).symmetrize();
  EXPECT_EQ(s.num_edges(), 2u);  // just 0<->1
  EXPECT_TRUE(s.is_symmetric());
}

TEST(Graph, IsSymmetricDetectsAsymmetry) {
  EXPECT_FALSE(diamond().is_symmetric());
}

TEST(Graph, ToEdgesRoundTrip) {
  Graph g = diamond();
  Graph rebuilt = Graph::from_edges(4, g.to_edges());
  EXPECT_EQ(rebuilt, g);
}

TEST(WeightedGraphTest, FromEdgesKeepsWeights) {
  std::vector<WeightedEdge<std::uint32_t>> edges = {
      {0, 1, 10}, {0, 2, 20}, {1, 2, 5}};
  auto g = WeightedGraph<std::uint32_t>::from_edges(3, edges);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.out_degree(0), 2u);
  // Weight attached to the right target.
  auto nbrs = g.neighbors(0);
  auto wts = g.neighbor_weights(0);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == 1) EXPECT_EQ(wts[i], 10u);
    if (nbrs[i] == 2) EXPECT_EQ(wts[i], 20u);
  }
}

TEST(WeightedGraphTest, TransposeKeepsWeights) {
  std::vector<WeightedEdge<std::uint32_t>> edges = {{0, 1, 7}, {2, 1, 9}};
  auto g = WeightedGraph<std::uint32_t>::from_edges(3, edges);
  auto t = g.transpose();
  EXPECT_EQ(t.out_degree(1), 2u);
  auto nbrs = t.neighbors(1);
  auto wts = t.neighbor_weights(1);
  for (std::size_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == 0) EXPECT_EQ(wts[i], 7u);
    if (nbrs[i] == 2) EXPECT_EQ(wts[i], 9u);
  }
}

TEST(Graph, LargeRandomGraphDegreesSumToEdges) {
  const std::size_t n = 10000, m = 100000;
  std::vector<Edge> edges(m);
  for (std::size_t i = 0; i < m; ++i) {
    edges[i] = Edge{static_cast<VertexId>(hash64(i) % n),
                    static_cast<VertexId>(hash64(i * 2 + 1) % n)};
  }
  Graph g = Graph::from_edges(n, edges);
  EdgeId total = 0;
  for (VertexId v = 0; v < n; ++v) total += g.out_degree(v);
  EXPECT_EQ(total, m);
}

}  // namespace
}  // namespace pasgal
