// Tests for the VertexSubset frontier representation.
#include <gtest/gtest.h>

#include "graphs/generators.h"
#include "pasgal/vertex_subset.h"

namespace pasgal {
namespace {

TEST(VertexSubset, EmptySubset) {
  auto s = VertexSubset::empty(10);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.size(), 0u);
  EXPECT_EQ(s.universe_size(), 10u);
  EXPECT_FALSE(s.contains(3));
}

TEST(VertexSubset, SingleVertex) {
  auto s = VertexSubset::single(100, 42);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.contains(41));
}

TEST(VertexSubset, SparseToDenseRoundTrip) {
  auto s = VertexSubset::sparse(50, {3, 7, 11, 49});
  EXPECT_FALSE(s.is_dense());
  s.to_dense();
  EXPECT_TRUE(s.is_dense());
  EXPECT_EQ(s.size(), 4u);
  for (VertexId v : {3, 7, 11, 49}) EXPECT_TRUE(s.contains(static_cast<VertexId>(v)));
  EXPECT_FALSE(s.contains(4));
  s.to_sparse();
  EXPECT_FALSE(s.is_dense());
  EXPECT_EQ(s.sparse_vertices(), (std::vector<VertexId>{3, 7, 11, 49}));
}

TEST(VertexSubset, DenseConstruction) {
  std::vector<std::uint8_t> mask(20, 0);
  mask[2] = mask[4] = mask[19] = 1;
  auto s = VertexSubset::dense(std::move(mask));
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.is_dense());
  s.to_sparse();
  EXPECT_EQ(s.sparse_vertices(), (std::vector<VertexId>{2, 4, 19}));
}

TEST(VertexSubset, ConversionIsIdempotent) {
  auto s = VertexSubset::sparse(30, {1, 2});
  s.to_sparse();  // no-op
  EXPECT_EQ(s.size(), 2u);
  s.to_dense();
  s.to_dense();  // no-op
  EXPECT_EQ(s.size(), 2u);
}

TEST(VertexSubset, OutDegreeSumMatchesBothRepresentations) {
  Graph g = gen::rmat(10, 8000, 3);
  auto verts = std::vector<VertexId>{0, 5, 100, 500, 1000};
  EdgeId expected = 0;
  for (VertexId v : verts) expected += g.out_degree(v);
  auto sparse = VertexSubset::sparse(g.num_vertices(), verts);
  EXPECT_EQ(sparse.out_degree_sum(g), expected);
  sparse.to_dense();
  EXPECT_EQ(sparse.out_degree_sum(g), expected);
}

TEST(VertexSubset, SparseContainsUsesSortedOrder) {
  // sparse() sorts unsorted input so contains() can binary-search; the
  // exposed vertex list must come back in ascending order.
  auto s = VertexSubset::sparse(100, {42, 7, 99, 0, 13});
  EXPECT_EQ(s.sparse_vertices(), (std::vector<VertexId>{0, 7, 13, 42, 99}));
  for (VertexId v : {0, 7, 13, 42, 99}) EXPECT_TRUE(s.contains(v));
  for (VertexId v : {1, 6, 8, 43, 98}) EXPECT_FALSE(s.contains(v));
}

TEST(VertexSubset, SparseContainsAgreesWithDense) {
  Random rng(21);
  std::vector<VertexId> verts;
  for (std::size_t i = 0; i < 200; ++i) {
    verts.push_back(static_cast<VertexId>(rng.ith_rand(i) % 5000));
  }
  auto sparse = VertexSubset::sparse(5000, verts);
  auto dense = VertexSubset::sparse(5000, verts);
  dense.to_dense();
  for (VertexId v = 0; v < 5000; ++v) {
    EXPECT_EQ(sparse.contains(v), dense.contains(v)) << "vertex " << v;
  }
}

// --- duplicate handling ------------------------------------------------------
// Hash-bag extractions are multisets (several neighbors can insert the same
// vertex in one round). sparse() must deduplicate, or size() and
// out_degree_sum() overstate — and to_dense() then disagrees with the
// sparse representation about the frontier's cardinality, skewing
// edge_map's sparse/dense direction decision.

TEST(VertexSubset, SparseDeduplicatesMultisetInput) {
  auto s = VertexSubset::sparse(50, {7, 3, 7, 7, 11, 3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.sparse_vertices(), (std::vector<VertexId>{3, 7, 11}));
}

TEST(VertexSubset, SparseDeduplicatesSortedInput) {
  // Already-sorted input skips the sort; dedup must still run.
  auto s = VertexSubset::sparse(10, {1, 1, 2, 3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s.sparse_vertices(), (std::vector<VertexId>{1, 2, 3}));
}

TEST(VertexSubset, DuplicateHeavyFrontierSameSizeInBothRepresentations) {
  std::vector<VertexId> dups;
  for (int round = 0; round < 4; ++round) {
    for (VertexId v : {2, 9, 9, 17, 2, 30}) dups.push_back(v);
  }
  auto s = VertexSubset::sparse(40, dups);
  std::size_t sparse_size = s.size();
  EXPECT_EQ(sparse_size, 4u);
  s.to_dense();
  EXPECT_EQ(s.size(), sparse_size)
      << "to_dense must not change the frontier's cardinality";
  s.to_sparse();
  EXPECT_EQ(s.size(), sparse_size);
  EXPECT_EQ(s.sparse_vertices(), (std::vector<VertexId>{2, 9, 17, 30}));
}

TEST(VertexSubset, OutDegreeSumCountsDuplicatesOnce) {
  Graph g = gen::rmat(10, 8000, 3);
  std::vector<VertexId> verts{0, 5, 100, 5, 500, 100, 1000, 0, 0};
  EdgeId expected = 0;
  for (VertexId v : {0, 5, 100, 500, 1000}) expected += g.out_degree(v);
  auto s = VertexSubset::sparse(g.num_vertices(), verts);
  EXPECT_EQ(s.out_degree_sum(g), expected);
  s.to_dense();
  EXPECT_EQ(s.out_degree_sum(g), expected)
      << "the density signal must agree across representations";
}

TEST(VertexSubset, ContainsOutOfUniverseIsFalse) {
  // Stray ids (unvalidated graph targets, kInvalidVertex sentinels) must
  // read as absent rather than indexing past the mask / list.
  auto dense = VertexSubset::sparse(20, {3, 7});
  dense.to_dense();
  auto sparse = VertexSubset::sparse(20, {3, 7});
  for (VertexId v : {VertexId{20}, VertexId{1000}, kInvalidVertex}) {
    EXPECT_FALSE(dense.contains(v));
    EXPECT_FALSE(sparse.contains(v));
  }
  EXPECT_FALSE(VertexSubset::empty(0).contains(0));
}

TEST(VertexSubset, SparseRejectsOutOfUniverseIds) {
  // Every member must be < n: an out-of-universe id would ride the sorted
  // invariant into to_dense()'s unchecked mask write. sparse() validates on
  // the sorted maximum, so the stray id is caught wherever it appears.
  try {
    VertexSubset::sparse(10, {3, 10});
    FAIL() << "sparse() accepted vertex 10 in a universe of 10";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kValidation);
    EXPECT_NE(std::string(e.what()).find("10"), std::string::npos);
  }
  EXPECT_THROW(VertexSubset::sparse(5, {kInvalidVertex}), Error);
  EXPECT_THROW(VertexSubset::sparse(0, {0}), Error);
  EXPECT_THROW(VertexSubset::sparse(10, {99, 1}), Error)
      << "unsorted input must be validated after the sort";
  EXPECT_THROW(VertexSubset::single(7, 7), Error);
  // The boundary ids themselves are fine.
  EXPECT_NO_THROW(VertexSubset::sparse(10, {0, 9}));
}

TEST(VertexSubset, DenseTrustedCountSkipsRecount) {
  std::vector<std::uint8_t> mask(30, 0);
  mask[1] = mask[8] = mask[29] = 1;
  auto s = VertexSubset::dense(std::move(mask), 3);
  EXPECT_EQ(s.size(), 3u);
  EXPECT_TRUE(s.contains(8));
  s.to_sparse();
  EXPECT_EQ(s.sparse_vertices(), (std::vector<VertexId>{1, 8, 29}));
  EXPECT_EQ(s.size(), 3u);
}

TEST(VertexSubset, LargeSubsetCount) {
  Scheduler::reset(4);
  std::vector<std::uint8_t> mask(100000);
  for (std::size_t i = 0; i < mask.size(); i += 3) mask[i] = 1;
  auto s = VertexSubset::dense(std::move(mask));
  EXPECT_EQ(s.size(), 33334u);
  Scheduler::reset(1);
}

}  // namespace
}  // namespace pasgal
