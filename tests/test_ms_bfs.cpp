// Bit-parallel multi-source BFS: a batch of k sources must produce exactly
// the k sequential hop-distance arrays, across graph families, batch sizes,
// directions (dense on/off) and worker counts — plus the batch API contract
// (check_batch_sources typed errors, deadline cancellation mid-batch) and
// the batched-SSSP landmark wrapper against per-source stepping runs.
#include <gtest/gtest.h>

#include <unordered_set>

#include "algorithms/bfs/bfs.h"
#include "algorithms/sssp/sssp.h"
#include "graphs/generators.h"
#include "parlay/hash_rng.h"
#include "pasgal/cancel.h"

namespace pasgal {
namespace {

struct MsCase {
  std::string name;
  Graph g;
  bool symmetric;
};

std::vector<MsCase> test_graphs() {
  std::vector<MsCase> cases;
  cases.push_back({"two_isolated", Graph::from_edges(2, {}), true});
  cases.push_back(
      {"self_loop", Graph::from_edges(2, std::vector<Edge>{{0, 0}, {0, 1}}),
       false});
  cases.push_back({"chain200", gen::chain(200), true});
  cases.push_back({"dchain200", gen::chain(200, true), false});
  cases.push_back({"star1000", gen::star(1000), true});
  cases.push_back({"tree4095", gen::binary_tree(4095), true});
  cases.push_back({"grid30x40", gen::rectangle_grid(30, 40), true});
  cases.push_back({"road20x50", gen::road_grid(20, 50, 0.7, 3), false});
  cases.push_back({"rmat11", gen::rmat(11, 20000, 5), false});
  cases.push_back({"random2k", gen::random_graph(2000, 10000, 9), false});
  cases.push_back({"disconnected",
                   gen::sampled_edges(gen::rectangle_grid(20, 20), 0.5, 7),
                   false});
  return cases;
}

// k distinct sources, deterministic per (n, seed), spread over the graph.
std::vector<VertexId> pick_sources(std::size_t n, std::size_t k,
                                   std::uint64_t seed) {
  k = std::min(k, n);
  std::vector<VertexId> sources;
  std::unordered_set<VertexId> used;
  Random rng(seed);
  for (std::uint64_t i = 0; sources.size() < k; ++i) {
    VertexId v = static_cast<VertexId>(rng.ith_rand(i, n));
    if (used.insert(v).second) sources.push_back(v);
  }
  return sources;
}

class MsBfsTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, MsBfsTest, ::testing::Values(1, 4));

TEST_P(MsBfsTest, MatchesSequentialAcrossFamiliesAndBatchSizes) {
  for (const auto& c : test_graphs()) {
    Graph gt = c.symmetric ? c.g : c.g.transpose();
    for (std::size_t k : {std::size_t{1}, std::size_t{2}, std::size_t{7},
                          std::size_t{64}}) {
      auto sources = pick_sources(c.g.num_vertices(), k, 17 + k);
      auto dists = ms_bfs(c.g, gt, sources);
      ASSERT_EQ(dists.size(), sources.size()) << c.name << " k=" << k;
      for (std::size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(dists[i], seq_bfs(c.g, sources[i]))
            << c.name << " k=" << k << " src=" << sources[i];
      }
    }
  }
}

TEST_P(MsBfsTest, RandomizedSourcesFullBatch) {
  Graph g = gen::rmat(12, 60000, 23);
  Graph gt = g.transpose();
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    auto sources = pick_sources(g.num_vertices(), 64, seed);
    auto dists = ms_bfs(g, gt, sources);
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(dists[i], seq_bfs(g, sources[i])) << "seed=" << seed
                                                  << " src=" << sources[i];
    }
  }
}

TEST_P(MsBfsTest, SparseOnlyMatches) {
  Graph g = gen::road_grid(15, 60, 0.75, 5);
  Graph gt = g.transpose();
  auto sources = pick_sources(g.num_vertices(), 8, 5);
  MsBfsParams p;
  p.use_dense = false;
  auto dists = ms_bfs(g, gt, sources, p);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(dists[i], seq_bfs(g, sources[i])) << "src=" << sources[i];
  }
}

TEST_P(MsBfsTest, DenseBiasedMatches) {
  // Force direction switches early: every frontier above 1/1000 of m pulls.
  Graph g = gen::rmat(11, 30000, 31);
  Graph gt = g.transpose();
  auto sources = pick_sources(g.num_vertices(), 64, 9);
  MsBfsParams p;
  p.dense_threshold_den = 1000;
  auto dists = ms_bfs(g, gt, sources, p);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(dists[i], seq_bfs(g, sources[i])) << "src=" << sources[i];
  }
}

TEST(MsBfsCancel, ExpiredDeadlineUnwindsMidBatch) {
  // A long chain guarantees many round boundaries; the already-expired
  // token must unwind the whole batch with a typed kTimeout.
  Graph g = gen::chain(20000, true);
  MsBfsParams p;
  CancelToken token;
  token.set_deadline_ms(0);
  p.cancel = &token;
  std::vector<VertexId> sources{0, 1, 2, 3};
  try {
    ms_bfs(g, g.transpose(), sources, p);
    FAIL() << "expired deadline did not cancel the batch";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kTimeout);
  }
}

TEST(MsBfsContract, CheckBatchSourcesTypedErrors) {
  Graph g = gen::chain(100);
  Graph gt = g;  // symmetric
  auto run = [&](std::vector<VertexId> sources) {
    BatchOptions opt;
    opt.sources = std::move(sources);
    return ms_bfs(g, gt, opt);
  };
  auto expect_usage = [&](std::vector<VertexId> sources, const char* what) {
    try {
      run(std::move(sources));
      FAIL() << what << ": no error thrown";
    } catch (const Error& e) {
      EXPECT_EQ(e.category(), ErrorCategory::kUsage) << what;
    }
  };
  expect_usage({}, "empty batch");
  expect_usage({1, 2, 100}, "out-of-range source");
  expect_usage({1, 2, 1}, "duplicate source");
  std::vector<VertexId> too_many(kMaxBatchSources + 1);
  for (std::size_t i = 0; i < too_many.size(); ++i) {
    too_many[i] = static_cast<VertexId>(i);
  }
  expect_usage(std::move(too_many), "over-width batch");
}

TEST(MsBfsContract, BatchReportShape) {
  Graph g = gen::rmat(10, 8000, 41);
  Graph gt = g.transpose();
  BatchOptions opt;
  opt.sources = pick_sources(g.num_vertices(), 5, 3);
  auto report = ms_bfs(g, gt, opt);
  EXPECT_EQ(report.batch_size(), 5u);
  ASSERT_EQ(report.per_source.size(), 5u);
  EXPECT_GT(report.seconds, 0.0);
  EXPECT_GT(report.qps(), 0.0);
  for (std::size_t i = 0; i < opt.sources.size(); ++i) {
    EXPECT_EQ(report.per_source[i].output, seq_bfs(g, opt.sources[i]))
        << "src=" << opt.sources[i];
  }
}

class BatchSsspTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, BatchSsspTest, ::testing::Values(1, 4));

TEST_P(BatchSsspTest, MatchesPerSourceStepping) {
  auto g = gen::add_weights(gen::rmat(11, 20000, 6), 100, 6);
  for (bool delta_mode : {false, true}) {
    BatchOptions opt;
    opt.sources = pick_sources(g.num_vertices(), 7, 29);
    opt.algo.sssp_delta_mode = delta_mode;
    auto report = batch_sssp(g, opt);
    ASSERT_EQ(report.per_source.size(), opt.sources.size());
    for (std::size_t i = 0; i < opt.sources.size(); ++i) {
      AlgoOptions single = opt.algo;
      single.source = opt.sources[i];
      EXPECT_EQ(report.per_source[i].output, stepping_sssp(g, single).output)
          << "delta_mode=" << delta_mode << " src=" << opt.sources[i];
    }
  }
}

TEST(BatchSsspContract, SharesTheSourceListContract) {
  auto g = gen::add_weights(gen::chain(50), 10, 1);
  BatchOptions opt;
  opt.sources = {3, 3};
  try {
    batch_sssp(g, opt);
    FAIL() << "duplicate source accepted";
  } catch (const Error& e) {
    EXPECT_EQ(e.category(), ErrorCategory::kUsage);
  }
}

}  // namespace
}  // namespace pasgal
