// Tests for the VGC local-search engine itself (the algorithm-level suites
// cover its end-to-end use).
#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "algorithms/bfs/bfs.h"  // kInfDist
#include "graphs/generators.h"
#include "pasgal/vgc.h"

namespace pasgal {
namespace {

class VgcTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override { Scheduler::reset(GetParam()); }
  void TearDown() override { Scheduler::reset(1); }
};

INSTANTIATE_TEST_SUITE_P(Workers, VgcTest, ::testing::Values(1, 4));

TEST_P(VgcTest, LocalSearchClaimsConnectedRegion) {
  Graph g = gen::chain(1000, /*directed=*/true);
  std::vector<std::atomic<std::uint8_t>> claimed(1000);
  for (auto& c : claimed) c.store(0, std::memory_order_relaxed);
  claimed[0].store(1, std::memory_order_relaxed);
  HashBag<VertexId> next;
  VgcParams p;
  p.tau = 100;
  std::uint64_t expanded = local_search(
      g, 0, p,
      [&](VertexId v) {
        std::uint8_t e = 0;
        return claimed[v].compare_exchange_strong(e, 1, std::memory_order_relaxed);
      },
      next);
  // On a chain, a budget of 100 claims exactly ~100 consecutive vertices and
  // spills the boundary.
  EXPECT_GE(expanded, 100u);
  auto spilled = next.extract_all();
  EXPECT_EQ(spilled.size(), 1u);  // exactly the boundary vertex
  // Claimed prefix is contiguous.
  std::size_t count = 0;
  while (count < 1000 && claimed[count].load(std::memory_order_relaxed)) ++count;
  for (std::size_t v = count; v < 1000; ++v) {
    EXPECT_FALSE(claimed[v].load(std::memory_order_relaxed) &&
                 v != spilled[0]);
  }
}

TEST_P(VgcTest, TauOneSpillsEveryNeighbour) {
  Graph g = gen::star(50);  // center 0 with 49 leaves (symmetrized)
  std::vector<std::atomic<std::uint8_t>> claimed(50);
  for (auto& c : claimed) c.store(0, std::memory_order_relaxed);
  claimed[0].store(1, std::memory_order_relaxed);
  HashBag<VertexId> next;
  VgcParams p;
  p.tau = 1;
  local_search(
      g, 0, p,
      [&](VertexId v) {
        std::uint8_t e = 0;
        return claimed[v].compare_exchange_strong(e, 1, std::memory_order_relaxed);
      },
      next);
  // Budget exhausted after the root: all 49 leaves spill to the bag.
  EXPECT_EQ(next.extract_all().size(), 49u);
}

TEST_P(VgcTest, SearchStopsAtAlreadyClaimedVertices) {
  Graph g = gen::chain(100, /*directed=*/true);
  std::vector<std::atomic<std::uint8_t>> claimed(100);
  for (auto& c : claimed) c.store(0, std::memory_order_relaxed);
  claimed[0].store(1, std::memory_order_relaxed);
  claimed[50].store(1, std::memory_order_relaxed);  // wall at 50
  HashBag<VertexId> next;
  VgcParams p;
  p.tau = 1000;
  local_search(
      g, 0, p,
      [&](VertexId v) {
        std::uint8_t e = 0;
        return claimed[v].compare_exchange_strong(e, 1, std::memory_order_relaxed);
      },
      next);
  EXPECT_TRUE(next.extract_all().empty());
  EXPECT_FALSE(claimed[51].load(std::memory_order_relaxed));
}

TEST_P(VgcTest, DistSearchExploresBall) {
  // FIFO expansion: on a grid the first tau expanded vertices form a ball,
  // so all distances assigned within the budget are exact.
  Graph g = gen::rectangle_grid(41, 41);
  VertexId center = 20 * 41 + 20;
  std::vector<std::atomic<std::uint32_t>> dist(g.num_vertices());
  for (auto& d : dist) d.store(kInfDist, std::memory_order_relaxed);
  dist[center].store(0, std::memory_order_relaxed);
  std::vector<std::pair<VertexId, std::uint32_t>> spilled;
  VgcParams p;
  p.tau = 200;
  local_search_dist(
      center, 0, p,
      [&](VertexId u, std::uint32_t du, auto&& emit) {
        if (dist[u].load(std::memory_order_relaxed) != du) return;
        for (VertexId v : g.neighbors(u)) {
          if (write_min(dist[v], du + 1)) emit(v, du + 1);
        }
      },
      [&](VertexId v, std::uint32_t d) { spilled.push_back({v, d}); });
  // Every assigned finite distance equals the true grid (L1) distance.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    std::uint32_t d = dist[v].load(std::memory_order_relaxed);
    if (d == kInfDist) continue;
    std::uint32_t true_d =
        std::abs(static_cast<int>(v / 41) - 20) + std::abs(static_cast<int>(v % 41) - 20);
    EXPECT_EQ(d, true_d) << "v=" << v;
  }
  // Spills are just outside the expanded ball: their distance is within
  // 1 hop of the maximum expanded distance.
  EXPECT_FALSE(spilled.empty());
}

TEST(VgcKinfDist, SentinelValue) {
  EXPECT_EQ(kInfDist, 0xffffffffu);
}

}  // namespace
}  // namespace pasgal
