// Incremental maintenance of BFS distances and connected components under
// delta-overlay updates (graphs/delta.h, DESIGN.md §5k).
//
// Contract: the caller holds a result computed *before* a batch was applied,
// applies the batch (apply_updates), then calls the repair function with the
// post-apply graph and the same batch. The repair re-settles only vertices
// whose patched neighborhoods can change the answer and is exact: the
// repaired result is byte-identical to recomputing from scratch on the
// effective graph (BFS hop distances and min-vertex component labels are
// unique fixpoints, so "identical" needs no tie-breaking caveats).
//
// Fallback: past a churn threshold (affected vertices / n), cascading repair
// loses to a straight recompute; the functions then recompute via the
// overlay-aware kernels and report fallback=true.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphs/delta.h"
#include "graphs/graph.h"

namespace pasgal {

struct IncrementalOptions {
  // Fall back to full recompute when (invalidated + insert seeds) exceeds
  // this fraction of n. 0 forces fallback, 1 never falls back.
  double churn_threshold = 0.05;
};

struct IncrementalStats {
  // Vertices whose value was recomputed (invalidated, improved, or
  // re-relaxed). Equal to full_settled on fallback.
  std::uint64_t resettled = 0;
  // What a from-scratch recompute settles: n.
  std::uint64_t full_settled = 0;
  bool fallback = false;
};

// Repairs hop distances from `source` in place. `g`/`gt` are the post-apply
// graph and its transpose (overlay attached); `dist` holds the pre-batch
// distances and is repaired to exactly gbbs_bfs(g, gt, source).
//
// Delete phase: a deleted tree edge (u,v) with dist[v] == dist[u]+1 makes v
// a candidate; a candidate without a surviving effective in-neighbor at
// dist-1 is invalidated, cascading along its out-edges. Repair phase:
// unit-weight Bellman-Ford relaxation seeded from the settled boundary of
// the invalidated region plus the settled sources of inserted edges —
// monotone atomic-min relaxation, so the fixpoint is the exact BFS level.
IncrementalStats incremental_bfs(const Graph& g, const Graph& gt,
                                 VertexId source,
                                 std::span<const EdgeUpdate> batch,
                                 std::vector<std::uint32_t>& dist,
                                 const IncrementalOptions& opt = {});

// Repairs min-vertex component labels (connected_components semantics on
// the symmetrized graph) in place. Insert-only batches union label classes
// — O(batch · α + n) relabel, no traversal. Any delete forces a full
// recompute (a deletion can split a component, which labels alone cannot
// detect); `g` is the post-apply directed graph, symmetrized internally.
IncrementalStats incremental_cc(const Graph& g,
                                std::span<const EdgeUpdate> batch,
                                std::vector<VertexId>& label,
                                const IncrementalOptions& opt = {});

}  // namespace pasgal
