#include <atomic>

#include "algorithms/sssp/sssp.h"
#include "parlay/primitives.h"
#include "pasgal/edge_map.h"

namespace pasgal {

// Frontier-synchronous Bellman-Ford routed through edge_map_sparse: the same
// label-correcting recurrence as bellman_ford, but every edge scan goes
// through the edge_map choke point, so sharded (.pgr windowed) opens traverse
// shard-at-a-time with bounded residency. The weight is looked up by the
// edge's *global* id (the 3-arg update form) — weights stay a whole-file
// span even when targets are windowed, since only the targets section is
// compressed/windowed. Push-only: SSSP loads carry no transpose, and the
// min-relaxation has no early-exit pull formulation anyway.
//
// Distances converge to the same fixpoint as the baselines (relaxations are
// monotone write_mins; rounds repeat until no distance improves), so outputs
// are byte-identical to bellman_ford/dijkstra on the same graph.
std::vector<Dist> em_bellman_ford(const WeightedGraph<std::uint32_t>& g,
                                  VertexId source, const CancelToken* cancel,
                                  RunStats* stats) {
  check_sssp_preconditions(g, source, kInfWeightDist - 1).throw_if_error();
  const Graph& ug = g.unweighted();
  std::size_t n = g.num_vertices();
  std::vector<std::atomic<Dist>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfWeightDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  auto weights = g.weights();
  auto update = [&](VertexId u, VertexId v, EdgeId e) {
    Dist nd = dist[u].load(std::memory_order_relaxed) + weights[e];
    return write_min(dist[v], nd);
  };
  // Label-correcting: any vertex may improve again in a later round.
  auto cond = [](VertexId) { return true; };
  EdgeMapOptions opt;
  opt.allow_dense = false;
  opt.cancel = cancel;

  VertexSubset frontier = VertexSubset::single(n, source);
  while (!frontier.empty()) {
    if (stats) stats->end_round(frontier.size());
    frontier = edge_map_sparse(ug, frontier, update, cond, opt, stats);
  }

  return tabulate(n, [&](std::size_t v) {
    return dist[v].load(std::memory_order_relaxed);
  });
}

RunReport<std::vector<Dist>> em_bellman_ford(
    const WeightedGraph<std::uint32_t>& g, const AlgoOptions& opt) {
  g.ensure_validated();
  return run_traced(opt, [&](Tracer* t) {
    return em_bellman_ford(g, opt.source, opt.cancel, t);
  });
}

}  // namespace pasgal
