#include <atomic>

#include "algorithms/sssp/sssp.h"
#include "parlay/primitives.h"

namespace pasgal {

// Frontier-based synchronous Bellman-Ford: each round relaxes every out-edge
// of the vertices improved in the previous round. Needs one global
// synchronization per round and up to O(n) rounds on weighted paths — the
// round-count pathology the stepping framework avoids.
std::vector<Dist> bellman_ford(const WeightedGraph<std::uint32_t>& g,
                               VertexId source, RunStats* stats) {
  check_sssp_preconditions(g, source, kInfWeightDist - 1).throw_if_error();
  std::size_t n = g.num_vertices();
  std::vector<std::atomic<Dist>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfWeightDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<VertexId> frontier = {source};
  std::vector<std::atomic<std::uint8_t>> in_next(n);
  parallel_for(0, n, [&](std::size_t i) {
    in_next[i].store(0, std::memory_order_relaxed);
  });

  while (!frontier.empty()) {
    if (stats) stats->end_round(frontier.size());
    parallel_for(
        0, frontier.size(),
        [&](std::size_t i) {
          VertexId u = frontier[i];
          Dist du = dist[u].load(std::memory_order_relaxed);
          std::uint64_t scanned = 0;
          for (EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
            ++scanned;
            VertexId v = g.edge_target(e);
            Dist nd = du + g.edge_weight(e);
            if (write_min(dist[v], nd)) {
              in_next[v].store(1, std::memory_order_relaxed);
            }
          }
          if (stats) {
            stats->add_edges(scanned);
            stats->add_visits(1);
          }
        },
        1);
    frontier = pack_indexed<VertexId>(
        n,
        [&](std::size_t v) {
          return in_next[v].load(std::memory_order_relaxed) != 0;
        },
        [&](std::size_t v) { return static_cast<VertexId>(v); });
    parallel_for(0, n, [&](std::size_t i) {
      in_next[i].store(0, std::memory_order_relaxed);
    });
  }

  return tabulate(n, [&](std::size_t v) {
    return dist[v].load(std::memory_order_relaxed);
  });
}

}  // namespace pasgal
