#include <queue>

#include "algorithms/sssp/sssp.h"

namespace pasgal {

// Sequential Dijkstra with a binary heap and lazy deletion — the standard
// sequential SSSP baseline.
std::vector<Dist> dijkstra(const WeightedGraph<std::uint32_t>& g,
                           VertexId source, RunStats* stats) {
  check_sssp_preconditions(g, source, kInfWeightDist - 1).throw_if_error();
  std::size_t n = g.num_vertices();
  std::vector<Dist> dist(n, kInfWeightDist);
  using Entry = std::pair<Dist, VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  dist[source] = 0;
  heap.push({0, source});
  std::uint64_t edges = 0, visits = 0;
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;  // stale
    ++visits;
    for (EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      ++edges;
      VertexId v = g.edge_target(e);
      Dist nd = d + g.edge_weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.push({nd, v});
      }
    }
  }
  if (stats) {
    stats->add_edges(edges);
    stats->add_visits(visits);
    stats->end_round(visits);
  }
  return dist;
}

}  // namespace pasgal
