// Shared SSSP precondition checks (declared in sssp.h).
#include "algorithms/sssp/sssp.h"
#include "parlay/primitives.h"

namespace pasgal {

Status check_sssp_preconditions(const WeightedGraph<std::uint32_t>& g,
                                VertexId source, Dist max_dist) {
  std::size_t n = g.num_vertices();
  if (source >= n) {
    return Status::Failure(ErrorCategory::kValidation,
                           "source vertex " + std::to_string(source) +
                               " out of range (graph has " +
                               std::to_string(n) + " vertices)");
  }
  // Storages already deep-validated (an earlier ensure_validated pass, or a
  // sharded open's shard-at-a-time range check) skip the O(m) structural
  // re-scan — a windowed handle has no whole-file targets span to re-scan
  // anyway. The weight-coverage half of validate() still applies: weights
  // can be attached after the storage was validated.
  const StorageRef& storage = g.unweighted().storage();
  if (storage != nullptr && storage->validated()) {
    if (g.weights().size() != g.num_edges()) {
      return Status::Failure(
          ErrorCategory::kValidation,
          "weight array has " + std::to_string(g.weights().size()) +
              " entries but the graph has " + std::to_string(g.num_edges()) +
              " edges");
    }
  } else {
    Status s = g.validate();
    if (!s.ok()) return s;
  }
  if (n <= 1 || g.num_edges() == 0) return Status::Ok();

  auto max_u32 = [](std::uint32_t a, std::uint32_t b) { return a > b ? a : b; };
  std::uint32_t max_w = 0;
  const auto& window =
      storage != nullptr ? storage->shard_window() : nullptr;
  if (window != nullptr) {
    // Sharded open: one flat reduce would fault in the whole weights section
    // and hold it resident until shard sweeps DONTNEED it range by range.
    // Walk the shard plan instead — each shard's weight range fits the
    // window budget — advising each range in before the scan and out after.
    auto weights = g.weights();
    const ShardPlan& plan = window->plan();
    const StorageWeight* sec_lo = weights.data();
    const StorageWeight* sec_hi = weights.data() + weights.size();
    for (std::size_t s = 0; s < plan.size(); ++s) {
      const ShardRange& r = plan[s];
      const StorageWeight* w0 = weights.data() + r.e_begin;
      std::size_t bytes =
          static_cast<std::size_t>(r.e_end - r.e_begin) * sizeof(StorageWeight);
      window->advise_range(w0, bytes, /*in=*/true);
      max_w = max_u32(
          max_w, reduce_indexed<std::uint32_t>(
                     r.e_end - r.e_begin, 0, max_u32,
                     [&](std::size_t i) { return w0[i]; }));
      window->advise_range(w0, bytes, /*in=*/false, sec_lo, sec_hi);
    }
  } else {
    max_w = reduce_indexed<std::uint32_t>(
        g.num_edges(), 0, max_u32,
        [&](std::size_t e) { return g.edge_weight(e); });
  }
  unsigned __int128 worst =
      static_cast<unsigned __int128>(n - 1) * max_w;
  if (worst > static_cast<unsigned __int128>(max_dist)) {
    return Status::Failure(
        ErrorCategory::kValidation,
        "weight-sum overflow risk: a path over " + std::to_string(n) +
            " vertices with max edge weight " + std::to_string(max_w) +
            " can exceed the algorithm's distance ceiling " +
            std::to_string(max_dist) +
            "; rescale the weights or use a 64-bit variant");
  }
  return Status::Ok();
}

}  // namespace pasgal
