// Shared SSSP precondition checks (declared in sssp.h).
#include "algorithms/sssp/sssp.h"
#include "parlay/primitives.h"

namespace pasgal {

Status check_sssp_preconditions(const WeightedGraph<std::uint32_t>& g,
                                VertexId source, Dist max_dist) {
  std::size_t n = g.num_vertices();
  if (source >= n) {
    return Status::Failure(ErrorCategory::kValidation,
                           "source vertex " + std::to_string(source) +
                               " out of range (graph has " +
                               std::to_string(n) + " vertices)");
  }
  Status s = g.validate();
  if (!s.ok()) return s;
  if (n <= 1 || g.num_edges() == 0) return Status::Ok();

  std::uint32_t max_w = reduce_indexed<std::uint32_t>(
      g.num_edges(), 0,
      [](std::uint32_t a, std::uint32_t b) { return a > b ? a : b; },
      [&](std::size_t e) { return g.edge_weight(e); });
  unsigned __int128 worst =
      static_cast<unsigned __int128>(n - 1) * max_w;
  if (worst > static_cast<unsigned __int128>(max_dist)) {
    return Status::Failure(
        ErrorCategory::kValidation,
        "weight-sum overflow risk: a path over " + std::to_string(n) +
            " vertices with max edge weight " + std::to_string(max_w) +
            " can exceed the algorithm's distance ceiling " +
            std::to_string(max_dist) +
            "; rescale the weights or use a 64-bit variant");
  }
  return Status::Ok();
}

}  // namespace pasgal
