// Single-source shortest paths (§2.2 "Parallel SSSP").
//
// PASGAL's SSSP is the *stepping algorithm framework* (Dong, Gu, Sun,
// PPoPP'21) instantiated with hash-bag frontiers and VGC:
//   * delta-stepping  — process all entries within `delta` of the current
//     base distance per step;
//   * rho-stepping    — process the `rho` closest entries per step.
// Both are label-correcting: entries carry the tentative distance they were
// enqueued with and stale entries are skipped, so VGC's out-of-order local
// relaxations are safe.
//
// Baselines: sequential Dijkstra (binary heap) and round-synchronous
// frontier Bellman-Ford (the O(D)-rounds baseline).
//
// Edge weights are uint32; distances are uint64 (kInfWeightDist if
// unreachable).
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/cancel.h"
#include "pasgal/error.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"
#include "pasgal/vgc.h"

namespace pasgal {

using Dist = std::uint64_t;
inline constexpr Dist kInfWeightDist = static_cast<Dist>(-1);

// Structural preconditions shared by every SSSP variant, run before any
// unchecked indexing: the source must exist, the weight array must cover
// every edge, and (n - 1) * max_weight — the largest distance any simple
// path can reach — must fit below `max_dist`, the algorithm's distance
// ceiling (2^32 - 1 for the stepping framework's packed 32-bit tentative
// distances, kInfWeightDist for the 64-bit baselines). Rejecting on that
// conservative product means no relaxation can overflow mid-run.
// All public SSSP entry points call this and throw the kValidation Error.
Status check_sssp_preconditions(const WeightedGraph<std::uint32_t>& g,
                                VertexId source, Dist max_dist);

std::vector<Dist> dijkstra(const WeightedGraph<std::uint32_t>& g,
                           VertexId source, RunStats* stats = nullptr);

std::vector<Dist> bellman_ford(const WeightedGraph<std::uint32_t>& g,
                               VertexId source, RunStats* stats = nullptr);

// Bellman-Ford through the edge_map choke point (`-a em`): same recurrence
// and same final distances as bellman_ford, but every edge scan goes through
// edge_map_sparse, so sharded (.pgr --shard-mb) opens traverse shard-at-a-
// time with bounded residency. Push-only; needs no transpose.
std::vector<Dist> em_bellman_ford(const WeightedGraph<std::uint32_t>& g,
                                  VertexId source,
                                  const CancelToken* cancel = nullptr,
                                  RunStats* stats = nullptr);

struct SteppingParams {
  enum class Strategy { kDelta, kRho };
  Strategy strategy = Strategy::kRho;
  Dist delta = 32;          // kDelta: bucket width
  std::size_t rho = 8192;   // kRho: entries processed per step
  VgcParams vgc;            // tau = 1 disables VGC
  // Checked at every step boundary; throws kTimeout on expiry.
  const CancelToken* cancel = nullptr;
};

std::vector<Dist> stepping_sssp(const WeightedGraph<std::uint32_t>& g,
                                VertexId source, SteppingParams params = {},
                                RunStats* stats = nullptr);

// Convenience wrappers matching the paper's naming.
inline std::vector<Dist> rho_stepping(const WeightedGraph<std::uint32_t>& g,
                                      VertexId source, RunStats* stats = nullptr) {
  return stepping_sssp(g, source, {}, stats);
}
inline std::vector<Dist> delta_stepping(const WeightedGraph<std::uint32_t>& g,
                                        VertexId source, Dist delta = 32,
                                        RunStats* stats = nullptr) {
  SteppingParams p;
  p.strategy = SteppingParams::Strategy::kDelta;
  p.delta = delta;
  return stepping_sssp(g, source, p, stats);
}

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
// stepping_sssp reads sssp_delta_mode/sssp_delta/sssp_rho and the VGC knobs
// from the options.
RunReport<std::vector<Dist>> dijkstra(const WeightedGraph<std::uint32_t>& g,
                                      const AlgoOptions& opt);
RunReport<std::vector<Dist>> bellman_ford(const WeightedGraph<std::uint32_t>& g,
                                          const AlgoOptions& opt);
RunReport<std::vector<Dist>> em_bellman_ford(
    const WeightedGraph<std::uint32_t>& g, const AlgoOptions& opt);
RunReport<std::vector<Dist>> stepping_sssp(const WeightedGraph<std::uint32_t>& g,
                                           const AlgoOptions& opt);

// Batched-SSSP landmark wrapper over the same batch surface as ms_bfs
// (bfs.h): validates the source list (check_batch_sources, typed kUsage),
// then runs the stepping framework once per source under one shared tracer
// and the shared CancelToken — an expired token unwinds the whole batch with
// kTimeout. Weighted distances have no bit-parallel kernel, so the per-source
// slices carry real wall times and the batch telemetry accumulates every
// run's rounds.
BatchReport<std::vector<Dist>> batch_sssp(const WeightedGraph<std::uint32_t>& g,
                                          const BatchOptions& opt);

}  // namespace pasgal
