#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <stdexcept>

#include "algorithms/sssp/sssp.h"
#include "pasgal/hashbag.h"

namespace pasgal {

namespace {

// Bag entries encode (tentative distance << 32 | vertex); tentative
// distances are therefore limited to 32 bits. This covers all graphs whose
// weighted diameter fits in u32 (checked at relaxation time).
constexpr std::uint32_t kInf32 = static_cast<std::uint32_t>(-1);

std::uint64_t encode(VertexId v, std::uint32_t d) {
  return (static_cast<std::uint64_t>(d) << 32) | v;
}
VertexId entry_vertex(std::uint64_t e) { return static_cast<VertexId>(e); }
std::uint32_t entry_dist(std::uint64_t e) {
  return static_cast<std::uint32_t>(e >> 32);
}

// Geometric buckets on the gap to the current base distance, as in the
// multi-frontier BFS: far entries re-bucket at most O(log D_w) times.
constexpr int kNumBuckets = 34;
int bucket_for(std::uint32_t gap) {
  if (gap == 0) return 0;
  int b = 1 + (31 - std::countl_zero(gap));
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

}  // namespace

// The stepping algorithm framework (Dong, Gu, Sun — PPoPP'21) with hash-bag
// frontiers and VGC local relaxations. Each step settles the entries below a
// strategy-chosen threshold:
//   delta-stepping: threshold = base + delta,
//   rho-stepping:   threshold = distance of the rho-th closest entry.
std::vector<Dist> stepping_sssp(const WeightedGraph<std::uint32_t>& g,
                                VertexId source, SteppingParams params,
                                RunStats* stats) {
  // Tentative distances are packed into 32 bits (see encode() above), so the
  // ceiling here is kInf32 - 1, not the 64-bit kInfWeightDist.
  check_sssp_preconditions(g, source, static_cast<Dist>(kInf32) - 1)
      .throw_if_error();
  std::size_t n = g.num_vertices();
  std::vector<std::atomic<std::uint32_t>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInf32, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<std::unique_ptr<HashBag<std::uint64_t>>> bags;
  bags.reserve(kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    bags.push_back(std::make_unique<HashBag<std::uint64_t>>(8));
    if (stats) bags.back()->attach_tracer(stats);
  }
  bags[0]->insert(encode(source, 0));

  for (;;) {
    if (params.cancel != nullptr) params.cancel->check("stepping_sssp step");
    int lowest = -1;
    for (int b = 0; b < kNumBuckets; ++b) {
      if (!bags[b]->empty()) {
        lowest = b;
        break;
      }
    }
    if (lowest < 0) break;

    auto entries = bags[lowest]->extract_all();
    auto valid = filter(std::span<const std::uint64_t>(entries),
                        [&](std::uint64_t e) {
                          return dist[entry_vertex(e)].load(
                                     std::memory_order_relaxed) == entry_dist(e);
                        });
    if (valid.empty()) continue;

    std::uint32_t base = reduce_indexed<std::uint32_t>(
        valid.size(), kInf32,
        [](std::uint32_t a, std::uint32_t b) { return a < b ? a : b; },
        [&](std::size_t i) { return entry_dist(valid[i]); });

    // Strategy: pick the settling threshold for this step.
    std::uint32_t threshold;
    if (params.strategy == SteppingParams::Strategy::kDelta) {
      // params.delta is a 64-bit Dist: base + delta can wrap, and a wrapped
      // sum lands below base, which would settle nothing and re-insert every
      // entry into the same bucket forever. Saturate on wrap as well as on
      // overshoot past the 32-bit distance ceiling.
      std::uint64_t t = static_cast<std::uint64_t>(base) + params.delta;
      if (t < base || t > static_cast<std::uint64_t>(kInf32) - 1) {
        t = static_cast<std::uint64_t>(kInf32) - 1;
      }
      threshold = static_cast<std::uint32_t>(t);
    } else if (valid.size() <= params.rho) {
      threshold = kInf32 - 1;  // settle everything extracted
    } else {
      auto dists = tabulate(valid.size(), [&](std::size_t i) {
        return entry_dist(valid[i]);
      });
      std::nth_element(dists.begin(),
                       dists.begin() + static_cast<std::ptrdiff_t>(params.rho - 1),
                       dists.end());
      threshold = dists[params.rho - 1];
    }

    std::vector<std::uint64_t> ready;
    ready.reserve(valid.size());
    for (std::uint64_t e : valid) {
      if (entry_dist(e) <= threshold) {
        ready.push_back(e);
      } else {
        bags[bucket_for(entry_dist(e) - base)]->insert(e);
      }
    }
    if (ready.empty()) continue;

    if (stats) {
      stats->end_round(ready.size(), params.vgc.tau > 1 ? RoundKind::kLocal
                                                        : RoundKind::kSparse);
    }
    parallel_for(
        0, ready.size(),
        [&](std::size_t i) {
          VertexId root = entry_vertex(ready[i]);
          std::uint32_t root_dist = entry_dist(ready[i]);
          std::uint64_t edges = 0;
          local_search_dist(
              root, root_dist, params.vgc,
              [&](VertexId u, std::uint32_t du, auto&& emit) {
                if (dist[u].load(std::memory_order_relaxed) != du) return;
                for (EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
                  ++edges;
                  VertexId v = g.edge_target(e);
                  std::uint64_t nd64 =
                      static_cast<std::uint64_t>(du) + g.edge_weight(e);
                  if (nd64 >= kInf32) {
                    throw Error(
                        ErrorCategory::kValidation,
                        "stepping_sssp: tentative distance exceeds 32 bits");
                  }
                  std::uint32_t nd = static_cast<std::uint32_t>(nd64);
                  if (write_min(dist[v], nd)) emit(v, nd);
                }
              },
              [&](VertexId v, std::uint32_t d) {
                bags[bucket_for(d - base)]->insert(encode(v, d));
              },
              stats);
          if (stats) stats->add_edges(edges);
        },
        1);
  }

  return tabulate(n, [&](std::size_t v) {
    std::uint32_t d = dist[v].load(std::memory_order_relaxed);
    return d == kInf32 ? kInfWeightDist : static_cast<Dist>(d);
  });
}

}  // namespace pasgal
