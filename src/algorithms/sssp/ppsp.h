// Point-to-point shortest paths (s -> t) — the paper's third extension
// target. Two classic algorithms over the weighted CSR type:
//
//  * ppsp_dijkstra      — unidirectional Dijkstra with early exit at t.
//  * ppsp_bidirectional — bidirectional Dijkstra (forward from s on g,
//                         backward from t on the transpose), meeting in the
//                         middle; explores ~2*(d/2)-balls instead of one
//                         d-ball, a large win on large-diameter graphs.
//
// Both return the distance (kInfWeightDist if t unreachable) and report the
// number of settled vertices through RunStats::vertices_visited.
#pragma once

#include "algorithms/sssp/sssp.h"

namespace pasgal {

Dist ppsp_dijkstra(const WeightedGraph<std::uint32_t>& g, VertexId source,
                   VertexId target, RunStats* stats = nullptr);

// `gt` must be the weighted transpose of `g`.
Dist ppsp_bidirectional(const WeightedGraph<std::uint32_t>& g,
                        const WeightedGraph<std::uint32_t>& gt, VertexId source,
                        VertexId target, RunStats* stats = nullptr);

}  // namespace pasgal
