#include <queue>

#include "algorithms/sssp/ppsp.h"

namespace pasgal {

namespace {

using HeapEntry = std::pair<Dist, VertexId>;
using MinHeap =
    std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<HeapEntry>>;

}  // namespace

Dist ppsp_dijkstra(const WeightedGraph<std::uint32_t>& g, VertexId source,
                   VertexId target, RunStats* stats) {
  std::size_t n = g.num_vertices();
  std::vector<Dist> dist(n, kInfWeightDist);
  MinHeap heap;
  dist[source] = 0;
  heap.push({0, source});
  std::uint64_t settled = 0, edges = 0;
  while (!heap.empty()) {
    auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;
    ++settled;
    if (u == target) break;  // first settle of t is optimal
    for (EdgeId e = g.edge_begin(u); e < g.edge_end(u); ++e) {
      ++edges;
      VertexId v = g.edge_target(e);
      Dist nd = d + g.edge_weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.push({nd, v});
      }
    }
  }
  if (stats) {
    stats->add_visits(settled);
    stats->add_edges(edges);
    stats->end_round(settled);
  }
  return dist[target];
}

Dist ppsp_bidirectional(const WeightedGraph<std::uint32_t>& g,
                        const WeightedGraph<std::uint32_t>& gt, VertexId source,
                        VertexId target, RunStats* stats) {
  std::size_t n = g.num_vertices();
  if (source == target) return 0;
  std::vector<Dist> dist_f(n, kInfWeightDist), dist_b(n, kInfWeightDist);
  std::vector<std::uint8_t> settled_f(n, 0), settled_b(n, 0);
  MinHeap heap_f, heap_b;
  dist_f[source] = 0;
  dist_b[target] = 0;
  heap_f.push({0, source});
  heap_b.push({0, target});

  Dist best = kInfWeightDist;
  std::uint64_t settled = 0, edges = 0;

  auto expand = [&](MinHeap& heap, std::vector<Dist>& dist,
                    std::vector<std::uint8_t>& my_settled,
                    const std::vector<Dist>& other_dist,
                    const WeightedGraph<std::uint32_t>& graph) -> bool {
    // Settle one vertex; returns false when this side is exhausted.
    while (!heap.empty() && heap.top().first != dist[heap.top().second]) {
      heap.pop();  // stale
    }
    if (heap.empty()) return false;
    auto [d, u] = heap.top();
    heap.pop();
    my_settled[u] = 1;
    ++settled;
    for (EdgeId e = graph.edge_begin(u); e < graph.edge_end(u); ++e) {
      ++edges;
      VertexId v = graph.edge_target(e);
      Dist nd = d + graph.edge_weight(e);
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.push({nd, v});
      }
      if (other_dist[v] != kInfWeightDist && nd + other_dist[v] < best) {
        best = nd + other_dist[v];
      }
    }
    return true;
  };

  for (;;) {
    // Termination: when the sum of the two frontier minima reaches `best`,
    // no shorter s-t path remains.
    Dist top_f = heap_f.empty() ? kInfWeightDist : heap_f.top().first;
    Dist top_b = heap_b.empty() ? kInfWeightDist : heap_b.top().first;
    if (top_f == kInfWeightDist && top_b == kInfWeightDist) break;
    if (best != kInfWeightDist && top_f != kInfWeightDist &&
        top_b != kInfWeightDist && top_f + top_b >= best) {
      break;
    }
    if (best != kInfWeightDist &&
        (top_f == kInfWeightDist || top_b == kInfWeightDist)) {
      break;
    }
    // Alternate by smaller frontier minimum.
    bool go_forward = top_f <= top_b;
    bool ok = go_forward ? expand(heap_f, dist_f, settled_f, dist_b, g)
                         : expand(heap_b, dist_b, settled_b, dist_f, gt);
    if (!ok && heap_f.empty() && heap_b.empty()) break;
  }
  if (stats) {
    stats->add_visits(settled);
    stats->add_edges(edges);
    stats->end_round(settled);
  }
  return best;
}

}  // namespace pasgal
