// PageRank — the first of the four standard serving workloads promoted to a
// full vertical (driver, server verb, metrics, bench): iterative dense pull
// over the transpose with per-round L1-delta convergence.
//
//  * seq_pagerank    — textbook power iteration, one thread; the reference
//                      the parallel kernel is compared against in tests.
//  * pasgal_pagerank — dense edge_map pull (pull_exhaustive: every vertex
//                      accumulates from ALL in-neighbours each round). Each
//                      destination's in-edges are summed sequentially by one
//                      task and the convergence reduction uses the fixed
//                      block tree in parlay/primitives.h, so ranks are
//                      byte-identical across worker counts AND across
//                      sharded vs in-core execution (a shard covers a
//                      contiguous destination range with its whole in-edge
//                      payload, so no per-vertex summation order changes).
//
// Ranks follow the damped model: rank'(v) = (1-d)/n + d * (sum over in-
// neighbours u of rank(u)/outdeg(u) + dangling_mass/n), where dangling_mass
// is the rank held by zero-out-degree vertices (redistributed uniformly so
// the ranks keep summing to 1). Iteration stops when the L1 delta between
// consecutive rank vectors drops below epsilon, or after max_iterations.
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/cancel.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"

namespace pasgal {

struct PagerankParams {
  std::uint32_t max_iterations = 100;
  double epsilon = 1e-7;  // L1 convergence threshold
  double damping = 0.85;
  // Checked at every round boundary (and, via edge_map, at every shard
  // sweep boundary) by the round master; expiry unwinds with kTimeout.
  const CancelToken* cancel = nullptr;
};

struct PagerankResult {
  std::vector<double> rank;     // sums to 1 (within rounding)
  std::uint32_t iterations = 0; // rounds actually executed
  double delta = 0;             // L1 delta of the final round
};

// Sequential power iteration over explicit in-edges (gt). In-core only.
PagerankResult seq_pagerank(const Graph& g, const Graph& gt,
                            const PagerankParams& params = {},
                            RunStats* stats = nullptr);

// Parallel dense pull through edge_map (g supplies out-degrees, gt supplies
// in-edges). Works on sharded opens: the pull walks gt's shard plan.
PagerankResult pasgal_pagerank(const Graph& g, const Graph& gt,
                               const PagerankParams& params = {},
                               RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
RunReport<PagerankResult> seq_pagerank(const Graph& g, const Graph& gt,
                                       const AlgoOptions& opt);
RunReport<PagerankResult> pasgal_pagerank(const Graph& g, const Graph& gt,
                                          const AlgoOptions& opt);

}  // namespace pasgal
