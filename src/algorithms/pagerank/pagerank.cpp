#include "algorithms/pagerank/pagerank.h"

#include <cmath>

#include "parlay/primitives.h"
#include "pasgal/edge_map.h"
#include "pasgal/vertex_subset.h"

namespace pasgal {

namespace {

// Shared per-round epilogue: damped combine, dangling-mass redistribution,
// L1 delta. Both kernels run the identical formula so they differ only in
// how the in-edge sums were gathered.
double combine_round(std::size_t n, double damping,
                     const std::vector<double>& prev,
                     const std::vector<double>& sum,
                     const std::vector<double>& inv_out,
                     std::vector<double>& next) {
  // Rank parked on zero-out-degree vertices redistributes uniformly, so the
  // vector keeps summing to 1 instead of leaking mass every round.
  double dangling = reduce_indexed<double>(
      n, 0.0, std::plus<double>{},
      [&](std::size_t u) { return inv_out[u] == 0.0 ? prev[u] : 0.0; });
  double base = (1.0 - damping) / static_cast<double>(n) +
                damping * dangling / static_cast<double>(n);
  parallel_for(0, n,
               [&](std::size_t v) { next[v] = base + damping * sum[v]; });
  return reduce_indexed<double>(n, 0.0, std::plus<double>{}, [&](std::size_t v) {
    return std::fabs(next[v] - prev[v]);
  });
}

std::vector<double> inverse_out_degrees(const Graph& g) {
  std::size_t n = g.num_vertices();
  // Contribution splits over the *effective* out-degree when an update
  // overlay is attached — the base degree would mis-weight patched vertices.
  std::shared_ptr<const DeltaSnapshot> delta_hold =
      g.storage() != nullptr ? g.storage()->delta_snapshot() : nullptr;
  const DeltaSnapshot* delta = delta_hold.get();
  std::vector<double> inv_out(n);
  parallel_for(0, n, [&](std::size_t u) {
    EdgeId d = g.out_degree(static_cast<VertexId>(u));
    if (delta != nullptr) {
      d = delta->effective_degree(static_cast<VertexId>(u), d);
    }
    inv_out[u] = d == 0 ? 0.0 : 1.0 / static_cast<double>(d);
  });
  return inv_out;
}

}  // namespace

PagerankResult seq_pagerank(const Graph& g, const Graph& gt,
                            const PagerankParams& params, RunStats* stats) {
  std::size_t n = g.num_vertices();
  PagerankResult result;
  if (n == 0) return result;
  std::vector<double> inv_out = inverse_out_degrees(g);
  std::vector<double> prev(n, 1.0 / static_cast<double>(n));
  std::vector<double> contrib(n), sum(n), next(n);
  // In-edge overlay for the gather (gt carries the flipped snapshot); the
  // merged scan keeps ascending source order, so the FP summation order — and
  // thus the printed ranks — match a from-scratch rebuild exactly.
  std::shared_ptr<const DeltaSnapshot> din_hold =
      gt.storage() != nullptr ? gt.storage()->delta_snapshot() : nullptr;
  const DeltaSnapshot* din = din_hold.get();
  for (std::uint32_t iter = 0; iter < params.max_iterations; ++iter) {
    if (params.cancel != nullptr) {
      params.cancel->check("pagerank round boundary");
    }
    for (std::size_t u = 0; u < n; ++u) contrib[u] = prev[u] * inv_out[u];
    for (std::size_t v = 0; v < n; ++v) {
      double acc = 0;
      VertexId vv = static_cast<VertexId>(v);
      if (din != nullptr && din->touches(vv)) {
        din->scan_effective(vv, gt.neighbors(vv).data(), gt.edge_begin(vv),
                            gt.edge_end(vv), [&](VertexId u, EdgeId) {
                              acc += contrib[u];
                              return true;
                            });
      } else {
        for (VertexId u : gt.neighbors(vv)) {
          acc += contrib[u];
        }
      }
      sum[v] = acc;
    }
    result.delta = combine_round(n, params.damping, prev, sum, inv_out, next);
    std::swap(prev, next);
    ++result.iterations;
    if (stats) {
      stats->add_edges(gt.num_edges());
      stats->add_visits(n);
      stats->set_round_delta(result.delta);
      stats->end_round(n, RoundKind::kDense);
    }
    if (result.delta < params.epsilon) break;
  }
  result.rank = std::move(prev);
  return result;
}

PagerankResult pasgal_pagerank(const Graph& g, const Graph& gt,
                               const PagerankParams& params, RunStats* stats) {
  std::size_t n = g.num_vertices();
  PagerankResult result;
  if (n == 0) return result;
  std::vector<double> inv_out = inverse_out_degrees(g);
  std::vector<double> prev(n, 1.0 / static_cast<double>(n));
  std::vector<double> contrib(n), sum(n), next(n);

  // Every vertex pulls every round: an exhaustive dense frontier. The pull
  // accumulates sum[v] from one task per destination (update_seq contract),
  // in v's in-edge order — the same order sharded sweeps use, since a shard
  // is a contiguous destination range carrying its whole in-edge payload.
  VertexSubset all =
      VertexSubset::dense(std::vector<std::uint8_t>(n, 1), n);
  EdgeMapOptions eopt;
  eopt.cancel = params.cancel;
  eopt.pull_exhaustive = true;

  for (std::uint32_t iter = 0; iter < params.max_iterations; ++iter) {
    parallel_for(0, n, [&](std::size_t u) {
      contrib[u] = prev[u] * inv_out[u];
      sum[u] = 0;
    });
    edge_map_dense(
        g, gt, all,
        [&](VertexId u, VertexId v) {
          sum[v] += contrib[u];
          return false;  // no activation semantics; the frontier stays `all`
        },
        [](VertexId) { return true; }, eopt, stats);
    result.delta = combine_round(n, params.damping, prev, sum, inv_out, next);
    std::swap(prev, next);
    ++result.iterations;
    if (stats) {
      stats->set_round_delta(result.delta);
      stats->end_round(n, RoundKind::kDense);
    }
    if (result.delta < params.epsilon) break;
  }
  result.rank = std::move(prev);
  return result;
}

}  // namespace pasgal
