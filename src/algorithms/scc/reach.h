// Multi-source restricted reachability — the engine under both pasgal_scc
// (VGC local searches) and gbbs_scc (tau = 1, strict frontier order).
//
// Marks reached[v] for every v reachable from `roots` along edges that stay
// inside the same subproblem (sub[u] == sub[v]) and only through vertices
// where live(v) holds. Subproblems are disjoint and each has at most one
// root, so a single byte array serves all searches at once.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/hashbag.h"
#include "pasgal/stats.h"
#include "pasgal/vgc.h"

namespace pasgal::internal {

struct ReachParams {
  VgcParams vgc;
  EdgeId dense_threshold_den = 20;
  bool use_dense = true;
};

template <typename Live>
void multi_reach(const Graph& g, const Graph& gt,
                 const std::vector<VertexId>& roots,
                 const std::vector<std::uint64_t>& sub, Live&& live,
                 std::vector<std::atomic<std::uint8_t>>& reached,
                 const ReachParams& params, RunStats* stats = nullptr) {
  std::size_t n = g.num_vertices();
  EdgeId m = g.num_edges();
  const EdgeId dense_limit =
      m / static_cast<EdgeId>(params.dense_threshold_den) + 1;

  std::vector<VertexId> current;
  current.reserve(roots.size());
  for (VertexId r : roots) {
    std::uint8_t expected = 0;
    if (reached[r].compare_exchange_strong(expected, 1,
                                           std::memory_order_relaxed)) {
      current.push_back(r);
    }
  }

  HashBag<VertexId> bag(10);
  if (stats) bag.attach_tracer(stats);
  while (!current.empty()) {
    EdgeId work = reduce_indexed<EdgeId>(
                      current.size(), 0, std::plus<EdgeId>{},
                      [&](std::size_t i) { return g.out_degree(current[i]); }) +
                  current.size();

    if (params.use_dense && work > dense_limit) {
      // Dense pull rounds until the wave subsides.
      for (;;) {
        if (stats) stats->end_round(current.size(), RoundKind::kDense);
        std::vector<std::uint8_t> newly(n, 0);
        parallel_for(0, n, [&](std::size_t vi) {
          VertexId v = static_cast<VertexId>(vi);
          if (!live(v) || reached[v].load(std::memory_order_relaxed)) return;
          std::uint64_t scanned = 0;
          for (VertexId u : gt.neighbors(v)) {
            ++scanned;
            if (reached[u].load(std::memory_order_relaxed) &&
                sub[u] == sub[v]) {
              reached[v].store(1, std::memory_order_relaxed);
              newly[vi] = 1;
              break;
            }
          }
          if (stats) stats->add_edges(scanned);
        });
        if (stats) stats->add_visits(n);
        auto next = pack_indexed<VertexId>(
            n, [&](std::size_t v) { return newly[v] != 0; },
            [&](std::size_t v) { return static_cast<VertexId>(v); });
        if (next.empty()) return;
        EdgeId next_work =
            reduce_indexed<EdgeId>(next.size(), 0, std::plus<EdgeId>{},
                                   [&](std::size_t i) {
                                     return g.out_degree(next[i]);
                                   }) +
            next.size();
        current = std::move(next);
        if (next_work <= dense_limit) break;  // back to sparse
      }
      continue;
    }

    if (stats) {
      stats->end_round(current.size(), params.vgc.tau > 1 ? RoundKind::kLocal
                                                          : RoundKind::kSparse);
    }
    parallel_for(
        0, current.size(),
        [&](std::size_t i) {
          VertexId root = current[i];
          std::uint64_t root_sub = sub[root];
          local_search(
              g, root, params.vgc,
              [&](VertexId v) {
                if (!live(v) || sub[v] != root_sub) return false;
                std::uint8_t expected = 0;
                return reached[v].compare_exchange_strong(
                    expected, 1, std::memory_order_relaxed);
              },
              bag, stats);
        },
        1);
    current = bag.extract_all();
  }
}

}  // namespace pasgal::internal
