// SCC condensation: the DAG whose nodes are the strongly connected
// components. Standard companion to SCC (dependency analysis, reachability
// indexing); used by the dependency_resolver example.
#pragma once

#include <vector>

#include "algorithms/scc/scc.h"
#include "graphs/graph.h"

namespace pasgal {

struct Condensation {
  Graph dag;                           // one vertex per SCC, deduped edges
  std::vector<VertexId> component_of;  // original vertex -> dag vertex
  std::vector<VertexId> representative;  // dag vertex -> an original vertex
};

// `labels` must be normalized (normalize_scc_labels): each SCC named by its
// smallest member.
Condensation scc_condensation(const Graph& g, std::span<const VertexId> labels);

}  // namespace pasgal
