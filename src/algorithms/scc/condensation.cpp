#include "algorithms/scc/condensation.h"

#include <atomic>

#include "parlay/primitives.h"

namespace pasgal {

Condensation scc_condensation(const Graph& g, std::span<const VertexId> labels) {
  std::size_t n = g.num_vertices();
  Condensation result;

  // Dense ids for the component representatives (labels[v] == v).
  std::vector<VertexId> dense(n, kInvalidVertex);
  auto reps = pack_indexed<VertexId>(
      n, [&](std::size_t v) { return labels[v] == static_cast<VertexId>(v); },
      [&](std::size_t v) { return static_cast<VertexId>(v); });
  parallel_for(0, reps.size(), [&](std::size_t i) {
    dense[reps[i]] = static_cast<VertexId>(i);
  });
  result.representative = reps;
  result.component_of.resize(n);
  parallel_for(0, n, [&](std::size_t v) {
    result.component_of[v] = dense[labels[v]];
  });

  // Cross-component edges, deduplicated by the CSR builder.
  std::vector<VertexId> edge_source(g.num_edges());
  parallel_for(0, n, [&](std::size_t v) {
    for (EdgeId e = g.edge_begin(static_cast<VertexId>(v));
         e < g.edge_end(static_cast<VertexId>(v)); ++e) {
      edge_source[e] = static_cast<VertexId>(v);
    }
  });
  auto cross = pack_indexed<Edge>(
      g.num_edges(),
      [&](std::size_t e) {
        return labels[edge_source[e]] != labels[g.edge_target(e)];
      },
      [&](std::size_t e) {
        return Edge{result.component_of[edge_source[e]],
                    result.component_of[g.edge_target(e)]};
      });
  result.dag = Graph::from_edges(reps.size(), cross, /*dedup=*/true);
  return result;
}

}  // namespace pasgal
