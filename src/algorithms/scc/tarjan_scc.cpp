#include "algorithms/scc/scc.h"

namespace pasgal {

// Tarjan's SCC algorithm (the paper's sequential baseline), made iterative
// with an explicit DFS stack so adversarial graphs (e.g. a 10^6-vertex chain)
// cannot overflow the call stack.
std::vector<SccLabel> tarjan_scc(const Graph& g, RunStats* stats) {
  std::size_t n = g.num_vertices();
  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> index(n, kUnvisited);
  std::vector<std::uint32_t> lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<VertexId> scc_stack;
  std::vector<SccLabel> label(n, 0);
  std::uint32_t next_index = 0;
  SccLabel next_scc = 0;
  std::uint64_t edges_scanned = 0;

  struct Frame {
    VertexId v;
    EdgeId next_edge;
  };
  std::vector<Frame> dfs;

  for (VertexId root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    dfs.push_back({root, g.edge_begin(root)});
    index[root] = lowlink[root] = next_index++;
    scc_stack.push_back(root);
    on_stack[root] = 1;

    while (!dfs.empty()) {
      Frame& frame = dfs.back();
      VertexId v = frame.v;
      if (frame.next_edge < g.edge_end(v)) {
        VertexId w = g.edge_target(frame.next_edge++);
        ++edges_scanned;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          scc_stack.push_back(w);
          on_stack[w] = 1;
          dfs.push_back({w, g.edge_begin(w)});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        dfs.pop_back();
        if (!dfs.empty()) {
          VertexId parent = dfs.back().v;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
        if (lowlink[v] == index[v]) {
          // v is the root of an SCC; pop it off the component stack.
          for (;;) {
            VertexId w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[w] = 0;
            label[w] = next_scc;
            if (w == v) break;
          }
          ++next_scc;
        }
      }
    }
  }
  if (stats) {
    stats->add_edges(edges_scanned);
    stats->add_visits(n);
    stats->end_round(n);
  }
  return label;
}

std::vector<VertexId> normalize_scc_labels(std::span<const SccLabel> labels) {
  std::size_t n = labels.size();
  // min vertex per label value, via a sorted pass over (label, vertex).
  std::vector<std::pair<SccLabel, VertexId>> pairs(n);
  parallel_for(0, n, [&](std::size_t v) {
    pairs[v] = {labels[v], static_cast<VertexId>(v)};
  });
  sort_inplace(std::span<std::pair<SccLabel, VertexId>>(pairs));
  // pairs now grouped by label with the min vertex first in each group.
  VertexId current_rep = 0;
  // Sequential sweep (n small relative to the graph work; keeps it simple).
  std::vector<VertexId> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 0 || pairs[i].first != pairs[i - 1].first) {
      current_rep = pairs[i].second;
    }
    out[pairs[i].second] = current_rep;
  }
  return out;
}

}  // namespace pasgal
