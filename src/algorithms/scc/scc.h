// Strongly connected components (§2.1 — the paper's worked example).
//
// All variants return a label per vertex; two vertices get equal labels iff
// they are in the same SCC. Label values are algorithm-specific; use
// normalize_scc_labels for cross-algorithm comparison.
//
//  * tarjan_scc    — the sequential baseline: Tarjan's algorithm (iterative,
//                    explicit stack; safe on million-vertex chains).
//  * pasgal_scc    — this paper: trimming + randomized batched pivots, with
//                    reachability searches run as VGC local searches over
//                    hash-bag frontiers (plus dense pull rounds when the
//                    frontier is huge).
//  * gbbs_scc      — identical framework, but reachability in strict
//                    BFS order (tau = 1): the baseline whose O(D)-round
//                    synchronization cost the paper measures.
//  * multistep_scc — Slota et al. (IPDPS'14): trim, FW-BW for the giant SCC,
//                    coloring for the rest, sequential cleanup.
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"
#include "pasgal/vgc.h"

namespace pasgal {

using SccLabel = std::uint64_t;

std::vector<SccLabel> tarjan_scc(const Graph& g, RunStats* stats = nullptr);

struct SccParams {
  VgcParams vgc;
  // Dense (pull) reachability rounds when frontier work > m/den.
  EdgeId dense_threshold_den = 20;
  bool use_dense = true;
  // Batch growth: round r uses ~beta^r pivots.
  double beta = 2.0;
  std::uint64_t seed = 42;
};

std::vector<SccLabel> pasgal_scc(const Graph& g, const Graph& gt,
                                 SccParams params = {},
                                 RunStats* stats = nullptr);

std::vector<SccLabel> gbbs_scc(const Graph& g, const Graph& gt,
                               SccParams params = {}, RunStats* stats = nullptr);

struct MultistepParams {
  // Switch to sequential Tarjan when this many vertices remain.
  std::size_t sequential_cutoff = 1000;
};
std::vector<SccLabel> multistep_scc(const Graph& g, const Graph& gt,
                                    MultistepParams params = {},
                                    RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
// The SCC family reads vgc/dense/scc_beta/scc_seed/multistep_cutoff from the
// options.
RunReport<std::vector<SccLabel>> tarjan_scc(const Graph& g,
                                            const AlgoOptions& opt);
RunReport<std::vector<SccLabel>> pasgal_scc(const Graph& g, const Graph& gt,
                                            const AlgoOptions& opt);
RunReport<std::vector<SccLabel>> gbbs_scc(const Graph& g, const Graph& gt,
                                          const AlgoOptions& opt);
RunReport<std::vector<SccLabel>> multistep_scc(const Graph& g, const Graph& gt,
                                               const AlgoOptions& opt);

// Rewrites labels so each SCC is named by its smallest vertex id; makes
// outputs of different algorithms directly comparable.
std::vector<VertexId> normalize_scc_labels(std::span<const SccLabel> labels);

}  // namespace pasgal
