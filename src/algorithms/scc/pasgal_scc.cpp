#include <atomic>

#include "algorithms/cc/cc.h"
#include "algorithms/scc/reach.h"
#include "algorithms/scc/scc.h"
#include "parlay/hash_rng.h"
#include "parlay/sort.h"

namespace pasgal {

namespace {

constexpr SccLabel kUnassigned = static_cast<SccLabel>(-1);

// Label scheme: every identifier derives from a vertex id p that is used
// exactly once (as a trimmed singleton or as a pivot), so values never
// collide across rounds:
//   final SCC label  : 4p      (p = pivot / trimmed vertex)
//   subproblem ids   : 4p+1 (reaches pivot's FW side only),
//                      4p+2 (BW only), 4p+3 (neither).
SccLabel scc_label_of(VertexId p) { return 4 * static_cast<SccLabel>(p); }

}  // namespace

// The BGSS-style randomized SCC framework (Wang et al., PPoPP'23 as used by
// PASGAL): trim, then rounds of batched pivots with forward/backward
// reachability; each reachability search uses VGC + hash bags (pasgal_scc)
// or strict frontier order (gbbs_scc via tau=1).
std::vector<SccLabel> pasgal_scc(const Graph& g, const Graph& gt,
                                 SccParams params, RunStats* stats) {
  std::size_t n = g.num_vertices();
  std::vector<std::atomic<SccLabel>> label(n);
  parallel_for(0, n, [&](std::size_t i) {
    label[i].store(kUnassigned, std::memory_order_relaxed);
  });
  auto live = [&](VertexId v) {
    return label[v].load(std::memory_order_relaxed) == kUnassigned;
  };

  // --- Trim: vertices with no live in- or out-neighbour are singleton SCCs.
  // One pass (as in Multistep/GBBS); repeated trimming would itself need
  // O(D) rounds on chain-like graphs.
  if (stats) stats->phase_begin("trim");
  parallel_for(0, n, [&](std::size_t vi) {
    VertexId v = static_cast<VertexId>(vi);
    bool has_in = false, has_out = false;
    for (VertexId u : g.neighbors(v)) {
      if (u != v) {
        has_out = true;
        break;
      }
    }
    for (VertexId u : gt.neighbors(v)) {
      if (u != v) {
        has_in = true;
        break;
      }
    }
    if (!has_in || !has_out) {
      label[v].store(scc_label_of(v), std::memory_order_relaxed);
    }
  });
  if (stats) stats->end_round(n);

  // --- Randomized pivot order.
  if (stats) stats->phase_begin("partition");
  Random rng(params.seed);
  auto perm = tabulate(n, [](std::size_t i) { return static_cast<VertexId>(i); });
  integer_sort_inplace(
      std::span<VertexId>(perm),
      [&](VertexId v) {
        return static_cast<std::uint32_t>(rng.ith_rand(v));
      },
      32);

  // Pre-partition by weak connectivity: SCCs never span weak components, so
  // seeding the subproblem ids with the component representative lets every
  // component elect pivots independently from round one (instead of burning
  // batch rounds while one global subproblem splits). The 4r+3 encoding is
  // the same "neither side of the pivot" id that r itself would produce,
  // so uniqueness of labels is preserved.
  ConnectivityResult weak = connected_components(g);
  std::vector<std::uint64_t> sub(n);
  parallel_for(0, n, [&](std::size_t v) {
    sub[v] = 4 * static_cast<std::uint64_t>(weak.label[v]) + 3;
  });
  // Per-subproblem pivot election, tagged by round to ignore stale slots.
  std::vector<std::atomic<std::uint64_t>> cand(4 * n + 4);
  std::vector<std::atomic<std::uint32_t>> tag(4 * n + 4);
  parallel_for(0, cand.size(), [&](std::size_t i) {
    cand[i].store(~0ULL, std::memory_order_relaxed);
    tag[i].store(~0U, std::memory_order_relaxed);
  });

  std::vector<std::atomic<std::uint8_t>> fw(n), bw(n);
  internal::ReachParams reach_params{params.vgc, params.dense_threshold_den,
                                     params.use_dense};

  // Worklist in permutation order. Batch members that stay live (their
  // subproblem had a different pivot and they landed outside fw∩bw) are
  // retried at the front of the next, exponentially larger batch; every
  // round assigns at least its pivots, so the loop terminates.
  std::vector<VertexId> pending = perm;
  std::size_t batch_size = 1;
  std::uint32_t round = 0;
  if (stats) stats->phase_begin("pivot_rounds");
  while (!pending.empty()) {
    std::size_t take = std::min(pending.size(), batch_size);
    batch_size = static_cast<std::size_t>(
        static_cast<double>(batch_size) * params.beta) + 1;
    ++round;

    // Batch = still-live vertices among the first `take` pending entries.
    auto batch = pack_indexed<VertexId>(
        take, [&](std::size_t i) { return live(pending[i]); },
        [&](std::size_t i) { return pending[i]; });
    std::vector<VertexId> rest(pending.begin() + static_cast<std::ptrdiff_t>(take),
                               pending.end());
    if (batch.empty()) {
      pending = std::move(rest);
      continue;
    }

    // Elect one pivot per touched subproblem: the batch member with the
    // smallest permutation rank (encoded rank||vertex, min via CAS).
    parallel_for(0, batch.size(), [&](std::size_t i) {
      std::uint64_t s = sub[batch[i]];
      tag[s].store(round, std::memory_order_relaxed);
      cand[s].store(~0ULL, std::memory_order_relaxed);
    });
    parallel_for(0, batch.size(), [&](std::size_t i) {
      VertexId v = batch[i];
      std::uint64_t key =
          (static_cast<std::uint64_t>(
               static_cast<std::uint32_t>(rng.ith_rand(v)))
           << 32) |
          v;
      write_min(cand[sub[v]], key);
    });
    auto pivots = pack_indexed<VertexId>(
        batch.size(),
        [&](std::size_t i) {
          VertexId v = batch[i];
          return static_cast<VertexId>(
                     cand[sub[v]].load(std::memory_order_relaxed)) == v;
        },
        [&](std::size_t i) { return batch[i]; });

    // Forward and backward restricted reachability from the pivots.
    parallel_for(0, n, [&](std::size_t i) {
      fw[i].store(0, std::memory_order_relaxed);
      bw[i].store(0, std::memory_order_relaxed);
    });
    internal::multi_reach(g, gt, pivots, sub, live, fw, reach_params, stats);
    internal::multi_reach(gt, g, pivots, sub, live, bw, reach_params, stats);

    // Classify every live vertex of a pivoted subproblem.
    parallel_for(0, n, [&](std::size_t vi) {
      VertexId v = static_cast<VertexId>(vi);
      if (!live(v)) return;
      std::uint64_t s = sub[v];
      if (tag[s].load(std::memory_order_relaxed) != round) return;
      VertexId p = static_cast<VertexId>(cand[s].load(std::memory_order_relaxed));
      bool f = fw[v].load(std::memory_order_relaxed);
      bool b = bw[v].load(std::memory_order_relaxed);
      if (f && b) {
        label[v].store(scc_label_of(p), std::memory_order_relaxed);
      } else if (f) {
        sub[v] = 4 * static_cast<std::uint64_t>(p) + 1;
      } else if (b) {
        sub[v] = 4 * static_cast<std::uint64_t>(p) + 2;
      } else {
        sub[v] = 4 * static_cast<std::uint64_t>(p) + 3;
      }
    });

    // Retry surviving batch members ahead of the untouched tail.
    auto leftovers = filter(std::span<const VertexId>(batch),
                            [&](VertexId v) { return live(v); });
    leftovers.insert(leftovers.end(), rest.begin(), rest.end());
    pending = std::move(leftovers);
  }
  if (stats) stats->phase_end();

  return tabulate(n, [&](std::size_t v) {
    return label[v].load(std::memory_order_relaxed);
  });
}

std::vector<SccLabel> gbbs_scc(const Graph& g, const Graph& gt,
                               SccParams params, RunStats* stats) {
  // Same framework, reachability in strict one-hop frontier order: this is
  // the GBBS-style baseline whose round count scales with the diameter.
  params.vgc.tau = 1;
  return pasgal_scc(g, gt, params, stats);
}

}  // namespace pasgal
