#include <atomic>

#include "algorithms/scc/reach.h"
#include "algorithms/scc/scc.h"

namespace pasgal {

namespace {

constexpr SccLabel kUnassigned = static_cast<SccLabel>(-1);
SccLabel scc_label_of(VertexId p) { return 4 * static_cast<SccLabel>(p); }

}  // namespace

// Multistep SCC (Slota, Rajamanickam, Madduri; IPDPS'14):
//   1. trim trivial SCCs,
//   2. FW-BW from a max-degree-product pivot extracts the giant SCC,
//   3. coloring (max-label propagation, then backward reach per color root)
//      peels the remaining medium components,
//   4. sequential Tarjan cleans up the tail.
// The paper tables this as the baseline that cannot handle >32-bit edge ids
// and degrades on large-diameter inputs — the coloring propagation needs
// O(D) synchronized rounds, which our instrumentation exposes.
std::vector<SccLabel> multistep_scc(const Graph& g, const Graph& gt,
                                    MultistepParams params, RunStats* stats) {
  std::size_t n = g.num_vertices();
  if (n == 0) return {};
  std::vector<std::atomic<SccLabel>> label(n);
  parallel_for(0, n, [&](std::size_t i) {
    label[i].store(kUnassigned, std::memory_order_relaxed);
  });
  auto live = [&](VertexId v) {
    return label[v].load(std::memory_order_relaxed) == kUnassigned;
  };

  // --- 1. Trim.
  parallel_for(0, n, [&](std::size_t vi) {
    VertexId v = static_cast<VertexId>(vi);
    bool has_out = false, has_in = false;
    for (VertexId u : g.neighbors(v)) {
      if (u != v) {
        has_out = true;
        break;
      }
    }
    for (VertexId u : gt.neighbors(v)) {
      if (u != v) {
        has_in = true;
        break;
      }
    }
    if (!has_in || !has_out) {
      label[v].store(scc_label_of(v), std::memory_order_relaxed);
    }
  });
  if (stats) stats->end_round(n);

  std::vector<std::uint64_t> no_sub(n, 0);
  internal::ReachParams reach_params;  // frontier-order reach, dense-capable
  reach_params.vgc.tau = 1;

  // --- 2. FW-BW around the heaviest pivot.
  VertexId pivot = kInvalidVertex;
  std::uint64_t best_product = 0;
  for (VertexId v = 0; v < n; ++v) {
    if (!live(v)) continue;
    std::uint64_t prod = static_cast<std::uint64_t>(g.out_degree(v)) *
                         static_cast<std::uint64_t>(gt.out_degree(v));
    if (pivot == kInvalidVertex || prod > best_product) {
      pivot = v;
      best_product = prod;
    }
  }
  if (pivot != kInvalidVertex) {
    std::vector<std::atomic<std::uint8_t>> fw(n), bw(n);
    parallel_for(0, n, [&](std::size_t i) {
      fw[i].store(0, std::memory_order_relaxed);
      bw[i].store(0, std::memory_order_relaxed);
    });
    internal::multi_reach(g, gt, {pivot}, no_sub, live, fw, reach_params, stats);
    auto live_in_fw = [&](VertexId v) {
      return live(v) && fw[v].load(std::memory_order_relaxed);
    };
    internal::multi_reach(gt, g, {pivot}, no_sub, live_in_fw, bw, reach_params,
                          stats);
    parallel_for(0, n, [&](std::size_t vi) {
      VertexId v = static_cast<VertexId>(vi);
      if (live(v) && fw[v].load(std::memory_order_relaxed) &&
          bw[v].load(std::memory_order_relaxed)) {
        label[v].store(scc_label_of(pivot), std::memory_order_relaxed);
      }
    });
  }

  // --- 3. Coloring rounds for the mid-sized components.
  auto live_count = [&] {
    return count_if_index(n, [&](std::size_t v) {
      return live(static_cast<VertexId>(v));
    });
  };
  std::size_t remaining = live_count();
  while (remaining > params.sequential_cutoff) {
    std::vector<std::atomic<std::uint64_t>> color(n);
    parallel_for(0, n, [&](std::size_t v) {
      color[v].store(v, std::memory_order_relaxed);
    });
    // Max-label propagation along live edges to a fixpoint: O(D') rounds.
    std::atomic<bool> changed{true};
    while (changed.load(std::memory_order_relaxed)) {
      changed.store(false, std::memory_order_relaxed);
      parallel_for(0, n, [&](std::size_t ui) {
        VertexId u = static_cast<VertexId>(ui);
        if (!live(u)) return;
        std::uint64_t cu = color[u].load(std::memory_order_relaxed);
        for (VertexId v : g.neighbors(u)) {
          if (!live(v)) continue;
          if (write_max(color[v], cu)) changed.store(true, std::memory_order_relaxed);
        }
      });
      if (stats) {
        stats->add_edges(g.num_edges());
        stats->end_round(remaining);
      }
    }
    // Roots keep their own color; each root's SCC = backward reach inside
    // its color class.
    std::vector<std::uint64_t> color_plain(n);
    parallel_for(0, n, [&](std::size_t v) {
      color_plain[v] = color[v].load(std::memory_order_relaxed);
    });
    auto roots = pack_indexed<VertexId>(
        n,
        [&](std::size_t v) {
          return live(static_cast<VertexId>(v)) && color_plain[v] == v;
        },
        [&](std::size_t v) { return static_cast<VertexId>(v); });
    std::vector<std::atomic<std::uint8_t>> bw(n);
    parallel_for(0, n, [&](std::size_t i) {
      bw[i].store(0, std::memory_order_relaxed);
    });
    internal::multi_reach(gt, g, roots, color_plain, live, bw, reach_params,
                          stats);
    parallel_for(0, n, [&](std::size_t vi) {
      VertexId v = static_cast<VertexId>(vi);
      if (live(v) && bw[v].load(std::memory_order_relaxed)) {
        label[v].store(scc_label_of(static_cast<VertexId>(color_plain[v])),
                       std::memory_order_relaxed);
      }
    });
    remaining = live_count();
  }

  // --- 4. Sequential Tarjan on the induced remainder.
  if (remaining > 0) {
    auto live_vertices = pack_indexed<VertexId>(
        n, [&](std::size_t v) { return live(static_cast<VertexId>(v)); },
        [&](std::size_t v) { return static_cast<VertexId>(v); });
    std::vector<VertexId> dense_id(n, kInvalidVertex);
    parallel_for(0, live_vertices.size(), [&](std::size_t i) {
      dense_id[live_vertices[i]] = static_cast<VertexId>(i);
    });
    std::vector<Edge> sub_edges;
    for (VertexId u : live_vertices) {
      for (VertexId v : g.neighbors(u)) {
        if (dense_id[v] != kInvalidVertex) {
          sub_edges.push_back(Edge{dense_id[u], dense_id[v]});
        }
      }
    }
    Graph sub = Graph::from_edges(live_vertices.size(), sub_edges);
    auto sub_labels = tarjan_scc(sub, stats);
    // Name each remainder SCC by one of its members (unique: those vertices
    // were never pivots or trim singletons).
    std::vector<VertexId> rep(live_vertices.size(), kInvalidVertex);
    for (std::size_t i = 0; i < live_vertices.size(); ++i) {
      auto scc = static_cast<std::size_t>(sub_labels[i]);
      if (rep[scc] == kInvalidVertex) rep[scc] = live_vertices[i];
    }
    for (std::size_t i = 0; i < live_vertices.size(); ++i) {
      label[live_vertices[i]].store(
          scc_label_of(rep[static_cast<std::size_t>(sub_labels[i])]),
          std::memory_order_relaxed);
    }
  }

  return tabulate(n, [&](std::size_t v) {
    return label[v].load(std::memory_order_relaxed);
  });
}

}  // namespace pasgal
