// Modern AlgoOptions/RunReport entry points for every algorithm family.
//
// Each wrapper assembles the family's legacy parameter struct from the
// shared AlgoOptions and routes the run through run_traced(), which owns the
// tracer plumbing and the wall-clock/telemetry bookkeeping. The legacy
// `(..., Params, RunStats*)` signatures remain the implementations.

#include "algorithms/bcc/bcc.h"
#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "algorithms/cc/ldd.h"
#include "algorithms/kcore/kcore.h"
#include "algorithms/pagerank/pagerank.h"
#include "algorithms/scc/scc.h"
#include "algorithms/sssp/sssp.h"
#include "algorithms/tc/tc.h"
#include <chrono>
#include <unordered_set>

#include "algorithms/toposort/toposort.h"
#include "pasgal/error.h"
#include "pasgal/options.h"

namespace pasgal {

// Every wrapper lazily validates its graph(s) before the timed run: the O(1)
// mmap open path defers per-element CSR checks, and this is the single choke
// point where all modern entry points pick them up (no-op after the first
// call on a given storage handle; see Graph::ensure_validated).
//
// Wrappers whose kernels random-access the CSR arrays also guard with
// ensure_no_delta: on a graph carrying a pending update overlay
// (graphs/delta.h) they would silently compute against the stale base.
// Only the edge_map-pure families (gbbs-bfs, pagerank) and the symmetrizing
// cc driver path (symmetrize() collapses the overlay) see overlays through.

namespace {

PasgalBfsParams bfs_params(const AlgoOptions& opt) {
  PasgalBfsParams p;
  p.vgc = opt.vgc;
  p.vgc_engage_factor = opt.vgc_engage_factor;
  p.dense_threshold_den = opt.dense_threshold_den;
  p.use_dense = opt.use_dense;
  p.cancel = opt.cancel;
  return p;
}

SccParams scc_params(const AlgoOptions& opt) {
  SccParams p;
  p.vgc = opt.vgc;
  p.dense_threshold_den = opt.dense_threshold_den;
  p.use_dense = opt.use_dense;
  p.beta = opt.scc_beta;
  p.seed = opt.scc_seed;
  return p;
}

SteppingParams stepping_params(const AlgoOptions& opt) {
  SteppingParams p;
  p.strategy = opt.sssp_delta_mode ? SteppingParams::Strategy::kDelta
                                   : SteppingParams::Strategy::kRho;
  p.delta = opt.sssp_delta;
  p.rho = opt.sssp_rho;
  p.vgc = opt.vgc;
  p.cancel = opt.cancel;
  return p;
}

}  // namespace

// --- batch source validation -------------------------------------------------

void check_batch_sources(std::span<const VertexId> sources, std::size_t n) {
  if (sources.empty()) {
    throw Error(ErrorCategory::kUsage, "batch source list is empty");
  }
  if (sources.size() > kMaxBatchSources) {
    throw Error(ErrorCategory::kUsage,
                "batch holds " + std::to_string(sources.size()) +
                    " sources; the bit-parallel kernels carry one source per "
                    "bit, max " +
                    std::to_string(kMaxBatchSources));
  }
  std::unordered_set<VertexId> seen;
  seen.reserve(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) {
    VertexId s = sources[i];
    if (static_cast<std::size_t>(s) >= n) {
      throw Error(ErrorCategory::kUsage,
                  "batch source " + std::to_string(s) + " (entry " +
                      std::to_string(i) + ") out of range for graph with " +
                      std::to_string(n) + " vertices");
    }
    if (!seen.insert(s).second) {
      throw Error(ErrorCategory::kUsage,
                  "duplicate batch source " + std::to_string(s) + " (entry " +
                      std::to_string(i) + ")");
    }
  }
}

// --- BFS ---------------------------------------------------------------------

RunReport<std::vector<std::uint32_t>> seq_bfs(const Graph& g,
                                              const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("seq-bfs");
  g.ensure_no_delta("seq-bfs");
  return run_traced(opt,
                    [&](Tracer* t) { return seq_bfs(g, opt.source, t); });
}

RunReport<std::vector<std::uint32_t>> gbbs_bfs(const Graph& g, const Graph& gt,
                                               const AlgoOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  return run_traced(opt, [&](Tracer* t) {
    return gbbs_bfs(g, gt, opt.source, t, opt.cancel);
  });
}

RunReport<std::vector<std::uint32_t>> gapbs_bfs(const Graph& g, const Graph& gt,
                                                const AlgoOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  gt.ensure_in_core("gapbs-bfs bottom-up");
  g.ensure_no_delta("gapbs-bfs");
  GapbsParams p{opt.gapbs_alpha, opt.gapbs_beta};
  return run_traced(
      opt, [&](Tracer* t) { return gapbs_bfs(g, gt, opt.source, p, t); });
}

RunReport<std::vector<std::uint32_t>> pasgal_bfs(const Graph& g,
                                                 const Graph& gt,
                                                 const AlgoOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  g.ensure_in_core("pasgal-bfs");
  gt.ensure_in_core("pasgal-bfs");
  g.ensure_no_delta("pasgal-bfs");
  PasgalBfsParams p = bfs_params(opt);
  return run_traced(
      opt, [&](Tracer* t) { return pasgal_bfs(g, gt, opt.source, p, t); });
}

BatchReport<std::vector<std::uint32_t>> ms_bfs(const Graph& g, const Graph& gt,
                                               const BatchOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  g.ensure_in_core("ms-bfs");
  g.ensure_no_delta("ms-bfs");
  check_batch_sources(opt.sources, g.num_vertices());
  MsBfsParams p;
  p.dense_threshold_den = opt.algo.dense_threshold_den;
  p.use_dense = opt.algo.use_dense;
  p.cancel = opt.algo.cancel;
  Tracer local;
  Tracer* tracer = opt.algo.tracer != nullptr ? opt.algo.tracer : &local;
  tracer->reset();
  auto start = std::chrono::steady_clock::now();
  auto dists = ms_bfs(g, gt, opt.sources, p, tracer);
  double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  BatchReport<std::vector<std::uint32_t>> report;
  report.seconds = seconds;
  report.telemetry = tracer->aggregate();
  report.per_source.resize(dists.size());
  // One shared sweep advanced every source; a slice's cost is its amortized
  // share of the batch wall (see BatchReport in options.h).
  double amortized = seconds / static_cast<double>(dists.size());
  for (std::size_t i = 0; i < dists.size(); ++i) {
    report.per_source[i].output = std::move(dists[i]);
    report.per_source[i].seconds = amortized;
  }
  return report;
}

// --- SSSP --------------------------------------------------------------------

RunReport<std::vector<Dist>> dijkstra(const WeightedGraph<std::uint32_t>& g,
                                      const AlgoOptions& opt) {
  g.ensure_validated();
  g.unweighted().ensure_in_core("dijkstra");
  return run_traced(opt,
                    [&](Tracer* t) { return dijkstra(g, opt.source, t); });
}

RunReport<std::vector<Dist>> bellman_ford(const WeightedGraph<std::uint32_t>& g,
                                          const AlgoOptions& opt) {
  g.ensure_validated();
  g.unweighted().ensure_in_core("bellman-ford (use -a em for sharded runs)");
  return run_traced(
      opt, [&](Tracer* t) { return bellman_ford(g, opt.source, t); });
}

RunReport<std::vector<Dist>> stepping_sssp(
    const WeightedGraph<std::uint32_t>& g, const AlgoOptions& opt) {
  g.ensure_validated();
  g.unweighted().ensure_in_core("stepping SSSP (use -a em for sharded runs)");
  SteppingParams p = stepping_params(opt);
  return run_traced(
      opt, [&](Tracer* t) { return stepping_sssp(g, opt.source, p, t); });
}

BatchReport<std::vector<Dist>> batch_sssp(const WeightedGraph<std::uint32_t>& g,
                                          const BatchOptions& opt) {
  g.ensure_validated();
  g.unweighted().ensure_in_core("batched SSSP");
  check_batch_sources(opt.sources, g.num_vertices());
  SteppingParams p = stepping_params(opt.algo);
  Tracer local;
  Tracer* tracer = opt.algo.tracer != nullptr ? opt.algo.tracer : &local;
  tracer->reset();
  BatchReport<std::vector<Dist>> report;
  report.per_source.resize(opt.sources.size());
  auto batch_start = std::chrono::steady_clock::now();
  // No bit-parallel kernel for weighted distances: run the stepping framework
  // once per source under the shared tracer (rounds accumulate monotonically,
  // so the batch telemetry validates like one long run) and the shared
  // CancelToken (expiry unwinds the whole batch with kTimeout).
  for (std::size_t i = 0; i < opt.sources.size(); ++i) {
    auto start = std::chrono::steady_clock::now();
    report.per_source[i].output = stepping_sssp(g, opt.sources[i], p, tracer);
    report.per_source[i].seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
  report.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - batch_start)
                       .count();
  report.telemetry = tracer->aggregate();
  return report;
}

// --- SCC ---------------------------------------------------------------------

RunReport<std::vector<SccLabel>> tarjan_scc(const Graph& g,
                                            const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("tarjan-scc");
  g.ensure_no_delta("tarjan-scc");
  return run_traced(opt, [&](Tracer* t) { return tarjan_scc(g, t); });
}

RunReport<std::vector<SccLabel>> pasgal_scc(const Graph& g, const Graph& gt,
                                            const AlgoOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  g.ensure_in_core("pasgal-scc");
  gt.ensure_in_core("pasgal-scc");
  g.ensure_no_delta("pasgal-scc");
  SccParams p = scc_params(opt);
  return run_traced(opt,
                    [&](Tracer* t) { return pasgal_scc(g, gt, p, t); });
}

RunReport<std::vector<SccLabel>> gbbs_scc(const Graph& g, const Graph& gt,
                                          const AlgoOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  g.ensure_in_core("gbbs-scc");
  gt.ensure_in_core("gbbs-scc");
  g.ensure_no_delta("gbbs-scc");
  SccParams p = scc_params(opt);
  return run_traced(opt, [&](Tracer* t) { return gbbs_scc(g, gt, p, t); });
}

RunReport<std::vector<SccLabel>> multistep_scc(const Graph& g, const Graph& gt,
                                               const AlgoOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  g.ensure_in_core("multistep-scc");
  gt.ensure_in_core("multistep-scc");
  g.ensure_no_delta("multistep-scc");
  MultistepParams p{opt.multistep_cutoff};
  return run_traced(opt,
                    [&](Tracer* t) { return multistep_scc(g, gt, p, t); });
}

// --- BCC ---------------------------------------------------------------------

RunReport<BccResult> hopcroft_tarjan_bcc(const Graph& g,
                                         const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("hopcroft-tarjan-bcc");
  g.ensure_no_delta("hopcroft-tarjan-bcc");
  return run_traced(opt, [&](Tracer* t) { return hopcroft_tarjan_bcc(g, t); });
}

RunReport<BccResult> fast_bcc(const Graph& g, const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("fast-bcc");
  g.ensure_no_delta("fast-bcc");
  return run_traced(opt, [&](Tracer* t) { return fast_bcc(g, t); });
}

RunReport<BccResult> tarjan_vishkin_bcc(const Graph& g,
                                        const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("tarjan-vishkin-bcc");
  g.ensure_no_delta("tarjan-vishkin-bcc");
  return run_traced(opt, [&](Tracer* t) { return tarjan_vishkin_bcc(g, t); });
}

RunReport<BccResult> gbbs_bcc(const Graph& g, const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("gbbs-bcc");
  g.ensure_no_delta("gbbs-bcc");
  return run_traced(opt, [&](Tracer* t) { return gbbs_bcc(g, t); });
}

// --- CC ----------------------------------------------------------------------

RunReport<ConnectivityResult> connected_components(const Graph& g,
                                                   const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("connected-components");
  g.ensure_no_delta("connected-components");
  return run_traced(opt, [&](Tracer* t) { return connected_components(g, t); });
}

RunReport<std::vector<VertexId>> label_prop_cc(const Graph& g,
                                               const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("label-prop-cc");
  g.ensure_no_delta("label-prop-cc");
  return run_traced(opt, [&](Tracer* t) { return label_prop_cc(g, t); });
}

RunReport<std::vector<VertexId>> ldd_cc(const Graph& g,
                                        const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("ldd-cc");
  g.ensure_no_delta("ldd-cc");
  return run_traced(opt, [&](Tracer* t) {
    return ldd_cc(g, opt.scc_beta, opt.scc_seed, t);
  });
}

// --- k-core ------------------------------------------------------------------

RunReport<std::vector<std::uint32_t>> seq_kcore(const Graph& g,
                                                const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("seq-kcore");
  g.ensure_no_delta("seq-kcore");
  return run_traced(opt, [&](Tracer* t) { return seq_kcore(g, t); });
}

RunReport<std::vector<std::uint32_t>> pasgal_kcore(const Graph& g,
                                                   const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("pasgal-kcore");
  g.ensure_no_delta("pasgal-kcore");
  KcoreParams p{opt.vgc};
  return run_traced(opt, [&](Tracer* t) { return pasgal_kcore(g, p, t); });
}

// --- PageRank ----------------------------------------------------------------

namespace {

PagerankParams pagerank_params(const AlgoOptions& opt) {
  PagerankParams p;
  p.max_iterations = opt.pagerank_iterations;
  p.epsilon = opt.pagerank_epsilon;
  p.damping = opt.pagerank_damping;
  p.cancel = opt.cancel;
  return p;
}

}  // namespace

RunReport<PagerankResult> seq_pagerank(const Graph& g, const Graph& gt,
                                       const AlgoOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  gt.ensure_in_core("seq-pagerank (use -a pasgal for sharded runs)");
  PagerankParams p = pagerank_params(opt);
  return run_traced(opt,
                    [&](Tracer* t) { return seq_pagerank(g, gt, p, t); });
}

RunReport<PagerankResult> pasgal_pagerank(const Graph& g, const Graph& gt,
                                          const AlgoOptions& opt) {
  // No ensure_in_core: the dense pull runs shard-at-a-time through gt's
  // window (out-degrees come from g's always-resident offsets array).
  g.ensure_validated();
  gt.ensure_validated();
  PagerankParams p = pagerank_params(opt);
  return run_traced(opt,
                    [&](Tracer* t) { return pasgal_pagerank(g, gt, p, t); });
}

// --- triangle counting -------------------------------------------------------

RunReport<std::uint64_t> seq_tc(const Graph& g, const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("seq-tc");
  g.ensure_no_delta("seq-tc");
  return run_traced(opt, [&](Tracer* t) { return seq_tc(g, t); });
}

RunReport<std::uint64_t> pasgal_tc(const Graph& g, const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("pasgal-tc");
  g.ensure_no_delta("pasgal-tc");
  TcParams p;
  p.cancel = opt.cancel;
  return run_traced(opt, [&](Tracer* t) { return pasgal_tc(g, p, t); });
}

// --- toposort ----------------------------------------------------------------

RunReport<std::vector<std::uint32_t>> seq_toposort(const Graph& g,
                                                   const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("seq-toposort");
  g.ensure_no_delta("seq-toposort");
  return run_traced(opt, [&](Tracer* t) {
    std::vector<std::uint32_t> levels;
    seq_toposort(g, levels, t).throw_if_error();
    return levels;
  });
}

RunReport<std::vector<std::uint32_t>> pasgal_toposort(const Graph& g,
                                                      const AlgoOptions& opt) {
  g.ensure_validated();
  g.ensure_in_core("pasgal-toposort");
  g.ensure_no_delta("pasgal-toposort");
  ToposortParams p{opt.vgc};
  return run_traced(opt, [&](Tracer* t) {
    std::vector<std::uint32_t> levels;
    pasgal_toposort(g, levels, p, t).throw_if_error();
    return levels;
  });
}

}  // namespace pasgal
