// k-core decomposition (coreness) — the first of the paper's stated
// extension targets ("we believe the techniques in current PASGAL can be
// extended to more problems, including k-core and other peeling
// algorithms").
//
// The coreness of v is the largest k such that v belongs to a subgraph of
// minimum degree k. Input must be symmetrized (undirected), as for BCC.
//
//  * seq_kcore    — Batagelj-Zaversnik bucket peeling, O(n + m), the
//                   sequential baseline.
//  * pasgal_kcore — parallel peeling over hash-bag buckets with VGC:
//                   peeling one vertex may drop a neighbour into the current
//                   bucket, and the local search keeps peeling such chains
//                   in-task (up to tau vertices) instead of paying a global
//                   round per peeling wave — the same large-diameter
//                   pathology BFS has, since peeling chains can be O(n) long
//                   (e.g. a path peels end-in, one wave per round).
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"
#include "pasgal/vgc.h"

namespace pasgal {

std::vector<std::uint32_t> seq_kcore(const Graph& g, RunStats* stats = nullptr);

struct KcoreParams {
  VgcParams vgc;  // tau = 1 disables in-task peeling chains
};

std::vector<std::uint32_t> pasgal_kcore(const Graph& g, KcoreParams params = {},
                                        RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
RunReport<std::vector<std::uint32_t>> seq_kcore(const Graph& g,
                                                const AlgoOptions& opt);
RunReport<std::vector<std::uint32_t>> pasgal_kcore(const Graph& g,
                                                   const AlgoOptions& opt);

}  // namespace pasgal
