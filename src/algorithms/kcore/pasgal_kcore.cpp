#include <atomic>
#include <memory>

#include "algorithms/kcore/kcore.h"
#include "pasgal/hashbag.h"

namespace pasgal {

namespace {

// Entries carry the degree the vertex had when (re)inserted; an entry is
// stale if the degree has since changed (the vertex has a fresher entry in a
// lower bucket) or the vertex is already peeled.
std::uint64_t encode(VertexId v, std::uint32_t d) {
  return (static_cast<std::uint64_t>(d) << 32) | v;
}
VertexId entry_vertex(std::uint64_t e) { return static_cast<VertexId>(e); }
std::uint32_t entry_deg(std::uint64_t e) {
  return static_cast<std::uint32_t>(e >> 32);
}

constexpr std::size_t kWindow = 64;  // open buckets [base, base + kWindow)

}  // namespace

// Parallel coreness by bucketed peeling (Julienne-style buckets built from
// hash bags) with VGC: peeling v may drop a neighbour u to the current
// level k; the peeling task then claims and peels u in-task (up to tau
// vertices), collapsing O(length)-round peeling chains into one round.
std::vector<std::uint32_t> pasgal_kcore(const Graph& g, KcoreParams params,
                                        RunStats* stats) {
  // degree[u].fetch_sub below indexes unchecked neighbour ids; an
  // un-deep-validated mmap open must fail typed, not corrupt the buckets.
  g.ensure_validated();
  std::size_t n = g.num_vertices();
  std::vector<std::atomic<std::uint32_t>> degree(n);
  std::vector<std::atomic<std::uint8_t>> peeled(n);
  parallel_for(0, n, [&](std::size_t v) {
    degree[v].store(static_cast<std::uint32_t>(g.out_degree(static_cast<VertexId>(v))),
                    std::memory_order_relaxed);
    peeled[v].store(0, std::memory_order_relaxed);
  });

  std::vector<std::unique_ptr<HashBag<std::uint64_t>>> buckets;
  for (std::size_t b = 0; b <= kWindow; ++b) {  // last = overflow
    buckets.push_back(std::make_unique<HashBag<std::uint64_t>>(8));
    if (stats) buckets.back()->attach_tracer(stats);
  }
  std::uint32_t base = 0;
  auto bucket_of = [&](std::uint32_t d) {
    return d < base + kWindow ? static_cast<std::size_t>(d - base) : kWindow;
  };
  parallel_for(0, n, [&](std::size_t v) {
    buckets[bucket_of(degree[v].load(std::memory_order_relaxed))]->insert(
        encode(static_cast<VertexId>(v),
               degree[v].load(std::memory_order_relaxed)));
  });

  std::vector<std::uint32_t> core(n, 0);
  std::atomic<std::uint64_t> total_peeled{0};
  std::size_t remaining = n;
  std::uint32_t k = 0;

  auto try_claim = [&](VertexId v) {
    std::uint8_t expected = 0;
    return peeled[v].compare_exchange_strong(expected, 1,
                                             std::memory_order_relaxed);
  };

  HashBag<std::uint64_t> wave_bag(8);
  if (stats) wave_bag.attach_tracer(stats);
  while (remaining > 0) {
    // Advance the window when the current level leaves it.
    if (k >= base + kWindow) {
      base = k;
      auto overflow = buckets[kWindow]->extract_all();
      parallel_for(0, overflow.size(), [&](std::size_t i) {
        std::uint64_t e = overflow[i];
        VertexId v = entry_vertex(e);
        if (peeled[v].load(std::memory_order_relaxed)) return;
        std::uint32_t d = degree[v].load(std::memory_order_relaxed);
        if (entry_deg(e) != d) return;  // a fresher entry exists
        buckets[bucket_of(d)]->insert(encode(v, d));
      });
    }
    std::size_t bucket_index = bucket_of(k);
    if (buckets[bucket_index]->empty()) {
      ++k;
      continue;
    }
    auto entries = buckets[bucket_index]->extract_all();
    // Valid = not peeled, degree matches the entry, and degree <= k (a
    // vertex whose degree dropped below the bucket it sits in is handled by
    // its fresher entry in a lower bucket; <= k entries peel now).
    auto ready = filter(std::span<const std::uint64_t>(entries),
                        [&](std::uint64_t e) {
                          VertexId v = entry_vertex(e);
                          return !peeled[v].load(std::memory_order_relaxed) &&
                                 degree[v].load(std::memory_order_relaxed) ==
                                     entry_deg(e) &&
                                 entry_deg(e) <= k;
                        });
    if (ready.empty()) {
      ++k;
      continue;
    }
    if (stats) {
      stats->end_round(ready.size(), params.vgc.tau > 1 ? RoundKind::kLocal
                                                        : RoundKind::kSparse);
    }

    // Peel the wave; VGC keeps chains in-task.
    parallel_for(
        0, ready.size(),
        [&](std::size_t i) {
          VertexId root = entry_vertex(ready[i]);
          if (!try_claim(root)) return;
          std::vector<VertexId> stack = {root};
          std::uint64_t peeled_in_task = 0;
          std::uint64_t edges = 0;
          while (!stack.empty()) {
            VertexId v = stack.back();
            stack.pop_back();
            ++peeled_in_task;
            core[v] = k;
            for (VertexId u : g.neighbors(v)) {
              ++edges;
              if (peeled[u].load(std::memory_order_relaxed)) continue;
              std::uint32_t d =
                  degree[u].fetch_sub(1, std::memory_order_relaxed) - 1;
              if (d <= k) {
                // u falls into the current level.
                if (peeled_in_task < params.vgc.tau &&
                    stack.size() < params.vgc.local_stack_cap) {
                  if (try_claim(u)) stack.push_back(u);
                } else {
                  wave_bag.insert(encode(u, d));
                }
              } else {
                buckets[bucket_of(d)]->insert(encode(u, d));
              }
            }
          }
          total_peeled.fetch_add(peeled_in_task, std::memory_order_relaxed);
          if (stats) {
            stats->add_edges(edges);
            stats->add_visits(peeled_in_task);
            stats->add_local_depth(peeled_in_task);
          }
        },
        1);
    // Queue the spillover at the same level.
    auto spill = wave_bag.extract_all();
    parallel_for(0, spill.size(), [&](std::size_t i) {
      std::uint64_t e = spill[i];
      VertexId v = entry_vertex(e);
      if (peeled[v].load(std::memory_order_relaxed)) return;
      std::uint32_t d = degree[v].load(std::memory_order_relaxed);
      buckets[bucket_of(std::max(d, k))]->insert(encode(v, d));
    });
    remaining = n - static_cast<std::size_t>(
                        total_peeled.load(std::memory_order_relaxed));
  }
  return core;
}

}  // namespace pasgal
