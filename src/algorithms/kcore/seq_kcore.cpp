#include "algorithms/kcore/kcore.h"

namespace pasgal {

// Batagelj-Zaversnik bucket peeling: vertices sorted by current degree in a
// bucket array; repeatedly remove a minimum-degree vertex, assign its
// coreness, and decrement its unpeeled neighbours (moving them down one
// bucket). O(n + m), the standard sequential baseline.
std::vector<std::uint32_t> seq_kcore(const Graph& g, RunStats* stats) {
  g.ensure_validated();  // degree[u] bucket moves index unchecked targets
  std::size_t n = g.num_vertices();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t max_degree = 0;
  for (VertexId v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(g.out_degree(v));
    max_degree = std::max(max_degree, degree[v]);
  }

  // Counting sort by degree.
  std::vector<std::size_t> bucket_start(max_degree + 2, 0);
  for (VertexId v = 0; v < n; ++v) ++bucket_start[degree[v] + 1];
  for (std::size_t d = 1; d < bucket_start.size(); ++d) {
    bucket_start[d] += bucket_start[d - 1];
  }
  std::vector<VertexId> order(n);        // vertices sorted by current degree
  std::vector<std::size_t> position(n);  // index of v within `order`
  {
    auto cursor = bucket_start;
    for (VertexId v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      order[position[v]] = v;
      ++cursor[degree[v]];
    }
  }

  std::vector<std::uint32_t> core(n, 0);
  std::uint64_t edges = 0;
  for (std::size_t i = 0; i < n; ++i) {
    VertexId v = order[i];
    core[v] = degree[v];
    for (VertexId u : g.neighbors(v)) {
      ++edges;
      if (degree[u] <= degree[v]) continue;  // already peeled or same bucket
      // Move u one bucket down: swap it with the first vertex of its bucket.
      std::size_t u_pos = position[u];
      std::size_t bucket_first = bucket_start[degree[u]];
      VertexId w = order[bucket_first];
      if (u != w) {
        std::swap(order[u_pos], order[bucket_first]);
        position[u] = bucket_first;
        position[w] = u_pos;
      }
      ++bucket_start[degree[u]];
      --degree[u];
    }
  }
  if (stats) {
    stats->add_edges(edges);
    stats->add_visits(n);
    stats->end_round(n);
  }
  return core;
}

}  // namespace pasgal
