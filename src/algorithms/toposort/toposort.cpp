#include "algorithms/toposort/toposort.h"

#include <atomic>
#include <queue>

#include "parlay/sort.h"
#include "pasgal/hashbag.h"

namespace pasgal {

namespace {

Status cycle_status(std::size_t unfinished, std::size_t n) {
  return Status::Failure(
      ErrorCategory::kValidation,
      "graph is not a DAG: " + std::to_string(unfinished) + " of " +
          std::to_string(n) + " vertices are stuck on cycles");
}

}  // namespace

Status seq_toposort(const Graph& g, std::vector<std::uint32_t>& levels,
                    RunStats* stats) {
  levels.clear();
  std::size_t n = g.num_vertices();
  Graph gt = g.transpose();
  std::vector<std::uint32_t> indeg(n), level(n, 0);
  std::queue<VertexId> queue;
  for (VertexId v = 0; v < n; ++v) {
    indeg[v] = static_cast<std::uint32_t>(gt.out_degree(v));
    if (indeg[v] == 0) queue.push(v);
  }
  std::size_t done = 0;
  std::uint64_t edges = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    ++done;
    for (VertexId v : g.neighbors(u)) {
      ++edges;
      level[v] = std::max(level[v], level[u] + 1);
      if (--indeg[v] == 0) queue.push(v);
    }
  }
  if (stats) {
    stats->add_edges(edges);
    stats->add_visits(done);
    stats->end_round(done);
  }
  if (done != n) return cycle_status(n - done, n);
  levels = std::move(level);
  return Status::Ok();
}

// Parallel Kahn peeling. Levels are computed as longest-path depths via
// atomic write_max; a vertex is finished (and its successors decremented)
// exactly once, when its in-degree counter hits zero — by then all
// predecessors have contributed their level, so level[v] is final.
Status pasgal_toposort(const Graph& g, std::vector<std::uint32_t>& levels,
                       ToposortParams params, RunStats* stats) {
  levels.clear();
  std::size_t n = g.num_vertices();
  Graph gt = g.transpose();
  std::vector<std::atomic<std::uint32_t>> indeg(n), level(n);
  parallel_for(0, n, [&](std::size_t v) {
    indeg[v].store(static_cast<std::uint32_t>(gt.out_degree(static_cast<VertexId>(v))),
                   std::memory_order_relaxed);
    level[v].store(0, std::memory_order_relaxed);
  });

  auto roots = pack_indexed<VertexId>(
      n,
      [&](std::size_t v) { return indeg[v].load(std::memory_order_relaxed) == 0; },
      [&](std::size_t v) { return static_cast<VertexId>(v); });

  std::atomic<std::uint64_t> finished{0};
  HashBag<VertexId> bag(8);
  if (stats) bag.attach_tracer(stats);
  std::vector<VertexId> frontier = std::move(roots);
  while (!frontier.empty()) {
    if (stats) {
      stats->end_round(frontier.size(), params.vgc.tau > 1
                                            ? RoundKind::kLocal
                                            : RoundKind::kSparse);
    }
    parallel_for(
        0, frontier.size(),
        [&](std::size_t i) {
          std::vector<VertexId> stack = {frontier[i]};
          std::uint64_t processed = 0;
          std::uint64_t edges = 0;
          while (!stack.empty()) {
            VertexId u = stack.back();
            stack.pop_back();
            ++processed;
            std::uint32_t lu = level[u].load(std::memory_order_relaxed);
            for (VertexId v : g.neighbors(u)) {
              ++edges;
              write_max(level[v], lu + 1);
              if (indeg[v].fetch_sub(1, std::memory_order_acq_rel) - 1 == 0) {
                if (processed < params.vgc.tau &&
                    stack.size() < params.vgc.local_stack_cap) {
                  stack.push_back(v);
                } else {
                  bag.insert(v);
                }
              }
            }
          }
          finished.fetch_add(processed, std::memory_order_relaxed);
          if (stats) {
            stats->add_edges(edges);
            stats->add_visits(processed);
            stats->add_local_depth(processed);
          }
        },
        1);
    frontier = bag.extract_all();
  }
  std::uint64_t done = finished.load(std::memory_order_relaxed);
  if (done != n) return cycle_status(n - done, n);
  levels = tabulate(n, [&](std::size_t v) {
    return level[v].load(std::memory_order_relaxed);
  });
  return Status::Ok();
}

std::vector<VertexId> topological_order(std::span<const std::uint32_t> levels) {
  auto order = tabulate(levels.size(),
                        [](std::size_t i) { return static_cast<VertexId>(i); });
  sort_inplace(std::span<VertexId>(order), [&](VertexId a, VertexId b) {
    return levels[a] != levels[b] ? levels[a] < levels[b] : a < b;
  });
  return order;
}

}  // namespace pasgal
