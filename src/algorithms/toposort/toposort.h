// Topological ordering of DAGs — another "peeling algorithm" in the family
// the paper's conclusion targets. Kahn peeling has the same large-diameter
// pathology as BFS: one synchronized wave per level of the DAG, and a deep
// dependency chain means O(depth) rounds. VGC collapses in-task chains.
//
//  * seq_toposort    — Kahn's algorithm with a queue (sequential baseline).
//  * pasgal_toposort — parallel Kahn over hash-bag frontiers with VGC:
//                      finishing a vertex may drop a successor's in-degree
//                      to zero; the task keeps peeling such chains locally.
//
// Both produce `level[v]` = length of the longest path ending at v — a
// canonical topological layering (u -> v implies level[u] < level[v]) that
// is schedule-independent, so parallel and sequential outputs are directly
// comparable. A cyclic input is reported as a kValidation Status (with the
// number of vertices stuck on cycles) and `levels` is left empty.
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/error.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"
#include "pasgal/vgc.h"

namespace pasgal {

Status seq_toposort(const Graph& g, std::vector<std::uint32_t>& levels,
                    RunStats* stats = nullptr);

struct ToposortParams {
  VgcParams vgc;
};

Status pasgal_toposort(const Graph& g, std::vector<std::uint32_t>& levels,
                       ToposortParams params = {}, RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
// Unlike the legacy Status forms these throw the kValidation Error on cyclic
// inputs, so RunReport can carry the levels directly.
RunReport<std::vector<std::uint32_t>> seq_toposort(const Graph& g,
                                                   const AlgoOptions& opt);
RunReport<std::vector<std::uint32_t>> pasgal_toposort(const Graph& g,
                                                      const AlgoOptions& opt);

// Convenience: vertices sorted by (level, id) — a concrete topological order.
std::vector<VertexId> topological_order(std::span<const std::uint32_t> levels);

}  // namespace pasgal
