#include "algorithms/incremental.h"

#include <algorithm>
#include <atomic>
#include <deque>

#include "algorithms/bfs/bfs.h"
#include "algorithms/cc/cc.h"
#include "pasgal/edge_map.h"

namespace pasgal {

namespace {

// Sequential visit of v's effective out-adjacency (base minus deletes plus
// inserts). `f(t)` returns false to stop. The cascade/seed phases below are
// worklist-sequential, so no snapshot re-fetch or atomics are needed here.
template <typename F>
bool for_each_effective(const Graph& g, const DeltaSnapshot* d, VertexId v,
                        F&& f) {
  if (d != nullptr && d->touches(v)) {
    return d->scan_effective(v, g.neighbors(v).data(), g.edge_begin(v),
                             g.edge_end(v),
                             [&](VertexId t, EdgeId) { return f(t); });
  }
  for (VertexId t : g.neighbors(v)) {
    if (!f(t)) return false;
  }
  return true;
}

}  // namespace

IncrementalStats incremental_bfs(const Graph& g, const Graph& gt,
                                 VertexId source,
                                 std::span<const EdgeUpdate> batch,
                                 std::vector<std::uint32_t>& dist,
                                 const IncrementalOptions& opt) {
  g.ensure_validated();
  gt.ensure_validated();
  std::size_t n = g.num_vertices();
  IncrementalStats stats;
  stats.full_settled = n;

  std::shared_ptr<const DeltaSnapshot> dfwd_hold =
      g.storage() != nullptr ? g.storage()->delta_snapshot() : nullptr;
  std::shared_ptr<const DeltaSnapshot> dbwd_hold =
      gt.storage() != nullptr ? gt.storage()->delta_snapshot() : nullptr;
  const DeltaSnapshot* dfwd = dfwd_hold.get();
  const DeltaSnapshot* dbwd = dbwd_hold.get();

  // --- delete phase: cascade invalidation over the old distances ------------
  // A candidate is a vertex that may have lost its last parent. It is
  // invalidated when no effective in-neighbor at dist-1 survives; its
  // out-neighbors one level down then become candidates in turn. Old dist
  // values stay readable throughout (invalid[] carries the staleness), so
  // the support checks are order-independent.
  std::vector<std::uint8_t> invalid(n, 0);
  std::deque<VertexId> work;
  for (const EdgeUpdate& up : batch) {
    if (up.op != EdgeUpdate::Op::kDelete) continue;
    if (dist[up.from] != kInfDist && dist[up.to] == dist[up.from] + 1) {
      work.push_back(up.to);
    }
  }
  std::vector<VertexId> invalidated;
  while (!work.empty()) {
    VertexId v = work.front();
    work.pop_front();
    if (invalid[v] || v == source || dist[v] == kInfDist) continue;
    bool supported = !for_each_effective(gt, dbwd, v, [&](VertexId u) {
      // Stop (return false) as soon as one valid parent is found.
      return !(dist[u] != kInfDist && !invalid[u] && dist[u] + 1 == dist[v]);
    });
    if (supported) continue;
    invalid[v] = 1;
    invalidated.push_back(v);
    for_each_effective(g, dfwd, v, [&](VertexId w) {
      if (!invalid[w] && dist[w] == dist[v] + 1) work.push_back(w);
      return true;
    });
  }

  // --- seeds: settled boundary of the invalid region + insert sources ------
  std::vector<VertexId> seeds;
  for (VertexId v : invalidated) {
    for_each_effective(gt, dbwd, v, [&](VertexId u) {
      if (!invalid[u] && dist[u] != kInfDist) seeds.push_back(u);
      return true;
    });
  }
  for (const EdgeUpdate& up : batch) {
    if (up.op == EdgeUpdate::Op::kInsert && !invalid[up.from] &&
        dist[up.from] != kInfDist) {
      seeds.push_back(up.from);
    }
  }

  if (static_cast<double>(invalidated.size() + seeds.size()) >
      opt.churn_threshold * static_cast<double>(n)) {
    dist = gbbs_bfs(g, gt, source);
    stats.resettled = n;
    stats.fallback = true;
    return stats;
  }

  // --- repair phase: unit-weight Bellman-Ford from the settled boundary ----
  // Invalidated vertices restart from infinity; every relaxation is an
  // atomic min, so the fixpoint is the exact hop distance (deletes only
  // lengthen paths of invalidated vertices, inserts only shorten paths, and
  // both kinds of correction propagate from the seeded boundary).
  std::vector<std::atomic<std::uint32_t>> adist(n);
  parallel_for(0, n, [&](std::size_t v) {
    adist[v].store(invalid[v] ? kInfDist : dist[v],
                   std::memory_order_relaxed);
  });
  std::vector<std::atomic<std::uint8_t>> changed(n);
  parallel_for(0, n, [&](std::size_t v) {
    changed[v].store(invalid[v], std::memory_order_relaxed);
  });

  VertexSubset frontier = VertexSubset::sparse(n, std::move(seeds));
  auto update = [&](VertexId u, VertexId v) {
    std::uint32_t du = adist[u].load(std::memory_order_relaxed);
    if (du == kInfDist) return false;
    std::uint32_t nd = du + 1;
    std::uint32_t cur = adist[v].load(std::memory_order_relaxed);
    while (cur > nd) {
      if (adist[v].compare_exchange_weak(cur, nd,
                                         std::memory_order_relaxed)) {
        changed[v].store(1, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  };
  auto cond = [](VertexId) { return true; };
  EdgeMapOptions emopt;
  // Repair frontiers are tiny by construction (churn-bounded); dense pull
  // with cond=true would rescan every in-list each round.
  emopt.allow_dense = false;
  while (!frontier.empty()) {
    frontier = edge_map_sparse(g, frontier, update, cond, emopt);
  }

  parallel_for(0, n, [&](std::size_t v) {
    dist[v] = adist[v].load(std::memory_order_relaxed);
  });
  stats.resettled = reduce_indexed<std::uint64_t>(
      n, 0, std::plus<std::uint64_t>{}, [&](std::size_t v) -> std::uint64_t {
        return changed[v].load(std::memory_order_relaxed) != 0 ? 1 : 0;
      });
  return stats;
}

IncrementalStats incremental_cc(const Graph& g,
                                std::span<const EdgeUpdate> batch,
                                std::vector<VertexId>& label,
                                const IncrementalOptions&) {
  std::size_t n = g.num_vertices();
  IncrementalStats stats;
  stats.full_settled = n;

  bool has_delete =
      std::any_of(batch.begin(), batch.end(), [](const EdgeUpdate& up) {
        return up.op == EdgeUpdate::Op::kDelete;
      });
  if (has_delete) {
    // A deletion can split a component; labels alone cannot witness the
    // split. symmetrize() collapses the overlay (graph.h), so the recompute
    // runs on the effective graph.
    label = connected_components(g.symmetrize()).label;
    stats.resettled = n;
    stats.fallback = true;
    return stats;
  }

  // Insert-only: union the label classes the new (undirected) edges bridge.
  // Union-find over label values, linking the larger root under the smaller,
  // keeps every root the minimum vertex id of its merged class — exactly the
  // label a from-scratch connected_components run assigns.
  std::vector<VertexId> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<VertexId>(i);
  auto find = [&](VertexId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];  // path halving
      x = parent[x];
    }
    return x;
  };
  for (const EdgeUpdate& up : batch) {
    VertexId a = find(label[up.from]);
    VertexId b = find(label[up.to]);
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    parent[b] = a;
  }

  std::vector<std::uint8_t> touched(n, 0);
  parallel_for(0, n, [&](std::size_t v) {
    VertexId l = label[v];
    // Walk to the root without compression: parent[] is read-only in this
    // parallel pass.
    VertexId r = l;
    while (parent[r] != r) r = parent[r];
    if (r != l) {
      label[v] = r;
      touched[v] = 1;
    }
  });
  stats.resettled = reduce_indexed<std::uint64_t>(
      n, 0, std::plus<std::uint64_t>{}, [&](std::size_t v) -> std::uint64_t {
        return touched[v] != 0 ? 1 : 0;
      });
  return stats;
}

}  // namespace pasgal
