// Biconnected components (§2.2 "Parallel Biconnectivity").
//
// Input: an undirected graph stored symmetrized (every edge in both
// directions, no self-loops, no duplicates — i.e. Graph::symmetrize output).
// Output: a label per directed edge slot; two edges share a label iff they
// belong to the same biconnected component, and both copies of an undirected
// edge always agree.
//
//  * hopcroft_tarjan_bcc — the sequential baseline (iterative DFS with an
//    edge stack).
//  * fast_bcc            — this paper / Dong et al. (PPoPP'23): spanning
//    forest + Euler tour + low/high over subtree intervals + "fence"
//    classification + connectivity on an O(n)-node skeleton. O(n+m) work,
//    polylog span, O(n) auxiliary space; no BFS anywhere.
//  * tarjan_vishkin_bcc  — the classic parallel baseline: materializes the
//    O(m)-node auxiliary edge graph (its space blowup is what the paper's
//    BCC table shows as o.o.m. on billion-edge graphs).
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"

namespace pasgal {

struct BccResult {
  // edge_label[e] for every directed edge slot e; labels are arbitrary ids.
  std::vector<std::uint64_t> edge_label;
  std::size_t num_bccs = 0;
};

BccResult hopcroft_tarjan_bcc(const Graph& g, RunStats* stats = nullptr);
BccResult fast_bcc(const Graph& g, RunStats* stats = nullptr);
BccResult tarjan_vishkin_bcc(const Graph& g, RunStats* stats = nullptr);

// GBBS-style baseline: FAST-BCC's post-processing on a BFS spanning forest —
// the level-synchronous BFS costs O(D) rounds, which is what the paper's
// BCC comparison penalizes on large-diameter graphs.
BccResult gbbs_bcc(const Graph& g, RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
RunReport<BccResult> hopcroft_tarjan_bcc(const Graph& g,
                                         const AlgoOptions& opt);
RunReport<BccResult> fast_bcc(const Graph& g, const AlgoOptions& opt);
RunReport<BccResult> tarjan_vishkin_bcc(const Graph& g,
                                        const AlgoOptions& opt);
RunReport<BccResult> gbbs_bcc(const Graph& g, const AlgoOptions& opt);

// Canonical form for comparing partitions across algorithms: each edge is
// relabeled with the smallest directed-edge slot in its component.
std::vector<EdgeId> normalize_bcc_labels(std::span<const std::uint64_t> labels);

// Derived structure queries (on any BccResult + its graph):
// articulation points = vertices incident to >= 2 distinct edge labels;
// bridges = undirected edges alone in their component.
std::vector<VertexId> articulation_points(const Graph& g, const BccResult& bcc);
std::size_t count_bridges(const Graph& g, const BccResult& bcc);

}  // namespace pasgal
