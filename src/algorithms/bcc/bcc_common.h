// Shared preprocessing for the parallel BCC algorithms: spanning forest,
// Euler-tour rooting, and subtree low/high values.
#pragma once

#include <algorithm>
#include <vector>

#include "algorithms/bcc/bcc.h"
#include "algorithms/cc/cc.h"
#include "algorithms/tree/euler.h"
#include "algorithms/tree/range_query.h"
#include "graphs/graph.h"
#include "pasgal/stats.h"

namespace pasgal::internal {

struct BccPrep {
  EulerForest forest;
  // low[v]/high[v]: extremal `first` value reachable from subtree(v) through
  // a single non-tree edge (or first[v] itself).
  std::vector<std::uint64_t> low, high;
  std::vector<VertexId> edge_source;  // source vertex of each directed slot

  bool is_tree_edge(VertexId u, VertexId v) const {
    return forest.parent[v] == u || forest.parent[u] == v;
  }
  // Subtree(child) has a non-tree edge escaping subtree(parent)?
  bool escapes_parent(VertexId child) const {
    VertexId p = forest.parent[child];
    return low[child] < forest.first[p] || high[child] > forest.last[p];
  }
};

// Preprocess from a caller-supplied spanning forest (fast_bcc passes the
// union-find forest; gbbs_bcc passes a BFS forest).
inline BccPrep bcc_preprocess_from_forest(const Graph& g,
                                          std::span<const Edge> forest_edges,
                                          std::span<const VertexId> comp_label,
                                          RunStats* stats = nullptr) {
  std::size_t n = g.num_vertices();
  std::size_t m = g.num_edges();
  BccPrep prep;

  prep.forest = euler_tour_forest(n, forest_edges, comp_label);
  if (stats) stats->end_round(n);
  const EulerForest& forest = prep.forest;

  prep.edge_source.resize(m);
  parallel_for(0, n, [&](std::size_t v) {
    for (EdgeId e = g.edge_begin(static_cast<VertexId>(v));
         e < g.edge_end(static_cast<VertexId>(v)); ++e) {
      prep.edge_source[e] = static_cast<VertexId>(v);
    }
  });

  // Per-vertex extremal `first` over non-tree neighbours.
  std::vector<std::uint64_t> minf(n), maxf(n);
  parallel_for(0, n, [&](std::size_t vi) {
    VertexId v = static_cast<VertexId>(vi);
    std::uint64_t lo = forest.first[v], hi = forest.first[v];
    for (VertexId w : g.neighbors(v)) {
      if (prep.is_tree_edge(v, w)) continue;
      lo = std::min(lo, forest.first[w]);
      hi = std::max(hi, forest.first[w]);
    }
    minf[vi] = lo;
    maxf[vi] = hi;
  });
  if (stats) {
    stats->add_edges(m);
    stats->end_round(n);
  }

  // Subtrees are contiguous in first-order; aggregate with range queries.
  auto order = tabulate(n, [](std::size_t i) { return static_cast<VertexId>(i); });
  sort_inplace(std::span<VertexId>(order), [&](VertexId a, VertexId b) {
    return forest.first[a] < forest.first[b];
  });
  std::vector<std::uint64_t> pos_of(n);
  parallel_for(0, n, [&](std::size_t i) { pos_of[order[i]] = i; });
  auto minf_in_order = tabulate(n, [&](std::size_t i) { return minf[order[i]]; });
  auto maxf_in_order = tabulate(n, [&](std::size_t i) { return maxf[order[i]]; });
  auto first_in_order =
      tabulate(n, [&](std::size_t i) { return forest.first[order[i]]; });
  RangeMin<std::uint64_t> min_table(minf_in_order, static_cast<std::uint64_t>(-1));
  RangeMax<std::uint64_t> max_table(maxf_in_order, 0);

  prep.low.resize(n);
  prep.high.resize(n);
  parallel_for(0, n, [&](std::size_t vi) {
    VertexId v = static_cast<VertexId>(vi);
    std::size_t lo = pos_of[v];
    std::size_t hi = static_cast<std::size_t>(
        std::upper_bound(first_in_order.begin(), first_in_order.end(),
                         forest.last[v]) -
        first_in_order.begin());
    prep.low[vi] = min_table.query(lo, hi);
    prep.high[vi] = max_table.query(lo, hi);
  });
  if (stats) stats->end_round(n);
  return prep;
}

inline BccPrep bcc_preprocess(const Graph& g, RunStats* stats = nullptr) {
  ConnectivityResult cc = connected_components(g, stats);
  return bcc_preprocess_from_forest(g, cc.forest, cc.label, stats);
}

// Steps 4-5 of FAST-BCC (skeleton + connectivity + labels); defined in
// fast_bcc.cpp, shared with gbbs_bcc.
BccResult bcc_from_prep(const Graph& g, const BccPrep& prep, RunStats* stats);

}  // namespace pasgal::internal
