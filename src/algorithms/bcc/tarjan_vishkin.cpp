#include <algorithm>
#include <atomic>

#include "algorithms/bcc/bcc.h"
#include "algorithms/bcc/bcc_common.h"

namespace pasgal {

// Tarjan-Vishkin biconnectivity (1985) — the classic parallel baseline. It
// materializes the auxiliary graph whose NODES are the m undirected edges of
// G and runs connectivity on it; components of the auxiliary graph are the
// biconnected components. Auxiliary edges (with an arbitrary rooted spanning
// tree and Euler-tour intervals):
//   (i)   non-tree {u,v}, u and v unrelated: join node{u,v} with the parent
//         tree edges {p(u),u} and {p(v),v};
//   (ii)  non-tree {u,v}, u an ancestor of v: join node{u,v} with {p(v),v};
//   (iii) tree {p,v} whose subtree escapes subtree(p): join node{p,v} with
//         {gp, p} (p not a root).
//
// The O(m)-node auxiliary graph is the space cost the paper's BCC table
// shows as out-of-memory on the billion-edge webs — in contrast to
// FAST-BCC's O(n) skeleton.
BccResult tarjan_vishkin_bcc(const Graph& g, RunStats* stats) {
  std::size_t n = g.num_vertices();
  std::size_t m = g.num_edges();
  BccResult result;
  result.edge_label.assign(m, static_cast<std::uint64_t>(-1));
  if (n == 0 || m == 0) {
    return result;
  }

  internal::BccPrep prep = internal::bcc_preprocess(g, stats);
  const EulerForest& forest = prep.forest;

  // Node ids: one per undirected edge = per canonical slot (source < target).
  std::vector<EdgeId> node_of_slot(m);
  std::vector<std::uint64_t> is_canonical(m);
  parallel_for(0, m, [&](std::size_t e) {
    is_canonical[e] = prep.edge_source[e] < g.edge_target(e) ? 1 : 0;
  });
  std::vector<std::uint64_t> node_index(m);
  std::uint64_t num_nodes = scan_indexed<std::uint64_t>(
      m, [&](std::size_t e) { return is_canonical[e]; },
      [&](std::size_t e, std::uint64_t v) { node_index[e] = v; });
  // Reverse slot lookup to give the non-canonical copy the same node.
  auto reverse_slot = [&](std::size_t e) {
    VertexId u = prep.edge_source[e];
    VertexId v = g.edge_target(e);
    auto nbrs = g.neighbors(v);
    auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
    return static_cast<std::size_t>(g.edge_begin(v) +
                                    static_cast<EdgeId>(it - nbrs.begin()));
  };
  parallel_for(0, m, [&](std::size_t e) {
    node_of_slot[e] =
        is_canonical[e] ? node_index[e] : node_index[reverse_slot(e)];
  });
  // Node of the tree edge {parent(x), x}.
  auto parent_edge_node = [&](VertexId x) -> EdgeId {
    VertexId p = forest.parent[x];
    VertexId lo = std::min(p, x), hi = std::max(p, x);
    auto nbrs = g.neighbors(lo);
    auto it = std::lower_bound(nbrs.begin(), nbrs.end(), hi);
    return node_of_slot[static_cast<std::size_t>(
        g.edge_begin(lo) + static_cast<EdgeId>(it - nbrs.begin()))];
  };

  // Auxiliary edges: at most two per canonical slot.
  constexpr VertexId kNone = kInvalidVertex;
  std::vector<Edge> aux(2 * m, Edge{kNone, kNone});
  parallel_for(0, m, [&](std::size_t e) {
    if (!is_canonical[e]) return;
    VertexId u = prep.edge_source[e];
    VertexId v = g.edge_target(e);
    VertexId self = static_cast<VertexId>(node_of_slot[e]);
    if (prep.is_tree_edge(u, v)) {
      VertexId child = forest.parent[v] == u ? v : u;
      VertexId p = forest.parent[child];
      if (prep.escapes_parent(child) && !forest.is_root(p)) {
        aux[2 * e] = Edge{self, static_cast<VertexId>(parent_edge_node(p))};
      }
      return;
    }
    bool u_anc = forest.is_ancestor(u, v);
    bool v_anc = forest.is_ancestor(v, u);
    if (u_anc) {
      aux[2 * e] = Edge{self, static_cast<VertexId>(parent_edge_node(v))};
    } else if (v_anc) {
      aux[2 * e] = Edge{self, static_cast<VertexId>(parent_edge_node(u))};
    } else {
      aux[2 * e] = Edge{self, static_cast<VertexId>(parent_edge_node(u))};
      aux[2 * e + 1] = Edge{self, static_cast<VertexId>(parent_edge_node(v))};
    }
  });
  auto aux_half =
      filter(std::span<const Edge>(aux), [](const Edge& e) {
        return e.from != kInvalidVertex;
      });
  std::vector<Edge> aux_edges(2 * aux_half.size());
  parallel_for(0, aux_half.size(), [&](std::size_t i) {
    aux_edges[2 * i] = aux_half[i];
    aux_edges[2 * i + 1] = Edge{aux_half[i].to, aux_half[i].from};
  });
  ConnectivityResult comp = connected_components(
      Graph::from_edges(num_nodes, aux_edges), stats);
  if (stats) stats->end_round(num_nodes);

  parallel_for(0, m, [&](std::size_t e) {
    result.edge_label[e] = comp.label[node_of_slot[e]];
  });
  result.num_bccs = comp.num_components;
  return result;
}

}  // namespace pasgal
