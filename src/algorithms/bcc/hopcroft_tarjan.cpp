#include <algorithm>

#include "algorithms/bcc/bcc.h"

namespace pasgal {

namespace {

// Reverse directed slot of e = (u -> v): binary search u in v's sorted list.
EdgeId reverse_slot(const Graph& g, VertexId u, VertexId v) {
  auto nbrs = g.neighbors(v);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
  return g.edge_begin(v) + static_cast<EdgeId>(it - nbrs.begin());
}

}  // namespace

// Hopcroft-Tarjan biconnectivity (the paper's sequential baseline): one DFS
// maintaining discovery/low values and a stack of edges; when a child
// subtree cannot reach above the current vertex, the edges on the stack
// down to the tree edge form one biconnected component. Fully iterative —
// recursion would overflow on the paper's large-diameter inputs.
BccResult hopcroft_tarjan_bcc(const Graph& g, RunStats* stats) {
  std::size_t n = g.num_vertices();
  std::size_t m = g.num_edges();
  constexpr std::uint32_t kUnvisited = static_cast<std::uint32_t>(-1);
  constexpr std::uint64_t kNoLabel = static_cast<std::uint64_t>(-1);

  std::vector<std::uint32_t> disc(n, kUnvisited), low(n, 0);
  BccResult result;
  result.edge_label.assign(m, kNoLabel);

  struct Frame {
    VertexId v;
    VertexId parent;
    EdgeId next_edge;
    bool skipped_parent_copy;  // skip exactly one (v -> parent) slot
  };
  std::vector<Frame> dfs;
  struct StackedEdge {
    VertexId from;
    EdgeId slot;
  };
  std::vector<StackedEdge> edge_stack;
  std::uint32_t timer = 0;
  std::uint64_t next_label = 0;
  std::uint64_t edges_scanned = 0;

  // Pops stacked edges into a fresh component until (and including) the tree
  // edge p -> v. Everything above it belongs to this component because
  // nested components were already popped.
  auto pop_component = [&](VertexId p, VertexId v) {
    std::uint64_t label = next_label++;
    for (;;) {
      StackedEdge top = edge_stack.back();
      edge_stack.pop_back();
      VertexId to = g.edge_target(top.slot);
      result.edge_label[top.slot] = label;
      result.edge_label[reverse_slot(g, top.from, to)] = label;
      if (top.from == p && to == v) break;
    }
  };

  for (VertexId root = 0; root < n; ++root) {
    if (disc[root] != kUnvisited) continue;
    disc[root] = low[root] = timer++;
    dfs.push_back({root, root, g.edge_begin(root), true});

    while (!dfs.empty()) {
      Frame& f = dfs.back();
      VertexId v = f.v;
      if (f.next_edge < g.edge_end(v)) {
        EdgeId e = f.next_edge++;
        VertexId w = g.edge_target(e);
        ++edges_scanned;
        if (w == f.parent && !f.skipped_parent_copy) {
          f.skipped_parent_copy = true;  // the tree edge back to the parent
          continue;
        }
        if (disc[w] == kUnvisited) {
          edge_stack.push_back({v, e});
          disc[w] = low[w] = timer++;
          dfs.push_back({w, v, g.edge_begin(w), v == w});
        } else if (disc[w] < disc[v]) {
          // Back edge (the forward copy is skipped via the disc test).
          edge_stack.push_back({v, e});
          low[v] = std::min(low[v], disc[w]);
        }
      } else {
        dfs.pop_back();
        if (dfs.empty()) continue;
        Frame& pf = dfs.back();
        VertexId p = pf.v;
        low[p] = std::min(low[p], low[v]);
        if (low[v] >= disc[p]) {
          // p separates v's subtree: everything stacked above (and
          // including) the tree edge (p, v) is one component.
          pop_component(p, v);
        }
      }
    }
  }
  result.num_bccs = static_cast<std::size_t>(next_label);
  if (stats) {
    stats->add_edges(edges_scanned);
    stats->add_visits(n);
    stats->end_round(n);
  }
  return result;
}

std::vector<EdgeId> normalize_bcc_labels(std::span<const std::uint64_t> labels) {
  std::size_t m = labels.size();
  std::vector<std::pair<std::uint64_t, EdgeId>> pairs(m);
  parallel_for(0, m, [&](std::size_t e) {
    pairs[e] = {labels[e], static_cast<EdgeId>(e)};
  });
  sort_inplace(std::span<std::pair<std::uint64_t, EdgeId>>(pairs));
  std::vector<EdgeId> out(m);
  EdgeId rep = 0;
  for (std::size_t i = 0; i < m; ++i) {
    if (i == 0 || pairs[i].first != pairs[i - 1].first) rep = pairs[i].second;
    out[pairs[i].second] = rep;
  }
  return out;
}

std::vector<VertexId> articulation_points(const Graph& g, const BccResult& bcc) {
  std::size_t n = g.num_vertices();
  return pack_indexed<VertexId>(
      n,
      [&](std::size_t vi) {
        VertexId v = static_cast<VertexId>(vi);
        EdgeId lo = g.edge_begin(v), hi = g.edge_end(v);
        for (EdgeId e = lo + 1; e < hi; ++e) {
          if (bcc.edge_label[e] != bcc.edge_label[lo]) return true;
        }
        return false;
      },
      [&](std::size_t vi) { return static_cast<VertexId>(vi); });
}

std::size_t count_bridges(const Graph& g, const BccResult& bcc) {
  std::size_t m = g.num_edges();
  // A bridge's component contains exactly one undirected edge = two slots.
  // Count slots whose label has multiplicity 2, then halve.
  std::vector<std::uint64_t> sorted_labels(bcc.edge_label.begin(),
                                           bcc.edge_label.end());
  sort_inplace(std::span<std::uint64_t>(sorted_labels));
  std::size_t bridge_slots = 0;
  for (std::size_t i = 0; i < m;) {
    std::size_t j = i;
    while (j < m && sorted_labels[j] == sorted_labels[i]) ++j;
    if (j - i == 2) bridge_slots += 2;
    i = j;
  }
  return bridge_slots / 2;
}

}  // namespace pasgal
