#include <atomic>

#include "algorithms/bcc/bcc.h"
#include "algorithms/bcc/bcc_common.h"
#include "pasgal/edge_map.h"

namespace pasgal {

// GBBS-style BCC baseline: identical post-processing to FAST-BCC, but the
// spanning forest comes from a level-synchronous multi-source BFS — one
// global synchronization per level. This is the paper's point about GBBS's
// BCC: the O(D) BFS rounds dominate on large-diameter graphs (the remainder
// of the pipeline is round-efficient).
BccResult gbbs_bcc(const Graph& g, RunStats* stats) {
  std::size_t n = g.num_vertices();
  if (n == 0) return {};

  // Component representatives seed the multi-source BFS.
  ConnectivityResult cc = connected_components(g, stats);
  auto roots = pack_indexed<VertexId>(
      n, [&](std::size_t v) { return cc.label[v] == v; },
      [&](std::size_t v) { return static_cast<VertexId>(v); });

  std::vector<std::atomic<VertexId>> parent(n);
  parallel_for(0, n, [&](std::size_t i) {
    parent[i].store(kInvalidVertex, std::memory_order_relaxed);
  });
  parallel_for(0, roots.size(), [&](std::size_t i) {
    parent[roots[i]].store(roots[i], std::memory_order_relaxed);
  });

  VertexSubset frontier = VertexSubset::sparse(n, roots);
  while (!frontier.empty()) {
    if (stats) stats->end_round(frontier.size());
    auto update = [&](VertexId u, VertexId v) {
      VertexId expected = kInvalidVertex;
      return parent[v].compare_exchange_strong(expected, u,
                                               std::memory_order_relaxed);
    };
    auto update_seq = [&](VertexId u, VertexId v) {
      if (parent[v].load(std::memory_order_relaxed) == kInvalidVertex) {
        parent[v].store(u, std::memory_order_relaxed);
        return true;
      }
      return false;
    };
    auto cond = [&](VertexId v) {
      return parent[v].load(std::memory_order_relaxed) == kInvalidVertex;
    };
    frontier = edge_map(g, g, frontier, update, update_seq, cond,
                        EdgeMapOptions{}, stats);
  }

  auto forest_edges = pack_indexed<Edge>(
      n,
      [&](std::size_t v) {
        VertexId p = parent[v].load(std::memory_order_relaxed);
        return p != kInvalidVertex && p != static_cast<VertexId>(v);
      },
      [&](std::size_t v) {
        return Edge{parent[v].load(std::memory_order_relaxed),
                    static_cast<VertexId>(v)};
      });

  internal::BccPrep prep =
      internal::bcc_preprocess_from_forest(g, forest_edges, cc.label, stats);
  return internal::bcc_from_prep(g, prep, stats);
}

}  // namespace pasgal
