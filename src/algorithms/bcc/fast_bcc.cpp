#include <atomic>

#include "algorithms/bcc/bcc.h"
#include "algorithms/bcc/bcc_common.h"

namespace pasgal {

// FAST-BCC (Dong, Gu, Sun, Wang — PPoPP'23), the BCC algorithm in PASGAL.
// No BFS anywhere, O(n+m) work, polylog span, O(n) auxiliary space:
//
//   1. connectivity -> arbitrary spanning forest (union-find; no BFS),
//   2. Euler tour roots the forest: parent[], nested intervals [first,last],
//   3. subtree aggregation of extremal non-tree-neighbour `first` values
//      yields low(v)/high(v),
//   4. classification: tree edge (p, v) is a *fence* iff subtree(v) has no
//      non-tree edge escaping subtree(p); the skeleton keeps the non-fence
//      ("plain") tree edges plus the non-tree edges between unrelated
//      vertices (ancestor back edges would glue BCCs through their heads —
//      the plain tree edges along the path already carry that
//      connectivity),
//   5. connectivity on the O(n)-node skeleton: each component is one BCC
//      minus its head. Edge labels read off the child endpoint (tree edges)
//      or the descendant endpoint (back edges).
namespace internal {

// Steps 4-5 on a prepared forest: skeleton construction, connectivity on the
// skeleton, and per-edge label readout. Shared by fast_bcc (union-find
// forest) and gbbs_bcc (BFS forest).
BccResult bcc_from_prep(const Graph& g, const BccPrep& prep, RunStats* stats) {
  std::size_t n = g.num_vertices();
  std::size_t m = g.num_edges();
  BccResult result;
  result.edge_label.assign(m, static_cast<std::uint64_t>(-1));
  if (n == 0) return result;
  const EulerForest& forest = prep.forest;

  // Skeleton: both directions of each qualifying edge, built directly.
  auto skeleton_half = pack_indexed<Edge>(
      m,
      [&](std::size_t e) {
        VertexId u = prep.edge_source[e];
        VertexId v = g.edge_target(e);
        if (u > v) return false;  // one copy per undirected edge
        if (prep.is_tree_edge(u, v)) {
          VertexId child = forest.parent[v] == u ? v : u;
          return prep.escapes_parent(child);
        }
        return !forest.is_ancestor(u, v) && !forest.is_ancestor(v, u);
      },
      [&](std::size_t e) { return Edge{prep.edge_source[e], g.edge_target(e)}; });
  std::vector<Edge> skeleton(2 * skeleton_half.size());
  parallel_for(0, skeleton_half.size(), [&](std::size_t i) {
    skeleton[2 * i] = skeleton_half[i];
    skeleton[2 * i + 1] = Edge{skeleton_half[i].to, skeleton_half[i].from};
  });
  ConnectivityResult comp =
      connected_components(Graph::from_edges(n, skeleton), stats);
  if (stats) stats->end_round(n);

  // Per-edge labels.
  std::vector<std::atomic<std::uint8_t>> label_used(n);
  parallel_for(0, n, [&](std::size_t i) {
    label_used[i].store(0, std::memory_order_relaxed);
  });
  parallel_for(0, m, [&](std::size_t e) {
    VertexId u = prep.edge_source[e];
    VertexId v = g.edge_target(e);
    VertexId key;
    if (prep.is_tree_edge(u, v)) {
      key = forest.parent[v] == u ? v : u;  // the child endpoint
    } else if (forest.is_ancestor(u, v)) {
      key = v;  // descendant endpoint
    } else {
      key = u;  // unrelated (or v ancestor of u): u's side is in-component
    }
    result.edge_label[e] = comp.label[key];
    label_used[comp.label[key]].store(1, std::memory_order_relaxed);
  });
  result.num_bccs = count_if_index(n, [&](std::size_t i) {
    return label_used[i].load(std::memory_order_relaxed) != 0;
  });
  return result;
}

}  // namespace internal

BccResult fast_bcc(const Graph& g, RunStats* stats) {
  if (g.num_vertices() == 0) return {};
  if (stats) stats->phase_begin("spanning_forest");
  ConnectivityResult cc = connected_components(g, stats);
  if (stats) stats->phase_begin("euler_tour");
  internal::BccPrep prep =
      internal::bcc_preprocess_from_forest(g, cc.forest, cc.label, stats);
  if (stats) stats->phase_begin("skeleton");
  BccResult result = internal::bcc_from_prep(g, prep, stats);
  if (stats) stats->phase_end();
  return result;
}

}  // namespace pasgal
