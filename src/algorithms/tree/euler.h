// Euler-tour technique on a spanning forest: rooting, parents, and nested
// DFS-style intervals — without any DFS. Used by FAST-BCC and Tarjan-Vishkin.
//
// Pipeline: forest edges -> Euler circuit over arcs (each tree edge becomes
// two arcs; the successor of an arc (u,v) is the arc leaving v after (v,u)
// in v's circular adjacency order) -> cut at each root -> parallel list
// ranking (pointer jumping) gives tour positions -> the earlier arc of each
// pair points down the tree, yielding parent and the interval [first, last].
//
// Intervals are globally disjoint across trees, so
//   u is an ancestor of v  <=>  first[u] <= first[v] && last[v] <= last[u].
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphs/graph.h"

namespace pasgal {

struct EulerForest {
  std::vector<VertexId> parent;      // parent[root] = root
  std::vector<std::uint64_t> first;  // entry time (unique per vertex)
  std::vector<std::uint64_t> last;   // exit time; first[v] < last[v]

  bool is_ancestor(VertexId u, VertexId v) const {
    return first[u] <= first[v] && last[v] <= last[u];
  }
  bool is_root(VertexId v) const { return parent[v] == v; }
};

// `forest_edges` must be acyclic (a spanning forest, e.g. from
// connected_components). `component_label[v]` names v's component by its
// minimum vertex (also from connected_components); that vertex becomes the
// root of its tree.
EulerForest euler_tour_forest(std::size_t n, std::span<const Edge> forest_edges,
                              std::span<const VertexId> component_label);

// Parallel list ranking by pointer jumping. succ[i] == kListEnd terminates a
// list. Returns r[i] = number of nodes from i to the end of its list,
// inclusive (so the head of an L-node list gets L).
inline constexpr std::uint64_t kListEnd = static_cast<std::uint64_t>(-1);
std::vector<std::uint64_t> list_rank(std::span<const std::uint64_t> succ);

}  // namespace pasgal
