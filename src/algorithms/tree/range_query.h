// Static segment tree for range min/max over a fixed array — O(n) space,
// parallel O(n) build, O(log n) queries. Used by FAST-BCC to aggregate
// low/high over subtree ranges in Euler-tour (preorder) order.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "parlay/parallel.h"

namespace pasgal {

template <typename T, typename Combine>
class SegmentTree {
 public:
  SegmentTree(std::span<const T> data, T identity, Combine combine = Combine{})
      : n_(data.size()), identity_(identity), combine_(combine),
        tree_(2 * (n_ ? n_ : 1), identity) {
    parallel_for(0, n_, [&](std::size_t i) { tree_[n_ + i] = data[i]; });
    // Standard iterative bottom-up build (works for any n, not just powers
    // of two). Linear and cheap relative to the graph work around it.
    for (std::size_t i = n_; i-- > 1;) {
      tree_[i] = combine_(tree_[2 * i], tree_[2 * i + 1]);
    }
  }

  // Combine of data[lo, hi); identity if empty.
  T query(std::size_t lo, std::size_t hi) const {
    T left = identity_, right = identity_;
    std::size_t l = lo + n_, r = hi + n_;
    while (l < r) {
      if (l & 1) left = combine_(left, tree_[l++]);
      if (r & 1) right = combine_(tree_[--r], right);
      l /= 2;
      r /= 2;
    }
    return combine_(left, right);
  }

 private:
  std::size_t n_;
  T identity_;
  Combine combine_;
  std::vector<T> tree_;
};

struct MinCombine {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? a : b;
  }
};
struct MaxCombine {
  template <typename T>
  T operator()(T a, T b) const {
    return a < b ? b : a;
  }
};

template <typename T>
using RangeMin = SegmentTree<T, MinCombine>;
template <typename T>
using RangeMax = SegmentTree<T, MaxCombine>;

}  // namespace pasgal
