#include "algorithms/tree/euler.h"

#include <algorithm>

#include "parlay/parallel.h"
#include "parlay/primitives.h"

namespace pasgal {

std::vector<std::uint64_t> list_rank(std::span<const std::uint64_t> succ) {
  std::size_t k = succ.size();
  std::vector<std::uint64_t> rank(k, 1);
  std::vector<std::uint64_t> next(succ.begin(), succ.end());
  std::vector<std::uint64_t> rank2(k), next2(k);
  // Pointer jumping: O(log L) synchronous rounds, each fully parallel.
  for (;;) {
    bool any = count_if_index(k, [&](std::size_t i) {
                 return next[i] != kListEnd;
               }) > 0;
    if (!any) break;
    parallel_for(0, k, [&](std::size_t i) {
      if (next[i] == kListEnd) {
        rank2[i] = rank[i];
        next2[i] = kListEnd;
      } else {
        rank2[i] = rank[i] + rank[next[i]];
        next2[i] = next[next[i]];
      }
    });
    std::swap(rank, rank2);
    std::swap(next, next2);
  }
  return rank;
}

EulerForest euler_tour_forest(std::size_t n, std::span<const Edge> forest_edges,
                              std::span<const VertexId> component_label) {
  // Symmetric CSR over the forest: each tree edge becomes two arcs.
  std::vector<Edge> both(2 * forest_edges.size());
  parallel_for(0, forest_edges.size(), [&](std::size_t i) {
    both[2 * i] = forest_edges[i];
    both[2 * i + 1] = Edge{forest_edges[i].to, forest_edges[i].from};
  });
  Graph tree = Graph::from_edges(n, both);
  std::size_t k = tree.num_edges();

  // Arc source lookup.
  std::vector<VertexId> arc_source(k);
  parallel_for(0, n, [&](std::size_t v) {
    for (EdgeId e = tree.edge_begin(static_cast<VertexId>(v));
         e < tree.edge_end(static_cast<VertexId>(v)); ++e) {
      arc_source[e] = static_cast<VertexId>(v);
    }
  });

  // twin(e): the reverse arc; adjacency lists are sorted and duplicate-free,
  // so a binary search in the target's list finds it.
  auto twin = [&](EdgeId e) -> EdgeId {
    VertexId u = arc_source[e];
    VertexId v = tree.edge_target(e);
    auto nbrs = tree.neighbors(v);
    auto it = std::lower_bound(nbrs.begin(), nbrs.end(), u);
    return tree.edge_begin(v) + static_cast<EdgeId>(it - nbrs.begin());
  };

  // Euler circuit successor, then cut each tree's circuit at its root.
  std::vector<std::uint64_t> succ(k);
  parallel_for(0, k, [&](std::size_t e) {
    VertexId v = tree.edge_target(static_cast<EdgeId>(e));
    EdgeId tw = twin(static_cast<EdgeId>(e));
    EdgeId pos = tw - tree.edge_begin(v);
    EdgeId deg = tree.out_degree(v);
    succ[e] = tree.edge_begin(v) + (pos + 1) % deg;
  });
  parallel_for(0, n, [&](std::size_t vi) {
    VertexId v = static_cast<VertexId>(vi);
    if (component_label[v] != v || tree.out_degree(v) == 0) return;
    // v is a root: the tour starts at its first arc; the arc whose successor
    // would wrap to it ends the list.
    EdgeId start = tree.edge_begin(v);
    EdgeId ender = twin(tree.edge_end(v) - 1);
    (void)start;
    succ[ender] = kListEnd;
  });

  auto rank = list_rank(succ);  // nodes from arc to its tree's tour end

  // Disjoint position ranges per tree: tree t with tour length L occupies
  // [offset, offset + L + 2) — the +2 leaves room for the root's own
  // first/last around its arcs.
  std::vector<std::uint64_t> offset_of_root(n, 0);
  {
    auto roots = pack_indexed<VertexId>(
        n,
        [&](std::size_t v) { return component_label[v] == v; },
        [&](std::size_t v) { return static_cast<VertexId>(v); });
    std::vector<std::uint64_t> spans(roots.size());
    parallel_for(0, roots.size(), [&](std::size_t i) {
      VertexId r = roots[i];
      std::uint64_t len =
          tree.out_degree(r) == 0 ? 0 : rank[tree.edge_begin(r)];
      spans[i] = len + 2;
    });
    scan_inplace(std::span<std::uint64_t>(spans));
    parallel_for(0, roots.size(),
                 [&](std::size_t i) { offset_of_root[roots[i]] = spans[i]; });
  }

  // Global position of each arc along its tree's tour.
  std::vector<std::uint64_t> pos(k);
  parallel_for(0, k, [&](std::size_t e) {
    VertexId root = component_label[arc_source[e]];
    std::uint64_t len = rank[tree.edge_begin(root)];
    pos[e] = offset_of_root[root] + (len - rank[e]);
  });

  EulerForest out;
  out.parent.resize(n);
  out.first.resize(n);
  out.last.resize(n);
  parallel_for(0, n, [&](std::size_t vi) {
    VertexId v = static_cast<VertexId>(vi);
    VertexId root = component_label[v];
    if (root == v) {
      out.parent[v] = v;
      std::uint64_t len =
          tree.out_degree(v) == 0 ? 0 : rank[tree.edge_begin(v)];
      out.first[v] = offset_of_root[v];
      out.last[v] = offset_of_root[v] + len + 1;
      return;
    }
    // Of v's arcs' twins (arcs pointing at v), the one with the smallest
    // position is the entry (down) arc; its source is the parent.
    std::uint64_t best_pos = ~0ULL, worst_pos = 0;
    VertexId parent = v;
    for (EdgeId e = tree.edge_begin(v); e < tree.edge_end(v); ++e) {
      EdgeId in_arc = twin(e);
      if (pos[in_arc] < best_pos) {
        best_pos = pos[in_arc];
        parent = arc_source[in_arc];
      }
      // The exit time is just after the last arc leaving v.
      worst_pos = std::max(worst_pos, pos[e]);
    }
    out.parent[v] = parent;
    out.first[v] = best_pos + 1;
    out.last[v] = worst_pos + 1;
  });
  return out;
}

}  // namespace pasgal
