#include <queue>

#include "algorithms/bfs/bfs.h"

namespace pasgal {

// The paper's sequential baseline: textbook queue-based BFS.
std::vector<std::uint32_t> seq_bfs(const Graph& g, VertexId source,
                                   RunStats* stats) {
  std::vector<std::uint32_t> dist(g.num_vertices(), kInfDist);
  std::queue<VertexId> queue;
  dist[source] = 0;
  queue.push(source);
  std::uint64_t edges = 0, visits = 0;
  while (!queue.empty()) {
    VertexId u = queue.front();
    queue.pop();
    ++visits;
    for (VertexId v : g.neighbors(u)) {
      ++edges;
      if (dist[v] == kInfDist) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
  }
  if (stats) {
    stats->add_edges(edges);
    stats->add_visits(visits);
    stats->end_round(visits);  // a sequential run is one "round"
  }
  return dist;
}

}  // namespace pasgal
