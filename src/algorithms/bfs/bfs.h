// Breadth-first search: PASGAL's VGC algorithm and the paper's baselines.
//
// All variants return the vector of hop distances from `source`
// (kInfDist for unreachable vertices), so they are directly comparable.
//
//  * seq_bfs     — the paper's sequential baseline: queue-based BFS.
//  * gbbs_bfs    — GBBS-style level-synchronous edge_map BFS with
//                  sparse/dense direction optimization.
//  * gapbs_bfs   — GAPBS-style direction-optimizing BFS (Beamer's alpha/beta
//                  hysteresis controller).
//  * pasgal_bfs  — this paper: hash-bag frontiers, vertical granularity
//                  control with multi-frontier (2^i) distance buckets, and
//                  direction optimization on clean dense levels (§2.2).
//  * ms_bfs      — bit-parallel multi-source BFS (Then et al., VLDB'14 style):
//                  one shared frontier sweep advances up to 64 sources, one
//                  per bit of a per-vertex machine word.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/cancel.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"
#include "pasgal/vgc.h"

namespace pasgal {

inline constexpr std::uint32_t kInfDist = static_cast<std::uint32_t>(-1);

std::vector<std::uint32_t> seq_bfs(const Graph& g, VertexId source,
                                   RunStats* stats = nullptr);

// `gt` is the transpose (pass g itself for symmetric graphs); needed for the
// dense (pull) direction. `cancel`, when non-null, is checked at every
// level boundary (throws kTimeout on expiry).
std::vector<std::uint32_t> gbbs_bfs(const Graph& g, const Graph& gt,
                                    VertexId source, RunStats* stats = nullptr,
                                    const CancelToken* cancel = nullptr);

struct GapbsParams {
  int alpha = 15;  // switch to bottom-up when frontier edges > remaining/alpha
  int beta = 18;   // switch back to top-down when |frontier| < n/beta
};
std::vector<std::uint32_t> gapbs_bfs(const Graph& g, const Graph& gt,
                                     VertexId source, GapbsParams params = {},
                                     RunStats* stats = nullptr);

struct PasgalBfsParams {
  VgcParams vgc;
  // Engage VGC only when the frontier's work is below vgc_engage_factor*tau
  // edge operations — i.e. when per-round work is too small to amortize
  // scheduling on a many-core machine. Deliberately NOT scaled by the
  // current worker count: the algorithm's round structure should not change
  // with the machine it happens to run on.
  std::uint32_t vgc_engage_factor = 16;
  // Direction-optimization density threshold (frontier work > m/den).
  EdgeId dense_threshold_den = 20;
  bool use_dense = true;
  // Checked at every round boundary (sparse rounds and dense levels);
  // throws kTimeout on expiry. Null disables the check.
  const CancelToken* cancel = nullptr;
};
std::vector<std::uint32_t> pasgal_bfs(const Graph& g, const Graph& gt,
                                      VertexId source,
                                      PasgalBfsParams params = {},
                                      RunStats* stats = nullptr);

// --- bit-parallel multi-source BFS ------------------------------------------
// Each vertex carries a 64-bit `seen` mask (sources that have reached it) and
// a `visit` mask (sources that reached it last round). One level-synchronous
// sweep advances the whole batch: sparse rounds push `visit` masks along
// out-edges, OR-ing new bits into the targets and collecting first-touched
// vertices through a hash bag; dense rounds pull every unsaturated vertex's
// in-edges via edge_map_dense (pull_exhaustive — the AND-NOT against `seen`
// must gather bits from every in-neighbour, not stop at the first hit).
// Returns one hop-distance array per source, in input order — byte-identical
// to running the single-source variants once per source.
struct MsBfsParams {
  // Direction-optimization density threshold (frontier work > m/den).
  EdgeId dense_threshold_den = 20;
  bool use_dense = true;
  // Checked at every round boundary; throws kTimeout on expiry, unwinding
  // the whole batch. Null disables the check.
  const CancelToken* cancel = nullptr;
};
std::vector<std::vector<std::uint32_t>> ms_bfs(const Graph& g, const Graph& gt,
                                               std::span<const VertexId> sources,
                                               MsBfsParams params = {},
                                               RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
// Source, tuning knobs and tracer come from AlgoOptions; the result bundles
// the distances with wall time and the run's aggregated telemetry.
RunReport<std::vector<std::uint32_t>> seq_bfs(const Graph& g,
                                              const AlgoOptions& opt);
RunReport<std::vector<std::uint32_t>> gbbs_bfs(const Graph& g, const Graph& gt,
                                               const AlgoOptions& opt);
RunReport<std::vector<std::uint32_t>> gapbs_bfs(const Graph& g, const Graph& gt,
                                                const AlgoOptions& opt);
RunReport<std::vector<std::uint32_t>> pasgal_bfs(const Graph& g,
                                                 const Graph& gt,
                                                 const AlgoOptions& opt);

// Batch entry point: validates the source list (check_batch_sources, typed
// kUsage), runs the bit-parallel kernel once, and slices the result into one
// RunReport per source (amortized seconds; the shared sweep's telemetry is
// batch-level — see BatchReport in options.h).
BatchReport<std::vector<std::uint32_t>> ms_bfs(const Graph& g, const Graph& gt,
                                               const BatchOptions& opt);

}  // namespace pasgal
