// Breadth-first search: PASGAL's VGC algorithm and the paper's baselines.
//
// All variants return the vector of hop distances from `source`
// (kInfDist for unreachable vertices), so they are directly comparable.
//
//  * seq_bfs     — the paper's sequential baseline: queue-based BFS.
//  * gbbs_bfs    — GBBS-style level-synchronous edge_map BFS with
//                  sparse/dense direction optimization.
//  * gapbs_bfs   — GAPBS-style direction-optimizing BFS (Beamer's alpha/beta
//                  hysteresis controller).
//  * pasgal_bfs  — this paper: hash-bag frontiers, vertical granularity
//                  control with multi-frontier (2^i) distance buckets, and
//                  direction optimization on clean dense levels (§2.2).
#pragma once

#include <cstdint>
#include <vector>

#include "graphs/graph.h"
#include "pasgal/cancel.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"
#include "pasgal/vgc.h"

namespace pasgal {

inline constexpr std::uint32_t kInfDist = static_cast<std::uint32_t>(-1);

std::vector<std::uint32_t> seq_bfs(const Graph& g, VertexId source,
                                   RunStats* stats = nullptr);

// `gt` is the transpose (pass g itself for symmetric graphs); needed for the
// dense (pull) direction. `cancel`, when non-null, is checked at every
// level boundary (throws kTimeout on expiry).
std::vector<std::uint32_t> gbbs_bfs(const Graph& g, const Graph& gt,
                                    VertexId source, RunStats* stats = nullptr,
                                    const CancelToken* cancel = nullptr);

struct GapbsParams {
  int alpha = 15;  // switch to bottom-up when frontier edges > remaining/alpha
  int beta = 18;   // switch back to top-down when |frontier| < n/beta
};
std::vector<std::uint32_t> gapbs_bfs(const Graph& g, const Graph& gt,
                                     VertexId source, GapbsParams params = {},
                                     RunStats* stats = nullptr);

struct PasgalBfsParams {
  VgcParams vgc;
  // Engage VGC only when the frontier's work is below vgc_engage_factor*tau
  // edge operations — i.e. when per-round work is too small to amortize
  // scheduling on a many-core machine. Deliberately NOT scaled by the
  // current worker count: the algorithm's round structure should not change
  // with the machine it happens to run on.
  std::uint32_t vgc_engage_factor = 16;
  // Direction-optimization density threshold (frontier work > m/den).
  EdgeId dense_threshold_den = 20;
  bool use_dense = true;
  // Checked at every round boundary (sparse rounds and dense levels);
  // throws kTimeout on expiry. Null disables the check.
  const CancelToken* cancel = nullptr;
};
std::vector<std::uint32_t> pasgal_bfs(const Graph& g, const Graph& gt,
                                      VertexId source,
                                      PasgalBfsParams params = {},
                                      RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
// Source, tuning knobs and tracer come from AlgoOptions; the result bundles
// the distances with wall time and the run's aggregated telemetry.
RunReport<std::vector<std::uint32_t>> seq_bfs(const Graph& g,
                                              const AlgoOptions& opt);
RunReport<std::vector<std::uint32_t>> gbbs_bfs(const Graph& g, const Graph& gt,
                                               const AlgoOptions& opt);
RunReport<std::vector<std::uint32_t>> gapbs_bfs(const Graph& g, const Graph& gt,
                                                const AlgoOptions& opt);
RunReport<std::vector<std::uint32_t>> pasgal_bfs(const Graph& g,
                                                 const Graph& gt,
                                                 const AlgoOptions& opt);

}  // namespace pasgal
