#include <atomic>

#include "algorithms/bfs/bfs.h"
#include "pasgal/edge_map.h"

namespace pasgal {

// GAPBS-style direction-optimizing BFS (Beamer et al., SC'12): top-down
// (push) by default; bottom-up (pull) when the frontier's unexplored edge
// count exceeds remaining/alpha; back to top-down when the frontier shrinks
// below n/beta. Still one global synchronization per level.
std::vector<std::uint32_t> gapbs_bfs(const Graph& g, const Graph& gt,
                                     VertexId source, GapbsParams params,
                                     RunStats* stats) {
  // The bottom-up loop below indexes in_frontier[u] with raw gt targets
  // (it bypasses edge_map and its validation choke point), so un-deep-
  // validated mmap handles are checked here.
  g.ensure_validated();
  gt.ensure_validated();
  std::size_t n = g.num_vertices();
  std::vector<std::atomic<std::uint32_t>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  VertexSubset frontier = VertexSubset::single(n, source);
  std::uint32_t level = 0;
  bool bottom_up = false;
  // Edges not yet scanned from settled vertices — GAPBS's alpha signal.
  EdgeId edges_remaining = g.num_edges();

  while (!frontier.empty()) {
    if (stats) stats->end_round(frontier.size());
    ++level;
    EdgeId frontier_edges = frontier.out_degree_sum(g);
    if (!bottom_up &&
        frontier_edges > edges_remaining / static_cast<EdgeId>(params.alpha)) {
      bottom_up = true;
    } else if (bottom_up &&
               frontier.size() < n / static_cast<std::size_t>(params.beta)) {
      bottom_up = false;
    }
    edges_remaining -= std::min(edges_remaining, frontier_edges);

    auto cond = [&](VertexId v) {
      return dist[v].load(std::memory_order_relaxed) == kInfDist;
    };
    if (bottom_up) {
      frontier.to_dense();
      const auto& in_frontier = frontier.dense_mask();
      std::vector<std::uint8_t> next(n, 0);
      parallel_for(0, n, [&](std::size_t vi) {
        VertexId v = static_cast<VertexId>(vi);
        if (!cond(v)) return;
        std::uint64_t scanned = 0;
        for (VertexId u : gt.neighbors(v)) {
          ++scanned;
          if (in_frontier[u]) {
            dist[v].store(level, std::memory_order_relaxed);
            next[vi] = 1;
            break;
          }
        }
        if (stats) stats->add_edges(scanned);
      });
      if (stats) stats->add_visits(n);
      frontier = VertexSubset::dense(std::move(next));
    } else {
      auto update = [&](VertexId, VertexId v) {
        std::uint32_t expected = kInfDist;
        return dist[v].compare_exchange_strong(expected, level,
                                               std::memory_order_relaxed);
      };
      EdgeMapOptions opt;
      opt.allow_dense = false;  // direction decided above, not by edge_map
      frontier = edge_map(g, gt, frontier, update, update, cond, opt, stats);
    }
  }

  std::vector<std::uint32_t> out(n);
  parallel_for(0, n, [&](std::size_t i) {
    out[i] = dist[i].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace pasgal
