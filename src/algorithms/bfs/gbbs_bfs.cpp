#include <atomic>

#include "algorithms/bfs/bfs.h"
#include "pasgal/edge_map.h"

namespace pasgal {

// GBBS-style BFS: level-synchronous edge_map with automatic sparse/dense
// switching. One global synchronization per level — the O(D) rounds the
// paper identifies as the large-diameter bottleneck.
std::vector<std::uint32_t> gbbs_bfs(const Graph& g, const Graph& gt,
                                    VertexId source, RunStats* stats,
                                    const CancelToken* cancel) {
  std::size_t n = g.num_vertices();
  std::vector<std::atomic<std::uint32_t>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  VertexSubset frontier = VertexSubset::single(n, source);
  std::uint32_t level = 0;
  while (!frontier.empty()) {
    if (stats) stats->end_round(frontier.size());
    ++level;
    auto update = [&](VertexId, VertexId v) {
      std::uint32_t expected = kInfDist;
      return dist[v].compare_exchange_strong(expected, level,
                                             std::memory_order_relaxed);
    };
    auto update_seq = [&](VertexId, VertexId v) {
      // Dense mode: v is scanned by a single task; no CAS needed.
      if (dist[v].load(std::memory_order_relaxed) == kInfDist) {
        dist[v].store(level, std::memory_order_relaxed);
        return true;
      }
      return false;
    };
    auto cond = [&](VertexId v) {
      return dist[v].load(std::memory_order_relaxed) == kInfDist;
    };
    EdgeMapOptions emopt;
    emopt.cancel = cancel;
    frontier = edge_map(g, gt, frontier, update, update_seq, cond, emopt,
                        stats);
  }

  std::vector<std::uint32_t> out(n);
  parallel_for(0, n, [&](std::size_t i) {
    out[i] = dist[i].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace pasgal
