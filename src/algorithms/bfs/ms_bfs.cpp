// Bit-parallel multi-source BFS (MS-BFS, in the style of Then et al.,
// VLDB'14), on PASGAL's frontier substrate.
//
// State per vertex: `seen` — the set of sources (one bit each) that have
// reached it at any completed level — and `visit` — the bits that arrived
// exactly last level, i.e. what the vertex pushes this round. A round is one
// shared sweep for the whole batch:
//
//   sparse (push):  for each frontier vertex u, OR (visit[u] & ~seen[v])
//                   into next[v] for every out-neighbour v; the first push
//                   that touches a vertex inserts it into a hash bag, which
//                   the round extracts as the next frontier (the pasgal_bfs
//                   idiom: footprint proportional to the frontier, no O(n)
//                   pack).
//   dense (pull):   every vertex whose mask is not yet saturated scans its
//                   in-neighbours through edge_map_dense, AND-NOT-ing their
//                   visit masks against its own seen bits. `pull_exhaustive`
//                   is essential: unlike single-source BFS, one hit does not
//                   decide the vertex — bits keep arriving from later
//                   in-neighbours at this same level, and stopping early
//                   would push those sources' arrival to a later (wrong)
//                   level.
//
// The round boundary settles each touched vertex exactly once: the freshly
// gathered bits become this level's distances for the corresponding sources,
// are merged into `seen`, and become the vertex's `visit` mask for the next
// round. `seen` is stable within a round, so pushes race only on the
// monotone next[] fetch_or — re-ORs of already-pending bits are idempotent.
//
// Hop distances are unique, so a batch of k sources is byte-identical to k
// independent single-source runs (the equivalence suite in test_ms_bfs.cpp
// holds this against pasgal_bfs across the fuzz-corpus graph families).
#include <atomic>
#include <bit>

#include "algorithms/bfs/bfs.h"
#include "pasgal/edge_map.h"
#include "pasgal/hashbag.h"
#include "pasgal/options.h"

namespace pasgal {

std::vector<std::vector<std::uint32_t>> ms_bfs(const Graph& g, const Graph& gt,
                                               std::span<const VertexId> sources,
                                               MsBfsParams params,
                                               RunStats* stats) {
  check_batch_sources(sources, g.num_vertices());
  g.ensure_validated();
  gt.ensure_validated();

  std::size_t n = g.num_vertices();
  std::size_t k = sources.size();
  EdgeId m = g.num_edges();
  std::uint64_t full =
      k == 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << k) - 1;

  std::vector<std::atomic<std::uint64_t>> seen(n);
  std::vector<std::atomic<std::uint64_t>> next(n);
  std::vector<std::uint64_t> visit(n);
  parallel_for(0, n, [&](std::size_t i) {
    seen[i].store(0, std::memory_order_relaxed);
    next[i].store(0, std::memory_order_relaxed);
    visit[i] = 0;
  });

  std::vector<std::vector<std::uint32_t>> out(k);
  parallel_for(0, k, [&](std::size_t i) {
    out[i].assign(n, kInfDist);
  }, 1);

  for (std::size_t i = 0; i < k; ++i) {
    VertexId s = sources[i];
    seen[s].store(seen[s].load(std::memory_order_relaxed) |
                      (std::uint64_t{1} << i),
                  std::memory_order_relaxed);
    visit[s] |= std::uint64_t{1} << i;
    out[i][s] = 0;
  }
  VertexSubset frontier =
      VertexSubset::sparse(n, {sources.begin(), sources.end()});

  HashBag<VertexId> bag;
  if (stats) bag.attach_tracer(stats);

  std::uint32_t level = 0;
  while (!frontier.empty()) {
    if (params.cancel != nullptr) {
      params.cancel->check("ms_bfs round boundary");
    }
    if (stats) stats->end_round(frontier.size());
    ++level;

    // A vertex stays eligible while some source has neither reached it nor
    // already queued a bit for it this round.
    auto cond = [&](VertexId v) {
      return (seen[v].load(std::memory_order_relaxed) |
              next[v].load(std::memory_order_relaxed)) != full;
    };

    EdgeId work = frontier.out_degree_sum(g) + frontier.size();
    bool go_dense =
        params.use_dense && work > m / params.dense_threshold_den;
    VertexSubset activated = VertexSubset::empty(n);
    if (go_dense) {
      // Pull: v is scanned by a single task, so next[v] needs no CAS. The
      // activation signal (first bits queued for v) feeds the trusted
      // activation count inside edge_map_dense.
      auto update_seq = [&](VertexId u, VertexId v) {
        std::uint64_t add =
            visit[u] & ~seen[v].load(std::memory_order_relaxed);
        if (add == 0) return false;
        std::uint64_t old = next[v].load(std::memory_order_relaxed);
        next[v].store(old | add, std::memory_order_relaxed);
        return old == 0;
      };
      EdgeMapOptions emopt;
      emopt.cancel = params.cancel;
      emopt.pull_exhaustive = true;
      activated = edge_map_dense(g, gt, frontier, update_seq, cond, emopt,
                                 stats);
    } else {
      // Push: OR the frontier masks through the hash bag — exactly one
      // insert per newly touched vertex (the fetch_or's first setter wins).
      if (stats) stats->set_round_kind(RoundKind::kSparse);
      frontier.to_sparse();
      const auto& verts = frontier.sparse_vertices();
      parallel_for(0, verts.size(), [&](std::size_t i) {
        VertexId u = verts[i];
        std::uint64_t mask = visit[u];
        std::uint64_t scanned = 0;
        for (VertexId v : g.neighbors(u)) {
          ++scanned;
          std::uint64_t add =
              mask & ~seen[v].load(std::memory_order_relaxed);
          if (add == 0) continue;
          if (next[v].fetch_or(add, std::memory_order_relaxed) == 0) {
            bag.insert(v);
          }
        }
        if (stats) {
          stats->add_edges(scanned);
          stats->add_visits(1);
        }
      });
      activated = VertexSubset::sparse(n, bag.extract_all());
    }

    // Settle at the round boundary: each touched vertex's fresh bits become
    // this level's distances and its visit mask for the next round. next[]
    // holds only bits absent from seen (both directions filtered against the
    // round-stable seen), so the exchange is exactly the new arrivals.
    auto settle = [&](VertexId v) {
      std::uint64_t fresh = next[v].exchange(0, std::memory_order_relaxed);
      seen[v].fetch_or(fresh, std::memory_order_relaxed);
      visit[v] = fresh;
      while (fresh != 0) {
        int b = std::countr_zero(fresh);
        fresh &= fresh - 1;
        out[static_cast<std::size_t>(b)][v] = level;
      }
    };
    if (activated.is_dense()) {
      const auto& mask = activated.dense_mask();
      parallel_for(0, n, [&](std::size_t vi) {
        if (mask[vi]) settle(static_cast<VertexId>(vi));
      });
    } else {
      const auto& verts = activated.sparse_vertices();
      parallel_for(0, verts.size(),
                   [&](std::size_t i) { settle(verts[i]); });
    }
    frontier = std::move(activated);
  }
  return out;
}

}  // namespace pasgal
