#include <atomic>
#include <bit>
#include <memory>

#include "algorithms/bfs/bfs.h"
#include "pasgal/hashbag.h"

namespace pasgal {

namespace {

// Multi-frontier bucket index (§2.2): bucket 0 holds vertices at the current
// base distance; bucket j>=1 holds vertices ~2^(j-1) hops ahead. Entries are
// re-bucketed (strictly downward) as the base advances, so a vertex moves
// through O(log D) buckets.
constexpr int kNumBuckets = 34;

int bucket_for(std::uint32_t gap) {
  if (gap == 0) return 0;
  int b = 1 + (31 - std::countl_zero(gap));
  return b < kNumBuckets ? b : kNumBuckets - 1;
}

std::uint64_t encode(VertexId v, std::uint32_t d) {
  return (static_cast<std::uint64_t>(d) << 32) | v;
}
VertexId entry_vertex(std::uint64_t e) { return static_cast<VertexId>(e); }
std::uint32_t entry_dist(std::uint64_t e) {
  return static_cast<std::uint32_t>(e >> 32);
}

}  // namespace

// PASGAL BFS (§2.2): label-correcting BFS over hash-bag frontiers.
//  * Sparse rounds run VGC local searches (budget tau) when the frontier is
//    small, or one-hop expansion (tau=1) when it already has parallelism.
//  * Entries carry the tentative distance they were enqueued with; stale
//    entries are skipped (a vertex may be visited more than once — the extra
//    work the paper accepts in exchange for fewer rounds).
//  * On clean dense levels, direction-optimized pull rounds take over, as in
//    the best low-diameter BFS implementations.
std::vector<std::uint32_t> pasgal_bfs(const Graph& g, const Graph& gt,
                                      VertexId source, PasgalBfsParams params,
                                      RunStats* stats) {
  std::size_t n = g.num_vertices();
  std::size_t m = g.num_edges();
  std::vector<std::atomic<std::uint32_t>> dist(n);
  parallel_for(0, n, [&](std::size_t i) {
    dist[i].store(kInfDist, std::memory_order_relaxed);
  });
  dist[source].store(0, std::memory_order_relaxed);

  std::vector<std::unique_ptr<HashBag<std::uint64_t>>> bags;
  bags.reserve(kNumBuckets);
  for (int b = 0; b < kNumBuckets; ++b) {
    bags.push_back(std::make_unique<HashBag<std::uint64_t>>(8));
    if (stats) bags.back()->attach_tracer(stats);
  }
  bags[0]->insert(encode(source, 0));

  const EdgeId dense_limit =
      m / static_cast<EdgeId>(params.dense_threshold_den) + 1;
  // VGC applies throughout the sparse regime: any frontier below the density
  // threshold is scheduling-bound on a many-core machine, which is exactly
  // what local searches amortize. (vgc_engage_factor*tau acts as a floor so
  // tiny tau values still engage near the source.)
  const std::uint64_t vgc_limit =
      std::max<std::uint64_t>(static_cast<std::uint64_t>(params.vgc.tau) *
                                  params.vgc_engage_factor,
                              dense_limit);

  for (;;) {
    if (params.cancel != nullptr) params.cancel->check("pasgal_bfs round");
    // Lowest non-empty bucket drives the next round.
    int lowest = -1;
    for (int b = 0; b < kNumBuckets; ++b) {
      if (!bags[b]->empty()) {
        lowest = b;
        break;
      }
    }
    if (lowest < 0) break;

    auto entries = bags[lowest]->extract_all();
    auto valid = filter(std::span<const std::uint64_t>(entries),
                        [&](std::uint64_t e) {
                          return dist[entry_vertex(e)].load(
                                     std::memory_order_relaxed) == entry_dist(e);
                        });
    if (valid.empty()) continue;

    std::uint32_t base = reduce_indexed<std::uint32_t>(
        valid.size(), kInfDist,
        [](std::uint32_t a, std::uint32_t b) { return a < b ? a : b; },
        [&](std::size_t i) { return entry_dist(valid[i]); });
    std::uint32_t max_dist = reduce_indexed<std::uint32_t>(
        valid.size(), 0,
        [](std::uint32_t a, std::uint32_t b) { return a < b ? b : a; },
        [&](std::size_t i) { return entry_dist(valid[i]); });

    // The whole bucket is processed at once: its entries span at most a 2x
    // distance range (§2.2 — "frontier i maintains vertices with distance
    // 2^i from the current frontier"), so none of them is too "unready",
    // and deferring them would reintroduce one round per level.
    std::vector<std::uint64_t> ready = std::move(valid);

    EdgeId ready_work =
        reduce_indexed<EdgeId>(ready.size(), 0, std::plus<EdgeId>{},
                               [&](std::size_t i) {
                                 return g.out_degree(entry_vertex(ready[i]));
                               }) +
        ready.size();

    // Dense mode needs a clean single-level frontier with no other pending
    // entries (see the level-by-level argument in the function comment).
    bool bags_quiet = max_dist == base;
    if (bags_quiet) {
      for (int b = 0; b < kNumBuckets; ++b) {
        if (!bags[b]->empty()) {
          bags_quiet = false;
          break;
        }
      }
    }

    // --- Dense (direction-optimized) phase -------------------------------
    if (params.use_dense && bags_quiet && ready_work > dense_limit) {
      std::uint32_t level = base;
      for (;;) {
        if (params.cancel != nullptr) {
          params.cancel->check("pasgal_bfs dense level");
        }
        // Frontier by value: every vertex currently at `level`.
        std::vector<std::uint8_t> frontier(n);
        parallel_for(0, n, [&](std::size_t v) {
          frontier[v] =
              dist[v].load(std::memory_order_relaxed) == level ? 1 : 0;
        });
        std::size_t fsize = count_if_index(
            n, [&](std::size_t v) { return frontier[v] != 0; });
        if (fsize == 0) break;
        EdgeId fwork = reduce_indexed<EdgeId>(
                           n, 0, std::plus<EdgeId>{},
                           [&](std::size_t v) {
                             return frontier[v]
                                        ? g.out_degree(static_cast<VertexId>(v))
                                        : 0;
                           }) +
                       fsize;
        if (fwork <= dense_limit) {
          // Hand the frontier back to the sparse machinery.
          parallel_for(0, n, [&](std::size_t v) {
            if (frontier[v]) {
              bags[0]->insert(encode(static_cast<VertexId>(v), level));
            }
          });
          break;
        }
        if (stats) stats->end_round(fsize, RoundKind::kDense);
        std::uint32_t next_level = level + 1;
        parallel_for(0, n, [&](std::size_t vi) {
          VertexId v = static_cast<VertexId>(vi);
          if (dist[v].load(std::memory_order_relaxed) <= next_level) return;
          std::uint64_t scanned = 0;
          for (VertexId u : gt.neighbors(v)) {
            ++scanned;
            if (dist[u].load(std::memory_order_relaxed) == level) {
              dist[v].store(next_level, std::memory_order_relaxed);
              break;
            }
          }
          if (stats) stats->add_edges(scanned);
        });
        if (stats) stats->add_visits(fsize);
        level = next_level;
      }
      continue;
    }

    // --- Sparse phase: VGC local searches (tau=1 when already parallel) ---
    VgcParams vgc = params.vgc;
    if (ready_work >= vgc_limit) vgc.tau = 1;
    if (stats) {
      stats->end_round(ready.size(),
                       vgc.tau > 1 ? RoundKind::kLocal : RoundKind::kSparse);
    }
    parallel_for(
        0, ready.size(),
        [&](std::size_t i) {
          VertexId root = entry_vertex(ready[i]);
          std::uint32_t root_dist = entry_dist(ready[i]);
          std::uint64_t edges = 0;
          local_search_dist(
              root, root_dist, vgc,
              [&](VertexId u, std::uint32_t du, auto&& emit) {
                if (dist[u].load(std::memory_order_relaxed) != du) return;
                std::uint32_t nd = du + 1;
                for (VertexId v : g.neighbors(u)) {
                  ++edges;
                  if (write_min(dist[v], nd)) emit(v, nd);
                }
              },
              [&](VertexId v, std::uint32_t d) {
                bags[bucket_for(d - base)]->insert(encode(v, d));
              },
              stats);
          if (stats) stats->add_edges(edges);
        },
        1);
  }

  std::vector<std::uint32_t> out(n);
  parallel_for(0, n, [&](std::size_t i) {
    out[i] = dist[i].load(std::memory_order_relaxed);
  });
  return out;
}

}  // namespace pasgal
