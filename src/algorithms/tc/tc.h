// Triangle counting on symmetrized graphs by sorted-adjacency intersection.
//
// Both kernels orient the graph into a degree-ordered DAG first (keep edge
// u->v iff (deg(u), u) < (deg(v), v)): every triangle then appears exactly
// once, as the wedge u->v, u->w with v->w, and each directed list's length is
// bounded by O(sqrt(m)) on any graph — the classic work bound. The v2
// compressed decoder and every CSR builder in graphs/ guarantee sorted
// adjacency lists, so the filtered DAG lists are sorted for free and each
// wedge closes with one sorted-list intersection.
//
//  * seq_tc    — sequential merge intersections; the test reference.
//  * pasgal_tc — parallel over DAG sources with a merge-vs-binary-search
//                hybrid per intersection: when one list is more than
//                kTcBinarySearchRatio times longer than the other, binary-
//                searching the short list's entries into the long one beats
//                the linear merge (|short| * log|long| < |short| + |long|).
//
// Both need whole-graph adjacency access (random access into the DAG
// lists), so sharded opens are rejected upstream with a typed kUsage error.
#pragma once

#include <cstdint>

#include "graphs/graph.h"
#include "pasgal/cancel.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"

namespace pasgal {

// Degree ratio above which an intersection switches from the linear merge to
// binary-searching the shorter list into the longer one.
inline constexpr std::uint64_t kTcBinarySearchRatio = 8;

struct TcParams {
  // Checked between source blocks (the kernel's round boundaries); expiry
  // unwinds with a typed kTimeout before the next block starts.
  const CancelToken* cancel = nullptr;
};

// Number of triangles in the symmetrized input graph. The input must carry
// each undirected edge in both directions (Graph::symmetrize output);
// self-loops are ignored, duplicate edges must already be deduplicated.
std::uint64_t seq_tc(const Graph& g, RunStats* stats = nullptr);
std::uint64_t pasgal_tc(const Graph& g, const TcParams& params = {},
                        RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
RunReport<std::uint64_t> seq_tc(const Graph& g, const AlgoOptions& opt);
RunReport<std::uint64_t> pasgal_tc(const Graph& g, const AlgoOptions& opt);

}  // namespace pasgal
