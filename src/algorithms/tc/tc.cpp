#include "algorithms/tc/tc.h"

#include <algorithm>
#include <vector>

#include "parlay/primitives.h"

namespace pasgal {

namespace {

// Degree-ordered rank: u precedes v iff (deg(u), u) < (deg(v), v). Ties
// break on vertex id, so the order is total and the DAG is well-defined.
inline bool rank_less(const Graph& g, VertexId u, VertexId v) {
  EdgeId du = g.out_degree(u), dv = g.out_degree(v);
  return du != dv ? du < dv : u < v;
}

// Oriented adjacency: for each u, the sorted list of neighbours v with
// rank(u) < rank(v). Sorted-by-id inputs stay sorted under filtering.
struct Dag {
  std::vector<EdgeId> offsets;
  std::vector<VertexId> targets;

  std::span<const VertexId> list(VertexId u) const {
    return {targets.data() + offsets[u],
            static_cast<std::size_t>(offsets[u + 1] - offsets[u])};
  }
};

Dag build_dag(const Graph& g) {
  std::size_t n = g.num_vertices();
  Dag dag;
  std::vector<EdgeId> degree(n);
  parallel_for(0, n, [&](std::size_t u) {
    EdgeId kept = 0;
    for (VertexId v : g.neighbors(static_cast<VertexId>(u))) {
      if (v != u && rank_less(g, static_cast<VertexId>(u), v)) ++kept;
    }
    degree[u] = kept;
  });
  dag.offsets.resize(n + 1);
  dag.offsets[n] = scan_indexed<EdgeId>(
      n, [&](std::size_t u) { return degree[u]; },
      [&](std::size_t u, EdgeId x) { dag.offsets[u] = x; });
  dag.targets.resize(dag.offsets[n]);
  parallel_for(0, n, [&](std::size_t u) {
    EdgeId out = dag.offsets[u];
    for (VertexId v : g.neighbors(static_cast<VertexId>(u))) {
      if (v != u && rank_less(g, static_cast<VertexId>(u), v)) {
        dag.targets[out++] = v;
      }
    }
  });
  return dag;
}

std::uint64_t merge_intersect(std::span<const VertexId> a,
                              std::span<const VertexId> b) {
  std::uint64_t count = 0;
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

std::uint64_t search_intersect(std::span<const VertexId> small,
                               std::span<const VertexId> big) {
  std::uint64_t count = 0;
  for (VertexId v : small) {
    count += std::binary_search(big.begin(), big.end(), v) ? 1 : 0;
  }
  return count;
}

// Merge-vs-binary-search hybrid keyed on the list-length ratio.
std::uint64_t hybrid_intersect(std::span<const VertexId> a,
                               std::span<const VertexId> b) {
  if (a.size() > b.size()) std::swap(a, b);
  if (a.empty()) return 0;
  if (b.size() / a.size() >= kTcBinarySearchRatio) {
    return search_intersect(a, b);
  }
  return merge_intersect(a, b);
}

// One vertex's wedge closures: intersect its DAG list with each DAG
// neighbour's list. `scanned` counts list elements read, for telemetry.
template <typename Intersect>
std::uint64_t count_from(const Dag& dag, VertexId u, const Intersect& inter,
                         std::uint64_t& scanned) {
  std::uint64_t local = 0;
  std::span<const VertexId> lu = dag.list(u);
  for (VertexId v : lu) {
    std::span<const VertexId> lv = dag.list(v);
    scanned += lu.size() + lv.size();
    local += inter(lu, lv);
  }
  return local;
}

}  // namespace

std::uint64_t seq_tc(const Graph& g, RunStats* stats) {
  std::size_t n = g.num_vertices();
  Dag dag = build_dag(g);
  std::uint64_t triangles = 0;
  std::uint64_t scanned = 0;
  for (VertexId u = 0; u < n; ++u) {
    triangles += count_from(dag, u, merge_intersect, scanned);
  }
  if (stats) {
    stats->add_edges(scanned);
    stats->add_visits(n);
    stats->end_round(n);
  }
  return triangles;
}

std::uint64_t pasgal_tc(const Graph& g, const TcParams& params,
                        RunStats* stats) {
  std::size_t n = g.num_vertices();
  Dag dag = build_dag(g);
  // Sources are processed in blocks: the block boundary is where the round
  // master checks the deadline and records a round, so a server query on a
  // huge graph still honours its deadline mid-count.
  constexpr std::size_t kBlock = 1 << 16;
  std::uint64_t triangles = 0;
  for (std::size_t lo = 0; lo < n; lo += kBlock) {
    if (params.cancel != nullptr) {
      params.cancel->check("tc block boundary");
    }
    std::size_t hi = std::min(n, lo + kBlock);
    triangles += reduce_indexed<std::uint64_t>(
        hi - lo, 0, std::plus<std::uint64_t>{}, [&](std::size_t rel) {
          VertexId u = static_cast<VertexId>(lo + rel);
          std::uint64_t scanned = 0;
          std::uint64_t local =
              count_from(dag, u, hybrid_intersect, scanned);
          if (stats) {
            stats->add_edges(scanned);
            stats->add_visits(1);
          }
          return local;
        });
    if (stats) stats->end_round(hi - lo, RoundKind::kLocal);
  }
  return triangles;
}

}  // namespace pasgal
