// Low-diameter decomposition (Miller-Peng-Xu) and LDD-based connectivity —
// the substrate GBBS's connectivity is built on, included both for
// completeness and as the round-count foil to the union-find CC
// (LDD needs O(log n / beta) BFS-like rounds; union-find needs one pass).
//
// ldd(g, beta): partitions V into clusters, each of O(log n / beta) diameter
// w.h.p., such that at most ~beta*m edges cross clusters. Every vertex v
// draws a start delay ~ Exponential(beta); cluster centres wake when their
// delay elapses and grow level-synchronously, claiming unclaimed vertices.
//
// ldd_cc(g): contract clusters and repeat until no edges remain — the
// classic O((n+m) log n)-work, polylog-span parallel connectivity.
#pragma once

#include <vector>

#include "graphs/graph.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"

namespace pasgal {

struct LddResult {
  // cluster[v] = centre vertex of v's cluster.
  std::vector<VertexId> cluster;
  std::size_t num_clusters = 0;
  std::size_t rounds = 0;
};

LddResult ldd(const Graph& g, double beta = 0.2, std::uint64_t seed = 1,
              RunStats* stats = nullptr);

// Connectivity labels (min vertex per component, same contract as
// connected_components) computed by repeated LDD + contraction.
std::vector<VertexId> ldd_cc(const Graph& g, double beta = 0.2,
                             std::uint64_t seed = 1, RunStats* stats = nullptr);

// --- Modern entry point (algorithms/run_api.cpp) ----------------------------
// beta/seed ride AlgoOptions::scc_beta / scc_seed (the same knobs the SCC
// pivot batching uses).
RunReport<std::vector<VertexId>> ldd_cc(const Graph& g, const AlgoOptions& opt);

}  // namespace pasgal
