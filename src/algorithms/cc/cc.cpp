#include "algorithms/cc/cc.h"

#include <atomic>

#include "parlay/primitives.h"

namespace pasgal {

namespace {

// Path-halving find on an atomic parent array. Safe under concurrent unions:
// parents only ever decrease (roots link to smaller ids), so every step makes
// progress toward a smaller-rooted tree.
VertexId find_root(std::vector<std::atomic<VertexId>>& parent, VertexId v) {
  VertexId p = parent[v].load(std::memory_order_relaxed);
  while (p != v) {
    VertexId gp = parent[p].load(std::memory_order_relaxed);
    parent[v].compare_exchange_weak(p, gp, std::memory_order_relaxed);
    v = p;
    p = parent[v].load(std::memory_order_relaxed);
  }
  return v;
}

// Attempts to merge the components of u and v; returns true iff this call
// performed the union (then (u,v) is a spanning-forest edge).
bool unite(std::vector<std::atomic<VertexId>>& parent, VertexId u, VertexId v) {
  for (;;) {
    VertexId ru = find_root(parent, u);
    VertexId rv = find_root(parent, v);
    if (ru == rv) return false;
    if (ru < rv) std::swap(ru, rv);  // link larger root under smaller
    VertexId expected = ru;
    if (parent[ru].compare_exchange_strong(expected, rv,
                                           std::memory_order_relaxed)) {
      return true;
    }
  }
}

}  // namespace

ConnectivityResult connected_components(const Graph& g, RunStats* stats) {
  // Manual CSR walk below (edge_target, unchecked unions indexed by target):
  // an un-deep-validated mmap open must fail typed here, not out of bounds.
  g.ensure_validated();
  std::size_t n = g.num_vertices();
  std::size_t m = g.num_edges();
  std::vector<std::atomic<VertexId>> parent(n);
  parallel_for(0, n, [&](std::size_t i) {
    parent[i].store(static_cast<VertexId>(i), std::memory_order_relaxed);
  });

  // Forest edges marked per source edge slot, then packed.
  std::vector<std::uint8_t> is_forest(m, 0);
  parallel_for(0, n, [&](std::size_t u) {
    for (EdgeId e = g.edge_begin(static_cast<VertexId>(u));
         e < g.edge_end(static_cast<VertexId>(u)); ++e) {
      VertexId v = g.edge_target(e);
      if (v == u) continue;
      if (unite(parent, static_cast<VertexId>(u), v)) is_forest[e] = 1;
    }
  });
  if (stats) {
    stats->add_edges(m);
    stats->add_visits(n);
    stats->end_round(n);
  }

  ConnectivityResult result;
  result.label.resize(n);
  parallel_for(0, n, [&](std::size_t v) {
    result.label[v] = find_root(parent, static_cast<VertexId>(v));
  });
  result.forest = pack_indexed<Edge>(
      m, [&](std::size_t e) { return is_forest[e] != 0; },
      [&](std::size_t e) {
        // Recover the source of edge e by binary search over offsets.
        auto offsets = g.offsets();
        std::size_t lo = 0, hi = n;
        while (lo + 1 < hi) {
          std::size_t mid = (lo + hi) / 2;
          if (offsets[mid] <= e) {
            lo = mid;
          } else {
            hi = mid;
          }
        }
        return Edge{static_cast<VertexId>(lo), g.edge_target(e)};
      });
  result.num_components = count_distinct_labels(result.label);
  return result;
}

std::vector<VertexId> label_prop_cc(const Graph& g, RunStats* stats) {
  // Classic synchronous min-label propagation: every round each vertex takes
  // the minimum of its own and its neighbours' previous-round labels. Needs
  // O(D) rounds — the per-round global synchronization cost the paper's
  // techniques eliminate; kept as the ablation baseline.
  g.ensure_validated();  // label[v] indexing below trusts targets < n
  std::size_t n = g.num_vertices();
  auto label = tabulate(n, [](std::size_t i) { return static_cast<VertexId>(i); });
  std::vector<VertexId> next(n);
  for (;;) {
    std::atomic<bool> changed{false};
    parallel_for(0, n, [&](std::size_t u) {
      VertexId best = label[u];
      for (VertexId v : g.neighbors(static_cast<VertexId>(u))) {
        best = std::min(best, label[v]);
      }
      next[u] = best;
      if (best != label[u]) changed.store(true, std::memory_order_relaxed);
    });
    std::swap(label, next);
    if (stats) {
      stats->add_edges(g.num_edges());
      stats->end_round(n);
    }
    if (!changed.load(std::memory_order_relaxed)) break;
  }
  return label;
}

std::size_t count_distinct_labels(std::span<const VertexId> labels) {
  // Labels are component minima, hence fixpoints: label[label[v]] == label[v].
  return count_if_index(labels.size(), [&](std::size_t v) {
    return labels[v] == static_cast<VertexId>(v);
  });
}

}  // namespace pasgal
