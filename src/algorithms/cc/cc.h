// Connected components on undirected (or symmetrized) graphs.
//
//  * connected_components — lock-free concurrent union-find (link higher-
//    indexed root under lower, path-halving finds). Also emits an arbitrary
//    spanning forest: the edges whose union call merged two components.
//    Used as a building block by SCC trimming and FAST-BCC.
//  * label_prop_cc — classic label-propagation baseline (O(D) rounds), kept
//    for the ablation benches: it exhibits exactly the round-count blowup on
//    large-diameter graphs that the paper targets.
#pragma once

#include <vector>

#include "graphs/graph.h"
#include "pasgal/options.h"
#include "pasgal/stats.h"

namespace pasgal {

struct ConnectivityResult {
  // label[v] = smallest vertex id in v's component.
  std::vector<VertexId> label;
  // Edges of an arbitrary spanning forest (n - #components of them).
  std::vector<Edge> forest;
  std::size_t num_components = 0;
};

// Treats every directed edge {u,v} as undirected. Work O(m alpha(n)).
ConnectivityResult connected_components(const Graph& g,
                                        RunStats* stats = nullptr);

// Label propagation: rounds of min-label exchange until fixpoint. Returns
// min-vertex labels like connected_components (no forest).
std::vector<VertexId> label_prop_cc(const Graph& g, RunStats* stats = nullptr);

// --- Modern entry points (algorithms/run_api.cpp) ---------------------------
RunReport<ConnectivityResult> connected_components(const Graph& g,
                                                   const AlgoOptions& opt);
RunReport<std::vector<VertexId>> label_prop_cc(const Graph& g,
                                               const AlgoOptions& opt);

// Number of distinct labels (helper shared by CC/SCC/BCC consumers).
std::size_t count_distinct_labels(std::span<const VertexId> labels);

}  // namespace pasgal
