#include "algorithms/cc/ldd.h"

#include <atomic>
#include <cmath>

#include "parlay/hash_rng.h"
#include "parlay/primitives.h"

namespace pasgal {

LddResult ldd(const Graph& g, double beta, std::uint64_t seed, RunStats* stats) {
  g.ensure_validated();  // cluster[v] CAS below indexes unchecked targets
  std::size_t n = g.num_vertices();
  Random rng(seed);

  // Integer start delays ~ floor(Exponential(beta)), capped so termination
  // never depends on the tail of the distribution.
  std::uint32_t cap =
      static_cast<std::uint32_t>(4.0 * std::log(static_cast<double>(n) + 2) / beta) + 2;
  std::vector<std::uint32_t> delay(n);
  parallel_for(0, n, [&](std::size_t v) {
    double u = (static_cast<double>(rng.ith_rand(v) >> 11) + 1.0) / 9007199254740993.0;
    double e = -std::log(u) / beta;
    delay[v] = e >= cap ? cap : static_cast<std::uint32_t>(e);
  });

  std::vector<std::atomic<VertexId>> cluster(n);
  parallel_for(0, n, [&](std::size_t v) {
    cluster[v].store(kInvalidVertex, std::memory_order_relaxed);
  });

  std::vector<VertexId> frontier;
  std::size_t claimed = 0;
  std::uint32_t t = 0;
  std::size_t rounds = 0;
  while (claimed < n) {
    // Vertices whose delay elapsed and are still unclaimed become centres.
    auto starters = pack_indexed<VertexId>(
        n,
        [&](std::size_t v) {
          return delay[v] <= t &&
                 cluster[v].load(std::memory_order_relaxed) == kInvalidVertex;
        },
        [&](std::size_t v) { return static_cast<VertexId>(v); });
    for (VertexId v : starters) {
      // Sequentializable: each starter claims itself (no contention — it is
      // unclaimed by definition and no BFS wave runs concurrently).
      cluster[v].store(v, std::memory_order_relaxed);
    }
    claimed += starters.size();
    frontier.insert(frontier.end(), starters.begin(), starters.end());

    if (!frontier.empty()) {
      ++rounds;
      if (stats) stats->end_round(frontier.size());
      std::vector<std::uint8_t> next_mask(n, 0);
      parallel_for(
          0, frontier.size(),
          [&](std::size_t i) {
            VertexId u = frontier[i];
            VertexId cu = cluster[u].load(std::memory_order_relaxed);
            std::uint64_t edges = 0;
            for (VertexId v : g.neighbors(u)) {
              ++edges;
              VertexId expected = kInvalidVertex;
              if (cluster[v].compare_exchange_strong(expected, cu,
                                                     std::memory_order_relaxed)) {
                next_mask[v] = 1;
              }
            }
            if (stats) {
              stats->add_edges(edges);
              stats->add_visits(1);
            }
          },
          1);
      auto next = pack_indexed<VertexId>(
          n, [&](std::size_t v) { return next_mask[v] != 0; },
          [&](std::size_t v) { return static_cast<VertexId>(v); });
      claimed += next.size();
      frontier = std::move(next);
    }
    ++t;
  }

  LddResult result;
  result.cluster = tabulate(n, [&](std::size_t v) {
    return cluster[v].load(std::memory_order_relaxed);
  });
  result.num_clusters = count_if_index(n, [&](std::size_t v) {
    return result.cluster[v] == static_cast<VertexId>(v);
  });
  result.rounds = rounds;
  return result;
}

std::vector<VertexId> ldd_cc(const Graph& g, double beta, std::uint64_t seed,
                             RunStats* stats) {
  g.ensure_validated();  // edge_target() feeds the contraction unchecked
  std::size_t n = g.num_vertices();
  // label[v]: current component representative in the ORIGINAL graph.
  auto label = tabulate(n, [](std::size_t v) { return static_cast<VertexId>(v); });
  Graph current = g;
  std::vector<VertexId> current_to_orig =
      tabulate(n, [](std::size_t v) { return static_cast<VertexId>(v); });

  int iteration = 0;
  while (current.num_edges() > 0) {
    LddResult decomposition = ldd(current, beta, seed + static_cast<std::uint64_t>(iteration), stats);
    ++iteration;
    std::size_t cn = current.num_vertices();
    // Invariant: label[v] is v's vertex id in `current`'s vertex space (on
    // the first iteration current == g, so label[v] == v holds trivially).
    // Dense ids for cluster centres.
    std::vector<VertexId> dense(cn, kInvalidVertex);
    auto centres = pack_indexed<VertexId>(
        cn,
        [&](std::size_t v) {
          return decomposition.cluster[v] == static_cast<VertexId>(v);
        },
        [&](std::size_t v) { return static_cast<VertexId>(v); });
    parallel_for(0, centres.size(), [&](std::size_t i) {
      dense[centres[i]] = static_cast<VertexId>(i);
    });
    // Contract: new vertex per cluster; cross-cluster edges survive.
    std::vector<VertexId> edge_source(current.num_edges());
    parallel_for(0, cn, [&](std::size_t v) {
      for (EdgeId e = current.edge_begin(static_cast<VertexId>(v));
           e < current.edge_end(static_cast<VertexId>(v)); ++e) {
        edge_source[e] = static_cast<VertexId>(v);
      }
    });
    auto cross = pack_indexed<Edge>(
        current.num_edges(),
        [&](std::size_t e) {
          return decomposition.cluster[edge_source[e]] !=
                 decomposition.cluster[current.edge_target(e)];
        },
        [&](std::size_t e) {
          return Edge{dense[decomposition.cluster[edge_source[e]]],
                      dense[decomposition.cluster[current.edge_target(e)]]};
        });
    // Map original vertices through this contraction.
    std::vector<VertexId> new_to_orig(centres.size());
    parallel_for(0, centres.size(), [&](std::size_t i) {
      new_to_orig[i] = current_to_orig[centres[i]];
    });
    // Original label: follow v's current vertex -> its cluster -> dense id.
    // Maintain a map original -> current dense id by composing.
    std::vector<VertexId> orig_to_new(n);
    {
      // First build current-space -> new-space, then compose with the
      // existing original -> current mapping (tracked via labels).
      std::vector<VertexId> cur_to_new(cn);
      parallel_for(0, cn, [&](std::size_t v) {
        cur_to_new[v] = dense[decomposition.cluster[v]];
      });
      // label currently holds original -> current-space ids.
      parallel_for(0, n, [&](std::size_t v) {
        orig_to_new[v] = cur_to_new[label[v]];
      });
    }
    label = std::move(orig_to_new);
    current = Graph::from_edges(centres.size(), cross, /*dedup=*/true);
    current_to_orig = std::move(new_to_orig);
  }

  // Final: name each component by the minimum original vertex it contains.
  std::size_t cn = current.num_vertices();
  std::vector<std::atomic<VertexId>> min_orig(cn);
  parallel_for(0, cn, [&](std::size_t i) {
    min_orig[i].store(kInvalidVertex, std::memory_order_relaxed);
  });
  parallel_for(0, n, [&](std::size_t v) {
    write_min(min_orig[label[v]], static_cast<VertexId>(v));
  });
  return tabulate(n, [&](std::size_t v) {
    return min_orig[label[v]].load(std::memory_order_relaxed);
  });
}

}  // namespace pasgal
