#include "graphs/storage.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <cstring>

#include "pasgal/fault.h"
#include "pasgal/resource.h"

namespace pasgal {

// --- content checksum --------------------------------------------------------
//
// xxhash-style: each 8-byte little-endian lane is folded in with a
// multiply-rotate-multiply step; the tail is padded with its own length so
// "AB" + "C" and "A" + "BC" differ; the finalizer is splitmix64's avalanche.

namespace {

constexpr std::uint64_t kLaneMul1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kLaneMul2 = 0xC2B2AE3D27D4EB4FULL;

inline std::uint64_t avalanche(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t hash_bytes(const void* data, std::size_t len,
                         std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t acc = seed ^ (static_cast<std::uint64_t>(len) * kLaneMul1);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, p + i, 8);
    acc ^= std::rotl(lane * kLaneMul1, 31) * kLaneMul2;
    acc = std::rotl(acc, 27) * kLaneMul1 + kLaneMul2;
  }
  std::uint64_t tail = 0;
  for (std::size_t b = 0; i + b < len; ++b) {
    tail |= static_cast<std::uint64_t>(p[i + b]) << (8 * b);
  }
  acc ^= std::rotl(tail * kLaneMul2, 17) * kLaneMul1;
  return avalanche(acc);
}

// --- MappedFile --------------------------------------------------------------

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

MappedFile MappedFile::open(const std::string& path) {
  if (fault::should_fail("mmap")) {
    throw Error(ErrorCategory::kIo, "injected fault: mmap", path);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw Error(ErrorCategory::kIo,
                std::string("cannot open for mapping: ") + std::strerror(errno),
                path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    throw Error(ErrorCategory::kIo,
                std::string("fstat failed: ") + std::strerror(err), path);
  }
  MappedFile out;
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ == 0) {
    ::close(fd);
    return out;  // mmap rejects length 0; an empty file maps to nothing
  }
  void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  int err = errno;
  ::close(fd);
  if (addr == MAP_FAILED) {
    throw Error(ErrorCategory::kIo,
                std::string("mmap failed: ") + std::strerror(err), path);
  }
  // Readahead hint: CSR consumers scan offsets/targets mostly sequentially.
  // Advisory only — failure is not an error.
  ::madvise(addr, out.size_, MADV_WILLNEED);
  out.data_ = static_cast<const std::byte*>(addr);
  return out;
}

// --- GraphStorage ------------------------------------------------------------

StorageRef GraphStorage::owned(std::vector<StorageEdgeId> offsets,
                               std::vector<StorageVertexId> targets,
                               std::vector<StorageWeight> weights) {
  auto s = StorageRef(new GraphStorage());
  s->backend_ = Backend::kHeap;
  s->own_offsets_ = std::move(offsets);
  s->own_targets_ = std::move(targets);
  s->own_weights_ = std::move(weights);
  s->offsets_ = s->own_offsets_;
  s->targets_ = s->own_targets_;
  s->weights_ = s->own_weights_;
  // In-process builders (generators, transposes, symmetrizers) produce
  // in-range CSRs by construction; only untrusted file-backed storages
  // start unvalidated.
  s->validated_.store(true, std::memory_order_relaxed);
  return s;
}

Status GraphStorage::check_footprint(std::uint64_t n, std::uint64_t m,
                                     bool weighted, const std::string& path) {
  if (fault::should_fail("alloc")) {
    return Status::Failure(ErrorCategory::kResource, "injected fault: alloc",
                           path);
  }
  std::uint64_t bytes_per_edge =
      sizeof(StorageVertexId) + (weighted ? sizeof(StorageWeight) : 0);
  unsigned __int128 need =
      (static_cast<unsigned __int128>(n) + 1) * sizeof(StorageEdgeId) +
      static_cast<unsigned __int128>(m) * bytes_per_edge;
  constexpr std::uint64_t kMax = static_cast<std::uint64_t>(-1);
  std::uint64_t need64 = need > kMax ? kMax : static_cast<std::uint64_t>(need);
  return check_allocation(need64,
                          "graph with n=" + std::to_string(n) +
                              " m=" + std::to_string(m),
                          path);
}

StorageRef GraphStorage::allocate(std::uint64_t n, std::uint64_t m,
                                  bool weighted, const std::string& path) {
  check_footprint(n, m, weighted, path).throw_if_error();
  auto s = owned(std::vector<StorageEdgeId>(n + 1),
                 std::vector<StorageVertexId>(m),
                 weighted ? std::vector<StorageWeight>(m)
                          : std::vector<StorageWeight>{});
  s->source_path_ = path;
  return s;
}

StorageRef GraphStorage::mapped(std::shared_ptr<const MappedFile> file,
                                const std::string& path,
                                std::span<const StorageEdgeId> offsets,
                                std::span<const StorageVertexId> targets,
                                std::span<const StorageWeight> weights) {
  auto s = StorageRef(new GraphStorage());
  s->backend_ = Backend::kMmap;
  s->map_ = std::move(file);
  s->offsets_ = offsets;
  s->targets_ = targets;
  s->weights_ = weights;
  s->source_path_ = path;
  return s;
}

StorageRef GraphStorage::mapped_with_decoded_targets(
    std::shared_ptr<const MappedFile> file, const std::string& path,
    std::span<const StorageEdgeId> offsets,
    std::vector<StorageVertexId> decoded_targets,
    std::span<const StorageWeight> weights) {
  auto s = StorageRef(new GraphStorage());
  s->backend_ = Backend::kMmap;
  s->map_ = std::move(file);
  s->own_targets_ = std::move(decoded_targets);
  s->offsets_ = offsets;
  s->targets_ = s->own_targets_;
  s->weights_ = weights;
  s->source_path_ = path;
  return s;
}

StorageRef GraphStorage::transpose_cache() const {
  std::lock_guard<std::mutex> lock(transpose_mu_);
  return transpose_;
}

StorageRef GraphStorage::set_transpose_cache(StorageRef t) {
  std::lock_guard<std::mutex> lock(transpose_mu_);
  if (transpose_ == nullptr) transpose_ = std::move(t);
  return transpose_;
}

}  // namespace pasgal
