#include "graphs/storage.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstring>

#ifndef MADV_HUGEPAGE
#define MADV_HUGEPAGE MADV_NORMAL  // hint degrades to a no-op off Linux
#endif

#include "graphs/delta.h"
#include "pasgal/fault.h"
#include "pasgal/resource.h"

namespace pasgal {

// --- content checksum --------------------------------------------------------
//
// xxhash-style: each 8-byte little-endian lane is folded in with a
// multiply-rotate-multiply step; the tail is padded with its own length so
// "AB" + "C" and "A" + "BC" differ; the finalizer is splitmix64's avalanche.

namespace {

constexpr std::uint64_t kLaneMul1 = 0x9E3779B185EBCA87ULL;
constexpr std::uint64_t kLaneMul2 = 0xC2B2AE3D27D4EB4FULL;

inline std::uint64_t avalanche(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ULL;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return x;
}

}  // namespace

std::uint64_t hash_bytes(const void* data, std::size_t len,
                         std::uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  std::uint64_t acc = seed ^ (static_cast<std::uint64_t>(len) * kLaneMul1);
  std::size_t i = 0;
  for (; i + 8 <= len; i += 8) {
    std::uint64_t lane;
    std::memcpy(&lane, p + i, 8);
    acc ^= std::rotl(lane * kLaneMul1, 31) * kLaneMul2;
    acc = std::rotl(acc, 27) * kLaneMul1 + kLaneMul2;
  }
  std::uint64_t tail = 0;
  for (std::size_t b = 0; i + b < len; ++b) {
    tail |= static_cast<std::uint64_t>(p[i + b]) << (8 * b);
  }
  acc ^= std::rotl(tail * kLaneMul2, 17) * kLaneMul1;
  return avalanche(acc);
}

// --- MappedFile --------------------------------------------------------------

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
}

MappedFile MappedFile::open(const std::string& path, bool sequential) {
  if (fault::should_fail("mmap")) {
    throw Error(ErrorCategory::kIo, "injected fault: mmap", path);
  }
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw Error(ErrorCategory::kIo,
                std::string("cannot open for mapping: ") + std::strerror(errno),
                path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    int err = errno;
    ::close(fd);
    throw Error(ErrorCategory::kIo,
                std::string("fstat failed: ") + std::strerror(err), path);
  }
  MappedFile out;
  out.size_ = static_cast<std::size_t>(st.st_size);
  if (out.size_ == 0) {
    ::close(fd);
    return out;  // mmap rejects length 0; an empty file maps to nothing
  }
  void* addr = ::mmap(nullptr, out.size_, PROT_READ, MAP_PRIVATE, fd, 0);
  int err = errno;
  ::close(fd);
  if (addr == MAP_FAILED) {
    throw Error(ErrorCategory::kIo,
                std::string("mmap failed: ") + std::strerror(err), path);
  }
  // Readahead hint: CSR consumers scan offsets/targets mostly sequentially.
  // Sharded opens take MADV_RANDOM instead — the MappedWindow issues its own
  // per-shard hints and whole-file readahead would defeat the bounded
  // residency. Advisory only — failure is not an error.
  ::madvise(addr, out.size_, sequential ? MADV_WILLNEED : MADV_RANDOM);
  out.data_ = static_cast<const std::byte*>(addr);
  return out;
}

// --- ShardPlan ---------------------------------------------------------------

ShardPlan ShardPlan::build(std::span<const StorageEdgeId> offsets,
                           std::uint64_t bytes_per_edge,
                           std::uint64_t window_bytes, std::uint32_t align) {
  ShardPlan plan;
  plan.window_bytes_ = window_bytes;
  plan.bytes_per_edge_ = bytes_per_edge;
  if (offsets.size() <= 1) return plan;  // empty graph: zero shards
  std::uint64_t n = offsets.size() - 1;
  if (align == 0) align = 1;
  std::uint64_t max_edges =
      bytes_per_edge != 0 ? window_bytes / bytes_per_edge : ~std::uint64_t{0};
  if (max_edges == 0) max_edges = 1;
  std::uint64_t v = 0;
  while (v < n) {
    std::uint64_t v_end = std::min<std::uint64_t>(v + align, n);
    // Grow block by block while the payload stays within budget.
    while (v_end < n) {
      std::uint64_t next = std::min<std::uint64_t>(v_end + align, n);
      if (offsets[next] - offsets[v] > max_edges) break;
      v_end = next;
    }
    plan.ranges_.push_back(ShardRange{static_cast<StorageVertexId>(v),
                                      static_cast<StorageVertexId>(v_end),
                                      offsets[v], offsets[v_end]});
    v = v_end;
  }
  return plan;
}

std::size_t ShardPlan::shard_of(StorageVertexId v) const {
  // Last range whose v_begin <= v.
  std::size_t lo = 0, hi = ranges_.size();
  while (hi - lo > 1) {
    std::size_t mid = lo + (hi - lo) / 2;
    if (ranges_[mid].v_begin <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

StorageEdgeId ShardPlan::max_shard_edges() const {
  StorageEdgeId best = 0;
  for (const ShardRange& r : ranges_) {
    best = std::max(best, r.e_end - r.e_begin);
  }
  return best;
}

// --- MappedWindow ------------------------------------------------------------

namespace {
// HUGEPAGE is worth asking for once a shard spans multiple huge pages.
constexpr std::size_t kHugePageHintBytes = 4u << 20;
// Modern kernels cache file pages in large folios (up to 2 MB). A fault in
// shard s+1 maps every cache-resident page of the folio it lands in —
// including pages of the just-dropped shard s when a folio straddles the
// boundary — and those resurrected pages would never be advised out again,
// accumulating ~a folio per sweep. Widening every DONTNEED by one max-folio
// margin each side (clamped to the section, so hot offsets pages next door
// are not churned) makes the next drop cover the resurrected tail too.
constexpr std::size_t kFolioSpillBytes = 2u << 20;
}  // namespace

std::shared_ptr<MappedWindow> MappedWindow::raw(
    std::shared_ptr<const ShardPlan> plan, const StorageVertexId* targets_base,
    const StorageWeight* weights_base) {
  auto w = std::shared_ptr<MappedWindow>(new MappedWindow());
  w->plan_ = std::move(plan);
  w->targets_base_ = targets_base;
  w->weights_base_ = weights_base;
  w->visited_.assign(w->plan_->size(), false);
  if (w->plan_->size() != 0) {
    w->total_edges_ = (*w->plan_)[w->plan_->size() - 1].e_end;
  }
  return w;
}

std::shared_ptr<MappedWindow> MappedWindow::decoding(
    std::shared_ptr<const ShardPlan> plan, DecodeFn decode,
    EncodedRangeFn encoded_range, const StorageWeight* weights_base) {
  auto w = std::shared_ptr<MappedWindow>(new MappedWindow());
  w->plan_ = std::move(plan);
  w->decode_ = std::move(decode);
  w->encoded_range_ = std::move(encoded_range);
  w->weights_base_ = weights_base;
  w->visited_.assign(w->plan_->size(), false);
  if (w->plan_->size() != 0) {
    w->total_edges_ = (*w->plan_)[w->plan_->size() - 1].e_end;
    auto [lo, lo_bytes] = w->encoded_range_((*w->plan_)[0]);
    auto [hi, hi_bytes] = w->encoded_range_((*w->plan_)[w->plan_->size() - 1]);
    w->encoded_lo_ = lo;
    w->encoded_hi_ = static_cast<const std::byte*>(hi) + hi_bytes;
    (void)lo_bytes;
  }
  return w;
}

void MappedWindow::advise(const void* addr, std::size_t len,
                          int advice) const {
  if (addr == nullptr || len == 0) return;
  // madvise wants a page-aligned start; round down and extend accordingly.
  static const std::uintptr_t page =
      static_cast<std::uintptr_t>(::sysconf(_SC_PAGESIZE));
  std::uintptr_t a = reinterpret_cast<std::uintptr_t>(addr);
  std::uintptr_t base = a & ~(page - 1);
  len += static_cast<std::size_t>(a - base);
  // Advisory only: EINVAL (e.g. HUGEPAGE on a file mapping without kernel
  // support) is not an error.
  ::madvise(reinterpret_cast<void*>(base), len, advice);
}

void MappedWindow::advise_out_wide(const void* addr, std::size_t len,
                                   const void* sec_lo,
                                   const void* sec_hi) const {
  const std::byte* a = static_cast<const std::byte*>(addr);
  const std::byte* lo = static_cast<const std::byte*>(sec_lo);
  const std::byte* hi = static_cast<const std::byte*>(sec_hi);
  if (lo != nullptr && hi != nullptr && lo <= a && a + len <= hi) {
    const std::byte* b = a - std::min<std::size_t>(
                                 kFolioSpillBytes,
                                 static_cast<std::size_t>(a - lo));
    const std::byte* e =
        a + len +
        std::min<std::size_t>(kFolioSpillBytes,
                              static_cast<std::size_t>(hi - (a + len)));
    advise(b, static_cast<std::size_t>(e - b), MADV_DONTNEED);
  } else {
    advise(addr, len, MADV_DONTNEED);
  }
}

void MappedWindow::advise_range(const void* addr, std::size_t len, bool in,
                                const void* section_begin,
                                const void* section_end) const {
  if (in) {
    advise(addr, len, MADV_WILLNEED);
  } else {
    advise_out_wide(addr, len, section_begin, section_end);
  }
}

void MappedWindow::advise_shard(const ShardRange& r, bool in) const {
  std::size_t edges = static_cast<std::size_t>(r.e_end - r.e_begin);
  if (targets_base_ != nullptr) {
    std::size_t bytes = edges * sizeof(StorageVertexId);
    if (in) {
      advise(targets_base_ + r.e_begin, bytes, MADV_WILLNEED);
      if (bytes >= kHugePageHintBytes) {
        advise(targets_base_ + r.e_begin, bytes, MADV_HUGEPAGE);
      }
    } else {
      advise_out_wide(targets_base_ + r.e_begin, bytes, targets_base_,
                      targets_base_ + total_edges_);
    }
  } else if (encoded_range_) {
    auto [addr, bytes] = encoded_range_(r);
    if (in) {
      advise(addr, bytes, MADV_WILLNEED);
      if (bytes >= kHugePageHintBytes) {
        advise(addr, bytes, MADV_HUGEPAGE);
      }
    } else {
      advise_out_wide(addr, bytes, encoded_lo_, encoded_hi_);
    }
  }
  if (weights_base_ != nullptr) {
    std::size_t bytes = edges * sizeof(StorageWeight);
    if (in) {
      advise(weights_base_ + r.e_begin, bytes, MADV_WILLNEED);
    } else {
      advise_out_wide(weights_base_ + r.e_begin, bytes, weights_base_,
                      weights_base_ + total_edges_);
    }
  }
}

MappedWindow::ActiveShard MappedWindow::activate(std::size_t shard) {
  std::lock_guard<std::mutex> lock(mu_);
  const ShardRange& r = (*plan_)[shard];
  if (active_ != static_cast<std::ptrdiff_t>(shard)) {
    if (active_ >= 0) {
      advise_shard((*plan_)[static_cast<std::size_t>(active_)], /*in=*/false);
    }
    advise_shard(r, /*in=*/true);
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    if (visited_[shard]) {
      faults_.fetch_add(1, std::memory_order_relaxed);
    }
    visited_[shard] = true;
    active_ = static_cast<std::ptrdiff_t>(shard);
  }
  ActiveShard out;
  if (decode_) {
    if (decoded_ != static_cast<std::ptrdiff_t>(shard)) {
      decode_buf_.resize(
          static_cast<std::size_t>(plan_->max_shard_edges()));
      decode_(r, decode_buf_.data());
      decoded_ = static_cast<std::ptrdiff_t>(shard);
    }
    out.targets = decode_buf_.data();
    out.e_base = r.e_begin;
  } else {
    // Raw mode: the mapping's global targets pointer stays valid for every
    // edge, so the base is 0 and targets[e - 0] is just targets[e].
    out.targets = targets_base_;
    out.e_base = 0;
  }
  return out;
}

void MappedWindow::release() {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_ >= 0) {
    advise_shard((*plan_)[static_cast<std::size_t>(active_)], /*in=*/false);
    active_ = -1;
  }
}

void MappedWindow::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  sweeps_.store(0, std::memory_order_relaxed);
  faults_.store(0, std::memory_order_relaxed);
  visited_.assign(plan_->size(), false);
}

// --- GraphStorage ------------------------------------------------------------

StorageRef GraphStorage::owned(std::vector<StorageEdgeId> offsets,
                               std::vector<StorageVertexId> targets,
                               std::vector<StorageWeight> weights) {
  auto s = StorageRef(new GraphStorage());
  s->backend_ = Backend::kHeap;
  s->own_offsets_ = std::move(offsets);
  s->own_targets_ = std::move(targets);
  s->own_weights_ = std::move(weights);
  s->offsets_ = s->own_offsets_;
  s->targets_ = s->own_targets_;
  s->weights_ = s->own_weights_;
  s->edge_count_ = s->targets_.size();
  // In-process builders (generators, transposes, symmetrizers) produce
  // in-range CSRs by construction; only untrusted file-backed storages
  // start unvalidated.
  s->validated_.store(true, std::memory_order_relaxed);
  return s;
}

Status GraphStorage::check_footprint(std::uint64_t n, std::uint64_t m,
                                     bool weighted, const std::string& path) {
  if (fault::should_fail("alloc")) {
    return Status::Failure(ErrorCategory::kResource, "injected fault: alloc",
                           path);
  }
  std::uint64_t bytes_per_edge =
      sizeof(StorageVertexId) + (weighted ? sizeof(StorageWeight) : 0);
  unsigned __int128 need =
      (static_cast<unsigned __int128>(n) + 1) * sizeof(StorageEdgeId) +
      static_cast<unsigned __int128>(m) * bytes_per_edge;
  constexpr std::uint64_t kMax = static_cast<std::uint64_t>(-1);
  std::uint64_t need64 = need > kMax ? kMax : static_cast<std::uint64_t>(need);
  return check_allocation(need64,
                          "graph with n=" + std::to_string(n) +
                              " m=" + std::to_string(m),
                          path);
}

Status GraphStorage::check_windowed_footprint(std::uint64_t n,
                                              std::uint64_t window_bytes,
                                              std::uint64_t extra_bytes,
                                              const std::string& path) {
  if (fault::should_fail("alloc")) {
    return Status::Failure(ErrorCategory::kResource, "injected fault: alloc",
                           path);
  }
  unsigned __int128 need =
      (static_cast<unsigned __int128>(n) + 1) * sizeof(StorageEdgeId) +
      static_cast<unsigned __int128>(window_bytes) + extra_bytes;
  constexpr std::uint64_t kMax = static_cast<std::uint64_t>(-1);
  std::uint64_t need64 = need > kMax ? kMax : static_cast<std::uint64_t>(need);
  return check_allocation(need64,
                          "sharded graph window (n=" + std::to_string(n) +
                              ", window=" + std::to_string(window_bytes) +
                              " bytes)",
                          path);
}

StorageRef GraphStorage::allocate(std::uint64_t n, std::uint64_t m,
                                  bool weighted, const std::string& path) {
  check_footprint(n, m, weighted, path).throw_if_error();
  auto s = owned(std::vector<StorageEdgeId>(n + 1),
                 std::vector<StorageVertexId>(m),
                 weighted ? std::vector<StorageWeight>(m)
                          : std::vector<StorageWeight>{});
  s->source_path_ = path;
  return s;
}

StorageRef GraphStorage::mapped(std::shared_ptr<const MappedFile> file,
                                const std::string& path,
                                std::span<const StorageEdgeId> offsets,
                                std::span<const StorageVertexId> targets,
                                std::span<const StorageWeight> weights) {
  auto s = StorageRef(new GraphStorage());
  s->backend_ = Backend::kMmap;
  s->map_ = std::move(file);
  s->offsets_ = offsets;
  s->targets_ = targets;
  s->weights_ = weights;
  s->edge_count_ = targets.size();
  s->source_path_ = path;
  return s;
}

StorageRef GraphStorage::mapped_with_decoded_targets(
    std::shared_ptr<const MappedFile> file, const std::string& path,
    std::span<const StorageEdgeId> offsets,
    std::vector<StorageVertexId> decoded_targets,
    std::span<const StorageWeight> weights) {
  auto s = StorageRef(new GraphStorage());
  s->backend_ = Backend::kMmap;
  s->map_ = std::move(file);
  s->own_targets_ = std::move(decoded_targets);
  s->offsets_ = offsets;
  s->targets_ = s->own_targets_;
  s->weights_ = weights;
  s->edge_count_ = s->targets_.size();
  // The decoded array is real heap residency on top of the mapping; the
  // registry's budget math must see it (admission priced it at open).
  s->decode_heap_bytes_ = s->own_targets_.size() * sizeof(StorageVertexId);
  s->source_path_ = path;
  return s;
}

StorageRef GraphStorage::mapped_windowed(
    std::shared_ptr<const MappedFile> file, const std::string& path,
    std::span<const StorageEdgeId> offsets,
    std::span<const StorageWeight> weights, std::uint64_t edge_count) {
  auto s = StorageRef(new GraphStorage());
  s->backend_ = Backend::kMmap;
  s->map_ = std::move(file);
  s->offsets_ = offsets;
  s->weights_ = weights;
  s->edge_count_ = edge_count;
  s->window_only_ = true;
  s->source_path_ = path;
  // The per-shard decoder validates each chunk it produces; there is no
  // whole-graph targets array for ensure_validated to scan.
  s->validated_.store(true, std::memory_order_relaxed);
  return s;
}

StorageRef GraphStorage::transpose_cache() const {
  std::lock_guard<std::mutex> lock(transpose_mu_);
  return transpose_;
}

StorageRef GraphStorage::set_transpose_cache(StorageRef t) {
  std::lock_guard<std::mutex> lock(transpose_mu_);
  if (transpose_ == nullptr) transpose_ = std::move(t);
  // A transpose built after updates were applied must see the overlay's
  // in-edge side; without this, a late pull traversal would read stale base
  // adjacency. One level only: a transpose never carries its own delta.
  if (delta_ != nullptr && transpose_ != nullptr) {
    transpose_->set_delta(delta_->flipped());
  }
  return transpose_;
}

std::shared_ptr<const DeltaSnapshot> GraphStorage::delta_snapshot() const {
  if (!has_delta()) return nullptr;
  std::lock_guard<std::mutex> lock(transpose_mu_);
  return delta_;
}

void GraphStorage::set_delta(std::shared_ptr<const DeltaSnapshot> d) {
  StorageRef t;
  {
    std::lock_guard<std::mutex> lock(transpose_mu_);
    delta_ = d;
    has_delta_.store(d != nullptr, std::memory_order_release);
    t = transpose_;
  }
  // Propagate outside the lock (the transpose's own set_delta takes its own
  // transpose_mu_; it has no cached transpose of its own, so this cannot
  // recurse further than one level).
  if (t != nullptr) {
    t->set_delta(d != nullptr ? d->flipped() : nullptr);
  }
}

}  // namespace pasgal
