// Library-level graph statistics: degree profiles and the sampled-search
// diameter lower bound the paper uses for its dataset table ("the number
// shown is a lower bound obtained by ... sampled searches on each graph").
#pragma once

#include <cstdint>

#include "algorithms/bfs/bfs.h"
#include "graphs/graph.h"
#include "parlay/hash_rng.h"
#include "parlay/primitives.h"

namespace pasgal {

struct DegreeStats {
  EdgeId max_degree = 0;
  double avg_degree = 0.0;
  std::size_t isolated = 0;  // vertices with out-degree 0
};

inline DegreeStats degree_stats(const Graph& g) {
  std::size_t n = g.num_vertices();
  DegreeStats s;
  if (n == 0) return s;
  s.max_degree = reduce_indexed<EdgeId>(
      n, 0, [](EdgeId a, EdgeId b) { return a < b ? b : a; },
      [&](std::size_t v) { return g.out_degree(static_cast<VertexId>(v)); });
  s.avg_degree = static_cast<double>(g.num_edges()) / static_cast<double>(n);
  s.isolated = count_if_index(
      n, [&](std::size_t v) { return g.out_degree(static_cast<VertexId>(v)) == 0; });
  return s;
}

// Histogram of out-degrees, truncated at max_bucket (counts of degree >=
// max_bucket are accumulated in the last slot).
inline std::vector<std::size_t> degree_histogram(const Graph& g,
                                                 std::size_t max_bucket = 64) {
  auto keys = tabulate(g.num_vertices(), [&](std::size_t v) {
    EdgeId d = g.out_degree(static_cast<VertexId>(v));
    return static_cast<std::uint32_t>(
        d < max_bucket ? d : max_bucket);
  });
  return histogram(std::span<const std::uint32_t>(keys), max_bucket + 1);
}

// Diameter lower bound via sampled BFS double sweeps (alternating farthest
// vertex and random restarts, as the paper's dataset table does). `gt` is
// the transpose (pass g for symmetric graphs).
inline std::uint64_t diameter_lower_bound(const Graph& g, const Graph& gt,
                                          int samples = 8,
                                          std::uint64_t seed = 7) {
  std::size_t n = g.num_vertices();
  if (n == 0) return 0;
  std::uint64_t best = 0;
  Random rng(seed);
  VertexId source = 0;
  for (int s = 0; s < samples; ++s) {
    auto dist = pasgal_bfs(g, gt, source);
    std::uint64_t ecc = 0;
    VertexId far = source;
    for (VertexId v = 0; v < n; ++v) {
      if (dist[v] != kInfDist && dist[v] > ecc) {
        ecc = dist[v];
        far = v;
      }
    }
    best = std::max(best, ecc);
    source = (s % 2 == 0) ? far
                          : static_cast<VertexId>(rng.ith_rand(
                                static_cast<std::uint64_t>(s)) %
                                                  n);
  }
  return best;
}

// Degeneracy = maximum coreness; declared here, defined with the k-core
// module to avoid a header cycle.
std::uint32_t degeneracy(const Graph& g);

}  // namespace pasgal
