// Delta overlay for dynamic graph updates (DESIGN.md §5k).
//
// A registered `.pgr` is immutable — the mmap'd CSR never changes. Updates
// are instead accumulated as a **DeltaSnapshot**: an immutable per-vertex
// patch set (sorted insert targets, sorted delete targets) attached to the
// graph's storage handle. The traversal layer merges it at the edge_map
// choke point — dense pull and sparse push iterate (base minus deletes)
// union inserts in ascending target order, which is exactly the adjacency
// order `from_edges` produces — so the static kernels (bfs/cc/pagerank/sssp)
// run unmodified and their results are byte-identical to a from-scratch
// rebuild of the updated graph.
//
// Apply model: `apply_updates(g, batch)` validates a batch against the
// *effective* graph (base ⊕ current overlay), builds the next snapshot
// (persistent-data-structure style: the old snapshot is untouched, in-flight
// traversals keep reading it), and publishes it on the storage handle. The
// flipped (in-edge) snapshot is built in the same step and propagated to the
// cached transpose, so pull traversals observe the same overlay version.
//
// Update semantics (directed edges, set semantics):
//   * insert(u,v): v must not be an effective out-neighbor of u. If (u,v)
//     is a deleted base edge, the delete is cancelled; otherwise v joins
//     u's insert list.
//   * delete(u,v): v must be an effective out-neighbor. If (u,v) is an
//     overlay insert, the insert is cancelled; otherwise v joins u's delete
//     list (suppressing every base copy — multigraph duplicates collapse).
// Violations throw typed kValidation; updates on weighted or sharded
// (windowed) graphs throw kUsage.
//
// Durability: batches append to a `.plog` update log (byte format in
// DESIGN.md §5k — 16-byte header, per-batch frames with a count and an
// xxhash-style payload checksum). A torn trailing append replays as a
// consistent prefix; a corrupted complete frame is a typed kFormat error.
// Compaction (`materialize_effective` + write_pgr + rename) collapses the
// overlay into a new `.pgr` version; the registry's file-identity keying
// detects the rewrite and swaps mappings on the next open.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "graphs/graph.h"

namespace pasgal {

// One edge mutation. `op` is stored as u32 in the `.plog` records.
struct EdgeUpdate {
  enum class Op : std::uint32_t { kInsert = 0, kDelete = 1 };
  Op op = Op::kInsert;
  VertexId from = 0;
  VertexId to = 0;
  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

// Immutable per-vertex patch set: full (n+1) offset arrays over sorted
// insert/delete target arrays. O(1) per-vertex lookup with no hashing, and
// `touches(v)` — the traversal fast path — is two offset compares. Holds its
// flipped (in-edge) counterpart, built in the same apply step, for pull
// traversals over the cached transpose.
class DeltaSnapshot {
 public:
  std::size_t num_vertices() const { return ins_offsets_.size() - 1; }
  std::uint64_t insert_count() const { return ins_targets_.size(); }
  std::uint64_t delete_count() const { return del_targets_.size(); }
  // Batches folded into this snapshot since the overlay was first attached.
  std::uint64_t batches() const { return batches_; }

  bool touches(VertexId v) const {
    return ins_offsets_[v + 1] != ins_offsets_[v] ||
           del_offsets_[v + 1] != del_offsets_[v];
  }
  std::span<const VertexId> inserts(VertexId v) const {
    return {ins_targets_.data() + ins_offsets_[v],
            static_cast<std::size_t>(ins_offsets_[v + 1] - ins_offsets_[v])};
  }
  std::span<const VertexId> deletes(VertexId v) const {
    return {del_targets_.data() + del_offsets_[v],
            static_cast<std::size_t>(del_offsets_[v + 1] - del_offsets_[v])};
  }
  // Degree of v in the effective graph, given its base degree.
  EdgeId effective_degree(VertexId v, EdgeId base_degree) const {
    return base_degree + (ins_offsets_[v + 1] - ins_offsets_[v]) -
           (del_offsets_[v + 1] - del_offsets_[v]);
  }

  // Heap footprint of this snapshot plus its flipped side (admission
  // pricing in the server; both sides are attached together).
  std::uint64_t resident_bytes() const;

  // The in-edge-direction snapshot: op (u,v) here appears as (v,u) there.
  // Null only on a flipped snapshot itself (one level, never chained).
  const std::shared_ptr<const DeltaSnapshot>& flipped() const {
    return flipped_;
  }

  // Merge iteration over v's *effective* adjacency in ascending target
  // order: base copies not suppressed by a delete, interleaved with overlay
  // inserts. `base` spans v's base targets (sorted; element i is global
  // edge id e_begin + i). `f(target, edge_id)` returns false to stop early;
  // inserts carry kInvalidEdge. Returns false when f stopped the scan.
  template <typename F>
  bool scan_effective(VertexId v, const VertexId* base, EdgeId e_begin,
                      EdgeId e_end, F&& f) const {
    std::span<const VertexId> ins = inserts(v);
    std::span<const VertexId> del = deletes(v);
    std::size_t ii = 0, di = 0;
    for (EdgeId e = e_begin; e < e_end; ++e) {
      VertexId t = base[e - e_begin];
      while (ii < ins.size() && ins[ii] < t) {
        if (!f(ins[ii++], kInvalidEdge)) return false;
      }
      while (di < del.size() && del[di] < t) ++di;
      // One delete entry suppresses every base copy of t (deliberately not
      // advancing di: the next base element may be a duplicate of t).
      if (di < del.size() && del[di] == t) continue;
      if (!f(t, e)) return false;
    }
    while (ii < ins.size()) {
      if (!f(ins[ii++], kInvalidEdge)) return false;
    }
    return true;
  }

  // Construction is delta.cpp's job (apply_updates / log replay); tests and
  // the builder go through this factory. The per-vertex lists must be
  // sorted, duplicate-free, and disjoint in the apply-model sense.
  static std::shared_ptr<const DeltaSnapshot> build(
      std::size_t n, std::vector<EdgeId> ins_offsets,
      std::vector<VertexId> ins_targets, std::vector<EdgeId> del_offsets,
      std::vector<VertexId> del_targets, std::uint64_t batches);

 private:
  DeltaSnapshot() = default;

  std::vector<EdgeId> ins_offsets_;    // size n+1
  std::vector<VertexId> ins_targets_;  // sorted per vertex
  std::vector<EdgeId> del_offsets_;    // size n+1
  std::vector<VertexId> del_targets_;  // sorted per vertex
  std::uint64_t batches_ = 0;
  std::shared_ptr<const DeltaSnapshot> flipped_;
};

// Result of one apply (or replay): the batch's op mix plus the pending
// overlay totals after it, for metrics and admission pricing.
struct ApplyStats {
  std::uint64_t batch_inserts = 0;  // insert ops in this batch
  std::uint64_t batch_deletes = 0;  // delete ops in this batch
  std::uint64_t inserts = 0;        // net pending overlay inserts after
  std::uint64_t deletes = 0;        // net pending overlay deletes after
  std::uint64_t batches = 0;        // batches folded into the overlay
  std::uint64_t overlay_bytes = 0;  // snapshot heap footprint (both sides)
};

// Validates `batch` against the effective graph and publishes the next
// overlay snapshot on g's storage handle (and its flipped side on the cached
// transpose). Throws kUsage (weighted / windowed / sharded graph), or
// kValidation (id out of range, insert of a present edge, delete of an
// absent edge, unsorted base adjacency).
ApplyStats apply_updates(const Graph& g, std::span<const EdgeUpdate> batch);

// Replays every batch of a `.plog` through apply_updates. Returns the stats
// of the final state (batches == number of frames replayed when the overlay
// started empty).
ApplyStats replay_update_log(const Graph& g, const std::string& path);

// Stateful convenience binding a base graph to its overlay and (optionally)
// an append-only log: each apply() validates, publishes, and — when a log
// path is set — appends the batch frame after the validation succeeded, so
// the log never records a rejected batch.
class GraphDelta {
 public:
  explicit GraphDelta(Graph base, std::string log_path = "")
      : base_(std::move(base)), log_path_(std::move(log_path)) {}

  ApplyStats apply(std::span<const EdgeUpdate> batch);

  std::shared_ptr<const DeltaSnapshot> snapshot() const {
    return base_.storage() != nullptr ? base_.storage()->delta_snapshot()
                                      : nullptr;
  }
  const Graph& base() const { return base_; }
  const std::string& log_path() const { return log_path_; }

 private:
  Graph base_;
  std::string log_path_;
};

// --- append-only update log (`.plog`) ---------------------------------------
// Byte format (all little-endian; spec in DESIGN.md §5k):
//   header  : 8-byte magic "PGRDLOG\0", u32 version (=1), u32 reserved (=0)
//   frame   : u32 magic "BATC", u32 count, u64 hash_bytes(payload),
//             payload = count × 12-byte records {u32 op, u32 from, u32 to}
// Appends are single write()s, so a crash tears at most the trailing frame.

inline constexpr std::uint32_t kPlogVersion = 1;

// Writes header + one frame per batch, truncating any existing file.
void write_update_log(const std::string& path,
                      std::span<const std::vector<EdgeUpdate>> batches);

// Appends one frame, creating the file (with header) when absent or empty.
void append_update_batch(const std::string& path,
                         std::span<const EdgeUpdate> batch);

// Reads every complete frame. A torn trailing frame (crashed append) yields
// the consistent prefix; a bad magic/version/op or a checksum mismatch on a
// complete frame throws kFormat; unreadable file throws kIo.
std::vector<std::vector<EdgeUpdate>> read_update_log(const std::string& path);

}  // namespace pasgal
