// GraphStorage: the memory behind a CSR graph, decoupled from the Graph API.
//
// A storage handle owns the offsets/targets/weights arrays either as heap
// buffers (the classic path: readers and builders fill freshly allocated
// vectors) or as views into a read-only memory-mapped `.pgr` file segment
// (RAII munmap; see graph_io.h for the on-disk format). `Graph` and
// `WeightedGraph` hold a shared handle plus `std::span` views into it, so
// every algorithm consumes the same spans regardless of backend and copies
// of a graph share one storage.
//
// The handle also memoizes the graph's transpose: the first
// `Graph::transpose()` on a given storage computes and caches the reverse
// CSR (itself a storage handle), so drivers and benches that need `gt` for
// several variants build it once. A `.pgr` file written with
// `include_transpose` carries the transpose as extra sections, and the mmap
// open path pre-populates the cache from them — reverse edges then cost no
// construction work at all.
//
// Allocation discipline: every heap allocation whose size is dictated by
// untrusted input goes through `allocate()`, which checks the CSR byte
// footprint (128-bit math) against the `pasgal/resource.h` ceiling before
// any vector is materialized. This is the single guard point the file
// readers previously duplicated.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "pasgal/error.h"

namespace pasgal {

// Mirrors graph.h (storage.h must not include graph.h: Graph holds a
// storage handle, so the dependency points the other way).
using StorageEdgeId = std::uint64_t;
using StorageVertexId = std::uint32_t;
using StorageWeight = std::uint32_t;

// xxhash-style 64-bit content checksum: 8-byte lanes folded with
// multiply-rotate mixing plus an avalanche finalizer. Used for the
// per-section checksums of the `.pgr` format; not cryptographic.
std::uint64_t hash_bytes(const void* data, std::size_t len,
                         std::uint64_t seed = 0);

// Read-only mmap of a whole file (RAII: munmap on destruction; the fd is
// closed right after mapping). Move-only.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { swap(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    swap(other);
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  // Maps `path` read-only and applies an MADV_WILLNEED hint (sequential CSR
  // scans want readahead). Throws kIo on open/map failure.
  static MappedFile open(const std::string& path);

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  void swap(MappedFile& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

class GraphStorage;
using StorageRef = std::shared_ptr<GraphStorage>;

// Move-only owner of one graph's CSR memory. Always held via shared_ptr
// (StorageRef) so graphs, their copies, and cached transposes share it.
class GraphStorage {
 public:
  enum class Backend { kHeap, kMmap };

  GraphStorage(const GraphStorage&) = delete;
  GraphStorage& operator=(const GraphStorage&) = delete;

  // Heap backend from already-built arrays (builders, generators,
  // transpose/symmetrize results). No ceiling check: the arrays exist.
  static StorageRef owned(std::vector<StorageEdgeId> offsets,
                          std::vector<StorageVertexId> targets,
                          std::vector<StorageWeight> weights = {});

  // CSR byte footprint ((n+1) offsets, m targets, m weights if `weighted`)
  // checked against the memory ceiling, 128-bit math. kResource Status when
  // the claim exceeds the ceiling; `path` names the input for diagnostics.
  // Readers run this on untrusted header claims *before* cheaper format
  // plausibility checks so absurd claims always classify as kResource.
  static Status check_footprint(std::uint64_t n, std::uint64_t m,
                                bool weighted, const std::string& path);

  // Heap backend sized from untrusted header claims: check_footprint(), then
  // allocate. Throws kResource when the claim exceeds the ceiling. The
  // readers fill the arrays through the mutable_* accessors.
  static StorageRef allocate(std::uint64_t n, std::uint64_t m, bool weighted,
                             const std::string& path);

  // Mmap backend: shares ownership of the mapping (a `.pgr` with embedded
  // transpose sections backs two storage handles with one mapping); the
  // spans must point into it (the `.pgr` reader computes them from the
  // section table).
  static StorageRef mapped(std::shared_ptr<const MappedFile> file,
                           const std::string& path,
                           std::span<const StorageEdgeId> offsets,
                           std::span<const StorageVertexId> targets,
                           std::span<const StorageWeight> weights);

  // Hybrid backend for compressed `.pgr` files: offsets (and weights, when
  // present) stay zero-copy spans into the mapping while `targets` is the
  // heap buffer the varint decoder produced. The handle owns both, so a
  // registry-shared open reuses the decoded buffer — warm opens pay zero
  // decode cost. Callers must have routed the decode allocation through
  // check_footprint (the decoder does).
  static StorageRef mapped_with_decoded_targets(
      std::shared_ptr<const MappedFile> file, const std::string& path,
      std::span<const StorageEdgeId> offsets,
      std::vector<StorageVertexId> decoded_targets,
      std::span<const StorageWeight> weights);

  std::span<const StorageEdgeId> offsets() const { return offsets_; }
  std::span<const StorageVertexId> targets() const { return targets_; }
  std::span<const StorageWeight> weights() const { return weights_; }

  // Heap backend only (readers filling a fresh allocation). The const views
  // above stay valid: vectors never reallocate after allocate().
  std::span<StorageEdgeId> mutable_offsets() { return own_offsets_; }
  std::span<StorageVertexId> mutable_targets() { return own_targets_; }
  std::span<StorageWeight> mutable_weights() { return own_weights_; }

  Backend backend() const { return backend_; }
  // Bytes of file backing this storage (0 for heap): the mmap never copies,
  // so this is the graph's entire load-time I/O footprint.
  std::uint64_t bytes_mapped() const {
    return map_ != nullptr ? map_->size() : 0;
  }
  // Path of the backing file, when there is one (diagnostics, telemetry).
  const std::string& source_path() const { return source_path_; }
  // The mapping behind an mmap-backed storage (null for heap backends). The
  // registry hit path re-parses the .pgr header from it, so a shared open
  // can rebuild PgrInfo / run deep validation without touching the file.
  std::shared_ptr<const MappedFile> mapped_file() const { return map_; }

  // --- deferred deep-validation flag -----------------------------------------
  // Whether the CSR behind this handle has been range-checked (targets < n,
  // offsets monotone). Heap storages built in-process are trusted; O(1) mmap
  // opens that skipped deep validation are not, and `Graph::ensure_validated`
  // checks them lazily at first algorithm use so a well-formed-header `.pgr`
  // with out-of-range targets cannot drive frontier indexing out of bounds.
  bool validated() const {
    return validated_.load(std::memory_order_acquire);
  }
  void mark_validated() const {
    validated_.store(true, std::memory_order_release);
  }

  // --- transpose memoization -------------------------------------------------
  // The cached transpose of the graph this storage backs, or null. The cache
  // is keyed by identity: two Graph copies sharing this handle share it.
  StorageRef transpose_cache() const;
  // First-wins publish (concurrent transposes both compute; one result is
  // kept). Returns the cached handle all callers should use.
  StorageRef set_transpose_cache(StorageRef t);

 private:
  GraphStorage() = default;

  Backend backend_ = Backend::kHeap;
  std::vector<StorageEdgeId> own_offsets_;
  std::vector<StorageVertexId> own_targets_;
  std::vector<StorageWeight> own_weights_;
  std::shared_ptr<const MappedFile> map_;
  std::span<const StorageEdgeId> offsets_;
  std::span<const StorageVertexId> targets_;
  std::span<const StorageWeight> weights_;
  std::string source_path_;
  mutable std::atomic<bool> validated_{false};

  mutable std::mutex transpose_mu_;
  StorageRef transpose_;
};

}  // namespace pasgal
