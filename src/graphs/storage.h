// GraphStorage: the memory behind a CSR graph, decoupled from the Graph API.
//
// A storage handle owns the offsets/targets/weights arrays either as heap
// buffers (the classic path: readers and builders fill freshly allocated
// vectors) or as views into a read-only memory-mapped `.pgr` file segment
// (RAII munmap; see graph_io.h for the on-disk format). `Graph` and
// `WeightedGraph` hold a shared handle plus `std::span` views into it, so
// every algorithm consumes the same spans regardless of backend and copies
// of a graph share one storage.
//
// The handle also memoizes the graph's transpose: the first
// `Graph::transpose()` on a given storage computes and caches the reverse
// CSR (itself a storage handle), so drivers and benches that need `gt` for
// several variants build it once. A `.pgr` file written with
// `include_transpose` carries the transpose as extra sections, and the mmap
// open path pre-populates the cache from them — reverse edges then cost no
// construction work at all.
//
// Allocation discipline: every heap allocation whose size is dictated by
// untrusted input goes through `allocate()`, which checks the CSR byte
// footprint (128-bit math) against the `pasgal/resource.h` ceiling before
// any vector is materialized. This is the single guard point the file
// readers previously duplicated.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "pasgal/error.h"

namespace pasgal {

// Mirrors graph.h (storage.h must not include graph.h: Graph holds a
// storage handle, so the dependency points the other way).
using StorageEdgeId = std::uint64_t;
using StorageVertexId = std::uint32_t;
using StorageWeight = std::uint32_t;

// xxhash-style 64-bit content checksum: 8-byte lanes folded with
// multiply-rotate mixing plus an avalanche finalizer. Used for the
// per-section checksums of the `.pgr` format; not cryptographic.
std::uint64_t hash_bytes(const void* data, std::size_t len,
                         std::uint64_t seed = 0);

// Read-only mmap of a whole file (RAII: munmap on destruction; the fd is
// closed right after mapping). Move-only.
class MappedFile {
 public:
  MappedFile() = default;
  MappedFile(MappedFile&& other) noexcept { swap(other); }
  MappedFile& operator=(MappedFile&& other) noexcept {
    swap(other);
    return *this;
  }
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  // Maps `path` read-only. With `sequential` (the default) the mapping gets
  // an MADV_WILLNEED hint — CSR consumers scan mostly sequentially. Sharded
  // opens pass false and get MADV_RANDOM instead: the MappedWindow issues
  // its own WILLNEED/DONTNEED per shard, and whole-file readahead would
  // defeat the bounded residency it maintains. Throws kIo on failure.
  static MappedFile open(const std::string& path, bool sequential = true);

  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr; }

 private:
  void swap(MappedFile& other) noexcept {
    std::swap(data_, other.data_);
    std::swap(size_, other.size_);
  }
  const std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

// --- shard-at-a-time execution ----------------------------------------------
//
// A graph larger than the memory budget streams through a bounded window
// instead of being rejected: the CSR is partitioned into contiguous
// vertex-range shards (ShardPlan) and the traversal layer sweeps them in
// order through one MappedWindow, which bounds *residency* — the whole file
// stays mapped so pointers are valid everywhere, but only the active shard's
// pages are hinted resident (MADV_WILLNEED ahead, MADV_DONTNEED behind).

// One contiguous vertex range and the edge range its adjacency lists cover.
struct ShardRange {
  StorageVertexId v_begin = 0;
  StorageVertexId v_end = 0;  // exclusive
  StorageEdgeId e_begin = 0;
  StorageEdgeId e_end = 0;  // exclusive
};

// Contiguous vertex ranges sized so each shard's edge payload fits the
// window budget. Boundaries snap to `align`-vertex blocks (1024 for
// compressed v2, whose chunks are 1024-vertex-aligned) so a shard is always
// a whole number of decode chunks.
class ShardPlan {
 public:
  // Greedy build: grow each range block by block while the edge payload
  // ((e_end - e_begin) * bytes_per_edge) stays within window_bytes. A range
  // always covers at least one block — a hub block heavier than the budget
  // gets a shard (and a transient window) of its own size rather than an
  // error.
  static ShardPlan build(std::span<const StorageEdgeId> offsets,
                         std::uint64_t bytes_per_edge,
                         std::uint64_t window_bytes, std::uint32_t align);

  std::size_t size() const { return ranges_.size(); }
  const ShardRange& operator[](std::size_t i) const { return ranges_[i]; }
  // Index of the shard containing vertex v (binary search).
  std::size_t shard_of(StorageVertexId v) const;
  std::uint64_t window_bytes() const { return window_bytes_; }
  std::uint64_t bytes_per_edge() const { return bytes_per_edge_; }
  // Largest per-shard edge count: sizes the reusable v2 decode buffer.
  StorageEdgeId max_shard_edges() const;

 private:
  std::vector<ShardRange> ranges_;
  std::uint64_t window_bytes_ = 0;
  std::uint64_t bytes_per_edge_ = 0;
};

// The residency window one traversal sweeps through the shards. Two modes:
//
//   * raw — targets (and weights, when present) live in the mapping;
//     activate() madvises the shard's byte range in (WILLNEED, plus
//     HUGEPAGE for multi-MB spans) and the previous shard's range out
//     (DONTNEED; file-backed MAP_PRIVATE read-only pages drop from RSS and
//     refault from page cache / disk on next touch).
//   * decoding — compressed v2 targets decode on demand into one reusable
//     heap buffer sized for the largest shard; the encoded byte range gets
//     the same madvise treatment.
//
// activate() returns the shard's targets pointer and edge base; consumers
// index uniformly with targets[e - e_base] in both modes.
class MappedWindow {
 public:
  struct ActiveShard {
    const StorageVertexId* targets = nullptr;  // index with (e - e_base)
    StorageEdgeId e_base = 0;
  };

  using DecodeFn = std::function<void(const ShardRange&, StorageVertexId*)>;
  // Byte span of a shard's encoded chunks within the mapping (for madvise).
  using EncodedRangeFn =
      std::function<std::pair<const void*, std::size_t>(const ShardRange&)>;

  static std::shared_ptr<MappedWindow> raw(
      std::shared_ptr<const ShardPlan> plan,
      const StorageVertexId* targets_base, const StorageWeight* weights_base);

  static std::shared_ptr<MappedWindow> decoding(
      std::shared_ptr<const ShardPlan> plan, DecodeFn decode,
      EncodedRangeFn encoded_range, const StorageWeight* weights_base);

  // Makes `shard` the resident one: madvises the previous shard out and this
  // one in (decoding it first in decode mode). Serialized internally; the
  // traversal layer drives shards one at a time.
  ActiveShard activate(std::size_t shard);

  // Drops the active shard's residency hint (end of a run, or an unwind at
  // a cancelled sweep boundary). Idempotent.
  void release();

  // Residency hint for an arbitrary mapped range, for bounded one-off scans
  // that walk a whole-file section outside the shard loop (e.g. the SSSP
  // weight-overflow precondition): advise each chunk in, scan it, advise it
  // out. Does not touch the active-shard state or the sweep counters.
  // Passing the enclosing section's bounds widens the advise-out range by a
  // folio-spill margin (see kFolioSpillBytes in storage.cpp) clamped to the
  // section, covering pages a neighbouring chunk's faults resurrected.
  void advise_range(const void* addr, std::size_t len, bool in,
                    const void* section_begin = nullptr,
                    const void* section_end = nullptr) const;

  const ShardPlan& plan() const { return *plan_; }

  // Telemetry: sweeps counts every activation; faults counts activations of
  // a shard that was resident before and had been dropped (each one is a
  // page-refault burst). reset_counters() zeroes both and forgets the
  // visit history — the open-time validation sweep calls it so driver
  // metrics start from the algorithm's first activation.
  std::uint64_t sweeps() const { return sweeps_.load(std::memory_order_relaxed); }
  std::uint64_t faults() const { return faults_.load(std::memory_order_relaxed); }
  void reset_counters();

 private:
  MappedWindow() = default;
  void advise(const void* addr, std::size_t len, int advice) const;
  void advise_shard(const ShardRange& r, bool in) const;
  // DONTNEED widened by the folio-spill margin, clamped to [sec_lo, sec_hi).
  void advise_out_wide(const void* addr, std::size_t len, const void* sec_lo,
                       const void* sec_hi) const;

  std::shared_ptr<const ShardPlan> plan_;
  const StorageVertexId* targets_base_ = nullptr;  // raw mode
  const StorageWeight* weights_base_ = nullptr;
  StorageEdgeId total_edges_ = 0;  // section extent for clamped advises
  DecodeFn decode_;               // decode mode
  EncodedRangeFn encoded_range_;  // decode mode
  const void* encoded_lo_ = nullptr;  // encoded stream bounds (decode mode)
  const void* encoded_hi_ = nullptr;
  std::vector<StorageVertexId> decode_buf_;

  mutable std::mutex mu_;
  std::ptrdiff_t active_ = -1;
  std::ptrdiff_t decoded_ = -1;  // shard currently in decode_buf_
  std::vector<bool> visited_;
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> faults_{0};
};

class GraphStorage;
using StorageRef = std::shared_ptr<GraphStorage>;

// Immutable per-vertex insert/delete patch set layered over a storage's CSR
// (graphs/delta.h). Attached to the storage handle so every Graph copy and
// the cached transpose observe one consistent overlay version.
class DeltaSnapshot;

// Move-only owner of one graph's CSR memory. Always held via shared_ptr
// (StorageRef) so graphs, their copies, and cached transposes share it.
class GraphStorage {
 public:
  enum class Backend { kHeap, kMmap };

  GraphStorage(const GraphStorage&) = delete;
  GraphStorage& operator=(const GraphStorage&) = delete;

  // Heap backend from already-built arrays (builders, generators,
  // transpose/symmetrize results). No ceiling check: the arrays exist.
  static StorageRef owned(std::vector<StorageEdgeId> offsets,
                          std::vector<StorageVertexId> targets,
                          std::vector<StorageWeight> weights = {});

  // CSR byte footprint ((n+1) offsets, m targets, m weights if `weighted`)
  // checked against the memory ceiling, 128-bit math. kResource Status when
  // the claim exceeds the ceiling; `path` names the input for diagnostics.
  // Readers run this on untrusted header claims *before* cheaper format
  // plausibility checks so absurd claims always classify as kResource.
  static Status check_footprint(std::uint64_t n, std::uint64_t m,
                                bool weighted, const std::string& path);

  // Windowed variant: prices what a sharded open keeps resident — the
  // offsets array (touched in full by every traversal) plus the window
  // budget — instead of the whole file. `extra_bytes` covers mode-specific
  // residents (the v2 decode buffer, transpose offsets).
  static Status check_windowed_footprint(std::uint64_t n,
                                         std::uint64_t window_bytes,
                                         std::uint64_t extra_bytes,
                                         const std::string& path);

  // Heap backend sized from untrusted header claims: check_footprint(), then
  // allocate. Throws kResource when the claim exceeds the ceiling. The
  // readers fill the arrays through the mutable_* accessors.
  static StorageRef allocate(std::uint64_t n, std::uint64_t m, bool weighted,
                             const std::string& path);

  // Mmap backend: shares ownership of the mapping (a `.pgr` with embedded
  // transpose sections backs two storage handles with one mapping); the
  // spans must point into it (the `.pgr` reader computes them from the
  // section table).
  static StorageRef mapped(std::shared_ptr<const MappedFile> file,
                           const std::string& path,
                           std::span<const StorageEdgeId> offsets,
                           std::span<const StorageVertexId> targets,
                           std::span<const StorageWeight> weights);

  // Hybrid backend for compressed `.pgr` files: offsets (and weights, when
  // present) stay zero-copy spans into the mapping while `targets` is the
  // heap buffer the varint decoder produced. The handle owns both, so a
  // registry-shared open reuses the decoded buffer — warm opens pay zero
  // decode cost. Callers must have routed the decode allocation through
  // check_footprint (the decoder does).
  static StorageRef mapped_with_decoded_targets(
      std::shared_ptr<const MappedFile> file, const std::string& path,
      std::span<const StorageEdgeId> offsets,
      std::vector<StorageVertexId> decoded_targets,
      std::span<const StorageWeight> weights);

  // Window-only backend for sharded compressed files: offsets (and weights)
  // are zero-copy spans into the mapping but there is no whole-graph targets
  // array — shards decode on demand into the MappedWindow's reusable buffer.
  // targets() stays empty; consumers must go through the window (the
  // traversal layer does; random-access algorithms are rejected upstream
  // with a typed kUsage error).
  static StorageRef mapped_windowed(std::shared_ptr<const MappedFile> file,
                                    const std::string& path,
                                    std::span<const StorageEdgeId> offsets,
                                    std::span<const StorageWeight> weights,
                                    std::uint64_t edge_count);

  std::span<const StorageEdgeId> offsets() const { return offsets_; }
  std::span<const StorageVertexId> targets() const { return targets_; }
  std::span<const StorageWeight> weights() const { return weights_; }

  // Heap backend only (readers filling a fresh allocation). The const views
  // above stay valid: vectors never reallocate after allocate().
  std::span<StorageEdgeId> mutable_offsets() { return own_offsets_; }
  std::span<StorageVertexId> mutable_targets() { return own_targets_; }
  std::span<StorageWeight> mutable_weights() { return own_weights_; }

  Backend backend() const { return backend_; }
  // Bytes of file backing this storage (0 for heap): the mmap never copies,
  // so this is the graph's entire load-time I/O footprint.
  std::uint64_t bytes_mapped() const {
    return map_ != nullptr ? map_->size() : 0;
  }
  // Number of edges, independent of whether a whole-graph targets array
  // exists (window-only storages have none; Graph::num_edges reads this).
  std::uint64_t edge_count() const { return edge_count_; }
  // Heap bytes held beside the mapping: the decoded targets of a hybrid
  // compressed open, or a window's reusable decode buffer. Part of the
  // admission/eviction accounting (registry Stats::resident_bytes).
  std::uint64_t decode_heap_bytes() const { return decode_heap_bytes_; }
  // What this handle actually keeps resident: mapping + decode heap for
  // in-core backends; the priced windowed footprint for sharded ones (the
  // whole file is mapped but only the window is hinted resident).
  std::uint64_t resident_bytes() const {
    if (resident_override_ != 0) return resident_override_;
    return bytes_mapped() + decode_heap_bytes_;
  }
  // True when targets exist only shard-at-a-time (see mapped_windowed).
  bool windowed() const { return window_only_; }

  // --- sharded execution state ----------------------------------------------
  // Set by the sharded `.pgr` open; the traversal layer discovers sharding
  // through these. `resident_override` is the windowed footprint the open
  // was priced at (0 keeps the default resident_bytes()).
  void set_sharding(std::shared_ptr<const ShardPlan> plan,
                    std::shared_ptr<MappedWindow> window,
                    std::uint64_t resident_override) {
    shard_plan_ = std::move(plan);
    shard_window_ = std::move(window);
    resident_override_ = resident_override;
  }
  const std::shared_ptr<const ShardPlan>& shard_plan() const {
    return shard_plan_;
  }
  const std::shared_ptr<MappedWindow>& shard_window() const {
    return shard_window_;
  }
  // Path of the backing file, when there is one (diagnostics, telemetry).
  const std::string& source_path() const { return source_path_; }
  // The mapping behind an mmap-backed storage (null for heap backends). The
  // registry hit path re-parses the .pgr header from it, so a shared open
  // can rebuild PgrInfo / run deep validation without touching the file.
  std::shared_ptr<const MappedFile> mapped_file() const { return map_; }

  // --- deferred deep-validation flag -----------------------------------------
  // Whether the CSR behind this handle has been range-checked (targets < n,
  // offsets monotone). Heap storages built in-process are trusted; O(1) mmap
  // opens that skipped deep validation are not, and `Graph::ensure_validated`
  // checks them lazily at first algorithm use so a well-formed-header `.pgr`
  // with out-of-range targets cannot drive frontier indexing out of bounds.
  bool validated() const {
    return validated_.load(std::memory_order_acquire);
  }
  void mark_validated() const {
    validated_.store(true, std::memory_order_release);
  }

  // --- transpose memoization -------------------------------------------------
  // The cached transpose of the graph this storage backs, or null. The cache
  // is keyed by identity: two Graph copies sharing this handle share it.
  StorageRef transpose_cache() const;
  // First-wins publish (concurrent transposes both compute; one result is
  // kept). Returns the cached handle all callers should use. If this storage
  // carries a delta overlay, the flipped (in-edge) snapshot is propagated
  // onto the freshly cached transpose so pull traversals see the same
  // overlay version immediately.
  StorageRef set_transpose_cache(StorageRef t);

  // --- delta overlay ---------------------------------------------------------
  // The pending update overlay (graphs/delta.h), or null. Readers take the
  // lock-free fast path when has_delta() is false — the common case for
  // static graphs — and fetch the shared snapshot once per traversal entry
  // otherwise. set_delta() also pushes the snapshot's flipped (in-edge) side
  // onto the cached transpose, and accepts null to clear (compaction).
  bool has_delta() const { return has_delta_.load(std::memory_order_acquire); }
  std::shared_ptr<const DeltaSnapshot> delta_snapshot() const;
  void set_delta(std::shared_ptr<const DeltaSnapshot> d);

  // One-time memo for the overlay's sorted-adjacency invariant: the merge in
  // edge_map and the membership checks in apply_updates binary-search the
  // base lists, so the first apply_updates on a handle verifies per-vertex
  // sortedness once and records it here.
  bool adjacency_sorted() const {
    return adjacency_sorted_.load(std::memory_order_acquire);
  }
  void mark_adjacency_sorted() const {
    adjacency_sorted_.store(true, std::memory_order_release);
  }

 private:
  GraphStorage() = default;

  Backend backend_ = Backend::kHeap;
  std::vector<StorageEdgeId> own_offsets_;
  std::vector<StorageVertexId> own_targets_;
  std::vector<StorageWeight> own_weights_;
  std::shared_ptr<const MappedFile> map_;
  std::span<const StorageEdgeId> offsets_;
  std::span<const StorageVertexId> targets_;
  std::span<const StorageWeight> weights_;
  std::string source_path_;
  std::uint64_t edge_count_ = 0;
  std::uint64_t decode_heap_bytes_ = 0;
  std::uint64_t resident_override_ = 0;
  bool window_only_ = false;
  std::shared_ptr<const ShardPlan> shard_plan_;
  std::shared_ptr<MappedWindow> shard_window_;
  mutable std::atomic<bool> validated_{false};
  mutable std::atomic<bool> adjacency_sorted_{false};

  // transpose_mu_ also guards delta_; has_delta_ is the lock-free fast path.
  mutable std::mutex transpose_mu_;
  StorageRef transpose_;
  std::shared_ptr<const DeltaSnapshot> delta_;
  std::atomic<bool> has_delta_{false};
};

}  // namespace pasgal
