#include "graphs/graph_io.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "pasgal/resource.h"

namespace pasgal {

namespace {

[[noreturn]] void fail(ErrorCategory category, const std::string& path,
                       const std::string& why,
                       std::uint64_t offset = kNoOffset) {
  throw Error(category, why, path, offset);
}

void expect_header(std::istream& in, const std::string& path,
                   const std::string& expected) {
  std::string header;
  if (!(in >> header) || header != expected) {
    fail(ErrorCategory::kFormat, path,
         "expected header '" + expected + "', got '" + header + "'");
  }
}

std::uint64_t file_size_bytes(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

// Resource guard shared by every reader and generator-facing path: the
// header-claimed sizes drive allocations, so they are cross-checked against
// the memory ceiling *before* any vector is materialized. `bytes_per_vertex`
// and `bytes_per_edge` describe the in-memory CSR footprint.
void guard_claimed_sizes(const std::string& path, std::uint64_t n,
                         std::uint64_t m, std::uint64_t bytes_per_vertex,
                         std::uint64_t bytes_per_edge) {
  unsigned __int128 need =
      (static_cast<unsigned __int128>(n) + 1) * bytes_per_vertex +
      static_cast<unsigned __int128>(m) * bytes_per_edge;
  constexpr std::uint64_t kMax = static_cast<std::uint64_t>(-1);
  std::uint64_t need64 = need > kMax ? kMax : static_cast<std::uint64_t>(need);
  check_allocation(need64,
                   "graph with n=" + std::to_string(n) +
                       " m=" + std::to_string(m),
                   path)
      .throw_if_error();
}

// Plausibility floor for text formats: every offset/target/weight is at
// least one digit plus a separator, so a well-formed file must have at least
// 2 * records bytes after the header. Catches headers claiming far more
// records than the file could possibly hold without parsing them all.
void guard_text_plausibility(const std::string& path, std::uint64_t records) {
  std::uint64_t actual = file_size_bytes(path);
  if (records > actual / 2 + 1) {
    fail(ErrorCategory::kFormat, path,
         "header claims " + std::to_string(records) +
             " records but the file has only " + std::to_string(actual) +
             " bytes",
         actual);
  }
}

// Binary-format frame check: header size field and actual file size must
// both match the size implied by (n, m). A short file is a truncation, a
// long one is trailing garbage; both are rejected.
void guard_bin_frame(const std::string& path, std::uint64_t claimed_bytes,
                     unsigned __int128 expected) {
  constexpr std::uint64_t kMax = static_cast<std::uint64_t>(-1);
  std::uint64_t expected64 =
      expected > kMax ? kMax : static_cast<std::uint64_t>(expected);
  if (claimed_bytes != expected64) {
    fail(ErrorCategory::kFormat, path,
         "header size field says " + std::to_string(claimed_bytes) +
             " bytes but n/m imply " + std::to_string(expected64));
  }
  std::uint64_t actual = file_size_bytes(path);
  if (actual < expected64) {
    fail(ErrorCategory::kFormat, path,
         "truncated: file has " + std::to_string(actual) +
             " bytes, header-implied size is " + std::to_string(expected64),
         actual);
  }
  if (actual > expected64) {
    fail(ErrorCategory::kFormat, path,
         std::to_string(actual - expected64) +
             " bytes of trailing garbage after the header-implied size of " +
             std::to_string(expected64),
         expected64);
  }
}

}  // namespace

void write_adj(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  out << "AdjacencyGraph\n" << g.num_vertices() << '\n' << g.num_edges() << '\n';
  for (std::size_t v = 0; v < g.num_vertices(); ++v) out << g.offsets()[v] << '\n';
  for (VertexId t : g.targets()) out << t << '\n';
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

Graph read_adj(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCategory::kIo, path, "cannot open for reading");
  expect_header(in, path, "AdjacencyGraph");
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) fail(ErrorCategory::kFormat, path, "bad n/m");
  guard_claimed_sizes(path, n, m, sizeof(EdgeId), sizeof(VertexId));
  guard_text_plausibility(path, static_cast<std::uint64_t>(n) + m);
  std::vector<EdgeId> offsets(n + 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (!(in >> offsets[v])) fail(ErrorCategory::kFormat, path,
                                  "truncated offsets (vertex " +
                                      std::to_string(v) + " of " +
                                      std::to_string(n) + ")");
  }
  offsets[n] = m;
  std::vector<VertexId> targets(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> targets[e])) fail(ErrorCategory::kFormat, path,
                                  "truncated targets (edge " +
                                      std::to_string(e) + " of " +
                                      std::to_string(m) + ")");
  }
  if (std::string extra; in >> extra) {
    fail(ErrorCategory::kFormat, path,
         "trailing garbage after the last target: '" + extra + "'");
  }
  Graph g(std::move(offsets), std::move(targets));
  Status s = g.validate();
  if (!s.ok()) fail(s.category(), path, s.message());
  return g;
}

void write_adj(const WeightedGraph<std::uint32_t>& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  out << "WeightedAdjacencyGraph\n"
      << g.num_vertices() << '\n'
      << g.num_edges() << '\n';
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    out << g.unweighted().offsets()[v] << '\n';
  }
  for (VertexId t : g.unweighted().targets()) out << t << '\n';
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    out << g.edge_weight(e) << '\n';
  }
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

WeightedGraph<std::uint32_t> read_weighted_adj(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCategory::kIo, path, "cannot open for reading");
  expect_header(in, path, "WeightedAdjacencyGraph");
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) fail(ErrorCategory::kFormat, path, "bad n/m");
  guard_claimed_sizes(path, n, m,
                      sizeof(EdgeId), sizeof(VertexId) + sizeof(std::uint32_t));
  guard_text_plausibility(path, static_cast<std::uint64_t>(n) + 2 * m);
  std::vector<EdgeId> offsets(n + 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (!(in >> offsets[v])) fail(ErrorCategory::kFormat, path,
                                  "truncated offsets");
  }
  offsets[n] = m;
  std::vector<VertexId> targets(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> targets[e])) fail(ErrorCategory::kFormat, path,
                                  "truncated targets");
  }
  std::vector<std::uint32_t> weights(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> weights[e])) fail(ErrorCategory::kFormat, path,
                                  "truncated weights");
  }
  if (std::string extra; in >> extra) {
    fail(ErrorCategory::kFormat, path,
         "trailing garbage after the last weight: '" + extra + "'");
  }
  WeightedGraph<std::uint32_t> g(std::move(offsets), std::move(targets),
                                 std::move(weights));
  Status s = g.validate();
  if (!s.ok()) fail(s.category(), path, s.message());
  return g;
}

void write_bin(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  std::uint64_t n = g.num_vertices();
  std::uint64_t m = g.num_edges();
  std::uint64_t size_bytes = 3 * sizeof(std::uint64_t) +
                             (n + 1) * sizeof(std::uint64_t) +
                             m * sizeof(std::uint32_t);
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&size_bytes), sizeof(size_bytes));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(g.targets().data()),
            static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

void write_bin(const WeightedGraph<std::uint32_t>& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  std::uint64_t n = g.num_vertices();
  std::uint64_t m = g.num_edges();
  std::uint64_t size_bytes = 3 * sizeof(std::uint64_t) +
                             (n + 1) * sizeof(std::uint64_t) +
                             2 * m * sizeof(std::uint32_t);
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&size_bytes), sizeof(size_bytes));
  out.write(reinterpret_cast<const char*>(g.unweighted().offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(g.unweighted().targets().data()),
            static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint32_t w = g.edge_weight(e);
    out.write(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

WeightedGraph<std::uint32_t> read_weighted_bin(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(ErrorCategory::kIo, path, "cannot open for reading");
  std::uint64_t n = 0, m = 0, size_bytes = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&size_bytes), sizeof(size_bytes));
  if (!in) fail(ErrorCategory::kFormat, path, "truncated header",
                file_size_bytes(path));
  guard_claimed_sizes(path, n, m,
                      sizeof(std::uint64_t), 2 * sizeof(std::uint32_t));
  unsigned __int128 expected =
      3 * sizeof(std::uint64_t) +
      (static_cast<unsigned __int128>(n) + 1) * sizeof(std::uint64_t) +
      static_cast<unsigned __int128>(m) * 2 * sizeof(std::uint32_t);
  guard_bin_frame(path, size_bytes, expected);
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  std::vector<std::uint32_t> weights(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!in) fail(ErrorCategory::kFormat, path, "truncated body");
  WeightedGraph<std::uint32_t> g(std::move(offsets), std::move(targets),
                                 std::move(weights));
  Status s = g.validate();
  if (!s.ok()) fail(s.category(), path, s.message());
  return g;
}

Graph read_bin(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(ErrorCategory::kIo, path, "cannot open for reading");
  std::uint64_t n = 0, m = 0, size_bytes = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&size_bytes), sizeof(size_bytes));
  if (!in) fail(ErrorCategory::kFormat, path, "truncated header",
                file_size_bytes(path));
  guard_claimed_sizes(path, n, m, sizeof(std::uint64_t), sizeof(std::uint32_t));
  unsigned __int128 expected =
      3 * sizeof(std::uint64_t) +
      (static_cast<unsigned __int128>(n) + 1) * sizeof(std::uint64_t) +
      static_cast<unsigned __int128>(m) * sizeof(std::uint32_t);
  guard_bin_frame(path, size_bytes, expected);
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!in) fail(ErrorCategory::kFormat, path, "truncated body");
  Graph g(std::move(offsets), std::move(targets));
  Status s = g.validate();
  if (!s.ok()) fail(s.category(), path, s.message());
  return g;
}

}  // namespace pasgal
