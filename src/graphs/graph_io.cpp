#include "graphs/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace pasgal {

namespace {

[[noreturn]] void fail(const std::string& path, const std::string& why) {
  throw std::runtime_error("graph_io: " + path + ": " + why);
}

void expect_header(std::istream& in, const std::string& path,
                   const std::string& expected) {
  std::string header;
  if (!(in >> header) || header != expected) {
    fail(path, "expected header '" + expected + "', got '" + header + "'");
  }
}

}  // namespace

void write_adj(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << "AdjacencyGraph\n" << g.num_vertices() << '\n' << g.num_edges() << '\n';
  for (std::size_t v = 0; v < g.num_vertices(); ++v) out << g.offsets()[v] << '\n';
  for (VertexId t : g.targets()) out << t << '\n';
  if (!out) fail(path, "write error");
}

Graph read_adj(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  expect_header(in, path, "AdjacencyGraph");
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) fail(path, "bad n/m");
  std::vector<EdgeId> offsets(n + 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (!(in >> offsets[v])) fail(path, "truncated offsets");
  }
  offsets[n] = m;
  std::vector<VertexId> targets(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> targets[e])) fail(path, "truncated targets");
  }
  return Graph(std::move(offsets), std::move(targets));
}

void write_adj(const WeightedGraph<std::uint32_t>& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(path, "cannot open for writing");
  out << "WeightedAdjacencyGraph\n"
      << g.num_vertices() << '\n'
      << g.num_edges() << '\n';
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    out << g.unweighted().offsets()[v] << '\n';
  }
  for (VertexId t : g.unweighted().targets()) out << t << '\n';
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    out << g.edge_weight(e) << '\n';
  }
  if (!out) fail(path, "write error");
}

WeightedGraph<std::uint32_t> read_weighted_adj(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(path, "cannot open for reading");
  expect_header(in, path, "WeightedAdjacencyGraph");
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) fail(path, "bad n/m");
  std::vector<EdgeId> offsets(n + 1);
  for (std::size_t v = 0; v < n; ++v) {
    if (!(in >> offsets[v])) fail(path, "truncated offsets");
  }
  offsets[n] = m;
  std::vector<VertexId> targets(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> targets[e])) fail(path, "truncated targets");
  }
  std::vector<std::uint32_t> weights(m);
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> weights[e])) fail(path, "truncated weights");
  }
  return WeightedGraph<std::uint32_t>(std::move(offsets), std::move(targets),
                                      std::move(weights));
}

void write_bin(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  std::uint64_t n = g.num_vertices();
  std::uint64_t m = g.num_edges();
  std::uint64_t size_bytes = 3 * sizeof(std::uint64_t) +
                             (n + 1) * sizeof(std::uint64_t) +
                             m * sizeof(std::uint32_t);
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&size_bytes), sizeof(size_bytes));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(g.targets().data()),
            static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!out) fail(path, "write error");
}

void write_bin(const WeightedGraph<std::uint32_t>& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(path, "cannot open for writing");
  std::uint64_t n = g.num_vertices();
  std::uint64_t m = g.num_edges();
  std::uint64_t size_bytes = 3 * sizeof(std::uint64_t) +
                             (n + 1) * sizeof(std::uint64_t) +
                             2 * m * sizeof(std::uint32_t);
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&size_bytes), sizeof(size_bytes));
  out.write(reinterpret_cast<const char*>(g.unweighted().offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(g.unweighted().targets().data()),
            static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint32_t w = g.edge_weight(e);
    out.write(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  if (!out) fail(path, "write error");
}

WeightedGraph<std::uint32_t> read_weighted_bin(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  std::uint64_t n = 0, m = 0, size_bytes = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&size_bytes), sizeof(size_bytes));
  if (!in) fail(path, "truncated header");
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  std::vector<std::uint32_t> weights(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  in.read(reinterpret_cast<char*>(weights.data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!in) fail(path, "truncated body");
  return WeightedGraph<std::uint32_t>(std::move(offsets), std::move(targets),
                                      std::move(weights));
}

Graph read_bin(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(path, "cannot open for reading");
  std::uint64_t n = 0, m = 0, size_bytes = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&size_bytes), sizeof(size_bytes));
  if (!in) fail(path, "truncated header");
  std::vector<EdgeId> offsets(n + 1);
  std::vector<VertexId> targets(m);
  in.read(reinterpret_cast<char*>(offsets.data()),
          static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(targets.data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!in) fail(path, "truncated body");
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace pasgal
