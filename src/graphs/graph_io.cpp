#include "graphs/graph_io.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>

#include "graphs/registry.h"
#include "graphs/storage.h"
#include "pasgal/fault.h"
#include "pasgal/resource.h"

namespace pasgal {

namespace {

[[noreturn]] void fail(ErrorCategory category, const std::string& path,
                       const std::string& why,
                       std::uint64_t offset = kNoOffset) {
  throw Error(category, why, path, offset);
}

void expect_header(std::istream& in, const std::string& path,
                   const std::string& expected) {
  std::string header;
  if (!(in >> header) || header != expected) {
    fail(ErrorCategory::kFormat, path,
         "expected header '" + expected + "', got '" + header + "'");
  }
}

std::uint64_t file_size_bytes(const std::string& path) {
  std::error_code ec;
  auto size = std::filesystem::file_size(path, ec);
  return ec ? 0 : static_cast<std::uint64_t>(size);
}

// Plausibility floor for text formats: every offset/target/weight is at
// least one digit plus a separator, so a well-formed file must have at least
// 2 * records bytes after the header. Catches headers claiming far more
// records than the file could possibly hold without parsing them all.
void guard_text_plausibility(const std::string& path, std::uint64_t records) {
  std::uint64_t actual = file_size_bytes(path);
  if (records > actual / 2 + 1) {
    fail(ErrorCategory::kFormat, path,
         "header claims " + std::to_string(records) +
             " records but the file has only " + std::to_string(actual) +
             " bytes",
         actual);
  }
}

// Binary-format frame check: header size field and actual file size must
// both match the size implied by (n, m). A short file is a truncation, a
// long one is trailing garbage; both are rejected.
void guard_bin_frame(const std::string& path, std::uint64_t claimed_bytes,
                     unsigned __int128 expected) {
  constexpr std::uint64_t kMax = static_cast<std::uint64_t>(-1);
  std::uint64_t expected64 =
      expected > kMax ? kMax : static_cast<std::uint64_t>(expected);
  if (claimed_bytes != expected64) {
    fail(ErrorCategory::kFormat, path,
         "header size field says " + std::to_string(claimed_bytes) +
             " bytes but n/m imply " + std::to_string(expected64));
  }
  std::uint64_t actual = file_size_bytes(path);
  if (actual < expected64) {
    fail(ErrorCategory::kFormat, path,
         "truncated: file has " + std::to_string(actual) +
             " bytes, header-implied size is " + std::to_string(expected64),
         actual);
  }
  if (actual > expected64) {
    fail(ErrorCategory::kFormat, path,
         std::to_string(actual - expected64) +
             " bytes of trailing garbage after the header-implied size of " +
             std::to_string(expected64),
         expected64);
  }
}

void validate_or_fail(const Graph& g, const std::string& path) {
  Status s = g.validate();
  if (!s.ok()) fail(s.category(), path, s.message());
}

}  // namespace

void write_adj(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  out << "AdjacencyGraph\n" << g.num_vertices() << '\n' << g.num_edges() << '\n';
  for (std::size_t v = 0; v < g.num_vertices(); ++v) out << g.offsets()[v] << '\n';
  for (VertexId t : g.targets()) out << t << '\n';
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

Graph read_adj(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCategory::kIo, path, "cannot open for reading");
  expect_header(in, path, "AdjacencyGraph");
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) fail(ErrorCategory::kFormat, path, "bad n/m");
  GraphStorage::check_footprint(n, m, /*weighted=*/false, path)
      .throw_if_error();
  guard_text_plausibility(path, static_cast<std::uint64_t>(n) + m);
  StorageRef storage = GraphStorage::allocate(n, m, /*weighted=*/false, path);
  auto offsets = storage->mutable_offsets();
  for (std::size_t v = 0; v < n; ++v) {
    if (!(in >> offsets[v])) fail(ErrorCategory::kFormat, path,
                                  "truncated offsets (vertex " +
                                      std::to_string(v) + " of " +
                                      std::to_string(n) + ")");
  }
  offsets[n] = m;
  auto targets = storage->mutable_targets();
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> targets[e])) fail(ErrorCategory::kFormat, path,
                                  "truncated targets (edge " +
                                      std::to_string(e) + " of " +
                                      std::to_string(m) + ")");
  }
  if (std::string extra; in >> extra) {
    fail(ErrorCategory::kFormat, path,
         "trailing garbage after the last target: '" + extra + "'");
  }
  Graph g(std::move(storage));
  validate_or_fail(g, path);
  return g;
}

void write_adj(const WeightedGraph<std::uint32_t>& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  out << "WeightedAdjacencyGraph\n"
      << g.num_vertices() << '\n'
      << g.num_edges() << '\n';
  for (std::size_t v = 0; v < g.num_vertices(); ++v) {
    out << g.unweighted().offsets()[v] << '\n';
  }
  for (VertexId t : g.unweighted().targets()) out << t << '\n';
  for (std::size_t e = 0; e < g.num_edges(); ++e) {
    out << g.edge_weight(e) << '\n';
  }
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

WeightedGraph<std::uint32_t> read_weighted_adj(const std::string& path) {
  std::ifstream in(path);
  if (!in) fail(ErrorCategory::kIo, path, "cannot open for reading");
  expect_header(in, path, "WeightedAdjacencyGraph");
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) fail(ErrorCategory::kFormat, path, "bad n/m");
  GraphStorage::check_footprint(n, m, /*weighted=*/true, path).throw_if_error();
  guard_text_plausibility(path, static_cast<std::uint64_t>(n) + 2 * m);
  StorageRef storage = GraphStorage::allocate(n, m, /*weighted=*/true, path);
  auto offsets = storage->mutable_offsets();
  for (std::size_t v = 0; v < n; ++v) {
    if (!(in >> offsets[v])) fail(ErrorCategory::kFormat, path,
                                  "truncated offsets");
  }
  offsets[n] = m;
  auto targets = storage->mutable_targets();
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> targets[e])) fail(ErrorCategory::kFormat, path,
                                  "truncated targets");
  }
  auto weights = storage->mutable_weights();
  for (std::size_t e = 0; e < m; ++e) {
    if (!(in >> weights[e])) fail(ErrorCategory::kFormat, path,
                                  "truncated weights");
  }
  if (std::string extra; in >> extra) {
    fail(ErrorCategory::kFormat, path,
         "trailing garbage after the last weight: '" + extra + "'");
  }
  WeightedGraph<std::uint32_t> g(std::move(storage));
  Status s = g.validate();
  if (!s.ok()) fail(s.category(), path, s.message());
  return g;
}

void write_bin(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  std::uint64_t n = g.num_vertices();
  std::uint64_t m = g.num_edges();
  std::uint64_t size_bytes = 3 * sizeof(std::uint64_t) +
                             (n + 1) * sizeof(std::uint64_t) +
                             m * sizeof(std::uint32_t);
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&size_bytes), sizeof(size_bytes));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(g.targets().data()),
            static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

void write_bin(const WeightedGraph<std::uint32_t>& g, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  std::uint64_t n = g.num_vertices();
  std::uint64_t m = g.num_edges();
  std::uint64_t size_bytes = 3 * sizeof(std::uint64_t) +
                             (n + 1) * sizeof(std::uint64_t) +
                             2 * m * sizeof(std::uint32_t);
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&size_bytes), sizeof(size_bytes));
  out.write(reinterpret_cast<const char*>(g.unweighted().offsets().data()),
            static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  out.write(reinterpret_cast<const char*>(g.unweighted().targets().data()),
            static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  for (std::uint64_t e = 0; e < m; ++e) {
    std::uint32_t w = g.edge_weight(e);
    out.write(reinterpret_cast<const char*>(&w), sizeof(w));
  }
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

WeightedGraph<std::uint32_t> read_weighted_bin(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(ErrorCategory::kIo, path, "cannot open for reading");
  std::uint64_t n = 0, m = 0, size_bytes = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&size_bytes), sizeof(size_bytes));
  if (!in) fail(ErrorCategory::kFormat, path, "truncated header",
                file_size_bytes(path));
  GraphStorage::check_footprint(n, m, /*weighted=*/true, path).throw_if_error();
  unsigned __int128 expected =
      3 * sizeof(std::uint64_t) +
      (static_cast<unsigned __int128>(n) + 1) * sizeof(std::uint64_t) +
      static_cast<unsigned __int128>(m) * 2 * sizeof(std::uint32_t);
  guard_bin_frame(path, size_bytes, expected);
  StorageRef storage = GraphStorage::allocate(n, m, /*weighted=*/true, path);
  in.read(reinterpret_cast<char*>(storage->mutable_offsets().data()),
          static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(storage->mutable_targets().data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  in.read(reinterpret_cast<char*>(storage->mutable_weights().data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!in) fail(ErrorCategory::kFormat, path, "truncated body");
  WeightedGraph<std::uint32_t> g(std::move(storage));
  Status s = g.validate();
  if (!s.ok()) fail(s.category(), path, s.message());
  return g;
}

Graph read_bin(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) fail(ErrorCategory::kIo, path, "cannot open for reading");
  std::uint64_t n = 0, m = 0, size_bytes = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  in.read(reinterpret_cast<char*>(&m), sizeof(m));
  in.read(reinterpret_cast<char*>(&size_bytes), sizeof(size_bytes));
  if (!in) fail(ErrorCategory::kFormat, path, "truncated header",
                file_size_bytes(path));
  GraphStorage::check_footprint(n, m, /*weighted=*/false, path)
      .throw_if_error();
  unsigned __int128 expected =
      3 * sizeof(std::uint64_t) +
      (static_cast<unsigned __int128>(n) + 1) * sizeof(std::uint64_t) +
      static_cast<unsigned __int128>(m) * sizeof(std::uint32_t);
  guard_bin_frame(path, size_bytes, expected);
  StorageRef storage = GraphStorage::allocate(n, m, /*weighted=*/false, path);
  in.read(reinterpret_cast<char*>(storage->mutable_offsets().data()),
          static_cast<std::streamsize>((n + 1) * sizeof(std::uint64_t)));
  in.read(reinterpret_cast<char*>(storage->mutable_targets().data()),
          static_cast<std::streamsize>(m * sizeof(std::uint32_t)));
  if (!in) fail(ErrorCategory::kFormat, path, "truncated body");
  Graph g(std::move(storage));
  validate_or_fail(g, path);
  return g;
}

// --- .pgr -------------------------------------------------------------------
//
// Byte layout (all fields little-endian, as written by this host):
//   [  0,   8)  magic "PGRGRAPH"
//   [  8,  12)  u32 version (1 raw, 2 when the targets section is compressed)
//   [ 12,  16)  u32 flags: bit0 weighted, bit1 symmetric, bit2 has_transpose,
//               bit3 compressed targets (version 2 only)
//   [ 16,  24)  u64 n
//   [ 24,  32)  u64 m
//   [ 32,  40)  u64 number of non-empty sections
//   [ 40, 160)  5 section-table entries of {u64 file offset, u64 bytes,
//               u64 checksum}, canonical order: offsets, targets, weights,
//               transpose offsets, transpose targets. Absent sections are
//               all-zero entries.
//   [160, 192)  reserved, must be zero
// Sections follow, each starting on a 64-byte boundary (zero padding in the
// gaps), in canonical order, with no trailing bytes after the last section.
// In version 1 the layout is fully determined by (n, m, flags); the reader
// recomputes it and rejects any file whose table or size disagrees — so
// seeking past the header is safe without trusting the table. In version 2
// the compressed targets section has a content-dependent size, so its byte
// count comes from the section table; every other entry is still recomputed,
// and the total (including the table's claim for targets) must equal the
// file size exactly.
//
// Compressed targets section (version 2, flag bit3; DESIGN.md §5f):
//   [ 0,  8)  u64 chunk count C (= ceil(n / V))
//   [ 8, 16)  u64 vertices per chunk V (>= 1)
//   [16, 16 + (C+1)*8)  u64 stream_off[0..C], byte offsets relative to the
//             section start. stream_off[c] for c < C is the 64-byte-aligned
//             start of chunk c's varint stream; stream_off[C] is the exact
//             end of the last chunk's payload (== section byte count).
// Chunk c encodes the adjacency lists of vertices [c*V, min(n, (c+1)*V)) as
// GBBS-style delta varints: per vertex, the first target is delta'd against
// the source vertex id and each subsequent target against the previous one;
// deltas are zigzag-mapped and LEB128-encoded (7 bits per byte, high bit =
// continuation). Bytes between a chunk's payload end (implicit — the decoder
// knows every degree from the offsets section) and the next chunk's aligned
// start must be zero.

namespace {

constexpr char kPgrMagic[8] = {'P', 'G', 'R', 'G', 'R', 'A', 'P', 'H'};
constexpr std::uint64_t kPgrHeaderBytes = 192;
constexpr std::uint64_t kPgrAlign = 64;
constexpr std::uint32_t kPgrFlagWeighted = 1u << 0;
constexpr std::uint32_t kPgrFlagSymmetric = 1u << 1;
constexpr std::uint32_t kPgrFlagTranspose = 1u << 2;
constexpr std::uint32_t kPgrFlagCompressed = 1u << 3;
constexpr std::uint32_t kPgrKnownFlags =
    kPgrFlagWeighted | kPgrFlagSymmetric | kPgrFlagTranspose;
constexpr std::uint32_t kPgrKnownFlagsV2 = kPgrKnownFlags | kPgrFlagCompressed;
// Writer's chunking granularity. Any V >= 1 is readable; 1024 keeps chunks
// around a few KB on typical degree distributions (good decode parallelism,
// ~32 bytes of alignment padding amortized per chunk).
constexpr std::uint64_t kPgrVerticesPerChunk = 1024;
constexpr int kPgrSections = 5;
constexpr const char* kPgrSectionName[kPgrSections] = {
    "offsets", "targets", "weights", "transpose offsets", "transpose targets"};

struct PgrSection {
  std::uint64_t off = 0;
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;
};

struct PgrHeader {
  std::uint32_t version = 0;
  std::uint32_t flags = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::uint64_t section_count = 0;
  PgrSection sec[kPgrSections];

  bool weighted() const { return flags & kPgrFlagWeighted; }
  bool symmetric() const { return flags & kPgrFlagSymmetric; }
  bool has_transpose() const { return flags & kPgrFlagTranspose; }
  bool compressed() const { return flags & kPgrFlagCompressed; }
};

struct PgrLayout {
  std::uint64_t off[kPgrSections] = {};
  std::uint64_t bytes[kPgrSections] = {};
  std::uint64_t total = 0;
  std::uint64_t section_count = 0;
};

std::uint64_t align_up(std::uint64_t x, std::uint64_t a) {
  return (x + a - 1) / a * a;
}

// Canonical section placement for (n, m, flags). Callers must have passed
// the footprint check first so the size arithmetic cannot overflow. When the
// targets section is compressed its size is content-dependent: the caller
// supplies it (from the encoder on write, from the — bounded — section table
// on read; the file-size cross-check in check_pgr_layout keeps a lying table
// from surviving).
PgrLayout pgr_layout(std::uint64_t n, std::uint64_t m, bool weighted,
                     bool has_transpose, bool compressed = false,
                     std::uint64_t encoded_target_bytes = 0) {
  PgrLayout layout;
  const std::uint64_t sizes[kPgrSections] = {
      (n + 1) * sizeof(EdgeId),
      compressed ? encoded_target_bytes : m * sizeof(VertexId),
      weighted ? m * sizeof(std::uint32_t) : 0,
      has_transpose ? (n + 1) * sizeof(EdgeId) : 0,
      has_transpose ? m * sizeof(VertexId) : 0,
  };
  std::uint64_t pos = kPgrHeaderBytes;
  for (int i = 0; i < kPgrSections; ++i) {
    layout.bytes[i] = sizes[i];
    if (sizes[i] == 0) continue;
    pos = align_up(pos, kPgrAlign);
    layout.off[i] = pos;
    pos += sizes[i];
    ++layout.section_count;
  }
  layout.total = pos;
  return layout;
}

template <typename T>
void put(std::span<char> buf, std::size_t at, T value) {
  std::memcpy(buf.data() + at, &value, sizeof(T));
}

// --- compressed targets codec ------------------------------------------------

std::uint64_t zigzag_encode(std::int64_t d) {
  return (static_cast<std::uint64_t>(d) << 1) ^
         static_cast<std::uint64_t>(d >> 63);
}

std::int64_t zigzag_decode(std::uint64_t z) {
  return static_cast<std::int64_t>(z >> 1) ^ -static_cast<std::int64_t>(z & 1);
}

void append_varint(std::vector<char>& buf, std::uint64_t x) {
  do {
    unsigned char b = x & 0x7F;
    x >>= 7;
    if (x != 0) b |= 0x80;
    buf.push_back(static_cast<char>(b));
  } while (x != 0);
}

// Encodes the full targets section payload (chunk directory + per-chunk
// varint streams) for `n` vertices. Empty when m == 0 (the section is then
// absent, like an empty raw targets section).
std::vector<char> encode_targets_section(std::span<const EdgeId> offsets,
                                         std::span<const VertexId> targets,
                                         std::uint64_t n) {
  if (targets.empty()) return {};
  const std::uint64_t V = kPgrVerticesPerChunk;
  const std::uint64_t C = (n + V - 1) / V;
  // Phase 1: encode every chunk independently (the output bytes do not
  // depend on the worker count, so compressed files are deterministic).
  auto chunks = tabulate(C, [&](std::size_t c) {
    std::vector<char> buf;
    std::uint64_t lo = c * V;
    std::uint64_t hi = std::min<std::uint64_t>(n, lo + V);
    for (std::uint64_t v = lo; v < hi; ++v) {
      std::int64_t prev = static_cast<std::int64_t>(v);
      for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
        std::int64_t t = static_cast<std::int64_t>(targets[e]);
        append_varint(buf, zigzag_encode(t - prev));
        prev = t;
      }
    }
    return buf;
  });
  // Phase 2: lay the chunks out 64-byte aligned after the directory; the
  // last chunk's end is exact (stream_off[C] == section bytes), so the
  // section carries no trailing padding of ambiguous meaning.
  std::uint64_t dir_bytes = 16 + (C + 1) * 8;
  std::vector<std::uint64_t> stream(C + 1);
  std::uint64_t pos = align_up(dir_bytes, kPgrAlign);
  for (std::uint64_t c = 0; c < C; ++c) {
    stream[c] = pos;
    pos += chunks[c].size();
    if (c + 1 < C) pos = align_up(pos, kPgrAlign);
  }
  stream[C] = pos;
  std::vector<char> out(pos, 0);
  put(std::span<char>(out), 0, C);
  put(std::span<char>(out), 8, V);
  for (std::uint64_t c = 0; c <= C; ++c) {
    put(std::span<char>(out), 16 + c * 8, stream[c]);
  }
  parallel_for(
      0, C,
      [&](std::size_t c) {
        if (!chunks[c].empty()) {
          std::memcpy(out.data() + stream[c], chunks[c].data(),
                      chunks[c].size());
        }
      },
      1);
  return out;
}

template <typename T>
T get(const std::byte* base, std::size_t at) {
  T value;
  std::memcpy(&value, base + at, sizeof(T));
  return value;
}

// Validated view of a compressed targets section's chunk directory: C chunks
// of V vertices each, stream_off[c] giving a chunk's byte offset within the
// section. check_chunk_directory enforces the canonical shape (C matches
// ceil(n / V), chunk starts aligned and monotone, stream_off[C] exactly the
// section end) so everything downstream can index chunks without
// re-checking.
struct PgrChunkDir {
  const std::byte* sec = nullptr;
  std::uint64_t sec_bytes = 0;
  std::uint64_t C = 0;
  std::uint64_t V = 1;
  std::uint64_t stream_off(std::uint64_t c) const {
    return get<std::uint64_t>(sec, 16 + c * 8);
  }
};

PgrChunkDir check_chunk_directory(const std::byte* sec, std::uint64_t sec_bytes,
                                  std::uint64_t n, const std::string& path) {
  auto bad = [&](const std::string& why) -> Error {
    return Error(ErrorCategory::kFormat, "compressed targets: " + why, path);
  };
  if (sec_bytes < 16) throw bad("section too small for its chunk header");
  PgrChunkDir dir;
  dir.sec = sec;
  dir.sec_bytes = sec_bytes;
  dir.C = get<std::uint64_t>(sec, 0);
  dir.V = get<std::uint64_t>(sec, 8);
  if (dir.V == 0) throw bad("vertices-per-chunk is zero");
  if (dir.C != (n + dir.V - 1) / dir.V) {
    throw bad("chunk count " + std::to_string(dir.C) +
              " does not match ceil(n / " + std::to_string(dir.V) + ")");
  }
  // C <= n here (V >= 1 and n <= 2^32), so the directory size fits in u64.
  const std::uint64_t dir_bytes = 16 + (dir.C + 1) * 8;
  if (dir_bytes > sec_bytes) throw bad("chunk directory overruns the section");
  if (dir.stream_off(0) != align_up(dir_bytes, kPgrAlign)) {
    throw bad("first chunk is not 64-byte aligned after the directory");
  }
  if (dir.stream_off(dir.C) != sec_bytes) {
    throw bad("last chunk offset " + std::to_string(dir.stream_off(dir.C)) +
              " does not equal the section size " + std::to_string(sec_bytes));
  }
  std::size_t dir_violations = count_if_index(dir.C, [&](std::size_t c) {
    return dir.stream_off(c) % kPgrAlign != 0 ||
           dir.stream_off(c) > dir.stream_off(c + 1);
  });
  if (dir_violations != 0) {
    throw bad("chunk directory is not aligned and monotone");
  }
  return dir;
}

// Decodes chunk `c` into out[e - e_base] for every edge of the chunk's
// vertices, validating as it goes: every varint must terminate inside its
// chunk, alignment padding must be zero, and every decoded target must lie
// in [0, n). Throws on the first violation.
void decode_chunk(const PgrChunkDir& dir, std::uint64_t c, std::uint64_t n,
                  std::span<const EdgeId> offsets, VertexId* out,
                  EdgeId e_base, const std::string& path) {
  auto bad = [&](const std::string& why) -> Error {
    return Error(ErrorCategory::kFormat, "compressed targets: " + why, path);
  };
  const unsigned char* p =
      reinterpret_cast<const unsigned char*>(dir.sec) + dir.stream_off(c);
  const unsigned char* limit =
      reinterpret_cast<const unsigned char*>(dir.sec) + dir.stream_off(c + 1);
  std::uint64_t lo = c * dir.V;
  std::uint64_t hi = std::min<std::uint64_t>(n, lo + dir.V);
  for (std::uint64_t v = lo; v < hi; ++v) {
    std::int64_t prev = static_cast<std::int64_t>(v);
    for (EdgeId e = offsets[v]; e < offsets[v + 1]; ++e) {
      std::uint64_t raw = 0;
      unsigned shift = 0;
      while (true) {
        if (p == limit) {
          throw bad("truncated varint stream in chunk " + std::to_string(c));
        }
        unsigned char byte = *p++;
        if (shift >= 63 && (byte & 0x7E) != 0) {
          throw bad("varint overflows 64 bits in chunk " + std::to_string(c));
        }
        raw |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
        if ((byte & 0x80) == 0) break;
        shift += 7;
        if (shift > 63) {
          throw bad("varint longer than 10 bytes in chunk " +
                    std::to_string(c));
        }
      }
      std::int64_t t = prev + zigzag_decode(raw);
      if (t < 0 || static_cast<std::uint64_t>(t) >= n) {
        throw Error(ErrorCategory::kValidation,
                    "compressed targets: decoded target " + std::to_string(t) +
                        " out of range [0, " + std::to_string(n) +
                        ") for vertex " + std::to_string(v),
                    path);
      }
      out[e - e_base] = static_cast<VertexId>(t);
      prev = t;
    }
  }
  // Alignment padding up to the next chunk must be zero — a nonzero byte
  // is either garbage or a payload the degrees say should not exist.
  while (p < limit) {
    if (*p++ != 0) {
      throw bad("nonzero padding after chunk " + std::to_string(c) +
                " payload");
    }
  }
}

// Decodes the chunks [c_begin, c_end) in parallel, writing each target at
// out[e - e_base]. Workers cannot throw across the scheduler, so the first
// error is captured and rethrown after the loop; later workers bail out
// early once one has failed. Used both for whole-section decodes (in-core
// opens) and per-shard decodes (the MappedWindow's decode hook).
void decode_chunk_range(const PgrChunkDir& dir, std::uint64_t c_begin,
                        std::uint64_t c_end, std::uint64_t n,
                        std::span<const EdgeId> offsets, VertexId* out,
                        EdgeId e_base, const std::string& path) {
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  std::unique_ptr<Error> first_err;
  parallel_for(c_begin, c_end, [&](std::size_t c) {
    if (failed.load(std::memory_order_relaxed)) return;
    try {
      decode_chunk(dir, c, n, offsets, out, e_base, path);
    } catch (Error& e) {
      if (!failed.exchange(true, std::memory_order_acq_rel)) {
        std::lock_guard<std::mutex> lock(err_mu);
        first_err = std::make_unique<Error>(std::move(e));
      }
    }
  });
  if (failed.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(err_mu);
    throw *first_err;
  }
}

// Decodes a compressed targets section into `out` (size m), validating as it
// goes (see check_chunk_directory / decode_chunk). Callers must have
// verified the offsets array first (monotone, offsets[0] == 0,
// offsets[n] == m) — the per-vertex degrees come from it. On success the
// decoded CSR satisfies the full validate_csr contract, so the storage can
// be marked validated.
void decode_targets_section(const std::byte* sec, std::uint64_t sec_bytes,
                            std::uint64_t n, std::uint64_t m,
                            std::span<const EdgeId> offsets,
                            std::span<VertexId> out, const std::string& path) {
  if (m == 0) return;
  PgrChunkDir dir = check_chunk_directory(sec, sec_bytes, n, path);
  decode_chunk_range(dir, 0, dir.C, n, offsets, out.data(), /*e_base=*/0,
                     path);
}

// Offsets sanity required before decode can trust per-vertex degrees (and
// exactly the offsets half of the validate_csr contract).
void check_offsets_for_decode(std::span<const EdgeId> offsets, std::uint64_t n,
                              std::uint64_t m, const std::string& path) {
  if (offsets[0] != 0) {
    fail(ErrorCategory::kValidation, path, "offsets[0] != 0");
  }
  if (offsets[n] != m) {
    fail(ErrorCategory::kValidation, path,
         "offsets[n] = " + std::to_string(offsets[n]) +
             " but the header claims m = " + std::to_string(m));
  }
  std::size_t violations = count_if_index(
      n, [&](std::size_t v) { return offsets[v + 1] < offsets[v]; });
  if (violations != 0) {
    fail(ErrorCategory::kValidation, path,
         "offsets are not monotone (cannot derive degrees for decode)");
  }
}

// Parses and structurally checks the fixed-size header. Section bytes are
// not touched.
PgrHeader parse_pgr_header(const std::byte* base, std::uint64_t file_size,
                           const std::string& path) {
  if (file_size < kPgrHeaderBytes) {
    fail(ErrorCategory::kFormat, path,
         "truncated header: file has " + std::to_string(file_size) +
             " bytes, the .pgr header is " + std::to_string(kPgrHeaderBytes),
         file_size);
  }
  if (std::memcmp(base, kPgrMagic, sizeof(kPgrMagic)) != 0) {
    fail(ErrorCategory::kFormat, path, "bad magic: not a .pgr file", 0);
  }
  PgrHeader h;
  h.version = get<std::uint32_t>(base, 8);
  h.flags = get<std::uint32_t>(base, 12);
  h.n = get<std::uint64_t>(base, 16);
  h.m = get<std::uint64_t>(base, 24);
  h.section_count = get<std::uint64_t>(base, 32);
  for (int i = 0; i < kPgrSections; ++i) {
    std::size_t at = 40 + static_cast<std::size_t>(i) * 24;
    h.sec[i].off = get<std::uint64_t>(base, at);
    h.sec[i].bytes = get<std::uint64_t>(base, at + 8);
    h.sec[i].checksum = get<std::uint64_t>(base, at + 16);
  }
  if (h.version != kPgrVersion && h.version != kPgrVersionCompressed) {
    fail(ErrorCategory::kFormat, path,
         "unsupported .pgr version " + std::to_string(h.version) +
             " (this build reads versions " + std::to_string(kPgrVersion) +
             " and " + std::to_string(kPgrVersionCompressed) + ")",
         8);
  }
  // The compressed-targets bit exists only in version 2; a v1 file carrying
  // it is malformed, not forward-compatible.
  std::uint32_t known =
      h.version == kPgrVersionCompressed ? kPgrKnownFlagsV2 : kPgrKnownFlags;
  if (h.flags & ~known) {
    fail(ErrorCategory::kFormat, path,
         "unknown flag bits 0x" + std::to_string(h.flags & ~known), 12);
  }
  return h;
}

// Cross-checks header claims against the memory ceiling, the vertex-id
// space, the canonical layout, and the actual file size. After this returns,
// every section [off, off+bytes) is within the file and 64-byte aligned.
void check_pgr_layout(const PgrHeader& h, std::uint64_t file_size,
                      const std::string& path, bool windowed = false) {
  // Resource check first (kResource beats kFormat for absurd claims, the
  // same order the .adj/.bin readers use). Windowed (sharded) opens price
  // their bounded resident footprint instead — the caller already ran
  // check_windowed_footprint — but the layout arithmetic still needs a
  // bound on m: every edge costs at least one stored byte, so a claim
  // beyond the file size is rejected before feeding the size computation.
  if (!windowed) {
    GraphStorage::check_footprint(h.n, h.m, h.weighted(), path)
        .throw_if_error();
  } else if (h.m > file_size) {
    fail(ErrorCategory::kFormat, path,
         "header claims " + std::to_string(h.m) +
             " edges but the file has only " + std::to_string(file_size) +
             " bytes",
         24);
  }
  if (h.n > static_cast<std::uint64_t>(kInvalidVertex)) {
    fail(ErrorCategory::kValidation, path,
         "vertex count " + std::to_string(h.n) +
             " exceeds the 32-bit vertex-id space",
         16);
  }
  // A compressed targets section has a content-dependent size, taken from
  // the table. Bound it before it feeds the layout arithmetic: it can never
  // exceed the file, and an empty edge set means no section at all.
  if (h.compressed()) {
    if (h.sec[1].bytes > file_size) {
      fail(ErrorCategory::kFormat, path,
           "compressed targets section claims " +
               std::to_string(h.sec[1].bytes) + " bytes but the file has " +
               std::to_string(file_size),
           40 + 24 + 8);
    }
    if ((h.m == 0) != (h.sec[1].bytes == 0)) {
      fail(ErrorCategory::kFormat, path,
           "compressed targets section size disagrees with m", 40 + 24 + 8);
    }
  }
  PgrLayout layout = pgr_layout(h.n, h.m, h.weighted(), h.has_transpose(),
                                h.compressed(), h.sec[1].bytes);
  if (h.section_count != layout.section_count) {
    fail(ErrorCategory::kFormat, path,
         "header lists " + std::to_string(h.section_count) +
             " sections but n/m/flags imply " +
             std::to_string(layout.section_count),
         32);
  }
  for (int i = 0; i < kPgrSections; ++i) {
    if (h.sec[i].off != layout.off[i] || h.sec[i].bytes != layout.bytes[i]) {
      fail(ErrorCategory::kFormat, path,
           std::string("section table entry for ") + kPgrSectionName[i] +
               " is [" + std::to_string(h.sec[i].off) + ", +" +
               std::to_string(h.sec[i].bytes) +
               ") but the canonical layout for n/m/flags puts it at [" +
               std::to_string(layout.off[i]) + ", +" +
               std::to_string(layout.bytes[i]) + ")",
           40 + static_cast<std::uint64_t>(i) * 24);
    }
  }
  if (file_size != layout.total) {
    fail(ErrorCategory::kFormat, path,
         file_size < layout.total
             ? "truncated: file has " + std::to_string(file_size) +
                   " bytes, the section layout needs " +
                   std::to_string(layout.total)
             : std::to_string(file_size - layout.total) +
                   " bytes of trailing garbage after the last section",
         std::min(file_size, layout.total));
  }
}

void check_pgr_checksums(const PgrHeader& h, const std::byte* base,
                         const std::string& path) {
  for (int i = 0; i < kPgrSections; ++i) {
    if (h.sec[i].bytes == 0) continue;
    std::uint64_t sum = hash_bytes(base + h.sec[i].off, h.sec[i].bytes);
    if (sum != h.sec[i].checksum) {
      fail(ErrorCategory::kFormat, path,
           std::string("checksum mismatch in ") + kPgrSectionName[i] +
               " section (stored " + std::to_string(h.sec[i].checksum) +
               ", computed " + std::to_string(sum) + ")",
           h.sec[i].off);
    }
  }
}

void write_pgr_impl(const Graph& g, bool weighted,
                    std::span<const std::uint32_t> weights,
                    const std::string& path, const PgrWriteOptions& opts) {
  std::uint64_t n = g.num_vertices();
  std::uint64_t m = g.num_edges();
  Graph t;
  if (opts.include_transpose) t = g.transpose();

  // A default-constructed empty graph has no offset array; the format always
  // stores n+1 offsets, so synthesize the canonical one.
  static constexpr EdgeId kZeroOffset[1] = {0};
  std::span<const EdgeId> offsets = g.offsets();
  if (offsets.empty()) offsets = kZeroOffset;
  std::span<const EdgeId> t_offsets = t.offsets();
  if (opts.include_transpose && t_offsets.empty()) t_offsets = kZeroOffset;

  // Compression replaces the raw targets section with the varint-encoded
  // payload and bumps the version; uncompressed output stays version 1, so
  // existing files and byte-level round-trips are untouched.
  std::vector<char> encoded;
  if (opts.compress_targets) {
    encoded = encode_targets_section(offsets, g.targets(), n);
  }
  const void* data[kPgrSections] = {
      offsets.data(),
      opts.compress_targets ? static_cast<const void*>(encoded.data())
                            : static_cast<const void*>(g.targets().data()),
      weights.data(), t_offsets.data(), t.targets().data()};
  PgrLayout layout = pgr_layout(n, m, weighted, opts.include_transpose,
                                opts.compress_targets, encoded.size());

  std::vector<char> header(kPgrHeaderBytes, 0);
  std::memcpy(header.data(), kPgrMagic, sizeof(kPgrMagic));
  put(std::span<char>(header), 8,
      opts.compress_targets ? kPgrVersionCompressed : kPgrVersion);
  std::uint32_t flags = (weighted ? kPgrFlagWeighted : 0) |
                        (opts.symmetric ? kPgrFlagSymmetric : 0) |
                        (opts.include_transpose ? kPgrFlagTranspose : 0) |
                        (opts.compress_targets ? kPgrFlagCompressed : 0);
  put(std::span<char>(header), 12, flags);
  put(std::span<char>(header), 16, n);
  put(std::span<char>(header), 24, m);
  put(std::span<char>(header), 32, layout.section_count);
  for (int i = 0; i < kPgrSections; ++i) {
    std::size_t at = 40 + static_cast<std::size_t>(i) * 24;
    put(std::span<char>(header), at, layout.off[i]);
    put(std::span<char>(header), at + 8, layout.bytes[i]);
    if (layout.bytes[i] != 0) {
      put(std::span<char>(header), at + 16,
          hash_bytes(data[i], layout.bytes[i]));
    }
  }

  std::ofstream out(path, std::ios::binary);
  if (!out) fail(ErrorCategory::kIo, path, "cannot open for writing");
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  std::uint64_t pos = kPgrHeaderBytes;
  static constexpr char kPad[kPgrAlign] = {};
  for (int i = 0; i < kPgrSections; ++i) {
    if (layout.bytes[i] == 0) continue;
    out.write(kPad, static_cast<std::streamsize>(layout.off[i] - pos));
    out.write(static_cast<const char*>(data[i]),
              static_cast<std::streamsize>(layout.bytes[i]));
    pos = layout.off[i] + layout.bytes[i];
  }
  if (!out) fail(ErrorCategory::kIo, path, "write error");
}

// Shared open path for read_pgr / read_weighted_pgr / probe_pgr.
struct OpenedPgr {
  StorageRef storage;
  PgrInfo info;
  PgrOpenStats stats;
};

PgrInfo info_of(const PgrHeader& h, std::uint64_t file_size,
                const std::byte* base) {
  PgrInfo info;
  info.n = h.n;
  info.m = h.m;
  info.version = h.version;
  info.weighted = h.weighted();
  info.symmetric = h.symmetric();
  info.has_transpose = h.has_transpose();
  info.compressed = h.compressed();
  info.file_bytes = file_size;
  info.encoded_target_bytes = h.sec[1].bytes;
  for (int i = 0; i < kPgrSections; ++i) {
    info.section_bytes[i] = h.sec[i].bytes;
  }
  // The chunk count lives in the targets section's 16-byte header (the
  // layout check has verified the section is in-file; 16 bytes is the
  // minimum the decoder accepts for a non-empty section).
  if (h.compressed() && h.m != 0 && h.sec[1].bytes >= 16) {
    info.chunk_count = get<std::uint64_t>(base + h.sec[1].off, 0);
  }
  return info;
}

OpenedPgr open_pgr_fresh(const std::string& path, PgrOpen mode,
                         bool validate) {
  auto map = std::make_shared<const MappedFile>(MappedFile::open(path));
  const std::byte* base = map->data();
  PgrHeader h = parse_pgr_header(base, map->size(), path);
  check_pgr_layout(h, map->size(), path);
  // The copy path always gets the full untrusted-input treatment; the mmap
  // path verifies content only on request (O(1) open). Compressed targets
  // are necessarily fully verified either way: the decoder range-checks
  // offsets and every decoded target.
  bool deep = validate || mode == PgrOpen::kCopy;
  if (deep) check_pgr_checksums(h, base, path);

  std::span<const EdgeId> offsets{
      reinterpret_cast<const EdgeId*>(base + h.sec[0].off), h.n + 1};
  std::span<const VertexId> targets;
  if (!h.compressed() && h.m != 0) {
    targets = {reinterpret_cast<const VertexId*>(base + h.sec[1].off), h.m};
  }
  std::span<const std::uint32_t> weights;
  if (h.weighted() && h.m != 0) {
    weights = {reinterpret_cast<const std::uint32_t*>(base + h.sec[2].off),
               h.m};
  }

  OpenedPgr out;
  out.info = info_of(h, map->size(), base);
  out.stats.compressed = h.compressed();
  out.stats.encoded_target_bytes = h.sec[1].bytes;

  // Decode compressed targets into heap memory up front (parallel, timed).
  // The footprint check in check_pgr_layout already covered the decoded
  // array — it charges the full CSR including m targets — so this is the
  // same single guard point the raw readers go through.
  std::vector<VertexId> decoded;
  if (h.compressed()) {
    if (fault::should_fail("decode")) {
      throw Error(ErrorCategory::kFormat, "injected fault: decode", path);
    }
    auto t0 = std::chrono::steady_clock::now();
    check_offsets_for_decode(offsets, h.n, h.m, path);
    decoded.resize(h.m);
    decode_targets_section(base + h.sec[1].off, h.sec[1].bytes, h.n, h.m,
                           offsets, decoded, path);
    out.stats.decode_wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    targets = decoded;
  }

  if (mode == PgrOpen::kMmap) {
    out.storage =
        h.compressed()
            ? GraphStorage::mapped_with_decoded_targets(
                  map, path, offsets, std::move(decoded), weights)
            : GraphStorage::mapped(map, path, offsets, targets, weights);
    if (h.has_transpose()) {
      std::span<const EdgeId> t_offsets{
          reinterpret_cast<const EdgeId*>(base + h.sec[3].off), h.n + 1};
      std::span<const VertexId> t_targets{
          h.m ? reinterpret_cast<const VertexId*>(base + h.sec[4].off)
              : nullptr,
          h.m};
      StorageRef tcache =
          GraphStorage::mapped(map, path, t_offsets, t_targets, {});
      if (deep) {
        Status s = validate_csr(t_offsets, t_targets);
        if (!s.ok()) {
          fail(s.category(), path, "transpose sections: " + s.message());
        }
        tcache->mark_validated();
      }
      out.storage->set_transpose_cache(std::move(tcache));
    }
  } else {
    StorageRef s = GraphStorage::allocate(h.n, h.m, h.weighted(), path);
    std::memcpy(s->mutable_offsets().data(), offsets.data(),
                offsets.size_bytes());
    if (h.m != 0) {
      std::memcpy(s->mutable_targets().data(), targets.data(),
                  targets.size_bytes());
      if (h.weighted()) {
        std::memcpy(s->mutable_weights().data(), weights.data(),
                    weights.size_bytes());
      }
    }
    if (h.has_transpose()) {
      StorageRef t =
          GraphStorage::allocate(h.n, h.m, /*weighted=*/false, path);
      std::memcpy(t->mutable_offsets().data(), base + h.sec[3].off,
                  h.sec[3].bytes);
      if (h.m != 0) {
        std::memcpy(t->mutable_targets().data(), base + h.sec[4].off,
                    h.sec[4].bytes);
      }
      Status ts = validate_csr(t->offsets(), t->targets());
      if (!ts.ok()) {
        fail(ts.category(), path, "transpose sections: " + ts.message());
      }
      t->mark_validated();
      s->set_transpose_cache(std::move(t));
    }
    out.storage = std::move(s);
  }
  if (h.compressed()) {
    // The decoder verified the whole validate_csr contract (offsets shape +
    // target bounds); no second pass needed.
    out.storage->mark_validated();
  } else if (deep) {
    Status s = validate_csr(out.storage->offsets(), out.storage->targets());
    if (!s.ok()) fail(s.category(), path, s.message());
    out.storage->mark_validated();
  }
  return out;
}

OpenedPgr open_pgr(const std::string& path, PgrOpen mode, bool validate,
                   const PgrShardSpec& shard);

// Range-checks a raw targets window shard-at-a-time: activate each shard
// once through the window (bounded residency — this is the sharded stand-in
// for the full validate_csr scan, which would touch every page at once) and
// verify every target lies in [0, n). Counters are reset afterwards so
// driver telemetry starts from the algorithm's first sweep.
void validate_sharded_raw(MappedWindow& window, std::uint64_t n,
                          const std::string& path, const char* what) {
  const ShardPlan& plan = window.plan();
  for (std::size_t s = 0; s < plan.size(); ++s) {
    const ShardRange& r = plan[s];
    MappedWindow::ActiveShard sh = window.activate(s);
    std::size_t violations =
        count_if_index(r.e_end - r.e_begin, [&](std::size_t i) {
          return sh.targets[r.e_begin + i - sh.e_base] >= n;
        });
    if (violations != 0) {
      fail(ErrorCategory::kValidation, path,
           std::string(what) + ": " + std::to_string(violations) +
               " targets out of range [0, " + std::to_string(n) +
               ") in shard " + std::to_string(s));
    }
  }
  window.release();
  window.reset_counters();
}

// Sharded open: a bounded-residency window over the mapped file (DESIGN.md
// §5i). Bypasses the GraphRegistry — a windowed handle prices a different
// footprint than a shared in-core mapping of the same file, and each
// consumer must own its window (the window serializes shard activation per
// traversal).
OpenedPgr open_pgr_sharded(const std::string& path, PgrOpen mode,
                           bool validate, PgrShardSpec spec) {
  if (mode == PgrOpen::kCopy) {
    fail(ErrorCategory::kUsage, path,
         "sharded opens require the mmap path; --shard-mb cannot be "
         "combined with a copying load mode");
  }
  if (validate) {
    fail(ErrorCategory::kUsage, path,
         "--validate checksums every section byte, which defeats the "
         "bounded residency of --shard-mb; the sharded open range-checks "
         "shard-at-a-time instead");
  }
  // MADV_RANDOM on the whole mapping: the MappedWindow issues its own
  // WILLNEED/DONTNEED per shard, and whole-file readahead would defeat the
  // bounded residency it maintains.
  auto map = std::make_shared<const MappedFile>(
      MappedFile::open(path, /*sequential=*/false));
  const std::byte* base = map->data();
  PgrHeader h = parse_pgr_header(base, map->size(), path);

  if (spec.auto_shard) {
    // Auto mode shards only when the full in-core footprint would be
    // rejected; graphs that fit keep the plain shared-mmap path (and its
    // registry reuse).
    if (GraphStorage::check_footprint(h.n, h.m, h.weighted(), path).ok()) {
      return open_pgr(path, mode, validate, PgrShardSpec{});
    }
    if (spec.window_bytes == 0) {
      spec.window_bytes = std::max<std::uint64_t>(memory_limit_bytes() / 4,
                                                  std::uint64_t{1} << 20);
    }
  }

  // Early absurd-claim rejection on what this open keeps resident; the
  // precise price (decode buffer, transpose window) is re-checked below
  // once the plan exists.
  GraphStorage::check_windowed_footprint(h.n, spec.window_bytes, 0, path)
      .throw_if_error();
  check_pgr_layout(h, map->size(), path, /*windowed=*/true);

  std::span<const EdgeId> offsets{
      reinterpret_cast<const EdgeId*>(base + h.sec[0].off), h.n + 1};
  std::span<const std::uint32_t> weights;
  if (h.weighted() && h.m != 0) {
    weights = {reinterpret_cast<const std::uint32_t*>(base + h.sec[2].off),
               h.m};
  }
  // Offsets are fully resident (priced above); verifying them up front
  // gives the shard plan trustworthy degrees and covers the offsets half of
  // the validate_csr contract.
  check_offsets_for_decode(offsets, h.n, h.m, path);

  OpenedPgr out;
  out.info = info_of(h, map->size(), base);
  out.stats.compressed = h.compressed();
  out.stats.encoded_target_bytes = h.sec[1].bytes;

  StorageRef storage;
  std::shared_ptr<const ShardPlan> plan;
  std::shared_ptr<MappedWindow> window;
  std::uint64_t extra_resident = 0;
  std::uint64_t bpe =
      sizeof(VertexId) + (h.weighted() ? sizeof(std::uint32_t) : 0);
  bool raw = !h.compressed() || h.m == 0;

  if (raw) {
    std::span<const VertexId> targets;
    if (!h.compressed() && h.m != 0) {
      targets = {reinterpret_cast<const VertexId*>(base + h.sec[1].off), h.m};
    }
    plan = std::make_shared<const ShardPlan>(
        ShardPlan::build(offsets, bpe, spec.window_bytes,
                         static_cast<std::uint32_t>(kPgrVerticesPerChunk)));
    storage = GraphStorage::mapped(map, path, offsets, targets, weights);
    window = MappedWindow::raw(plan, targets.data(), weights.data());
  } else {
    if (fault::should_fail("decode")) {
      throw Error(ErrorCategory::kFormat, "injected fault: decode", path);
    }
    PgrChunkDir dir =
        check_chunk_directory(base + h.sec[1].off, h.sec[1].bytes, h.n, path);
    // Shard boundaries must fall on chunk boundaries so every shard decodes
    // whole chunks; align to the file's chunking granularity.
    std::uint32_t align = static_cast<std::uint32_t>(std::min<std::uint64_t>(
        dir.V, std::numeric_limits<std::uint32_t>::max()));
    plan = std::make_shared<const ShardPlan>(
        ShardPlan::build(offsets, bpe, spec.window_bytes, align));
    storage = GraphStorage::mapped_windowed(map, path, offsets, weights, h.m);
    std::uint64_t n = h.n;
    auto chunk_end = [dir](StorageVertexId v_end) {
      return std::min<std::uint64_t>(
          dir.C, (static_cast<std::uint64_t>(v_end) + dir.V - 1) / dir.V);
    };
    auto decode = [dir, n, offsets, path, chunk_end](const ShardRange& r,
                                                     StorageVertexId* buf) {
      decode_chunk_range(dir, r.v_begin / dir.V, chunk_end(r.v_end), n,
                         offsets, buf, r.e_begin, path);
    };
    auto encoded_range = [dir, chunk_end](
                             const ShardRange& r)
        -> std::pair<const void*, std::size_t> {
      std::uint64_t b0 = dir.stream_off(r.v_begin / dir.V);
      std::uint64_t b1 = dir.stream_off(chunk_end(r.v_end));
      return {dir.sec + b0, static_cast<std::size_t>(b1 - b0)};
    };
    window = MappedWindow::decoding(plan, std::move(decode),
                                    std::move(encoded_range), weights.data());
    // The reusable decode buffer is a real heap resident, sized for the
    // largest shard.
    extra_resident = plan->max_shard_edges() * sizeof(VertexId);
  }

  // Transpose sections become a second windowed storage over the same
  // mapping (always raw — only the forward targets section is compressed),
  // pre-populating the transpose cache so gt sweeps stay bounded too.
  StorageRef tcache;
  std::shared_ptr<const ShardPlan> t_plan;
  std::shared_ptr<MappedWindow> t_window;
  if (h.has_transpose()) {
    std::span<const EdgeId> t_offsets{
        reinterpret_cast<const EdgeId*>(base + h.sec[3].off), h.n + 1};
    std::span<const VertexId> t_targets;
    if (h.m != 0) {
      t_targets = {reinterpret_cast<const VertexId*>(base + h.sec[4].off),
                   h.m};
    }
    check_offsets_for_decode(t_offsets, h.n, h.m, path);
    t_plan = std::make_shared<const ShardPlan>(
        ShardPlan::build(t_offsets, sizeof(VertexId), spec.window_bytes,
                         static_cast<std::uint32_t>(kPgrVerticesPerChunk)));
    tcache = GraphStorage::mapped(map, path, t_offsets, t_targets, {});
    t_window = MappedWindow::raw(t_plan, t_targets.data(), nullptr);
    extra_resident += (h.n + 1) * sizeof(EdgeId) + spec.window_bytes;
  }

  // Final price: offsets + window + decode buffer + transpose residents.
  GraphStorage::check_windowed_footprint(h.n, spec.window_bytes,
                                         extra_resident, path)
      .throw_if_error();
  std::uint64_t resident =
      (h.n + 1) * sizeof(EdgeId) + spec.window_bytes + extra_resident;

  // Eager bounded-residency validation: raw targets are range-checked with
  // one sweep through the window (compressed shards are validated by the
  // decoder on every activation), so traversal-time unchecked indexing is
  // as safe as after a deep-validated in-core open.
  if (raw) {
    validate_sharded_raw(*window, h.n, path, "targets");
  }
  storage->mark_validated();
  if (tcache != nullptr) {
    validate_sharded_raw(*t_window, h.n, path, "transpose targets");
    tcache->mark_validated();
    tcache->set_sharding(std::move(t_plan), std::move(t_window), 0);
    storage->set_transpose_cache(std::move(tcache));
  }
  storage->set_sharding(std::move(plan), std::move(window), resident);
  out.storage = std::move(storage);
  return out;
}

// Mmap opens go through the process-level GraphRegistry: every open of the
// same file (by stat identity — see registry.h) in one process shares a
// single mapping and its memoized transpose. Copy opens bypass it: kCopy's
// contract is decoupling from the file, and a shared heap image could go
// stale if the file is rewritten in place within mtime granularity.
OpenedPgr open_pgr(const std::string& path, PgrOpen mode, bool validate,
                   const PgrShardSpec& shard) {
  if (shard.enabled()) return open_pgr_sharded(path, mode, validate, shard);
  if (mode == PgrOpen::kCopy) return open_pgr_fresh(path, mode, validate);

  bool opened_fresh = false;
  PgrOpenStats fresh_stats;
  StorageRef storage =
      GraphRegistry::instance().open_shared(path, [&]() -> StorageRef {
        opened_fresh = true;
        OpenedPgr fresh = open_pgr_fresh(path, PgrOpen::kMmap, validate);
        fresh_stats = fresh.stats;
        return fresh.storage;
      });

  // Cached or fresh, PgrInfo comes from the shared mapping's header — a
  // registry hit must not re-open the file (zero new bytes mapped).
  std::shared_ptr<const MappedFile> map = storage->mapped_file();
  const std::byte* base = map->data();
  PgrHeader h = parse_pgr_header(base, map->size(), path);
  OpenedPgr out;
  out.info = info_of(h, map->size(), base);
  out.storage = std::move(storage);
  out.stats.compressed = h.compressed();
  out.stats.encoded_target_bytes = h.sec[1].bytes;
  // Warm opens reuse the decoded buffer memoized on the shared handle:
  // decode cost is paid once per mapping, never per open.
  out.stats.decode_wall_ns = opened_fresh ? fresh_stats.decode_wall_ns : 0;
  if (!opened_fresh && validate) {
    // The cached mapping may have been opened without --validate; a
    // validating open still gets the full content check, against the
    // shared pages.
    check_pgr_checksums(h, base, path);
    Status s = validate_csr(out.storage->offsets(), out.storage->targets());
    if (!s.ok()) fail(s.category(), path, s.message());
    out.storage->mark_validated();
    if (StorageRef t = out.storage->transpose_cache()) {
      Status ts = validate_csr(t->offsets(), t->targets());
      if (!ts.ok()) {
        fail(ts.category(), path, "transpose sections: " + ts.message());
      }
      t->mark_validated();
    }
  }
  return out;
}

}  // namespace

void write_pgr(const Graph& g, const std::string& path,
               const PgrWriteOptions& opts) {
  write_pgr_impl(g, /*weighted=*/false, {}, path, opts);
}

void write_pgr(const WeightedGraph<std::uint32_t>& g, const std::string& path,
               const PgrWriteOptions& opts) {
  write_pgr_impl(g.unweighted(), /*weighted=*/true, g.weights(), path, opts);
}

const char* pgr_section_name(int i) {
  static_assert(kPgrSectionCount == kPgrSections);
  return kPgrSectionName[i];
}

Graph read_pgr(const std::string& path, PgrOpen mode, bool validate,
               PgrOpenStats* stats, const PgrShardSpec& shard) {
  OpenedPgr opened = open_pgr(path, mode, validate, shard);
  if (stats != nullptr) *stats = opened.stats;
  return Graph(std::move(opened.storage));
}

WeightedGraph<std::uint32_t> read_weighted_pgr(const std::string& path,
                                               PgrOpen mode, bool validate,
                                               PgrOpenStats* stats,
                                               const PgrShardSpec& shard) {
  OpenedPgr opened = open_pgr(path, mode, validate, shard);
  if (!opened.info.weighted) {
    fail(ErrorCategory::kFormat, path,
         "file has no weights section; use read_pgr / an unweighted driver");
  }
  if (stats != nullptr) *stats = opened.stats;
  return WeightedGraph<std::uint32_t>(std::move(opened.storage));
}

PgrInfo probe_pgr(const std::string& path) {
  MappedFile map = MappedFile::open(path);
  PgrHeader h = parse_pgr_header(map.data(), map.size(), path);
  // The windowed layout check: full structural verification (section table,
  // file size) without the in-core RAM-ceiling gate — a probe allocates
  // nothing, and callers planning a sharded open of a beyond-ceiling file
  // must still be able to peek at it.
  check_pgr_layout(h, map.size(), path, /*windowed=*/true);
  return info_of(h, map.size(), map.data());
}

}  // namespace pasgal
