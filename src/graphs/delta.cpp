#include "graphs/delta.h"

#include <sys/stat.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>

#include "parlay/parallel.h"
#include "parlay/primitives.h"

namespace pasgal {

namespace {

// --- snapshot construction helpers -------------------------------------------

std::uint64_t vec_bytes(const std::vector<EdgeId>& a,
                        const std::vector<VertexId>& b) {
  return a.size() * sizeof(EdgeId) + b.size() * sizeof(VertexId);
}

// Reverse one patch side: per-source sorted lists become per-target sorted
// lists. Scattering sources in ascending order leaves every reversed list
// sorted without a per-list sort.
void flip_side(std::size_t n, const std::vector<EdgeId>& off,
               const std::vector<VertexId>& tgt, std::vector<EdgeId>& foff,
               std::vector<VertexId>& ftgt) {
  foff.assign(n + 1, 0);
  for (VertexId t : tgt) ++foff[t + 1];
  for (std::size_t v = 0; v < n; ++v) foff[v + 1] += foff[v];
  ftgt.resize(tgt.size());
  std::vector<EdgeId> cursor(foff.begin(), foff.end() - 1);
  for (std::size_t v = 0; v < n; ++v) {
    for (EdgeId e = off[v]; e < off[v + 1]; ++e) {
      ftgt[cursor[tgt[e]]++] = static_cast<VertexId>(v);
    }
  }
}

void sorted_insert(std::vector<VertexId>& v, VertexId x) {
  v.insert(std::lower_bound(v.begin(), v.end(), x), x);
}

bool sorted_erase(std::vector<VertexId>& v, VertexId x) {
  auto it = std::lower_bound(v.begin(), v.end(), x);
  if (it == v.end() || *it != x) return false;
  v.erase(it);
  return true;
}

bool sorted_contains(std::span<const VertexId> v, VertexId x) {
  return std::binary_search(v.begin(), v.end(), x);
}

// The merge in edge_map and the membership checks below binary-search base
// adjacency lists; verify sortedness once per storage handle. All pasgal
// builders and writers sort per-vertex lists, but an externally produced
// `.pgr` (converted from an unsorted `.bin`) may not be.
void ensure_sorted_adjacency(const Graph& g) {
  const StorageRef& s = g.storage();
  if (s->adjacency_sorted()) return;
  std::atomic<bool> ok{true};
  parallel_for(0, g.num_vertices(), [&](std::size_t v) {
    std::span<const VertexId> nb = g.neighbors(static_cast<VertexId>(v));
    if (!std::is_sorted(nb.begin(), nb.end())) {
      ok.store(false, std::memory_order_relaxed);
    }
  });
  if (!ok.load(std::memory_order_relaxed)) {
    throw Error(ErrorCategory::kValidation,
                "graph updates require per-vertex sorted adjacency lists; "
                "rebuild the graph with graph_convert first",
                s->source_path());
  }
  s->mark_adjacency_sorted();
}

ApplyStats stats_from(const std::shared_ptr<const DeltaSnapshot>& snap,
                      std::uint64_t batch_ins, std::uint64_t batch_del) {
  ApplyStats st;
  st.batch_inserts = batch_ins;
  st.batch_deletes = batch_del;
  if (snap != nullptr) {
    st.inserts = snap->insert_count();
    st.deletes = snap->delete_count();
    st.batches = snap->batches();
    st.overlay_bytes = snap->resident_bytes();
  }
  return st;
}

}  // namespace

std::shared_ptr<const DeltaSnapshot> DeltaSnapshot::build(
    std::size_t n, std::vector<EdgeId> ins_offsets,
    std::vector<VertexId> ins_targets, std::vector<EdgeId> del_offsets,
    std::vector<VertexId> del_targets, std::uint64_t batches) {
  auto flipped = std::shared_ptr<DeltaSnapshot>(new DeltaSnapshot());
  flip_side(n, ins_offsets, ins_targets, flipped->ins_offsets_,
            flipped->ins_targets_);
  flip_side(n, del_offsets, del_targets, flipped->del_offsets_,
            flipped->del_targets_);
  flipped->batches_ = batches;

  auto snap = std::shared_ptr<DeltaSnapshot>(new DeltaSnapshot());
  snap->ins_offsets_ = std::move(ins_offsets);
  snap->ins_targets_ = std::move(ins_targets);
  snap->del_offsets_ = std::move(del_offsets);
  snap->del_targets_ = std::move(del_targets);
  snap->batches_ = batches;
  snap->flipped_ = std::move(flipped);
  return snap;
}

std::uint64_t DeltaSnapshot::resident_bytes() const {
  std::uint64_t bytes = vec_bytes(ins_offsets_, ins_targets_) +
                        vec_bytes(del_offsets_, del_targets_);
  if (flipped_ != nullptr) bytes += flipped_->resident_bytes();
  return bytes;
}

ApplyStats apply_updates(const Graph& g, std::span<const EdgeUpdate> batch) {
  if (g.storage() == nullptr) {
    throw Error(ErrorCategory::kUsage,
                "graph updates need a storage-backed graph");
  }
  if (!g.storage()->weights().empty()) {
    throw Error(ErrorCategory::kUsage,
                "graph updates are unweighted; weighted graphs must be "
                "rebuilt instead",
                g.storage()->source_path());
  }
  g.ensure_in_core("graph updates");
  g.ensure_validated();
  ensure_sorted_adjacency(g);

  std::size_t n = g.num_vertices();
  std::shared_ptr<const DeltaSnapshot> old = g.storage()->delta_snapshot();

  // Per-vertex working state, initialized lazily from the old snapshot.
  // Persistent-structure apply: `old` is never mutated, in-flight traversals
  // keep their snapshot until the new one is published below.
  struct Patch {
    std::vector<VertexId> ins;
    std::vector<VertexId> del;
  };
  std::map<VertexId, Patch> touched;
  auto state_of = [&](VertexId u) -> Patch& {
    auto [it, fresh] = touched.try_emplace(u);
    if (fresh && old != nullptr) {
      std::span<const VertexId> oi = old->inserts(u);
      std::span<const VertexId> od = old->deletes(u);
      it->second.ins.assign(oi.begin(), oi.end());
      it->second.del.assign(od.begin(), od.end());
    }
    return it->second;
  };

  std::uint64_t batch_ins = 0, batch_del = 0;
  for (const EdgeUpdate& up : batch) {
    if (up.from >= n || up.to >= n) {
      throw Error(ErrorCategory::kValidation,
                  "update edge " + std::to_string(up.from) + "->" +
                      std::to_string(up.to) + " is out of range for n=" +
                      std::to_string(n),
                  g.storage()->source_path());
    }
    Patch& p = state_of(up.from);
    bool base_present = sorted_contains(g.neighbors(up.from), up.to);
    bool in_ins = sorted_contains(p.ins, up.to);
    bool in_del = sorted_contains(p.del, up.to);
    bool present = in_ins || (base_present && !in_del);
    if (up.op == EdgeUpdate::Op::kInsert) {
      if (present) {
        throw Error(ErrorCategory::kValidation,
                    "insert of edge " + std::to_string(up.from) + "->" +
                        std::to_string(up.to) + " which is already present",
                    g.storage()->source_path());
      }
      if (in_del) {
        sorted_erase(p.del, up.to);  // re-insert of a deleted base edge
      } else {
        sorted_insert(p.ins, up.to);
      }
      ++batch_ins;
    } else {
      if (!present) {
        throw Error(ErrorCategory::kValidation,
                    "delete of edge " + std::to_string(up.from) + "->" +
                        std::to_string(up.to) + " which is not present",
                    g.storage()->source_path());
      }
      if (in_ins) {
        sorted_erase(p.ins, up.to);  // delete of an overlay insert cancels it
      } else {
        sorted_insert(p.del, up.to);
      }
      ++batch_del;
    }
  }

  // Fold into flat (n+1)-offset arrays: touched vertices take their working
  // lists, the rest copy straight from the old snapshot.
  std::vector<EdgeId> ins_off(n + 1, 0), del_off(n + 1, 0);
  std::vector<VertexId> ins_tgt, del_tgt;
  auto it = touched.cbegin();
  for (std::size_t v = 0; v < n; ++v) {
    const Patch* p = nullptr;
    if (it != touched.cend() && it->first == v) {
      p = &it->second;
      ++it;
    }
    if (p != nullptr) {
      ins_tgt.insert(ins_tgt.end(), p->ins.begin(), p->ins.end());
      del_tgt.insert(del_tgt.end(), p->del.begin(), p->del.end());
    } else if (old != nullptr) {
      std::span<const VertexId> oi = old->inserts(static_cast<VertexId>(v));
      std::span<const VertexId> od = old->deletes(static_cast<VertexId>(v));
      ins_tgt.insert(ins_tgt.end(), oi.begin(), oi.end());
      del_tgt.insert(del_tgt.end(), od.begin(), od.end());
    }
    ins_off[v + 1] = ins_tgt.size();
    del_off[v + 1] = del_tgt.size();
  }

  std::shared_ptr<const DeltaSnapshot> next = DeltaSnapshot::build(
      n, std::move(ins_off), std::move(ins_tgt), std::move(del_off),
      std::move(del_tgt), (old != nullptr ? old->batches() : 0) + 1);
  g.storage()->set_delta(next);
  return stats_from(next, batch_ins, batch_del);
}

Graph materialize_effective(const Graph& g) {
  if (!g.has_delta()) return g;
  g.ensure_in_core("update-overlay materialization");
  g.ensure_validated();
  std::shared_ptr<const DeltaSnapshot> d = g.storage()->delta_snapshot();
  if (d == nullptr) return g;
  std::size_t n = g.num_vertices();
  std::vector<EdgeId> offsets(n + 1);
  offsets[n] = scan_indexed<EdgeId>(
      n,
      [&](std::size_t v) {
        return d->effective_degree(static_cast<VertexId>(v),
                                   g.out_degree(static_cast<VertexId>(v)));
      },
      [&](std::size_t v, EdgeId x) { offsets[v] = x; });
  std::vector<VertexId> targets(offsets[n]);
  parallel_for(0, n, [&](std::size_t v) {
    EdgeId out = offsets[v];
    d->scan_effective(static_cast<VertexId>(v),
                      g.targets().data() + g.edge_begin(v), g.edge_begin(v),
                      g.edge_end(v), [&](VertexId t, EdgeId) {
                        targets[out++] = t;
                        return true;
                      });
  });
  return Graph(std::move(offsets), std::move(targets));
}

ApplyStats replay_update_log(const Graph& g, const std::string& path) {
  std::vector<std::vector<EdgeUpdate>> batches = read_update_log(path);
  ApplyStats st = stats_from(
      g.storage() != nullptr ? g.storage()->delta_snapshot() : nullptr, 0, 0);
  for (const std::vector<EdgeUpdate>& batch : batches) {
    ApplyStats one = apply_updates(g, batch);
    one.batch_inserts += st.batch_inserts;
    one.batch_deletes += st.batch_deletes;
    st = one;
  }
  return st;
}

ApplyStats GraphDelta::apply(std::span<const EdgeUpdate> batch) {
  ApplyStats st = apply_updates(base_, batch);
  if (!log_path_.empty()) append_update_batch(log_path_, batch);
  return st;
}

// --- append-only update log (`.plog`) ---------------------------------------

namespace {

constexpr unsigned char kPlogMagic[8] = {'P', 'G', 'R', 'D', 'L', 'O', 'G', 0};
constexpr std::uint32_t kBatchMagic = 0x43544142u;  // "BATC" little-endian
constexpr std::size_t kPlogHeaderBytes = 16;
constexpr std::size_t kFrameHeaderBytes = 16;
constexpr std::size_t kRecordBytes = 12;

void put_u32(std::vector<unsigned char>& out, std::uint32_t x) {
  unsigned char b[4];
  std::memcpy(b, &x, 4);
  out.insert(out.end(), b, b + 4);
}

void put_u64(std::vector<unsigned char>& out, std::uint64_t x) {
  unsigned char b[8];
  std::memcpy(b, &x, 8);
  out.insert(out.end(), b, b + 8);
}

std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t x;
  std::memcpy(&x, p, 4);
  return x;
}

std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t x;
  std::memcpy(&x, p, 8);
  return x;
}

std::vector<unsigned char> header_bytes() {
  std::vector<unsigned char> out(kPlogMagic, kPlogMagic + 8);
  put_u32(out, kPlogVersion);
  put_u32(out, 0);  // reserved
  return out;
}

std::vector<unsigned char> frame_bytes(std::span<const EdgeUpdate> batch) {
  std::vector<unsigned char> payload;
  payload.reserve(batch.size() * kRecordBytes);
  for (const EdgeUpdate& up : batch) {
    put_u32(payload, static_cast<std::uint32_t>(up.op));
    put_u32(payload, up.from);
    put_u32(payload, up.to);
  }
  std::vector<unsigned char> out;
  out.reserve(kFrameHeaderBytes + payload.size());
  put_u32(out, kBatchMagic);
  put_u32(out, static_cast<std::uint32_t>(batch.size()));
  put_u64(out, hash_bytes(payload.data(), payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void write_all(std::FILE* f, const std::vector<unsigned char>& bytes,
               const std::string& path) {
  if (!bytes.empty() && std::fwrite(bytes.data(), 1, bytes.size(), f) !=
                            bytes.size()) {
    std::fclose(f);
    throw Error(ErrorCategory::kIo, "short write to update log", path);
  }
}

}  // namespace

void write_update_log(const std::string& path,
                      std::span<const std::vector<EdgeUpdate>> batches) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    throw Error(ErrorCategory::kIo,
                "cannot create update log: " + std::string(std::strerror(errno)),
                path);
  }
  write_all(f, header_bytes(), path);
  for (const std::vector<EdgeUpdate>& b : batches) {
    write_all(f, frame_bytes(b), path);
  }
  if (std::fclose(f) != 0) {
    throw Error(ErrorCategory::kIo, "close failed on update log", path);
  }
}

void append_update_batch(const std::string& path,
                         std::span<const EdgeUpdate> batch) {
  struct stat st;
  bool fresh = ::stat(path.c_str(), &st) != 0 || st.st_size == 0;
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    throw Error(ErrorCategory::kIo,
                "cannot open update log for append: " +
                    std::string(std::strerror(errno)),
                path);
  }
  // Header and frame go out as one buffered stream flushed at close; a crash
  // tears at most the trailing frame, which replay treats as absent.
  if (fresh) write_all(f, header_bytes(), path);
  write_all(f, frame_bytes(batch), path);
  if (std::fclose(f) != 0) {
    throw Error(ErrorCategory::kIo, "close failed on update log", path);
  }
}

std::vector<std::vector<EdgeUpdate>> read_update_log(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw Error(ErrorCategory::kIo,
                "cannot open update log: " + std::string(std::strerror(errno)),
                path);
  }
  std::vector<unsigned char> bytes;
  unsigned char buf[1 << 16];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + got);
  }
  bool read_err = std::ferror(f) != 0;
  std::fclose(f);
  if (read_err) {
    throw Error(ErrorCategory::kIo, "read failed on update log", path);
  }

  std::vector<std::vector<EdgeUpdate>> batches;
  if (bytes.empty()) return batches;  // created but never written: empty log
  if (bytes.size() < kPlogHeaderBytes ||
      std::memcmp(bytes.data(), kPlogMagic, 8) != 0) {
    throw Error(ErrorCategory::kFormat, "not a .plog update log", path);
  }
  std::uint32_t version = get_u32(bytes.data() + 8);
  if (version != kPlogVersion) {
    throw Error(ErrorCategory::kFormat,
                "unsupported update log version " + std::to_string(version),
                path, 8);
  }
  std::size_t pos = kPlogHeaderBytes;
  while (pos < bytes.size()) {
    // A torn trailing append (incomplete frame header or payload) is the
    // normal crash residue of the append-only contract: replay the
    // consistent prefix. Corruption *inside* a complete frame is not.
    if (bytes.size() - pos < kFrameHeaderBytes) break;
    if (get_u32(bytes.data() + pos) != kBatchMagic) {
      throw Error(ErrorCategory::kFormat, "bad update batch magic", path, pos);
    }
    std::uint32_t count = get_u32(bytes.data() + pos + 4);
    std::uint64_t want_hash = get_u64(bytes.data() + pos + 8);
    std::size_t payload_len = static_cast<std::size_t>(count) * kRecordBytes;
    if (bytes.size() - pos - kFrameHeaderBytes < payload_len) break;
    const unsigned char* payload = bytes.data() + pos + kFrameHeaderBytes;
    if (hash_bytes(payload, payload_len) != want_hash) {
      throw Error(ErrorCategory::kFormat, "update batch checksum mismatch",
                  path, pos);
    }
    std::vector<EdgeUpdate> batch(count);
    for (std::uint32_t i = 0; i < count; ++i) {
      const unsigned char* rec = payload + i * kRecordBytes;
      std::uint32_t op = get_u32(rec);
      if (op > 1) {
        throw Error(ErrorCategory::kFormat,
                    "unknown update op " + std::to_string(op), path,
                    pos + kFrameHeaderBytes + i * kRecordBytes);
      }
      batch[i] = EdgeUpdate{static_cast<EdgeUpdate::Op>(op), get_u32(rec + 4),
                            get_u32(rec + 8)};
    }
    batches.push_back(std::move(batch));
    pos += kFrameHeaderBytes + payload_len;
  }
  return batches;
}

}  // namespace pasgal
