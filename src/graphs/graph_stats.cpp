#include "graphs/graph_stats.h"

#include "algorithms/kcore/kcore.h"

namespace pasgal {

std::uint32_t degeneracy(const Graph& g) {
  auto core = seq_kcore(g);
  std::uint32_t best = 0;
  for (auto c : core) best = std::max(best, c);
  return best;
}

}  // namespace pasgal
