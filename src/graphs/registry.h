// GraphRegistry: process-level sharing of mmap-backed graph storage.
//
// Storage sharing in storage.h is per-StorageRef: two `read_pgr` calls on
// the same file each map it and each memoize their own transpose. A
// long-lived serving process that re-opens its graphs (several drivers in
// one binary, bench iterations, request loops) therefore pays the mapping
// and transpose cost once per open instead of once per process. The
// registry closes that gap: a process-wide table keyed by canonical file
// identity hands every opener of the same file the same GraphStorage — one
// `MappedFile`, one memoized transpose.
//
// Keying: files are identified by `st_dev`/`st_ino` from stat(2) — not the
// path string — so symlinks, `./`-prefixed and absolute spellings of one
// file all dedupe to a single entry. The key additionally includes the file
// size and mtime (nanoseconds): rewriting a graph in place produces a new
// key, so a stale mapping of the old content is never handed out (the old
// entry ages out via weak_ptr expiry / evict_expired()).
//
// Ownership: entries hold a `weak_ptr<GraphStorage>`. The registry never
// extends a graph's lifetime by itself — when the last Graph drops, the
// mapping is unmapped as before and the entry is just a tombstone. Two
// strong-reference upgrades exist for serving use:
//   * `pin()`    — the mapping survives between requests AND is protected
//                  from LRU eviction (hot graphs a server must keep);
//   * `retain()` — the mapping survives between requests but is fair game
//                  for `evict_lru()` under memory pressure (warm cache).
// `evict()` drops an entry, pinned or not.
//
// Memory pressure: every entry tracks its last use (open/pin/retain, steady
// clock) and its mapped byte size. `evict_lru(bytes_needed)` walks
// retained-but-unpinned entries oldest-first, dropping strong references
// and entries until it has released at least `bytes_needed` bytes of
// mappings (best effort: bytes whose storage is still referenced by
// in-flight graphs are released only when those graphs drop).
//
// Concurrency: a global table mutex guards the key -> entry map, and a
// per-entry mutex is held across the opener callback, so two threads racing
// to open the same file produce exactly one mapping (the loser blocks, then
// hits). Counters (hits / misses / evictions / bytes mapped once per
// distinct mapping) are atomics, surfaced through the drivers' metrics
// documents as `registry_*` params.
//
// Scope: only the `.pgr` mmap open path consults the registry (see
// graph_io.cpp). Heap loads (.adj/.bin, PgrOpen::kCopy) are excluded by
// design — kCopy's documented contract is decoupling from the file.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "graphs/storage.h"

namespace pasgal {

class GraphRegistry {
 public:
  // Counter snapshot plus current table shape. `bytes_mapped` counts each
  // distinct mapping once, at miss time — N opens of one file add its size
  // a single time.
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t bytes_mapped = 0;
    std::uint64_t entries = 0;           // live table entries (incl. expired)
    std::uint64_t pinned_entries = 0;    // pin()ned (LRU-protected) entries
    std::uint64_t pinned_bytes = 0;      // their mapped bytes
    std::uint64_t retained_entries = 0;  // retain()ed (LRU-evictable) entries
    std::uint64_t resident_bytes = 0;    // mapped bytes of all live entries
    // Steady-clock ns of the least-recently-used *evictable* (retained,
    // unpinned, live) entry; 0 when there is none. The LRU decision and the
    // metrics documents read the same number.
    std::uint64_t lru_last_use_ns = 0;
  };

  // Per-entry snapshot for diagnostics and the server's `stats` response.
  struct EntryInfo {
    std::string path;   // the spelling this entry was last opened under
    std::uint64_t bytes = 0;
    std::uint64_t last_use_ns = 0;  // steady clock; see Stats::lru_last_use_ns
    bool pinned = false;
    bool retained = false;
    bool live = false;  // storage not yet expired
  };

  static GraphRegistry& instance();

  // Returns the cached storage for `path` if a previous open of the same
  // file (by identity, see header comment) is still alive; otherwise runs
  // `opener`, caches its result, and returns it. The per-entry lock is held
  // across `opener`, so concurrent opens of one file map it once. If the
  // file cannot be stat'ed the registry steps aside and calls `opener`
  // directly (it raises the typed kIo error the caller expects).
  StorageRef open_shared(const std::string& path,
                         const std::function<StorageRef()>& opener);

  // Upgrades the entry for `path` to a strong reference so the mapping
  // outlives the graphs using it (serving mode), and protects it from
  // evict_lru(). Returns false when there is no live entry to pin (never
  // opened, or already expired).
  bool pin(const std::string& path);

  // Like pin(), but the entry stays eligible for evict_lru(): the mapping
  // survives between requests only until memory pressure reclaims it.
  // Pinned entries stay pinned (retain never downgrades a pin).
  bool retain(const std::string& path);

  // Drops the strong reference taken by pin()/retain() without evicting the
  // entry; the storage then lives only as long as outstanding graphs.
  // Returns false when the entry does not exist.
  bool unpin(const std::string& path);

  // Removes the entry for `path`, pinned or not, and counts an eviction.
  // Outstanding graphs keep their storage alive (shared_ptr semantics);
  // the next open simply maps afresh. Returns false when there was no
  // entry to remove.
  bool evict(const std::string& path);

  // Sweeps tombstones: removes unpinned entries whose storage has expired.
  // Returns the number removed (not counted as evictions — their mappings
  // were already gone). Also runs automatically on every open_shared()
  // miss, so a serving process that cycles through many graphs never
  // accumulates an unbounded tombstone table.
  std::size_t evict_expired();

  // Memory-pressure eviction: drops retained-but-unpinned entries in
  // least-recently-used order until at least `bytes_needed` bytes of
  // mappings have been released (or no candidates remain). Each drop counts
  // as an eviction. Returns the bytes released. Pinned entries are never
  // touched; neither are plain weak entries (they hold no memory).
  std::uint64_t evict_lru(std::uint64_t bytes_needed);

  // Drops every entry and zeroes all counters. Test hook.
  void clear();

  // Test-only: overwrite the last-use timestamp of `path`'s entry so LRU
  // tie-breaking is exercisable without racing the steady clock. Returns
  // false when there is no entry.
  bool set_last_use_for_testing(const std::string& path, std::uint64_t ns);

  Stats stats() const;

  // Snapshot of every table entry (diagnostics; O(entries)).
  std::vector<EntryInfo> entry_stats() const;

 private:
  // stat(2) identity of an open; see the keying discussion above.
  struct FileKey {
    std::uint64_t dev = 0;
    std::uint64_t ino = 0;
    std::uint64_t size = 0;
    std::uint64_t mtime_ns = 0;
    auto operator<=>(const FileKey&) const = default;
  };

  struct Entry {
    std::mutex mu;  // held across the opener: one mapping per race
    std::weak_ptr<GraphStorage> storage;
    StorageRef strong;   // non-null after pin()/retain(); cleared by unpin()
    bool pinned = false;  // strong && pinned => protected from evict_lru()
    std::uint64_t last_use_ns = 0;  // steady clock; open/pin/retain update it
    std::uint64_t bytes = 0;        // mapped bytes of this entry's storage
    // Insertion order, for LRU tie-breaking: two entries created in the same
    // steady_clock tick have equal last_use_ns, and sorting on the timestamp
    // alone would evict one of them nondeterministically.
    std::uint64_t seq = 0;
    std::string path;  // last spelling opened; diagnostics only
  };

  GraphRegistry() = default;

  static bool file_key(const std::string& path, FileKey& out);
  std::shared_ptr<Entry> find_entry(const std::string& path);

  mutable std::mutex mu_;
  std::map<FileKey, std::shared_ptr<Entry>> table_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> bytes_mapped_{0};
  std::atomic<std::uint64_t> next_seq_{0};
};

}  // namespace pasgal
